package bitgen

import "bitgen/internal/bgerr"

// The error taxonomy. Every public entry point (Compile, Run, RunMulti,
// CountOnly, ScanReader and their Context variants) fails structured:
// callers can classify any returned error with errors.Is / errors.As
// against these identities.
//
//   - errors.Is(err, ErrLimit): a configured resource limit was exceeded
//     (input size, pattern count, program size, while-iteration cap,
//     device-memory budget). errors.As(&*LimitError) names the limit and
//     carries the observed and maximum values.
//   - errors.Is(err, ErrUnsupported): the request is outside the engine's
//     design envelope (unknown device; streaming with unbounded patterns).
//     errors.As(&*UnsupportedError) lists every offending pattern.
//   - errors.Is(err, ErrCanceled): the context passed to a *Context
//     variant was canceled or timed out. The underlying context error is
//     in the chain, so errors.Is(err, context.Canceled) and
//     errors.Is(err, context.DeadlineExceeded) also work.
//   - errors.Is(err, ErrTransient): an environmental fault worth retrying
//     (a failed kernel launch). With resilience enabled these are retried
//     with backoff automatically and rarely surface; without it the
//     caller may retry.
//   - errors.As(&*InternalError): an engine invariant was violated — a
//     contained panic. The process survives, the Engine remains usable,
//     and the error carries the CTA group index, the group's patterns and
//     the recovered stack for reporting.
//   - errors.As(&*ReadError): ScanReader's input reader failed mid-stream;
//     the error carries the absolute stream offset for resumption.
//   - errors.Is(err, ErrSnapshot): a persisted engine snapshot was refused
//     by LoadEngine (corrupt, truncated, wrong format version, compiled
//     under different options) or the snapshot store failed.
//     errors.As(&*SnapshotError) carries the reason and file path; the
//     correct response is always to fall back to Compile.
var (
	ErrLimit       = bgerr.ErrLimit
	ErrUnsupported = bgerr.ErrUnsupported
	ErrCanceled    = bgerr.ErrCanceled
	ErrTransient   = bgerr.ErrTransient
	ErrSnapshot    = bgerr.ErrSnapshot
)

// LimitError reports which resource limit was exceeded (see Limits).
type LimitError = bgerr.LimitError

// UnsupportedError reports a request the engine cannot serve by design,
// listing all offending patterns when the refusal is pattern-specific.
type UnsupportedError = bgerr.UnsupportedError

// InternalError is a contained engine panic: an invariant violation
// converted into an error at the Compile or Run boundary instead of
// crashing the process. Group and Patterns identify the poisoned CTA
// group so the offending input can be quarantined.
type InternalError = bgerr.InternalError

// SnapshotError reports why LoadEngine (or the snapshot store) refused a
// persisted engine snapshot. Reason is a stable token — "corrupt",
// "truncated", "version-mismatch", "options-mismatch", "key-mismatch",
// "store-io" — and Path names the offending file when there is one.
type SnapshotError = bgerr.SnapshotError
