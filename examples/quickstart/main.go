// Quickstart: compile a handful of patterns, scan a document, and print
// every match with the engine's modeled execution statistics.
package main

import (
	"fmt"
	"log"

	"bitgen"
)

func main() {
	patterns := []string{
		"cat|dog",          // alternation
		"h[aeiou]t",        // character class
		"ab*c",             // Kleene star (compiles to a carry smear)
		"(na){2,4} batman", // bounded repetition
	}
	eng, err := bitgen.Compile(patterns, nil)
	if err != nil {
		log.Fatal(err)
	}

	input := []byte("the cat in the hat met a hot dog; abc abbbbc ac; nananana batman")
	res, err := eng.Run(input)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("input: %q\n\n", input)
	for _, m := range res.Matches {
		// End is the byte offset (inclusive) where the match ends; with
		// all-match semantics every end position is reported.
		fmt.Printf("  pattern %-18q match ends at byte %2d\n", m.Pattern, m.End)
	}
	fmt.Printf("\nper-pattern counts: %v\n", res.Counts)
	fmt.Printf("modeled GPU time:   %v (%.1f MB/s on the RTX 3090 profile)\n",
		res.Stats.ModeledTime, res.Stats.ThroughputMBs)
	fmt.Printf("kernel counters:    %.1f KB DRAM read, %d barriers, %.2f%% recompute\n",
		float64(res.Stats.DRAMReadBytes)/1e3, res.Stats.Barriers, res.Stats.RecomputePercent)
}
