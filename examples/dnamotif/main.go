// Dnamotif: biological sequence analysis — PROSITE-style protein motifs
// matched over a sequence database, one of the domains the paper's intro
// motivates (genome/proteome scanning with automata engines). Patterns use
// amino-acid classes, bounded gaps and repeats.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"bitgen"
)

// Motifs in regex form (adapted PROSITE idioms):
//
//	C-x(2,4)-C      → C.{2,4}C        zinc-finger-like
//	G-x-G-x-x-G     → G.G..G          P-loop fragment
//	[ST]-x-[RK]     → [ST].[RK]       phosphorylation site
//	N-{P}-[ST]-{P}  → N[^P][ST][^P]   N-glycosylation site
var motifs = []string{
	"C.{2,4}C.{3}[LIVMFYWC]",
	"G.G..G[KR][ST]",
	"[ST].[RK][RK]",
	"N[^P][ST][^P]",
	"[RK]{2,3}[DE]{2}",
	"W.{9,11}W",
}

func main() {
	db := generateProteins(120_000)
	eng, err := bitgen.Compile(motifs, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(db)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scanned %d KB of protein sequence for %d motifs\n\n", len(db)/1000, len(motifs))
	for _, m := range motifs {
		fmt.Printf("  %-28q %6d sites\n", m, res.Counts[m])
	}
	fmt.Printf("\nmodeled: %v kernel time, %.1f MB/s\n",
		res.Stats.ModeledTime, res.Stats.ThroughputMBs)

	// Show a few hit contexts for the first motif with matches.
	for _, m := range motifs {
		if res.Counts[m] == 0 {
			continue
		}
		fmt.Printf("\nexample %q sites:\n", m)
		shown := 0
		for _, hit := range res.Matches {
			if hit.Pattern != m || shown == 3 {
				continue
			}
			lo := max(0, hit.End-20)
			fmt.Printf("  ...%s<END@%d>\n", db[lo:hit.End+1], hit.End)
			shown++
		}
		break
	}
}

// generateProteins emits FASTA-like 60-column amino-acid lines.
func generateProteins(n int) []byte {
	const aminos = "ACDEFGHIKLMNPQRSTVWY"
	rng := rand.New(rand.NewSource(11))
	var b strings.Builder
	b.Grow(n + 80)
	col := 0
	for b.Len() < n {
		// Occasionally emit a real motif instance so sites exist.
		if rng.Intn(400) == 0 {
			b.WriteString("GAGKKGKT") // matches G.G..G[KR][ST]
			col += 8
		}
		b.WriteByte(aminos[rng.Intn(len(aminos))])
		col++
		if col >= 60 {
			b.WriteByte('\n')
			col = 0
		}
	}
	return []byte(b.String()[:n])
}
