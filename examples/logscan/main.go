// Logscan: multi-pattern log analytics — the paper's motivating use case
// of identifying fields and events in log streams. It generates a synthetic
// service log, scans it for a rule set (errors, latency spikes, suspicious
// paths, IPv4 endpoints), and reports per-rule hit counts plus the modeled
// GPU statistics. It then cross-checks the results against the repo's
// independent Hyperscan-style CPU engine.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"bitgen"
	"bitgen/internal/hybrid"
	"bitgen/internal/rx"
)

// rules is a small log-analytics rule set.
var rules = []string{
	"level=error",
	"status=5\\d\\d",
	"latency_ms=[4-9]\\d{3,}", // 4000ms and up
	"get/admin(/[a-z]+)*",     // admin path walks
	"\\d{1,3}\\.\\d{1,3}\\.\\d{1,3}\\.\\d{1,3}:\\d{1,5}",
	"retry #\\d+ (backoff)?",
}

func main() {
	input := generateLog(200_000)

	eng, err := bitgen.Compile(rules, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(input)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scanned %d KB of logs with %d rules\n\n", len(input)/1000, len(rules))
	for _, r := range rules {
		fmt.Printf("  %-52q %6d hits\n", r, res.Counts[r])
	}
	fmt.Printf("\nmodeled: %v kernel time, %.1f MB/s, %d guard skips\n",
		res.Stats.ModeledTime, res.Stats.ThroughputMBs, res.Stats.GuardSkips)

	// Cross-check against the independent hybrid (Aho-Corasick + NFA)
	// engine: two unrelated matcher implementations must agree exactly.
	asts := make([]rx.Node, len(rules))
	for i, r := range rules {
		asts[i] = rx.MustParse(r)
	}
	heng, err := hybrid.Compile(rules, asts, hybrid.Options{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	href := heng.Scan(input)
	for _, r := range rules {
		if got := href.Outputs[r].Popcount(); got != res.Counts[r] {
			log.Fatalf("engines disagree on %q: bitstream %d vs hybrid %d", r, res.Counts[r], got)
		}
	}
	fmt.Println("cross-check: hybrid CPU engine agrees on every rule ✓")
}

// generateLog produces a deterministic synthetic service log.
func generateLog(n int) []byte {
	rng := rand.New(rand.NewSource(2))
	levels := []string{"info", "info", "info", "warn", "error"}
	paths := []string{"get/search", "get/admin/users", "post/api", "get/static", "get/admin"}
	var b strings.Builder
	b.Grow(n + 128)
	for b.Len() < n {
		status := 200
		switch rng.Intn(10) {
		case 0:
			status = 500 + rng.Intn(4)
		case 1:
			status = 404
		}
		fmt.Fprintf(&b, "ts=%d level=%s %s status=%d latency_ms=%d %d.%d.%d.%d:%d",
			1700000000+rng.Intn(1_000_000),
			levels[rng.Intn(len(levels))],
			paths[rng.Intn(len(paths))],
			status,
			rng.Intn(8000),
			10+rng.Intn(200), rng.Intn(256), rng.Intn(256), rng.Intn(256),
			1024+rng.Intn(60000))
		if rng.Intn(12) == 0 {
			fmt.Fprintf(&b, " retry #%d backoff", 1+rng.Intn(5))
		}
		b.WriteByte('\n')
	}
	return []byte(b.String()[:n])
}
