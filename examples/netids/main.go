// Netids: Snort-style deep packet inspection — thousands of signatures
// matched concurrently over a shared traffic stream, the paper's headline
// multi-regex scenario. It loads the synthetic Snort workload, runs the
// full BitGen configuration, and contrasts it against the ablation ladder
// (Base → DTM → +SR → +ZBS) to show where the speedup comes from.
package main

import (
	"fmt"
	"log"

	"bitgen/internal/engine"
	"bitgen/internal/kernel"
	"bitgen/internal/workload"
)

func main() {
	app, err := workload.Load("Snort", workload.Options{
		RegexScale: 0.05, // 5% of the paper's 1,873 signatures
		InputBytes: 500_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d Snort-style signatures over %d KB of synthetic traffic\n\n",
		len(app.Regexes), len(app.Input)/1000)

	schemes := []struct {
		name string
		cfg  engine.Config
	}{
		{"Base (partial fusion)", engine.Config{Mode: kernel.ModeBase}},
		{"DTM  (interleaved)", engine.Config{Mode: kernel.ModeDTM}},
		{"+SR  (rebalanced)", engine.Config{Mode: kernel.ModeDTM, ShiftRebalancing: true, MergeSize: 8}},
		{"+ZBS (full BitGen)", engine.BitGenDefault()},
	}

	var base float64
	var alerts int64
	for i, s := range schemes {
		eng, err := engine.Compile(app.Regexes, s.cfg)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		res, err := eng.Run(app.Input)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		if i == 0 {
			base = res.ThroughputMBs
			alerts = res.TotalMatches
		} else if res.TotalMatches != alerts {
			log.Fatalf("%s changed the alert count: %d vs %d", s.name, res.TotalMatches, alerts)
		}
		total := res.Stats.Total()
		fmt.Printf("  %-22s %8.1f MB/s  (%.2fx)  %6d barriers  %7.1f MB DRAM\n",
			s.name, res.ThroughputMBs, res.ThroughputMBs/base,
			total.Barriers, float64(total.DRAMReadBytes+total.DRAMWriteBytes)/1e6)
	}
	fmt.Printf("\nall schemes report the same %d signature hits (exactness check ✓)\n", alerts)
	fmt.Println("\ntop alerts:")
	full, err := engine.Compile(app.Regexes, engine.BitGenDefault())
	if err != nil {
		log.Fatal(err)
	}
	res, err := full.Run(app.Input)
	if err != nil {
		log.Fatal(err)
	}
	shown := 0
	for _, r := range app.Regexes {
		if n := res.MatchCounts[r.Name]; n > 0 && shown < 8 {
			fmt.Printf("  %5d  %s\n", n, truncate(r.Name, 60))
			shown++
		}
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
