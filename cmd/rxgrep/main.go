// Command rxgrep is a grep-like demo of the bitstream engine: it prints
// the lines of a file on which any of the given patterns match, with the
// pattern(s) that matched.
//
// Usage:
//
//	rxgrep 'error|fatal' server.log
//	rxgrep -e 'timeout [0-9]+ms' -e 'retry #\d' server.log
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"bitgen"
	"bitgen/internal/cli"
)

type patternList []string

func (p *patternList) String() string     { return strings.Join(*p, ",") }
func (p *patternList) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	var pats patternList
	flag.Var(&pats, "e", "pattern (repeatable)")
	foldCase := flag.Bool("i", false, "case-insensitive")
	quiet := flag.Bool("q", false, "suppress match lines; print only the summary")
	backend := flag.String("backend", "", cli.BackendUsage)
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file (load in chrome://tracing or ui.perfetto.dev)")
	metrics := flag.Bool("metrics", false, "print Prometheus text exposition of the scan's metrics to stdout")
	profilePath := flag.String("profile", "", "write the per-scan profile artifact (JSON) to this file ('-' for stdout)")
	streamChunk := flag.Int("stream", 0, "scan via the pipelined streaming reader in chunks of this many bytes (0: one whole-input run)")
	flag.Parse()

	args := flag.Args()
	if len(pats) == 0 {
		if len(args) < 1 {
			fmt.Fprintln(os.Stderr, "usage: rxgrep [flags] PATTERN FILE | rxgrep -e P1 -e P2 FILE")
			os.Exit(2)
		}
		pats = append(pats, args[0])
		args = args[1:]
	}
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "rxgrep: exactly one file required")
		os.Exit(2)
	}
	input, err := os.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "rxgrep:", err)
		os.Exit(2)
	}

	var obsOpts *bitgen.ObservabilityOptions
	if *tracePath != "" || *metrics || *profilePath != "" {
		obsOpts = &bitgen.ObservabilityOptions{
			Trace:   *tracePath != "",
			Metrics: *metrics || *profilePath != "",
		}
	}
	eng, err := bitgen.Compile(pats, &bitgen.Options{
		FoldCase:      *foldCase,
		Resilience:    cli.Resilience(*backend),
		Observability: obsOpts,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rxgrep:", cli.Describe(err))
		os.Exit(2)
	}
	var matches []bitgen.Match
	var res *bitgen.Result
	if *streamChunk > 0 {
		err = eng.ScanReader(bytes.NewReader(input), *streamChunk, func(m bitgen.Match) {
			matches = append(matches, m)
		})
	} else {
		res, err = eng.Run(input)
		if res != nil {
			matches = res.Matches
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rxgrep:", cli.Describe(err))
		os.Exit(2)
	}

	// Map match end offsets to line numbers.
	lineOf := make([]int, len(input))
	lineStart := []int{0}
	line := 0
	for i, c := range input {
		lineOf[i] = line
		if c == '\n' {
			line++
			lineStart = append(lineStart, i+1)
		}
	}
	hits := make(map[int]map[string]bool)
	for _, m := range matches {
		ln := lineOf[m.End]
		if hits[ln] == nil {
			hits[ln] = make(map[string]bool)
		}
		hits[ln][m.Pattern] = true
	}
	lines := make([]int, 0, len(hits))
	for ln := range hits {
		lines = append(lines, ln)
	}
	sort.Ints(lines)
	if !*quiet {
		for _, ln := range lines {
			end := len(input)
			if ln+1 < len(lineStart) {
				end = lineStart[ln+1] - 1
			}
			var which []string
			for p := range hits[ln] {
				which = append(which, p)
			}
			sort.Strings(which)
			fmt.Printf("%d:[%s] %s\n", ln+1, strings.Join(which, ", "),
				strings.TrimRight(string(input[lineStart[ln]:end]), "\r\n"))
		}
	}
	if res != nil {
		served := res.Backend
		if served == "" {
			served = "bitstream (direct)"
		}
		fmt.Fprintf(os.Stderr, "rxgrep: %d matching lines, %d matches via %s, %.1f MB/s modeled\n",
			len(lines), len(matches), served, res.Stats.ThroughputMBs)
	} else {
		fmt.Fprintf(os.Stderr, "rxgrep: %d matching lines, %d matches via pipelined stream (%dB chunks)\n",
			len(lines), len(matches), *streamChunk)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err == nil {
			err = eng.WriteTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "rxgrep: writing trace:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "rxgrep: trace written to %s\n", *tracePath)
	}
	if *profilePath != "" {
		if res == nil || res.Profile == nil {
			fmt.Fprintln(os.Stderr, "rxgrep: no profile (a fallback backend served the scan)")
		} else {
			buf, err := res.Profile.JSON()
			if err == nil {
				if *profilePath == "-" {
					_, err = os.Stdout.Write(buf)
				} else {
					err = os.WriteFile(*profilePath, buf, 0o644)
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "rxgrep: writing profile:", err)
				os.Exit(2)
			}
		}
	}
	if *metrics {
		if err := eng.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "rxgrep: writing metrics:", err)
			os.Exit(2)
		}
	}
	if len(lines) == 0 {
		os.Exit(1)
	}
}
