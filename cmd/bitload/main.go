// Command bitload is the bitgend cluster load generator: it drives many
// concurrent closed-loop clients of mixed /v1/match and /v1/scan traffic
// and reports latency percentiles, saturation throughput, and — when a
// replica is killed mid-run — the recovery time until the error rate
// returns to zero.
//
// Two modes:
//
//	bitload -targets http://a:8377,http://b:8377   # external cluster
//	bitload -selfcluster -out results/BENCH_serve.json
//
// -selfcluster boots in-process replicas on loopback listeners and runs
// the full benchmark matrix: a 1-node baseline phase, then a 3-node
// phase that kills one replica at the midpoint. The JSON report contrasts
// the two so routing overhead and failover cost are visible side by side.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bitgen/internal/serve"
)

type phaseStats struct {
	Requests      int64   `json:"requests"`
	Served        int64   `json:"served"`
	Rejected      int64   `json:"rejected"` // 429/503 admission pushback
	Failed        int64   `json:"failed"`   // transport errors and 5xx
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// LatencyHist is the served-request latency histogram (cumulative
	// counts per upper bound, +Inf last), the same classic-histogram shape
	// the server's bitgen_slo_latency_seconds family exposes — so a bench
	// report and a scrape are directly comparable.
	LatencyHist []latencyBucket `json:"latency_hist,omitempty"`
	// SLO is the client-observed compliance against the match/scan latency
	// objectives.
	SLO *sloCompliance `json:"slo,omitempty"`
}

// latencyBucket is one cumulative histogram bucket; LEMS 0 marks +Inf.
type latencyBucket struct {
	LEMS  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// latencyBounds are the fixed bucket upper bounds (milliseconds) —
// obs.SLOLatencyBuckets scaled to ms, so the two histograms line up.
var latencyBounds = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// sloCompliance is the client-side view of the serve SLO: a request is
// good when it was served (2xx) within its endpoint's latency objective.
// Failures are bad; admission rejections (429/503) are policy, not SLO
// spend, and are excluded from the denominator.
type sloCompliance struct {
	MatchObjectiveMS float64 `json:"match_objective_ms"`
	ScanObjectiveMS  float64 `json:"scan_objective_ms"`
	Good             int64   `json:"good"`
	Total            int64   `json:"total"`
	Compliance       float64 `json:"compliance"`
}

type killStats struct {
	RecoveryMS        float64 `json:"recovery_ms"`
	FailuresAfterKill int64   `json:"failures_after_kill"`
	DegradedServes    float64 `json:"degraded_serves"`
	StandbyServes     float64 `json:"standby_serves"`
	ReceivedForwards  float64 `json:"received_forwards"`
}

// warmStats contrasts a cold boot (every set compiled) against a warm
// start from the same snapshot directory (every set loaded, zero
// compiles). Times are measured from just before boot, so they include
// the warm-start scan itself.
type warmStats struct {
	Sets           int     `json:"sets"`
	ColdFirst200MS float64 `json:"cold_first_200_ms"`
	ColdAllSetsMS  float64 `json:"cold_all_sets_ms"`
	ColdCompiles   float64 `json:"cold_compiles"`
	WarmFirst200MS float64 `json:"warm_first_200_ms"`
	WarmAllSetsMS  float64 `json:"warm_all_sets_ms"`
	WarmCompiles   float64 `json:"warm_compiles"`
	WarmLoads      float64 `json:"warm_loads"`
}

type report struct {
	Generated string      `json:"generated"`
	Clients   int         `json:"clients"`
	DurationS float64     `json:"duration_s"`
	ScanFrac  float64     `json:"scan_frac"`
	OneNode   *phaseStats `json:"one_node,omitempty"`
	ThreeNode *phaseStats `json:"three_node,omitempty"`
	Kill      *killStats  `json:"kill,omitempty"`
	WarmStart *warmStats  `json:"warm_start,omitempty"`
	External  *phaseStats `json:"external,omitempty"`
	Targets   []string    `json:"targets,omitempty"`
}

// workload is the fixed request mix: precomputed match bodies and scan
// payloads over a spread of pattern sets, so every phase (and every run)
// issues identical traffic.
type workload struct {
	matchBodies []string
	scanPaths   []string
	scanBody    []byte
	scanFrac    float64
}

func newWorkload(sets int, scanFrac float64) *workload {
	w := &workload{scanFrac: scanFrac}
	for i := 0; i < sets; i++ {
		pat := fmt.Sprintf("load%dset", i)
		input := strings.Repeat("x"+pat+"y", 4)
		body, _ := json.Marshal(map[string]any{
			"patterns": []string{pat, "zz" + pat},
			"input":    input,
		})
		w.matchBodies = append(w.matchBodies, string(body))
		w.scanPaths = append(w.scanPaths, "/v1/scan?pattern="+pat)
	}
	w.scanBody = bytes.Repeat([]byte("abcload0setdef"), 256) // ~3.5 KiB
	return w
}

// sample is one request outcome: latency and wall-clock completion time.
type sample struct {
	lat  time.Duration
	done time.Time
	kind byte // 's' served, 'r' rejected, 'f' failed
	scan bool // streaming /v1/scan rather than /v1/match
}

// attachObs fills a phase's latency histogram and SLO compliance from its
// raw samples.
func attachObs(st *phaseStats, samples []sample, matchP99, scanP99 time.Duration) {
	counts := make([]int64, len(latencyBounds))
	slo := &sloCompliance{
		MatchObjectiveMS: float64(matchP99) / float64(time.Millisecond),
		ScanObjectiveMS:  float64(scanP99) / float64(time.Millisecond),
	}
	for _, s := range samples {
		switch s.kind {
		case 'r':
			continue
		case 'f':
			slo.Total++
			continue
		}
		ms := float64(s.lat) / float64(time.Millisecond)
		for i, b := range latencyBounds {
			if ms <= b {
				counts[i]++
				break
			}
		}
		obj := matchP99
		if s.scan {
			obj = scanP99
		}
		slo.Total++
		if obj <= 0 || s.lat <= obj {
			slo.Good++
		}
	}
	var cum int64
	for i, b := range latencyBounds {
		cum += counts[i]
		st.LatencyHist = append(st.LatencyHist, latencyBucket{LEMS: b, Count: cum})
	}
	st.LatencyHist = append(st.LatencyHist, latencyBucket{LEMS: 0, Count: st.Served})
	if slo.Total > 0 {
		slo.Compliance = float64(slo.Good) / float64(slo.Total)
	}
	st.SLO = slo
}

// run drives clients closed-loop against targets for d. onMid (optional)
// fires once when half the duration has elapsed — the replica-kill hook.
// Dead targets are dropped from rotation when markDead reports them.
func run(w *workload, targets []string, clients int, d time.Duration, onMid func() (deadTarget string)) (phaseStats, []sample) {
	var (
		alive   atomic.Value // []string
		samples = make([][]sample, clients)
		wg      sync.WaitGroup
	)
	alive.Store(targets)
	stop := make(chan struct{})
	time.AfterFunc(d, func() { close(stop) })
	if onMid != nil {
		time.AfterFunc(d/2, func() {
			dead := onMid()
			if dead == "" {
				return
			}
			var next []string
			for _, t := range targets {
				if t != dead {
					next = append(next, t)
				}
			}
			// Model a load balancer noticing the dead health check: stop
			// routing to the victim a moment after the kill.
			time.AfterFunc(150*time.Millisecond, func() { alive.Store(next) })
		})
	}

	client := &http.Client{
		Timeout:   10 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: clients},
	}
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := samples[c][:0]
			for i := 0; ; i++ {
				select {
				case <-stop:
					samples[c] = mine
					return
				default:
				}
				ts := alive.Load().([]string)
				target := ts[(c+i)%len(ts)]
				set := (c*7 + i) % len(w.matchBodies)
				scan := w.scanFrac > 0 && float64(i%100)/100 < w.scanFrac

				t0 := time.Now()
				var resp *http.Response
				var err error
				if scan {
					resp, err = client.Post(target+w.scanPaths[set],
						"application/octet-stream", bytes.NewReader(w.scanBody))
				} else {
					resp, err = client.Post(target+"/v1/match",
						"application/json", strings.NewReader(w.matchBodies[set]))
				}
				s := sample{lat: time.Since(t0), done: time.Now(), kind: 'f', scan: scan}
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch {
					case resp.StatusCode == http.StatusOK:
						s.kind = 's'
					case resp.StatusCode == http.StatusTooManyRequests ||
						resp.StatusCode == http.StatusServiceUnavailable:
						s.kind = 'r'
						// Honor Retry-After (capped so a drain hint does
						// not idle the generator).
						if ra, _ := strconv.Atoi(resp.Header.Get("Retry-After")); ra > 0 {
							back := time.Duration(ra) * time.Second
							if back > 100*time.Millisecond {
								back = 100 * time.Millisecond
							}
							time.Sleep(back)
						}
					}
				}
				s.lat = time.Since(t0)
				mine = append(mine, s)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []sample
	st := phaseStats{}
	var lats []time.Duration
	for _, ms := range samples {
		for _, s := range ms {
			st.Requests++
			switch s.kind {
			case 's':
				st.Served++
				lats = append(lats, s.lat)
			case 'r':
				st.Rejected++
			default:
				st.Failed++
			}
			all = append(all, s)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	st.P50MS = pctMS(lats, 0.50)
	st.P99MS = pctMS(lats, 0.99)
	st.ThroughputRPS = float64(st.Served) / elapsed.Seconds()
	return st, all
}

func pctMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

func main() {
	var (
		targets     = flag.String("targets", "", "comma-separated bitgend base URLs (external mode)")
		selfcluster = flag.Bool("selfcluster", false, "boot in-process replicas and run the 1-node vs 3-node benchmark matrix")
		clients     = flag.Int("clients", 128, "concurrent closed-loop clients")
		duration    = flag.Duration("duration", 2*time.Second, "duration of each phase")
		scanFrac    = flag.Float64("scan-frac", 0.15, "fraction of requests that are streaming scans")
		sets        = flag.Int("sets", 12, "distinct pattern sets in the mix")
		sloP99      = flag.Duration("slo-p99", 250*time.Millisecond, "/v1/match latency objective for the report's SLO compliance (0 disables)")
		sloScanP99  = flag.Duration("slo-scan-p99", 2*time.Second, "/v1/scan latency objective (0 disables)")
		out         = flag.String("out", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()
	if !*selfcluster && *targets == "" {
		log.Fatal("pass -targets or -selfcluster")
	}

	w := newWorkload(*sets, *scanFrac)
	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Clients:   *clients,
		DurationS: duration.Seconds(),
		ScanFrac:  *scanFrac,
	}

	if *targets != "" {
		var ts []string
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				ts = append(ts, t)
			}
		}
		rep.Targets = ts
		st, samples := run(w, ts, *clients, *duration, nil)
		attachObs(&st, samples, *sloP99, *sloScanP99)
		rep.External = &st
		log.Printf("external: %d served, p50 %.2fms p99 %.2fms, %.0f rps, %d failed",
			st.Served, st.P50MS, st.P99MS, st.ThroughputRPS, st.Failed)
	}

	if *selfcluster {
		// Phase 1: single replica baseline.
		one, err := serve.BootCluster(1, serve.Config{}, nil)
		if err != nil {
			log.Fatal(err)
		}
		st1, samples1 := run(w, []string{one[0].URL}, *clients, *duration, nil)
		one[0].Kill()
		attachObs(&st1, samples1, *sloP99, *sloScanP99)
		rep.OneNode = &st1
		log.Printf("1-node: %d served, p50 %.2fms p99 %.2fms, %.0f rps, %d failed, %d rejected",
			st1.Served, st1.P50MS, st1.P99MS, st1.ThroughputRPS, st1.Failed, st1.Rejected)

		// Phase 2: three replicas; kill one at the midpoint and measure
		// how long failures persist afterwards.
		nodes, err := serve.BootCluster(3, serve.Config{}, nil)
		if err != nil {
			log.Fatal(err)
		}
		urls := []string{nodes[0].URL, nodes[1].URL, nodes[2].URL}
		var killedAt atomic.Int64
		st3, samples := run(w, urls, *clients, *duration, func() string {
			killedAt.Store(time.Now().UnixNano())
			nodes[2].Kill()
			log.Printf("killed replica %s", nodes[2].URL)
			return nodes[2].URL
		})
		attachObs(&st3, samples, *sloP99, *sloScanP99)
		rep.ThreeNode = &st3

		kt := time.Unix(0, killedAt.Load())
		ks := killStats{}
		for _, s := range samples {
			if s.kind == 'f' && s.done.After(kt) {
				ks.FailuresAfterKill++
				if ms := float64(s.done.Sub(kt)) / float64(time.Millisecond); ms > ks.RecoveryMS {
					ks.RecoveryMS = ms
				}
			}
		}
		for _, nd := range nodes[:2] {
			snap := nd.Server.Metrics().Snapshot()
			ks.DegradedServes += snap.Counter("bitgen_cluster_degraded_serves_total")
			ks.StandbyServes += snap.Counter("bitgen_cluster_standby_serves_total")
			ks.ReceivedForwards += snap.Counter("bitgen_cluster_received_forwards_total")
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			nd.Shutdown(ctx)
			cancel()
		}
		rep.Kill = &ks
		log.Printf("3-node: %d served, p50 %.2fms p99 %.2fms, %.0f rps, %d failed, %d rejected",
			st3.Served, st3.P50MS, st3.P99MS, st3.ThroughputRPS, st3.Failed, st3.Rejected)
		log.Printf("kill: recovery %.0fms, %d failures after kill, standby %.0f degraded %.0f",
			ks.RecoveryMS, ks.FailuresAfterKill, ks.StandbyServes, ks.DegradedServes)

		// Phase 3: cold vs warm start. Boot a replica on a snapshot
		// directory and drive every set once (cold: all compiled,
		// persisted write-behind); restart it on the same directory and
		// drive again (warm: loaded from snapshots, zero compiles).
		snapDir, err := os.MkdirTemp("", "bitload-snap-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(snapDir)
		scfg := serve.Config{SnapshotDir: snapDir, SnapshotScrubInterval: -1}
		drive := func() (first200, allSets time.Duration, compiles, warmLoads float64) {
			t0 := time.Now()
			nodes, err := serve.BootCluster(1, scfg, nil)
			if err != nil {
				log.Fatal(err)
			}
			client := &http.Client{Timeout: 10 * time.Second}
			for i, body := range w.matchBodies {
				resp, err := client.Post(nodes[0].URL+"/v1/match", "application/json", strings.NewReader(body))
				if err != nil {
					log.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					log.Fatalf("warm-start phase: status %d", resp.StatusCode)
				}
				if i == 0 {
					first200 = time.Since(t0)
				}
			}
			allSets = time.Since(t0)
			snap := nodes[0].Server.Metrics().Snapshot()
			compiles = snap.Counter("bitgen_serve_engine_compiles_total")
			warmLoads = snap.Counter("bitgen_snapshot_warm_starts_total")
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			nodes[0].Shutdown(ctx)
			cancel()
			return first200, allSets, compiles, warmLoads
		}
		cf, ca, cc, _ := drive()
		wf, wa, wc, wl := drive()
		ws := warmStats{
			Sets:           len(w.matchBodies),
			ColdFirst200MS: float64(cf) / float64(time.Millisecond),
			ColdAllSetsMS:  float64(ca) / float64(time.Millisecond),
			ColdCompiles:   cc,
			WarmFirst200MS: float64(wf) / float64(time.Millisecond),
			WarmAllSetsMS:  float64(wa) / float64(time.Millisecond),
			WarmCompiles:   wc,
			WarmLoads:      wl,
		}
		rep.WarmStart = &ws
		log.Printf("warm start: cold first-200 %.1fms (%.0f compiles), warm first-200 %.1fms (%.0f compiles, %.0f loaded)",
			ws.ColdFirst200MS, ws.ColdCompiles, ws.WarmFirst200MS, ws.WarmCompiles, ws.WarmLoads)
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
