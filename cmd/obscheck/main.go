// Command obscheck validates observability artifacts: Chrome trace_event
// JSON files (as produced by rxgrep -trace / Engine.WriteTrace),
// Prometheus text-exposition dumps (rxgrep -metrics /
// Engine.WritePrometheus), stitched multi-node cluster traces
// (bitgend -stitch / serve.StitchTrace), and anomaly flight-recorder
// bundles (bitgend /debug/bundle). It is the checker behind
// `make obs-smoke` and `make obs-cluster-smoke`.
//
// Usage:
//
//	obscheck -trace out.json
//	obscheck -metrics metrics.txt
//	obscheck -stitched stitched.json -stitch-nodes 3
//	obscheck -bundle bundle.json
//
// Exit status 0 when every given artifact is well-formed; 1 with a
// diagnostic otherwise.
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	tracePath := flag.String("trace", "", "Chrome trace_event JSON file to validate")
	metricsPath := flag.String("metrics", "", "Prometheus text-exposition file to validate")
	stitchedPath := flag.String("stitched", "", "stitched multi-node cluster trace (bitgend -stitch output) to validate")
	stitchNodes := flag.Int("stitch-nodes", 2, "minimum distinct node lanes a stitched trace must span")
	bundlePath := flag.String("bundle", "", "anomaly flight-recorder bundle (sha256-sealed JSON) to validate")
	flag.Parse()
	if *tracePath == "" && *metricsPath == "" && *stitchedPath == "" && *bundlePath == "" {
		fmt.Fprintln(os.Stderr, "usage: obscheck [-trace FILE] [-metrics FILE] [-stitched FILE [-stitch-nodes N]] [-bundle FILE]")
		os.Exit(2)
	}
	ok := true
	if *tracePath != "" {
		if err := checkTrace(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %s\n", *tracePath, err)
			ok = false
		} else {
			fmt.Printf("obscheck: %s: valid Chrome trace\n", *tracePath)
		}
	}
	if *metricsPath != "" {
		if err := checkMetrics(*metricsPath); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %s\n", *metricsPath, err)
			ok = false
		} else {
			fmt.Printf("obscheck: %s: valid Prometheus exposition\n", *metricsPath)
		}
	}
	if *stitchedPath != "" {
		if err := checkStitched(*stitchedPath, *stitchNodes); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %s\n", *stitchedPath, err)
			ok = false
		} else {
			fmt.Printf("obscheck: %s: valid stitched cluster trace (>= %d node lanes, one trace ID)\n", *stitchedPath, *stitchNodes)
		}
	}
	if *bundlePath != "" {
		if err := checkBundle(*bundlePath); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %s\n", *bundlePath, err)
			ok = false
		} else {
			fmt.Printf("obscheck: %s: valid anomaly bundle (sha256 verified)\n", *bundlePath)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// traceEvent mirrors the trace_event fields obscheck validates; unknown
// fields are tolerated (the format is extensible).
type traceEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Ts   *float64         `json:"ts"`
	Dur  *float64         `json:"dur"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	Args map[string]any `json:"args"`
}

type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// checkTrace validates the trace_event JSON schema: a traceEvents array
// whose entries carry name/ph/ts/pid, with complete ("X") events also
// carrying a non-negative dur.
func checkTrace(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc traceDoc
	dec := json.NewDecoder(strings.NewReader(string(buf)))
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("missing traceEvents array")
	}
	spans := 0
	for i, ev := range doc.TraceEvents {
		where := fmt.Sprintf("traceEvents[%d]", i)
		if ev.Name == "" {
			return fmt.Errorf("%s: missing name", where)
		}
		if ev.Ph == "" {
			return fmt.Errorf("%s (%q): missing ph", where, ev.Name)
		}
		if ev.Ts == nil {
			return fmt.Errorf("%s (%q): missing ts", where, ev.Name)
		}
		if ev.Pid == nil {
			return fmt.Errorf("%s (%q): missing pid", where, ev.Name)
		}
		switch ev.Ph {
		case "X":
			if ev.Dur == nil {
				return fmt.Errorf("%s (%q): complete event missing dur", where, ev.Name)
			}
			if *ev.Dur < 0 {
				return fmt.Errorf("%s (%q): negative dur", where, ev.Name)
			}
			spans++
		case "i", "I", "M", "B", "E":
			// instant / metadata / duration-begin / duration-end: fine.
		default:
			return fmt.Errorf("%s (%q): unknown phase %q", where, ev.Name, ev.Ph)
		}
	}
	if spans == 0 {
		return fmt.Errorf("no complete (ph=X) spans recorded")
	}
	return nil
}

var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	labelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// checkMetrics validates Prometheus text exposition format 0.0.4: HELP
// and TYPE comments with valid types, sample lines with parseable label
// sets and float values, every sample preceded by a TYPE for its family,
// and histogram bucket series that are cumulative and end at +Inf with
// bucket{+Inf} == count.
func checkMetrics(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return checkMetricsReader(f)
}

func checkMetricsReader(f io.Reader) error {
	typed := map[string]string{} // family → type
	type histKey struct{ name, labels string }
	buckets := map[histKey]map[float64]float64{} // series → le → value
	counts := map[histKey]float64{}
	samples := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "# HELP ") {
				if !helpRe.MatchString(line) {
					return fmt.Errorf("line %d: malformed HELP: %q", ln, line)
				}
				continue
			}
			if strings.HasPrefix(line, "# TYPE ") {
				m := typeRe.FindStringSubmatch(line)
				if m == nil {
					return fmt.Errorf("line %d: malformed TYPE: %q", ln, line)
				}
				typed[m[1]] = m[2]
				continue
			}
			continue // free-form comment
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample: %q", ln, line)
		}
		name, labels, valStr := m[1], m[3], m[4]
		val, err := parsePromFloat(valStr)
		if err != nil {
			return fmt.Errorf("line %d: bad value %q: %w", ln, valStr, err)
		}
		var le *float64
		var otherLabels []string
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				lm := labelRe.FindStringSubmatch(pair)
				if lm == nil {
					return fmt.Errorf("line %d: malformed label %q", ln, pair)
				}
				if lm[1] == "le" {
					v, err := parsePromFloat(lm[2])
					if err != nil {
						return fmt.Errorf("line %d: bad le %q: %w", ln, lm[2], err)
					}
					le = &v
				} else {
					otherLabels = append(otherLabels, pair)
				}
			}
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				family = base
			}
		}
		if _, ok := typed[family]; !ok {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", ln, name)
		}
		if typed[family] == "histogram" {
			key := histKey{family, strings.Join(otherLabels, ",")}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le == nil {
					return fmt.Errorf("line %d: histogram bucket without le label", ln)
				}
				if buckets[key] == nil {
					buckets[key] = map[float64]float64{}
				}
				buckets[key][*le] = val
			case strings.HasSuffix(name, "_count"):
				counts[key] = val
			}
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples")
	}
	for key, bs := range buckets {
		les := make([]float64, 0, len(bs))
		for le := range bs {
			les = append(les, le)
		}
		sort.Float64s(les)
		if len(les) == 0 || !math.IsInf(les[len(les)-1], 1) {
			return fmt.Errorf("histogram %s: bucket series does not end at +Inf", key.name)
		}
		prev := 0.0
		for _, le := range les {
			if bs[le] < prev {
				return fmt.Errorf("histogram %s: non-cumulative bucket at le=%g", key.name, le)
			}
			prev = bs[le]
		}
		if c, ok := counts[key]; ok && bs[les[len(les)-1]] != c {
			return fmt.Errorf("histogram %s: +Inf bucket %g != count %g", key.name, bs[les[len(les)-1]], c)
		}
	}
	return nil
}

// checkStitched validates a stitched multi-node cluster trace: it must
// be a valid Chrome trace whose complete (ph=X) spans all carry one and
// the same non-empty args.trace ID, spread across at least minNodes
// distinct process lanes, each lane named by a process_name metadata
// record.
func checkStitched(path string, minNodes int) error {
	if err := checkTrace(path); err != nil {
		return err
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc traceDoc
	if err := json.Unmarshal(buf, &doc); err != nil {
		return err
	}
	named := map[int]string{} // pid → process name
	spanPids := map[int]int{} // pid → span count
	traceID := ""
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" || ev.Pid == nil {
				continue
			}
			name, _ := ev.Args["name"].(string)
			if name == "" {
				return fmt.Errorf("traceEvents[%d]: process_name metadata without args.name", i)
			}
			named[*ev.Pid] = name
		case "X":
			id, _ := ev.Args["trace"].(string)
			if id == "" {
				return fmt.Errorf("traceEvents[%d] (%q): span missing args.trace", i, ev.Name)
			}
			if traceID == "" {
				traceID = id
			} else if id != traceID {
				return fmt.Errorf("traceEvents[%d] (%q): trace %s differs from %s — a stitched view must hold exactly one trace", i, ev.Name, id, traceID)
			}
			if ev.Pid != nil {
				spanPids[*ev.Pid]++
			}
		}
	}
	if traceID == "" {
		return fmt.Errorf("no spans carry a trace ID")
	}
	if len(spanPids) < minNodes {
		return fmt.Errorf("spans cover %d node lanes, want >= %d", len(spanPids), minNodes)
	}
	for pid := range spanPids {
		if named[pid] == "" {
			return fmt.Errorf("pid %d has spans but no process_name metadata", pid)
		}
	}
	return nil
}

// bundleEnvelope / bundleBody mirror the serve layer's flight-recorder
// bundle format. Body stays a RawMessage so the checksum is recomputed
// over exactly the written bytes.
type bundleEnvelope struct {
	SHA256 string          `json:"sha256"`
	Body   json.RawMessage `json:"body"`
}

type bundleBody struct {
	Reason             string            `json:"reason"`
	Node               string            `json:"node"`
	GeneratedUnixMicro int64             `json:"generated_us"`
	Spans              []json.RawMessage `json:"spans"`
	Events             []json.RawMessage `json:"events"`
	Metrics            string            `json:"metrics"`
	Goroutines         string            `json:"goroutines"`
}

// checkBundle validates an anomaly flight-recorder bundle: the envelope
// checksum must match the body bytes, and the body must carry every
// diagnostic section — a reason, the recording node, a timestamp, at
// least one event, a goroutine dump, and a metrics snapshot that is
// itself valid Prometheus exposition.
func checkBundle(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var env bundleEnvelope
	if err := json.Unmarshal(buf, &env); err != nil {
		return fmt.Errorf("not a sealed bundle: %w", err)
	}
	if env.SHA256 == "" {
		return fmt.Errorf("missing sha256 seal")
	}
	sum := sha256.Sum256(env.Body)
	if got := hex.EncodeToString(sum[:]); got != env.SHA256 {
		return fmt.Errorf("integrity failure: body hashes to %.12s…, sealed as %.12s…", got, env.SHA256)
	}
	var body bundleBody
	if err := json.Unmarshal(env.Body, &body); err != nil {
		return fmt.Errorf("body: %w", err)
	}
	if body.Reason == "" {
		return fmt.Errorf("body missing reason")
	}
	if body.Node == "" {
		return fmt.Errorf("body missing node")
	}
	if body.GeneratedUnixMicro <= 0 {
		return fmt.Errorf("body missing generated_us")
	}
	if len(body.Events) == 0 {
		return fmt.Errorf("body has no events — a bundle must capture the event ring")
	}
	if body.Spans == nil {
		return fmt.Errorf("body missing spans section")
	}
	if body.Goroutines == "" {
		return fmt.Errorf("body missing goroutine dump")
	}
	if body.Metrics == "" {
		return fmt.Errorf("body missing metrics snapshot")
	}
	if err := checkMetricsReader(strings.NewReader(body.Metrics)); err != nil {
		return fmt.Errorf("embedded metrics snapshot: %w", err)
	}
	return nil
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			cur.WriteRune(r)
			escaped = false
		case r == '\\' && inQuote:
			cur.WriteRune(r)
			escaped = true
		case r == '"':
			cur.WriteRune(r)
			inQuote = !inQuote
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// parsePromFloat parses a Prometheus sample value (accepts +Inf/-Inf/NaN).
func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
