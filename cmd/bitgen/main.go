// Command bitgen compiles regex patterns to bitstream programs and
// optionally runs them over an input file on the simulated GPU.
//
// Usage:
//
//	bitgen -e 'a(bc)*d' -e 'cat|dog' -dump            # show the program
//	bitgen -e 'error.*timeout' -stats logfile.txt     # run + statistics
//	bitgen -f patterns.txt -count input.bin           # per-pattern counts
//
// Flags -dump-passes and -device expose the compilation pipeline and the
// cost model's GPU profile.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"bitgen"
	"bitgen/internal/cuda"
	"bitgen/internal/dfg"
	"bitgen/internal/ir"
	"bitgen/internal/lower"
	"bitgen/internal/nfa"
	"bitgen/internal/passes"
	"bitgen/internal/rx"
)

type patternList []string

func (p *patternList) String() string     { return strings.Join(*p, ",") }
func (p *patternList) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	var pats patternList
	flag.Var(&pats, "e", "pattern (repeatable)")
	file := flag.String("f", "", "file with one pattern per line")
	dump := flag.Bool("dump", false, "print the lowered bitstream program and exit")
	dumpPasses := flag.Bool("dump-passes", false, "print the program after each optimization pass and exit")
	dumpDot := flag.Bool("dot", false, "print the Glushkov NFA of the patterns in Graphviz DOT form and exit")
	dumpCUDA := flag.Bool("cuda", false, "print the generated CUDA kernel source (post-optimization) and exit")
	device := flag.String("device", "RTX 3090", "GPU profile: 'RTX 3090', 'H100 NVL', 'L40S'")
	countOnly := flag.Bool("count", false, "print only per-pattern match counts")
	explain := flag.Bool("explain", false, "print the compilation report before scanning")
	stats := flag.Bool("stats", false, "print modeled execution statistics")
	foldCase := flag.Bool("i", false, "case-insensitive matching")
	flag.Parse()

	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" && !strings.HasPrefix(line, "#") {
				pats = append(pats, line)
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			fatal(err)
		}
	}
	if len(pats) == 0 {
		fmt.Fprintln(os.Stderr, "bitgen: no patterns (use -e or -f)")
		os.Exit(2)
	}

	if *dumpDot {
		asts := make([]rx.Node, len(pats))
		for i, p := range pats {
			ast, err := rx.Parse(p)
			if err != nil {
				fatal(err)
			}
			asts[i] = ast
		}
		n, err := nfa.Build(pats, asts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(nfa.ToDot(n))
		return
	}
	if *dumpCUDA {
		regexes := make([]lower.Regex, len(pats))
		for i, p := range pats {
			ast, err := rx.Parse(p)
			if err != nil {
				fatal(err)
			}
			regexes[i] = lower.Regex{Name: p, AST: ast}
		}
		prog, err := lower.Group(regexes, lower.Options{})
		if err != nil {
			fatal(err)
		}
		passes.Rebalance(prog, passes.RebalanceOptions{})
		passes.MergeBarriers(prog, passes.MergeOptions{MergeSize: 8})
		passes.InsertGuards(prog, passes.ZBSOptions{})
		src, err := cuda.Options{}.Generate(prog)
		if err != nil {
			fatal(err)
		}
		fmt.Print(src)
		return
	}
	if *dump || *dumpPasses {
		dumpPrograms(pats, *dumpPasses)
		return
	}

	args := flag.Args()
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "bitgen: exactly one input file required")
		os.Exit(2)
	}
	input, err := os.ReadFile(args[0])
	if err != nil {
		fatal(err)
	}

	eng, err := bitgen.Compile(pats, &bitgen.Options{Device: *device, FoldCase: *foldCase})
	if err != nil {
		fatal(err)
	}
	if *explain {
		fmt.Fprint(os.Stderr, eng.Explain())
	}
	res, err := eng.Run(input)
	if err != nil {
		fatal(err)
	}
	if *countOnly {
		for _, p := range pats {
			fmt.Printf("%8d %s\n", res.Counts[p], p)
		}
	} else {
		for _, m := range res.Matches {
			fmt.Printf("%d\t%s\n", m.End, m.Pattern)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "modeled time   %v\n", res.Stats.ModeledTime)
		fmt.Fprintf(os.Stderr, "throughput     %.1f MB/s on %s\n", res.Stats.ThroughputMBs, *device)
		fmt.Fprintf(os.Stderr, "DRAM traffic   %.2f MB read, %.2f MB written\n",
			float64(res.Stats.DRAMReadBytes)/1e6, float64(res.Stats.DRAMWriteBytes)/1e6)
		fmt.Fprintf(os.Stderr, "barriers       %d\n", res.Stats.Barriers)
		fmt.Fprintf(os.Stderr, "recompute      %.2f%%\n", res.Stats.RecomputePercent)
		fmt.Fprintf(os.Stderr, "guard skips    %d\n", res.Stats.GuardSkips)
	}
}

// dumpPrograms shows the lowering and pass pipeline for the patterns as
// one group.
func dumpPrograms(pats []string, showPasses bool) {
	regexes := make([]lower.Regex, len(pats))
	for i, p := range pats {
		ast, err := rx.Parse(p)
		if err != nil {
			fatal(err)
		}
		regexes[i] = lower.Regex{Name: p, AST: ast}
	}
	prog, err := lower.Group(regexes, lower.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Println("# lowered bitstream program")
	fmt.Print(prog)
	st := ir.CollectStats(prog)
	fmt.Printf("# instructions: %d and, %d or, %d not, %d shift, %d star, %d while\n",
		st.And, st.Or, st.Not, st.Shift, st.Star, st.While)
	an := dfg.Analyze(prog)
	fmt.Printf("# static overlap distance: %d bits (dynamic loops: %v, carries: %v)\n",
		an.StaticDelta, an.HasDynamic, an.HasCarry)
	if !showPasses {
		return
	}
	r := passes.Rebalance(prog, passes.RebalanceOptions{})
	fmt.Printf("\n# after Shift Rebalancing (%d rewrites, %d rounds)\n", r.Rewrites, r.Iterations)
	fmt.Print(prog)
	sched := passes.MergeBarriers(prog, passes.MergeOptions{MergeSize: 8})
	fmt.Printf("\n# after barrier merging: %d groups, %d deduped copies\n",
		len(sched.Groups), sched.DedupedCopies)
	z := passes.InsertGuards(prog, passes.ZBSOptions{})
	fmt.Printf("\n# after Zero Block Skipping: %d paths, %d guards (%d rejected)\n",
		z.PathsFound, z.GuardsInserted, z.Rejected)
	fmt.Print(prog)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bitgen:", err)
	os.Exit(1)
}
