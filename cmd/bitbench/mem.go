package main

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"bitgen"
	"bitgen/internal/workload"
)

// The mem artifact measures compiled-state residency at ClamAV-database
// scale: it generates the deterministic signature megaset at each size,
// compiles it twice — once with state compression disabled (boxed pointer
// IR, per-group charclass lowering) and once with the default compressed
// state (packed programs, shared charclass basis) — and records measured
// resident bytes per engine and compile wall time for both. Unlike the
// table/figure artifacts these are real host numbers, not modeled GPU
// time; they are the trajectory behind results/BENCH_mem.json and the
// megaset-smoke CI gate.

// memRow is one megaset size measured both ways.
type memRow struct {
	Patterns          int     `json:"patterns"`
	BaselineBytes     int64   `json:"baseline_resident_bytes"`
	CompressedBytes   int64   `json:"compressed_resident_bytes"`
	Ratio             float64 `json:"compression_ratio"`
	BaselineCompileS  float64 `json:"baseline_compile_s"`
	CompressedCompile float64 `json:"compressed_compile_s"`
}

// memReport is the BENCH_mem artifact.
type memReport struct {
	Seed     int64    `json:"seed"`
	Rows     []memRow `json:"sizes"`
	MinRatio float64  `json:"min_ratio_gate"`
	Ceiling  int64    `json:"ceiling_bytes_gate,omitempty"`
	BudgetS  float64  `json:"compile_budget_s_gate,omitempty"`
}

// parseMemSizes parses the -mem-sizes flag ("1000,10000,100000").
func parseMemSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad megaset size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no megaset sizes given")
	}
	return out, nil
}

// memOptions are the compile options for a megaset engine: the pattern
// cap is lifted (the whole point is exceeding DefaultMaxPatterns) and
// everything else stays at the paper defaults so the measured state is
// the state a real deployment would hold.
func memOptions(baseline bool) *bitgen.Options {
	return &bitgen.Options{
		DisableStateCompression: baseline,
		Limits:                  bitgen.Limits{MaxPatterns: -1},
	}
}

// runMem executes the megaset residency measurement. The gates — ratio
// floor, resident-bytes ceiling, compile-time budget — apply to the
// largest size only (the smoke's 100k point); smaller sizes are recorded
// for the trajectory.
func runMem(sizesSpec string, seed int64, minRatio float64, ceilingBytes int64, budget time.Duration) (renderable, error) {
	sizes, err := parseMemSizes(sizesSpec)
	if err != nil {
		return nil, err
	}
	rep := &memReport{Seed: seed, MinRatio: minRatio, Ceiling: ceilingBytes, BudgetS: budget.Seconds()}
	for _, size := range sizes {
		app, err := workload.Megaset(size, seed, 0)
		if err != nil {
			return nil, err
		}
		row := memRow{Patterns: size}

		start := time.Now()
		base, err := bitgen.Compile(app.Patterns, memOptions(true))
		if err != nil {
			return nil, fmt.Errorf("megaset %d baseline compile: %w", size, err)
		}
		row.BaselineCompileS = time.Since(start).Seconds()
		row.BaselineBytes = base.ResidentBytes()

		start = time.Now()
		comp, err := bitgen.Compile(app.Patterns, memOptions(false))
		if err != nil {
			return nil, fmt.Errorf("megaset %d compressed compile: %w", size, err)
		}
		row.CompressedCompile = time.Since(start).Seconds()
		row.CompressedBytes = comp.ResidentBytes()

		if row.CompressedBytes > 0 {
			row.Ratio = float64(row.BaselineBytes) / float64(row.CompressedBytes)
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("    megaset %d: baseline %.1f MiB in %.1fs, compressed %.1f MiB in %.1fs (%.1fx)\n",
			size, float64(row.BaselineBytes)/(1<<20), row.BaselineCompileS,
			float64(row.CompressedBytes)/(1<<20), row.CompressedCompile, row.Ratio)
	}

	// Gates on the largest size.
	last := rep.Rows[len(rep.Rows)-1]
	if minRatio > 0 && last.Ratio < minRatio {
		return nil, fmt.Errorf("megaset %d compression ratio %.2fx is below the %.2fx floor",
			last.Patterns, last.Ratio, minRatio)
	}
	if ceilingBytes > 0 && last.CompressedBytes > ceilingBytes {
		return nil, fmt.Errorf("megaset %d compressed resident %d bytes exceeds the %d-byte ceiling",
			last.Patterns, last.CompressedBytes, ceilingBytes)
	}
	if budget > 0 && last.CompressedCompile > budget.Seconds() {
		return nil, fmt.Errorf("megaset %d compile took %.1fs, over the %.1fs budget",
			last.Patterns, last.CompressedCompile, budget.Seconds())
	}
	return rep, nil
}

func (r *memReport) Render() string {
	var b strings.Builder
	b.WriteString("compiled-state residency, megaset trajectory (measured host bytes)\n")
	fmt.Fprintf(&b, "%10s %18s %18s %8s %12s %12s\n",
		"patterns", "baseline bytes", "compressed bytes", "ratio", "base cmpl s", "comp cmpl s")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10d %18d %18d %7.1fx %12.2f %12.2f\n",
			row.Patterns, row.BaselineBytes, row.CompressedBytes, row.Ratio,
			row.BaselineCompileS, row.CompressedCompile)
	}
	return b.String()
}

func (r *memReport) CSV() string {
	var b strings.Builder
	b.WriteString("patterns,baseline_resident_bytes,compressed_resident_bytes,compression_ratio,baseline_compile_s,compressed_compile_s\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%d,%d,%d,%.3f,%.3f,%.3f\n",
			row.Patterns, row.BaselineBytes, row.CompressedBytes, row.Ratio,
			row.BaselineCompileS, row.CompressedCompile)
	}
	return b.String()
}

func (r *memReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
