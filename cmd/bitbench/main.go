// Command bitbench regenerates the paper's evaluation artifacts (tables
// and figures) on the simulated substrate.
//
// Usage:
//
//	bitbench -exp all                 # every artifact, default scale
//	bitbench -exp fig11 -scale 0.1    # Table 2 / Figure 11 at 10% regex scale
//	bitbench -exp table5 -input 500000
//	bitbench -exp fig12 -apps Yara,Brill -csv out/
//
// Experiments: table1, fig11 (alias table2), fig12 (alias table3), table4,
// table5, fig13 (alias table6), fig14, fig15, all. The extra "ladder"
// artifact (not part of "all") scans each application through the public
// resilience ladder and reports which backend served; combine with
// -backend to pin a single rung.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bitgen/internal/cli"
	"bitgen/internal/experiments"
)

type artifact struct {
	name string
	run  func(*experiments.Suite) (renderable, error)
	// file overrides the artifact's output base name (default: name).
	file string
}

type renderable interface {
	Render() string
	CSV() string
}

// jsonRenderable is implemented by artifacts that also emit a structured
// JSON form (written under the -json directory).
type jsonRenderable interface {
	JSON() ([]byte, error)
}

var artifacts = []artifact{
	{name: "table1", run: func(s *experiments.Suite) (renderable, error) { return s.Table1() }},
	{name: "fig11", run: func(s *experiments.Suite) (renderable, error) { return s.Table2Figure11() }},
	{name: "fig12", run: func(s *experiments.Suite) (renderable, error) { return s.Figure12Breakdown() }},
	{name: "table4", run: func(s *experiments.Suite) (renderable, error) { return s.Table4Memory() }},
	{name: "table5", run: func(s *experiments.Suite) (renderable, error) { return s.Table5Recompute() }},
	{name: "fig13", run: func(s *experiments.Suite) (renderable, error) { return s.Figure13MergeSize() }},
	{name: "fig14", run: func(s *experiments.Suite) (renderable, error) { return s.Figure14Interval() }},
	{name: "fig15", run: func(s *experiments.Suite) (renderable, error) { return s.Figure15Portability() }},
	{name: "extras", run: func(s *experiments.Suite) (renderable, error) { return s.AblationExtras() }},
	{name: "ctasweep", run: func(s *experiments.Suite) (renderable, error) { return s.CTASweep() }},
}

var aliases = map[string]string{
	"table2": "fig11",
	"table3": "fig12",
	"table6": "fig13",
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1, fig11, fig12, table4, table5, fig13, fig14, fig15, all)")
	scale := flag.Float64("scale", 0.05, "fraction of the paper's regex counts to generate")
	inputBytes := flag.Int("input", 1_000_000, "input size in bytes")
	appsFlag := flag.String("apps", "", "comma-separated application subset (default: all ten)")
	seed := flag.Int64("seed", 0, "workload generation seed")
	hsThreads := flag.Int("hs-threads", 8, "HS-MT goroutine count")
	csvDir := flag.String("csv", "", "directory to also write CSV files into")
	jsonDir := flag.String("json", "", "directory to also write JSON artifacts into (artifacts that support it)")
	backend := flag.String("backend", "", cli.BackendUsage)
	benchTime := flag.String("bench-time", "3s", "per-benchmark measuring time for -exp bench (e.g. 200ms for CI smoke)")
	minScanMBs := flag.Float64("min-scan-mbs", 0, "fail -exp bench when the pipelined scan falls below this MB/s (0 = no gate)")
	memSizes := flag.String("mem-sizes", "1000,10000,100000", "comma-separated megaset pattern counts for -exp mem")
	memMinRatio := flag.Float64("mem-min-ratio", 2.0, "fail -exp mem when the largest size's compression ratio falls below this (0 = no gate)")
	memCeilingMB := flag.Int64("mem-ceiling-mb", 0, "fail -exp mem when the largest size's compressed resident bytes exceed this many MiB (0 = no gate)")
	memBudget := flag.Duration("mem-budget", 0, "fail -exp mem when the largest size's compressed compile exceeds this duration (0 = no gate)")
	flag.Parse()

	opts := experiments.Options{
		RegexScale: *scale,
		InputBytes: *inputBytes,
		Seed:       *seed,
		HSThreads:  *hsThreads,
	}
	if *appsFlag != "" {
		opts.Apps = strings.Split(*appsFlag, ",")
	}
	suite := experiments.NewSuite(opts)

	name := strings.ToLower(*exp)
	if canonical, ok := aliases[name]; ok {
		name = canonical
	}
	// The ladder and profile artifacts exercise the public API rather
	// than the experiment harness; they are opt-in and not part of "all".
	extraArtifacts := []artifact{
		{name: "ladder", run: func(s *experiments.Suite) (renderable, error) {
			return runLadder(s, *backend)
		}},
		{name: "profile", run: func(s *experiments.Suite) (renderable, error) {
			return runProfile(s)
		}},
		{name: "bench", run: func(*experiments.Suite) (renderable, error) {
			return runBench(*benchTime, *minScanMBs)
		}, file: "BENCH_scan"},
		{name: "mem", run: func(*experiments.Suite) (renderable, error) {
			return runMem(*memSizes, *seed, *memMinRatio, *memCeilingMB<<20, *memBudget)
		}, file: "BENCH_mem"},
	}
	var selected []artifact
	if name == "all" {
		selected = artifacts
	} else {
		for _, a := range extraArtifacts {
			if a.name == name {
				selected = []artifact{a}
			}
		}
	}
	if selected == nil {
		for _, a := range artifacts {
			if a.name == name {
				selected = []artifact{a}
			}
		}
		if selected == nil {
			fmt.Fprintf(os.Stderr, "bitbench: unknown experiment %q\n", *exp)
			flag.Usage()
			os.Exit(2)
		}
	}

	for _, a := range selected {
		if a.file == "" {
			a.file = a.name
		}
		start := time.Now()
		res, err := a.run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bitbench: %s: %s\n", a.name, cli.Describe(err))
			os.Exit(1)
		}
		fmt.Printf("==> %s (%.1fs)\n%s\n", a.name, time.Since(start).Seconds(), res.Render())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "bitbench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, a.file+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "bitbench:", err)
				os.Exit(1)
			}
			fmt.Printf("    wrote %s\n", path)
		}
		if *jsonDir != "" {
			jr, ok := res.(jsonRenderable)
			if !ok {
				fmt.Fprintf(os.Stderr, "bitbench: %s has no JSON form, skipping\n", a.name)
				continue
			}
			buf, err := jr.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "bitbench:", err)
				os.Exit(1)
			}
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "bitbench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*jsonDir, a.file+".json")
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "bitbench:", err)
				os.Exit(1)
			}
			fmt.Printf("    wrote %s\n", path)
		}
	}
}
