package main

import (
	"fmt"
	"strings"

	"bitgen"
	"bitgen/internal/experiments"
	"bitgen/internal/workload"
)

// ladderRow is one application scanned through the public resilience
// ladder rather than the raw experiment harness.
type ladderRow struct {
	App     string
	Backend string
	Matches int
	MBs     float64
	Health  bitgen.Health
}

type ladderReport struct {
	forced string
	rows   []ladderRow
}

// runLadder scans each selected application through the public API with
// resilience enabled, reporting which rung served and the ladder health.
// A forced backend pins the ladder to that single rung.
func runLadder(s *experiments.Suite, forced string) (*ladderReport, error) {
	apps := s.Opts().Apps
	if len(apps) == 0 {
		apps = workload.Names()
	}
	rep := &ladderReport{forced: forced}
	for _, name := range apps {
		app, err := s.App(name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		ropts := &bitgen.ResilienceOptions{ForceBackend: forced}
		eng, err := bitgen.Compile(app.Patterns, &bitgen.Options{Resilience: ropts})
		if err != nil {
			return nil, fmt.Errorf("%s: compile: %w", name, err)
		}
		res, err := eng.Run(app.Input)
		if err != nil {
			return nil, fmt.Errorf("%s: run: %w", name, err)
		}
		rep.rows = append(rep.rows, ladderRow{
			App:     name,
			Backend: res.Backend,
			Matches: len(res.Matches),
			MBs:     res.Stats.ThroughputMBs,
			Health:  eng.Health(),
		})
	}
	return rep, nil
}

func (r *ladderReport) Render() string {
	var b strings.Builder
	if r.forced != "" {
		fmt.Fprintf(&b, "resilience ladder pinned to %q\n", r.forced)
	} else {
		b.WriteString("resilience ladder: bitstream -> hybrid -> nfa\n")
	}
	fmt.Fprintf(&b, "%-12s %-10s %10s %12s  %s\n", "app", "served-by", "matches", "MB/s", "backend states")
	for _, row := range r.rows {
		var states []string
		for _, bh := range row.Health.Backends {
			s := bh.State.String()
			if bh.Quarantined {
				s = "quarantined"
			}
			states = append(states, fmt.Sprintf("%s=%s", bh.Name, s))
		}
		fmt.Fprintf(&b, "%-12s %-10s %10d %12.1f  %s\n",
			row.App, row.Backend, row.Matches, row.MBs, strings.Join(states, " "))
	}
	return b.String()
}

func (r *ladderReport) CSV() string {
	var b strings.Builder
	b.WriteString("app,served_by,matches,modeled_mbs,calls,fallbacks,crosschecks,mismatches\n")
	for _, row := range r.rows {
		h := row.Health
		fmt.Fprintf(&b, "%s,%s,%d,%.2f,%d,%d,%d,%d\n",
			row.App, row.Backend, row.Matches, row.MBs, h.Calls, h.Fallbacks, h.CrossChecks, h.Mismatches)
	}
	return b.String()
}
