package main

import (
	"encoding/json"
	"fmt"
	"strings"

	"bitgen"
	"bitgen/internal/experiments"
	"bitgen/internal/workload"
)

// profileRow is one application scanned with observability enabled; its
// Profile carries the per-kernel modeled time components
// (compute/smem/barrier/DRAM seconds) joined with the observed counters.
type profileRow struct {
	App     string          `json:"app"`
	Matches int             `json:"matches"`
	Profile *bitgen.Profile `json:"profile"`
}

type profileReport struct {
	rows []profileRow
}

// runProfile scans each selected application through the public API with
// metrics enabled and collects the per-scan profile artifact. The
// numbers are gpusim.PerCTATime / the engine's TimeBreakdown — the same
// values the rxgrep -profile exporter writes, by construction.
func runProfile(s *experiments.Suite) (*profileReport, error) {
	apps := s.Opts().Apps
	if len(apps) == 0 {
		apps = workload.Names()
	}
	rep := &profileReport{}
	for _, name := range apps {
		app, err := s.App(name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		eng, err := bitgen.Compile(app.Patterns, &bitgen.Options{
			Observability: &bitgen.ObservabilityOptions{Metrics: true},
		})
		if err != nil {
			return nil, fmt.Errorf("%s: compile: %w", name, err)
		}
		res, err := eng.Run(app.Input)
		if err != nil {
			return nil, fmt.Errorf("%s: run: %w", name, err)
		}
		if res.Profile == nil {
			return nil, fmt.Errorf("%s: no profile in result", name)
		}
		rep.rows = append(rep.rows, profileRow{
			App:     name,
			Matches: len(res.Matches),
			Profile: res.Profile,
		})
	}
	return rep, nil
}

func (r *profileReport) Render() string {
	var b strings.Builder
	b.WriteString("per-scan profiles (modeled seconds; kernels = CTA groups)\n")
	fmt.Fprintf(&b, "%-12s %8s %12s %12s %12s %12s %12s %12s\n",
		"app", "kernels", "compute_s", "smem_s", "barrier_s", "dram_s", "total_s", "MB/s")
	for _, row := range r.rows {
		p := row.Profile
		fmt.Fprintf(&b, "%-12s %8d %12.3e %12.3e %12.3e %12.3e %12.3e %12.1f\n",
			row.App, len(p.Kernels), p.Time.ComputeSec, p.Time.SMemSec,
			p.Time.BarrierSec, p.Time.DRAMSec, p.Time.TotalSec, p.ThroughputMBs)
	}
	return b.String()
}

func (r *profileReport) CSV() string {
	var b strings.Builder
	b.WriteString("app,group,patterns,compute_sec,smem_sec,barrier_sec,dram_sec,unit_ops,dram_read_bytes,dram_write_bytes,smem_read_bytes,smem_write_bytes,barriers,guard_skips\n")
	for _, row := range r.rows {
		for _, k := range row.Profile.Kernels {
			fmt.Fprintf(&b, "%s,%d,%d,%g,%g,%g,%g,%d,%d,%d,%d,%d,%d,%d\n",
				row.App, k.Group, len(k.Patterns),
				k.Time.ComputeSec, k.Time.SMemSec, k.Time.BarrierSec, k.Time.DRAMSec,
				k.Stats.UnitOps, k.Stats.DRAMReadBytes, k.Stats.DRAMWriteBytes,
				k.Stats.SMemReadBytes, k.Stats.SMemWriteBytes,
				k.Stats.Barriers, k.Stats.GuardSkips)
		}
	}
	return b.String()
}

// JSON renders the full artifact — every app's complete Profile including
// per-kernel time components — for the -json output directory.
func (r *profileReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r.rows, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
