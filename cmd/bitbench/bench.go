package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	"bitgen"
	"bitgen/internal/transpose"
)

// The bench artifact measures the host-side substrate hot paths — transpose,
// single-shot Run, and the pipelined streaming scanner — as MB/s plus
// allocs/op, the numbers the streaming-pipeline work is accountable to.
// Unlike the table/figure artifacts it reports real wall-clock throughput of
// the simulator process, not modeled GPU time.

var benchPatterns = []string{"fox|dog", "qu[a-z]{2,6}k", "l.zy", "0\\d{3}"}

// benchRow is one measured hot path.
type benchRow struct {
	Name     string  `json:"name"`
	MBs      float64 `json:"mb_per_s"`
	NsPerOp  int64   `json:"ns_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	BytesOp  int64   `json:"bytes_per_op"`
	Note     string  `json:"note,omitempty"`
}

// benchReport is the BENCH_scan artifact.
type benchReport struct {
	GOOS       string     `json:"goos"`
	GOARCH     string     `json:"goarch"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Rows       []benchRow `json:"benchmarks"`
}

func row(name, note string, bytesPerOp int64, fn func(b *testing.B)) benchRow {
	r := testing.Benchmark(fn)
	mbs := 0.0
	if ns := r.NsPerOp(); ns > 0 {
		mbs = float64(bytesPerOp) / 1e6 / (float64(ns) / 1e9)
	}
	return benchRow{
		Name: name, Note: note,
		MBs:      mbs,
		NsPerOp:  r.NsPerOp(),
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
	}
}

// chunkSource feeds a benchmark exactly limit bytes by repeating data,
// without materializing the whole stream.
type chunkSource struct {
	data  []byte
	pos   int
	limit int64
}

func (r *chunkSource) Read(p []byte) (int, error) {
	if r.limit <= 0 {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:])
	if int64(n) > r.limit {
		n = int(r.limit)
	}
	r.pos += n
	if r.pos == len(r.data) {
		r.pos = 0
	}
	r.limit -= int64(n)
	return n, nil
}

func runBench(benchTime string, minScanMBs float64) (renderable, error) {
	// Long enough runs that per-call setup (sessions, channels) amortizes to
	// zero and allocs/op reports the steady-state loop. CI smoke runs pass a
	// short -bench-time; the default favors stable numbers.
	testing.Init()
	if benchTime == "" {
		benchTime = "3s"
	}
	if err := flag.Set("test.benchtime", benchTime); err != nil {
		return nil, err
	}
	input := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog 0123456789 ", 2000))
	eng, err := bitgen.Compile(benchPatterns, &bitgen.Options{CTAs: 4})
	if err != nil {
		return nil, err
	}
	const chunk = 256 << 10

	rep := &benchReport{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, GOMAXPROCS: runtime.GOMAXPROCS(0)}

	rep.Rows = append(rep.Rows, row("transpose", "byte-parallel S2P into fresh basis",
		int64(len(input)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				transpose.Transpose(input)
			}
		}))
	rep.Rows = append(rep.Rows, row("transpose_into", "S2P reusing a caller basis (scan hot path)",
		int64(len(input)), func(b *testing.B) {
			var basis transpose.Basis
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				transpose.TransposeInto(&basis, input)
			}
		}))
	rep.Rows = append(rep.Rows, row("run_single_shot", "Engine.Run host wall-clock, whole input",
		int64(len(input)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(input); err != nil {
					b.Fatal(err)
				}
			}
		}))
	rep.Rows = append(rep.Rows, row("scanreader_pipelined", "streaming scan, one op = one 256KiB chunk",
		chunk, func(b *testing.B) {
			src := &chunkSource{data: input, limit: int64(b.N) * chunk}
			b.ReportAllocs()
			b.ResetTimer()
			if err := eng.ScanReader(src, chunk, func(bitgen.Match) {}); err != nil {
				b.Fatal(err)
			}
		}))
	rep.Rows = append(rep.Rows, row("scanreader_sequential_ref", "chunk-at-a-time Run+carry reference",
		chunk, func(b *testing.B) {
			src := &chunkSource{data: input, limit: int64(b.N) * chunk}
			b.ReportAllocs()
			b.ResetTimer()
			if err := scanSequentialRef(eng, src, chunk, func(bitgen.Match) {}); err != nil {
				b.Fatal(err)
			}
		}))

	// Batched launches at one core: workers drain queued chunks into
	// multi-stream kernel launches (Options.ScanBatch), amortizing plan
	// traversal without any extra parallelism.
	beng, err := bitgen.Compile(benchPatterns, &bitgen.Options{CTAs: 4, ScanWorkers: 1, ScanBatch: 4})
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, row("scanreader_batched", "streaming scan, batched launches (batch=4, 1 worker)",
		chunk, func(b *testing.B) {
			src := &chunkSource{data: input, limit: int64(b.N) * chunk}
			b.ReportAllocs()
			b.ResetTimer()
			if err := beng.ScanReader(src, chunk, func(bitgen.Match) {}); err != nil {
				b.Fatal(err)
			}
		}))

	// Multicore matrix: GOMAXPROCS x pipeline workers. Scaling beyond the
	// host's real core count is necessarily flat — each row's note records
	// the host cores so artifacts from narrow CI hosts read honestly.
	cores := runtime.NumCPU()
	prev := runtime.GOMAXPROCS(0)
	for _, g := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(g)
		for _, w := range []int{1, 2, 4} {
			weng, err := bitgen.Compile(benchPatterns, &bitgen.Options{CTAs: 4, ScanWorkers: w})
			if err != nil {
				runtime.GOMAXPROCS(prev)
				return nil, err
			}
			rep.Rows = append(rep.Rows, row(
				fmt.Sprintf("scan_g%d_w%d", g, w),
				fmt.Sprintf("pipelined scan, GOMAXPROCS=%d workers=%d (host cores=%d)", g, w, cores),
				chunk, func(b *testing.B) {
					src := &chunkSource{data: input, limit: int64(b.N) * chunk}
					b.ReportAllocs()
					b.ResetTimer()
					if err := weng.ScanReader(src, chunk, func(bitgen.Match) {}); err != nil {
						b.Fatal(err)
					}
				}))
		}
	}
	runtime.GOMAXPROCS(prev)

	// Throughput regression gate (make bench-smoke): the pipelined scanner
	// must not fall back under the recorded baseline.
	if minScanMBs > 0 {
		for _, r := range rep.Rows {
			if r.Name == "scanreader_pipelined" && r.MBs < minScanMBs {
				return nil, fmt.Errorf("scanreader_pipelined %.2f MB/s is below the %.2f MB/s floor",
					r.MBs, minScanMBs)
			}
		}
	}
	return rep, nil
}

// scanSequentialRef is the pre-pipeline streaming loop — read a chunk, Run
// it, emit new ends, carry the overlap — kept here as the benchmark's
// reference point (the library's internal sequential path is equivalent).
func scanSequentialRef(eng *bitgen.Engine, r io.Reader, chunkSize int, emit func(bitgen.Match)) error {
	// Longest pattern in benchPatterns is qu[a-z]{2,6}k: 9 bytes.
	const maxLen = 9
	overlap := maxLen - 1
	buf := make([]byte, 0, chunkSize+overlap)
	var offset, emittedThrough int64
	emittedThrough = -1
	for {
		start := len(buf)
		buf = buf[:cap(buf)]
		n, err := io.ReadFull(r, buf[start:start+chunkSize])
		buf = buf[:start+n]
		eof := err == io.EOF || err == io.ErrUnexpectedEOF
		if err != nil && !eof {
			return err
		}
		if len(buf) > 0 {
			res, rerr := eng.Run(buf)
			if rerr != nil {
				return rerr
			}
			for _, m := range res.Matches {
				if abs := offset + int64(m.End); abs > emittedThrough {
					emit(bitgen.Match{Pattern: m.Pattern, End: int(abs)})
				}
			}
			emittedThrough = offset + int64(len(buf)) - 1
			keep := overlap
			if keep > len(buf) {
				keep = len(buf)
			}
			copy(buf[:keep], buf[len(buf)-keep:])
			offset += int64(len(buf) - keep)
			buf = buf[:keep]
		}
		if eof {
			return nil
		}
	}
}

func (r *benchReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "host substrate hot paths (%s/%s, GOMAXPROCS=%d)\n",
		r.GOOS, r.GOARCH, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%-28s %10s %14s %12s %14s\n", "benchmark", "MB/s", "ns/op", "allocs/op", "bytes/op")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %10.2f %14d %12d %14d\n",
			row.Name, row.MBs, row.NsPerOp, row.AllocsOp, row.BytesOp)
	}
	return b.String()
}

func (r *benchReport) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark,mb_per_s,ns_per_op,allocs_per_op,bytes_per_op\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%.2f,%d,%d,%d\n", row.Name, row.MBs, row.NsPerOp, row.AllocsOp, row.BytesOp)
	}
	return b.String()
}

func (r *benchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
