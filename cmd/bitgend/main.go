// Command bitgend serves multi-pattern regex matching over HTTP/JSON:
// a multi-tenant front end over the bitgen engine with a compiled-engine
// LRU cache, bounded admission, same-engine batch coalescing through
// RunMulti, and graceful drain on SIGTERM.
//
// Endpoints:
//
//	POST /v1/match   {"patterns":[...],"input":"..."} → matches JSON
//	POST /v1/scan    ?pattern=...&chunk=N, body streamed → NDJSON matches
//	GET  /v1/sets    cached pattern-set keys
//	GET  /v1/snapshot ?set=<key> persisted engine snapshot bytes (peers)
//	GET  /v1/cluster ring membership + per-peer breaker health
//	GET  /healthz    200 ok / 503 draining
//	GET  /metrics    serve-layer Prometheus; ?set=<key> for one engine
//	GET  /trace      ?set=<key> Chrome trace_event JSON for one engine;
//	                 ?cluster=1 the cluster layer's per-forward spans
//
// Cluster mode: pass -peers with every replica's base URL (the same set,
// in any order, on every replica) and -advertise with this replica's own
// URL. Pattern-set keys route across replicas on a consistent-hash ring;
// each key has a deterministic owner plus its ring successor as a warm
// standby, guarded by per-peer circuit breakers with hedged retry. When
// no candidate is reachable the replica compiles locally and serves
// (degraded, never down).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bitgen"
	"bitgen/internal/cli"
	"bitgen/internal/cluster"
	"bitgen/internal/serve"
	"bitgen/internal/snapshot"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8377", "listen address")
		cacheSize  = flag.Int("cache", 32, "max cached compiled engines (LRU)")
		maxQueue   = flag.Int("queue", 64, "max requests waiting for an execution slot")
		maxConc    = flag.Int("concurrency", 0, "max requests executing at once (0 = 2*GOMAXPROCS)")
		maxBatch   = flag.Int("batch", 16, "max match requests coalesced into one RunMulti launch")
		timeout    = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTimeout = flag.Duration("max-timeout", 30*time.Second, "cap on client-requested (and peer-propagated) deadlines")
		maxBody    = flag.Int64("max-body", 8<<20, "max /v1/match body bytes")
		device     = flag.String("device", "", "GPU profile for the cost model (default RTX 3090)")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
		selftest   = flag.Bool("selftest", false, "boot on a loopback port, exercise match/scan/metrics/drain/warm-start, exit")

		snapDir   = flag.String("snapshot-dir", "", "directory for compiled-engine snapshots: engines persist there write-behind and the cache warm-starts from it at boot (created if missing; empty disables persistence)")
		snapScrub = flag.Duration("snapshot-scrub-interval", time.Minute, "how often the background scrubber re-verifies resting snapshots and quarantines corrupt ones (negative disables)")
		snapTest  = flag.Bool("snapshot-selftest", false, "exercise the persistence fault matrix (corruption, torn write, short read, stale version) against a temp snapshot dir, exit")

		peers        = flag.String("peers", "", "comma-separated replica base URLs (every replica, same set everywhere) — enables cluster mode")
		advertise    = flag.String("advertise", "", "this replica's base URL as peers reach it (default http://<addr>)")
		vnodes       = flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default)")
		hedge        = flag.Duration("hedge", 25*time.Millisecond, "delay before hedging a forward to the warm standby (negative disables)")
		brkThreshold = flag.Int("breaker-threshold", 3, "consecutive peer failures before its breaker opens")
		brkCooldown  = flag.Duration("breaker-cooldown", 5*time.Second, "open-breaker cooldown before a half-open probe (jittered)")
		clusterTest  = flag.Bool("cluster-selftest", false, "boot a 3-replica loopback cluster, inject faults (kill, partition), verify zero failures, exit")

		sloMatchP99 = flag.Duration("slo-match-p99", 250*time.Millisecond, "/v1/match latency objective: slower successes spend error budget (negative disables)")
		sloScanP99  = flag.Duration("slo-scan-p99", 2*time.Second, "/v1/scan latency objective (negative disables)")
		sloAvail    = flag.Float64("slo-availability", 0.999, "good-request objective for /v1/match and /v1/scan")
		bundleDir   = flag.String("bundle-dir", "", "directory for anomaly flight-recorder bundles (created if missing; empty keeps bundles inline-only via /debug/bundle)")
		stitch      = flag.String("stitch", "", "trace ID to stitch: fetch /v1/trace/<id> from every -peers replica, merge into one Chrome trace, exit")
		stitchOut   = flag.String("o", "", "output file for -stitch (default stdout)")
		obsTest     = flag.Bool("obs-cluster-selftest", false, "boot a 3-replica loopback cluster, inject a peer fault, verify stitched tracing + anomaly bundles + SLO reporting, exit")
		obsOut      = flag.String("obs-out", "", "artifact directory for -obs-cluster-selftest (default a temp dir)")
	)
	flag.Parse()

	if *selftest {
		if err := serve.SelfTest(context.Background(), os.Stdout); err != nil {
			log.Fatalf("selftest failed: %v", err)
		}
		return
	}
	if *clusterTest {
		if err := serve.ClusterSelfTest(context.Background(), os.Stdout); err != nil {
			log.Fatalf("cluster selftest failed: %v", err)
		}
		return
	}
	if *snapTest {
		if err := serve.SnapshotSelfTest(context.Background(), os.Stdout); err != nil {
			log.Fatalf("snapshot selftest failed: %v", err)
		}
		return
	}
	if *obsTest {
		dir := *obsOut
		if dir == "" {
			var err error
			if dir, err = os.MkdirTemp("", "bitgen-obs-selftest-"); err != nil {
				log.Fatalf("obs cluster selftest: %v", err)
			}
		}
		if err := serve.ObsClusterSelfTest(context.Background(), os.Stdout, dir); err != nil {
			log.Fatalf("obs cluster selftest failed: %v", err)
		}
		return
	}
	if *stitch != "" {
		if err := runStitch(*peers, *stitch, *stitchOut); err != nil {
			fmt.Fprintln(os.Stderr, "bitgend: stitch:", err)
			os.Exit(1)
		}
		return
	}

	if *snapDir != "" {
		// Fail fast at boot: a server that cannot persist where it was told
		// to should not come up and discover that on the first write-behind.
		if err := snapshot.ValidateDir(*snapDir); err != nil {
			fmt.Fprintln(os.Stderr, "bitgend:", cli.Describe(err))
			os.Exit(2)
		}
	}

	srv, err := serve.New(serve.Config{
		MaxCachedEngines:      *cacheSize,
		MaxQueue:              *maxQueue,
		MaxConcurrent:         *maxConc,
		MaxBatch:              *maxBatch,
		DefaultTimeout:        *timeout,
		MaxTimeout:            *maxTimeout,
		MaxBodyBytes:          *maxBody,
		Engine:                bitgen.Options{Device: *device},
		SnapshotDir:           *snapDir,
		SnapshotScrubInterval: *snapScrub,
		SLOMatchP99:           *sloMatchP99,
		SLOScanP99:            *sloScanP99,
		SLOAvailability:       *sloAvail,
		BundleDir:             *bundleDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bitgend:", cli.Describe(err))
		os.Exit(2)
	}
	if *peers != "" {
		self := *advertise
		if self == "" {
			self = "http://" + *addr
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		err := srv.EnableCluster(cluster.Config{
			Self:             self,
			Peers:            peerList,
			VNodes:           *vnodes,
			HedgeDelay:       *hedge,
			BreakerThreshold: *brkThreshold,
			BreakerCooldown:  *brkCooldown,
			Seed:             uint64(time.Now().UnixNano()),
		})
		if err != nil {
			log.Fatalf("cluster: %v", err)
		}
		log.Printf("cluster mode: %d replicas, self %s", len(srv.Cluster().Ring().Nodes()), self)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("bitgend listening on %s", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case got := <-sig:
		log.Printf("received %s, draining (up to %s)", got, *drainWait)
	}

	// Drain first: /healthz flips to 503 so load balancers stop routing,
	// in-flight matches and scans run to completion, batch loops stop.
	// Then shut the listener down.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v\n", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
	}
	log.Printf("bitgend stopped")
}

// runStitch fetches one trace's fragments from every -peers replica and
// writes the merged Chrome trace to out (stdout when empty). Unreachable
// replicas are reported but tolerated — stitching exists to debug
// partially-failed clusters.
func runStitch(peers, traceID, out string) error {
	var nodes []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			nodes = append(nodes, p)
		}
	}
	if len(nodes) == 0 {
		return fmt.Errorf("-stitch needs -peers with at least one replica URL")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := serve.StitchTrace(ctx, &http.Client{Timeout: 10 * time.Second}, nodes, traceID)
	if err != nil {
		return err
	}
	for _, e := range st.Errors {
		fmt.Fprintln(os.Stderr, "bitgend: stitch: unreachable:", e)
	}
	chrome, err := st.Chrome()
	if err != nil {
		return err
	}
	if out == "" {
		_, err = os.Stdout.Write(append(chrome, '\n'))
		return err
	}
	if err := os.WriteFile(out, chrome, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bitgend: stitched %d spans from %d/%d replicas -> %s\n",
		st.SpanCount(), len(st.Fragments), len(nodes), out)
	return nil
}
