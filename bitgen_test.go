package bitgen

import (
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCompileAndRun(t *testing.T) {
	eng, err := Compile([]string{"cat", "do(g|ve)"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run([]byte("the cat chased a dove and a dog"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["cat"] != 1 || res.Counts["do(g|ve)"] != 2 {
		t.Fatalf("counts = %v", res.Counts)
	}
	if len(res.Matches) != 3 {
		t.Fatalf("matches = %v", res.Matches)
	}
	// Matches are sorted by end position.
	for i := 1; i < len(res.Matches); i++ {
		if res.Matches[i].End < res.Matches[i-1].End {
			t.Fatal("matches not sorted")
		}
	}
	if res.Stats.ThroughputMBs <= 0 || res.Stats.ModeledTime <= 0 {
		t.Fatalf("stats missing: %+v", res.Stats)
	}
}

func TestMatchEndsAgainstStdlib(t *testing.T) {
	pattern := "er+or"
	eng := MustCompile([]string{pattern}, nil)
	input := []byte("error erstwhile eror errrror terror")
	res, err := eng.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile("^(?:" + "er+or" + ")$")
	for _, m := range res.Matches {
		ok := false
		for start := 0; start <= m.End; start++ {
			if re.Match(input[start : m.End+1]) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("reported match ending at %d has no witness", m.End)
		}
	}
}

func TestFoldCase(t *testing.T) {
	eng := MustCompile([]string{"warning"}, &Options{FoldCase: true})
	counts, err := eng.CountOnly([]byte("WARNING Warning warning"))
	if err != nil {
		t.Fatal(err)
	}
	if counts["warning"] != 3 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := Compile(nil, nil); err == nil {
		t.Error("empty pattern list accepted")
	}
	if _, err := Compile([]string{"("}, nil); err == nil {
		t.Error("bad pattern accepted")
	}
	if _, err := Compile([]string{"a"}, &Options{Device: "TPU"}); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestDeviceOption(t *testing.T) {
	input := []byte(strings.Repeat("flag{secret} noise noise ", 200))
	patterns := []string{"flag\\{[a-z]+\\}"}
	slow := MustCompile(patterns, &Options{Device: "RTX 3090", CTAs: 8, Threads: 32})
	fast := MustCompile(patterns, &Options{Device: "L40S", CTAs: 8, Threads: 32})
	rSlow, err := slow.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	rFast, err := fast.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	if rSlow.Counts["flag\\{[a-z]+\\}"] != 200 {
		t.Fatalf("counts = %v", rSlow.Counts)
	}
	if rFast.Stats.ModeledTime >= rSlow.Stats.ModeledTime {
		t.Error("L40S not modeled faster on compute-bound work")
	}
}

func TestOptimizationToggles(t *testing.T) {
	patterns := []string{"abcdefgh", "qrstuvwx"}
	input := []byte(strings.Repeat("zzzzzzzzabcdefghzzzz ", 100))
	// Shift rebalancing + merging alone must cut barriers; ZBS guards are
	// disabled here because on a matching input their checks add barriers.
	full := MustCompile(patterns, &Options{CTAs: 2, Threads: 32, DisableZeroBlockSkipping: true})
	plain := MustCompile(patterns, &Options{
		CTAs: 2, Threads: 32,
		DisableShiftRebalancing:  true,
		DisableZeroBlockSkipping: true,
	})
	rFull, err := full.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	rPlain, err := plain.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	for p := range rFull.Counts {
		if rFull.Counts[p] != rPlain.Counts[p] {
			t.Errorf("toggle changed semantics for %q", p)
		}
	}
	if rFull.Stats.Barriers >= rPlain.Stats.Barriers {
		t.Error("optimizations did not reduce barriers")
	}
}

func TestConcurrentRuns(t *testing.T) {
	eng := MustCompile([]string{"cat", "do(g|ve)s?"}, &Options{CTAs: 2, Threads: 32})
	inputs := [][]byte{
		[]byte(strings.Repeat("cat dove ", 100)),
		[]byte(strings.Repeat("dogs dogs ", 100)),
		[]byte(strings.Repeat("nothing ", 100)),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 30)
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, in := range inputs {
				if _, err := eng.Run(in); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
