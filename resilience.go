package bitgen

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"bitgen/internal/bgerr"
	"bitgen/internal/bitstream"
	"bitgen/internal/engine"
	"bitgen/internal/hybrid"
	"bitgen/internal/nfa"
	"bitgen/internal/obs"
	"bitgen/internal/resilience"
	"bitgen/internal/rx"
)

// Backend ladder rung names, in preference order. The bitstream engine is
// the primary; the hybrid Aho-Corasick decomposition and the Glushkov NFA
// simulation are independent implementations of the same match semantics,
// compiled from the same parsed patterns.
const (
	// BackendBitstream is the interleaved-bitstream GPU engine (primary).
	BackendBitstream = "bitstream"
	// BackendHybrid is the literal-prefilter + regional-confirmation
	// CPU engine (first fallback).
	BackendHybrid = "hybrid"
	// BackendNFA is the Glushkov NFA bitset simulation — the reference
	// implementation used for differential cross-checking (last resort).
	BackendNFA = "nfa"
)

// ResilienceOptions enable the self-healing backend ladder: when
// Options.Resilience is non-nil, Run/CountOnly/ScanReader requests that
// fail on the bitstream engine are retried (transient faults), fall over
// to the hybrid and NFA backends (backend faults), and a sampled fraction
// is differentially cross-checked against the NFA reference. The zero
// value selects the documented defaults. See Engine.Health for
// observability and DESIGN.md §8 for the full state machine.
type ResilienceOptions struct {
	// MaxRetries bounds same-backend retries of transient faults (failed
	// launches). Zero means 2; negative disables retries.
	MaxRetries int
	// RetryBaseDelay is the backoff base: retry k sleeps
	// base·2^k·jitter, jitter uniform in [0.5, 1.5). Zero means 1ms.
	RetryBaseDelay time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// backend's circuit breaker. Zero means 3; negative disables.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects attempts
	// before admitting one half-open probe. Zero means 5s.
	BreakerCooldown time.Duration
	// CrossCheckFraction in [0,1] is the sampled share of calls
	// re-executed on the NFA reference and compared; a mismatch
	// quarantines the serving backend and returns the reference result.
	// Zero disables cross-checking.
	CrossCheckFraction float64
	// Seed drives the deterministic backoff jitter and sampling
	// decisions (reproducible schedules).
	Seed uint64
	// ForceBackend pins the ladder to a single named rung
	// (BackendBitstream, BackendHybrid or BackendNFA) — a debugging and
	// benchmarking mode: no fallback, no cross-checking.
	ForceBackend string
}

// Health is a point-in-time snapshot of the resilience ladder: per-backend
// circuit state and counters plus ladder-wide call/fallback/cross-check
// totals. The zero value is returned when resilience is disabled.
type Health = resilience.Health

// BackendHealth is one ladder rung's observable state.
type BackendHealth = resilience.BackendHealth

// BackendState is a circuit breaker position: resilience.Closed,
// resilience.Open or resilience.HalfOpen (String(): "closed", "open",
// "half-open").
type BackendState = resilience.State

// Health returns the resilience ladder snapshot. With resilience disabled
// (Options.Resilience == nil) it returns the zero Health.
func (e *Engine) Health() Health {
	if e.ladder == nil {
		return Health{}
	}
	return e.ladder.Health()
}

// ResetBackend closes the named backend's circuit breaker and clears its
// quarantine (an operator action after the underlying fault is fixed). It
// reports whether the name matched a ladder rung; with resilience
// disabled it always returns false.
func (e *Engine) ResetBackend(name string) bool {
	if e.ladder == nil {
		return false
	}
	return e.ladder.Reset(name)
}

// buildLadder compiles the fallback backends from the already-parsed
// unique patterns (duplicates were deduplicated at Compile) and assembles
// the resilience ladder.
func buildLadder(e *Engine, asts []rx.Node, ropts *ResilienceOptions) error {
	hybEngine, err := hybrid.Compile(e.unique, asts, hybrid.Options{Obs: e.obs})
	if err != nil {
		return fmt.Errorf("bitgen: resilience: compiling hybrid backend: %w", err)
	}
	autom, err := nfa.Build(e.unique, asts)
	if err != nil {
		return fmt.Errorf("bitgen: resilience: building NFA backend: %w", err)
	}
	backends := []resilience.Backend{
		&gpuBackend{e: e},
		&hybridBackend{h: hybEngine},
		&nfaBackend{n: autom, names: e.unique, obs: e.obs},
	}
	if ropts.ForceBackend != "" {
		var forced resilience.Backend
		for _, b := range backends {
			if b.Name() == ropts.ForceBackend {
				forced = b
			}
		}
		if forced == nil {
			return &UnsupportedError{Feature: fmt.Sprintf("resilience backend %q", ropts.ForceBackend)}
		}
		backends = []resilience.Backend{forced}
	}
	ladder, err := resilience.New(backends, resilience.Config{
		MaxRetries:         ropts.MaxRetries,
		RetryBaseDelay:     ropts.RetryBaseDelay,
		BreakerThreshold:   ropts.BreakerThreshold,
		BreakerCooldown:    ropts.BreakerCooldown,
		CrossCheckFraction: ropts.CrossCheckFraction,
		Seed:               ropts.Seed,
		Obs:                e.obs,
	})
	if err != nil {
		return err
	}
	e.ladder = ladder
	return nil
}

// runLadder serves one Run through the backend ladder and converts the
// outcome to the public Result. Modeled execution statistics are present
// only when the bitstream backend served the call; fallback rungs report
// match sets with zero Stats.
func (e *Engine) runLadder(ctx context.Context, input []byte) (*Result, error) {
	out, err := e.ladder.Run(ctx, input)
	if err != nil {
		return nil, err
	}
	var res *Result
	if inner, ok := out.Aux.(*engine.Result); ok {
		res = e.toResult(inner)
	} else {
		innerCounts := make(map[string]int, len(out.Positions))
		for name, pos := range out.Positions {
			innerCounts[name] = len(pos)
		}
		res = &Result{}
		res.Counts, res.IndexCounts = e.fanOutCounts(innerCounts)
		for name, pos := range out.Positions {
			idxs := e.indexesOf[name]
			for _, end := range pos {
				for _, idx := range idxs {
					res.Matches = append(res.Matches, Match{Pattern: name, Index: idx, End: end})
				}
			}
		}
		sortMatches(res.Matches)
	}
	res.Backend = out.Backend
	return res, nil
}

// streamPositions converts named match streams to the resilience Backend
// contract's position map (empty streams omitted).
func streamPositions(outputs map[string]*bitstream.Stream) map[string][]int {
	m := make(map[string][]int, len(outputs))
	for name, s := range outputs {
		if p := s.Positions(); len(p) > 0 {
			m[name] = p
		}
	}
	return m
}

// gpuBackend adapts the bitstream engine. It reads e.inner at call time
// (not capture time) so hardening tests can swap in an injector-armed
// engine copy. Panic containment lives inside engine.RunContext.
type gpuBackend struct{ e *Engine }

func (g *gpuBackend) Name() string { return BackendBitstream }

func (g *gpuBackend) Run(ctx context.Context, input []byte) (map[string][]int, any, error) {
	inner, err := g.e.inner.RunContext(ctx, input)
	if err != nil {
		return nil, nil, err
	}
	return streamPositions(inner.Outputs), inner, nil
}

// hybridBackend adapts the hybrid Aho-Corasick engine, containing its
// panics as *InternalError so an invariant violation in the fallback
// falls through to the next rung instead of crashing the process.
type hybridBackend struct{ h *hybrid.Engine }

func (b *hybridBackend) Name() string { return BackendHybrid }

// ResidentBytes implements resilience.Sizer: the hybrid rung's compiled
// automata stay resident for the engine's lifetime.
func (b *hybridBackend) ResidentBytes() int64 { return b.h.SizeBytes() }

func (b *hybridBackend) Run(ctx context.Context, input []byte) (pos map[string][]int, aux any, err error) {
	defer func() {
		if r := recover(); r != nil {
			pos, aux = nil, nil
			err = &bgerr.InternalError{Op: "hybrid-scan", Group: -1, Value: r, Stack: debug.Stack()}
		}
	}()
	res, err := b.h.ScanContext(ctx, input)
	if err != nil {
		return nil, nil, err
	}
	return res.MatchPositions(), nil, nil
}

// nfaBackend adapts the Glushkov NFA simulation (the reference rung),
// with the same panic containment as the hybrid rung.
type nfaBackend struct {
	n     *nfa.NFA
	names []string
	obs   *obs.Observer
}

func (b *nfaBackend) Name() string { return BackendNFA }

// ResidentBytes implements resilience.Sizer: the reference automaton's
// CSR tables stay resident for the engine's lifetime.
func (b *nfaBackend) ResidentBytes() int64 { return b.n.SizeBytes() }

func (b *nfaBackend) Run(ctx context.Context, input []byte) (pos map[string][]int, aux any, err error) {
	defer func() {
		if r := recover(); r != nil {
			pos, aux = nil, nil
			err = &bgerr.InternalError{Op: "nfa-simulate", Group: -1, Value: r, Stack: debug.Stack()}
		}
	}()
	res, err := nfa.SimulateObserved(ctx, b.obs, b.n, input)
	if err != nil {
		return nil, nil, err
	}
	return res.MatchPositions(b.names), nil, nil
}
