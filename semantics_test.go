package bitgen

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// endsOf projects the end positions of one pattern index out of a match
// list.
func endsOf(matches []Match, index int) []int {
	var ends []int
	for _, m := range matches {
		if m.Index == index {
			ends = append(ends, m.End)
		}
	}
	return ends
}

// TestNullableEndOfInputMatch is the regression test for the dropped
// end-of-input empty match: a pattern that matches the empty string matches
// at every offset 0..len(input), including the one past the last byte —
// exactly the offsets Go's regexp reports. The seed engine reported only
// len(input) positions (ends 0..len-1).
func TestNullableEndOfInputMatch(t *testing.T) {
	cases := []struct {
		pattern, input string
		ends           []int
	}{
		{"a{0}", "aaa", []int{0, 1, 2, 3}},
		{"a?", "xyz", []int{0, 1, 2, 3}},
		{"a*", "aaa", []int{0, 1, 2, 3}},
		{"(ab)*", "abab", []int{0, 1, 2, 3, 4}},
		{"a*", "", []int{0}},
		{"a{0,2}", "ba", []int{0, 1, 2}},
	}
	for _, c := range cases {
		e := MustCompile([]string{c.pattern}, nil)
		res, err := e.Run([]byte(c.input))
		if err != nil {
			t.Fatalf("%q on %q: %v", c.pattern, c.input, err)
		}
		if got := endsOf(res.Matches, 0); !reflect.DeepEqual(got, c.ends) {
			t.Errorf("%q on %q: ends = %v, want %v", c.pattern, c.input, got, c.ends)
		}
		if res.Counts[c.pattern] != len(c.ends) {
			t.Errorf("%q on %q: Counts = %d, want %d",
				c.pattern, c.input, res.Counts[c.pattern], len(c.ends))
		}
		counts, err := e.CountOnly([]byte(c.input))
		if err != nil {
			t.Fatalf("%q CountOnly: %v", c.pattern, err)
		}
		if counts[c.pattern] != len(c.ends) {
			t.Errorf("%q on %q: CountOnly = %d, want %d",
				c.pattern, c.input, counts[c.pattern], len(c.ends))
		}
	}
}

// TestNullableEndOfInputAcrossBackends pins the EOF empty-match fix to all
// three ladder rungs: the bitstream kernel, the hybrid engine and the NFA
// reference must each report the end-of-input position.
func TestNullableEndOfInputAcrossBackends(t *testing.T) {
	patterns := []string{"a{0}", "ab", "c*"}
	input := []byte("cab")
	var ref []Match
	for _, backend := range []string{BackendNFA, BackendHybrid, BackendBitstream} {
		e, err := Compile(patterns, &Options{Resilience: &ResilienceOptions{ForceBackend: backend}})
		if err != nil {
			t.Fatalf("compile for %s: %v", backend, err)
		}
		res, err := e.Run(input)
		if err != nil {
			t.Fatalf("%s run: %v", backend, err)
		}
		// Every pattern is nullable except "ab": both nullable patterns
		// must include End == len(input).
		for _, p := range []string{"a{0}", "c*"} {
			found := false
			for _, m := range res.Matches {
				if m.Pattern == p && m.End == len(input) {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: %q missing end-of-input match at %d: %v",
					backend, p, len(input), res.Matches)
			}
		}
		if ref == nil {
			ref = res.Matches
		} else if !reflect.DeepEqual(res.Matches, ref) {
			t.Errorf("%s diverges from reference:\n got  %v\n want %v",
				backend, res.Matches, ref)
		}
	}
}

// TestDuplicatePatternsReportPerIndex is the regression test for silent
// duplicate collapse: Compile([]string{"abc","abc"}) must report one Match
// per pattern entry, distinguished by Index, with per-string Counts summed
// and per-index IndexCounts separate. The seed engine collapsed duplicates
// into a single entry (Counts == map[abc:1]).
func TestDuplicatePatternsReportPerIndex(t *testing.T) {
	e := MustCompile([]string{"abc", "abc"}, nil)
	if got := e.Patterns(); !reflect.DeepEqual(got, []string{"abc", "abc"}) {
		t.Fatalf("Patterns() = %v, want both entries", got)
	}
	res, err := e.Run([]byte("zabcz"))
	if err != nil {
		t.Fatal(err)
	}
	want := []Match{{Pattern: "abc", Index: 0, End: 3}, {Pattern: "abc", Index: 1, End: 3}}
	if !reflect.DeepEqual(res.Matches, want) {
		t.Errorf("Matches = %v, want %v", res.Matches, want)
	}
	if res.Counts["abc"] != 2 {
		t.Errorf("Counts[abc] = %d, want 2 (summed across duplicates)", res.Counts["abc"])
	}
	if !reflect.DeepEqual(res.IndexCounts, []int{1, 1}) {
		t.Errorf("IndexCounts = %v, want [1 1]", res.IndexCounts)
	}
	counts, err := e.CountOnly([]byte("zabcz"))
	if err != nil {
		t.Fatal(err)
	}
	if counts["abc"] != 2 {
		t.Errorf("CountOnly[abc] = %d, want 2", counts["abc"])
	}
}

// TestDuplicatePatternsMixedSet checks fan-out ordering with duplicates
// interleaved among distinct patterns.
func TestDuplicatePatternsMixedSet(t *testing.T) {
	e := MustCompile([]string{"ab", "cd", "ab"}, nil)
	res, err := e.Run([]byte("abcd"))
	if err != nil {
		t.Fatal(err)
	}
	want := []Match{
		{Pattern: "ab", Index: 0, End: 1},
		{Pattern: "ab", Index: 2, End: 1},
		{Pattern: "cd", Index: 1, End: 3},
	}
	if !reflect.DeepEqual(res.Matches, want) {
		t.Errorf("Matches = %v, want %v", res.Matches, want)
	}
	if !reflect.DeepEqual(res.IndexCounts, []int{1, 1, 1}) {
		t.Errorf("IndexCounts = %v", res.IndexCounts)
	}
}

// TestDuplicatePatternsAcrossBackends pins duplicate fan-out to every
// ladder rung.
func TestDuplicatePatternsAcrossBackends(t *testing.T) {
	patterns := []string{"abc", "abc", "z"}
	input := []byte("zabcz")
	var ref *Result
	for _, backend := range []string{BackendNFA, BackendHybrid, BackendBitstream} {
		e, err := Compile(patterns, &Options{Resilience: &ResilienceOptions{ForceBackend: backend}})
		if err != nil {
			t.Fatalf("compile for %s: %v", backend, err)
		}
		res, err := e.Run(input)
		if err != nil {
			t.Fatalf("%s run: %v", backend, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.Matches, ref.Matches) {
			t.Errorf("%s Matches diverge:\n got  %v\n want %v", backend, res.Matches, ref.Matches)
		}
		if !reflect.DeepEqual(res.IndexCounts, ref.IndexCounts) {
			t.Errorf("%s IndexCounts diverge: %v vs %v", backend, res.IndexCounts, ref.IndexCounts)
		}
	}
	if !reflect.DeepEqual(ref.IndexCounts, []int{1, 1, 2}) {
		t.Errorf("IndexCounts = %v, want [1 1 2]", ref.IndexCounts)
	}
}

// TestScanReaderDuplicatePatterns verifies both streaming paths (pipelined
// and ladder-sequential) fan duplicates out per index in sorted order.
func TestScanReaderDuplicatePatterns(t *testing.T) {
	input := strings.Repeat("xxabcxx", 3)
	want := []Match{
		{Pattern: "abc", Index: 0, End: 4},
		{Pattern: "abc", Index: 1, End: 4},
		{Pattern: "abc", Index: 0, End: 11},
		{Pattern: "abc", Index: 1, End: 11},
		{Pattern: "abc", Index: 0, End: 18},
		{Pattern: "abc", Index: 1, End: 18},
	}
	for name, opts := range map[string]*Options{
		"pipelined": nil,
		"ladder":    {Resilience: &ResilienceOptions{}},
	} {
		e := MustCompile([]string{"abc", "abc"}, opts)
		var got []Match
		err := e.ScanReader(strings.NewReader(input), 8, func(m Match) { got = append(got, m) })
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: matches = %v, want %v", name, got, want)
		}
	}
}

// TestScanReaderRefusesNullablePatterns: streaming an empty-matchable
// pattern would emit an unbounded firehose of empty matches, so ScanReader
// refuses with a typed error naming the offending patterns.
func TestScanReaderRefusesNullablePatterns(t *testing.T) {
	e := MustCompile([]string{"a?", "bc"}, nil)
	err := e.ScanReader(strings.NewReader("xxx"), 1024, func(Match) {
		t.Fatal("emit called on refused scan")
	})
	var ue *UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want *UnsupportedError", err)
	}
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
	if len(ue.Patterns) != 1 || ue.Patterns[0] != "a?" {
		t.Fatalf("refusal names %v, want [a?]", ue.Patterns)
	}
}

// TestRunMultiEdgeCases covers previously untested inputs: an empty input
// slice, empty member inputs, and a nullable pattern over an empty stream.
func TestRunMultiEdgeCases(t *testing.T) {
	e := MustCompile([]string{"ab"}, nil)
	mr, err := e.RunMulti(nil)
	if err != nil {
		t.Fatalf("RunMulti(nil): %v", err)
	}
	if len(mr.PerStream) != 0 {
		t.Fatalf("RunMulti(nil) PerStream = %d, want 0", len(mr.PerStream))
	}

	mr, err = e.RunMulti([][]byte{{}, []byte("ab")})
	if err != nil {
		t.Fatalf("RunMulti with empty member: %v", err)
	}
	if len(mr.PerStream) != 2 {
		t.Fatalf("PerStream = %d, want 2", len(mr.PerStream))
	}
	if len(mr.PerStream[0].Matches) != 0 {
		t.Errorf("empty input matched: %v", mr.PerStream[0].Matches)
	}
	if got := endsOf(mr.PerStream[1].Matches, 0); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("second stream ends = %v, want [1]", got)
	}

	// A nullable pattern matches the empty input once, at offset 0.
	en := MustCompile([]string{"a*"}, nil)
	mr, err = en.RunMulti([][]byte{{}})
	if err != nil {
		t.Fatal(err)
	}
	if got := endsOf(mr.PerStream[0].Matches, 0); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("a* on empty input ends = %v, want [0]", got)
	}
}
