package bitgen

import (
	"context"
	"fmt"
	"io"

	"bitgen/internal/bgerr"
	"bitgen/internal/rx"
)

// ReadError reports that ScanReader's input reader failed mid-stream.
// Offset is the absolute stream offset of the first byte that could not
// be read — every match ending before Offset was already emitted, so a
// caller can resume by re-opening the source at Offset and scanning the
// remainder with a fresh ScanReader call.
type ReadError struct {
	// Offset is the absolute stream offset at which the read failed.
	Offset int64
	// Err is the reader's error.
	Err error
}

func (e *ReadError) Error() string {
	return fmt.Sprintf("bitgen: stream read failed at offset %d: %v", e.Offset, e.Err)
}

func (e *ReadError) Unwrap() error { return e.Err }

// ScanReader scans a stream in fixed-size chunks, reporting every match
// end position (relative to the whole stream) through emit. Chunks overlap
// by maxLen-1 bytes so matches straddling a boundary are found exactly
// once.
//
// Streaming requires every pattern to have a finite maximum match length
// (no '*', '+' or open-ended '{n,}'): otherwise a match could span any
// number of chunks and ScanReader returns a *UnsupportedError listing
// every unbounded pattern. The bound is computed once at Compile time;
// this call does no per-call pattern analysis. chunkSize must exceed the
// longest possible match; zero means 256 KiB.
func (e *Engine) ScanReader(r io.Reader, chunkSize int, emit func(Match)) error {
	return e.ScanReaderContext(context.Background(), r, chunkSize, emit)
}

// ScanReaderContext is ScanReader honoring a context, checked before each
// chunk scan and inside the per-chunk run (see RunContext).
//
// Without resilience enabled, chunks flow through a bounded three-stage
// pipeline (read → transpose+kernel workers → in-order emit) whose workers
// reuse pooled scratch buffers, so the steady-state chunk loop performs no
// heap allocation; matches are emitted in exactly the order the sequential
// per-chunk path would produce. With Options.Resilience set, chunks ride
// the backend ladder sequentially.
func (e *Engine) ScanReaderContext(ctx context.Context, r io.Reader, chunkSize int, emit func(Match)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if chunkSize == 0 {
		chunkSize = 256 << 10
	}
	if len(e.unbounded) > 0 {
		return &UnsupportedError{
			Feature:  "streaming patterns with unbounded match length",
			Patterns: dedupePatterns(e.unbounded),
		}
	}
	if len(e.nullable) > 0 {
		// An empty-matchable pattern matches at every stream offset — an
		// unbounded firehose of empty matches with no chunk-stable
		// semantics. Run handles them; streaming refuses them.
		return &UnsupportedError{
			Feature:  "streaming patterns that match the empty string",
			Patterns: dedupePatterns(e.nullable),
		}
	}
	maxLen := e.maxLen
	if maxLen == 0 {
		return &UnsupportedError{Feature: "streaming empty patterns"}
	}
	if chunkSize <= maxLen {
		return fmt.Errorf("bitgen: chunk size %d must exceed the longest match length %d", chunkSize, maxLen)
	}
	if e.limits.MaxInputBytes > 0 && int64(chunkSize+maxLen-1) > e.limits.MaxInputBytes {
		return &LimitError{Limit: "input-bytes", Value: int64(chunkSize + maxLen - 1), Max: e.limits.MaxInputBytes}
	}
	if e.ladder == nil {
		return e.scanPipelined(ctx, r, chunkSize, maxLen, emit)
	}
	return e.scanSequential(ctx, r, chunkSize, maxLen, emit)
}

// dedupePatterns returns the list with duplicates removed, first
// occurrence order preserved, always as a fresh slice. The refusal errors
// above name each offending pattern once even when the caller compiled it
// at several public indexes (the per-index match fan-out is unaffected —
// only the diagnostic list collapses). Stored engine state keeps the
// per-index lists verbatim so snapshots round-trip byte-identically.
func dedupePatterns(ps []string) []string {
	out := make([]string, 0, len(ps))
	seen := make(map[string]bool, len(ps))
	for _, p := range ps {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// scanSequential is the chunk-at-a-time scanner: read a chunk, run it
// through the full engine (or the resilience ladder), emit, carry the
// overlap. It is the reference implementation the pipelined scanner is
// differentially tested against, and the path every ladder-enabled scan
// takes.
func (e *Engine) scanSequential(ctx context.Context, r io.Reader, chunkSize, maxLen int, emit func(Match)) error {
	overlap := maxLen - 1
	buf := make([]byte, 0, chunkSize+overlap)
	var offset int64 // stream offset of buf[0]
	var emittedThrough int64 = -1

	flush := func(final bool) error {
		if len(buf) == 0 {
			return nil
		}
		res, err := e.RunContext(ctx, buf)
		if err != nil {
			return err
		}
		for _, m := range res.Matches {
			abs := offset + int64(m.End)
			// Positions inside the carried-over overlap were already
			// reported by the previous flush.
			if abs <= emittedThrough {
				continue
			}
			emit(Match{Pattern: m.Pattern, Index: m.Index, End: int(abs)})
		}
		last := offset + int64(len(buf)) - 1
		if final {
			emittedThrough = last
			return nil
		}
		// A match ending within the last `overlap` bytes may extend with
		// data from the next chunk only if it STARTS there too — but end
		// positions are final: a match ending at position p is complete.
		// All ends in this buffer are therefore safely emitted; carry the
		// overlap so matches *starting* near the edge are still seen.
		emittedThrough = last
		keep := overlap
		if keep > len(buf) {
			keep = len(buf)
		}
		carried := buf[len(buf)-keep:]
		offset += int64(len(buf) - keep)
		copy(buf[:keep], carried)
		buf = buf[:keep]
		return nil
	}

	for {
		if err := ctx.Err(); err != nil {
			return bgerr.Canceled(err)
		}
		start := len(buf)
		buf = buf[:cap(buf)]
		n, err := io.ReadFull(r, buf[start:start+chunkSize])
		buf = buf[:start+n]
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return flush(true)
		}
		if err != nil {
			// offset is buf[0]'s stream position and buf holds start+n
			// valid bytes, so the failed read began at offset+len(buf).
			return &ReadError{Offset: offset + int64(len(buf)), Err: err}
		}
		if err := flush(false); err != nil {
			return err
		}
	}
}

// patternMaxLen mirrors the hybrid engine's bound computation.
func patternMaxLen(n rx.Node) int {
	switch x := n.(type) {
	case rx.CC:
		return 1
	case rx.Concat:
		total := 0
		for _, p := range x.Parts {
			l := patternMaxLen(p)
			if l == rx.Unbounded {
				return rx.Unbounded
			}
			total += l
		}
		return total
	case rx.Alt:
		best := 0
		for _, a := range x.Alts {
			l := patternMaxLen(a)
			if l == rx.Unbounded {
				return rx.Unbounded
			}
			if l > best {
				best = l
			}
		}
		return best
	case rx.Star, rx.Plus:
		return rx.Unbounded
	case rx.Opt:
		return patternMaxLen(x.Sub)
	case rx.Repeat:
		if x.Max == rx.Unbounded {
			return rx.Unbounded
		}
		l := patternMaxLen(x.Sub)
		if l == rx.Unbounded {
			return rx.Unbounded
		}
		return l * x.Max
	}
	return 0
}
