package bitgen

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"bitgen/internal/faultinject"
	"bitgen/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestMetricsEqualKernelStats is the ISSUE's acceptance invariant: after
// one scan, the registry's modeled-kernel totals exactly equal the summed
// per-kernel gpusim.KernelStats of that scan (surfaced on Result.Stats
// and Result.Profile).
func TestMetricsEqualKernelStats(t *testing.T) {
	eng, err := Compile(ladderPatterns, &Options{
		Observability: &ObservabilityOptions{Metrics: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run([]byte(ladderInput))
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("metrics enabled but Result.Profile is nil")
	}
	snap := eng.MetricsSnapshot()
	tot := res.Profile.Totals
	checks := []struct {
		metric string
		want   float64
	}{
		{obs.MDRAMReadBytes, float64(tot.DRAMReadBytes)},
		{obs.MDRAMWriteBytes, float64(tot.DRAMWriteBytes)},
		{obs.MSMemReadBytes, float64(tot.SMemReadBytes)},
		{obs.MSMemWriteBytes, float64(tot.SMemWriteBytes)},
		{obs.MBarriers, float64(tot.Barriers)},
		{obs.MShiftBarriers, float64(tot.ShiftBarriers)},
		{obs.MUnitOps, float64(tot.UnitOps)},
		{obs.MGuardSkips, float64(tot.GuardSkips)},
		{obs.MKernelLaunches, float64(len(res.Profile.Kernels))},
		{obs.MTransposeBytes, float64(res.Profile.TransposeBytes)},
		{obs.MModeledSecs, res.Profile.Time.TotalSec},
		{obs.MScanInputBytes, float64(len(ladderInput))},
		{obs.MMatches, float64(len(res.Matches))},
		{obs.MScans, 1},
	}
	for _, c := range checks {
		if got := snap.Counter(c.metric); got != c.want {
			t.Errorf("%s = %g, want %g", c.metric, got, c.want)
		}
	}
	// The profile's totals must also agree with the per-kernel sum and
	// with the public Stats — the exporter and the bench artifacts quote
	// the same numbers.
	var dram int64
	for _, k := range res.Profile.Kernels {
		dram += k.Stats.DRAMReadBytes
	}
	if dram != tot.DRAMReadBytes {
		t.Errorf("sum of per-kernel DRAM reads %d != totals %d", dram, tot.DRAMReadBytes)
	}
	if res.Stats.DRAMReadBytes != tot.DRAMReadBytes || res.Stats.Barriers != tot.Barriers {
		t.Errorf("Result.Stats (%d, %d) disagrees with Profile.Totals (%d, %d)",
			res.Stats.DRAMReadBytes, res.Stats.Barriers, tot.DRAMReadBytes, tot.Barriers)
	}
}

// TestTraceContainsPipelineSpans drives a full compile + scan + failover
// with tracing on and asserts the exported Chrome trace carries spans for
// the compile phases, the kernel launch, and the ladder rung transitions.
func TestTraceContainsPipelineSpans(t *testing.T) {
	eng, err := Compile(ladderPatterns, &Options{
		Observability: &ObservabilityOptions{Trace: true, Metrics: true},
		Resilience:    &ResilienceOptions{RetryBaseDelay: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	// First scan: served by the bitstream rung. Then persistent kernel
	// panics force failovers to the hybrid rung until the bitstream
	// breaker opens (threshold 3) — the rung-transition spans and the
	// breaker instant all land in the trace.
	if _, err := eng.Run([]byte(ladderInput)); err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1).Arm(faultinject.KernelPanic, faultinject.Spec{Nth: 1, Repeat: true})
	eng.inner = eng.inner.WithInjector(inj)
	for i := 0; i < 3; i++ {
		if _, err := eng.Run([]byte(ladderInput)); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := eng.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Name] = true
	}
	for _, want := range []string{
		"compile", "parse", "compile-group", "lower-group", "passes", // compile phases
		"run", "transpose", "kernel-launch", "kernel-attempt", "estimate", // scan + kernel launches
		"ladder-run", "rung:bitstream", "rung:hybrid", "hybrid-scan", // ladder rungs
		"failover", "breaker:bitstream", // rung transition events
	} {
		if !seen[want] {
			t.Errorf("trace is missing span/event %q (have %v)", want, keys(seen))
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestHealthUnderConcurrentScans hammers a failing-over engine from many
// goroutines while concurrently snapshotting Health, asserting (under
// -race) that successive snapshots are monotone and internally
// consistent even mid-failover.
func TestHealthUnderConcurrentScans(t *testing.T) {
	eng, err := Compile(ladderPatterns, &Options{
		Observability: &ObservabilityOptions{Metrics: true},
		Resilience:    &ResilienceOptions{BreakerThreshold: 3, RetryBaseDelay: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Persistent kernel panic: every scan fails over bitstream → hybrid.
	inj := faultinject.New(7).Arm(faultinject.KernelPanic, faultinject.Spec{Nth: 1, Repeat: true})
	eng.inner = eng.inner.WithInjector(inj)

	const scanners = 8
	const scansPer = 25
	var samplerWG, scanWG sync.WaitGroup
	stop := make(chan struct{})
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		prev := eng.Health()
		for {
			select {
			case <-stop:
				return
			default:
			}
			h := eng.Health()
			if h.Calls < prev.Calls || h.Fallbacks < prev.Fallbacks ||
				h.CrossChecks < prev.CrossChecks || h.Mismatches < prev.Mismatches {
				t.Errorf("ladder counters went backwards: %+v -> %+v", prev, h)
				return
			}
			if h.Fallbacks > h.Calls {
				t.Errorf("fallbacks %d > calls %d", h.Fallbacks, h.Calls)
				return
			}
			for i, b := range h.Backends {
				p := prev.Backends[i]
				if b.Attempts < p.Attempts || b.Successes < p.Successes ||
					b.Failures < p.Failures || b.Retries < p.Retries || b.Skips < p.Skips {
					t.Errorf("backend %s counters went backwards: %+v -> %+v", b.Name, p, b)
					return
				}
				if b.Successes > b.Attempts || b.Failures > b.Attempts {
					t.Errorf("backend %s inconsistent: %+v", b.Name, b)
					return
				}
			}
			prev = h
		}
	}()
	for g := 0; g < scanners; g++ {
		scanWG.Add(1)
		go func() {
			defer scanWG.Done()
			for i := 0; i < scansPer; i++ {
				res, err := eng.Run([]byte(ladderInput))
				if err != nil {
					t.Errorf("concurrent run: %v", err)
					return
				}
				if res.Backend != BackendHybrid {
					t.Errorf("served by %q, want %q", res.Backend, BackendHybrid)
					return
				}
			}
		}()
	}
	scanWG.Wait()
	close(stop)
	samplerWG.Wait()

	h := eng.Health()
	if h.Calls != scanners*scansPer {
		t.Fatalf("calls = %d, want %d", h.Calls, scanners*scansPer)
	}
	if h.Fallbacks != h.Calls {
		t.Fatalf("every scan should have fallen over: fallbacks %d, calls %d", h.Fallbacks, h.Calls)
	}
	gpu := h.Backends[0]
	if gpu.Failures == 0 || gpu.Skips == 0 {
		t.Fatalf("GPU rung should have failures and breaker skips: %+v", gpu)
	}
	// Metrics mirror: ladder counters in the registry agree with Health.
	snap := eng.MetricsSnapshot()
	if got := snap.Counter(obs.MLadderCalls); got != float64(h.Calls) {
		t.Errorf("%s = %g, want %d", obs.MLadderCalls, got, h.Calls)
	}
	if got := snap.Counter(obs.MLadderFallbacks); got != float64(h.Fallbacks) {
		t.Errorf("%s = %g, want %d", obs.MLadderFallbacks, got, h.Fallbacks)
	}
}

// prometheusSchema reduces an exposition to its stable shape: every
// `# HELP` and `# TYPE` line verbatim plus every sample line's series key
// (metric name and sorted label set, value stripped). The order is part
// of the shape — WritePrometheus guarantees families, label sets, and
// histogram `le` buckets render sorted, so two runs of the same workload
// reduce to identical schemas.
func prometheusSchema(exposition string) string {
	var schema []string
	for _, line := range strings.Split(exposition, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# "):
			schema = append(schema, line)
		default:
			if i := strings.LastIndexByte(line, ' '); i >= 0 {
				schema = append(schema, line[:i])
			}
		}
	}
	return strings.Join(schema, "\n") + "\n"
}

// TestPrometheusGoldenMetricNames renders the full exposition of an
// engine with metrics and resilience enabled and compares its schema —
// help text, type lines, and every series key including histogram bucket
// bounds and label order — against the checked-in golden. Adding or
// renaming a metric, changing help text, or reordering labels must update
// testdata/metrics.golden deliberately (run with -update-golden).
func TestPrometheusGoldenMetricNames(t *testing.T) {
	eng, err := Compile(ladderPatterns, &Options{
		Observability: &ObservabilityOptions{Metrics: true},
		Resilience:    &ResilienceOptions{CrossCheckFraction: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run([]byte(ladderInput)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := prometheusSchema(buf.String())
	const golden = "testdata/metrics.golden"
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run `go test -run Golden -update-golden` to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric schema drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestPrometheusDeterministicRender locks the exposition's ordering
// guarantees: rendering the same engine twice is byte-identical, and the
// output is independent of registration order — two registries built with
// the same instruments registered in opposite orders (and labels given in
// opposite orders) render the same bytes, with the histogram `le` label
// merged into its sorted position rather than appended last.
func TestPrometheusDeterministicRender(t *testing.T) {
	eng, err := Compile(ladderPatterns, &Options{
		Observability: &ObservabilityOptions{Metrics: true},
		Resilience:    &ResilienceOptions{CrossCheckFraction: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run([]byte(ladderInput)); err != nil {
		t.Fatal(err)
	}
	var first, second bytes.Buffer
	if err := eng.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	if err := eng.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("two renders of an idle engine differ byte-for-byte")
	}

	build := func(reverse bool) string {
		reg := obs.NewRegistry()
		register := []func(){
			func() { reg.Counter("zz_total", "last family", obs.L("q", "1")).Add(3) },
			func() {
				h := reg.Histogram("mm_seconds", "middle family", []float64{0.5, 2},
					obs.L("a", "1"), obs.L("z", "2"))
				h.Observe(0.1)
				h.Observe(1)
			},
			func() { reg.Gauge("aa_depth", "first family").Set(7) },
		}
		if reverse {
			for i := len(register) - 1; i >= 0; i-- {
				register[i]()
			}
		} else {
			for _, f := range register {
				f()
			}
		}
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	fwd, rev := build(false), build(true)
	if fwd != rev {
		t.Fatalf("registration order leaked into the exposition:\n--- forward ---\n%s--- reverse ---\n%s", fwd, rev)
	}
	if !strings.Contains(fwd, `mm_seconds_bucket{a="1",le="0.5",z="2"}`) {
		t.Fatalf("histogram le label not merged in sorted label position:\n%s", fwd)
	}
	if idx := strings.Index(fwd, "aa_depth"); idx < 0 || strings.Index(fwd, "mm_seconds") < idx {
		t.Fatalf("families not sorted by name:\n%s", fwd)
	}
}

// TestDisabledObservabilityIsInert: with Options.Observability nil, the
// accessors are safe no-ops and results carry no profile.
func TestDisabledObservabilityIsInert(t *testing.T) {
	eng, err := Compile(ladderPatterns, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run([]byte(ladderInput))
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil {
		t.Fatal("observability disabled but Result.Profile is set")
	}
	snap := eng.MetricsSnapshot()
	if len(snap.Counters) != 0 {
		t.Fatalf("disabled engine has counters: %v", snap.Counters)
	}
	var buf bytes.Buffer
	if err := eng.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("disabled WritePrometheus wrote %q, err %v", buf.String(), err)
	}
	buf.Reset()
	if err := eng.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("disabled WriteTrace is not valid JSON: %v", err)
	}
	if eng.PublishExpvar("bitgen-disabled-test") {
		t.Fatal("disabled engine published expvar")
	}
}
