package bitgen

import (
	"context"
	"io"
	"testing"
)

// chunkSource serves an endless repetition of data capped at limit bytes —
// a zero-allocation way to feed a benchmark exactly b.N chunks without
// materializing gigabytes.
type chunkSource struct {
	data  []byte
	pos   int
	limit int64
}

func (r *chunkSource) Read(p []byte) (int, error) {
	if r.limit <= 0 {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:])
	if int64(n) > r.limit {
		n = int(r.limit)
	}
	r.pos += n
	if r.pos == len(r.data) {
		r.pos = 0
	}
	r.limit -= int64(n)
	return n, nil
}

var scanBenchPatterns = []string{"fox|dog", "qu[a-z]{2,6}k", "l.zy", "0\\d{3}"}

// BenchmarkScanReader measures the pipelined streaming scanner. One op is
// one 256KiB chunk, so per-call setup (sessions, channels, goroutines)
// amortizes over b.N and allocs/op reports the steady-state chunk loop —
// which must be zero.
func BenchmarkScanReader(b *testing.B) {
	eng := MustCompile(scanBenchPatterns, &Options{CTAs: 4})
	const chunk = 256 << 10
	src := &chunkSource{data: benchInput, limit: int64(b.N) * chunk}
	matches := 0
	b.SetBytes(chunk)
	b.ReportAllocs()
	b.ResetTimer()
	if err := eng.ScanReader(src, chunk, func(Match) { matches++ }); err != nil {
		b.Fatal(err)
	}
	if matches == 0 {
		b.Fatal("no matches")
	}
}

// BenchmarkScanReaderSequential measures the retained chunk-at-a-time
// reference path (what every scan was before pipelining, and what
// ladder-enabled scans still use) over the identical stream, for a direct
// speedup readout against BenchmarkScanReader.
func BenchmarkScanReaderSequential(b *testing.B) {
	eng := MustCompile(scanBenchPatterns, &Options{CTAs: 4})
	const chunk = 256 << 10
	src := &chunkSource{data: benchInput, limit: int64(b.N) * chunk}
	matches := 0
	b.SetBytes(chunk)
	b.ReportAllocs()
	b.ResetTimer()
	if err := eng.scanSequential(context.Background(), src, chunk, eng.maxLen, func(Match) { matches++ }); err != nil {
		b.Fatal(err)
	}
	if matches == 0 {
		b.Fatal("no matches")
	}
}
