package bitgen_test

import (
	"fmt"
	"strings"

	"bitgen"
)

// The basic flow: compile a pattern set once, scan inputs, read matches.
func ExampleCompile() {
	eng, err := bitgen.Compile([]string{"a(bc)*d", "cat|dog"}, nil)
	if err != nil {
		panic(err)
	}
	res, err := eng.Run([]byte("abcbcd cat"))
	if err != nil {
		panic(err)
	}
	for _, m := range res.Matches {
		fmt.Printf("%s ends at %d\n", m.Pattern, m.End)
	}
	// Output:
	// a(bc)*d ends at 5
	// cat|dog ends at 9
}

// Count-only scanning skips match materialization.
func ExampleEngine_CountOnly() {
	eng := bitgen.MustCompile([]string{"na"}, nil)
	counts, err := eng.CountOnly([]byte("banana"))
	if err != nil {
		panic(err)
	}
	fmt.Println(counts["na"])
	// Output:
	// 2
}

// Streaming scans bounded-length pattern sets chunk by chunk.
func ExampleEngine_ScanReader() {
	eng := bitgen.MustCompile([]string{"flag\\{[a-z]{3,8}\\}"}, nil)
	input := strings.NewReader("noise flag{secret} more noise flag{hidden} end")
	var found int
	err := eng.ScanReader(input, 16<<10, func(m bitgen.Match) { found++ })
	if err != nil {
		panic(err)
	}
	fmt.Println(found)
	// Output:
	// 2
}
