// Package bitgen is a multi-pattern regular-expression matching engine
// built on interleaved bitstream execution, a Go reproduction of the
// MICRO 2025 paper "Interleaved Bitstream Execution for Multi-Pattern Regex
// Matching on GPUs".
//
// Patterns are compiled Parabix-style into bitstream programs — sequences
// of bitwise operations, shifts and carry smears over one-bit-per-byte
// streams — and executed block-wise on a functional GPU simulator that
// models the paper's CTA execution: dependency-aware thread-data mapping
// with overlap recomputation, shift-rebalanced barrier schedules, and
// zero-block skipping. Match results are exact; reported times and
// throughputs come from the simulator's calibrated cost model (see
// DESIGN.md for the substitution rationale).
//
// Quick start:
//
//	eng, err := bitgen.Compile([]string{"a(bc)*d", "error:.*timeout"}, nil)
//	res, err := eng.Run(input)
//	for _, m := range res.Matches { fmt.Println(m.Pattern, m.End) }
//
// Hardening: every entry point fails structured instead of fatal. Each
// call has a *Context variant (CompileContext, RunContext, RunMultiContext,
// CountOnlyContext, ScanReaderContext) whose cancellation or deadline
// interrupts execution at safe boundaries and returns ErrCanceled.
// Options.Limits bounds input size, pattern count, compiled program size,
// while-loop iterations and device-memory footprint; violations return
// errors matching ErrLimit. Engine invariant violations (panics) are
// contained and surface as *InternalError with the poisoned CTA group's
// patterns attached — the process and the Engine itself survive. See
// errors.go for the full taxonomy and DESIGN.md §8 for the failure model.
package bitgen

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"bitgen/internal/arena"
	"bitgen/internal/bgerr"
	"bitgen/internal/engine"
	"bitgen/internal/gpusim"
	"bitgen/internal/lower"
	"bitgen/internal/obs"
	"bitgen/internal/resilience"
	"bitgen/internal/rx"
)

// Options configure compilation. The zero value (or a nil pointer) gives
// the paper's default full-optimization configuration on the RTX 3090
// profile.
type Options struct {
	// FoldCase makes matching ASCII case-insensitive.
	FoldCase bool
	// Device selects the GPU profile by name: "RTX 3090" (default),
	// "H100 NVL", or "L40S".
	Device string
	// CTAs overrides the number of CTA groups (default 256).
	CTAs int
	// Threads overrides the CTA size (default 512).
	Threads int
	// DisableShiftRebalancing turns off the Section 5 pass.
	DisableShiftRebalancing bool
	// DisableZeroBlockSkipping turns off the Section 6 pass.
	DisableZeroBlockSkipping bool
	// MergeSize bounds barrier merging (default 8; ignored when shift
	// rebalancing is disabled).
	MergeSize int
	// IntervalSize is the zero-block-skipping guard spacing (default 8).
	IntervalSize int
	// DisableStateCompression turns off compiled-state compression: group
	// programs stay as boxed pointer IR instead of packed byte blobs, and
	// character classes used by multiple CTA groups are compiled per group
	// instead of once into a shared extended-basis program. Matching
	// behavior is identical either way; the flag exists for baseline
	// memory measurements and debugging. It is compile-relevant, so it is
	// folded into the snapshot options fingerprint and PatternSetKey.
	DisableStateCompression bool
	// Limits bounds resource use; the zero value applies the documented
	// defaults (see Limits). Violations return errors satisfying
	// errors.Is(err, ErrLimit).
	Limits Limits
	// Resilience, when non-nil, enables the self-healing backend ladder
	// (bitstream → hybrid → NFA reference): transient faults are retried
	// with backoff, persistently failing backends are circuit-broken,
	// and a sampled fraction of calls is differentially cross-checked
	// against the NFA reference. Applies to Run, CountOnly and
	// ScanReader (per chunk); RunMulti models a combined MIMD launch and
	// always runs the bitstream engine. See ResilienceOptions and
	// Engine.Health.
	Resilience *ResilienceOptions
	// Observability, when non-nil, enables scan tracing and/or metrics
	// collection (see ObservabilityOptions, Engine.WriteTrace,
	// Engine.MetricsSnapshot, Engine.WritePrometheus). Nil — the default
	// — compiles every instrumentation hook down to a pointer check.
	Observability *ObservabilityOptions
	// ScanWorkers sets how many chunk workers the pipelined ScanReader
	// runs concurrently (default GOMAXPROCS). Even one worker pipelines:
	// the reader stays a chunk ahead of execution. Ignored when
	// Resilience is set (ladder scans run chunk-at-a-time).
	ScanWorkers int
	// ScanBatch lets each pipeline worker drain up to this many queued
	// chunks and execute them through one batched kernel launch per CTA
	// group (single plan traversal for the whole batch). 0 or 1 disables
	// batching. Batching is opportunistic — a worker never waits for a
	// batch to fill, so latency is unchanged when the pipeline is not
	// backlogged. Like ScanWorkers this is a runtime execution knob, not a
	// compile-time option: it is deliberately excluded from the snapshot
	// options fingerprint so existing snapshots keep loading when it
	// changes.
	ScanBatch int
}

// Default resource limits, applied when the corresponding Limits field is
// zero.
const (
	DefaultMaxInputBytes          = 1 << 30 // 1 GiB per run
	DefaultMaxPatterns            = 4096
	DefaultMaxProgramInstructions = 1 << 20 // per CTA group
)

// Limits bounds the resources one Engine may consume. For each field the
// zero value selects the documented default and a negative value disables
// the check; exceeding an effective limit returns a *LimitError satisfying
// errors.Is(err, ErrLimit).
type Limits struct {
	// MaxInputBytes caps the input size of one Run/CountOnly call (and
	// each ScanReader chunk). Default DefaultMaxInputBytes.
	MaxInputBytes int64
	// MaxPatterns caps the pattern count per Compile. Default
	// DefaultMaxPatterns.
	MaxPatterns int
	// MaxProgramInstructions caps any single CTA group's lowered
	// bitstream program. Default DefaultMaxProgramInstructions.
	MaxProgramInstructions int
	// MaxWhileIterations caps global while-loop fixpoint iterations
	// during execution — the safety net against pathological or
	// adversarial spins. Zero selects the engine's real default
	// (1<<20); negative selects the adaptive 2n+16 bound.
	MaxWhileIterations int
	// MaxDeviceMemoryBytes caps the materialized intermediate-bitstream
	// footprint of one run. Zero enforces the selected device's memory
	// capacity — the enforceable form of the ExceedsDeviceMemory flag;
	// negative disables enforcement (report-only).
	MaxDeviceMemoryBytes int64
}

// withDefaults resolves zero fields against the documented defaults and
// the selected device's memory capacity.
func (l Limits) withDefaults(dev gpusim.Device) Limits {
	if l.MaxInputBytes == 0 {
		l.MaxInputBytes = DefaultMaxInputBytes
	}
	if l.MaxPatterns == 0 {
		l.MaxPatterns = DefaultMaxPatterns
	}
	if l.MaxProgramInstructions == 0 {
		l.MaxProgramInstructions = DefaultMaxProgramInstructions
	}
	if l.MaxDeviceMemoryBytes == 0 {
		l.MaxDeviceMemoryBytes = int64(dev.MemoryGB * 1e9)
	}
	return l
}

// Match reports one match: the pattern at Index in Engine.Patterns()
// matched the input ending at byte offset End (inclusive; a nullable
// pattern's empty match at end-of-input reports End == len(input)).
// All-match semantics: every distinct end position of every pattern entry
// is reported once. Duplicate pattern strings in the compiled set are
// distinct entries — each duplicate reports its own Match, distinguished
// by Index; Pattern carries the source string for compatibility.
type Match struct {
	Pattern string
	Index   int
	End     int
}

// Stats summarizes one run's modeled execution.
type Stats struct {
	// ModeledTime is the simulated kernel time on the selected device.
	ModeledTime time.Duration
	// ThroughputMBs is input megabytes (1e6 bytes) per modeled second.
	ThroughputMBs float64
	// DRAMReadBytes / DRAMWriteBytes are total global-memory traffic.
	DRAMReadBytes, DRAMWriteBytes int64
	// Barriers is the total CTA synchronization count.
	Barriers int64
	// RecomputePercent is the dependency-aware mapping overhead.
	RecomputePercent float64
	// GuardSkips counts taken zero-block guards.
	GuardSkips int64
}

// Result is the outcome of Engine.Run.
type Result struct {
	// Matches lists every (pattern, end-position) pair, ordered by end
	// position, then pattern, then pattern index.
	Matches []Match
	// Counts maps each pattern string to its number of match end
	// positions, summed across duplicate entries of the same string.
	Counts map[string]int
	// IndexCounts maps each pattern index (into Engine.Patterns()) to its
	// number of match end positions — the per-entry view that keeps
	// duplicate patterns distinguishable.
	IndexCounts []int
	// Stats is the modeled execution summary. Zero when a resilience
	// fallback rung served the call: only the bitstream engine models
	// GPU execution.
	Stats Stats
	// Backend names the resilience ladder rung that served this call
	// (BackendBitstream, BackendHybrid or BackendNFA). Empty when
	// resilience is disabled.
	Backend string
	// Profile is the per-scan profile artifact joining the cost-model
	// time breakdown with observed per-kernel counters. Non-nil only
	// when Options.Observability enables metrics and the bitstream
	// engine served the call.
	Profile *Profile
}

// Engine is a compiled multi-pattern matcher. A compiled Engine is
// immutable: Run, RunMulti, CountOnly and ScanReader may be called
// concurrently from multiple goroutines, and an error from one call
// (including a contained *InternalError) leaves the Engine usable.
type Engine struct {
	inner    *engine.Engine
	patterns []string
	// unique lists the distinct pattern strings actually compiled, in
	// first-occurrence order; duplicate entries in patterns share one
	// compiled regex (identical pattern strings always have identical
	// match sets) and results fan back out per public index.
	unique []string
	// indexesOf maps each unique pattern string to its public indexes in
	// patterns, ascending.
	indexesOf map[string][]int
	// rankIndexes is indexesOf keyed by the inner engine's match rank
	// instead of the pattern string — the pipelined scanner's emit stage
	// fans out on the integer, skipping a map lookup per match.
	rankIndexes [][]int
	// nullable lists the unique patterns that match the empty string;
	// ScanReader refuses them (an empty match "ends" at every stream
	// offset, which has no useful streaming semantics).
	nullable []string
	limits   Limits
	// maxLen is the longest possible match length across all patterns,
	// computed once at compile time for ScanReader's overlap; unbounded
	// lists every pattern with no finite bound (streaming refusal).
	maxLen    int
	unbounded []string
	// ladder is the self-healing backend ladder; nil when
	// Options.Resilience was not set.
	ladder *resilience.Ladder
	// obs carries the tracer and metrics registry; nil when
	// Options.Observability was not set (every hook is nil-safe).
	obs *obs.Observer
	// scanWorkers is Options.ScanWorkers; <=0 means GOMAXPROCS.
	scanWorkers int
	// scanBatch is Options.ScanBatch; <=1 means no batching.
	scanBatch int
	// scanArena overrides the pipelined scanner's buffer pool; nil selects
	// arena.Default. Tests set it to assert get/put balance.
	scanArena *arena.Arena
	// foldCase and optsHash record the compile-time options for snapshot
	// persistence: SaveEngine embeds them so LoadEngine can refuse a
	// snapshot compiled under a different configuration.
	foldCase bool
	optsHash string
}

// Compile parses and compiles the patterns. A nil opts selects defaults.
//
// Supported syntax is the paper's grammar: literals, '.', classes
// ('[a-f]', '[^x]', '\d', '\w', '\s'), grouping, alternation, and the
// postfix operators '*', '+', '?', '{n}', '{n,}', '{n,m}'. Anchors and
// backreferences are not supported.
func Compile(patterns []string, opts *Options) (*Engine, error) {
	return CompileContext(context.Background(), patterns, opts)
}

// CompileContext is Compile honoring a context: cancellation is observed
// between patterns and between CTA groups, and any panic inside the
// compilation pipeline is contained as a *InternalError naming the
// offending group's patterns.
func CompileContext(ctx context.Context, patterns []string, opts *Options) (*Engine, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts == nil {
		opts = &Options{}
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("bitgen: no patterns")
	}
	dev, err := resolveDevice(opts)
	if err != nil {
		return nil, err
	}
	limits := opts.Limits.withDefaults(dev)
	if limits.MaxPatterns > 0 && len(patterns) > limits.MaxPatterns {
		return nil, &LimitError{Limit: "patterns", Value: int64(len(patterns)), Max: int64(limits.MaxPatterns)}
	}
	observer := opts.Observability.observer()
	cspan := observer.Span("compile", "compile", 0).Arg("patterns", len(patterns))
	defer cspan.End()
	// Duplicate pattern strings compile once: identical patterns always
	// have identical match sets, so the engine runs the unique set and
	// results fan back out to every public index afterwards.
	regexes := make([]lower.Regex, 0, len(patterns))
	var unique, unbounded, nullable []string
	indexesOf := make(map[string][]int, len(patterns))
	maxLen := 0
	pspan := observer.Span("compile", "parse", 0)
	for i, p := range patterns {
		if err := ctx.Err(); err != nil {
			return nil, bgerr.Canceled(err)
		}
		if _, seen := indexesOf[p]; seen {
			indexesOf[p] = append(indexesOf[p], i)
			continue
		}
		indexesOf[p] = []int{i}
		unique = append(unique, p)
		ast, err := rx.ParseWith(p, rx.Options{FoldCase: opts.FoldCase})
		if err != nil {
			return nil, err
		}
		regexes = append(regexes, lower.Regex{Name: p, AST: ast})
		// Cache the streaming bound and nullability now — ScanReader must
		// not re-parse.
		if l := patternMaxLen(ast); l == rx.Unbounded {
			unbounded = append(unbounded, p)
		} else if l > maxLen {
			maxLen = l
		}
		if rx.MatchesEmpty(ast) {
			nullable = append(nullable, p)
		}
	}
	pspan.End()
	cfg := buildEngineConfig(opts, dev, limits, observer)
	inner, err := engine.CompileContext(ctx, regexes, cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		inner:    inner,
		patterns: patterns,
		unique:   unique, indexesOf: indexesOf, nullable: nullable,
		limits: limits,
		maxLen: maxLen, unbounded: unbounded,
		obs:         observer,
		scanWorkers: opts.ScanWorkers,
		scanBatch:   opts.ScanBatch,
		foldCase:    opts.FoldCase,
		optsHash:    optionsHash(opts),
	}
	e.initRankIndexes()
	if opts.Resilience != nil {
		asts := make([]rx.Node, len(regexes))
		for i := range regexes {
			asts[i] = regexes[i].AST
		}
		if err := buildLadder(e, asts, opts.Resilience); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// initRankIndexes aligns the duplicate-index fan-out with the inner
// engine's rank order so the streaming emit stage can index a slice
// instead of hashing pattern strings.
func (e *Engine) initRankIndexes() {
	names := e.inner.MatchNames()
	e.rankIndexes = make([][]int, len(names))
	for rank, name := range names {
		e.rankIndexes[rank] = e.indexesOf[name]
	}
}

// resolveDevice maps Options.Device to a simulator profile.
func resolveDevice(opts *Options) (gpusim.Device, error) {
	if opts.Device == "" {
		return gpusim.RTX3090, nil
	}
	d, err := gpusim.DeviceByName(opts.Device)
	if err != nil {
		return gpusim.Device{}, &UnsupportedError{Feature: fmt.Sprintf("device %q", opts.Device)}
	}
	return d, nil
}

// buildEngineConfig translates public Options into the internal engine
// configuration. CompileContext and LoadEngine share it, so a loaded
// snapshot executes under exactly the configuration a fresh compile would.
func buildEngineConfig(opts *Options, dev gpusim.Device, limits Limits, observer *obs.Observer) engine.Config {
	cfg := engine.BitGenDefault()
	cfg.KeepOutputs = true
	cfg.Device = dev
	grid := gpusim.DefaultGrid()
	if opts.CTAs > 0 {
		grid.CTAs = opts.CTAs
	}
	if opts.Threads > 0 {
		grid.Threads = opts.Threads
	}
	cfg.Grid = grid
	if opts.DisableShiftRebalancing {
		cfg.ShiftRebalancing = false
		cfg.MergeSize = 0
	} else if opts.MergeSize > 0 {
		cfg.MergeSize = opts.MergeSize
	}
	if opts.DisableZeroBlockSkipping {
		cfg.ZeroBlockSkipping = false
	}
	if opts.IntervalSize > 0 {
		cfg.IntervalSize = opts.IntervalSize
	}
	cfg.NoStateCompression = opts.DisableStateCompression
	if limits.MaxProgramInstructions > 0 {
		cfg.MaxProgramInstructions = limits.MaxProgramInstructions
	}
	cfg.MaxWhileIterations = limits.MaxWhileIterations
	if limits.MaxDeviceMemoryBytes > 0 {
		cfg.MemoryBudgetBytes = limits.MaxDeviceMemoryBytes
	}
	cfg.Obs = observer
	return cfg
}

// PatternSetKey returns a canonical content hash identifying a compiled
// pattern set: duplicate pattern strings collapse, pattern order is
// irrelevant, and every Options field that changes the compiled engine
// (syntax flags, device, launch geometry, optimization toggles, limits) is
// folded in. Two (patterns, opts) pairs with equal keys compile to engines
// with identical match behavior, so serving layers use the key to share
// one cached *Engine across equivalent requests.
func PatternSetKey(patterns []string, opts *Options) string {
	if opts == nil {
		opts = &Options{}
	}
	uniq := make([]string, 0, len(patterns))
	seen := make(map[string]bool, len(patterns))
	for _, p := range patterns {
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	sort.Strings(uniq)
	h := sha256.New()
	field := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	field("bitgen-pattern-set-v1")
	for _, p := range uniq {
		field(p)
	}
	field(fmt.Sprintf("%t|%s|%d|%d|%t|%t|%d|%d|%d|%t",
		opts.FoldCase, opts.Device, opts.CTAs, opts.Threads,
		opts.DisableShiftRebalancing, opts.DisableZeroBlockSkipping,
		opts.MergeSize, opts.IntervalSize, opts.ScanWorkers,
		opts.DisableStateCompression))
	field(fmt.Sprintf("%d|%d|%d|%d|%d",
		opts.Limits.MaxInputBytes, opts.Limits.MaxPatterns,
		opts.Limits.MaxProgramInstructions, opts.Limits.MaxWhileIterations,
		opts.Limits.MaxDeviceMemoryBytes))
	return hex.EncodeToString(h.Sum(nil))
}

// MustCompile is Compile that panics on error, for static pattern tables.
func MustCompile(patterns []string, opts *Options) *Engine {
	e, err := Compile(patterns, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// Patterns returns the compiled pattern sources. The slice is a copy:
// mutating it cannot corrupt the engine's duplicate-index fan-out.
func (e *Engine) Patterns() []string { return append([]string(nil), e.patterns...) }

// ResidentBytes reports the measured bytes of durable compiled state this
// engine keeps resident: packed (or boxed) group programs, output tables,
// the shared character-class program, and — with Resilience enabled — the
// fallback rungs' compacted NFA/DFA tables. Transient per-scan buffers are
// excluded. This is the value the serve layer's refcount-aware cache
// accounting starts from.
func (e *Engine) ResidentBytes() int64 {
	n := e.inner.ResidentBytes()
	if e.ladder != nil {
		n += e.ladder.ResidentBytes()
	}
	return n
}

// PackedBlocks exposes the engine's packed compiled-state blobs (one per
// CTA group, plus the shared class program when present) for
// content-addressed deduplication by serving layers. The returned slices
// alias the engine's resident state and must be treated as immutable.
func (e *Engine) PackedBlocks() [][]byte { return e.inner.PackedBlocks() }

// RebindPackedBlocks replaces each packed block with the canonical slice
// canon returns for it, letting a content-addressed store share one copy
// of identical compiled state across engines. canon must return a slice
// with identical contents (typically its interned copy).
func (e *Engine) RebindPackedBlocks(canon func([]byte) []byte) {
	e.inner.RebindPackedBlocks(canon)
}

// Explain returns a human-readable compilation report: per-CTA-group
// instruction mixes, overlap distances, barrier schedules and guard
// counts.
func (e *Engine) Explain() string { return e.inner.Explain().String() }

// checkInput enforces the per-run input-size limit.
func (e *Engine) checkInput(input []byte) error {
	if e.limits.MaxInputBytes > 0 && int64(len(input)) > e.limits.MaxInputBytes {
		return &LimitError{Limit: "input-bytes", Value: int64(len(input)), Max: e.limits.MaxInputBytes}
	}
	return nil
}

// sortMatches orders matches by end position, then pattern, then index.
func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].End != ms[j].End {
			return ms[i].End < ms[j].End
		}
		if ms[i].Pattern != ms[j].Pattern {
			return ms[i].Pattern < ms[j].Pattern
		}
		return ms[i].Index < ms[j].Index
	})
}

// fanOutCounts expands per-unique-pattern match counts into the public
// views: the per-string map sums across duplicate entries of the same
// pattern, the per-index slice keeps each entry's own count.
func (e *Engine) fanOutCounts(inner map[string]int) (map[string]int, []int) {
	counts := make(map[string]int, len(inner))
	idxCounts := make([]int, len(e.patterns))
	for name, c := range inner {
		idxs := e.indexesOf[name]
		counts[name] = c * len(idxs)
		for _, idx := range idxs {
			idxCounts[idx] = c
		}
	}
	return counts, idxCounts
}

// toResult converts an internal run result to the public form, fanning
// each unique pattern's matches out to every duplicate index.
func (e *Engine) toResult(inner *engine.Result) *Result {
	res := &Result{}
	res.Counts, res.IndexCounts = e.fanOutCounts(inner.MatchCounts)
	for pattern, stream := range inner.Outputs {
		idxs := e.indexesOf[pattern]
		for _, end := range stream.Positions() {
			for _, idx := range idxs {
				res.Matches = append(res.Matches, Match{Pattern: pattern, Index: idx, End: end})
			}
		}
	}
	sortMatches(res.Matches)
	total := inner.Stats.Total()
	res.Stats = Stats{
		ModeledTime:      time.Duration(inner.Time.TotalSec * float64(time.Second)),
		ThroughputMBs:    inner.ThroughputMBs,
		DRAMReadBytes:    total.DRAMReadBytes,
		DRAMWriteBytes:   total.DRAMWriteBytes,
		Barriers:         total.Barriers,
		RecomputePercent: total.RecomputePercent(),
		GuardSkips:       total.GuardSkips,
	}
	res.Profile = inner.Profile
	return res
}

// Run scans the input and returns every match with modeled execution
// statistics.
func (e *Engine) Run(input []byte) (*Result, error) {
	return e.RunContext(context.Background(), input)
}

// RunContext is Run honoring a context: a caller deadline or cancellation
// interrupts execution at block-window and while-loop boundaries and
// returns an error satisfying errors.Is(err, ErrCanceled). A panic inside
// one CTA group is contained as a *InternalError; the Engine remains
// usable afterwards.
func (e *Engine) RunContext(ctx context.Context, input []byte) (*Result, error) {
	if err := e.checkInput(input); err != nil {
		return nil, err
	}
	start := time.Now()
	span := e.obs.Span("scan", "run", 0).Arg("input_bytes", len(input))
	res, err := e.runContext(ctx, input)
	if err != nil {
		span.Arg("error", err.Error()).End()
		e.observeScan(start, len(input), 0, err)
		return nil, err
	}
	span.Arg("matches", len(res.Matches)).End()
	e.observeScan(start, len(input), len(res.Matches), nil)
	return res, nil
}

// runContext dispatches one scan to the ladder or directly to the
// bitstream engine.
func (e *Engine) runContext(ctx context.Context, input []byte) (*Result, error) {
	if e.ladder != nil {
		return e.runLadder(ctx, input)
	}
	inner, err := e.inner.RunContext(ctx, input)
	if err != nil {
		return nil, err
	}
	return e.toResult(inner), nil
}

// CountOnly scans the input and returns only per-pattern match counts.
// Unlike Run, no match streams are retained and no position list is
// materialized — each group's output becomes garbage as soon as its count
// is taken — so it is cheaper than Run for large inputs when positions
// are not needed.
func (e *Engine) CountOnly(input []byte) (map[string]int, error) {
	return e.CountOnlyContext(context.Background(), input)
}

// CountOnlyContext is CountOnly honoring a context (see RunContext).
// With resilience enabled the call rides the backend ladder (positions
// are materialized by the serving rung, then counted).
func (e *Engine) CountOnlyContext(ctx context.Context, input []byte) (map[string]int, error) {
	if err := e.checkInput(input); err != nil {
		return nil, err
	}
	start := time.Now()
	span := e.obs.Span("scan", "count-only", 0).Arg("input_bytes", len(input))
	counts, err := e.countOnlyContext(ctx, input)
	if err != nil {
		span.Arg("error", err.Error()).End()
		e.observeScan(start, len(input), 0, err)
		return nil, err
	}
	matches := 0
	for _, n := range counts {
		matches += n
	}
	span.Arg("matches", matches).End()
	e.observeScan(start, len(input), matches, nil)
	return counts, nil
}

func (e *Engine) countOnlyContext(ctx context.Context, input []byte) (map[string]int, error) {
	if e.ladder != nil {
		res, err := e.runLadder(ctx, input)
		if err != nil {
			return nil, err
		}
		return res.Counts, nil
	}
	res, err := e.inner.RunCounts(ctx, input)
	if err != nil {
		return nil, err
	}
	counts, _ := e.fanOutCounts(res.MatchCounts)
	return counts, nil
}

// MultiResult is the outcome of RunMulti: per-stream results plus the
// modeled time of the combined MIMD launch (every (group, stream) pair is
// one resident CTA).
type MultiResult struct {
	// PerStream holds each input's result, in input order.
	PerStream []*Result
	// ModeledTime is the simulated time of the combined launch.
	ModeledTime time.Duration
	// ThroughputMBs is aggregate input volume per modeled second.
	ThroughputMBs float64
}

// RunMulti scans several independent input streams in one modeled MIMD
// launch (Section 3.1): each pattern group is replicated per stream and
// the cost model sees the full CTA population.
func (e *Engine) RunMulti(inputs [][]byte) (*MultiResult, error) {
	return e.RunMultiContext(context.Background(), inputs)
}

// RunMultiContext is RunMulti honoring a context (see RunContext).
func (e *Engine) RunMultiContext(ctx context.Context, inputs [][]byte) (*MultiResult, error) {
	for _, input := range inputs {
		if err := e.checkInput(input); err != nil {
			return nil, err
		}
	}
	inner, err := e.inner.RunMultiContext(ctx, inputs)
	if err != nil {
		return nil, err
	}
	out := &MultiResult{
		ModeledTime:   time.Duration(inner.Time.TotalSec * float64(time.Second)),
		ThroughputMBs: inner.ThroughputMBs,
	}
	for _, r := range inner.PerStream {
		out.PerStream = append(out.PerStream, e.toResult(r))
	}
	return out, nil
}
