// Package bitgen is a multi-pattern regular-expression matching engine
// built on interleaved bitstream execution, a Go reproduction of the
// MICRO 2025 paper "Interleaved Bitstream Execution for Multi-Pattern Regex
// Matching on GPUs".
//
// Patterns are compiled Parabix-style into bitstream programs — sequences
// of bitwise operations, shifts and carry smears over one-bit-per-byte
// streams — and executed block-wise on a functional GPU simulator that
// models the paper's CTA execution: dependency-aware thread-data mapping
// with overlap recomputation, shift-rebalanced barrier schedules, and
// zero-block skipping. Match results are exact; reported times and
// throughputs come from the simulator's calibrated cost model (see
// DESIGN.md for the substitution rationale).
//
// Quick start:
//
//	eng, err := bitgen.Compile([]string{"a(bc)*d", "error:.*timeout"}, nil)
//	res, err := eng.Run(input)
//	for _, m := range res.Matches { fmt.Println(m.Pattern, m.End) }
package bitgen

import (
	"fmt"
	"sort"
	"time"

	"bitgen/internal/engine"
	"bitgen/internal/gpusim"
	"bitgen/internal/lower"
	"bitgen/internal/rx"
)

// Options configure compilation. The zero value (or a nil pointer) gives
// the paper's default full-optimization configuration on the RTX 3090
// profile.
type Options struct {
	// FoldCase makes matching ASCII case-insensitive.
	FoldCase bool
	// Device selects the GPU profile by name: "RTX 3090" (default),
	// "H100 NVL", or "L40S".
	Device string
	// CTAs overrides the number of CTA groups (default 256).
	CTAs int
	// Threads overrides the CTA size (default 512).
	Threads int
	// DisableShiftRebalancing turns off the Section 5 pass.
	DisableShiftRebalancing bool
	// DisableZeroBlockSkipping turns off the Section 6 pass.
	DisableZeroBlockSkipping bool
	// MergeSize bounds barrier merging (default 8; ignored when shift
	// rebalancing is disabled).
	MergeSize int
	// IntervalSize is the zero-block-skipping guard spacing (default 8).
	IntervalSize int
}

// Match reports one match: Pattern matched the input ending at byte
// offset End (inclusive). All-match semantics: every distinct end
// position of every pattern is reported once.
type Match struct {
	Pattern string
	End     int
}

// Stats summarizes one run's modeled execution.
type Stats struct {
	// ModeledTime is the simulated kernel time on the selected device.
	ModeledTime time.Duration
	// ThroughputMBs is input megabytes (1e6 bytes) per modeled second.
	ThroughputMBs float64
	// DRAMReadBytes / DRAMWriteBytes are total global-memory traffic.
	DRAMReadBytes, DRAMWriteBytes int64
	// Barriers is the total CTA synchronization count.
	Barriers int64
	// RecomputePercent is the dependency-aware mapping overhead.
	RecomputePercent float64
	// GuardSkips counts taken zero-block guards.
	GuardSkips int64
}

// Result is the outcome of Engine.Run.
type Result struct {
	// Matches lists every (pattern, end-position) pair, ordered by end
	// position then pattern.
	Matches []Match
	// Counts maps each pattern to its number of match end positions.
	Counts map[string]int
	// Stats is the modeled execution summary.
	Stats Stats
}

// Engine is a compiled multi-pattern matcher. A compiled Engine is
// immutable: Run, CountOnly and ScanReader may be called concurrently from
// multiple goroutines.
type Engine struct {
	inner    *engine.Engine
	patterns []string
}

// Compile parses and compiles the patterns. A nil opts selects defaults.
//
// Supported syntax is the paper's grammar: literals, '.', classes
// ('[a-f]', '[^x]', '\d', '\w', '\s'), grouping, alternation, and the
// postfix operators '*', '+', '?', '{n}', '{n,}', '{n,m}'. Anchors and
// backreferences are not supported.
func Compile(patterns []string, opts *Options) (*Engine, error) {
	if opts == nil {
		opts = &Options{}
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("bitgen: no patterns")
	}
	regexes := make([]lower.Regex, len(patterns))
	for i, p := range patterns {
		ast, err := rx.ParseWith(p, rx.Options{FoldCase: opts.FoldCase})
		if err != nil {
			return nil, err
		}
		regexes[i] = lower.Regex{Name: p, AST: ast}
	}
	cfg := engine.BitGenDefault()
	cfg.KeepOutputs = true
	if opts.Device != "" {
		d, err := gpusim.DeviceByName(opts.Device)
		if err != nil {
			return nil, err
		}
		cfg.Device = d
	}
	grid := gpusim.DefaultGrid()
	if opts.CTAs > 0 {
		grid.CTAs = opts.CTAs
	}
	if opts.Threads > 0 {
		grid.Threads = opts.Threads
	}
	cfg.Grid = grid
	if opts.DisableShiftRebalancing {
		cfg.ShiftRebalancing = false
		cfg.MergeSize = 0
	} else if opts.MergeSize > 0 {
		cfg.MergeSize = opts.MergeSize
	}
	if opts.DisableZeroBlockSkipping {
		cfg.ZeroBlockSkipping = false
	}
	if opts.IntervalSize > 0 {
		cfg.IntervalSize = opts.IntervalSize
	}
	inner, err := engine.Compile(regexes, cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner, patterns: patterns}, nil
}

// MustCompile is Compile that panics on error, for static pattern tables.
func MustCompile(patterns []string, opts *Options) *Engine {
	e, err := Compile(patterns, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// Patterns returns the compiled pattern sources.
func (e *Engine) Patterns() []string { return e.patterns }

// Explain returns a human-readable compilation report: per-CTA-group
// instruction mixes, overlap distances, barrier schedules and guard
// counts.
func (e *Engine) Explain() string { return e.inner.Explain().String() }

// Run scans the input and returns every match with modeled execution
// statistics.
func (e *Engine) Run(input []byte) (*Result, error) {
	inner, err := e.inner.Run(input)
	if err != nil {
		return nil, err
	}
	res := &Result{Counts: inner.MatchCounts}
	for pattern, stream := range inner.Outputs {
		for _, end := range stream.Positions() {
			res.Matches = append(res.Matches, Match{Pattern: pattern, End: end})
		}
	}
	sort.Slice(res.Matches, func(i, j int) bool {
		if res.Matches[i].End != res.Matches[j].End {
			return res.Matches[i].End < res.Matches[j].End
		}
		return res.Matches[i].Pattern < res.Matches[j].Pattern
	})
	total := inner.Stats.Total()
	res.Stats = Stats{
		ModeledTime:      time.Duration(inner.Time.TotalSec * float64(time.Second)),
		ThroughputMBs:    inner.ThroughputMBs,
		DRAMReadBytes:    total.DRAMReadBytes,
		DRAMWriteBytes:   total.DRAMWriteBytes,
		Barriers:         total.Barriers,
		RecomputePercent: total.RecomputePercent(),
		GuardSkips:       total.GuardSkips,
	}
	return res, nil
}

// CountOnly scans the input and returns only per-pattern match counts
// (cheaper than Run for large inputs when positions are not needed).
func (e *Engine) CountOnly(input []byte) (map[string]int, error) {
	res, err := e.inner.Run(input)
	if err != nil {
		return nil, err
	}
	return res.MatchCounts, nil
}
