package bitgen

import (
	"context"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"bitgen/internal/arena"
	"bitgen/internal/bgerr"
	"bitgen/internal/engine"
	"bitgen/internal/obs"
)

// Trace lanes for the pipeline stages: each stage renders as its own track
// so reads, chunk executions and emission are visibly overlapped. Kernel
// spans from worker i land on that worker's lane.
const (
	scanLaneEmit   = 100
	scanLaneReader = 101
	scanLaneWorker = 102 // worker i uses scanLaneWorker + i
)

// scanJob is one chunk moving through the pipeline. The job struct, its
// match slice and its pooled byte buffer are recycled through a fixed-size
// freelist, so the steady-state chunk loop allocates nothing.
type scanJob struct {
	seq     int64
	buf     *arena.Bytes       // pooled chunk storage (overlap prefix + new bytes)
	data    []byte             // valid view of buf.B
	offset  int64              // absolute stream offset of data[0]
	newFrom int64              // first absolute offset not yet emitted
	matches []engine.ScanMatch // worker output, sorted (End, Pattern)
	err     error
}

// scanPipelined is the bounded three-stage streaming scanner:
//
//	reader ──work──▶ workers (transpose + kernels) ──results──▶ in-order emit
//
// The reader fills pooled chunk buffers and carries the overlap; each
// worker owns an engine.ScanSession (pooled basis + per-group kernel
// sessions) and scans whole chunks; the emit stage reorders completed
// chunks by sequence number so matches appear in exactly the sequential
// path's order. Chunk N+1 is being read and scanned while chunk N's
// matches are emitted. All stages shut down — and every pooled buffer is
// returned — before the call returns, on success, error and cancellation
// alike.
func (e *Engine) scanPipelined(ctx context.Context, r io.Reader, chunkSize, maxLen int, emit func(Match)) error {
	overlap := maxLen - 1
	workers := e.scanWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ar := e.scanArena
	if ar == nil {
		ar = arena.Default
	}
	batch := e.scanBatch
	if batch < 1 {
		batch = 1
	}
	// Bounded look-ahead: jobs in flight at once. With batching the queue
	// must hold enough completed reads for workers to find batchmates.
	depth := workers*batch + 2

	e.obs.NameLane(scanLaneEmit, "scan/emit")
	e.obs.NameLane(scanLaneReader, "scan/reader")

	free := make(chan *scanJob, depth)
	work := make(chan *scanJob, depth)
	results := make(chan *scanJob, depth)
	for i := 0; i < depth; i++ {
		free <- &scanJob{}
	}

	// pctx stops the reader and interrupts in-flight kernels once the
	// outcome is decided (terminal error or all input consumed).
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()

	// readerErr is written by the reader goroutine before it closes work,
	// and read by this goroutine only after results closes — the channel
	// closes order the accesses.
	var readerErr error
	traced := e.obs.Enabled()

	go func() { // stage 1: reader
		defer close(work)
		carryBuf := make([]byte, overlap)
		carry := carryBuf[:0]
		var pos int64 // total bytes consumed from r
		var seq int64
		for {
			var j *scanJob
			select {
			case j = <-free:
			case <-pctx.Done():
				readerErr = bgerr.Canceled(pctx.Err())
				return
			}
			j.buf = ar.GetBytes(overlap + chunkSize)
			b := j.buf.B
			copy(b, carry)
			var rspan *obs.Span
			if traced {
				rspan = e.obs.Span("scan", "read-chunk", scanLaneReader).Arg("seq", seq)
			}
			n, err := io.ReadFull(r, b[len(carry):len(carry)+chunkSize])
			if traced {
				rspan.Arg("bytes", n).End()
			}
			data := b[:len(carry)+n]
			eof := err == io.EOF || err == io.ErrUnexpectedEOF
			if err != nil && !eof {
				// The failed read began right after the bytes consumed so
				// far; fully-read chunks before it still emit.
				readerErr = &ReadError{Offset: pos + int64(n), Err: err}
				ar.PutBytes(j.buf)
				j.buf = nil
				return
			}
			if n == 0 {
				// Pure EOF: the carried overlap was already scanned.
				ar.PutBytes(j.buf)
				j.buf = nil
				return
			}
			j.seq, j.data, j.err = seq, data, nil
			j.offset = pos - int64(len(carry))
			j.newFrom = pos
			pos += int64(n)
			keep := overlap
			if keep > len(data) {
				keep = len(data)
			}
			carry = carryBuf[:keep]
			copy(carry, data[len(data)-keep:])
			seq++
			work <- j // never blocks: at most depth jobs exist
			if eof {
				return
			}
		}
	}()

	var wg sync.WaitGroup // stage 2: transpose + kernel workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lane := scanLaneWorker + w
			e.obs.NameLane(lane, "scan/worker")
			ss, ssErr := e.inner.NewScanSession(overlap+chunkSize, ar, lane)
			if ss != nil {
				defer ss.Close()
			}
			// Opportunistic batching: after taking one job, drain whatever
			// is already queued (up to the batch size) without waiting, and
			// run the whole set through one batched launch per CTA group.
			// An idle pipeline degrades to plain chunk-at-a-time scanning.
			jobs := make([]*scanJob, 0, batch)
			chunks := make([]engine.ScanChunk, batch)
			chunkPtrs := make([]*engine.ScanChunk, 0, batch)
			for j := range work {
				jobs = append(jobs[:0], j)
			drain:
				for len(jobs) < batch {
					select {
					case j2, ok := <-work:
						if !ok {
							break drain
						}
						jobs = append(jobs, j2)
					default:
						break drain
					}
				}
				start := time.Now()
				var cspan *obs.Span
				if traced {
					cspan = e.obs.Span("scan", "scan-chunk", lane).
						Arg("seq", j.seq).Arg("batch", len(jobs))
				}
				if len(jobs) == 1 {
					j.scan(pctx, ss, ssErr)
				} else {
					chunkPtrs = chunkPtrs[:0]
					for i, jb := range jobs {
						chunks[i] = engine.ScanChunk{
							Data: jb.data, Base: jb.offset, NewFrom: jb.newFrom,
							Matches: jb.matches[:0],
						}
						chunkPtrs = append(chunkPtrs, &chunks[i])
					}
					scanJobsBatched(pctx, ss, ssErr, chunkPtrs)
					for i, jb := range jobs {
						jb.matches, jb.err = chunks[i].Matches, chunks[i].Err
						chunks[i] = engine.ScanChunk{}
					}
				}
				if traced {
					cspan.Arg("matches", len(j.matches)).End()
				}
				for _, jb := range jobs {
					e.observeScan(start, len(jb.data), len(jb.matches), jb.err)
					ar.PutBytes(jb.buf)
					jb.buf = nil
					results <- jb // never blocks: at most depth jobs exist
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Stage 3: in-order emit. Jobs complete out of order; a ring keyed by
	// seq modulo depth (in-flight seqs always span < depth) restores the
	// sequential order. The earliest failing chunk decides the returned
	// error, exactly as the sequential path — which never scans past its
	// first failure — would.
	ring := make([]*scanJob, depth)
	next := int64(0)
	var termErr error
	for j := range results {
		ring[j.seq%int64(depth)] = j
		for {
			k := ring[next%int64(depth)]
			if k == nil {
				break
			}
			ring[next%int64(depth)] = nil
			if termErr == nil {
				if k.err != nil {
					termErr = k.err
					pcancel() // stop reading; interrupt later chunks
				} else {
					for _, m := range k.matches {
						// Fan each unique pattern's match out to every
						// duplicate index, ascending — the same order the
						// sequential path's sorted Matches produce. The rank
						// indexes the precomputed fan-out table directly.
						for _, idx := range e.rankIndexes[m.Rank] {
							emit(Match{Pattern: m.Pattern, Index: idx, End: int(m.End)})
						}
					}
					if traced {
						e.obs.Instant("scan", "emit-chunk", scanLaneEmit,
							obs.A("seq", k.seq), obs.A("matches", len(k.matches)))
					}
				}
			}
			next++
			free <- k // never blocks: freelist capacity is depth
		}
	}
	if termErr != nil {
		return termErr
	}
	// All dispatched chunks emitted; surface how the reader stopped.
	return readerErr
}

// scanJobsBatched runs a drained batch through the session's batched path,
// containing any panic as a typed internal error on every affected chunk
// (mirroring scan's containment) so one poisoned batch cannot take down
// the pipeline.
func scanJobsBatched(ctx context.Context, ss *engine.ScanSession, ssErr error, chunks []*engine.ScanChunk) {
	defer func() {
		if r := recover(); r != nil {
			err := &bgerr.InternalError{Op: "scan", Value: r, Stack: debug.Stack()}
			for _, c := range chunks {
				c.Matches, c.Err = c.Matches[:0], err
			}
		}
	}()
	if ssErr != nil {
		for _, c := range chunks {
			c.Matches, c.Err = c.Matches[:0], ssErr
		}
		return
	}
	ss.ScanBatch(ctx, chunks)
}

// scan runs the job's chunk through the worker's session, containing any
// panic as a typed internal error (mirroring Run's containment) so one
// poisoned chunk cannot take down the pipeline.
func (j *scanJob) scan(ctx context.Context, ss *engine.ScanSession, ssErr error) {
	defer func() {
		if r := recover(); r != nil {
			j.err = &bgerr.InternalError{Op: "scan", Value: r, Stack: debug.Stack()}
		}
	}()
	if ssErr != nil {
		j.matches, j.err = j.matches[:0], ssErr
		return
	}
	j.matches, j.err = ss.Scan(ctx, j.data, j.offset, j.newFrom, j.matches[:0])
}
