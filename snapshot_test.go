package bitgen

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"testing"
)

// snapPatterns exercises the interesting compile paths: duplicates,
// nullable, star closures, classes, bounded repeats.
var snapPatterns = []string{"abc", "a?", "abc", "a(bc)*d", "[a-f]+x", "colou?r", "ab{2,3}c"}

var snapInput = []byte("zabcz abbcx deefx abbbc colour abcbcd a")

func compileFresh(t *testing.T, opts *Options) *Engine {
	t.Helper()
	eng, err := Compile(snapPatterns, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return eng
}

func roundTrip(t *testing.T, eng *Engine, opts *Options) *Engine {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveEngine(&buf, eng); err != nil {
		t.Fatalf("SaveEngine: %v", err)
	}
	loaded, err := LoadEngine(&buf, opts)
	if err != nil {
		t.Fatalf("LoadEngine: %v", err)
	}
	return loaded
}

// TestSnapshotRoundTripDifferential is the differential guarantee: a
// loaded engine produces results struct-identical to the fresh engine —
// matches, Counts, IndexCounts, nullable EOF semantics and modeled stats.
func TestSnapshotRoundTripDifferential(t *testing.T) {
	fresh := compileFresh(t, nil)
	loaded := roundTrip(t, fresh, nil)

	if !reflect.DeepEqual(loaded.Patterns(), fresh.Patterns()) {
		t.Fatalf("patterns drifted: %v != %v", loaded.Patterns(), fresh.Patterns())
	}
	want, err := fresh.Run(snapInput)
	if err != nil {
		t.Fatalf("fresh Run: %v", err)
	}
	got, err := loaded.Run(snapInput)
	if err != nil {
		t.Fatalf("loaded Run: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("loaded engine result differs from fresh:\n got %+v\nwant %+v", got, want)
	}
	// The nullable pattern a? must still report the EOF empty match.
	lastEnd := -1
	for _, m := range got.Matches {
		if m.Pattern == "a?" && m.End > lastEnd {
			lastEnd = m.End
		}
	}
	if lastEnd != len(snapInput) {
		t.Fatalf("nullable EOF match lost in snapshot: last a? end %d, want %d", lastEnd, len(snapInput))
	}
}

// TestSnapshotRoundTripBackends loads under resilience and forces each
// backend rung: the snapshot path must preserve cross-backend agreement.
func TestSnapshotRoundTripBackends(t *testing.T) {
	fresh := compileFresh(t, nil)
	want, err := fresh.Run(snapInput)
	if err != nil {
		t.Fatalf("fresh Run: %v", err)
	}
	for _, backend := range []string{"bitstream", "hybrid", "nfa"} {
		opts := &Options{Resilience: &ResilienceOptions{ForceBackend: backend}}
		loaded := roundTrip(t, fresh, opts)
		got, err := loaded.Run(snapInput)
		if err != nil {
			t.Fatalf("loaded Run via %s: %v", backend, err)
		}
		if !reflect.DeepEqual(got.Matches, want.Matches) {
			t.Fatalf("backend %s: loaded matches differ:\n got %+v\nwant %+v", backend, got.Matches, want.Matches)
		}
		if !reflect.DeepEqual(got.IndexCounts, want.IndexCounts) {
			t.Fatalf("backend %s: IndexCounts differ: %v != %v", backend, got.IndexCounts, want.IndexCounts)
		}
	}
}

// TestSnapshotOptionsMismatch proves negotiation: a snapshot compiled
// under different compile-relevant options is refused with the typed
// error, never silently served.
func TestSnapshotOptionsMismatch(t *testing.T) {
	eng := compileFresh(t, nil)
	var buf bytes.Buffer
	if err := SaveEngine(&buf, eng); err != nil {
		t.Fatalf("SaveEngine: %v", err)
	}
	cases := []*Options{
		{FoldCase: true},
		{CTAs: 8},
		{DisableZeroBlockSkipping: true},
		{Limits: Limits{MaxWhileIterations: 7}},
	}
	for _, opts := range cases {
		_, err := DecodeEngine(buf.Bytes(), opts)
		if !errors.Is(err, ErrSnapshot) {
			t.Fatalf("opts %+v: want ErrSnapshot, got %v", opts, err)
		}
		var se *SnapshotError
		if !errors.As(err, &se) || se.Reason != "options-mismatch" {
			t.Fatalf("opts %+v: want options-mismatch, got %v", opts, err)
		}
	}
	// Runtime-only options must NOT refuse.
	for _, opts := range []*Options{{ScanWorkers: 3}, {Observability: &ObservabilityOptions{Metrics: true}}} {
		if _, err := DecodeEngine(buf.Bytes(), opts); err != nil {
			t.Fatalf("runtime-only opts %+v refused: %v", opts, err)
		}
	}
}

// TestSnapshotCorruptionDetected flips each byte region of a snapshot and
// asserts the loader always refuses — never serves — the damaged file.
func TestSnapshotCorruptionDetected(t *testing.T) {
	eng := compileFresh(t, nil)
	data := EncodeEngine(eng)
	// Flip a byte at several representative offsets: header, early
	// section, middle, near-end, trailing CRC.
	offsets := []int{0, 9, 20, len(data) / 3, len(data) / 2, len(data) - 2}
	for _, off := range offsets {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x01
		if _, err := DecodeEngine(bad, nil); !errors.Is(err, ErrSnapshot) {
			t.Fatalf("flip at %d: want ErrSnapshot, got %v", off, err)
		}
	}
	// Truncations at every framing-sensitive length.
	for _, n := range []int{0, 4, 15, 16, len(data) / 2, len(data) - 1} {
		if _, err := DecodeEngine(data[:n], nil); !errors.Is(err, ErrSnapshot) {
			t.Fatalf("truncate to %d: want ErrSnapshot, got %v", n, err)
		}
	}
}

// FuzzSnapshotRoundTrip asserts, for generated pattern sets and inputs,
// that load(save(engine)) produces byte-identical match results to the
// fresh engine across all three backends, and that flipping any single
// byte of the snapshot always yields a typed refusal, never a served
// engine with drifted state.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(1), []byte("abcabcddef aabbcc"))
	f.Add(uint64(7), []byte("jjjjiihhaa gggff"))
	f.Add(uint64(42), []byte{})
	f.Add(uint64(99), []byte("a"))
	// Duplicate-heavy / shared-charclass seeds (odd seeds trigger the
	// amplification below): snapshots of shared-basis engines must round-
	// trip exactly like plain ones.
	f.Add(uint64(101), []byte("abcfgj afgj aafjgg"))
	f.Add(uint64(203), []byte("ffgjffgj aaa jgfa"))
	f.Fuzz(func(t *testing.T, seed uint64, data []byte) {
		patterns := fuzzPatterns(seed, 4)
		if len(patterns) == 0 {
			t.Skip("generator produced no usable patterns")
		}
		patterns = append(patterns, patterns[0]) // duplicate fan-out
		if seed%2 == 1 {
			// Shared-charclass pressure: identical class-heavy entries
			// promoted to the shared extended basis by the compressed compile.
			patterns = append(patterns, "[a-f][g-j]", "[a-f][g-j]", patterns[len(patterns)/2])
		}
		input := fuzzInput(data)

		fresh, err := Compile(patterns, nil)
		if errors.Is(err, ErrLimit) || errors.Is(err, ErrUnsupported) {
			t.Skip(err)
		}
		if err != nil {
			t.Fatalf("compile %v: %v", patterns, err)
		}
		want, err := fresh.Run(input)
		if errors.Is(err, ErrLimit) {
			t.Skip(err)
		}
		if err != nil {
			t.Fatalf("fresh run: %v", err)
		}
		snap := EncodeEngine(fresh)

		for _, backend := range []string{"", BackendBitstream, BackendHybrid, BackendNFA} {
			opts := &Options{}
			if backend != "" {
				opts.Resilience = &ResilienceOptions{ForceBackend: backend}
			}
			loaded, err := DecodeEngine(snap, opts)
			if err != nil {
				t.Fatalf("load for backend %q: %v", backend, err)
			}
			got, err := loaded.Run(input)
			if err != nil {
				t.Fatalf("loaded run via %q: %v", backend, err)
			}
			if !reflect.DeepEqual(got.Matches, want.Matches) {
				t.Fatalf("patterns %v backend %q: loaded matches %v, fresh %v", patterns, backend, got.Matches, want.Matches)
			}
			if !reflect.DeepEqual(got.IndexCounts, want.IndexCounts) {
				t.Fatalf("patterns %v backend %q: loaded IndexCounts %v, fresh %v", patterns, backend, got.IndexCounts, want.IndexCounts)
			}
		}

		// A crafted section length near MaxUint64 must be refused as a
		// typed error: an additive bounds check (payLen+4) would wrap,
		// pass, and panic the decoder on hostile bytes.
		huge := append([]byte(nil), snap...)
		nameLen := int(binary.LittleEndian.Uint16(huge[16:18]))
		binary.LittleEndian.PutUint64(huge[18+nameLen:], math.MaxUint64-seed%5)
		if _, err := DecodeEngine(huge, nil); !errors.Is(err, ErrSnapshot) {
			t.Fatalf("overflow payLen: want ErrSnapshot, got %v", err)
		}

		// One deterministic single-byte flip per fuzz case: corrupted
		// snapshots must always be refused.
		off := int(seed % uint64(len(snap)))
		bad := append([]byte(nil), snap...)
		bad[off] ^= 0x10
		if eng, err := DecodeEngine(bad, nil); err == nil {
			// An undetected flip is only acceptable if it is semantically
			// invisible — and our CRCs make that impossible.
			_ = eng
			t.Fatalf("flip at %d of %d went undetected", off, len(snap))
		} else if !errors.Is(err, ErrSnapshot) {
			t.Fatalf("flip at %d: want ErrSnapshot, got %v", off, err)
		}
	})
}

// TestSnapshotResilienceSaved saves an engine that was compiled WITH
// resilience and loads it plain: only compiled state persists.
func TestSnapshotResilienceSaved(t *testing.T) {
	fresh := compileFresh(t, &Options{Resilience: &ResilienceOptions{}})
	loaded := roundTrip(t, fresh, nil)
	want, err := fresh.Run(snapInput)
	if err != nil {
		t.Fatalf("fresh Run: %v", err)
	}
	got, err := loaded.Run(snapInput)
	if err != nil {
		t.Fatalf("loaded Run: %v", err)
	}
	if !reflect.DeepEqual(got.Matches, want.Matches) {
		t.Fatalf("matches differ after resilience round-trip")
	}
	if got.Backend != "" {
		t.Fatalf("plain loaded engine reports backend %q", got.Backend)
	}
}
