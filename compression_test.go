package bitgen

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"bitgen/internal/workload"
)

// sharedClassPatterns lean heavily on a handful of character classes so
// the compressed compile promotes them to the shared extended basis:
// every group references [a-f] and/or [0-9] and the interned streams must
// bind back into each group's transpose view without changing semantics.
var sharedClassPatterns = []string{
	"[a-f]+x",
	"[a-f]*y",
	"ab[a-f]c",
	"[0-9][0-9][a-f]",
	"x[a-f]?z",
	"[a-f][0-9]",
	"q[0-9]+",
}

// duplicateHeavyPatterns repeat entries so charclass interning, packed
// program dedup and the per-index match fan-out all face the worst case.
var duplicateHeavyPatterns = []string{
	"abc", "abc", "abc",
	"a(bc)*d", "a(bc)*d",
	"[a-f]+", "abc", "[a-f]+",
	"colou?r",
}

var compressionInputs = [][]byte{
	[]byte("abcdefx 42a qa9z abc colour xffy"),
	[]byte(strings.Repeat("abcabcd 99f xaz color colour ", 40)),
	{},
	[]byte("fffffx000aq123"),
}

// TestStateCompressionDifferential proves the tentpole's safety claim:
// interned/shared-basis engines (the default) are match- and
// count-identical to the uncompressed baseline (DisableStateCompression)
// on every resilience backend. Modeled kernel Stats legitimately differ —
// the compressed compile computes shared classes once instead of per
// group — so the oracle compares match semantics, not instruction counts.
func TestStateCompressionDifferential(t *testing.T) {
	sets := map[string][]string{
		"shared-class":    sharedClassPatterns,
		"duplicate-heavy": duplicateHeavyPatterns,
	}
	backends := []string{"", BackendBitstream, BackendHybrid, BackendNFA}
	for name, patterns := range sets {
		for _, backend := range backends {
			label := name + "/default"
			if backend != "" {
				label = name + "/" + backend
			}
			t.Run(label, func(t *testing.T) {
				var opts, base Options
				if backend != "" {
					opts.Resilience = &ResilienceOptions{ForceBackend: backend}
					base.Resilience = &ResilienceOptions{ForceBackend: backend}
				}
				base.DisableStateCompression = true
				compressed, err := Compile(patterns, &opts)
				if err != nil {
					t.Fatalf("compressed compile: %v", err)
				}
				baseline, err := Compile(patterns, &base)
				if err != nil {
					t.Fatalf("baseline compile: %v", err)
				}
				for _, input := range compressionInputs {
					got, err := compressed.Run(input)
					if err != nil {
						t.Fatalf("compressed run: %v", err)
					}
					want, err := baseline.Run(input)
					if err != nil {
						t.Fatalf("baseline run: %v", err)
					}
					if !reflect.DeepEqual(got.Matches, want.Matches) {
						t.Fatalf("input %q: compressed matches %v, baseline %v",
							input, got.Matches, want.Matches)
					}
					if !reflect.DeepEqual(got.Counts, want.Counts) {
						t.Fatalf("input %q: compressed counts %v, baseline %v",
							input, got.Counts, want.Counts)
					}
					if !reflect.DeepEqual(got.IndexCounts, want.IndexCounts) {
						t.Fatalf("input %q: compressed index counts %v, baseline %v",
							input, got.IndexCounts, want.IndexCounts)
					}
				}
			})
		}
	}
}

// TestStateCompressionResidency checks the tentpole's size claim on a
// mid-size megaset slice: the compressed engine's measured resident bytes
// must undercut the boxed baseline by at least 2x (the smoke gate's
// floor; the full trajectory is gated by make megaset-smoke).
func TestStateCompressionResidency(t *testing.T) {
	app, err := workload.Megaset(600, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	limits := Limits{MaxPatterns: -1}
	compressed, err := Compile(app.Patterns, &Options{Limits: limits})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := Compile(app.Patterns, &Options{Limits: limits, DisableStateCompression: true})
	if err != nil {
		t.Fatal(err)
	}
	cb, bb := compressed.ResidentBytes(), baseline.ResidentBytes()
	if cb <= 0 || bb <= 0 {
		t.Fatalf("resident bytes must be measured, got compressed=%d baseline=%d", cb, bb)
	}
	if bb < 2*cb {
		t.Fatalf("compression ratio %.2fx below the 2x floor (compressed=%d baseline=%d)",
			float64(bb)/float64(cb), cb, bb)
	}
}

// TestSnapshotByteIdentity: snapshots of shared-state engines are stable
// under a load/save cycle — EncodeEngine(DecodeEngine(data)) reproduces
// data byte for byte, because the packed group blocks are stored verbatim
// and re-emitted verbatim. This is what lets a warm-started server
// content-address snapshot blocks against live engines.
func TestSnapshotByteIdentity(t *testing.T) {
	for name, opts := range map[string]*Options{
		"compressed": nil,
		"baseline":   {DisableStateCompression: true},
	} {
		t.Run(name, func(t *testing.T) {
			e, err := Compile(sharedClassPatterns, opts)
			if err != nil {
				t.Fatal(err)
			}
			data := EncodeEngine(e)
			loaded, err := DecodeEngine(data, opts)
			if err != nil {
				t.Fatal(err)
			}
			again := EncodeEngine(loaded)
			if !bytes.Equal(data, again) {
				t.Fatalf("snapshot not byte-stable: first %d bytes, reencoded %d bytes", len(data), len(again))
			}
		})
	}
}

// TestPatternsAccessorCloned guards against the Groups()-style live-slice
// leak at the public API layer: mutating the slice returned by Patterns()
// must not corrupt the engine's own pattern table.
func TestPatternsAccessorCloned(t *testing.T) {
	e, err := Compile([]string{"abc", "def"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Patterns()
	got[0] = "corrupted"
	if again := e.Patterns(); again[0] != "abc" {
		t.Fatalf("Patterns() leaked a live slice: engine now reports %v", again)
	}
	res, err := e.Run([]byte("abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["abc"] != 1 || res.Counts["def"] != 1 {
		t.Fatalf("engine corrupted after accessor mutation: %v", res.Counts)
	}
}

// TestNullableRefusalDeduped: ScanReader's typed refusal of
// empty-matchable patterns lists each offending pattern once, however
// many duplicate entries the set carries (the per-index fan-out keeps
// duplicates distinguishable elsewhere; the error message should not).
func TestNullableRefusalDeduped(t *testing.T) {
	e, err := Compile([]string{"a?", "abc", "a?", "b?c?", "a?"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = e.ScanReader(strings.NewReader("aaa"), 0, func(Match) {})
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("want ErrUnsupported, got %v", err)
	}
	var ue *UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("want *UnsupportedError, got %T", err)
	}
	want := []string{"a?", "b?c?"}
	if !reflect.DeepEqual(ue.Patterns, want) {
		t.Fatalf("refusal pattern list = %v, want deduplicated %v", ue.Patterns, want)
	}
}
