package bitgen

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"

	"bitgen/internal/bgerr"
	"bitgen/internal/engine"
	"bitgen/internal/rx"
	"bitgen/internal/snapshot"
)

// optionsHash fingerprints every compile-relevant option: a snapshot may
// only be loaded under Options that would have compiled the identical
// engine. Runtime-only options — ScanWorkers, ScanBatch, Resilience,
// Observability — are deliberately excluded: they reconfigure execution,
// not compilation, so a snapshot saved by a plain process warm-starts a
// traced, batched or resilience-laddered one.
func optionsHash(opts *Options) string {
	h := sha256.New()
	field := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	field("bitgen-snapshot-options-v2")
	field(fmt.Sprintf("%t|%s|%d|%d|%t|%t|%d|%d|%t",
		opts.FoldCase, opts.Device, opts.CTAs, opts.Threads,
		opts.DisableShiftRebalancing, opts.DisableZeroBlockSkipping,
		opts.MergeSize, opts.IntervalSize, opts.DisableStateCompression))
	field(fmt.Sprintf("%d|%d|%d|%d|%d",
		opts.Limits.MaxInputBytes, opts.Limits.MaxPatterns,
		opts.Limits.MaxProgramInstructions, opts.Limits.MaxWhileIterations,
		opts.Limits.MaxDeviceMemoryBytes))
	return hex.EncodeToString(h.Sum(nil))
}

// SaveEngine writes a compiled engine's state as a versioned, checksummed
// snapshot: the lowered, optimized bitstream programs plus the
// compile-time metadata (duplicate-index fan-out, nullable set, streaming
// bounds) the public API derives from the pattern list. LoadEngine
// restores it without recompiling.
//
// Runtime-only state — the resilience ladder, observability hooks, scan
// arenas — is not persisted; LoadEngine rebuilds it from its own Options.
// Engines compiled with Resilience save fine: only the bitstream rung's
// compiled form is persisted, and the loader reconstructs the other rungs.
func SaveEngine(w io.Writer, e *Engine) error {
	if e == nil || e.inner == nil {
		return fmt.Errorf("bitgen: SaveEngine: nil engine")
	}
	data := EncodeEngine(e)
	if _, err := w.Write(data); err != nil {
		return &bgerr.SnapshotError{Reason: snapshot.ReasonStoreIO, Detail: err.Error()}
	}
	return nil
}

// EncodeEngine returns the snapshot bytes SaveEngine would write. Serving
// layers use it directly to persist through an atomic store.
func EncodeEngine(e *Engine) []byte {
	return snapshot.Encode(&snapshot.EngineState{
		Patterns:    e.patterns,
		FoldCase:    e.foldCase,
		OptionsHash: e.optsHash,
		MaxLen:      e.maxLen,
		Nullable:    e.nullable,
		Unbounded:   e.unbounded,
		Groups:      e.inner.Groups(),
		Shared:      e.inner.Shared(),
		PassStats:   e.inner.PassStats,
	})
}

// LoadEngine restores an engine from a snapshot written by SaveEngine.
//
// Integrity is verified before anything is served: the format version and
// every section checksum are checked, the decoded programs are re-validated
// against IR invariants, and the snapshot's options fingerprint must equal
// the caller's — a snapshot compiled under different compile-relevant
// Options (syntax flags, device, geometry, optimization toggles, Limits)
// is refused with a *SnapshotError (reason "options-mismatch") rather than
// silently served with drifted semantics. Every failure satisfies
// errors.Is(err, ErrSnapshot); callers fall back to Compile.
//
// Runtime-only options (ScanWorkers, Resilience, Observability) need not
// match the saving process: they take effect on the loaded engine exactly
// as they would on a fresh compile.
func LoadEngine(r io.Reader, opts *Options) (*Engine, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, &bgerr.SnapshotError{Reason: snapshot.ReasonStoreIO, Detail: err.Error()}
	}
	return DecodeEngine(data, opts)
}

// DecodeEngine is LoadEngine over bytes already in memory.
func DecodeEngine(data []byte, opts *Options) (*Engine, error) {
	if opts == nil {
		opts = &Options{}
	}
	st, err := snapshot.Decode(data)
	if err != nil {
		return nil, err
	}
	if want := optionsHash(opts); st.OptionsHash != want {
		return nil, &bgerr.SnapshotError{
			Reason: snapshot.ReasonOptions,
			Detail: fmt.Sprintf("snapshot compiled under options %.12s…, loader has %.12s…", st.OptionsHash, want),
		}
	}
	return restoreEngine(st, opts)
}

// restoreEngine rebuilds a public Engine around decoded snapshot state.
func restoreEngine(st *snapshot.EngineState, opts *Options) (*Engine, error) {
	dev, err := resolveDevice(opts)
	if err != nil {
		return nil, err
	}
	limits := opts.Limits.withDefaults(dev)
	observer := opts.Observability.observer()
	cfg := buildEngineConfig(opts, dev, limits, observer)
	inner, err := engine.Restore(cfg, st.Groups, st.Shared, st.PassStats)
	if err != nil {
		return nil, &bgerr.SnapshotError{Reason: snapshot.ReasonCorrupt, Detail: err.Error()}
	}
	// The duplicate-index fan-out is derived from the persisted pattern
	// list, not re-parsed: identical inputs produce identical indexes.
	var unique []string
	indexesOf := make(map[string][]int, len(st.Patterns))
	for i, p := range st.Patterns {
		if _, seen := indexesOf[p]; !seen {
			unique = append(unique, p)
		}
		indexesOf[p] = append(indexesOf[p], i)
	}
	e := &Engine{
		inner:    inner,
		patterns: st.Patterns,
		unique:   unique, indexesOf: indexesOf, nullable: st.Nullable,
		limits: limits,
		maxLen: st.MaxLen, unbounded: st.Unbounded,
		obs:         observer,
		scanWorkers: opts.ScanWorkers,
		scanBatch:   opts.ScanBatch,
		foldCase:    st.FoldCase,
		optsHash:    st.OptionsHash,
	}
	e.initRankIndexes()
	if opts.Resilience != nil {
		// The fallback rungs (hybrid, NFA) are runtime constructions over
		// the pattern ASTs; snapshots persist only the bitstream programs,
		// so rebuild the ladder by re-parsing — cheap next to lowering.
		asts := make([]rx.Node, len(unique))
		for i, p := range unique {
			ast, err := rx.ParseWith(p, rx.Options{FoldCase: st.FoldCase})
			if err != nil {
				return nil, &bgerr.SnapshotError{
					Reason: snapshot.ReasonCorrupt,
					Detail: fmt.Sprintf("persisted pattern %q no longer parses: %v", p, err),
				}
			}
			asts[i] = ast
		}
		if err := buildLadder(e, asts, opts.Resilience); err != nil {
			return nil, err
		}
	}
	return e, nil
}
