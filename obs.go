package bitgen

import (
	"io"
	"time"

	"bitgen/internal/gpusim"
	"bitgen/internal/obs"
)

// ObservabilityOptions enable the engine's observability layer: a span
// tracer over the full pipeline (compile phases, per-kernel launches,
// ladder rung transitions, cross-checks) exportable as Chrome trace_event
// JSON (chrome://tracing, Perfetto), and a metrics registry (counters,
// gauges, histograms) with a Prometheus text-exposition writer and an
// expvar bridge. With Options.Observability nil (the default) every
// instrumentation hook reduces to a nil pointer check: no allocation, no
// lock, no measurable overhead.
type ObservabilityOptions struct {
	// Metrics enables the metrics registry (Engine.MetricsSnapshot,
	// Engine.WritePrometheus, Engine.PublishExpvar) and the per-scan
	// Profile artifact on Result.
	Metrics bool
	// Trace enables the span tracer (Engine.WriteTrace).
	Trace bool
	// TraceEventCapacity bounds the trace ring buffer; when full, the
	// oldest events are overwritten and counted as dropped. Zero means
	// obs.DefaultTraceCapacity (65536 events).
	TraceEventCapacity int
}

// observer builds the internal Observer, or nil when nothing is enabled.
func (o *ObservabilityOptions) observer() *obs.Observer {
	if o == nil || (!o.Metrics && !o.Trace) {
		return nil
	}
	ob := &obs.Observer{}
	if o.Trace {
		ob.Tracer = obs.NewTracer(obs.TracerConfig{Capacity: o.TraceEventCapacity})
	}
	if o.Metrics {
		ob.Metrics = obs.NewRegistry()
		obs.RegisterBase(ob.Metrics)
	}
	return ob
}

// MetricsSnapshot is a point-in-time copy of every registered metric,
// keyed "name" or "name{label=\"value\",...}".
type MetricsSnapshot = obs.Snapshot

// Profile is the per-scan profile artifact: the analytic cost-model
// breakdown joined with the observed per-kernel counters — the repo's
// Nsight-Compute-equivalent report (see DESIGN.md §9).
type Profile = gpusim.Profile

// MetricsSnapshot returns a copy of the engine's metrics registry. With
// metrics disabled it returns the zero Snapshot.
func (e *Engine) MetricsSnapshot() MetricsSnapshot {
	if e.obs.Reg() == nil {
		return MetricsSnapshot{}
	}
	return e.obs.Reg().Snapshot()
}

// WritePrometheus renders the engine's metrics in Prometheus text
// exposition format 0.0.4. With metrics disabled it writes nothing.
func (e *Engine) WritePrometheus(w io.Writer) error {
	if e.obs.Reg() == nil {
		return nil
	}
	return e.obs.Reg().WritePrometheus(w)
}

// WriteTrace exports the recorded spans as Chrome trace_event JSON,
// loadable in chrome://tracing or https://ui.perfetto.dev. With tracing
// disabled it writes an empty trace document.
func (e *Engine) WriteTrace(w io.Writer) error {
	if e.obs == nil || e.obs.Tracer == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	return e.obs.Tracer.WriteChromeTrace(w)
}

// PublishExpvar exposes the metrics registry as one expvar variable
// (visible on /debug/vars when net/http/pprof or expvar handlers are
// mounted). It reports false when metrics are disabled or the name is
// already published.
func (e *Engine) PublishExpvar(name string) bool {
	if e.obs.Reg() == nil {
		return false
	}
	return e.obs.Reg().PublishExpvar(name)
}

// observeScan records the scan-level metrics for one public entry-point
// call. matches is the number of reported match end positions (counted
// once per scan, whichever rung served it).
func (e *Engine) observeScan(start time.Time, inputBytes int, matches int, err error) {
	reg := e.obs.Reg()
	if reg == nil {
		return
	}
	reg.Counter(obs.MScans, obs.HScans).Inc()
	reg.Counter(obs.MScanInputBytes, obs.HScanInputBytes).AddInt(int64(inputBytes))
	if err != nil {
		reg.Counter(obs.MScanErrors, obs.HScanErrors).Inc()
		return
	}
	reg.Counter(obs.MMatches, obs.HMatches).AddInt(int64(matches))
	reg.Histogram(obs.MScanHostSecs, obs.HScanHostSecs, obs.ScanSecondsBuckets).
		Observe(time.Since(start).Seconds())
}
