GO ?= go

.PHONY: build test race vet fault ci bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The fault-injection and hardening suites, race-exercised: typed error
# paths, panic containment, cancellation, chunk-boundary streaming.
fault:
	$(GO) test -race -run 'Injected|Hardened|WhileCap|Cancel|Limit|Concurrent' ./internal/faultinject/ ./internal/kernel/ ./internal/engine/ .
	$(GO) test -race -run FuzzScanReaderChunkBoundaries .

# ci is the tier-1 verification gate: vet, build, the full suite under the
# race detector, and the fault-injection suite.
ci: vet build race fault

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
