GO ?= go

.PHONY: build test race vet lint vuln fault fuzz ci bench bench-smoke obs-smoke serve-smoke cluster-smoke snapshot-smoke obs-cluster-smoke megaset-smoke bench-serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# lint and vuln gate on tool presence: CI installs staticcheck and
# govulncheck, local runs without them skip with a notice instead of
# failing (no network installs from the Makefile).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# The fault-injection, hardening and resilience suites, race-exercised:
# typed error paths, panic containment, cancellation, chunk-boundary
# streaming, and the backend ladder (retry, breaker, cross-checking).
fault:
	$(GO) test -race -run 'Injected|Hardened|WhileCap|Cancel|Limit|Concurrent' ./internal/faultinject/ ./internal/kernel/ ./internal/engine/ .
	$(GO) test -race ./internal/resilience/
	$(GO) test -race -run 'Resilient|Persistent|Transient|Breaker|ForceBackend|CrossCheck|TileCorruption|Quarantine|Ladder|Classify' ./internal/kernel/ .
	$(GO) test -race -run 'FuzzScanReaderChunkBoundaries|FuzzBackendsAgree' .

# Short smoke runs of the fuzz targets: the streaming chunk-boundary
# oracle and the three-backend differential oracle. FUZZTIME=2m for a
# longer local soak.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz '^FuzzBackendsAgree$$' -fuzztime $(FUZZTIME) -run '^FuzzBackendsAgree$$' .
	$(GO) test -fuzz '^FuzzScanReaderChunkBoundaries$$' -fuzztime $(FUZZTIME) -run '^FuzzScanReaderChunkBoundaries$$' .
	$(GO) test -fuzz '^FuzzSnapshotRoundTrip$$' -fuzztime $(FUZZTIME) -run '^FuzzSnapshotRoundTrip$$' .

# obs-smoke runs a real scan with tracing and metrics on and validates
# the exported artifacts: the Chrome trace_event JSON schema (loadable in
# chrome://tracing / Perfetto) and the Prometheus text-exposition grammar
# (HELP/TYPE comments, label syntax, cumulative histogram buckets).
obs-smoke:
	@tmp=$$(mktemp -d) && \
	printf 'error: timeout after 30ms\nok line\nfatal: disk full\n' > $$tmp/input.txt && \
	$(GO) run ./cmd/rxgrep -q -metrics -trace $$tmp/trace.json -profile $$tmp/profile.json \
		'error|fatal' $$tmp/input.txt > $$tmp/metrics.txt && \
	$(GO) run ./cmd/obscheck -trace $$tmp/trace.json -metrics $$tmp/metrics.txt && \
	rm -rf $$tmp

# serve-smoke boots the bitgend matching service in-process and exercises
# the full request surface: cold compile + warm cache hit (no recompile),
# duplicate and nullable patterns through the wire format, streaming NDJSON
# scan across chunk boundaries, serve + per-set metrics, graceful drain.
serve-smoke:
	$(GO) run ./cmd/bitgend -selftest

# cluster-smoke boots a 3-replica loopback cluster and runs the full
# fault-injection acceptance: consistent-hash routing (every replica
# answers every key identically to a single-node server), an abrupt
# replica kill with ZERO failed requests once the victim's breakers
# settle, a network partition that forces degraded local serves
# (cluster.degraded_serves > 0) with differentially-correct answers, and
# breaker recovery within one cooldown window after the partition heals.
cluster-smoke:
	$(GO) run ./cmd/bitgend -cluster-selftest

# snapshot-smoke runs the persistence acceptance: save a compiled engine,
# flip a byte, and require the restarted server to detect the corruption,
# quarantine the file to a .bad sidecar, and serve the request by
# recompiling; then warm start (zero compiles), torn write (crash before
# rename leaves no file), stale format version refused as version-mismatch,
# short read refused as truncated, and the background scrubber catching
# resting corruption.
snapshot-smoke:
	$(GO) run ./cmd/bitgend -snapshot-selftest

# obs-cluster-smoke is the distributed-observability acceptance: boot a
# 3-replica loopback cluster, cut one peer path mid-response, and require
# (1) a client-supplied trace ID to appear in spans on all three nodes of
# the stitched /v1/trace view, with the entry node's forward span naming
# the successor that served the failover; (2) the ensuing breaker-open
# Warn event to trip the anomaly flight recorder into a sha256-sealed
# bundle containing that event; (3) /v1/slo to report the served traffic.
# obscheck then structurally validates both artifacts.
obs-cluster-smoke:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/bitgend -obs-cluster-selftest -obs-out $$tmp && \
	$(GO) run ./cmd/obscheck -stitched $$tmp/stitched.json -stitch-nodes 3 -bundle $$tmp/bundle.json && \
	rm -rf $$tmp

# megaset-smoke is the compiled-state residency gate: compile the
# deterministic ClamAV-style signature megaset at 1k/10k/100k patterns,
# both uncompressed (boxed IR) and compressed (packed + shared basis),
# and require the 100k compressed engine to (1) undercut the baseline by
# at least 2x, (2) stay under a 160 MiB resident ceiling, and (3) compile
# within a 180s budget (measured 71.2 MiB / 42s; the headroom absorbs
# slower CI hosts). Writes results/BENCH_mem.json.
megaset-smoke:
	$(GO) run ./cmd/bitbench -exp mem -mem-min-ratio 2 -mem-ceiling-mb 160 -mem-budget 180s -json results

# bench-serve regenerates results/BENCH_serve.json: a 1-node baseline vs
# a 3-node cluster with a mid-run replica kill, reporting p50/p99
# latency, saturation throughput, and post-kill recovery time.
bench-serve:
	$(GO) run ./cmd/bitload -selfcluster -clients 1024 -duration 3s -sets 24 -out results/BENCH_serve.json

# ci is the tier-1 verification gate: vet, lint/vuln (when the tools are
# installed), build, the full suite under the race detector, the
# fault-injection suite, and the observability, bench, service and
# cluster smokes.
ci: vet lint vuln build race fault obs-smoke bench-smoke serve-smoke cluster-smoke snapshot-smoke obs-cluster-smoke megaset-smoke

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-smoke is the fast perf gate: short runs of the streaming-scan and
# bitstream hot-path benchmarks (catching gross regressions and alloc
# creep in the pipelined scanner), a short-mode run of the bitbench
# matrix (single-core, batched, and GOMAXPROCS x workers multicore rows)
# with a hard throughput floor — 54.1 MB/s is the pipelined scanner's
# pre-superblock seed baseline, so any regression back to it fails the
# build — then a real pipelined streaming scan with tracing on, its
# trace validated by obscheck (the pipeline stage lanes ride the same
# schema the whole-input scan does).
bench-smoke:
	$(GO) test -run '^$$' -bench 'ScanReader|TransposeInto|IntoOps|NextSetBitSweep|Positions' \
		-benchtime 100ms . ./internal/bitstream ./internal/transpose
	$(GO) run ./cmd/bitbench -exp bench -bench-time 200ms -min-scan-mbs 54.1
	@tmp=$$(mktemp -d) && \
	i=0; while [ $$i -lt 2000 ]; do echo "error: timeout after 30ms on line $$i; retry ok"; i=$$((i+1)); done > $$tmp/input.txt && \
	$(GO) run ./cmd/rxgrep -q -stream 4096 -trace $$tmp/trace.json 'error|fatal' $$tmp/input.txt && \
	$(GO) run ./cmd/obscheck -trace $$tmp/trace.json && \
	rm -rf $$tmp
