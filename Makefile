GO ?= go

.PHONY: build test race vet fault fuzz ci bench bench-smoke obs-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The fault-injection, hardening and resilience suites, race-exercised:
# typed error paths, panic containment, cancellation, chunk-boundary
# streaming, and the backend ladder (retry, breaker, cross-checking).
fault:
	$(GO) test -race -run 'Injected|Hardened|WhileCap|Cancel|Limit|Concurrent' ./internal/faultinject/ ./internal/kernel/ ./internal/engine/ .
	$(GO) test -race ./internal/resilience/
	$(GO) test -race -run 'Resilient|Persistent|Transient|Breaker|ForceBackend|CrossCheck|TileCorruption|Quarantine|Ladder|Classify' ./internal/kernel/ .
	$(GO) test -race -run 'FuzzScanReaderChunkBoundaries|FuzzBackendsAgree' .

# Short smoke runs of the fuzz targets: the streaming chunk-boundary
# oracle and the three-backend differential oracle. FUZZTIME=2m for a
# longer local soak.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz '^FuzzBackendsAgree$$' -fuzztime $(FUZZTIME) -run '^FuzzBackendsAgree$$' .
	$(GO) test -fuzz '^FuzzScanReaderChunkBoundaries$$' -fuzztime $(FUZZTIME) -run '^FuzzScanReaderChunkBoundaries$$' .

# obs-smoke runs a real scan with tracing and metrics on and validates
# the exported artifacts: the Chrome trace_event JSON schema (loadable in
# chrome://tracing / Perfetto) and the Prometheus text-exposition grammar
# (HELP/TYPE comments, label syntax, cumulative histogram buckets).
obs-smoke:
	@tmp=$$(mktemp -d) && \
	printf 'error: timeout after 30ms\nok line\nfatal: disk full\n' > $$tmp/input.txt && \
	$(GO) run ./cmd/rxgrep -q -metrics -trace $$tmp/trace.json -profile $$tmp/profile.json \
		'error|fatal' $$tmp/input.txt > $$tmp/metrics.txt && \
	$(GO) run ./cmd/obscheck -trace $$tmp/trace.json -metrics $$tmp/metrics.txt && \
	rm -rf $$tmp

# ci is the tier-1 verification gate: vet, build, the full suite under the
# race detector, the fault-injection suite, and the observability and
# bench smokes.
ci: vet build race fault obs-smoke bench-smoke

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-smoke is the fast perf gate: short runs of the streaming-scan and
# bitstream hot-path benchmarks (catching gross regressions and alloc
# creep in the pipelined scanner), then a real pipelined streaming scan
# with tracing on, its trace validated by obscheck (the pipeline stage
# lanes ride the same schema the whole-input scan does).
bench-smoke:
	$(GO) test -run '^$$' -bench 'ScanReader|TransposeInto|IntoOps|NextSetBitSweep|Positions' \
		-benchtime 100ms . ./internal/bitstream ./internal/transpose
	@tmp=$$(mktemp -d) && \
	i=0; while [ $$i -lt 2000 ]; do echo "error: timeout after 30ms on line $$i; retry ok"; i=$$((i+1)); done > $$tmp/input.txt && \
	$(GO) run ./cmd/rxgrep -q -stream 4096 -trace $$tmp/trace.json 'error|fatal' $$tmp/input.txt && \
	$(GO) run ./cmd/obscheck -trace $$tmp/trace.json && \
	rm -rf $$tmp
