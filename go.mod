module bitgen

go 1.22
