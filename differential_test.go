package bitgen

import (
	"errors"
	"math/rand"
	"testing"

	"bitgen/internal/rx"
)

// fuzzPatterns derives a small deduplicated pattern set from a seed using
// the shared generator, rendered back to source syntax.
func fuzzPatterns(seed uint64, count int) []string {
	rng := rand.New(rand.NewSource(int64(seed)))
	opts := rx.GenOptions{MaxDepth: 3, MaxRepeat: 3}
	seen := make(map[string]bool)
	var out []string
	for tries := 0; len(out) < count && tries < 4*count; tries++ {
		p := rx.Generate(rng, opts).String()
		if len(p) == 0 || len(p) > 40 || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// fuzzInput maps raw fuzz bytes into the generator's alphabet (with some
// untouched noise bytes) so generated patterns actually match.
func fuzzInput(data []byte) []byte {
	if len(data) > 4<<10 {
		data = data[:4<<10]
	}
	in := make([]byte, len(data))
	for i, b := range data {
		if b%5 == 0 {
			in[i] = b // raw noise
		} else {
			in[i] = 'a' + b%10
		}
	}
	return in
}

// FuzzBackendsAgree is the differential oracle behind the resilience
// ladder: for random bounded patterns and random inputs, the bitstream
// kernel, the hybrid AC engine, and the NFA reference must produce
// identical match sets — otherwise falling over silently changes results.
func FuzzBackendsAgree(f *testing.F) {
	f.Add(uint64(1), []byte("abcabcddef aabbcc"))
	f.Add(uint64(7), []byte("jjjjiihhaa gggff"))
	f.Add(uint64(42), []byte{})
	f.Add(uint64(1234), []byte("the quick brown fox abca"))
	f.Fuzz(func(t *testing.T, seed uint64, data []byte) {
		patterns := fuzzPatterns(seed, 4)
		if len(patterns) == 0 {
			t.Skip("generator produced no usable patterns")
		}
		input := fuzzInput(data)

		results := make(map[string][]Match, 3)
		for _, backend := range []string{BackendBitstream, BackendHybrid, BackendNFA} {
			e, err := Compile(patterns, &Options{
				Resilience: &ResilienceOptions{ForceBackend: backend},
			})
			if errors.Is(err, ErrLimit) || errors.Is(err, ErrUnsupported) {
				t.Skip(err)
			}
			if err != nil {
				t.Fatalf("compile %v for %s: %v", patterns, backend, err)
			}
			res, err := e.Run(input)
			if errors.Is(err, ErrLimit) {
				t.Skip(err)
			}
			if err != nil {
				t.Fatalf("%s run: %v", backend, err)
			}
			results[backend] = res.Matches
		}

		ref := results[BackendNFA]
		for _, backend := range []string{BackendBitstream, BackendHybrid} {
			got := results[backend]
			if len(got) != len(ref) {
				t.Fatalf("patterns %v: %s found %d matches, nfa reference %d\n%s: %v\nnfa: %v",
					patterns, backend, len(got), len(ref), backend, got, ref)
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("patterns %v: %s match %d = %+v, nfa reference %+v",
						patterns, backend, i, got[i], ref[i])
				}
			}
		}
	})
}
