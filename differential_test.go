package bitgen

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"bitgen/internal/rx"
)

// fuzzPatterns derives a small deduplicated pattern set from a seed using
// the shared generator, rendered back to source syntax.
func fuzzPatterns(seed uint64, count int) []string {
	rng := rand.New(rand.NewSource(int64(seed)))
	opts := rx.GenOptions{MaxDepth: 3, MaxRepeat: 3}
	seen := make(map[string]bool)
	var out []string
	for tries := 0; len(out) < count && tries < 4*count; tries++ {
		p := rx.Generate(rng, opts).String()
		if len(p) == 0 || len(p) > 40 || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// fuzzInput maps raw fuzz bytes into the generator's alphabet (with some
// untouched noise bytes) so generated patterns actually match.
func fuzzInput(data []byte) []byte {
	if len(data) > 4<<10 {
		data = data[:4<<10]
	}
	in := make([]byte, len(data))
	for i, b := range data {
		if b%5 == 0 {
			in[i] = b // raw noise
		} else {
			in[i] = 'a' + b%10
		}
	}
	return in
}

// FuzzBackendsAgree is the differential oracle behind the resilience
// ladder: for random bounded patterns and random inputs, the bitstream
// kernel, the hybrid AC engine, and the NFA reference must produce
// identical match sets — otherwise falling over silently changes results.
func FuzzBackendsAgree(f *testing.F) {
	f.Add(uint64(1), []byte("abcabcddef aabbcc"))
	f.Add(uint64(7), []byte("jjjjiihhaa gggff"))
	f.Add(uint64(42), []byte{})
	f.Add(uint64(1234), []byte("the quick brown fox abca"))
	// Seeds chosen to exercise the match-semantics edge cases: nullable
	// patterns (the generator emits Star/Opt freely), end-of-input
	// positions, empty inputs, and — via the appended duplicate below —
	// duplicate-pattern index fan-out.
	f.Add(uint64(99), []byte("a"))
	// Duplicate-heavy and shared-charclass seeds: odd seeds amplify the
	// set below, so these drive the compressed compile's interning and
	// shared extended basis through the same oracle.
	f.Add(uint64(101), []byte("abcfgj afgj aafjgg"))
	f.Add(uint64(203), []byte("ffgjffgj aaa jgfa"))
	f.Fuzz(func(t *testing.T, seed uint64, data []byte) {
		patterns := fuzzPatterns(seed, 4)
		if len(patterns) == 0 {
			t.Skip("generator produced no usable patterns")
		}
		// Every fuzz set carries a duplicate entry so index fan-out is
		// differentially checked on all backends.
		patterns = append(patterns, patterns[0])
		// Odd seeds additionally stress the compressed compile: two
		// class-heavy entries shared verbatim across the set (promoted to
		// the shared extended basis) plus a second duplicate round.
		if seed%2 == 1 {
			patterns = append(patterns, "[a-f][g-j]", "[a-f][g-j]", patterns[len(patterns)/2])
		}
		input := fuzzInput(data)

		type outcome struct {
			matches     []Match
			indexCounts []int
		}
		results := make(map[string]outcome, 3)
		for _, backend := range []string{BackendBitstream, BackendHybrid, BackendNFA} {
			e, err := Compile(patterns, &Options{
				Resilience: &ResilienceOptions{ForceBackend: backend},
			})
			if errors.Is(err, ErrLimit) || errors.Is(err, ErrUnsupported) {
				t.Skip(err)
			}
			if err != nil {
				t.Fatalf("compile %v for %s: %v", patterns, backend, err)
			}
			res, err := e.Run(input)
			if errors.Is(err, ErrLimit) {
				t.Skip(err)
			}
			if err != nil {
				t.Fatalf("%s run: %v", backend, err)
			}
			results[backend] = outcome{res.Matches, res.IndexCounts}
		}

		ref := results[BackendNFA]
		for _, backend := range []string{BackendBitstream, BackendHybrid} {
			got := results[backend]
			if len(got.matches) != len(ref.matches) {
				t.Fatalf("patterns %v: %s found %d matches, nfa reference %d\n%s: %v\nnfa: %v",
					patterns, backend, len(got.matches), len(ref.matches), backend, got.matches, ref.matches)
			}
			for i := range got.matches {
				if got.matches[i] != ref.matches[i] {
					t.Fatalf("patterns %v: %s match %d = %+v, nfa reference %+v",
						patterns, backend, i, got.matches[i], ref.matches[i])
				}
			}
			if !reflect.DeepEqual(got.indexCounts, ref.indexCounts) {
				t.Fatalf("patterns %v: %s IndexCounts %v, nfa reference %v",
					patterns, backend, got.indexCounts, ref.indexCounts)
			}
		}

		// Streaming leg: when the pattern set is streamable, the batched
		// pipelined scanner — over chunk sizes hugging the overlap boundary,
		// where carried prefixes are nearly whole chunks — must emit exactly
		// the NFA-verified whole-input match sequence, order included.
		se, err := Compile(patterns, &Options{ScanWorkers: 2, ScanBatch: 3})
		if err != nil || len(se.unbounded) > 0 || len(se.nullable) > 0 || se.maxLen == 0 || len(input) == 0 {
			return
		}
		for _, cs := range []int{se.maxLen + 1, 2 * se.maxLen} {
			var got []Match
			if err := se.ScanReader(bytes.NewReader(input), cs, func(m Match) { got = append(got, m) }); err != nil {
				t.Fatalf("patterns %v chunk %d: batched ScanReader: %v", patterns, cs, err)
			}
			if len(got) != len(ref.matches) {
				t.Fatalf("patterns %v chunk %d: batched stream emitted %d matches, nfa reference %d\nstream: %v\nnfa: %v",
					patterns, cs, len(got), len(ref.matches), got, ref.matches)
			}
			for i := range got {
				if got[i] != ref.matches[i] {
					t.Fatalf("patterns %v chunk %d: stream match %d = %+v, nfa reference %+v",
						patterns, cs, i, got[i], ref.matches[i])
				}
			}
		}
	})
}
