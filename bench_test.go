package bitgen

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, each driving the same code path `bitbench` uses at a
// reduced scale (so `go test -bench=.` completes in minutes). Full-scale
// regeneration: `go run ./cmd/bitbench -exp all`.
//
// The reported metric of interest for the experiment benchmarks is the
// artifact itself (printed once with -v via b.Log); wall-clock ns/op here
// measures the simulator, not the modeled GPU.

import (
	"strings"
	"testing"

	"bitgen/internal/bitstream"
	"bitgen/internal/experiments"
	"bitgen/internal/hybrid"
	"bitgen/internal/ir"
	"bitgen/internal/lower"
	"bitgen/internal/nfa"
	"bitgen/internal/rx"
	"bitgen/internal/transpose"
)

// benchSuite returns a reduced-scale experiment suite.
func benchSuite(apps ...string) *experiments.Suite {
	return experiments.NewSuite(experiments.Options{
		RegexScale: 0.01,
		InputBytes: 50_000,
		HSThreads:  2,
		Apps:       apps,
	})
}

// BenchmarkTable1Stats regenerates Table 1 (workload statistics).
func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkOverallThroughput regenerates Table 2 / Figure 11 on a subset.
func BenchmarkOverallThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("ExactMatch", "Dotstar", "Snort")
		res, err := s.Table2Figure11()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkAblation regenerates Table 3 / Figure 12 on a subset.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("Yara", "Snort")
		res, err := s.Figure12Breakdown()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkMemoryTraffic regenerates Table 4 on a subset.
func BenchmarkMemoryTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("Snort")
		res, err := s.Table4Memory()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkRecomputeOverhead regenerates Table 5 on a subset.
func BenchmarkRecomputeOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("Dotstar", "Brill")
		res, err := s.Table5Recompute()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkMergeSizeSweep regenerates Table 6 / Figure 13 on a subset.
func BenchmarkMergeSizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("ExactMatch")
		res, err := s.Figure13MergeSize()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkIntervalSweep regenerates Figure 14 on a subset.
func BenchmarkIntervalSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("Dotstar")
		res, err := s.Figure14Interval()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkPortability regenerates Figure 15 on a subset.
func BenchmarkPortability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("ExactMatch", "Snort")
		res, err := s.Figure15Portability()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkAblationExtras runs the design-choice decomposition of Shift
// Rebalancing (rewriting vs merging) on a subset.
func BenchmarkAblationExtras(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("ExactMatch")
		res, err := s.AblationExtras()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// ---- micro-benchmarks of the substrates ----

var benchInput = func() []byte {
	return []byte(strings.Repeat("the quick brown fox jumps over the lazy dog 0123456789 ", 2000))
}()

// BenchmarkCompile measures end-to-end pattern compilation.
func BenchmarkCompile(b *testing.B) {
	patterns := []string{"fox|dog", "qu[a-z]+k", "(the ){2,4}", "l.zy", "d[aeiou]g 0\\d+"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(patterns, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineScan measures the simulator's real (host) scanning rate.
func BenchmarkEngineScan(b *testing.B) {
	eng := MustCompile([]string{"fox|dog", "qu[a-z]+k", "l.zy"}, &Options{CTAs: 3})
	b.SetBytes(int64(len(benchInput)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.CountOnly(benchInput); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanObservability pits the default nil-hook path against an
// engine with tracing and metrics on — the "off" variant must match
// BenchmarkEngineScan within noise (±2%), since disabled hooks are
// nil-receiver no-ops.
func BenchmarkScanObservability(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opts *ObservabilityOptions
	}{
		{"off", nil},
		{"on", &ObservabilityOptions{Trace: true, Metrics: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			eng := MustCompile([]string{"fox|dog", "qu[a-z]+k", "l.zy"},
				&Options{CTAs: 3, Observability: cfg.opts})
			b.SetBytes(int64(len(benchInput)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.CountOnly(benchInput); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTranspose measures the S2P transform.
func BenchmarkTranspose(b *testing.B) {
	b.SetBytes(int64(len(benchInput)))
	for i := 0; i < b.N; i++ {
		transpose.Transpose(benchInput)
	}
}

// BenchmarkMatchStar measures the carry-smear closure primitive.
func BenchmarkMatchStar(b *testing.B) {
	basis := transpose.Transpose(benchInput)
	m := basis.Bit(2)
	c := basis.Bit(3)
	b.SetBytes(int64(len(benchInput) / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bitstream.MatchStar(m, c)
	}
}

// BenchmarkInterpreter measures the icgrep-analog whole-stream engine.
func BenchmarkInterpreter(b *testing.B) {
	prog := lower.MustSingle("re", "q[a-z]*k|fox")
	basis := transpose.Transpose(benchInput)
	b.SetBytes(int64(len(benchInput)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ir.Interpret(prog, basis, ir.InterpOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNFASimulate measures the Glushkov-NFA oracle (the ngAP
// functional substrate).
func BenchmarkNFASimulate(b *testing.B) {
	n, err := nfa.Build([]string{"a", "b"}, []rx.Node{
		rx.MustParse("q[a-z]*k"), rx.MustParse("fox|dog"),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(benchInput)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nfa.Simulate(n, benchInput)
	}
}

// BenchmarkAhoCorasick measures the Hyperscan-analog literal prefilter.
func BenchmarkAhoCorasick(b *testing.B) {
	ac := hybrid.NewAhoCorasick([][]byte{
		[]byte("fox"), []byte("dog"), []byte("lazy"), []byte("0123"),
	})
	b.SetBytes(int64(len(benchInput)))
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		ac.Scan(benchInput, func(hybrid.Hit) { count++ })
	}
	_ = count
}

// BenchmarkHybridEngine measures the full HS-analog scan.
func BenchmarkHybridEngine(b *testing.B) {
	patterns := []string{"fox|dog", "qu[a-z]{2,6}k", "lazy", "0\\d{3}"}
	asts := make([]rx.Node, len(patterns))
	for i, p := range patterns {
		asts[i] = rx.MustParse(p)
	}
	eng, err := hybrid.Compile(patterns, asts, hybrid.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(benchInput)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Scan(benchInput)
	}
}
