package bitgen

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"bitgen/internal/faultinject"
	"bitgen/internal/resilience"
)

var ladderPatterns = []string{"cat", "d.g", "\\d{2}"}

const ladderInput = "cat 42 dog dig 7 catalog dug 19 cat"

// compileResilient compiles with the ladder enabled and returns the
// engine plus the expected (fault-free) match set.
func compileResilient(t *testing.T, ropts *ResilienceOptions) (*Engine, []Match) {
	t.Helper()
	baseline, err := Compile(ladderPatterns, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.Run([]byte(ladderInput))
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Matches) == 0 {
		t.Fatal("baseline found no matches; test input is broken")
	}
	e, err := Compile(ladderPatterns, &Options{Resilience: ropts})
	if err != nil {
		t.Fatal(err)
	}
	return e, want.Matches
}

func sameMatches(t *testing.T, got []Match, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d matches, want %d:\n got %v\nwant %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestResilientRunHappyPathServesBitstream(t *testing.T) {
	e, want := compileResilient(t, &ResilienceOptions{})
	res, err := e.Run([]byte(ladderInput))
	if err != nil {
		t.Fatal(err)
	}
	sameMatches(t, res.Matches, want)
	if res.Backend != BackendBitstream {
		t.Fatalf("served by %q, want %q", res.Backend, BackendBitstream)
	}
	if res.Stats.ModeledTime <= 0 {
		t.Fatal("bitstream-served result lost its modeled stats")
	}
	h := e.Health()
	if len(h.Backends) != 3 || h.Backends[0].Name != BackendBitstream ||
		h.Backends[1].Name != BackendHybrid || h.Backends[2].Name != BackendNFA {
		t.Fatalf("ladder rungs = %+v", h.Backends)
	}
	if h.Calls != 1 || h.Fallbacks != 0 {
		t.Fatalf("health = %+v", h)
	}
}

// TestPersistentKernelFailureFallsOverAndOpensBreaker is the acceptance
// test for the ISSUE: with faultinject forcing persistent kernel failure,
// Run still returns the correct match set via fallback and Health reports
// the GPU backend open.
func TestPersistentKernelFailureFallsOverAndOpensBreaker(t *testing.T) {
	e, want := compileResilient(t, &ResilienceOptions{BreakerThreshold: 3})
	inj := faultinject.New(1).Arm(faultinject.KernelPanic, faultinject.Spec{Nth: 1, Repeat: true})
	e.inner = e.inner.WithInjector(inj)

	for i := 0; i < 5; i++ {
		res, err := e.Run([]byte(ladderInput))
		if err != nil {
			t.Fatalf("run %d under persistent kernel panic: %v", i, err)
		}
		sameMatches(t, res.Matches, want)
		if res.Backend != BackendHybrid {
			t.Fatalf("run %d served by %q, want %q", i, res.Backend, BackendHybrid)
		}
	}
	h := e.Health()
	gpu := h.Backends[0]
	if gpu.State != resilience.Open {
		t.Fatalf("GPU backend state = %v, want open", gpu.State)
	}
	if gpu.ConsecutiveFailures < 3 || gpu.Failures < 3 {
		t.Fatalf("GPU failure accounting = %+v", gpu)
	}
	if gpu.Skips == 0 {
		t.Fatal("open breaker never skipped the GPU backend")
	}
	if h.Fallbacks != 5 {
		t.Fatalf("fallbacks = %d, want 5", h.Fallbacks)
	}
	// CountOnly rides the same ladder.
	counts, err := e.CountOnly([]byte(ladderInput))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ladderPatterns {
		n := 0
		for _, m := range want {
			if m.Pattern == p {
				n++
			}
		}
		if counts[p] != n {
			t.Fatalf("CountOnly[%s] = %d, want %d", p, counts[p], n)
		}
	}
}

func TestTransientLaunchFailureIsRetriedOnPrimary(t *testing.T) {
	e, want := compileResilient(t, &ResilienceOptions{RetryBaseDelay: time.Microsecond})
	inj := faultinject.New(1).ArmNth(faultinject.LaunchFail, 1)
	e.inner = e.inner.WithInjector(inj)

	res, err := e.Run([]byte(ladderInput))
	if err != nil {
		t.Fatal(err)
	}
	sameMatches(t, res.Matches, want)
	if res.Backend != BackendBitstream {
		t.Fatalf("transient fault fell over to %q instead of retrying the primary", res.Backend)
	}
	h := e.Health()
	if h.Backends[0].Retries == 0 {
		t.Fatal("no retry recorded for the transient launch failure")
	}
	if h.Fallbacks != 0 {
		t.Fatalf("fallbacks = %d, want 0", h.Fallbacks)
	}
}

func TestScanReaderRidesLadderPerChunk(t *testing.T) {
	e, want := compileResilient(t, &ResilienceOptions{
		MaxRetries: -1, BreakerThreshold: 3,
	})
	inj := faultinject.New(1).Arm(faultinject.LaunchFail, faultinject.Spec{Nth: 1, Repeat: true})
	e.inner = e.inner.WithInjector(inj)

	var got []Match
	if err := e.ScanReader(strings.NewReader(ladderInput), 8, func(m Match) { got = append(got, m) }); err != nil {
		t.Fatalf("ScanReader under persistent launch failure: %v", err)
	}
	sameMatches(t, got, want)
	h := e.Health()
	if h.Fallbacks == 0 {
		t.Fatal("no chunk fell over despite persistent launch failure")
	}
	if h.Backends[0].State != resilience.Open {
		t.Fatalf("GPU backend state = %v, want open after persistent chunk failures", h.Backends[0].State)
	}
}

// TestTileCorruptionCaughtByCrossCheck is the acceptance test for sampled
// differential cross-checking: an injected silent data fault (corrupted
// shared-memory tile) is detected by comparison against the NFA
// reference, the primary is quarantined, and the caller still receives
// the correct match set.
func TestTileCorruptionCaughtByCrossCheck(t *testing.T) {
	e, want := compileResilient(t, &ResilienceOptions{CrossCheckFraction: 1})
	inj := faultinject.New(21).ArmNth(faultinject.TileCorrupt, 1)
	e.inner = e.inner.WithInjector(inj)

	res, err := e.Run([]byte(ladderInput))
	if err != nil {
		t.Fatal(err)
	}
	if inj.Fired(faultinject.TileCorrupt) == 0 {
		t.Fatal("tile-corrupt point never fired")
	}
	sameMatches(t, res.Matches, want)
	if res.Backend != BackendNFA {
		t.Fatalf("mismatching call served by %q, want the NFA reference", res.Backend)
	}
	h := e.Health()
	if h.CrossChecks != 1 || h.Mismatches != 1 {
		t.Fatalf("cross-check accounting = %+v", h)
	}
	gpu := h.Backends[0]
	if !gpu.Quarantined || gpu.State != resilience.Open {
		t.Fatalf("corrupted backend not quarantined: %+v", gpu)
	}
	if !strings.Contains(gpu.LastFailure, "cross-check") {
		t.Fatalf("quarantine reason = %q", gpu.LastFailure)
	}
	// The quarantined primary is out of the ladder: the next call is
	// served by the hybrid rung (and agrees with the reference).
	res, err = e.Run([]byte(ladderInput))
	if err != nil {
		t.Fatal(err)
	}
	sameMatches(t, res.Matches, want)
	if res.Backend != BackendHybrid {
		t.Fatalf("post-quarantine call served by %q, want %q", res.Backend, BackendHybrid)
	}
	// An operator reset (after fixing the fault) restores the primary.
	if !e.ResetBackend(BackendBitstream) {
		t.Fatal("ResetBackend did not find the bitstream rung")
	}
	res, err = e.Run([]byte(ladderInput))
	if err != nil {
		t.Fatal(err)
	}
	sameMatches(t, res.Matches, want)
	if res.Backend != BackendBitstream {
		t.Fatalf("post-reset call served by %q, want %q", res.Backend, BackendBitstream)
	}
}

func TestBreakerRecoversAfterCooldownProbe(t *testing.T) {
	e, want := compileResilient(t, &ResilienceOptions{
		BreakerThreshold: 2, BreakerCooldown: 30 * time.Millisecond,
	})
	inj := faultinject.New(1).Arm(faultinject.KernelPanic, faultinject.Spec{Nth: 1, Repeat: true})
	e.inner = e.inner.WithInjector(inj)

	for i := 0; i < 3; i++ {
		if _, err := e.Run([]byte(ladderInput)); err != nil {
			t.Fatal(err)
		}
	}
	if h := e.Health(); h.Backends[0].State != resilience.Open {
		t.Fatalf("state = %v, want open", h.Backends[0].State)
	}
	// The environmental fault clears; after the cooldown the half-open
	// probe succeeds and the primary serves again.
	inj.Disarm(faultinject.KernelPanic)
	time.Sleep(40 * time.Millisecond)
	res, err := e.Run([]byte(ladderInput))
	if err != nil {
		t.Fatal(err)
	}
	sameMatches(t, res.Matches, want)
	if res.Backend != BackendBitstream {
		t.Fatalf("recovery probe served by %q, want %q", res.Backend, BackendBitstream)
	}
	if h := e.Health(); h.Backends[0].State != resilience.Closed {
		t.Fatalf("state after successful probe = %v, want closed", h.Backends[0].State)
	}
}

func TestForceBackendPinsTheLadder(t *testing.T) {
	for _, name := range []string{BackendBitstream, BackendHybrid, BackendNFA} {
		e, want := compileResilient(t, &ResilienceOptions{ForceBackend: name})
		res, err := e.Run([]byte(ladderInput))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameMatches(t, res.Matches, want)
		if res.Backend != name {
			t.Fatalf("forced %q but served by %q", name, res.Backend)
		}
		if h := e.Health(); len(h.Backends) != 1 || h.Backends[0].Name != name {
			t.Fatalf("forced ladder rungs = %+v", h.Backends)
		}
	}
	if _, err := Compile(ladderPatterns, &Options{
		Resilience: &ResilienceOptions{ForceBackend: "abacus"},
	}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("unknown forced backend returned %v, want ErrUnsupported", err)
	}
}

func TestTerminalErrorsDoNotFailOver(t *testing.T) {
	e, err := Compile(ladderPatterns, &Options{
		Resilience: &ResilienceOptions{},
		Limits:     Limits{MaxInputBytes: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(bytes.Repeat([]byte("x"), 9)); !errors.Is(err, ErrLimit) {
		t.Fatalf("oversized input returned %v, want ErrLimit (no fallback laundering)", err)
	}
	if h := e.Health(); h.Calls != 0 {
		t.Fatalf("limit refusal consumed a ladder call: %+v", h)
	}
}

func TestHealthZeroWhenResilienceDisabled(t *testing.T) {
	e, err := Compile(ladderPatterns, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h := e.Health(); len(h.Backends) != 0 || h.Calls != 0 {
		t.Fatalf("disabled resilience health = %+v, want zero", h)
	}
	if e.ResetBackend(BackendBitstream) {
		t.Fatal("ResetBackend succeeded without a ladder")
	}
	res, err := e.Run([]byte(ladderInput))
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "" {
		t.Fatalf("Result.Backend = %q without resilience, want empty", res.Backend)
	}
}
