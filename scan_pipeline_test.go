package bitgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"bitgen/internal/arena"
)

// TestScanPipelinedMatchesSequential is the pipeline's differential oracle:
// over a spread of chunk sizes straddling the overlap boundary and several
// worker counts, the pipelined scanner must emit a byte-identical match
// sequence — order included — to the sequential chunk-at-a-time path, and
// return every pooled buffer it borrowed.
func TestScanPipelinedMatchesSequential(t *testing.T) {
	patterns := []string{"fox|dog", "qu[a-z]{2,6}k", "l.zy", "0\\d{3}"}
	eng := MustCompile(patterns, &Options{CTAs: 2, Threads: 64})
	maxLen := eng.maxLen
	if maxLen < 4 {
		t.Fatalf("maxLen = %d, test assumes longer patterns", maxLen)
	}

	rng := rand.New(rand.NewSource(41))
	words := []string{"fox", "dog", "quik", "quxyzk", "lazy", "l zy", "0123", "0999", "xx", " ", "quak"}
	var sb strings.Builder
	for sb.Len() < 20_000 {
		sb.WriteString(words[rng.Intn(len(words))])
	}
	input := []byte(sb.String())

	// Chunk sizes hugging the minimum legal size (overlap+2 bytes of buffer)
	// exercise carries that are nearly the whole chunk; larger ones exercise
	// the steady state. A few random sizes widen the net.
	chunkSizes := []int{maxLen + 1, maxLen + 2, 2*maxLen - 1, 2 * maxLen, 97, 1024}
	for i := 0; i < 3; i++ {
		chunkSizes = append(chunkSizes, maxLen+1+rng.Intn(300))
	}

	for _, cs := range chunkSizes {
		var want []Match
		err := eng.scanSequential(context.Background(), bytes.NewReader(input), cs, maxLen,
			func(m Match) { want = append(want, m) })
		if err != nil {
			t.Fatalf("chunk %d: sequential: %v", cs, err)
		}
		if len(want) == 0 {
			t.Fatalf("chunk %d: degenerate corpus, no matches", cs)
		}
		for _, workers := range []int{1, 3} {
			a := &arena.Arena{}
			eng.scanArena, eng.scanWorkers = a, workers
			var got []Match
			err := eng.ScanReader(bytes.NewReader(input), cs, func(m Match) { got = append(got, m) })
			eng.scanArena, eng.scanWorkers = nil, 0
			if err != nil {
				t.Fatalf("chunk %d workers %d: pipelined: %v", cs, workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("chunk %d workers %d: pipelined emitted %d matches, sequential %d",
					cs, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("chunk %d workers %d: match %d = %+v, sequential emitted %+v",
						cs, workers, i, got[i], want[i])
				}
			}
			if err := a.CheckBalanced(); err != nil {
				t.Fatalf("chunk %d workers %d: %v", cs, workers, err)
			}
		}
	}
}

// trickleReader serves an endless repetition of unit, one unit per Read,
// pausing briefly so cancellation has room to land mid-stream.
type trickleReader struct {
	unit []byte
}

func (r *trickleReader) Read(p []byte) (int, error) {
	time.Sleep(100 * time.Microsecond)
	return copy(p, r.unit), nil
}

// TestScanPipelinedCancellation cancels the context from the emit callback
// while the reader still has endless input: the scan must return
// ErrCanceled promptly and hand back every pooled buffer (run under -race
// this also shakes out reader/worker/emit data races).
// TestScanBatchedPipelineMatchesSequential is the batched pipeline's
// differential oracle: with Options.ScanBatch enabled, workers drain queued
// chunks into multi-stream launches — and must still emit a byte-identical
// match sequence to the sequential chunk-at-a-time path, over chunk sizes
// straddling the overlap boundary, while returning every pooled buffer.
// Run under -race with workers > 1, it also pins that concurrent batched
// sessions share no state.
func TestScanBatchedPipelineMatchesSequential(t *testing.T) {
	patterns := []string{"fox|dog", "qu[a-z]{2,6}k", "l.zy", "0\\d{3}"}
	eng := MustCompile(patterns, &Options{CTAs: 2, Threads: 64})
	maxLen := eng.maxLen

	rng := rand.New(rand.NewSource(43))
	words := []string{"fox", "dog", "quik", "quxyzk", "lazy", "l zy", "0123", "0999", "xx", " ", "quak"}
	var sb strings.Builder
	for sb.Len() < 30_000 {
		sb.WriteString(words[rng.Intn(len(words))])
	}
	input := []byte(sb.String())

	chunkSizes := []int{maxLen + 1, 2 * maxLen, 97, 1024}
	for _, cs := range chunkSizes {
		var want []Match
		err := eng.scanSequential(context.Background(), bytes.NewReader(input), cs, maxLen,
			func(m Match) { want = append(want, m) })
		if err != nil {
			t.Fatalf("chunk %d: sequential: %v", cs, err)
		}
		if len(want) == 0 {
			t.Fatalf("chunk %d: degenerate corpus, no matches", cs)
		}
		for _, workers := range []int{1, 3} {
			for _, batch := range []int{2, 4} {
				a := &arena.Arena{}
				eng.scanArena, eng.scanWorkers, eng.scanBatch = a, workers, batch
				var got []Match
				err := eng.ScanReader(bytes.NewReader(input), cs, func(m Match) { got = append(got, m) })
				eng.scanArena, eng.scanWorkers, eng.scanBatch = nil, 0, 0
				if err != nil {
					t.Fatalf("chunk %d workers %d batch %d: batched: %v", cs, workers, batch, err)
				}
				if len(got) != len(want) {
					t.Fatalf("chunk %d workers %d batch %d: batched emitted %d matches, sequential %d",
						cs, workers, batch, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("chunk %d workers %d batch %d: match %d = %+v, sequential emitted %+v",
							cs, workers, batch, i, got[i], want[i])
					}
				}
				if err := a.CheckBalanced(); err != nil {
					t.Fatalf("chunk %d workers %d batch %d: %v", cs, workers, batch, err)
				}
			}
		}
	}
}

// TestScanBatchOption pins that Options.ScanBatch reaches the scanner and
// survives a snapshot round-trip (it is runtime-only: excluded from the
// options fingerprint, applied by the loading process's own Options).
func TestScanBatchOption(t *testing.T) {
	eng := MustCompile([]string{"cat|dog"}, &Options{CTAs: 1, Threads: 32, ScanBatch: 4})
	if eng.scanBatch != 4 {
		t.Fatalf("scanBatch = %d, want 4", eng.scanBatch)
	}
	var buf bytes.Buffer
	if err := SaveEngine(&buf, eng); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEngine(&buf, &Options{CTAs: 1, Threads: 32, ScanBatch: 7})
	if err != nil {
		t.Fatal(err)
	}
	if restored.scanBatch != 7 {
		t.Fatalf("restored scanBatch = %d, want the loader's 7", restored.scanBatch)
	}
}

func TestScanPipelinedCancellation(t *testing.T) {
	eng := MustCompile([]string{"cat"}, &Options{CTAs: 1, Threads: 32})
	for _, workers := range []int{1, 4} {
		a := &arena.Arena{}
		eng.scanArena, eng.scanWorkers = a, workers
		ctx, cancel := context.WithCancel(context.Background())
		var once sync.Once
		emitted := 0
		err := eng.ScanReaderContext(ctx, &trickleReader{unit: []byte("the cat sat ")}, 1024,
			func(Match) {
				emitted++
				once.Do(cancel)
			})
		eng.scanArena, eng.scanWorkers = nil, 0
		cancel()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers %d: err = %v, want ErrCanceled", workers, err)
		}
		if emitted == 0 {
			t.Fatalf("workers %d: canceled before anything was emitted", workers)
		}
		if err := a.CheckBalanced(); err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
	}
}

// TestScanPipelinedReadFailureReturnsBuffers drives the mid-stream
// read-failure path (semantics are pinned by TestScanReaderMidStreamReadFailure)
// and asserts the failure leaks no pooled buffers.
func TestScanPipelinedReadFailureReturnsBuffers(t *testing.T) {
	eng := MustCompile([]string{"cat"}, &Options{CTAs: 1, Threads: 32})
	a := &arena.Arena{}
	eng.scanArena, eng.scanWorkers = a, 2
	input := []byte(strings.Repeat("xxcatxxx", 400))
	err := eng.ScanReader(&brokenReader{data: input, fail: 2500}, 1000, func(Match) {})
	eng.scanArena, eng.scanWorkers = nil, 0
	var re *ReadError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *ReadError", err)
	}
	if err := a.CheckBalanced(); err != nil {
		t.Fatal(err)
	}
}

// TestScanPipelinedSteadyStateAllocs pins the arena contract end to end:
// scanning more chunks must not allocate more. Per-call setup (goroutines,
// channels, sessions) is constant, so the alloc delta between a short and a
// long stream, normalized per extra chunk, must be ~zero. The strict
// zero-allocs/op proof is BenchmarkScanReader, where setup amortizes away.
func TestScanPipelinedSteadyStateAllocs(t *testing.T) {
	eng := MustCompile([]string{"cat|dog"}, &Options{CTAs: 1, Threads: 32})
	unit := []byte(strings.Repeat("the cat sat on the dog ", 180)) // ~4KB ≈ one chunk
	const chunk = 4096
	allocsFor := func(chunks int) float64 {
		data := bytes.Repeat(unit, chunks)
		return testing.AllocsPerRun(5, func() {
			n := 0
			if err := eng.ScanReader(bytes.NewReader(data), chunk, func(Match) { n++ }); err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Fatal("no matches")
			}
		})
	}
	short, long := allocsFor(4), allocsFor(24)
	perChunk := (long - short) / 20
	// Allow a sliver of slack: a GC pass during the long run can empty the
	// sync.Pool classes and force a handful of refills.
	if perChunk > 2 {
		t.Fatalf("pipelined scan allocates %.1f per steady-state chunk (short=%v long=%v), want ~0",
			perChunk, short, long)
	}
}

// TestScanWorkersOption pins that Options.ScanWorkers reaches the scanner
// and that any worker count produces identical output.
func TestScanWorkersOption(t *testing.T) {
	input := []byte(strings.Repeat("a cat, a dog. ", 2000))
	var want []Match
	for _, workers := range []int{0, 1, 2, 8} {
		eng := MustCompile([]string{"cat|dog"}, &Options{CTAs: 1, Threads: 32, ScanWorkers: workers})
		if eng.scanWorkers != workers {
			t.Fatalf("scanWorkers = %d, want %d", eng.scanWorkers, workers)
		}
		var got []Match
		if err := eng.ScanReader(bytes.NewReader(input), 1024, func(m Match) { got = append(got, m) }); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("workers=%d diverges from workers=0", workers)
		}
	}
}
