package bitgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"bitgen/internal/engine"
	"bitgen/internal/faultinject"
	"bitgen/internal/lower"
	"bitgen/internal/rx"
)

func TestMaxPatternsLimit(t *testing.T) {
	_, err := Compile([]string{"a", "b", "c"}, &Options{Limits: Limits{MaxPatterns: 2}})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("3 patterns with MaxPatterns 2 returned %v, want ErrLimit", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.Limit != "patterns" || le.Value != 3 || le.Max != 2 {
		t.Fatalf("limit error = %+v", le)
	}
	if _, err := Compile([]string{"a", "b"}, &Options{Limits: Limits{MaxPatterns: 2}}); err != nil {
		t.Fatalf("2 patterns refused: %v", err)
	}
}

func TestMaxInputBytesLimit(t *testing.T) {
	e, err := Compile([]string{"cat"}, &Options{Limits: Limits{MaxInputBytes: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(make([]byte, 17)); !errors.Is(err, ErrLimit) {
		t.Fatalf("oversized Run returned %v, want ErrLimit", err)
	}
	if _, err := e.CountOnly(make([]byte, 17)); !errors.Is(err, ErrLimit) {
		t.Fatalf("oversized CountOnly returned %v, want ErrLimit", err)
	}
	if _, err := e.RunMulti([][]byte{[]byte("ok"), make([]byte, 17)}); !errors.Is(err, ErrLimit) {
		t.Fatalf("oversized RunMulti stream returned %v, want ErrLimit", err)
	}
	if _, err := e.Run([]byte("the cat sat")); err != nil {
		t.Fatalf("in-limit Run failed: %v", err)
	}
}

func TestUnknownDeviceIsUnsupported(t *testing.T) {
	_, err := Compile([]string{"cat"}, &Options{Device: "TPU v9"})
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("unknown device returned %v, want ErrUnsupported", err)
	}
}

func TestScanReaderListsAllUnboundedPatterns(t *testing.T) {
	e, err := Compile([]string{"abc", "a+b", "x.{3}", "c*d"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	scanErr := e.ScanReader(strings.NewReader("abc"), 0, func(Match) {})
	if !errors.Is(scanErr, ErrUnsupported) {
		t.Fatalf("unbounded streaming returned %v, want ErrUnsupported", scanErr)
	}
	var ue *UnsupportedError
	if !errors.As(scanErr, &ue) {
		t.Fatalf("error %v is not an *UnsupportedError", scanErr)
	}
	want := []string{"a+b", "c*d"}
	if len(ue.Patterns) != len(want) {
		t.Fatalf("offending patterns = %v, want %v (all of them)", ue.Patterns, want)
	}
	for i, p := range want {
		if ue.Patterns[i] != p {
			t.Fatalf("offending patterns = %v, want %v", ue.Patterns, want)
		}
	}
}

func TestScanReaderUsesCompileTimeBound(t *testing.T) {
	// maxLen for "x.{3}" is 4; a chunk of 4 must be refused, 5 accepted.
	e, err := Compile([]string{"x.{3}"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.maxLen != 4 {
		t.Fatalf("cached maxLen = %d, want 4", e.maxLen)
	}
	if err := e.ScanReader(strings.NewReader("xabcxdef"), 4, func(Match) {}); err == nil {
		t.Fatal("chunk == maxLen accepted")
	}
	var got []Match
	if err := e.ScanReader(strings.NewReader("xabcxdef"), 5, func(m Match) { got = append(got, m) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("matches = %v, want 2", got)
	}
}

func TestCountOnlyMatchesRunCounts(t *testing.T) {
	patterns := []string{"cat", "dog(gy)?", "\\d{2,4}"}
	e, err := Compile(patterns, nil)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte(strings.Repeat("cat doggy 1234 dog 56 catalog ", 40))
	full, err := e.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := e.CountOnly(input)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range patterns {
		if counts[p] != full.Counts[p] {
			t.Fatalf("CountOnly %s = %d, Run = %d", p, counts[p], full.Counts[p])
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	e, err := Compile([]string{"cat"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunContext(ctx, []byte("the cat")); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled RunContext returned %v", err)
	}
	if _, err := e.CountOnlyContext(ctx, []byte("the cat")); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled CountOnlyContext returned %v", err)
	}
	if err := e.ScanReaderContext(ctx, strings.NewReader("the cat"), 0, func(Match) {}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled ScanReaderContext returned %v", err)
	}
	if _, err := CompileContext(ctx, []string{"cat"}, nil); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled CompileContext returned %v", err)
	}
	// The engine survives cancellations.
	if _, err := e.Run([]byte("the cat")); err != nil {
		t.Fatalf("engine unusable after cancellation: %v", err)
	}
}

// TestInternalErrorSurfacesThroughPublicAPI arms the fault injector on an
// internally-built engine and asserts the public error taxonomy sees the
// contained panic.
func TestInternalErrorSurfacesThroughPublicAPI(t *testing.T) {
	patterns := []string{"cat", "dog"}
	regexes := make([]lower.Regex, len(patterns))
	for i, p := range patterns {
		regexes[i] = lower.Regex{Name: p, AST: rx.MustParse(p)}
	}
	cfg := engine.BitGenDefault()
	cfg.KeepOutputs = true
	cfg.Inject = faultinject.New(1).ArmNth(faultinject.KernelPanic, 1)
	inner, err := engine.Compile(regexes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{inner: inner, patterns: patterns}
	_, err = e.Run([]byte("cat dog"))
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("public API error %v is not a *bitgen.InternalError", err)
	}
	if len(ie.Patterns) == 0 || ie.Group < 0 {
		t.Fatalf("internal error lacks attribution: %+v", ie)
	}
	if _, err := e.Run([]byte("cat dog")); err != nil {
		t.Fatalf("engine unusable after contained panic: %v", err)
	}
}

// TestConcurrentUseOneEngine exercises Run, RunMulti, CountOnly and
// ScanReader from many goroutines on a single Engine; run under -race it
// proves the compiled Engine is safely shareable.
func TestConcurrentUseOneEngine(t *testing.T) {
	e, err := Compile([]string{"cat", "d.g", "\\d{2}"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte(strings.Repeat("cat 42 dog dig 7 catalog ", 30))
	ref, err := e.CountOnly(input)
	if err != nil {
		t.Fatal(err)
	}
	refMatches, err := e.Run(input)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 12
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				switch (w + i) % 4 {
				case 0:
					res, err := e.Run(input)
					if err != nil {
						errc <- err
						return
					}
					if len(res.Matches) != len(refMatches.Matches) {
						errc <- fmt.Errorf("concurrent Run saw %d matches, want %d", len(res.Matches), len(refMatches.Matches))
						return
					}
				case 1:
					counts, err := e.CountOnly(input)
					if err != nil {
						errc <- err
						return
					}
					for p, n := range ref {
						if counts[p] != n {
							errc <- fmt.Errorf("concurrent CountOnly %s = %d, want %d", p, counts[p], n)
							return
						}
					}
				case 2:
					mr, err := e.RunMulti([][]byte{input, input[:len(input)/2]})
					if err != nil {
						errc <- err
						return
					}
					if len(mr.PerStream) != 2 {
						errc <- fmt.Errorf("RunMulti returned %d streams", len(mr.PerStream))
						return
					}
				case 3:
					n := 0
					if err := e.ScanReader(bytes.NewReader(input), 64, func(Match) { n++ }); err != nil {
						errc <- err
						return
					}
					if n != len(refMatches.Matches) {
						errc <- fmt.Errorf("concurrent ScanReader saw %d matches, want %d", n, len(refMatches.Matches))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// FuzzScanReaderChunkBoundaries asserts that chunked streaming over any
// input at any legal chunk size reports exactly the matches of a
// whole-input Run.
func FuzzScanReaderChunkBoundaries(f *testing.F) {
	e, err := Compile([]string{"abc", "a.c", "\\d{2}", "q[^u]{1,3}k"}, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte("abc a5c 42 qiik abc"), uint16(8))
	f.Add([]byte(strings.Repeat("abcabc12", 40)), uint16(16))
	f.Add([]byte("qk q12k ab"), uint16(5))
	f.Add([]byte{}, uint16(9))
	f.Fuzz(func(t *testing.T, data []byte, rawChunk uint16) {
		// maxLen is 5 (q[^u]{1,3}k); chunk must exceed it.
		chunkSize := 6 + int(rawChunk%512)
		want, err := e.Run(data)
		if err != nil {
			t.Fatal(err)
		}
		var got []Match
		if err := e.ScanReader(bytes.NewReader(data), chunkSize, func(m Match) { got = append(got, m) }); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want.Matches) {
			t.Fatalf("chunked scan (chunk %d) found %d matches, whole-input Run found %d",
				chunkSize, len(got), len(want.Matches))
		}
		// ScanReader emits in per-chunk order, which matches Run's order
		// (end position, then pattern) within and across chunks.
		for i := range got {
			if got[i] != want.Matches[i] {
				t.Fatalf("match %d: chunked %+v != whole %+v (chunk %d)", i, got[i], want.Matches[i], chunkSize)
			}
		}
	})
}
