// Package faultinject provides deterministic, seeded fault hooks for the
// hardened execution layer. Production code consults an optional *Injector
// at named points (launch, kernel entry, tile commit, overlap fixpoint,
// global while loops); tests arm specific points to prove that every error
// path surfaces the right typed error, never deadlocks the engine's
// semaphore/WaitGroup, and leaves the Engine usable afterwards.
//
// Determinism: a decision at (point, hit-count) depends only on the
// injector's seed, so a failing schedule reproduces exactly from the seed
// alone — no time, no global rand. All methods are safe for concurrent use
// (the engine runs CTA groups on parallel goroutines) and safe on a nil
// receiver, so hot paths can consult the injector unconditionally.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
)

// Point names an injection site.
type Point string

const (
	// LaunchFail fails a CTA group launch before any execution
	// (checked via gpusim.CheckLaunch at the engine's launch boundary).
	LaunchFail Point = "launch-fail"
	// KernelPanic panics inside kernel execution — exercises the
	// engine's panic containment.
	KernelPanic Point = "kernel-panic"
	// TileCorrupt flips bits in a shared-memory tile (a window register)
	// just before commit — exercises containment of silent data faults.
	TileCorrupt Point = "tile-corrupt"
	// ForceFallback forces a Section 8.2 overlap overflow, pushing the
	// offending loop or carry onto the materialized fallback path.
	ForceFallback Point = "force-fallback"
	// WhileCap trips the global while-iteration cap regardless of the
	// configured bound.
	WhileCap Point = "while-cap"

	// Network-level points, consulted by the cluster transport
	// (internal/cluster). Each is usually scoped to one peer with For:
	// in.ArmNth(faultinject.PeerRefuse.For("127.0.0.1:9001"), 1).
	// The unscoped point applies to every peer.

	// PeerRefuse fails a peer dial/request before any bytes are exchanged
	// — the connection-refused shape of a crashed replica.
	PeerRefuse Point = "peer-refuse"
	// PeerSlow delays a peer request by the transport's configured
	// SlowDelay before it proceeds — a congested or GC-pausing replica.
	PeerSlow Point = "peer-slow"
	// PeerDrop cuts a peer response mid-stream after a deterministic
	// number of body bytes — a connection reset during an NDJSON relay.
	PeerDrop Point = "peer-drop"
	// PeerPartition models a network partition: every request to the
	// partitioned peer fails as if unroutable. Distinct from PeerRefuse
	// so tests can arm a persistent partition (Repeat) alongside
	// one-shot refusals.
	PeerPartition Point = "peer-partition"

	// Persistence points, consulted by the engine-snapshot store
	// (internal/snapshot). Each can be scoped to one pattern-set key
	// with For; the unscoped point applies to every snapshot.

	// SnapTornWrite truncates a snapshot mid-write before it reaches its
	// final path — the on-disk shape of a crash during persistence.
	SnapTornWrite Point = "snap-torn-write"
	// SnapBitFlip flips one byte of a snapshot as it is written — silent
	// media corruption that only checksums can catch.
	SnapBitFlip Point = "snap-bit-flip"
	// SnapShortRead returns only a prefix of the snapshot at load — an
	// interrupted read or a concurrently truncated file.
	SnapShortRead Point = "snap-short-read"
	// SnapStaleVersion stamps a snapshot with a future format version at
	// write — the shape of a rollback serving snapshots written by a
	// newer build.
	SnapStaleVersion Point = "snap-stale-version"
)

// For scopes a point to one target (a peer address): the returned point is
// independent of the unscoped one — arm either or both. The cluster
// transport consults both the scoped and unscoped variants.
func (p Point) For(target string) Point {
	return p + ":" + Point(target)
}

// ErrInjected is the identity of every injected fault: tests and callers
// classify with errors.Is(err, ErrInjected).
var ErrInjected = errors.New("faultinject: injected fault")

// FaultError is the concrete error returned for a fired point.
type FaultError struct {
	Point Point
	// Hit is the 1-based occurrence count at which the point fired.
	Hit uint64
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("faultinject: %s (hit %d)", e.Point, e.Hit)
}

// Is makes errors.Is(err, ErrInjected) true for every *FaultError.
func (e *FaultError) Is(target error) bool { return target == ErrInjected }

// Spec arms one point. Exactly one of Nth or Prob selects the firing rule.
type Spec struct {
	// Nth fires on the Nth hit (1-based). With Repeat, every hit from the
	// Nth on fires.
	Nth uint64
	// Prob fires each hit independently with this probability, decided by
	// a hash of (seed, point, hit) — deterministic for a fixed seed.
	Prob float64
	// Repeat extends Nth-mode to all hits >= Nth.
	Repeat bool
}

// Injector decides, deterministically from its seed, which armed points
// fire at which hits. The zero of *Injector (nil) never fires.
type Injector struct {
	seed uint64

	mu    sync.Mutex
	specs map[Point]Spec
	hits  map[Point]uint64
	fired map[Point]uint64
}

// New returns an injector with the given seed and nothing armed.
func New(seed uint64) *Injector {
	return &Injector{
		seed:  seed,
		specs: make(map[Point]Spec),
		hits:  make(map[Point]uint64),
		fired: make(map[Point]uint64),
	}
}

// Arm installs a firing rule for a point and returns the injector for
// chaining.
func (in *Injector) Arm(p Point, s Spec) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.specs[p] = s
	return in
}

// ArmNth arms a point to fire exactly once, on its nth hit (1-based).
func (in *Injector) ArmNth(p Point, n uint64) *Injector {
	return in.Arm(p, Spec{Nth: n})
}

// Disarm removes a point's firing rule (hit counters are kept). Recovery
// tests use it to model an environmental fault that clears: a persistently
// failing backend stops faulting and the circuit breaker's next probe
// succeeds.
func (in *Injector) Disarm(p Point) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.specs, p)
	return in
}

// Fire records one hit of the point and reports whether it fires. Safe on
// a nil receiver (never fires), so call sites need no guard.
func (in *Injector) Fire(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	spec, armed := in.specs[p]
	in.hits[p]++
	if !armed {
		return false
	}
	hit := in.hits[p]
	var fires bool
	switch {
	case spec.Nth > 0 && spec.Repeat:
		fires = hit >= spec.Nth
	case spec.Nth > 0:
		fires = hit == spec.Nth
	case spec.Prob > 0:
		fires = float64(mix(in.seed, p, hit))/float64(^uint64(0)) < spec.Prob
	}
	if fires {
		in.fired[p]++
	}
	return fires
}

// Err is Fire returning a typed *FaultError when the point fires, nil
// otherwise. Safe on a nil receiver.
func (in *Injector) Err(p Point) error {
	if in == nil {
		return nil
	}
	if !in.Fire(p) {
		return nil
	}
	in.mu.Lock()
	hit := in.hits[p]
	in.mu.Unlock()
	return &FaultError{Point: p, Hit: hit}
}

// Hits returns how many times the point has been consulted.
func (in *Injector) Hits(p Point) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[p]
}

// Fired returns how many times the point has fired.
func (in *Injector) Fired(p Point) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[p]
}

// Corrupt XORs a deterministic bit pattern (derived from seed, point and
// hit count) into the words — the payload of a TileCorrupt fire.
func (in *Injector) Corrupt(p Point, words []uint64) {
	if in == nil {
		return
	}
	in.mu.Lock()
	hit := in.hits[p]
	seed := in.seed
	in.mu.Unlock()
	for i := range words {
		words[i] ^= mix(seed, p, hit+uint64(i))
	}
}

// mix is splitmix64 over the seed, an FNV hash of the point name, and the
// hit counter: a cheap, high-quality deterministic decision function.
func mix(seed uint64, p Point, hit uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	z := seed ^ h ^ (hit * 0x9e3779b97f4a7c15)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
