package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if in.Fire(KernelPanic) {
		t.Fatal("nil injector fired")
	}
	if err := in.Err(LaunchFail); err != nil {
		t.Fatalf("nil injector returned error: %v", err)
	}
	if in.Hits(WhileCap) != 0 || in.Fired(WhileCap) != 0 {
		t.Fatal("nil injector has counters")
	}
	in.Corrupt(TileCorrupt, []uint64{1, 2, 3}) // must not panic
}

func TestUnarmedPointNeverFires(t *testing.T) {
	in := New(1)
	for i := 0; i < 100; i++ {
		if in.Fire(KernelPanic) {
			t.Fatal("unarmed point fired")
		}
	}
	if in.Hits(KernelPanic) != 100 {
		t.Fatalf("hits = %d, want 100", in.Hits(KernelPanic))
	}
}

func TestNthFiresExactlyOnce(t *testing.T) {
	in := New(7).ArmNth(LaunchFail, 3)
	var fires []int
	for i := 1; i <= 10; i++ {
		if in.Fire(LaunchFail) {
			fires = append(fires, i)
		}
	}
	if len(fires) != 1 || fires[0] != 3 {
		t.Fatalf("fired at %v, want exactly [3]", fires)
	}
	if in.Fired(LaunchFail) != 1 {
		t.Fatalf("Fired = %d, want 1", in.Fired(LaunchFail))
	}
}

func TestNthRepeatFiresFromNOn(t *testing.T) {
	in := New(7).Arm(WhileCap, Spec{Nth: 4, Repeat: true})
	n := 0
	for i := 1; i <= 10; i++ {
		if in.Fire(WhileCap) {
			n++
		}
	}
	if n != 7 {
		t.Fatalf("fired %d times, want 7 (hits 4..10)", n)
	}
}

func TestProbDeterministicAcrossInjectors(t *testing.T) {
	record := func() []bool {
		in := New(42).Arm(TileCorrupt, Spec{Prob: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Fire(TileCorrupt)
		}
		return out
	}
	a, b := record(), record()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identically-seeded injectors", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.3 fired %d/%d times — not probabilistic", fired, len(a))
	}
	// A different seed must give a different schedule (overwhelmingly).
	in2 := New(43).Arm(TileCorrupt, Spec{Prob: 0.3})
	same := true
	for i := range a {
		if in2.Fire(TileCorrupt) != a[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestErrReturnsTypedFault(t *testing.T) {
	in := New(1).ArmNth(LaunchFail, 1)
	err := in.Err(LaunchFail)
	if err == nil {
		t.Fatal("armed Err returned nil")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error %v does not match ErrInjected", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Point != LaunchFail || fe.Hit != 1 {
		t.Fatalf("fault = %+v, want point %s hit 1", fe, LaunchFail)
	}
	if err := in.Err(LaunchFail); err != nil {
		t.Fatalf("second hit fired again: %v", err)
	}
}

func TestCorruptIsDeterministicAndNonZero(t *testing.T) {
	mk := func() []uint64 {
		in := New(9)
		w := make([]uint64, 8)
		in.Corrupt(TileCorrupt, w)
		return w
	}
	a, b := mk(), mk()
	any := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("corruption not deterministic")
		}
		if a[i] != 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("corruption flipped no bits")
	}
}

func TestConcurrentFireIsSafe(t *testing.T) {
	in := New(5).Arm(KernelPanic, Spec{Nth: 50, Repeat: true})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in.Fire(KernelPanic)
				in.Hits(KernelPanic)
				in.Fired(KernelPanic)
			}
		}()
	}
	wg.Wait()
	if got := in.Hits(KernelPanic); got != 800 {
		t.Fatalf("hits = %d, want 800", got)
	}
	// Hits 50..800 fire: 751 of them.
	if got := in.Fired(KernelPanic); got != 751 {
		t.Fatalf("fired = %d, want 751", got)
	}
}

func TestScopedPointIsIndependent(t *testing.T) {
	in := New(11).Arm(PeerPartition.For("10.0.0.2:8377"), Spec{Nth: 1, Repeat: true})
	if in.Fire(PeerPartition) {
		t.Fatal("unscoped point fired when only the scoped one is armed")
	}
	if in.Fire(PeerPartition.For("10.0.0.3:8377")) {
		t.Fatal("a differently-scoped point fired")
	}
	for i := 0; i < 3; i++ {
		if !in.Fire(PeerPartition.For("10.0.0.2:8377")) {
			t.Fatalf("armed scoped point did not fire on hit %d", i+1)
		}
	}
	if got := in.Fired(PeerPartition.For("10.0.0.2:8377")); got != 3 {
		t.Fatalf("scoped Fired = %d, want 3", got)
	}
}
