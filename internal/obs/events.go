package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"
)

// The structured event log records the decision points the metrics only
// count and the tracer only times: breaker state transitions, hedge
// winners and losers, degraded/standby serves, snapshot quarantines and
// scrub verdicts, cache evictions. Events are leveled, ring-buffered
// (newest overwrite oldest), rate-limited below Warn, tagged with the
// distributed trace ID, and rendered as JSON only at export time. Like
// every obs hook, a nil *EventLog is inert: Emit on nil is a no-op with
// zero allocations, so disabled observability stays free.

// Level is the event severity.
type Level uint8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

type fieldKind uint8

const (
	fieldString fieldKind = iota
	fieldInt
	fieldFloat
	fieldBool
)

// Field is one typed key/value attribute on an event. Values are held
// unboxed (no interface) so copying a Field into the ring never
// allocates and the disabled path keeps the caller's variadic slice on
// the stack.
type Field struct {
	Key  string
	str  string
	num  int64
	f    float64
	b    bool
	kind fieldKind
}

// FStr builds a string field.
func FStr(key, val string) Field { return Field{Key: key, str: val, kind: fieldString} }

// FInt builds an integer field.
func FInt(key string, val int64) Field { return Field{Key: key, num: val, kind: fieldInt} }

// FFloat builds a float field.
func FFloat(key string, val float64) Field { return Field{Key: key, f: val, kind: fieldFloat} }

// FBool builds a boolean field.
func FBool(key string, val bool) Field { return Field{Key: key, b: val, kind: fieldBool} }

// Value returns the field's value boxed (export-time only).
func (f Field) Value() any {
	switch f.kind {
	case fieldInt:
		return f.num
	case fieldFloat:
		return f.f
	case fieldBool:
		return f.b
	default:
		return f.str
	}
}

// StringValue renders the field's value as a string (anomaly matching
// and tests).
func (f Field) StringValue() string {
	switch f.kind {
	case fieldInt:
		return strconv.FormatInt(f.num, 10)
	case fieldFloat:
		return strconv.FormatFloat(f.f, 'g', -1, 64)
	case fieldBool:
		return strconv.FormatBool(f.b)
	default:
		return f.str
	}
}

// MaxEventFields caps the attributes stored per event; extra fields are
// dropped (the count is preserved in the event itself, not metrics —
// callers control their own arity).
const MaxEventFields = 8

// LogEvent is one recorded event. Fields is a fixed array so ring slots
// are flat and writes copy values instead of retaining caller slices.
type LogEvent struct {
	TimeUnixMicro int64
	Level         Level
	Type          string
	Trace         TraceID
	NFields       uint8
	Fields        [MaxEventFields]Field
}

// Field returns the string rendering of the named attribute.
func (e LogEvent) Field(key string) (string, bool) {
	for i := 0; i < int(e.NFields); i++ {
		if e.Fields[i].Key == key {
			return e.Fields[i].StringValue(), true
		}
	}
	return "", false
}

// MarshalJSON renders the event as a flat JSON object:
// {"t_us":..., "level":"warn", "type":"breaker", "trace":"<32hex>",
// "fields":{...}}. encoding/json sorts map keys, so the rendering is
// deterministic.
func (e LogEvent) MarshalJSON() ([]byte, error) {
	fields := make(map[string]any, e.NFields)
	for i := 0; i < int(e.NFields); i++ {
		fields[e.Fields[i].Key] = e.Fields[i].Value()
	}
	v := struct {
		TimeUnixMicro int64          `json:"t_us"`
		Level         string         `json:"level"`
		Type          string         `json:"type"`
		Trace         string         `json:"trace,omitempty"`
		Fields        map[string]any `json:"fields,omitempty"`
	}{e.TimeUnixMicro, e.Level.String(), e.Type, e.Trace.String(), fields}
	return json.Marshal(v)
}

// UnmarshalJSON parses the MarshalJSON rendering back into a LogEvent —
// the stitcher decodes other nodes' trace fragments with it. JSON
// numbers decode as float64; integral values are restored to int fields
// so round-tripped events render identically.
func (e *LogEvent) UnmarshalJSON(data []byte) error {
	var v struct {
		TimeUnixMicro int64          `json:"t_us"`
		Level         string         `json:"level"`
		Type          string         `json:"type"`
		Trace         string         `json:"trace"`
		Fields        map[string]any `json:"fields"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*e = LogEvent{TimeUnixMicro: v.TimeUnixMicro, Type: v.Type}
	switch v.Level {
	case "debug":
		e.Level = LevelDebug
	case "info":
		e.Level = LevelInfo
	case "warn":
		e.Level = LevelWarn
	default:
		e.Level = LevelError
	}
	if t, ok := ParseTraceID(v.Trace); ok {
		e.Trace = t
	}
	// Map iteration is unordered; sort keys so the field order is stable.
	keys := make([]string, 0, len(v.Fields))
	for k := range v.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if int(e.NFields) == MaxEventFields {
			break
		}
		var f Field
		switch val := v.Fields[k].(type) {
		case bool:
			f = FBool(k, val)
		case float64:
			if val == math.Trunc(val) && math.Abs(val) < 1<<53 {
				f = FInt(k, int64(val))
			} else {
				f = FFloat(k, val)
			}
		case string:
			f = FStr(k, val)
		default:
			b, _ := json.Marshal(val)
			f = FStr(k, string(b))
		}
		e.Fields[e.NFields] = f
		e.NFields++
	}
	return nil
}

// DefaultEventCapacity is the event ring size when the config leaves it
// zero.
const DefaultEventCapacity = 4096

// DefaultEventRate is the sustained events/second admitted below Warn
// when the config leaves it zero.
const DefaultEventRate = 500

// EventLogConfig configures NewEventLog. The zero value is usable.
type EventLogConfig struct {
	// Capacity is the ring size (DefaultEventCapacity if zero).
	Capacity int
	// MinLevel drops events below it at the Emit call.
	MinLevel Level
	// RatePerSec token-bucket-limits Debug/Info events
	// (DefaultEventRate if zero, negative disables limiting). Warn and
	// Error always bypass the limiter: anomalies must not be shed.
	RatePerSec float64
	// Burst is the token bucket depth (2×rate if zero).
	Burst float64
	// Now overrides the clock (tests).
	Now func() time.Time
	// Metrics, when set, registers bitgen_obs_events_total{level} and
	// bitgen_obs_events_dropped_total.
	Metrics *Registry
	// OnEvent, when set, is invoked synchronously (outside the ring
	// lock) for every admitted event at Warn or above — the anomaly
	// flight-recorder trigger. It must not call back into the log.
	OnEvent func(LogEvent)
}

// EventLog is the ring-buffered structured event log. All methods are
// safe on a nil receiver and for concurrent use.
type EventLog struct {
	now      func() time.Time
	minLevel Level
	onEvent  func(LogEvent)
	emitted  [4]*Counter
	droppedC *Counter

	mu      sync.Mutex
	ring    []LogEvent
	total   uint64 // events ever admitted
	dropped uint64 // rate-limited drops
	tokens  float64
	rate    float64
	burst   float64
	last    time.Time
}

// NewEventLog builds an event log; see EventLogConfig.
func NewEventLog(cfg EventLogConfig) *EventLog {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	rate := cfg.RatePerSec
	if rate == 0 {
		rate = DefaultEventRate
	}
	burst := cfg.Burst
	if burst <= 0 {
		burst = 2 * rate
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	l := &EventLog{
		now:      now,
		minLevel: cfg.MinLevel,
		onEvent:  cfg.OnEvent,
		ring:     make([]LogEvent, 0, capacity),
		rate:     rate,
		burst:    burst,
		tokens:   burst,
		last:     now(),
	}
	if cfg.Metrics != nil {
		for lv := LevelDebug; lv <= LevelError; lv++ {
			l.emitted[lv] = cfg.Metrics.Counter(MObsEvents, HObsEvents, L("level", lv.String()))
		}
		l.droppedC = cfg.Metrics.Counter(MObsEventsDropped, HObsEventsDropped)
	}
	return l
}

// Emit records one event. Nil receivers and sub-MinLevel events return
// immediately; Debug/Info events beyond the rate limit are counted as
// dropped. The variadic fields never escape on the disabled path.
func (l *EventLog) Emit(level Level, typ string, trace TraceID, fields ...Field) {
	if l == nil || level < l.minLevel {
		return
	}
	var ev LogEvent
	ev.Level = level
	ev.Type = typ
	ev.Trace = trace
	n := copy(ev.Fields[:], fields)
	ev.NFields = uint8(n)

	now := l.now()
	ev.TimeUnixMicro = now.UnixMicro()

	l.mu.Lock()
	if l.rate > 0 && level < LevelWarn {
		dt := now.Sub(l.last).Seconds()
		if dt > 0 {
			l.tokens += dt * l.rate
			if l.tokens > l.burst {
				l.tokens = l.burst
			}
			l.last = now
		}
		if l.tokens < 1 {
			l.dropped++
			l.mu.Unlock()
			l.droppedC.Inc()
			return
		}
		l.tokens--
	}
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, ev)
	} else {
		l.ring[l.total%uint64(cap(l.ring))] = ev
	}
	l.total++
	l.mu.Unlock()

	if c := l.emitted[level]; c != nil {
		c.Inc()
	}
	if l.onEvent != nil && level >= LevelWarn {
		l.onEvent(ev)
	}
}

// Events returns the buffered events, oldest first.
func (l *EventLog) Events() []LogEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LogEvent, 0, len(l.ring))
	if len(l.ring) < cap(l.ring) || l.total <= uint64(len(l.ring)) {
		out = append(out, l.ring...)
		return out
	}
	head := int(l.total % uint64(cap(l.ring)))
	out = append(out, l.ring[head:]...)
	out = append(out, l.ring[:head]...)
	return out
}

// ByTrace returns the buffered events carrying the given trace ID,
// oldest first.
func (l *EventLog) ByTrace(t TraceID) []LogEvent {
	if l == nil || t.IsZero() {
		return nil
	}
	all := l.Events()
	out := all[:0]
	for _, e := range all {
		if e.Trace == t {
			out = append(out, e)
		}
	}
	return out
}

// Dropped returns the number of rate-limited events.
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Total returns the number of events ever admitted to the ring.
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// WriteJSON writes the buffered events as one JSON array, oldest first.
func (l *EventLog) WriteJSON(w io.Writer) error {
	evs := l.Events()
	if evs == nil {
		evs = []LogEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}
