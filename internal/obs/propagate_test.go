package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	h := tc.Header()
	if len(h) != 49 || h[32] != '-' {
		t.Fatalf("header %q is not <32hex>-<16hex>", h)
	}
	if h != strings.ToLower(h) {
		t.Fatalf("header %q is not lowercase", h)
	}
	back, ok := ParseTraceHeader(h)
	if !ok || back != tc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", back, ok, tc)
	}
}

func TestParseTraceHeaderRejectsMalformed(t *testing.T) {
	valid := NewTraceContext().Header()
	cases := map[string]string{
		"empty":         "",
		"short":         valid[:40],
		"long":          valid + "00",
		"no dash":       strings.Replace(valid, "-", "0", 1),
		"bad trace hex": "zz" + valid[2:],
		"bad span hex":  valid[:47] + "zz",
		"zero trace":    strings.Repeat("0", 32) + "-" + valid[33:],
		"zero span":     valid[:33] + strings.Repeat("0", 16),
	}
	for name, v := range cases {
		if _, ok := ParseTraceHeader(v); ok {
			t.Errorf("%s: ParseTraceHeader(%q) accepted", name, v)
		}
	}
}

func TestParseTraceID(t *testing.T) {
	id := NewTraceID()
	back, ok := ParseTraceID(id.String())
	if !ok || back != id {
		t.Fatalf("round trip failed: %v %v", back, ok)
	}
	for _, bad := range []string{"", "abc", strings.Repeat("0", 32), strings.Repeat("g", 32)} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestTraceIDUniqueness(t *testing.T) {
	seen := make(map[TraceID]bool)
	spans := make(map[SpanID]bool)
	for i := 0; i < 10000; i++ {
		tr := NewTraceID()
		if tr.IsZero() || seen[tr] {
			t.Fatalf("trace ID %s repeated or zero at %d", tr, i)
		}
		seen[tr] = true
		sp := NewSpanID()
		if sp.IsZero() || spans[sp] {
			t.Fatalf("span ID %s repeated or zero at %d", sp, i)
		}
		spans[sp] = true
	}
}

func TestChildKeepsTraceChangesSpan(t *testing.T) {
	tc := NewTraceContext()
	child := tc.Child()
	if child.Trace != tc.Trace {
		t.Fatal("child changed the trace ID")
	}
	if child.Span == tc.Span || child.Span.IsZero() {
		t.Fatal("child must mint a fresh span ID")
	}
}

func TestTraceContextOnContext(t *testing.T) {
	if _, ok := TraceContextFrom(context.Background()); ok {
		t.Fatal("empty context claimed a trace")
	}
	tc := NewTraceContext()
	ctx := WithTraceContext(context.Background(), tc)
	back, ok := TraceContextFrom(ctx)
	if !ok || back != tc {
		t.Fatalf("context round trip: %+v ok=%v", back, ok)
	}
	zero := WithTraceContext(context.Background(), TraceContext{})
	if _, ok := TraceContextFrom(zero); ok {
		t.Fatal("zero trace context should read back as absent")
	}
}

func TestZeroIDRendering(t *testing.T) {
	if (TraceID{}).String() != "" || (SpanID{}).String() != "" {
		t.Fatal("zero IDs must render empty")
	}
	if (TraceContext{}).Header() != "" {
		t.Fatal("zero context must render an empty header")
	}
}
