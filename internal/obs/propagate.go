package obs

import (
	crand "crypto/rand"
	"context"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// TraceHeader is the cross-node trace-propagation header. Its value is
// "<32-hex trace id>-<16-hex span id>": the 128-bit trace ID names the
// whole distributed request, the 64-bit span ID is the sender's span so
// the receiver can parent its own span under it. It travels alongside
// X-Bitgen-Forwarded and X-Bitgen-Deadline-Ms on every cluster forward,
// hedge and snapshot fetch.
const TraceHeader = "X-Bitgen-Trace"

// TraceID is a 128-bit distributed request identifier. The zero value
// means "no trace".
type TraceID [16]byte

// SpanID is a 64-bit span identifier within a trace.
type SpanID [8]byte

// IsZero reports whether the trace ID is absent.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the trace ID as 32 lowercase hex digits ("" if zero).
func (t TraceID) String() string {
	if t.IsZero() {
		return ""
	}
	return hex.EncodeToString(t[:])
}

// IsZero reports whether the span ID is absent.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the span ID as 16 lowercase hex digits ("" if zero).
func (s SpanID) String() string {
	if s.IsZero() {
		return ""
	}
	return hex.EncodeToString(s[:])
}

// ParseTraceID parses a 32-hex-digit trace ID.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return TraceID{}, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// idState seeds the process-local ID generator: a random base drawn once
// from crypto/rand, mixed with an atomic counter through a splitmix64
// finalizer. IDs are unique per process and collision-resistant across
// nodes without a syscall per request.
var idState struct {
	hi, lo uint64
	ctr    atomic.Uint64
}

func init() {
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Degrade to a fixed base: counter mixing still yields unique
		// per-process IDs.
		copy(b[:], "bitgen-obs-seed!")
	}
	idState.hi = binary.LittleEndian.Uint64(b[0:8])
	idState.lo = binary.LittleEndian.Uint64(b[8:16])
}

// mix64 is the splitmix64 finalizer (same avalanche core the cluster
// ring uses for key hashing).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func nextID() (uint64, uint64) {
	c := idState.ctr.Add(1)
	return mix64(idState.hi + c), mix64(idState.lo ^ (c * 0x9e3779b97f4a7c15))
}

// NewTraceID returns a fresh non-zero 128-bit trace ID.
func NewTraceID() TraceID {
	var t TraceID
	a, b := nextID()
	binary.LittleEndian.PutUint64(t[0:8], a)
	binary.LittleEndian.PutUint64(t[8:16], b|1) // never zero
	return t
}

// NewSpanID returns a fresh non-zero 64-bit span ID.
func NewSpanID() SpanID {
	var s SpanID
	a, _ := nextID()
	binary.LittleEndian.PutUint64(s[:], a|1)
	return s
}

// TraceContext is the propagated pair: the request's trace ID and the
// current node's span within it.
type TraceContext struct {
	Trace TraceID
	Span  SpanID
}

// NewTraceContext mints a fresh trace with a root span.
func NewTraceContext() TraceContext {
	return TraceContext{Trace: NewTraceID(), Span: NewSpanID()}
}

// Child returns a new span in the same trace.
func (tc TraceContext) Child() TraceContext {
	return TraceContext{Trace: tc.Trace, Span: NewSpanID()}
}

// Header renders the X-Bitgen-Trace wire value ("" for a zero context).
func (tc TraceContext) Header() string {
	if tc.Trace.IsZero() {
		return ""
	}
	return tc.Trace.String() + "-" + tc.Span.String()
}

// ParseTraceHeader parses an X-Bitgen-Trace value. A missing or
// malformed value returns ok=false: the receiver starts a fresh trace
// rather than failing the request.
func ParseTraceHeader(v string) (TraceContext, bool) {
	if len(v) != 49 || v[32] != '-' {
		return TraceContext{}, false
	}
	t, ok := ParseTraceID(v[:32])
	if !ok {
		return TraceContext{}, false
	}
	var s SpanID
	if _, err := hex.Decode(s[:], []byte(v[33:])); err != nil || s.IsZero() {
		return TraceContext{}, false
	}
	return TraceContext{Trace: t, Span: s}, true
}

type traceCtxKey struct{}

// WithTraceContext attaches the trace context to ctx; the cluster
// transport reads it back to stamp TraceHeader on outbound forwards,
// hedges and snapshot fetches.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom extracts the trace context placed by WithTraceContext.
func TraceContextFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && !tc.Trace.IsZero()
}
