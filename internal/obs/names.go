package obs

// Canonical metric names. Every instrumented package registers through
// these constants so the exposition is drift-free: the golden metric-name
// test at the repo root renders the full exposition and compares it
// against testdata/metrics.golden — adding or renaming a metric must
// update both, deliberately.
const (
	// Scan-level (recorded by the public Engine per Run/CountOnly call).
	MScans          = "bitgen_scans_total"
	MScanErrors     = "bitgen_scan_errors_total"
	MScanInputBytes = "bitgen_scan_input_bytes_total"
	MMatches        = "bitgen_matches_total"
	MScanHostSecs   = "bitgen_scan_host_seconds"

	// Modeled-kernel counters (aggregated from gpusim.KernelStats; these
	// are the Nsight-equivalent quantities of the paper's Tables 4-6).
	MKernelLaunches  = "bitgen_kernel_launches_total"
	MModeledSecs     = "bitgen_modeled_kernel_seconds_total"
	MDRAMReadBytes   = "bitgen_dram_read_bytes_total"
	MDRAMWriteBytes  = "bitgen_dram_write_bytes_total"
	MSMemReadBytes   = "bitgen_smem_read_bytes_total"
	MSMemWriteBytes  = "bitgen_smem_write_bytes_total"
	MBarriers        = "bitgen_barriers_total"
	MShiftBarriers   = "bitgen_shift_barriers_total"
	MUnitOps         = "bitgen_unit_ops_total"
	MWindows         = "bitgen_windows_total"
	MGuardChecks     = "bitgen_guard_checks_total"
	MGuardSkips      = "bitgen_guard_skips_total"
	MSkippedStmts    = "bitgen_skipped_stmts_total"
	MCommittedBits   = "bitgen_committed_bits_total"
	MRecomputedBits  = "bitgen_recomputed_bits_total"
	MTransposeBytes  = "bitgen_transpose_bytes_total"
	MZBSSkipRatio    = "bitgen_zero_block_skip_ratio"
	MOverlapFallback = "bitgen_overlap_fallbacks_total"

	// Compile-time families (recorded by the engine per compilation):
	// wall-clock compile latency and measured resident bytes of the durable
	// compiled state — real measurements, not snapshot-encoding proxies.
	MCompileSeconds      = "bitgen_compile_seconds"
	MEngineResidentBytes = "bitgen_engine_resident_bytes"

	// Serving layer (registered by internal/serve, not RegisterBase: the
	// exposition of a library-only process carries no serve families).
	MServeRequests        = "bitgen_serve_requests_total"
	MServeErrors          = "bitgen_serve_errors_total"
	MServeRejected        = "bitgen_serve_rejected_total"
	MServeInFlight        = "bitgen_serve_in_flight"
	MServeQueueDepth      = "bitgen_serve_queue_depth"
	MServeCacheHits       = "bitgen_serve_engine_cache_hits_total"
	MServeCacheMisses     = "bitgen_serve_engine_cache_misses_total"
	MServeCacheEvictions  = "bitgen_serve_engine_cache_evictions_total"
	MServeCompiles        = "bitgen_serve_engine_compiles_total"
	MServeBatches         = "bitgen_serve_batches_total"
	MServeBatchedRequests = "bitgen_serve_batched_requests_total"
	MServeDrains          = "bitgen_serve_drains_total"
	MServeResidentBytes   = "bitgen_serve_engine_cache_resident_bytes"

	// Snapshot persistence (registered by internal/snapshot and
	// internal/serve into the serve registry; absent from library-only
	// expositions).
	MSnapSaves           = "bitgen_snapshot_saves_total"
	MSnapSaveErrors      = "bitgen_snapshot_save_errors_total"
	MSnapLoads           = "bitgen_snapshot_loads_total"
	MSnapWarmStarts      = "bitgen_snapshot_warm_starts_total"
	MSnapVerifyFailures  = "bitgen_snapshot_verify_failures_total"
	MSnapQuarantines     = "bitgen_snapshot_quarantines_total"
	MSnapScrubRuns       = "bitgen_snapshot_scrub_runs_total"
	MSnapPeerFetches     = "bitgen_snapshot_peer_fetches_total"
	MSnapPeerFetchErrors = "bitgen_snapshot_peer_fetch_errors_total"

	// Cluster layer (registered by internal/cluster into the serve
	// registry; absent from library-only expositions).
	MClusterPeers            = "bitgen_cluster_peers"
	MClusterLocalServes      = "bitgen_cluster_local_serves_total"
	MClusterForwards         = "bitgen_cluster_forwards_total"
	MClusterForwardErrors    = "bitgen_cluster_forward_errors_total"
	MClusterHedges           = "bitgen_cluster_hedges_total"
	MClusterDegradedServes   = "bitgen_cluster_degraded_serves_total"
	MClusterStandbyServes    = "bitgen_cluster_standby_serves_total"
	MClusterReceivedForwards = "bitgen_cluster_received_forwards_total"
	MClusterPeerSkips        = "bitgen_cluster_peer_skips_total"
	MClusterPeerFlips        = "bitgen_cluster_peer_breaker_transitions_total"

	// Distributed observability (registered by internal/serve; absent
	// from library-only expositions).
	MObsEvents        = "bitgen_obs_events_total"
	MObsEventsDropped = "bitgen_obs_events_dropped_total"
	MObsBundleWrites  = "bitgen_obs_bundle_writes_total"
	MObsBundleErrors  = "bitgen_obs_bundle_errors_total"
	MObsBundleBytes   = "bitgen_obs_bundle_last_bytes"

	// SLO layer (registered by internal/serve per endpoint).
	MSLORequests = "bitgen_slo_requests_total"
	MSLOGood     = "bitgen_slo_good_total"
	MSLOBreaches = "bitgen_slo_breaches_total"
	MSLOLatency  = "bitgen_slo_request_seconds"
	MSLOBurnFast = "bitgen_slo_burn_rate_fast"
	MSLOBurnSlow = "bitgen_slo_burn_rate_slow"
	MSLOBudget   = "bitgen_slo_error_budget_remaining"

	// Resilience ladder (mirrors internal/resilience counters).
	MLadderCalls       = "bitgen_ladder_calls_total"
	MLadderFallbacks   = "bitgen_ladder_fallbacks_total"
	MLadderRetries     = "bitgen_ladder_retries_total"
	MLadderCrossChecks = "bitgen_ladder_crosschecks_total"
	MLadderMismatches  = "bitgen_ladder_mismatches_total"
	MBackendServed     = "bitgen_backend_served_total"
	MBackendFailures   = "bitgen_backend_failures_total"
	MBreakerFlips      = "bitgen_breaker_transitions_total"
)

// Help strings, exposed so registration sites stay consistent.
const (
	HScans          = "Scans served through the public Engine (Run, CountOnly, ScanReader chunks)."
	HScanErrors     = "Scans that returned an error."
	HScanInputBytes = "Input bytes scanned."
	HMatches        = "Match end positions reported."
	HScanHostSecs   = "Host wall-clock seconds per scan (simulator time, not modeled GPU time)."

	HKernelLaunches  = "Simulated kernel launches (one per CTA group per scan)."
	HModeledSecs     = "Modeled GPU kernel seconds (calibrated cost model)."
	HDRAMReadBytes   = "Modeled global-memory read bytes."
	HDRAMWriteBytes  = "Modeled global-memory write bytes."
	HSMemReadBytes   = "Modeled shared-memory read bytes."
	HSMemWriteBytes  = "Modeled shared-memory write bytes."
	HBarriers        = "CTA-wide synchronization barriers."
	HShiftBarriers   = "Barriers caused by SHIFT instructions."
	HUnitOps         = "W-bit integer unit operations."
	HWindows         = "Block-window iterations executed."
	HGuardChecks     = "Zero-block-skipping guards evaluated."
	HGuardSkips      = "Zero-block-skipping guards taken."
	HSkippedStmts    = "Statements skipped by taken guards."
	HCommittedBits   = "Output bits committed (dependency-aware thread-data mapping)."
	HRecomputedBits  = "Overlap bits recomputed (DTM overhead)."
	HTransposeBytes  = "Bytes moved by the S2P transpose preprocessing kernel."
	HZBSSkipRatio    = "Taken/evaluated guard ratio of the most recent scan (why block-skipping was or was not effective)."
	HOverlapFallback = "Loops or carries that overflowed the overlap limit and were materialized stream-wise."

	HCompileSeconds      = "Wall-clock seconds to compile a pattern set into an engine (lowering, passes, state packing)."
	HEngineResidentBytes = "Measured resident bytes of durable compiled state per engine (packed or boxed programs, output tables, shared class program)."

	HServeRequests        = "HTTP requests admitted, per endpoint."
	HServeErrors          = "HTTP requests that returned an error status, per endpoint."
	HServeRejected        = "Requests rejected at admission (queue full or draining)."
	HServeInFlight        = "Requests currently executing."
	HServeQueueDepth      = "Requests queued at admission, waiting for an execution slot."
	HServeCacheHits       = "Engine-cache lookups served by an already-compiled engine."
	HServeCacheMisses     = "Engine-cache lookups that had to compile (or wait for a compile)."
	HServeCacheEvictions  = "Compiled engines evicted from the LRU cache."
	HServeCompiles        = "Pattern-set compilations executed (singleflight: concurrent first requests share one)."
	HServeBatches         = "Coalesced same-engine batches executed through RunMulti."
	HServeBatchedRequests = "Match requests served through a coalesced batch."
	HServeDrains          = "Graceful drains initiated."
	HServeResidentBytes   = "Measured resident bytes of the engines in the LRU cache: per-engine private state plus each interned shared block counted once (refcount-aware; decremented on evict and release)."

	HSnapSaves           = "Engine snapshots persisted (atomic write-rename)."
	HSnapSaveErrors      = "Snapshot persistence attempts that failed (I/O or injected fault)."
	HSnapLoads           = "Engines successfully restored from a verified snapshot."
	HSnapWarmStarts      = "Engines warm-started into the serve cache from the snapshot dir or a peer at boot."
	HSnapVerifyFailures  = "Snapshots refused at load, per reason (corrupt, truncated, version-mismatch, options-mismatch, key-mismatch)."
	HSnapQuarantines     = "Corrupt or truncated snapshots renamed to a .bad sidecar."
	HSnapScrubRuns       = "Background integrity-scrub passes over the snapshot store."
	HSnapPeerFetches     = "Snapshots fetched from a ring owner/successor on cache miss."
	HSnapPeerFetchErrors = "Peer snapshot fetches that failed or returned no snapshot."

	HClusterPeers            = "Replicas on the consistent-hash ring (including this node)."
	HClusterLocalServes      = "Requests for keys this node owns, served locally."
	HClusterForwards         = "Requests forwarded to a peer, per peer."
	HClusterForwardErrors    = "Forwards that failed (network fault, 5xx, or deadline), per peer."
	HClusterHedges           = "Hedged secondary forwards launched to the successor replica."
	HClusterDegradedServes   = "Keys served by local compile because every live owner was unreachable."
	HClusterStandbyServes    = "Keys served locally by the warm-standby successor while the owner was down."
	HClusterReceivedForwards = "Forwarded requests received from peers (served locally, never re-forwarded)."
	HClusterPeerSkips        = "Forward attempts skipped by an open peer breaker, per peer."
	HClusterPeerFlips        = "Peer breaker state transitions, per peer and destination state."

	HObsEvents        = "Structured events admitted to the event ring, per level."
	HObsEventsDropped = "Structured events shed by the Debug/Info rate limiter."
	HObsBundleWrites  = "Diagnostic flight-recorder bundles written, per trigger."
	HObsBundleErrors  = "Diagnostic bundle writes that failed."
	HObsBundleBytes   = "Size in bytes of the most recently written diagnostic bundle."

	HSLORequests = "Requests observed by the SLO tracker, per endpoint."
	HSLOGood     = "Requests within the endpoint's latency objective and non-erroring."
	HSLOBreaches = "Requests outside the endpoint's objective (error or too slow)."
	HSLOLatency  = "End-to-end request latency seconds, per endpoint."
	HSLOBurnFast = "Error-budget burn rate over the fast (short) window, per endpoint."
	HSLOBurnSlow = "Error-budget burn rate over the slow (long) window, per endpoint."
	HSLOBudget   = "Fraction of the error budget remaining since process start, per endpoint."

	HLadderCalls       = "Resilience ladder invocations."
	HLadderFallbacks   = "Calls served by a rung other than the first."
	HLadderRetries     = "Transient-fault retries across all rungs."
	HLadderCrossChecks = "Sampled differential cross-checks executed."
	HLadderMismatches  = "Cross-checks that caught a wrong match set."
	HBackendServed     = "Calls served, per ladder rung."
	HBackendFailures   = "Failover-class failures, per ladder rung."
	HBreakerFlips      = "Circuit-breaker state transitions, per rung and destination state."
)

// ScanSecondsBuckets are the histogram bounds for per-scan host latency:
// 100µs to 10s, wide enough for both micro-inputs and full-corpus scans.
var ScanSecondsBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CompileSecondsBuckets are the histogram bounds for per-compile wall
// clock: 1ms (tiny sets) to 2 minutes (100k-pattern megasets).
var CompileSecondsBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// ResidentBytesBuckets are the histogram bounds for per-engine resident
// state: 4 KiB to 1 GiB in powers of four.
var ResidentBytesBuckets = []float64{
	4096, 16384, 65536, 262144, 1048576,
	4194304, 16777216, 67108864, 268435456, 1073741824,
}

// RegisterBase eagerly registers every scan-level and modeled-kernel
// family, so a scrape taken before the first scan (or before the first
// rare event, like an overlap fallback) still exposes the full schema.
// The resilience families are registered by resilience.New, which knows
// the backend label values. Nil-safe on r.
func RegisterBase(r *Registry) {
	r.Counter(MScans, HScans)
	r.Counter(MScanErrors, HScanErrors)
	r.Counter(MScanInputBytes, HScanInputBytes)
	r.Counter(MMatches, HMatches)
	r.Histogram(MScanHostSecs, HScanHostSecs, ScanSecondsBuckets)
	r.Counter(MKernelLaunches, HKernelLaunches)
	r.Counter(MModeledSecs, HModeledSecs)
	r.Counter(MDRAMReadBytes, HDRAMReadBytes)
	r.Counter(MDRAMWriteBytes, HDRAMWriteBytes)
	r.Counter(MSMemReadBytes, HSMemReadBytes)
	r.Counter(MSMemWriteBytes, HSMemWriteBytes)
	r.Counter(MBarriers, HBarriers)
	r.Counter(MShiftBarriers, HShiftBarriers)
	r.Counter(MUnitOps, HUnitOps)
	r.Counter(MWindows, HWindows)
	r.Counter(MGuardChecks, HGuardChecks)
	r.Counter(MGuardSkips, HGuardSkips)
	r.Counter(MSkippedStmts, HSkippedStmts)
	r.Counter(MCommittedBits, HCommittedBits)
	r.Counter(MRecomputedBits, HRecomputedBits)
	r.Counter(MTransposeBytes, HTransposeBytes)
	r.Gauge(MZBSSkipRatio, HZBSSkipRatio)
	r.Counter(MOverlapFallback, HOverlapFallback)
	r.Histogram(MCompileSeconds, HCompileSeconds, CompileSecondsBuckets)
	r.Histogram(MEngineResidentBytes, HEngineResidentBytes, ResidentBytesBuckets)
}
