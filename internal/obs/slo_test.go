package obs

import (
	"testing"
	"time"
)

func newTestSLO(clk *manualClock, onBurn func(string, float64)) *SLO {
	return NewSLO(SLOConfig{
		Objectives: map[string]SLOObjective{
			"match": {LatencyP99: 100 * time.Millisecond, Availability: 0.5},
		},
		BucketDur:         time.Second,
		FastWindow:        4 * time.Second,
		SlowWindow:        12 * time.Second,
		FastBurnThreshold: 1.5,
		MinWindowRequests: 10,
		Now:               clk.now,
		OnFastBurn:        onBurn,
	})
}

func TestSLONilSafe(t *testing.T) {
	var s *SLO
	s.Observe("match", time.Millisecond, false)
	if rep := s.Report(); len(rep.Endpoints) != 0 {
		t.Fatal("nil SLO reported endpoints")
	}
}

// TestSLOBurnRateMath checks the classification and burn arithmetic:
// good = not failed AND within the latency objective; burn =
// (bad/total)/(1-availability). With availability 0.5 the error budget is
// 0.5, so a half-bad window burns at exactly 1.0.
func TestSLOBurnRateMath(t *testing.T) {
	clk := &manualClock{t: time.Unix(5000, 0)}
	s := newTestSLO(clk, nil)
	for i := 0; i < 4; i++ {
		s.Observe("match", 50*time.Millisecond, false) // good
	}
	s.Observe("match", 200*time.Millisecond, false) // slow success: bad
	for i := 0; i < 4; i++ {
		s.Observe("match", 10*time.Millisecond, true) // failed: bad
	}
	s.Observe("match", 300*time.Millisecond, true) // failed and slow: one bad, not two

	rep := s.Report()
	if len(rep.Endpoints) != 1 {
		t.Fatalf("endpoints = %d, want 1", len(rep.Endpoints))
	}
	ep := rep.Endpoints[0]
	if ep.Endpoint != "match" || ep.Total != 10 || ep.Good != 4 {
		t.Fatalf("got %+v, want match total=10 good=4", ep)
	}
	if ep.Compliance != 0.4 {
		t.Fatalf("compliance = %g, want 0.4", ep.Compliance)
	}
	// bad fraction 0.6 against budget 0.5: burn 1.2 over both windows.
	if ep.BurnRateFast != 1.2 || ep.BurnRateSlow != 1.2 {
		t.Fatalf("burn fast/slow = %g/%g, want 1.2/1.2", ep.BurnRateFast, ep.BurnRateSlow)
	}
	// Budget spent: 0.6/0.5 > 1 → remaining clamps at 0.
	if ep.ErrorBudgetRemaining != 0 {
		t.Fatalf("budget remaining = %g, want 0", ep.ErrorBudgetRemaining)
	}
	if ep.ObjectiveP99MS != 100 {
		t.Fatalf("objective = %gms, want 100ms", ep.ObjectiveP99MS)
	}
}

// TestSLOFastBurnEdgeTriggered: OnFastBurn fires once on entering fast
// burn, stays silent while burning, and re-arms only after the burn rate
// drops below the threshold.
func TestSLOFastBurnEdgeTriggered(t *testing.T) {
	clk := &manualClock{t: time.Unix(5000, 0)}
	var fires []float64
	s := newTestSLO(clk, func(ep string, burn float64) {
		if ep != "match" {
			t.Errorf("fired for endpoint %q", ep)
		}
		fires = append(fires, burn)
	})
	// Nine bad requests: window below MinWindowRequests, must not fire.
	for i := 0; i < 9; i++ {
		s.Observe("match", time.Millisecond, true)
	}
	if len(fires) != 0 {
		t.Fatalf("fired below MinWindowRequests: %v", fires)
	}
	// Tenth bad request: burn (10/10)/0.5 = 2.0 ≥ 1.5 → one fire.
	s.Observe("match", time.Millisecond, true)
	if len(fires) != 1 || fires[0] != 2.0 {
		t.Fatalf("fires = %v, want [2]", fires)
	}
	// Still burning: more bad traffic must not re-fire.
	s.Observe("match", time.Millisecond, true)
	s.Observe("match", time.Millisecond, true)
	if len(fires) != 1 {
		t.Fatalf("re-fired while already burning: %v", fires)
	}
	if !s.Report().Endpoints[0].FastBurn {
		t.Fatal("report should flag fast burn")
	}
	// Recover: good traffic until 12 bad / 17 total = 0.706 bad → burn
	// 1.41 < 1.5 re-arms the trigger.
	for i := 0; i < 5; i++ {
		s.Observe("match", time.Millisecond, false)
	}
	if len(fires) != 1 {
		t.Fatalf("recovery fired: %v", fires)
	}
	// Degrade again: 14 bad / 19 total = 0.737 bad → burn 1.47 still
	// below; 15/20 = 0.75 → burn 1.5 hits the threshold → second fire.
	s.Observe("match", time.Millisecond, true)
	s.Observe("match", time.Millisecond, true)
	s.Observe("match", time.Millisecond, true)
	if len(fires) != 2 {
		t.Fatalf("fires = %v, want a second fire at burn 1.5", fires)
	}
	if fires[1] != 1.5 {
		t.Fatalf("second fire burn = %g, want 1.5", fires[1])
	}
}

// TestSLOWindowRotation: idling past the whole slow window empties the
// burn windows while lifetime totals persist.
func TestSLOWindowRotation(t *testing.T) {
	clk := &manualClock{t: time.Unix(5000, 0)}
	s := newTestSLO(clk, nil)
	for i := 0; i < 20; i++ {
		s.Observe("match", time.Millisecond, true)
	}
	if rep := s.Report(); rep.Endpoints[0].BurnRateFast != 2.0 {
		t.Fatalf("burn = %g, want 2.0", rep.Endpoints[0].BurnRateFast)
	}
	clk.advance(13 * time.Second) // beyond the 12s slow window
	s.Observe("match", time.Millisecond, false)
	ep := s.Report().Endpoints[0]
	if ep.BurnRateFast != 0 || ep.BurnRateSlow != 0 {
		t.Fatalf("windows kept stale buckets: fast %g slow %g", ep.BurnRateFast, ep.BurnRateSlow)
	}
	if ep.Total != 21 || ep.Good != 1 {
		t.Fatalf("lifetime totals lost: %+v", ep)
	}
}

// TestSLOUnknownEndpointDefaults: endpoints without a configured
// objective are tracked with the default availability and no latency
// criterion.
func TestSLOUnknownEndpointDefaults(t *testing.T) {
	clk := &manualClock{t: time.Unix(5000, 0)}
	s := newTestSLO(clk, nil)
	s.Observe("scan", time.Hour, false) // slow but no latency objective → good
	var ep SLOEndpointReport
	for _, e := range s.Report().Endpoints {
		if e.Endpoint == "scan" {
			ep = e
		}
	}
	if ep.Endpoint != "scan" || ep.Good != 1 || ep.Availability != DefaultAvailability {
		t.Fatalf("scan endpoint = %+v", ep)
	}
	if ep.ObjectiveP99MS != 0 {
		t.Fatalf("scan picked up a latency objective: %+v", ep)
	}
}

// TestSLOMetricsRegistered: with a registry attached, observations land
// in the bitgen_slo_* families.
func TestSLOMetricsRegistered(t *testing.T) {
	clk := &manualClock{t: time.Unix(5000, 0)}
	reg := NewRegistry()
	s := NewSLO(SLOConfig{
		Objectives: map[string]SLOObjective{"match": {Availability: 0.5}},
		Now:        clk.now,
		Metrics:    reg,
	})
	s.Observe("match", 10*time.Millisecond, false)
	s.Observe("match", 10*time.Millisecond, true)
	snap := reg.Snapshot()
	key := MSLORequests + `{endpoint="match"}`
	if got := snap.Counters[key]; got != 2 {
		t.Fatalf("%s = %g, want 2", key, got)
	}
	if got := snap.Counters[MSLOGood+`{endpoint="match"}`]; got != 1 {
		t.Fatalf("good = %g, want 1", got)
	}
	if got := snap.Counters[MSLOBreaches+`{endpoint="match"}`]; got != 1 {
		t.Fatalf("breaches = %g, want 1", got)
	}
	h, ok := snap.Histograms[MSLOLatency+`{endpoint="match"}`]
	if !ok || h.Count != 2 {
		t.Fatalf("latency histogram = %+v ok=%v", h, ok)
	}
}
