package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// manualClock is a hand-advanced clock for rate-limit tests.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *manualClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Emit(LevelError, "x", TraceID{}, FStr("k", "v"))
	if l.Events() != nil || l.ByTrace(NewTraceID()) != nil {
		t.Fatal("nil log returned events")
	}
	if l.Total() != 0 || l.Dropped() != 0 {
		t.Fatal("nil log has counts")
	}
}

// TestEventLogDisabledZeroAlloc is the ISSUE's cost contract: emitting
// into a nil (disabled) event log must not allocate — the variadic field
// slice stays on the caller's stack. Guarded here as a test so -race CI
// runs it; BenchmarkEventLogDisabled reports the same number.
func TestEventLogDisabledZeroAlloc(t *testing.T) {
	var l *EventLog
	tr := NewTraceID()
	allocs := testing.AllocsPerRun(1000, func() {
		l.Emit(LevelWarn, "breaker", tr,
			FStr("peer", "p"), FStr("from", "closed"), FStr("to", "open"),
			FInt("streak", 3), FFloat("burn", 1.5), FBool("hedged", true))
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocates %v times per call, want 0", allocs)
	}
}

func BenchmarkEventLogDisabled(b *testing.B) {
	var l *EventLog
	tr := NewTraceID()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit(LevelWarn, "breaker", tr,
			FStr("peer", "p"), FStr("from", "closed"), FStr("to", "open"),
			FInt("streak", 3))
	}
}

func TestEventLogRingRotation(t *testing.T) {
	l := NewEventLog(EventLogConfig{Capacity: 4, RatePerSec: -1})
	for i := 0; i < 7; i++ {
		l.Emit(LevelInfo, fmt.Sprintf("ev%d", i), TraceID{})
	}
	if l.Total() != 7 {
		t.Fatalf("total = %d, want 7", l.Total())
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("ev%d", i+3); ev.Type != want {
			t.Fatalf("evs[%d] = %q, want %q (oldest first)", i, ev.Type, want)
		}
	}
}

func TestEventLogMinLevel(t *testing.T) {
	l := NewEventLog(EventLogConfig{Capacity: 8, MinLevel: LevelWarn, RatePerSec: -1})
	l.Emit(LevelDebug, "d", TraceID{})
	l.Emit(LevelInfo, "i", TraceID{})
	l.Emit(LevelWarn, "w", TraceID{})
	l.Emit(LevelError, "e", TraceID{})
	evs := l.Events()
	if len(evs) != 2 || evs[0].Type != "w" || evs[1].Type != "e" {
		t.Fatalf("MinLevel=warn admitted %v", evs)
	}
}

func TestEventLogRateLimitSparesWarnings(t *testing.T) {
	clk := &manualClock{t: time.Unix(1000, 0)}
	l := NewEventLog(EventLogConfig{Capacity: 64, RatePerSec: 2, Burst: 2, Now: clk.now})
	for i := 0; i < 5; i++ {
		l.Emit(LevelInfo, "chatty", TraceID{})
	}
	if got := l.Total(); got != 2 {
		t.Fatalf("admitted %d info events with burst 2, want 2", got)
	}
	if got := l.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	// Warn and Error bypass the limiter even with zero tokens.
	l.Emit(LevelWarn, "anomaly", TraceID{})
	l.Emit(LevelError, "worse", TraceID{})
	if got := l.Total(); got != 4 {
		t.Fatalf("warn/error were shed: total %d, want 4", got)
	}
	// Tokens refill with time: 1s at 2/s admits two more info events.
	clk.advance(time.Second)
	l.Emit(LevelInfo, "later1", TraceID{})
	l.Emit(LevelInfo, "later2", TraceID{})
	l.Emit(LevelInfo, "later3", TraceID{})
	if got := l.Total(); got != 6 {
		t.Fatalf("after refill total = %d, want 6", got)
	}
}

func TestEventLogOnEventFiresWarnAndAbove(t *testing.T) {
	var fired []string
	l := NewEventLog(EventLogConfig{
		Capacity:   8,
		RatePerSec: -1,
		OnEvent:    func(ev LogEvent) { fired = append(fired, ev.Type) },
	})
	l.Emit(LevelDebug, "d", TraceID{})
	l.Emit(LevelInfo, "i", TraceID{})
	l.Emit(LevelWarn, "w", TraceID{})
	l.Emit(LevelError, "e", TraceID{})
	if len(fired) != 2 || fired[0] != "w" || fired[1] != "e" {
		t.Fatalf("OnEvent fired for %v, want [w e]", fired)
	}
}

func TestEventLogByTrace(t *testing.T) {
	l := NewEventLog(EventLogConfig{Capacity: 16, RatePerSec: -1})
	tr := NewTraceID()
	l.Emit(LevelInfo, "other", NewTraceID())
	l.Emit(LevelWarn, "mine1", tr)
	l.Emit(LevelInfo, "untraced", TraceID{})
	l.Emit(LevelWarn, "mine2", tr)
	got := l.ByTrace(tr)
	if len(got) != 2 || got[0].Type != "mine1" || got[1].Type != "mine2" {
		t.Fatalf("ByTrace = %v", got)
	}
	if l.ByTrace(TraceID{}) != nil {
		t.Fatal("ByTrace(zero) should return nothing")
	}
}

func TestEventLogFieldOverflowTruncates(t *testing.T) {
	l := NewEventLog(EventLogConfig{Capacity: 4, RatePerSec: -1})
	fields := make([]Field, MaxEventFields+3)
	for i := range fields {
		fields[i] = FInt(fmt.Sprintf("f%d", i), int64(i))
	}
	l.Emit(LevelInfo, "wide", TraceID{}, fields...)
	evs := l.Events()
	if len(evs) != 1 || int(evs[0].NFields) != MaxEventFields {
		t.Fatalf("wide event kept %d fields, want %d", evs[0].NFields, MaxEventFields)
	}
}

// TestEventJSONRoundTrip: MarshalJSON → UnmarshalJSON → MarshalJSON is
// byte-identical, so stitched fragments from other nodes render the same
// as local events (integral floats come back as ints, field order is
// canonical because the JSON object is rendered from a sorted map).
func TestEventJSONRoundTrip(t *testing.T) {
	l := NewEventLog(EventLogConfig{Capacity: 4, RatePerSec: -1})
	l.Emit(LevelWarn, "breaker", NewTraceID(),
		FStr("peer", "127.0.0.1:9"), FInt("streak", 3),
		FFloat("burn", 14.4), FBool("open", true))
	ev := l.Events()[0]
	first, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var back LogEvent
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip drifted:\n first %s\nsecond %s", first, second)
	}
	if v, ok := back.Field("streak"); !ok || v != "3" {
		t.Fatalf("streak came back %q", v)
	}
	if v, ok := back.Field("burn"); !ok || v != "14.4" {
		t.Fatalf("burn came back %q", v)
	}
}

// TestEventLogConcurrentEmitAndDump is the -race satellite: writers
// hammer the ring from many goroutines while readers snapshot, filter,
// and JSON-dump it concurrently (the flight recorder's bundle path).
func TestEventLogConcurrentEmitAndDump(t *testing.T) {
	l := NewEventLog(EventLogConfig{Capacity: 128, RatePerSec: -1})
	tr := NewTraceID()
	const writers, readers, perWriter = 8, 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Emit(LevelWarn, "load", tr,
					FInt("writer", int64(w)), FInt("seq", int64(i)))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = l.Events()
				_ = l.ByTrace(tr)
				var buf bytes.Buffer
				if err := l.WriteJSON(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := l.Total(); got != writers*perWriter {
		t.Fatalf("total = %d, want %d", got, writers*perWriter)
	}
	if got := len(l.Events()); got != 128 {
		t.Fatalf("ring holds %d, want capacity 128", got)
	}
}
