package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant metric label (baked in at registration; there is
// no dynamic label cardinality — every series is declared up front, which
// keeps the exposition stable for golden tests).
type Label struct {
	Key, Val string
}

// L is shorthand for constructing a Label.
func L(key, val string) Label { return Label{Key: key, Val: val} }

// metricKind discriminates instrument families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// atomicFloat is a float64 with atomic add/load (bits + CAS).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value. A nil *Counter ignores
// every method (metrics disabled).
type Counter struct{ v atomicFloat }

// Add increments the counter; negative deltas are ignored (counters are
// monotone by contract).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.v.Add(v)
}

// AddInt is Add for integer event counts.
func (c *Counter) AddInt(v int64) {
	if c == nil || v < 0 {
		return
	}
	c.v.Add(float64(v))
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. A nil *Gauge ignores every
// method.
type Gauge struct{ v atomicFloat }

func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.v.Add(v)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into cumulative buckets (Prometheus
// classic histogram semantics). A nil *Histogram ignores every method.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf implicit
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.sum.Add(v)
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time histogram reading.
type HistogramSnapshot struct {
	// Buckets holds cumulative counts per upper bound, ending with +Inf.
	Buckets []BucketCount
	Sum     float64
	Count   uint64
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	UpperBound float64 // math.Inf(1) for the last bucket
	Count      uint64
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Sum: h.sum.Load(), Count: h.count.Load()}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		s.Buckets = append(s.Buckets, BucketCount{UpperBound: b, Count: cum})
	}
	s.Buckets = append(s.Buckets, BucketCount{UpperBound: math.Inf(1), Count: s.Count})
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) from the cumulative
// buckets by linear interpolation within the containing bucket — the
// same estimate Prometheus's histogram_quantile makes. The last finite
// upper bound is returned for samples in the +Inf bucket; 0 on empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var prevCum uint64
	prevBound := 0.0
	for _, b := range s.Buckets {
		if float64(b.Count) >= target {
			if math.IsInf(b.UpperBound, 1) {
				return prevBound
			}
			in := b.Count - prevCum
			if in == 0 {
				return b.UpperBound
			}
			frac := (target - float64(prevCum)) / float64(in)
			return prevBound + (b.UpperBound-prevBound)*frac
		}
		prevCum = b.Count
		if !math.IsInf(b.UpperBound, 1) {
			prevBound = b.UpperBound
		}
	}
	return prevBound
}

// series is one (family, labelset) instrument.
type series struct {
	labels string // rendered `{k="v",...}` or ""
	// labelList is the sorted label set the rendering came from, kept so
	// histogram exposition can re-render with the `le` label merged in
	// canonical sorted position instead of appended last.
	labelList []Label
	ctr       *Counter
	gauge     *Gauge
	hist      *Histogram
}

// family groups series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series // keyed by rendered labels
}

// Registry holds the full metric set. Registration is idempotent (same
// name + labels returns the same instrument); reads and writes after
// registration are lock-free atomics. A nil *Registry disables metrics:
// every accessor returns a nil instrument whose mutators are no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// sortLabels returns a sorted copy of the label set.
func sortLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := sortLabels(labels)
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Val)
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) get(name, help string, kind metricKind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	key := renderLabels(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, labelList: sortLabels(labels)}
		switch kind {
		case kindCounter:
			s.ctr = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		}
		f.series[key] = s
	}
	return s
}

// Counter registers (or fetches) a counter. Nil-safe.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, help, kindCounter, labels).ctr
}

// Gauge registers (or fetches) a gauge. Nil-safe.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, help, kindGauge, labels).gauge
}

// Histogram registers (or fetches) a histogram with the given bucket
// upper bounds (must be sorted ascending; +Inf is implicit). Nil-safe.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.get(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		// Sort and dedupe the bounds defensively: Observe and the
		// cumulative exposition both assume strictly increasing upper
		// bounds, and an unsorted caller would otherwise produce
		// nondeterministic-looking (and wrong) bucket counts. A finite
		// +Inf sentinel is dropped — the exposition adds it implicitly.
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h := &Histogram{}
		for _, b := range bs {
			if math.IsInf(b, 1) || math.IsNaN(b) {
				continue
			}
			if n := len(h.bounds); n > 0 && h.bounds[n-1] == b {
				continue
			}
			h.bounds = append(h.bounds, b)
		}
		h.counts = make([]atomic.Uint64, len(h.bounds))
		s.hist = h
	}
	return s.hist
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4), families and series in sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("obs: metrics are not enabled")
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		srs := make([]*series, len(keys))
		for i, k := range keys {
			srs[i] = f.series[k]
		}
		r.mu.Unlock()
		for _, s := range srs {
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.ctr.Value()))
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.gauge.Value()))
			case kindHistogram:
				err = writeHistogram(w, f.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s *series) error {
	snap := s.hist.snapshot()
	for _, b := range snap.Buckets {
		labels := renderLabels(append(append([]Label(nil), s.labelList...),
			L("le", formatFloat(b.UpperBound))))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labels, b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatFloat(snap.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, snap.Count)
	return err
}

// Snapshot is a point-in-time copy of every series, keyed by
// "name{labels}" (labels sorted; bare name when unlabeled).
type Snapshot struct {
	Counters   map[string]float64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Counter returns a counter series value by key (0 when absent) — the
// acceptance-test convenience accessor.
func (s Snapshot) Counter(key string) float64 { return s.Counters[key] }

// Snapshot copies the registry. On a nil registry it returns empty maps,
// so callers can index without guarding.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, f := range r.families {
		for lk, s := range f.series {
			key := name + lk
			switch f.kind {
			case kindCounter:
				snap.Counters[key] = s.ctr.Value()
			case kindGauge:
				snap.Gauges[key] = s.gauge.Value()
			case kindHistogram:
				if s.hist != nil {
					snap.Histograms[key] = s.hist.snapshot()
				}
			}
		}
	}
	return snap
}

// ExpvarFunc returns an expvar.Func exposing the registry snapshot as
// JSON, for mounting on the standard /debug/vars page.
func (r *Registry) ExpvarFunc() expvar.Func {
	return expvar.Func(func() any { return r.Snapshot() })
}

// PublishExpvar publishes the registry under the given expvar name; it is
// a no-op (returning false) when the name is already taken, so repeated
// engine construction does not panic the process.
func (r *Registry) PublishExpvar(name string) bool {
	if r == nil || expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, r.ExpvarFunc())
	return true
}
