package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed step per call, giving deterministic spans.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func newTestTracer(capacity int) *Tracer {
	clk := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	return NewTracer(TracerConfig{Capacity: capacity, Now: clk.now})
}

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("c", "n", 0)
	if sp != nil {
		t.Fatalf("nil tracer Start = %v, want nil", sp)
	}
	sp.Arg("k", 1)
	sp.End()
	tr.Instant("c", "n", 0)
	tr.NameLane(1, "x")
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer reports enabled")
	}
	o.Span("c", "n", 0).Arg("k", 1).End()
	o.Instant("c", "n", 0)
	if o.Reg() != nil {
		t.Fatal("nil observer Reg() != nil")
	}
}

func TestSpanRecording(t *testing.T) {
	tr := newTestTracer(16)
	sp := tr.Start("compile", "lower-group", 0).Arg("group", 3)
	tr.Instant("resilience", "failover", 0, A("from", "bitstream"))
	sp.End()
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// The instant was recorded first (spans record at End).
	if evs[0].Ph != 'i' || evs[0].Name != "failover" {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Ph != 'X' || evs[1].Name != "lower-group" || evs[1].Dur <= 0 {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	if len(evs[1].Args) != 1 || evs[1].Args[0].Key != "group" {
		t.Fatalf("span args = %+v", evs[1].Args)
	}
}

func TestRingWrapKeepsNewestAndCountsDropped(t *testing.T) {
	tr := newTestTracer(4)
	for i := 0; i < 10; i++ {
		tr.Instant("t", "e", i)
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := tr.Events()
	for i, ev := range evs {
		if ev.Lane != 6+i {
			t.Fatalf("event %d lane = %d, want %d (oldest-first order)", i, ev.Lane, 6+i)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := newTestTracer(64)
	tr.NameLane(1, "kernel/group-0")
	outer := tr.Start("scan", "scan", 0)
	inner := tr.Start("scan", "kernel-launch", 1).Arg("group", 0).Arg("windows", 12)
	inner.End()
	outer.End()
	tr.Instant("resilience", "breaker", 0, A("to", "open"))

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Unit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	var sawProcess, sawLaneName, sawSpan, sawInstant bool
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "process_name" {
				sawProcess = true
			}
			if args, ok := ev["args"].(map[string]any); ok && args["name"] == "kernel/group-0" {
				sawLaneName = true
			}
		case "X":
			sawSpan = true
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("X event without dur: %v", ev)
			}
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("X event without ts: %v", ev)
			}
		case "i":
			sawInstant = true
			if ev["s"] != "t" {
				t.Fatalf("instant without scope: %v", ev)
			}
		}
	}
	if !sawProcess || !sawLaneName || !sawSpan || !sawInstant {
		t.Fatalf("export missing record kinds: process=%v lane=%v span=%v instant=%v",
			sawProcess, sawLaneName, sawSpan, sawInstant)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 1 << 10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Start("t", "work", g)
				tr.Instant("t", "tick", g)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != 1600 {
		t.Fatalf("recorded %d events, want 1600", got)
	}
}
