package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x", "h").Add(1)
	r.Counter("x", "h").Inc()
	r.Gauge("y", "h").Set(2)
	r.Histogram("z", "h", []float64{1}).Observe(0.5)
	if v := r.Counter("x", "h").Value(); v != 0 {
		t.Fatalf("nil counter value = %v", v)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	if err := r.WritePrometheus(&strings.Builder{}); err == nil {
		t.Fatal("nil registry WritePrometheus did not error")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bitgen_test_total", "test counter")
	c.Add(2.5)
	c.AddInt(3)
	c.Add(-1) // ignored: counters are monotone
	if got := c.Value(); got != 5.5 {
		t.Fatalf("counter = %v, want 5.5", got)
	}
	if again := r.Counter("bitgen_test_total", "test counter"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("bitgen_test_ratio", "test gauge")
	g.Set(0.25)
	g.Add(0.25)
	if got := g.Value(); got != 0.5 {
		t.Fatalf("gauge = %v, want 0.5", got)
	}
	h := r.Histogram("bitgen_test_seconds", "test histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	snap := h.snapshot()
	if snap.Count != 5 || snap.Sum != 56.05 {
		t.Fatalf("histogram count=%d sum=%v", snap.Count, snap.Sum)
	}
	wantCum := []uint64{1, 3, 4, 5}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(snap.Buckets[len(snap.Buckets)-1].UpperBound, 1) {
		t.Fatal("last bucket bound is not +Inf")
	}
}

func TestLabeledSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("bitgen_served_total", "served", L("backend", "bitstream"))
	b := r.Counter("bitgen_served_total", "served", L("backend", "nfa"))
	if a == b {
		t.Fatal("distinct label sets share a counter")
	}
	a.Inc()
	snap := r.Snapshot()
	if snap.Counter(`bitgen_served_total{backend="bitstream"}`) != 1 {
		t.Fatalf("snapshot keys: %+v", snap.Counters)
	}
	if snap.Counter(`bitgen_served_total{backend="nfa"}`) != 0 {
		t.Fatalf("unlabeled rung missing: %+v", snap.Counters)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("bitgen_scans_total", "Scans served.").AddInt(3)
	r.Gauge("bitgen_ratio", "A ratio.").Set(0.75)
	r.Counter("bitgen_served_total", "Served.", L("backend", "bitstream")).Inc()
	r.Histogram("bitgen_scan_seconds", "Latency.", []float64{0.01, 0.1}).Observe(0.05)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP bitgen_scans_total Scans served.\n# TYPE bitgen_scans_total counter\nbitgen_scans_total 3\n",
		"# TYPE bitgen_ratio gauge\nbitgen_ratio 0.75\n",
		"bitgen_served_total{backend=\"bitstream\"} 1\n",
		"# TYPE bitgen_scan_seconds histogram\n",
		"bitgen_scan_seconds_bucket{le=\"0.01\"} 0\n",
		"bitgen_scan_seconds_bucket{le=\"0.1\"} 1\n",
		"bitgen_scan_seconds_bucket{le=\"+Inf\"} 1\n",
		"bitgen_scan_seconds_sum 0.05\n",
		"bitgen_scan_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families render in sorted order.
	if strings.Index(out, "bitgen_ratio") > strings.Index(out, "bitgen_scan_seconds") {
		t.Fatalf("families unsorted:\n%s", out)
	}
}

func TestExpvarBridge(t *testing.T) {
	r := NewRegistry()
	r.Counter("bitgen_scans_total", "h").AddInt(7)
	raw := r.ExpvarFunc().String()
	var snap struct {
		Counters map[string]float64
	}
	if err := json.Unmarshal([]byte(raw), &snap); err != nil {
		t.Fatalf("expvar output is not JSON: %v\n%s", err, raw)
	}
	if snap.Counters["bitgen_scans_total"] != 7 {
		t.Fatalf("expvar snapshot = %+v", snap)
	}
	if !r.PublishExpvar("bitgen_test_metrics") {
		t.Fatal("first publish failed")
	}
	if r.PublishExpvar("bitgen_test_metrics") {
		t.Fatal("duplicate publish did not report false")
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter(MScans, HScans).Inc()
				r.Histogram(MScanHostSecs, HScanHostSecs, ScanSecondsBuckets).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter(MScans, HScans).Value(); got != 8000 {
		t.Fatalf("concurrent counter = %v, want 8000", got)
	}
	if got := r.Snapshot().Histograms[MScanHostSecs].Count; got != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", got)
	}
}
