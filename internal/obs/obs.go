// Package obs is the zero-dependency observability core: a span tracer
// (hierarchical spans over a lock-cheap ring buffer, exportable as Chrome
// trace_event JSON for chrome://tracing / Perfetto), a metrics registry
// (counters, gauges, histograms with a Prometheus text-exposition writer
// and an expvar bridge), and the Observer that carries both through the
// pipeline.
//
// Every hook is nil-safe: instrumented packages call methods on a possibly
// nil *Observer / *Span / *Counter, and a nil receiver compiles down to a
// single pointer check — when observability is disabled (the default) the
// instrumented paths do no allocation, take no lock and record nothing.
// obs imports only the standard library.
package obs

// Observer bundles the observability sinks threaded through the
// pipeline: tracer and metrics (the original pair), plus the serving
// layer's structured event log and request-span store. Any field may be
// nil to enable a subset; a nil *Observer disables everything.
type Observer struct {
	Tracer  *Tracer
	Metrics *Registry
	Events  *EventLog
	Spans   *SpanStore
}

// Enabled reports whether any sink is attached.
func (o *Observer) Enabled() bool {
	return o != nil && (o.Tracer != nil || o.Metrics != nil || o.Events != nil || o.Spans != nil)
}

// Event records a structured event on the observer's event log;
// nil-safe and free when the log is absent.
func (o *Observer) Event(level Level, typ string, trace TraceID, fields ...Field) {
	if o == nil || o.Events == nil {
		return
	}
	o.Events.Emit(level, typ, trace, fields...)
}

// RecordSpan adds a completed request span to the flight-recorder ring;
// nil-safe.
func (o *Observer) RecordSpan(sp ReqSpan) {
	if o == nil || o.Spans == nil {
		return
	}
	o.Spans.Add(sp)
}

// Span starts a span on the observer's tracer; nil-safe (returns a nil
// span that ignores End/Arg when tracing is off).
func (o *Observer) Span(cat, name string, lane int) *Span {
	if o == nil || o.Tracer == nil {
		return nil
	}
	return o.Tracer.Start(cat, name, lane)
}

// Instant records a zero-duration event; nil-safe.
func (o *Observer) Instant(cat, name string, lane int, args ...Arg) {
	if o == nil || o.Tracer == nil {
		return
	}
	o.Tracer.Instant(cat, name, lane, args...)
}

// Reg returns the metrics registry, or nil when metrics are off. Registry
// accessors and instrument mutators are themselves nil-safe, so call
// sites chain freely: o.Reg().Counter(...).Add(1).
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// NameLane labels a trace lane; nil-safe.
func (o *Observer) NameLane(lane int, name string) {
	if o == nil || o.Tracer == nil {
		return
	}
	o.Tracer.NameLane(lane, name)
}
