package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultTraceCapacity is the ring-buffer size (in completed events) when
// TracerConfig.Capacity is zero: large enough for a full compile + scan
// over hundreds of CTA groups, small enough to stay a few MiB resident.
const DefaultTraceCapacity = 1 << 16

// Arg is one key/value annotation attached to a span or instant event.
type Arg struct {
	Key string
	Val any
}

// A is shorthand for constructing an Arg.
func A(key string, val any) Arg { return Arg{Key: key, Val: val} }

// Event is one completed trace record. Start is relative to the tracer's
// epoch; Dur is zero for instant events.
type Event struct {
	Name string
	Cat  string
	Lane int
	Ph   byte // 'X' complete span, 'i' instant
	Sta  time.Duration
	Dur  time.Duration
	Args []Arg
}

// TracerConfig parameterizes a Tracer.
type TracerConfig struct {
	// Capacity is the ring size in events; zero means
	// DefaultTraceCapacity. When the ring wraps, the oldest events are
	// overwritten and counted as dropped.
	Capacity int
	// Now is the clock; nil means time.Now. Tests inject a fake clock for
	// deterministic timestamps.
	Now func() time.Time
}

// Tracer records spans into a fixed-capacity ring. Recording one event
// takes one short critical section (a slot store and a counter bump), so
// tracing stays cheap even with concurrent kernel-launch goroutines; there
// is no per-span allocation beyond the span handle and its args.
type Tracer struct {
	now   func() time.Time
	epoch time.Time

	mu    sync.Mutex
	ring  []Event
	total uint64 // events ever recorded; ring holds the most recent len(ring)
	lanes map[int]string
}

// NewTracer builds a tracer; the epoch (trace time zero) is now.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultTraceCapacity
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Tracer{
		now:   cfg.Now,
		epoch: cfg.Now(),
		ring:  make([]Event, 0, cfg.Capacity),
		lanes: make(map[int]string),
	}
}

// Span is an in-flight span handle. A nil *Span (tracing disabled) ignores
// every method.
type Span struct {
	t    *Tracer
	cat  string
	name string
	lane int
	sta  time.Duration
	args []Arg
}

// Start opens a span on a lane (a Chrome-trace tid: lane 0 is the
// pipeline control flow, kernel launches use 1+group). The span is
// recorded when End is called.
func (t *Tracer) Start(cat, name string, lane int) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, cat: cat, name: name, lane: lane, sta: t.now().Sub(t.epoch)}
}

// Arg attaches an annotation; returns the span for chaining. Nil-safe.
func (s *Span) Arg(key string, val any) *Span {
	if s == nil {
		return nil
	}
	s.args = append(s.args, Arg{Key: key, Val: val})
	return s
}

// End completes and records the span. Nil-safe; End on an already-ended
// span records a duplicate, so call it exactly once (defer works).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.record(Event{
		Name: s.name, Cat: s.cat, Lane: s.lane, Ph: 'X',
		Sta: s.sta, Dur: s.t.now().Sub(s.t.epoch) - s.sta, Args: s.args,
	})
}

// Instant records a zero-duration event (breaker flips, failovers).
func (t *Tracer) Instant(cat, name string, lane int, args ...Arg) {
	if t == nil {
		return
	}
	t.record(Event{Name: name, Cat: cat, Lane: lane, Ph: 'i', Sta: t.now().Sub(t.epoch), Args: args})
}

// NameLane labels a lane for the trace viewer's thread list.
func (t *Tracer) NameLane(lane int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.lanes[lane] = name
	t.mu.Unlock()
}

func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.total%uint64(cap(t.ring))] = ev
	}
	t.total++
	t.mu.Unlock()
}

// Len returns the number of buffered events; Dropped the number
// overwritten after the ring wrapped.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total > uint64(cap(t.ring)) {
		return t.total - uint64(cap(t.ring))
	}
	return 0
}

// Events returns the buffered events in recording order (oldest first).
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if t.total > uint64(cap(t.ring)) {
		head := int(t.total % uint64(cap(t.ring)))
		out = append(out, t.ring[head:]...)
		out = append(out, t.ring[:head]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// chromeEvent is one trace_event JSON record (the subset of the Chrome
// Trace Event Format that chrome://tracing and Perfetto consume).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

const tracePID = 1

// WriteChromeTrace serializes the buffered events as Chrome trace_event
// JSON ("JSON Object Format"): open the file directly in chrome://tracing
// or ui.perfetto.dev. Lanes become threads; metadata events carry the
// process and lane names.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: tracing is not enabled")
	}
	events := t.Events()
	t.mu.Lock()
	laneNames := make(map[int]string, len(t.lanes))
	for k, v := range t.lanes {
		laneNames[k] = v
	}
	dropped := uint64(0)
	if t.total > uint64(cap(t.ring)) {
		dropped = t.total - uint64(cap(t.ring))
	}
	t.mu.Unlock()

	out := chromeTrace{DisplayTimeUnit: "ns"}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: tracePID, Tid: 0,
		Args: map[string]any{"name": "bitgen"},
	})
	// Name every lane that appears, registered or not, so the viewer's
	// thread list is complete and deterministic.
	seen := map[int]bool{}
	for _, ev := range events {
		seen[ev.Lane] = true
	}
	lanes := make([]int, 0, len(seen))
	for lane := range seen {
		lanes = append(lanes, lane)
	}
	sort.Ints(lanes)
	for _, lane := range lanes {
		name := laneNames[lane]
		if name == "" {
			if lane == 0 {
				name = "pipeline"
			} else {
				name = fmt.Sprintf("lane-%d", lane)
			}
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: tracePID, Tid: lane,
			Args: map[string]any{"name": name},
		})
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name, Cat: ev.Cat, Pid: tracePID, Tid: ev.Lane,
			Ts: float64(ev.Sta) / float64(time.Microsecond),
		}
		if len(ev.Args) > 0 {
			ce.Args = make(map[string]any, len(ev.Args))
			for _, a := range ev.Args {
				ce.Args[a.Key] = a.Val
			}
		}
		switch ev.Ph {
		case 'X':
			ce.Ph = "X"
			dur := float64(ev.Dur) / float64(time.Microsecond)
			ce.Dur = &dur
		default:
			ce.Ph = "i"
			ce.Scope = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	if dropped > 0 {
		out.OtherData = map[string]any{"droppedEvents": dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
