package obs

import "sync"

// The flight recorder's core: a ring of recently completed request
// spans. The serve layer records one ReqSpan per finished HTTP request
// (and the cluster router one per forward / snapshot fetch), each
// carrying the distributed trace ID. The same ring backs both
// GET /v1/trace/{traceID} fragments (filter by trace) and the anomaly
// diagnostic bundle (dump the whole ring).

// ReqSpan is one completed request-scoped span. Times are wall-clock
// (unix microseconds) rather than process-monotonic so spans from
// different nodes can be merged onto one timeline.
type ReqSpan struct {
	Trace  string `json:"trace"`
	Span   string `json:"span"`
	Parent string `json:"parent,omitempty"`
	// Name is the span kind: "match", "scan", "snapshot", "forward",
	// "snapshot-fetch".
	Name string `json:"name"`
	// Node is the recording node's advertised URL ("local" standalone).
	Node           string            `json:"node"`
	StartUnixMicro int64             `json:"start_us"`
	DurMicro       int64             `json:"dur_us"`
	Status         int               `json:"status,omitempty"`
	Attrs          map[string]string `json:"attrs,omitempty"`
}

// DefaultSpanCapacity is the flight-recorder ring size when the
// constructor gets zero.
const DefaultSpanCapacity = 2048

// SpanStore is the concurrency-safe request-span ring. A nil store is
// inert.
type SpanStore struct {
	mu    sync.Mutex
	ring  []ReqSpan
	total uint64
}

// NewSpanStore builds a ring holding the last capacity spans
// (DefaultSpanCapacity if capacity <= 0).
func NewSpanStore(capacity int) *SpanStore {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanStore{ring: make([]ReqSpan, 0, capacity)}
}

// Add records one completed span.
func (s *SpanStore) Add(sp ReqSpan) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, sp)
	} else {
		s.ring[s.total%uint64(cap(s.ring))] = sp
	}
	s.total++
	s.mu.Unlock()
}

// Spans returns the buffered spans, oldest first.
func (s *SpanStore) Spans() []ReqSpan {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ReqSpan, 0, len(s.ring))
	if len(s.ring) < cap(s.ring) {
		out = append(out, s.ring...)
		return out
	}
	head := int(s.total % uint64(cap(s.ring)))
	out = append(out, s.ring[head:]...)
	out = append(out, s.ring[:head]...)
	return out
}

// ByTrace returns the buffered spans for one trace ID, oldest first.
func (s *SpanStore) ByTrace(trace string) []ReqSpan {
	if s == nil || trace == "" {
		return nil
	}
	all := s.Spans()
	out := all[:0]
	for _, sp := range all {
		if sp.Trace == trace {
			out = append(out, sp)
		}
	}
	return out
}

// Len returns the number of buffered spans.
func (s *SpanStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ring)
}
