package obs

import (
	"sort"
	"sync"
	"time"
)

// The SLO layer tracks per-endpoint latency/availability objectives the
// way the multi-window burn-rate practice does: every request is "good"
// if it neither errored nor exceeded the endpoint's latency objective;
// the error budget is 1-availability; the burn rate over a window is
// (bad/total)/(1-availability), so burn 1.0 spends the budget exactly at
// the sustainable rate and burn 14.4 over a 5-minute window exhausts a
// 30-day budget in ~2 days (the classic fast-burn page threshold).
// Requests are bucketed into a rolling ring of fixed-duration bins and
// the fast/slow windows are sums over the most recent bins.

// SLOObjective is one endpoint's objective.
type SLOObjective struct {
	// LatencyP99 marks a request "bad" when it takes longer, even if it
	// succeeded. Zero disables the latency criterion.
	LatencyP99 time.Duration
	// Availability is the good-request objective (e.g. 0.999). The error
	// budget is 1-Availability.
	Availability float64
}

// SLOConfig configures NewSLO. Zero values get defaults.
type SLOConfig struct {
	// Objectives maps endpoint name to objective. Endpoints not listed
	// are tracked with DefaultAvailability and no latency criterion.
	Objectives map[string]SLOObjective
	// BucketDur is the rolling-ring resolution (default 5s).
	BucketDur time.Duration
	// FastWindow / SlowWindow are the burn-rate windows (default 5m/1h).
	FastWindow, SlowWindow time.Duration
	// FastBurnThreshold triggers OnFastBurn when the fast-window burn
	// rate reaches it (default 14.4; negative disables).
	FastBurnThreshold float64
	// MinWindowRequests gates burn evaluation: windows with fewer
	// requests are too noisy to page on (default 20).
	MinWindowRequests uint64
	// Now overrides the clock (tests).
	Now func() time.Time
	// Metrics, when set, registers the bitgen_slo_* families.
	Metrics *Registry
	// OnFastBurn fires (edge-triggered, outside the lock) when an
	// endpoint enters fast burn — the flight-recorder anomaly hook.
	OnFastBurn func(endpoint string, burn float64)
}

// DefaultAvailability is the availability objective applied when an
// endpoint has none configured.
const DefaultAvailability = 0.999

// DefaultFastBurnThreshold is the fast-window burn rate that signals an
// anomaly.
const DefaultFastBurnThreshold = 14.4

type sloBucket struct{ good, total uint64 }

type sloEndpoint struct {
	name string
	obj  SLOObjective

	hist     *Histogram
	totalC   *Counter
	goodC    *Counter
	breachC  *Counter
	burnFast *Gauge
	burnSlow *Gauge
	budget   *Gauge

	good, total uint64 // lifetime
	ring        []sloBucket
	head        int       // index of the current bucket
	headStart   time.Time // start of the current bucket
	burning     bool      // inside a fast-burn episode (edge trigger)
}

// SLO is the per-endpoint objective tracker. A nil *SLO is inert.
type SLO struct {
	cfg     SLOConfig
	now     func() time.Time
	nwin    int // ring length: SlowWindow / BucketDur
	nfast   int // buckets in the fast window
	reg     *Registry
	onBurn  func(string, float64)
	mu      sync.Mutex
	eps     map[string]*sloEndpoint
	started time.Time
}

// SLOLatencyBuckets are the histogram bounds for end-to-end request
// latency: 1ms to 30s.
var SLOLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// NewSLO builds an SLO tracker; see SLOConfig.
func NewSLO(cfg SLOConfig) *SLO {
	if cfg.BucketDur <= 0 {
		cfg.BucketDur = 5 * time.Second
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = 5 * time.Minute
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = time.Hour
	}
	if cfg.FastBurnThreshold == 0 {
		cfg.FastBurnThreshold = DefaultFastBurnThreshold
	}
	if cfg.MinWindowRequests == 0 {
		cfg.MinWindowRequests = 20
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	nwin := int(cfg.SlowWindow / cfg.BucketDur)
	if nwin < 1 {
		nwin = 1
	}
	nfast := int(cfg.FastWindow / cfg.BucketDur)
	if nfast < 1 {
		nfast = 1
	}
	if nfast > nwin {
		nfast = nwin
	}
	return &SLO{
		cfg:     cfg,
		now:     now,
		nwin:    nwin,
		nfast:   nfast,
		reg:     cfg.Metrics,
		onBurn:  cfg.OnFastBurn,
		eps:     make(map[string]*sloEndpoint),
		started: now(),
	}
}

func (s *SLO) endpointLocked(name string, now time.Time) *sloEndpoint {
	ep := s.eps[name]
	if ep != nil {
		return ep
	}
	obj, ok := s.cfg.Objectives[name]
	if !ok {
		obj = SLOObjective{Availability: DefaultAvailability}
	}
	if obj.Availability <= 0 || obj.Availability >= 1 {
		obj.Availability = DefaultAvailability
	}
	ep = &sloEndpoint{
		name:      name,
		obj:       obj,
		ring:      make([]sloBucket, s.nwin),
		headStart: now,
	}
	if s.reg != nil {
		lbl := L("endpoint", name)
		ep.hist = s.reg.Histogram(MSLOLatency, HSLOLatency, SLOLatencyBuckets, lbl)
		ep.totalC = s.reg.Counter(MSLORequests, HSLORequests, lbl)
		ep.goodC = s.reg.Counter(MSLOGood, HSLOGood, lbl)
		ep.breachC = s.reg.Counter(MSLOBreaches, HSLOBreaches, lbl)
		ep.burnFast = s.reg.Gauge(MSLOBurnFast, HSLOBurnFast, lbl)
		ep.burnSlow = s.reg.Gauge(MSLOBurnSlow, HSLOBurnSlow, lbl)
		ep.budget = s.reg.Gauge(MSLOBudget, HSLOBudget, lbl)
	}
	s.eps[name] = ep
	return ep
}

// rotateLocked advances the endpoint's ring so headStart covers now.
func (s *SLO) rotateLocked(ep *sloEndpoint, now time.Time) {
	steps := 0
	for now.Sub(ep.headStart) >= s.cfg.BucketDur {
		ep.headStart = ep.headStart.Add(s.cfg.BucketDur)
		ep.head = (ep.head + 1) % s.nwin
		ep.ring[ep.head] = sloBucket{}
		if steps++; steps > s.nwin {
			// Idle longer than the whole window: the ring is all-zero
			// now, just re-anchor.
			ep.headStart = now
			break
		}
	}
}

// windowLocked sums the most recent n buckets.
func (ep *sloEndpoint) windowLocked(n int) (good, total uint64) {
	for i := 0; i < n; i++ {
		b := ep.ring[(ep.head-i+len(ep.ring))%len(ep.ring)]
		good += b.good
		total += b.total
	}
	return good, total
}

func burnRate(good, total uint64, availability float64) float64 {
	if total == 0 {
		return 0
	}
	budget := 1 - availability
	if budget <= 0 {
		return 0
	}
	bad := float64(total-good) / float64(total)
	return bad / budget
}

// Observe records one completed request. failed marks server-side
// failure (5xx); the latency objective is applied on top. Nil-safe.
func (s *SLO) Observe(endpoint string, d time.Duration, failed bool) {
	if s == nil {
		return
	}
	now := s.now()
	good := !failed
	var fire float64
	fireBurn := false

	s.mu.Lock()
	ep := s.endpointLocked(endpoint, now)
	if good && ep.obj.LatencyP99 > 0 && d > ep.obj.LatencyP99 {
		good = false
	}
	s.rotateLocked(ep, now)
	ep.ring[ep.head].total++
	ep.total++
	if good {
		ep.ring[ep.head].good++
		ep.good++
	}
	fg, ft := ep.windowLocked(s.nfast)
	sg, st := ep.windowLocked(s.nwin)
	fast := burnRate(fg, ft, ep.obj.Availability)
	slow := burnRate(sg, st, ep.obj.Availability)
	ep.burnFast.Set(fast)
	ep.burnSlow.Set(slow)
	ep.budget.Set(budgetRemaining(ep.good, ep.total, ep.obj.Availability))
	if s.cfg.FastBurnThreshold > 0 && ft >= s.cfg.MinWindowRequests {
		if fast >= s.cfg.FastBurnThreshold && !ep.burning {
			ep.burning = true
			fire, fireBurn = fast, true
		} else if fast < s.cfg.FastBurnThreshold {
			ep.burning = false
		}
	}
	s.mu.Unlock()

	ep.hist.Observe(d.Seconds())
	ep.totalC.Inc()
	if good {
		ep.goodC.Inc()
	} else {
		ep.breachC.Inc()
	}
	if fireBurn && s.onBurn != nil {
		s.onBurn(endpoint, fire)
	}
}

func maxU(v uint64) float64 {
	if v == 0 {
		return 1
	}
	return float64(v)
}

// budgetRemaining returns the fraction of the lifetime error budget left:
// 1 - (observed bad fraction)/(allowed bad fraction), clamped at 0.
func budgetRemaining(good, total uint64, availability float64) float64 {
	if total == 0 {
		return 1
	}
	budget := 1 - availability
	if budget <= 0 {
		return 0
	}
	spent := (float64(total-good) / float64(total)) / budget
	if spent >= 1 {
		return 0
	}
	return 1 - spent
}

// SLOEndpointReport is one endpoint's compliance view.
type SLOEndpointReport struct {
	Endpoint             string  `json:"endpoint"`
	ObjectiveP99MS       float64 `json:"objective_p99_ms,omitempty"`
	Availability         float64 `json:"availability_objective"`
	Total                uint64  `json:"total"`
	Good                 uint64  `json:"good"`
	Compliance           float64 `json:"compliance"`
	ErrorBudgetRemaining float64 `json:"error_budget_remaining"`
	BurnRateFast         float64 `json:"burn_rate_fast"`
	BurnRateSlow         float64 `json:"burn_rate_slow"`
	FastBurn             bool    `json:"fast_burn"`
	ObservedP50MS        float64 `json:"observed_p50_ms"`
	ObservedP99MS        float64 `json:"observed_p99_ms"`
}

// SLOReport is the /v1/slo payload.
type SLOReport struct {
	GeneratedUnixMicro int64               `json:"generated_us"`
	FastWindowSeconds  float64             `json:"fast_window_seconds"`
	SlowWindowSeconds  float64             `json:"slow_window_seconds"`
	FastBurnThreshold  float64             `json:"fast_burn_threshold"`
	Endpoints          []SLOEndpointReport `json:"endpoints"`
}

// Report summarizes every tracked endpoint (sorted by name). Nil-safe.
func (s *SLO) Report() SLOReport {
	if s == nil {
		return SLOReport{}
	}
	now := s.now()
	rep := SLOReport{
		GeneratedUnixMicro: now.UnixMicro(),
		FastWindowSeconds:  s.cfg.FastWindow.Seconds(),
		SlowWindowSeconds:  s.cfg.SlowWindow.Seconds(),
		FastBurnThreshold:  s.cfg.FastBurnThreshold,
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.eps))
	for n := range s.eps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ep := s.eps[n]
		s.rotateLocked(ep, now)
		fg, ft := ep.windowLocked(s.nfast)
		sg, st := ep.windowLocked(s.nwin)
		er := SLOEndpointReport{
			Endpoint:             n,
			ObjectiveP99MS:       float64(ep.obj.LatencyP99) / float64(time.Millisecond),
			Availability:         ep.obj.Availability,
			Total:                ep.total,
			Good:                 ep.good,
			Compliance:           float64(ep.good) / maxU(ep.total),
			ErrorBudgetRemaining: budgetRemaining(ep.good, ep.total, ep.obj.Availability),
			BurnRateFast:         burnRate(fg, ft, ep.obj.Availability),
			BurnRateSlow:         burnRate(sg, st, ep.obj.Availability),
			FastBurn:             ep.burning,
		}
		if ep.hist != nil {
			hs := ep.hist.snapshot()
			er.ObservedP50MS = hs.Quantile(0.50) * 1000
			er.ObservedP99MS = hs.Quantile(0.99) * 1000
		}
		rep.Endpoints = append(rep.Endpoints, er)
	}
	s.mu.Unlock()
	return rep
}
