package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// specs defines the ten applications in Table 1 order. Pattern shapes are
// chosen so that, per Table 1, the compiled instruction mixes reproduce
// each application's character: see the per-generator comments.
var specs = []spec{
	{
		// Brill: part-of-speech tagging rules — word alternations with
		// unbounded multi-word repetition. Control-heavy: the paper counts
		// 15,028 while loops for 1,849 regexes (~8 each), far more than
		// any other application.
		name: "Brill", paperCount: 1849,
		genPattern: func(rng *rand.Rand) string {
			var b strings.Builder
			b.WriteString(randWord(rng, lowerLetters, 3, 6))
			loops := 4 + rng.Intn(3)
			for i := 0; i < loops; i++ {
				w1 := randWord(rng, lowerLetters, 2, 3)
				w2 := randWord(rng, lowerLetters, 2, 3)
				fmt.Fprintf(&b, "((%s)|(%s))*", w1, w2)
				b.WriteString(randWord(rng, lowerLetters, 1, 3))
			}
			return b.String()
		},
		genInput: englishInput,
	},
	{
		// ClamAV: virus byte-sequence signatures — long literal *byte*
		// strings (rendered \xHH, ~4 source chars per byte: Table 1's
		// 359.7-char average is ~90 signature bytes) with bounded
		// wildcard gaps. Over benign traffic almost no prefix ever
		// matches, which is what starves ngAP's worklists (Section 8.1)
		// and feeds Zero Block Skipping. Shift-heavy, almost no loops.
		name: "ClamAV", paperCount: 491,
		genPattern: func(rng *rand.Rand) string {
			var b strings.Builder
			segments := 1 + rng.Intn(4)
			for i := 0; i < segments; i++ {
				if i > 0 {
					switch rng.Intn(3) {
					case 0:
						fmt.Fprintf(&b, ".{%d}", 1+rng.Intn(6))
					case 1:
						fmt.Fprintf(&b, ".{%d,%d}", 1+rng.Intn(3), 4+rng.Intn(6))
					default:
						b.WriteString("(..)?")
					}
				}
				nBytes := 10 + rng.Intn(50)
				for j := 0; j < nBytes; j++ {
					fmt.Fprintf(&b, "\\x%02x", rng.Intn(256))
				}
			}
			return b.String()
		},
		genInput: binaryHexInput,
	},
	{
		// Dotstar: lit1.*lit2(.*lit3) patterns from Becchi's suite —
		// dominated by character-class stars that compile to MatchStar
		// carries, not loops (183 whiles over 1,279 regexes).
		name: "Dotstar", paperCount: 1279,
		genPattern: func(rng *rand.Rand) string {
			parts := 2 + rng.Intn(2)
			words := make([]string, parts)
			for i := range words {
				words[i] = randWord(rng, lowerLetters, 5, 14)
			}
			return strings.Join(words, ".*")
		},
		genInput: lineTextInput,
	},
	{
		// Protomata: protein motif signatures — amino-acid classes and
		// alternations with bounded gaps. Alternation-heavy: 44,291 ORs,
		// the highest of any application.
		name: "Protomata", paperCount: 2338,
		genPattern: func(rng *rand.Rand) string {
			var b strings.Builder
			// Motifs open with a short conserved literal region.
			b.WriteString(randWord(rng, aminoAcids, 3, 6))
			elems := 10 + rng.Intn(14)
			for i := 0; i < elems; i++ {
				switch rng.Intn(5) {
				case 0, 1:
					b.WriteByte(aminoAcids[rng.Intn(len(aminoAcids))])
				case 2:
					k := 2 + rng.Intn(4)
					b.WriteByte('[')
					for j := 0; j < k; j++ {
						b.WriteByte(aminoAcids[rng.Intn(len(aminoAcids))])
					}
					b.WriteByte(']')
				case 3:
					fmt.Fprintf(&b, "((%c)|(%c%c))",
						aminoAcids[rng.Intn(20)], aminoAcids[rng.Intn(20)], aminoAcids[rng.Intn(20)])
				default:
					fmt.Fprintf(&b, ".{%d,%d}", 1+rng.Intn(3), 3+rng.Intn(4))
				}
			}
			// Occasional gap loop: a few regexes carry unbounded repeats.
			if rng.Intn(8) == 0 {
				b.WriteString("(" + randWord(rng, aminoAcids, 2, 3) + ")*")
				b.WriteByte(aminoAcids[rng.Intn(20)])
			}
			return b.String()
		},
		genInput: proteinInput,
	},
	{
		// Snort: intrusion-detection content rules — mixed literals,
		// classes, bounded repetition, some loops (4,742 whiles).
		name: "Snort", paperCount: 1873,
		genPattern: func(rng *rand.Rand) string {
			var b strings.Builder
			b.WriteString(randWord(rng, lowerLetters, 6, 14))
			extras := 3 + rng.Intn(4)
			for i := 0; i < extras; i++ {
				switch rng.Intn(6) {
				case 0:
					fmt.Fprintf(&b, "[%c-%c]{1,%d}", 'a'+rng.Intn(10), 'n'+rng.Intn(10), 2+rng.Intn(6))
				case 1:
					b.WriteString("\\d{1,5}")
				case 2:
					fmt.Fprintf(&b, "(%s)?", randWord(rng, lowerLetters, 2, 4))
				case 3:
					b.WriteString("(" + randWord(rng, lowerLetters, 2, 3) + ")*")
				case 4:
					b.WriteString("/" + randWord(rng, lowerLetters, 3, 7))
				default:
					b.WriteString("=" + randWord(rng, "0123456789abcdef", 2, 8))
				}
			}
			return b.String()
		},
		genInput: httpTrafficInput,
	},
	{
		// Yara: malware string signatures — overwhelmingly literal
		// (76,756 shifts, only 7 whiles across 3,358 regexes), short
		// (avg 32.5 chars).
		name: "Yara", paperCount: 3358,
		genPattern: func(rng *rand.Rand) string {
			w := randWord(rng, lowerLetters+hexDigits, 12, 44)
			if rng.Intn(10) == 0 {
				// A rare class wildcard keeps it from being pure literal.
				k := 4 + rng.Intn(len(w)-6)
				return w[:k] + "[0-9a-f]" + w[k:]
			}
			return w
		},
		genInput: binaryHexInput,
	},
	{
		// Bro217: a small HTTP signature set — short simple patterns.
		name: "Bro217", paperCount: 227,
		genPattern: func(rng *rand.Rand) string {
			verbs := []string{"get", "post", "head", "put"}
			var b strings.Builder
			b.WriteString(verbs[rng.Intn(len(verbs))])
			b.WriteString("/" + randWord(rng, lowerLetters, 3, 9))
			if rng.Intn(3) == 0 {
				b.WriteString("\\.(cgi|php|asp)")
			}
			if rng.Intn(4) == 0 {
				b.WriteString("\\?" + randWord(rng, lowerLetters, 2, 5) + "=")
			}
			return b.String()
		},
		genInput: httpTrafficInput,
	},
	{
		// ExactMatch: pure literal strings (Becchi's suite), avg 52.9.
		name: "ExactMatch", paperCount: 298,
		genPattern: func(rng *rand.Rand) string {
			return randWord(rng, lowerLetters, 35, 70)
		},
		genInput: lineTextInput,
	},
	{
		// Ranges1: Becchi's suite with ~1 character range per pattern.
		name: "Ranges1", paperCount: 298,
		genPattern: func(rng *rand.Rand) string {
			w := randWord(rng, lowerLetters, 35, 70)
			k := 2 + rng.Intn(len(w)-10)
			mid := fmt.Sprintf("[%c-%c]", 'a'+rng.Intn(12), 'm'+rng.Intn(12))
			out := w[:k] + mid + w[k+1:]
			if rng.Intn(5) == 0 {
				out += "(" + randWord(rng, lowerLetters, 2, 3) + ")*" + randWord(rng, lowerLetters, 2, 4)
			}
			return out
		},
		genInput: lineTextInput,
	},
	{
		// TCP: packet-header-flavored patterns with classes and counters.
		name: "TCP", paperCount: 300,
		genPattern: func(rng *rand.Rand) string {
			var b strings.Builder
			b.WriteString(randWord(rng, lowerLetters, 8, 20))
			b.WriteString("\\d{1,3}(\\.\\d{1,3}){1,3}")
			if rng.Intn(2) == 0 {
				b.WriteString(":" + randWord(rng, "0123456789", 2, 5))
			}
			if rng.Intn(6) == 0 {
				b.WriteString("(" + randWord(rng, lowerLetters, 2, 3) + ")*")
			}
			b.WriteString(randWord(rng, lowerLetters, 4, 12))
			return b.String()
		},
		genInput: httpTrafficInput,
	},
}

// ---- input generators ----

// englishInput produces word-structured text (Brill's corpus flavor).
func englishInput(rng *rand.Rand, n int, patterns []string) []byte {
	words := make([]string, 400)
	for i := range words {
		words[i] = randWord(rng, lowerLetters, 2, 8)
	}
	var b strings.Builder
	b.Grow(n + 16)
	col := 0
	for b.Len() < n {
		w := words[rng.Intn(len(words))]
		b.WriteString(w)
		col += len(w) + 1
		if col > 60+rng.Intn(30) {
			b.WriteByte('\n')
			col = 0
		} else {
			b.WriteByte(' ')
		}
	}
	buf := []byte(b.String()[:n])
	plantPatterns(rng, buf, patterns, 0.0008)
	return buf
}

// lineTextInput produces ~70-90 character lines of lowercase text — the
// structure that bounds MatchStar carry runs (Table 5's Dotstar max
// dynamic overlap of ~72 bits).
func lineTextInput(rng *rand.Rand, n int, patterns []string) []byte {
	buf := make([]byte, n)
	lineLen := 0
	target := 70 + rng.Intn(20)
	for i := range buf {
		if lineLen >= target {
			buf[i] = '\n'
			lineLen = 0
			target = 70 + rng.Intn(20)
			continue
		}
		if rng.Intn(7) == 0 {
			buf[i] = ' '
		} else {
			buf[i] = lowerLetters[rng.Intn(26)]
		}
		lineLen++
	}
	plantPatterns(rng, buf, patterns, 0.0005)
	return buf
}

// binaryHexInput produces full-range binary payload data (benign traffic /
// executables) in which the ASCII-hex signatures of ClamAV and Yara almost
// never partially match — the regime behind the paper's observations that
// ngAP's worklists starve on ClamAV and that zero blocks abound. Planted
// signature instances provide the rare true hits.
func binaryHexInput(rng *rand.Rand, n int, patterns []string) []byte {
	buf := make([]byte, n)
	rng.Read(buf)
	plantPatterns(rng, buf, patterns, 0.0004)
	return buf
}

// proteinInput produces amino-acid sequences in FASTA-like lines.
func proteinInput(rng *rand.Rand, n int, patterns []string) []byte {
	buf := make([]byte, n)
	col := 0
	for i := range buf {
		if col >= 60 {
			buf[i] = '\n'
			col = 0
			continue
		}
		buf[i] = aminoAcids[rng.Intn(len(aminoAcids))]
		col++
	}
	plantPatterns(rng, buf, patterns, 0.0006)
	return buf
}

// httpTrafficInput produces request-line flavored traffic.
func httpTrafficInput(rng *rand.Rand, n int, patterns []string) []byte {
	verbs := []string{"get", "post", "head", "put"}
	var b strings.Builder
	b.Grow(n + 64)
	for b.Len() < n {
		fmt.Fprintf(&b, "%s/%s?%s=%s http/1.1 host=%d.%d.%d.%d:%d\n",
			verbs[rng.Intn(len(verbs))],
			randWord(rng, lowerLetters, 3, 10),
			randWord(rng, lowerLetters, 2, 5),
			randWord(rng, lowerLetters+hexDigits, 3, 12),
			rng.Intn(256), rng.Intn(256), rng.Intn(256), rng.Intn(256),
			rng.Intn(65536))
	}
	buf := []byte(b.String()[:n])
	plantPatterns(rng, buf, patterns, 0.0008)
	return buf
}
