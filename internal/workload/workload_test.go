package workload

import (
	"testing"

	"bitgen/internal/ir"
	"bitgen/internal/lower"
	"bitgen/internal/nfa"
	"bitgen/internal/rx"
)

func loadSmall(t *testing.T, name string) *App {
	t.Helper()
	app, err := Load(name, Options{RegexScale: 0.02, InputBytes: 20_000})
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return app
}

func TestAllAppsGenerateAndParse(t *testing.T) {
	for _, name := range Names() {
		app := loadSmall(t, name)
		if len(app.Patterns) < 4 {
			t.Errorf("%s: only %d patterns", name, len(app.Patterns))
		}
		if len(app.Input) != 20_000 {
			t.Errorf("%s: input %d bytes", name, len(app.Input))
		}
		// Patterns must parse (Load already parses) and lower.
		p, err := lower.Group(app.Regexes, lower.Options{})
		if err != nil {
			t.Errorf("%s: lowering failed: %v", name, err)
			continue
		}
		if err := ir.Validate(p); err != nil {
			t.Errorf("%s: invalid program: %v", name, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a1 := loadSmall(t, "Snort")
	a2 := loadSmall(t, "Snort")
	if len(a1.Patterns) != len(a2.Patterns) {
		t.Fatal("pattern counts differ")
	}
	for i := range a1.Patterns {
		if a1.Patterns[i] != a2.Patterns[i] {
			t.Fatal("patterns not deterministic")
		}
	}
	for i := range a1.Input {
		if a1.Input[i] != a2.Input[i] {
			t.Fatal("input not deterministic")
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	a1, err := Load("Snort", Options{RegexScale: 0.02, InputBytes: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Load("Snort", Options{RegexScale: 0.02, InputBytes: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Patterns[0] == a2.Patterns[0] {
		t.Error("different seeds produced identical first patterns")
	}
}

func TestUnknownApp(t *testing.T) {
	if _, err := Load("NotAnApp", Options{}); err == nil {
		t.Fatal("unknown application accepted")
	}
	if _, err := PaperRegexCount("NotAnApp"); err == nil {
		t.Fatal("unknown application accepted by PaperRegexCount")
	}
}

func TestPaperCounts(t *testing.T) {
	// Spot-check Table 1's regex counts.
	for name, want := range map[string]int{
		"Brill": 1849, "ClamAV": 491, "Dotstar": 1279, "Protomata": 2338,
		"Snort": 1873, "Yara": 3358, "Bro217": 227, "ExactMatch": 298,
		"Ranges1": 298, "TCP": 300,
	} {
		got, err := PaperRegexCount(name)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s count = %d, want %d", name, got, want)
		}
	}
}

// statsFor lowers an app and returns its per-regex instruction mix.
func statsFor(t *testing.T, name string) (ir.Stats, int) {
	t.Helper()
	app := loadSmall(t, name)
	p, err := lower.Group(app.Regexes, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ir.CollectStats(p), len(app.Regexes)
}

func TestInstructionMixShapes(t *testing.T) {
	brill, nBrill := statsFor(t, "Brill")
	yara, nYara := statsFor(t, "Yara")
	proto, _ := statsFor(t, "Protomata")
	dot, _ := statsFor(t, "Dotstar")
	exact, _ := statsFor(t, "ExactMatch")

	// Brill is the control-heavy outlier: several whiles per regex.
	if perRegex := float64(brill.While) / float64(nBrill); perRegex < 1.5 {
		t.Errorf("Brill whiles per regex = %.2f, want > 1.5", perRegex)
	}
	// Yara is literal: essentially no loops, shifts close to ands.
	if float64(yara.While) > 0.05*float64(nYara) {
		t.Errorf("Yara whiles = %d for %d regexes, want ~0", yara.While, nYara)
	}
	if yara.Shift == 0 || float64(yara.Shift) < 0.4*float64(yara.And) {
		t.Errorf("Yara mix not shift-heavy: %+v", yara)
	}
	// Protomata has the highest OR share.
	protoOrShare := float64(proto.Or) / float64(proto.Total())
	brillOrShare := float64(brill.Or) / float64(brill.Total())
	if protoOrShare <= brillOrShare {
		t.Errorf("Protomata OR share %.3f not above Brill %.3f", protoOrShare, brillOrShare)
	}
	// Dotstar compiles its stars to MatchStar, not loops.
	if dot.Star == 0 {
		t.Error("Dotstar produced no MatchStar instructions")
	}
	if dot.While > dot.Star {
		t.Errorf("Dotstar loop-heavy: %d whiles vs %d MatchStars", dot.While, dot.Star)
	}
	// ExactMatch is pure concatenation: no or/while at all beyond class
	// unions.
	if exact.While != 0 || exact.Star != 0 {
		t.Errorf("ExactMatch has loops: %+v", exact)
	}
}

func TestInputsContainPlantedMatches(t *testing.T) {
	// Every app input should contain at least one real match (the
	// planting step), so benchmarks exercise match paths. Verified with
	// the independent NFA simulator.
	for _, name := range Names() {
		app := loadSmall(t, name)
		names := make([]string, len(app.Regexes))
		asts := make([]rx.Node, len(app.Regexes))
		for i, r := range app.Regexes {
			names[i] = r.Name
			asts[i] = r.AST
		}
		n, err := nfa.Build(names, asts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := nfa.Simulate(n, app.Input)
		if res.Stats.Matches == 0 {
			t.Errorf("%s: no matches in generated input", name)
		}
	}
}

func TestAverageLengthsRoughlyMatchTable1(t *testing.T) {
	wantAvg := map[string]float64{
		"Brill": 44.4, "ClamAV": 359.7, "Dotstar": 52.8, "Protomata": 96.5,
		"Snort": 50.5, "Yara": 32.5, "Bro217": 34.1, "ExactMatch": 52.9,
		"Ranges1": 54.3, "TCP": 53.9,
	}
	for _, name := range Names() {
		app := loadSmall(t, name)
		total := 0
		for _, p := range app.Patterns {
			total += len(p)
		}
		avg := float64(total) / float64(len(app.Patterns))
		want := wantAvg[name]
		if avg < want*0.4 || avg > want*2.2 {
			t.Errorf("%s: avg pattern length %.1f, paper %.1f (want same ballpark)", name, avg, want)
		}
	}
	_ = rx.Unbounded
}
