package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"bitgen/internal/lower"
	"bitgen/internal/rx"
)

// MegasetName is the application name Megaset reports, distinct from the
// Table 1 ClamAV entry (which is scaled from the paper's 491 signatures).
const MegasetName = "Megaset"

// Megaset generates a ClamAV-class signature megaset: count deterministic
// hex byte-string signatures in the shape of a full antivirus database —
// the 100k-pattern regime the Table 1 workloads never reach. Signatures
// are shorter than the Table 1 ClamAV generator's (12–24 signature bytes
// instead of ~90) so a 100k-set compiles within a smoke budget while
// still exercising the properties that matter at that scale: every CTA
// group is packed with hundreds of patterns, the byte classes repeat
// across all groups (the shared-charclass interning target), and the
// compiled state dwarfs any single scan's transient footprint.
//
// Generation is fully deterministic in (count, seed). inputBytes sizes
// the benign binary input (0 means 64 KiB — megaset runs are usually
// compile-only, so the input is token).
func Megaset(count int, seed int64, inputBytes int) (*App, error) {
	if count <= 0 {
		return nil, fmt.Errorf("workload: megaset count %d must be positive", count)
	}
	if inputBytes <= 0 {
		inputBytes = 64 << 10
	}
	rng := rand.New(rand.NewSource(hashSeed(MegasetName) ^ seed))
	app := &App{Name: MegasetName}
	seen := make(map[string]bool, count)
	for len(app.Patterns) < count {
		pat := megasetSignature(rng)
		if seen[pat] {
			continue
		}
		seen[pat] = true
		ast, err := rx.Parse(pat)
		if err != nil {
			return nil, fmt.Errorf("workload %s: generated unparsable pattern %q: %v", MegasetName, pat, err)
		}
		app.Patterns = append(app.Patterns, pat)
		app.Regexes = append(app.Regexes, lower.Regex{Name: pat, AST: ast})
	}
	app.Input = binaryHexInput(rng, inputBytes, app.Patterns)
	return app, nil
}

// megasetSignature emits one signature: one or two hex literal segments
// (6–12 bytes each) joined by a small bounded wildcard gap, mirroring the
// dominant shape of real ClamAV ndb/ldb entries.
func megasetSignature(rng *rand.Rand) string {
	var b strings.Builder
	segments := 1 + rng.Intn(2)
	for i := 0; i < segments; i++ {
		if i > 0 {
			fmt.Fprintf(&b, ".{%d,%d}", 1+rng.Intn(3), 4+rng.Intn(4))
		}
		nBytes := 6 + rng.Intn(7)
		for j := 0; j < nBytes; j++ {
			fmt.Fprintf(&b, "\\x%02x", rng.Intn(256))
		}
	}
	return b.String()
}
