// Package workload provides deterministic synthetic stand-ins for the ten
// benchmark applications of Table 1 (AutomataZoo, ANMLZoo and Becchi's
// Regex suite are not redistributable here). Each generator is tuned to the
// published workload shape: regex count, length statistics, and the
// instruction-mix character that drives the paper's results — Yara is
// literal/shift-heavy with almost no loops, Brill is control-heavy (many
// while loops), Protomata is alternation-heavy, Dotstar is ".*"-dominated,
// ClamAV has very long signatures, ExactMatch is pure literals.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"bitgen/internal/lower"
	"bitgen/internal/rx"
)

// App is one generated benchmark application.
type App struct {
	// Name is the paper's application name.
	Name string
	// Patterns holds the regex source strings.
	Patterns []string
	// Regexes holds the parsed patterns, named for output streams.
	Regexes []lower.Regex
	// Input is the byte stream to scan.
	Input []byte
}

// Options scale a generated application.
type Options struct {
	// RegexScale multiplies the paper's regex count (Table 1); 0 means
	// 0.05 (5%), which keeps full sweeps tractable while preserving each
	// workload's per-regex character.
	RegexScale float64
	// InputBytes is the input length; 0 means 1_000_000 (the paper's
	// 10^6-byte inputs).
	InputBytes int
	// Seed perturbs generation; the same (name, options) pair is fully
	// deterministic.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.RegexScale == 0 {
		o.RegexScale = 0.05
	}
	if o.InputBytes == 0 {
		o.InputBytes = 1_000_000
	}
	return o
}

// spec describes one application generator.
type spec struct {
	name       string
	paperCount int
	genPattern func(rng *rand.Rand) string
	genInput   func(rng *rand.Rand, n int, patterns []string) []byte
}

// Names returns the application names in the paper's Table 1 order.
func Names() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.name
	}
	return out
}

// PaperRegexCount returns Table 1's #Regex for an application.
func PaperRegexCount(name string) (int, error) {
	for _, s := range specs {
		if s.name == name {
			return s.paperCount, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown application %q", name)
}

// Load generates an application deterministically.
func Load(name string, opts Options) (*App, error) {
	opts = opts.withDefaults()
	var sp *spec
	for i := range specs {
		if specs[i].name == name {
			sp = &specs[i]
			break
		}
	}
	if sp == nil {
		return nil, fmt.Errorf("workload: unknown application %q", name)
	}
	rng := rand.New(rand.NewSource(hashSeed(name) ^ opts.Seed))
	count := int(float64(sp.paperCount)*opts.RegexScale + 0.5)
	if count < 4 {
		count = 4
	}
	app := &App{Name: name}
	seen := make(map[string]bool)
	for len(app.Patterns) < count {
		pat := sp.genPattern(rng)
		if seen[pat] {
			continue
		}
		seen[pat] = true
		ast, err := rx.Parse(pat)
		if err != nil {
			return nil, fmt.Errorf("workload %s: generated unparsable pattern %q: %v", name, pat, err)
		}
		app.Patterns = append(app.Patterns, pat)
		app.Regexes = append(app.Regexes, lower.Regex{Name: pat, AST: ast})
	}
	app.Input = sp.genInput(rng, opts.InputBytes, app.Patterns)
	return app, nil
}

func hashSeed(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}

// ---- shared vocabulary helpers ----

const lowerLetters = "abcdefghijklmnopqrstuvwxyz"
const hexDigits = "0123456789abcdef"
const aminoAcids = "ACDEFGHIKLMNPQRSTVWY"

func randWord(rng *rand.Rand, alphabet string, lo, hi int) string {
	n := lo + rng.Intn(hi-lo+1)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// plantPatterns seeds the input with full matching instances of random
// patterns (plus bare literal fragments for partial-match pressure) so a
// realistic, small fraction of positions match.
func plantPatterns(rng *rand.Rand, buf []byte, patterns []string, density float64) {
	plants := int(float64(len(buf)) * density)
	for i := 0; i < plants; i++ {
		pat := patterns[rng.Intn(len(patterns))]
		var frag string
		if i%2 == 0 {
			if ast, err := rx.Parse(pat); err == nil {
				frag = Instantiate(rng, ast)
			}
		} else {
			frag = literalFragment(pat)
		}
		if frag == "" || len(frag) >= len(buf) {
			continue
		}
		pos := rng.Intn(len(buf) - len(frag))
		copy(buf[pos:], frag)
	}
}

// Instantiate produces one string matched by the AST: classes pick a
// random member, alternations a random branch, stars zero to two
// repetitions, bounded repetition its minimum (plus occasional extras).
func Instantiate(rng *rand.Rand, node rx.Node) string {
	var b strings.Builder
	instantiateInto(rng, node, &b)
	return b.String()
}

func instantiateInto(rng *rand.Rand, node rx.Node, b *strings.Builder) {
	switch x := node.(type) {
	case rx.CC:
		members := make([]byte, 0, 8)
		for c := 0; c < 256 && len(members) < 64; c++ {
			if x.Class.Contains(byte(c)) {
				members = append(members, byte(c))
			}
		}
		if len(members) > 0 {
			b.WriteByte(members[rng.Intn(len(members))])
		}
	case rx.Concat:
		for _, p := range x.Parts {
			instantiateInto(rng, p, b)
		}
	case rx.Alt:
		if len(x.Alts) > 0 {
			instantiateInto(rng, x.Alts[rng.Intn(len(x.Alts))], b)
		}
	case rx.Star:
		for i := rng.Intn(3); i > 0; i-- {
			instantiateInto(rng, x.Sub, b)
		}
	case rx.Plus:
		for i := 1 + rng.Intn(2); i > 0; i-- {
			instantiateInto(rng, x.Sub, b)
		}
	case rx.Opt:
		if rng.Intn(2) == 0 {
			instantiateInto(rng, x.Sub, b)
		}
	case rx.Repeat:
		n := x.Min
		if x.Max != rx.Unbounded && x.Max > x.Min && rng.Intn(2) == 0 {
			n += rng.Intn(x.Max - x.Min + 1)
		}
		for i := 0; i < n; i++ {
			instantiateInto(rng, x.Sub, b)
		}
	}
}

// literalFragment extracts a plain literal prefix run of a pattern source
// (metacharacters end the run).
func literalFragment(pattern string) string {
	var b strings.Builder
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		if strings.IndexByte(".*+?()[]{}|\\^$", c) >= 0 {
			break
		}
		b.WriteByte(c)
	}
	return b.String()
}
