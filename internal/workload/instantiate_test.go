package workload

import (
	"math/rand"
	"regexp"
	"testing"

	"bitgen/internal/rx"
)

func TestInstantiateProducesMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 150; trial++ {
		ast := rx.Generate(rng, rx.GenOptions{MaxDepth: 3, MaxRepeat: 3})
		s := Instantiate(rng, ast)
		re, err := regexp.Compile("^(?:" + rx.ToGoRegexp(ast) + ")$")
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		if !re.MatchString(s) {
			t.Fatalf("Instantiate(%q) = %q does not match", ast.String(), s)
		}
	}
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

func TestInstantiateAppPatterns(t *testing.T) {
	for _, name := range Names() {
		app := loadSmall(t, name)
		rng := rand.New(rand.NewSource(3))
		for _, pat := range app.Patterns[:min(5, len(app.Patterns))] {
			ast := rx.MustParse(pat)
			s := Instantiate(rng, ast)
			if !isASCII(s) {
				// Go's regexp is rune-oriented and cannot oracle raw
				// byte patterns (ClamAV signatures); the engine-level
				// tests cover those through the NFA cross-check.
				continue
			}
			re := regexp.MustCompile("^(?:" + rx.ToGoRegexp(ast) + ")$")
			if !re.MatchString(s) {
				t.Errorf("%s: instance of %q does not match: %q", name, pat, s)
			}
		}
	}
}
