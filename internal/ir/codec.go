package ir

import (
	"encoding/binary"
	"fmt"
)

// Packed program codec: a compact, deterministic byte form of a Program.
//
// The packed form is the engine's resident representation in compressed
// mode (a handful of bytes per instruction instead of ~72 bytes of boxed
// pointer IR), the payload the snapshot format persists per group, and the
// content unit the serve layer's intern store deduplicates across engines
// (content address = hash of the packed bytes). Those three uses share one
// invariant: EncodeProgram is a pure function of program structure, so
// EncodeProgram(DecodeProgram(b)) == b and structurally identical programs
// encode byte-identically.
//
// Statement and expression tags are frozen (they are also the snapshot v1
// wire values); new tags append and require a snapshot format-version bump.
const (
	tagAssign = 1
	tagIf     = 2
	tagWhile  = 3
	tagGuard  = 4

	tagZero       = 0
	tagOnes       = 1
	tagCopy       = 2
	tagNot        = 3
	tagBin        = 4
	tagShift      = 5
	tagAdd        = 6
	tagStarThru   = 7
	tagMatchBasis = 8
)

// EncodeProgram serializes p into its packed byte form.
//
// Layout (all varint/uvarint, strings length-prefixed):
//
//	num-vars, ext-bits,
//	output count × {name, var, nullable},
//	statement tree (tagged pre-order),
//	barrier flag [+ merge-size, deduped-copies,
//	              group count × member count × pre-order assign index]
func EncodeProgram(p *Program) []byte {
	var e progEnc
	e.varint(int64(p.NumVars))
	e.varint(int64(p.ExtBits))
	e.count(len(p.Outputs))
	for _, o := range p.Outputs {
		e.str(o.Name)
		e.varint(int64(o.Var))
		e.boolean(o.Nullable)
	}
	e.stmts(p.Stmts)
	// The barrier schedule references statements by pointer identity;
	// persist it as indices into the program's pre-order *Assign sequence
	// and rebuild the pointers at decode.
	if p.Barriers == nil {
		e.boolean(false)
		return e.b
	}
	e.boolean(true)
	index := make(map[*Assign]int)
	WalkStmts(p.Stmts, func(s Stmt) {
		if a, ok := s.(*Assign); ok {
			index[a] = len(index)
		}
	})
	e.varint(int64(p.Barriers.MergeSize))
	e.varint(int64(p.Barriers.DedupedCopies))
	e.count(len(p.Barriers.Groups))
	for _, grp := range p.Barriers.Groups {
		e.count(len(grp))
		for _, a := range grp {
			e.varint(int64(index[a]))
		}
	}
	return e.b
}

// DecodeProgram parses a packed program. It checks structural framing only;
// callers that execute the result must still run Validate (decode of bytes
// produced by EncodeProgram from a validated program cannot fail).
func DecodeProgram(data []byte) (*Program, error) {
	d := &progDec{b: data}
	p := &Program{}
	p.NumVars = int(d.varint("num-vars"))
	p.ExtBits = int(d.varint("ext-bits"))
	no := d.count("output", 3)
	p.Outputs = make([]Output, no)
	for i := range p.Outputs {
		p.Outputs[i].Name = d.str("output name")
		p.Outputs[i].Var = VarID(d.varint("output var"))
		p.Outputs[i].Nullable = d.boolean("output nullable")
	}
	p.Stmts = d.stmts()
	if d.boolean("barrier-schedule flag") {
		var assigns []*Assign
		WalkStmts(p.Stmts, func(s Stmt) {
			if a, ok := s.(*Assign); ok {
				assigns = append(assigns, a)
			}
		})
		bs := &BarrierSchedule{
			MergeSize:     int(d.varint("merge-size")),
			DedupedCopies: int(d.varint("deduped-copies")),
		}
		ng := d.count("barrier group", 1)
		bs.Groups = make([][]*Assign, 0, ng)
		for i := 0; i < ng && d.err == nil; i++ {
			na := d.count("barrier member", 1)
			grp := make([]*Assign, 0, na)
			for j := 0; j < na && d.err == nil; j++ {
				idx := d.varint("barrier assign index")
				if idx < 0 || idx >= int64(len(assigns)) {
					d.fail("barrier assign index out of range")
					break
				}
				grp = append(grp, assigns[idx])
			}
			bs.Groups = append(bs.Groups, grp)
		}
		p.Barriers = bs
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("ir: %d undecoded trailing bytes in packed program", len(d.b))
	}
	return p, nil
}

// MustDecodeProgram decodes bytes known to have come from EncodeProgram of a
// validated program (the engine's packed-group hot path). It panics on
// malformed input, which would indicate memory corruption, not bad user data.
func MustDecodeProgram(data []byte) *Program {
	p, err := DecodeProgram(data)
	if err != nil {
		panic("ir: corrupt packed program: " + err.Error())
	}
	return p
}

// ProgramSizeBytes estimates the resident heap footprint of the boxed
// pointer-IR form of p: statement nodes, boxed expressions, slice headers,
// outputs, and the barrier schedule. It is the "uncompressed" side of the
// residency accounting; the compressed side is len(EncodeProgram(p)).
func ProgramSizeBytes(p *Program) int64 {
	if p == nil {
		return 0
	}
	var sz int64 = 64 // Program struct itself
	sz += stmtsSizeBytes(p.Stmts)
	for _, o := range p.Outputs {
		sz += 32 + int64(len(o.Name)) // Output struct + name bytes
	}
	if p.Barriers != nil {
		sz += 48 // schedule struct + groups slice header
		for _, g := range p.Barriers.Groups {
			sz += 24 + 8*int64(len(g)) // member slice header + pointers
		}
	}
	return sz
}

func stmtsSizeBytes(list []Stmt) int64 {
	sz := 24 + 16*int64(len(list)) // slice header + interface values
	for _, s := range list {
		switch x := s.(type) {
		case *Assign:
			sz += 24 + 24 // Assign node + boxed Expr payload
		case *If:
			sz += 16 + stmtsSizeBytes(x.Body)
		case *While:
			sz += 16 + stmtsSizeBytes(x.Body)
		case *Guard:
			sz += 24
		}
	}
	return sz
}

// ---- packed-payload primitives ----

// progEnc is an appending payload writer.
type progEnc struct{ b []byte }

func (e *progEnc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *progEnc) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *progEnc) count(n int)      { e.uvarint(uint64(n)) }

func (e *progEnc) boolean(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

func (e *progEnc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *progEnc) stmts(list []Stmt) {
	e.count(len(list))
	for _, s := range list {
		switch x := s.(type) {
		case *Assign:
			e.uvarint(tagAssign)
			e.varint(int64(x.Dst))
			e.expr(x.Expr)
		case *If:
			e.uvarint(tagIf)
			e.varint(int64(x.Cond))
			e.stmts(x.Body)
		case *While:
			e.uvarint(tagWhile)
			e.varint(int64(x.Cond))
			e.stmts(x.Body)
		case *Guard:
			e.uvarint(tagGuard)
			e.varint(int64(x.Cond))
			e.varint(int64(x.Skip))
		default:
			panic("ir: unknown statement type in EncodeProgram")
		}
	}
}

func (e *progEnc) expr(x Expr) {
	switch v := x.(type) {
	case Zero:
		e.uvarint(tagZero)
	case Ones:
		e.uvarint(tagOnes)
	case Copy:
		e.uvarint(tagCopy)
		e.varint(int64(v.Src))
	case Not:
		e.uvarint(tagNot)
		e.varint(int64(v.Src))
	case Bin:
		e.uvarint(tagBin)
		e.uvarint(uint64(v.Op))
		e.varint(int64(v.X))
		e.varint(int64(v.Y))
	case Shift:
		e.uvarint(tagShift)
		e.varint(int64(v.Src))
		e.varint(int64(v.K))
	case Add:
		e.uvarint(tagAdd)
		e.varint(int64(v.X))
		e.varint(int64(v.Y))
	case StarThru:
		e.uvarint(tagStarThru)
		e.varint(int64(v.M))
		e.varint(int64(v.C))
	case MatchBasis:
		e.uvarint(tagMatchBasis)
		e.varint(int64(v.Bit))
	default:
		panic("ir: unknown expression type in EncodeProgram")
	}
}

// progDec is a consuming payload reader: the first malformed field latches
// an error and every later read returns zero values.
type progDec struct {
	b   []byte
	err error
}

func (d *progDec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("ir: malformed packed program: %s", what)
	}
}

func (d *progDec) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *progDec) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

// count bounds element counts by the remaining payload so a corrupted count
// can never drive a huge allocation.
func (d *progDec) count(what string, minBytes int) int {
	v := d.uvarint(what + " count")
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(len(d.b)/minBytes) {
		d.fail(what + " count exceeds payload")
		return 0
	}
	return int(v)
}

func (d *progDec) boolean(what string) bool {
	if d.err != nil {
		return false
	}
	if len(d.b) < 1 {
		d.fail(what)
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	if v > 1 {
		d.fail(what)
		return false
	}
	return v == 1
}

func (d *progDec) str(what string) string {
	n := d.uvarint(what + " length")
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail(what + " length exceeds payload")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *progDec) stmts() []Stmt {
	n := d.count("statement", 2)
	out := make([]Stmt, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		switch tag := d.uvarint("statement tag"); tag {
		case tagAssign:
			a := &Assign{Dst: VarID(d.varint("assign dst"))}
			a.Expr = d.expr()
			out = append(out, a)
		case tagIf:
			s := &If{Cond: VarID(d.varint("if cond"))}
			s.Body = d.stmts()
			out = append(out, s)
		case tagWhile:
			s := &While{Cond: VarID(d.varint("while cond"))}
			s.Body = d.stmts()
			out = append(out, s)
		case tagGuard:
			out = append(out, &Guard{
				Cond: VarID(d.varint("guard cond")),
				Skip: int(d.varint("guard skip")),
			})
		default:
			d.fail("statement tag")
		}
	}
	return out
}

func (d *progDec) expr() Expr {
	switch tag := d.uvarint("expression tag"); tag {
	case tagZero:
		return Zero{}
	case tagOnes:
		return Ones{}
	case tagCopy:
		return Copy{Src: VarID(d.varint("copy src"))}
	case tagNot:
		return Not{Src: VarID(d.varint("not src"))}
	case tagBin:
		op := BinOp(d.uvarint("bin op"))
		if op > OpAndNot {
			d.fail("bin op")
			return Zero{}
		}
		return Bin{Op: op, X: VarID(d.varint("bin x")), Y: VarID(d.varint("bin y"))}
	case tagShift:
		return Shift{Src: VarID(d.varint("shift src")), K: int(d.varint("shift k"))}
	case tagAdd:
		return Add{X: VarID(d.varint("add x")), Y: VarID(d.varint("add y"))}
	case tagStarThru:
		return StarThru{M: VarID(d.varint("starthru m")), C: VarID(d.varint("starthru c"))}
	case tagMatchBasis:
		return MatchBasis{Bit: int(d.varint("matchbasis bit"))}
	default:
		d.fail("expression tag")
		return Zero{}
	}
}
