package ir

import (
	"strings"
	"testing"

	"bitgen/internal/charclass"
	"bitgen/internal/transpose"
)

// buildFigure3 hand-builds the paper's Figure 3 program for /(abc)|d/.
func buildFigure3() *Program {
	b := NewBuilder()
	s1 := b.MatchClass(charclass.Single('a'))
	s2 := b.MatchClass(charclass.Single('b'))
	s3 := b.MatchClass(charclass.Single('c'))
	s4 := b.MatchClass(charclass.Single('d'))
	s5 := b.Advance(s1, 1)
	s6 := b.And(s5, s2) // ab
	s8 := b.NewVar()
	b.EmitTo(s8, Zero{})
	b.If(s6, func() {
		s7 := b.Advance(s6, 1)
		b.EmitTo(s8, Bin{OpAnd, s7, s3}) // abc
	})
	s9 := b.Or(s8, s4) // abc|d
	b.Output("(abc)|d", s9)
	return b.Program()
}

func TestFigure3Program(t *testing.T) {
	p := buildFigure3()
	if err := Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	basis := transpose.Transpose([]byte("abcdabce"))
	res, err := Interpret(p, basis, InterpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 3 (b): S9 = ..11..1.
	if got := res.Outputs["(abc)|d"].String(); got != "..11..1." {
		t.Fatalf("S9 = %q, want %q", got, "..11..1.")
	}
}

func TestFigure3IfNotTaken(t *testing.T) {
	// With no "ab" anywhere, the if body is skipped and S8 stays zero.
	p := buildFigure3()
	basis := transpose.Transpose([]byte("axdxxaxc"))
	res, err := Interpret(p, basis, InterpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs["(abc)|d"].String(); got != "..1....." {
		t.Fatalf("S9 = %q, want only the d match", got)
	}
}

// buildKleene hand-builds the Listing 3 program for /a(bc)*d/.
func buildKleene() *Program {
	b := NewBuilder()
	sa := b.MatchClass(charclass.Single('a'))
	sb := b.MatchClass(charclass.Single('b'))
	sc := b.MatchClass(charclass.Single('c'))
	sd := b.MatchClass(charclass.Single('d'))
	s1 := b.NewVar()
	b.EmitTo(s1, Copy{sa})
	s10 := b.NewVar()
	b.EmitTo(s10, Copy{s1})
	b.While(s1, func() {
		s5 := b.Advance(s1, 1)
		s6 := b.And(sb, s5)
		s7 := b.Advance(s6, 1)
		s8 := b.And(sc, s7)
		s9 := b.Not(s10)
		b.EmitTo(s1, Bin{OpAnd, s8, s9})
		b.EmitTo(s10, Bin{OpOr, s10, s8})
	})
	s11 := b.Advance(s10, 1)
	s12 := b.And(sd, s11)
	b.Output("a(bc)*d", s12)
	return b.Program()
}

func TestListing3KleeneStar(t *testing.T) {
	p := buildKleene()
	if err := Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for input, want := range map[string]string{
		"ad":        ".1",
		"abcd":      "...1",
		"abcbcd":    ".....1",
		"abd":       "...",
		"xadabcbcd": ".........", // wrong length sentinel; replaced below
	} {
		if input == "xadabcbcd" {
			want = "..1......1" // matches end at 'd' of "ad" and of "abcbcd"
			input = "xadxabcbcd"
		}
		basis := transpose.Transpose([]byte(input))
		res, err := Interpret(p, basis, InterpOptions{})
		if err != nil {
			t.Fatalf("%q: %v", input, err)
		}
		if got := res.Outputs["a(bc)*d"].String(); got != want {
			t.Errorf("input %q: got %q, want %q", input, got, want)
		}
	}
}

func TestWhileLoopIterationCap(t *testing.T) {
	// while(ones) { nothing changes } must hit the iteration cap.
	b := NewBuilder()
	v := b.Emit(Ones{})
	b.While(v, func() {
		b.EmitTo(v, Copy{v})
	})
	b.Output("x", v)
	p := b.Program()
	basis := transpose.Transpose([]byte("abc"))
	if _, err := Interpret(p, basis, InterpOptions{MaxWhileIterations: 10}); err == nil {
		t.Fatal("non-terminating loop did not error")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	// Use before definition.
	p := &Program{NumVars: 2}
	p.Stmts = []Stmt{&Assign{Dst: 0, Expr: Copy{1}}}
	if err := Validate(p); err == nil {
		t.Error("use-before-def not caught")
	}
	// Out-of-range output.
	p = &Program{NumVars: 1, Stmts: []Stmt{&Assign{Dst: 0, Expr: Zero{}}}}
	p.Outputs = []Output{{Name: "x", Var: 5}}
	if err := Validate(p); err == nil {
		t.Error("out-of-range output not caught")
	}
	// Zero-distance shift.
	p = &Program{NumVars: 2, Stmts: []Stmt{
		&Assign{Dst: 0, Expr: Zero{}},
		&Assign{Dst: 1, Expr: Shift{0, 0}},
	}}
	if err := Validate(p); err == nil {
		t.Error("zero shift not caught")
	}
	// Guard skipping past end of body.
	p = &Program{NumVars: 1, Stmts: []Stmt{
		&Assign{Dst: 0, Expr: Zero{}},
		&Guard{Cond: 0, Skip: 3},
	}}
	if err := Validate(p); err == nil {
		t.Error("oversized guard not caught")
	}
}

func TestGuardEquivalence(t *testing.T) {
	// A guard over a genuine zero path: honoring it must not change results.
	b := NewBuilder()
	sa := b.MatchClass(charclass.Single('a'))
	sz := b.MatchClass(charclass.Single('z')) // absent from input: all-zero
	g := b.NewVar()
	b.EmitTo(g, Copy{sz})
	// Zero path: t1 = g >> 1; t2 = t1 & sa; out = t2 | sa
	*b.top() = append(*b.top(), &Guard{Cond: g, Skip: 2})
	t1 := b.Advance(g, 1)
	t2 := b.And(t1, sa)
	out := b.Or(t2, sa)
	b.Output("out", out)
	p := b.Program()
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}
	basis := transpose.Transpose([]byte("aqaqa"))
	plain, err := Interpret(p, basis, InterpOptions{HonorGuards: false})
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := Interpret(p, basis, InterpOptions{HonorGuards: true})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Outputs["out"].Equal(guarded.Outputs["out"]) {
		t.Fatalf("guarded output %q != plain %q",
			guarded.Outputs["out"], plain.Outputs["out"])
	}
	if guarded.Stats.GuardSkips != 1 {
		t.Fatalf("GuardSkips = %d, want 1", guarded.Stats.GuardSkips)
	}
}

func TestCollectStats(t *testing.T) {
	p := buildKleene()
	st := CollectStats(p)
	if st.While != 1 {
		t.Errorf("While count = %d, want 1", st.While)
	}
	if st.Shift != 3 {
		t.Errorf("Shift count = %d, want 3 (two in loop, one after)", st.Shift)
	}
	if st.And == 0 || st.Not == 0 || st.Or == 0 {
		t.Errorf("unexpected zero counts: %+v", st)
	}
	if st.Total() != st.And+st.Or+st.Not+st.Xor+st.Shift+st.While+st.If {
		t.Error("Total inconsistent")
	}
}

func TestPrintStyle(t *testing.T) {
	p := buildKleene()
	text := p.String()
	for _, want := range []string{"while (S", ">> 1", "# output a(bc)*d"} {
		if !strings.Contains(text, want) {
			t.Errorf("printout missing %q:\n%s", want, text)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buildFigure3()
	q := p.Clone()
	// Mutate the clone's first assignment; original must be unaffected.
	for _, s := range q.Stmts {
		if a, ok := s.(*Assign); ok {
			a.Dst = VarID(p.NumVars - 1)
			break
		}
	}
	var origFirst *Assign
	for _, s := range p.Stmts {
		if a, ok := s.(*Assign); ok {
			origFirst = a
			break
		}
	}
	if origFirst.Dst == VarID(p.NumVars-1) && p.NumVars > 1 {
		t.Fatal("Clone shares Assign nodes with original")
	}
}

func TestBuilderCachesClasses(t *testing.T) {
	b := NewBuilder()
	v1 := b.MatchClass(charclass.Single('a'))
	v2 := b.MatchClass(charclass.Single('a'))
	if v1 != v2 {
		t.Fatal("identical classes not cached")
	}
	if len(b.CCs) != 1 {
		t.Fatalf("CCs = %d entries, want 1", len(b.CCs))
	}
}

func TestMatchBasisOutOfRangeCaught(t *testing.T) {
	p := &Program{NumVars: 1, Stmts: []Stmt{&Assign{Dst: 0, Expr: MatchBasis{9}}}}
	if err := Validate(p); err == nil {
		t.Fatal("basis bit out of range not caught")
	}
}
