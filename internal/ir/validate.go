package ir

import "fmt"

// Validate checks structural well-formedness: every variable is defined
// before use (conservatively: a definition inside an if/while body counts,
// because predicated execution zero-initializes), variable ids are in
// range, guards do not skip past the end of their body, and shift distances
// are sane. It returns the first problem found.
func Validate(p *Program) error {
	defined := make([]bool, p.NumVars)
	if err := validateBody(p, p.Stmts, defined); err != nil {
		return err
	}
	for _, o := range p.Outputs {
		if o.Var < 0 || int(o.Var) >= p.NumVars {
			return fmt.Errorf("ir: output %q names variable S%d out of range", o.Name, o.Var)
		}
		if !defined[o.Var] {
			return fmt.Errorf("ir: output %q variable S%d is never assigned", o.Name, o.Var)
		}
	}
	return nil
}

func validateBody(p *Program, body []Stmt, defined []bool) error {
	for i, s := range body {
		switch x := s.(type) {
		case *Assign:
			for _, v := range Operands(x.Expr) {
				if err := checkUse(p, v, defined); err != nil {
					return err
				}
			}
			if sh, ok := x.Expr.(Shift); ok {
				if sh.K == 0 {
					return fmt.Errorf("ir: zero-distance shift assigned to S%d", x.Dst)
				}
			}
			if mb, ok := x.Expr.(MatchBasis); ok {
				if mb.Bit < 0 || mb.Bit > 7+p.ExtBits {
					return fmt.Errorf("ir: basis bit %d out of range (8 raw + %d shared)", mb.Bit, p.ExtBits)
				}
			}
			if x.Dst < 0 || int(x.Dst) >= p.NumVars {
				return fmt.Errorf("ir: assignment to S%d out of range [0,%d)", x.Dst, p.NumVars)
			}
			defined[x.Dst] = true
		case *If:
			if err := checkUse(p, x.Cond, defined); err != nil {
				return err
			}
			if err := validateBody(p, x.Body, defined); err != nil {
				return err
			}
		case *While:
			if err := checkUse(p, x.Cond, defined); err != nil {
				return err
			}
			if err := validateBody(p, x.Body, defined); err != nil {
				return err
			}
		case *Guard:
			if err := checkUse(p, x.Cond, defined); err != nil {
				return err
			}
			if x.Skip <= 0 {
				return fmt.Errorf("ir: guard with non-positive skip %d", x.Skip)
			}
			if i+1+x.Skip > len(body) {
				return fmt.Errorf("ir: guard skips %d statements but only %d remain", x.Skip, len(body)-i-1)
			}
		default:
			return fmt.Errorf("ir: unknown statement type %T", s)
		}
	}
	return nil
}

func checkUse(p *Program, v VarID, defined []bool) error {
	if v < 0 || int(v) >= p.NumVars {
		return fmt.Errorf("ir: use of S%d out of range [0,%d)", v, p.NumVars)
	}
	if !defined[v] {
		return fmt.Errorf("ir: use of S%d before definition", v)
	}
	return nil
}
