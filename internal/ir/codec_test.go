package ir

import (
	"bytes"
	"testing"
)

// codecFixture builds a program exercising every statement and expression
// form the packed codec must carry, including a barrier schedule and
// extended basis bits.
func codecFixture() *Program {
	p := &Program{NumVars: 12, ExtBits: 3}
	shiftA := &Assign{Dst: 4, Expr: Shift{Src: 2, K: 1}}
	shiftB := &Assign{Dst: 5, Expr: Shift{Src: 3, K: -2}}
	p.Stmts = []Stmt{
		&Assign{Dst: 0, Expr: MatchBasis{Bit: 9}},
		&Assign{Dst: 1, Expr: Copy{Src: 0}},
		&Assign{Dst: 2, Expr: Not{Src: 1}},
		&Assign{Dst: 3, Expr: Bin{Op: OpAndNot, X: 2, Y: 0}},
		shiftA,
		shiftB,
		&Assign{Dst: 6, Expr: Add{X: 4, Y: 5}},
		&Assign{Dst: 7, Expr: StarThru{M: 6, C: 2}},
		&Guard{Cond: 7, Skip: 2},
		&Assign{Dst: 8, Expr: Bin{Op: OpOr, X: 7, Y: 6}},
		&Assign{Dst: 9, Expr: Bin{Op: OpXor, X: 8, Y: 0}},
		&If{Cond: 9, Body: []Stmt{
			&Assign{Dst: 10, Expr: Bin{Op: OpAnd, X: 9, Y: 1}},
		}},
		&While{Cond: 10, Body: []Stmt{
			&Assign{Dst: 11, Expr: Shift{Src: 10, K: 3}},
			&Assign{Dst: 10, Expr: Bin{Op: OpAndNot, X: 11, Y: 9}},
		}},
	}
	p.Outputs = []Output{{Name: "alpha", Var: 9}, {Name: "beta", Var: 10}}
	p.Barriers = &BarrierSchedule{
		MergeSize:     4,
		DedupedCopies: 1,
		Groups:        [][]*Assign{{shiftA, shiftB}},
	}
	return p
}

// TestCodecRoundTrip: decode(encode(p)) preserves program semantics and
// the re-encoding is byte-identical — the property the intern store's
// content addressing and snapshot byte-stability rest on.
func TestCodecRoundTrip(t *testing.T) {
	p := codecFixture()
	data := EncodeProgram(p)
	got, err := DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(got); err != nil {
		t.Fatalf("decoded program invalid: %v", err)
	}
	if got.NumVars != p.NumVars || got.ExtBits != p.ExtBits {
		t.Fatalf("header drift: NumVars %d/%d ExtBits %d/%d",
			got.NumVars, p.NumVars, got.ExtBits, p.ExtBits)
	}
	if len(got.Outputs) != len(p.Outputs) {
		t.Fatalf("outputs: %d, want %d", len(got.Outputs), len(p.Outputs))
	}
	for i := range got.Outputs {
		if got.Outputs[i] != p.Outputs[i] {
			t.Fatalf("output %d = %+v, want %+v", i, got.Outputs[i], p.Outputs[i])
		}
	}
	if got.Barriers == nil || got.Barriers.MergeSize != 4 ||
		got.Barriers.DedupedCopies != 1 || len(got.Barriers.Groups) != 1 {
		t.Fatalf("barrier schedule drift: %+v", got.Barriers)
	}
	// Barrier group members must alias the decoded statement objects, not
	// copies: the executor matches them by identity.
	if got.Barriers.Groups[0][0] != got.Stmts[4] || got.Barriers.Groups[0][1] != got.Stmts[5] {
		t.Fatal("barrier group members do not alias decoded statements")
	}
	again := EncodeProgram(got)
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encoding not byte-identical: %d vs %d bytes", len(data), len(again))
	}
}

// TestCodecRejectsCorruption: every single-byte corruption of a packed
// program must either decode to a structurally valid program or fail
// cleanly — never panic (the decoder faces snapshot bytes from disk).
func TestCodecRejectsCorruption(t *testing.T) {
	data := EncodeProgram(codecFixture())
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("byte %d: decoder panicked: %v", i, r)
				}
			}()
			if p, err := DecodeProgram(mut); err == nil {
				_ = Validate(p) // may fail; must not panic
			}
		}()
	}
	if _, err := DecodeProgram(data[:len(data)/2]); err == nil {
		t.Fatal("truncated program decoded without error")
	}
	if _, err := DecodeProgram(nil); err == nil {
		t.Fatal("empty input decoded without error")
	}
}
