// Package ir defines the bitstream-program intermediate representation of
// the paper's Listing 2: a sequence of bitstream instructions (bitwise
// operations and shifts over unbounded bitstreams in three-address form)
// plus structured control flow (if / while) whose conditions are bitstreams
// tested for "any bit set" (popcount > 0).
//
// The same IR feeds four consumers: the whole-stream CPU interpreter (the
// icgrep analog and golden reference), the sequential block-wise GPU
// executor, the interleaved GPU executor, and the analysis/transformation
// passes (dataflow graph, shift rebalancing, zero-block skipping).
package ir

import "bitgen/internal/charclass"

// VarID names a bitstream variable (SSA-ish: the lowering assigns each
// variable once per static occurrence, but loop bodies reassign loop-carried
// variables, exactly as in the paper's listings).
type VarID int

// NoVar is the zero VarID used to mean "none".
const NoVar VarID = -1

// BinOp enumerates binary bitwise operations.
type BinOp int

const (
	OpAnd BinOp = iota
	OpOr
	OpXor
	OpAndNot
)

func (op BinOp) String() string {
	switch op {
	case OpAnd:
		return "&"
	case OpOr:
		return "|"
	case OpXor:
		return "^"
	case OpAndNot:
		return "&~"
	}
	return "?"
}

// Expr is the right-hand side of an assignment. Operands are variables,
// keeping the program in three-address form for the analyses.
type Expr interface{ isExpr() }

// Zero is the all-zero bitstream.
type Zero struct{}

// Ones is the all-one bitstream (bounded by the input length).
type Ones struct{}

// Copy reads another variable.
type Copy struct{ Src VarID }

// Not is bitwise complement of a variable.
type Not struct{ Src VarID }

// Bin applies a binary bitwise operation to two variables.
type Bin struct {
	Op   BinOp
	X, Y VarID
}

// Shift moves bits by a constant distance in paper stream terms:
// K > 0 is the paper's "S >> K" (Advance, toward the future), K < 0 is
// "S << -K" (Lookback). Shifts are the only instructions that create
// cross-block dependencies.
type Shift struct {
	Src VarID
	K   int
}

// Add is arithmetic addition of two bitstreams (carries ripple toward the
// future). It implements Parabix's MatchStar: the Kleene closure of a
// character class lowers to one advance plus one Add instead of a
// fixed-point loop, which is why applications dominated by ".*" patterns
// show tiny dynamic overlap distances in Table 5. Like Shift, Add creates
// cross-block dependencies (a carry may enter from the previous block); the
// interleaved executor detects boundary-crossing carry runs at runtime.
type Add struct {
	X, Y VarID
}

// StarThru is the fused MatchStar instruction: given end-position markers M
// and a class stream C, it computes, with T = (M >> 1) & C,
// ((((T + C) ^ C) | T) & C) | M — every position reachable from a marker
// through a run of class bytes, plus the markers themselves. It is
// zero-preserving in M (no markers in, no matches out), which keeps CC-star
// chains on zero paths for ZBS.
type StarThru struct {
	M, C VarID
}

// MatchBasis reads one of the eight transposed basis bitstreams. The
// lowering expands character classes into Bin/Not over MatchBasis values, so
// instruction counts reflect the real bitwise work.
type MatchBasis struct{ Bit int }

func (Zero) isExpr()       {}
func (Ones) isExpr()       {}
func (Copy) isExpr()       {}
func (Not) isExpr()        {}
func (Bin) isExpr()        {}
func (Shift) isExpr()      {}
func (Add) isExpr()        {}
func (StarThru) isExpr()   {}
func (MatchBasis) isExpr() {}

// Stmt is one statement of a bitstream program.
type Stmt interface{ isStmt() }

// Assign computes Expr and stores it in Dst.
type Assign struct {
	Dst  VarID
	Expr Expr
}

// If executes Body when Cond has any bit set in the active window. When the
// branch is not taken, variables keep their prior values; the lowering
// zero-initializes branch results before the if, exactly as the paper's
// Figure 3 does (S8 = 0 before the if).
type If struct {
	Cond VarID
	Body []Stmt
}

// While repeatedly executes Body while Cond has any bit set in the active
// window. Cond is typically reassigned inside Body (the fixed-point loops of
// Figure 2 (d)/(e)).
type While struct {
	Cond VarID
	Body []Stmt
}

// Guard is inserted by the Zero Block Skipping pass: when Cond is all-zero
// in the active window, the next Skip statements of the enclosing body are
// skipped and their destination variables are zeroed (they lie on zero
// paths or are dead outside the range, so zeroing preserves semantics).
// Guards are advisory: interpreters may execute the statements anyway.
type Guard struct {
	Cond VarID
	Skip int
}

func (*Assign) isStmt() {}
func (*If) isStmt()     {}
func (*While) isStmt()  {}
func (*Guard) isStmt()  {}

// Output names a result bitstream of the program.
type Output struct {
	Name string // e.g. the source regex
	Var  VarID
	// Nullable marks regexes that match the empty string. Executors report
	// one extra match end for them at the end-of-input offset (position
	// Len(input)): the empty match after the last byte, which the
	// one-bit-per-input-byte stream cannot carry itself.
	Nullable bool
}

// Program is a complete bitstream program.
type Program struct {
	// Stmts is the top-level statement list.
	Stmts []Stmt
	// NumVars is one past the highest VarID in use.
	NumVars int
	// Outputs are the named match streams (one per regex in the group).
	Outputs []Output
	// Barriers, when non-nil, annotates the synchronization schedule
	// produced by the Shift Rebalancing pass (see package passes).
	Barriers *BarrierSchedule
	// ExtBits is the number of extended basis streams the program may read
	// beyond the eight raw transposed streams: MatchBasis bits in
	// [8, 8+ExtBits) address shared character-class streams computed once
	// per engine scan (see package lower's shared-CC support).
	ExtBits int
}

// BarrierSchedule records which shift statements share a synchronization
// point after barrier merging. The interleaved executor charges one barrier
// pair per group instead of one per shift.
type BarrierSchedule struct {
	// Groups lists, per merged group, the statement identities (pointers
	// into the program) of the co-scheduled shifts.
	Groups [][]*Assign
	// MergeSize is the configured maximum group size.
	MergeSize int
	// DedupedCopies counts shared-memory stores avoided because multiple
	// shifts of the same source variable were merged (Section 5.3).
	DedupedCopies int
}

// NewVar allocates a fresh variable.
func (p *Program) NewVar() VarID {
	v := VarID(p.NumVars)
	p.NumVars++
	return v
}

// Clone returns a deep copy of the program. The barrier schedule is carried
// over by remapping its statement identities onto the cloned assignments
// (matched by pre-order position, which cloning preserves).
func (p *Program) Clone() *Program {
	out := &Program{NumVars: p.NumVars, ExtBits: p.ExtBits, Outputs: append([]Output(nil), p.Outputs...)}
	out.Stmts = cloneStmts(p.Stmts)
	if p.Barriers != nil {
		oldIdx := make(map[*Assign]int)
		WalkStmts(p.Stmts, func(s Stmt) {
			if a, ok := s.(*Assign); ok {
				oldIdx[a] = len(oldIdx)
			}
		})
		var newAssigns []*Assign
		WalkStmts(out.Stmts, func(s Stmt) {
			if a, ok := s.(*Assign); ok {
				newAssigns = append(newAssigns, a)
			}
		})
		sched := &BarrierSchedule{
			MergeSize:     p.Barriers.MergeSize,
			DedupedCopies: p.Barriers.DedupedCopies,
			Groups:        make([][]*Assign, len(p.Barriers.Groups)),
		}
		for gi, g := range p.Barriers.Groups {
			ng := make([]*Assign, len(g))
			for i, a := range g {
				ng[i] = newAssigns[oldIdx[a]]
			}
			sched.Groups[gi] = ng
		}
		out.Barriers = sched
	}
	return out
}

func cloneStmts(list []Stmt) []Stmt {
	out := make([]Stmt, len(list))
	for i, s := range list {
		switch x := s.(type) {
		case *Assign:
			c := *x
			out[i] = &c
		case *If:
			out[i] = &If{Cond: x.Cond, Body: cloneStmts(x.Body)}
		case *While:
			out[i] = &While{Cond: x.Cond, Body: cloneStmts(x.Body)}
		case *Guard:
			c := *x
			out[i] = &c
		default:
			panic("ir: unknown statement type in Clone")
		}
	}
	return out
}

// Operands returns the variables read by an expression.
func Operands(e Expr) []VarID {
	switch x := e.(type) {
	case Copy:
		return []VarID{x.Src}
	case Not:
		return []VarID{x.Src}
	case Bin:
		return []VarID{x.X, x.Y}
	case Shift:
		return []VarID{x.Src}
	case Add:
		return []VarID{x.X, x.Y}
	case StarThru:
		return []VarID{x.M, x.C}
	}
	return nil
}

// OperandsInto is Operands without the per-call allocation: it writes the
// operand VarIDs into buf and returns the filled prefix. Compiler passes
// that walk whole programs per fixpoint round use this on their hot path.
func OperandsInto(e Expr, buf *[2]VarID) []VarID {
	switch x := e.(type) {
	case Copy:
		buf[0] = x.Src
		return buf[:1]
	case Not:
		buf[0] = x.Src
		return buf[:1]
	case Bin:
		buf[0], buf[1] = x.X, x.Y
		return buf[:2]
	case Shift:
		buf[0] = x.Src
		return buf[:1]
	case Add:
		buf[0], buf[1] = x.X, x.Y
		return buf[:2]
	case StarThru:
		buf[0], buf[1] = x.M, x.C
		return buf[:2]
	}
	return buf[:0]
}

// WalkStmts visits every statement (pre-order, recursing into bodies).
func WalkStmts(list []Stmt, fn func(Stmt)) {
	for _, s := range list {
		fn(s)
		switch x := s.(type) {
		case *If:
			WalkStmts(x.Body, fn)
		case *While:
			WalkStmts(x.Body, fn)
		}
	}
}

// Stats summarizes a program's instruction mix (the columns of Table 1).
type Stats struct {
	And, Or, Not, Xor, Shift, Add, Star, While, If int
	Assigns                                        int
}

// Total returns the total instruction count.
func (s Stats) Total() int {
	return s.And + s.Or + s.Not + s.Xor + s.Shift + s.Add + s.Star + s.While + s.If
}

// CollectStats counts the instruction mix of a program.
func CollectStats(p *Program) Stats {
	var st Stats
	WalkStmts(p.Stmts, func(s Stmt) {
		switch x := s.(type) {
		case *Assign:
			st.Assigns++
			switch e := x.Expr.(type) {
			case Bin:
				switch e.Op {
				case OpAnd, OpAndNot:
					st.And++
				case OpOr:
					st.Or++
				case OpXor:
					st.Xor++
				}
			case Not:
				st.Not++
			case Shift:
				st.Shift++
			case Add:
				st.Add++
			case StarThru:
				st.Star++
			}
		case *While:
			st.While++
		case *If:
			st.If++
		}
	})
	return st
}

// CCRef is a compiled character class retained for diagnostics: the lowering
// registers each class it expands so tools can report them.
type CCRef struct {
	Class charclass.Class
	Var   VarID
}
