package ir

import (
	"strings"
	"testing"

	"bitgen/internal/charclass"
	"bitgen/internal/transpose"
)

func TestExprStringAllForms(t *testing.T) {
	cases := map[string]Expr{
		"0":                 Zero{},
		"~0":                Ones{},
		"S1":                Copy{1},
		"~S1":               Not{1},
		"S1 & S2":           Bin{OpAnd, 1, 2},
		"S1 | S2":           Bin{OpOr, 1, 2},
		"S1 ^ S2":           Bin{OpXor, 1, 2},
		"S1 &~ S2":          Bin{OpAndNot, 1, 2},
		"S1 >> 3":           Shift{1, 3},
		"S1 << 3":           Shift{1, -3},
		"S1 + S2":           Add{1, 2},
		"MatchStar(S1, S2)": StarThru{1, 2},
		"b5":                MatchBasis{5},
	}
	for want, e := range cases {
		if got := ExprString(e); got != want {
			t.Errorf("ExprString(%T) = %q, want %q", e, got, want)
		}
	}
}

func TestBinOpStrings(t *testing.T) {
	for op, want := range map[BinOp]string{
		OpAnd: "&", OpOr: "|", OpXor: "^", OpAndNot: "&~", BinOp(99): "?",
	} {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
}

func TestProgramStringWithControlFlow(t *testing.T) {
	b := NewBuilder()
	v := b.Emit(Ones{})
	w := b.NewVar()
	b.EmitTo(w, Zero{})
	b.If(v, func() {
		b.EmitTo(w, Copy{v})
	})
	b.While(w, func() {
		b.EmitTo(w, Zero{})
	})
	p := b.Program()
	p.Stmts = append(p.Stmts, &Guard{Cond: v, Skip: 0}) // for printing only
	p.Stmts = append(p.Stmts, &Assign{Dst: w, Expr: Copy{v}})
	b.Output("x", w)
	text := p.String()
	for _, want := range []string{"if (S0):", "while (S1):", "if (!S0) skip 0", "# output x"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestValidateMoreErrors(t *testing.T) {
	// Unknown basis bit caught (done elsewhere); here: guard cond OK but
	// skip covering an If whose body defines vars — exercise zeroDefs on
	// nested statements via interpretation.
	b := NewBuilder()
	cond := b.MatchClass(charclass.Single('q')) // absent from input
	dead := b.NewVar()
	guard := &Guard{Cond: cond, Skip: 1}
	p := b.Program()
	p.Stmts = append(p.Stmts, guard)
	ifStmt := &If{Cond: cond, Body: []Stmt{&Assign{Dst: dead, Expr: Ones{}}}}
	p.Stmts = append(p.Stmts, ifStmt)
	out := b.Or(dead, cond)
	b.Output("o", out)
	if err := Validate(p); err != nil {
		t.Fatalf("Validate: %v\n%s", err, p)
	}
	basis := transpose.Transpose([]byte("abcabc"))
	res, err := Interpret(p, basis, InterpOptions{HonorGuards: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["o"].Any() {
		t.Fatal("guarded-off if body leaked ones")
	}
	if res.Stats.GuardSkips != 1 {
		t.Fatalf("GuardSkips = %d", res.Stats.GuardSkips)
	}
}

func TestInterpretMissingOutput(t *testing.T) {
	p := &Program{NumVars: 1, Outputs: []Output{{Name: "x", Var: 0}}}
	basis := transpose.Transpose([]byte("ab"))
	if _, err := Interpret(p, basis, InterpOptions{}); err == nil {
		t.Fatal("unassigned output accepted")
	}
}

func TestInterpretWhileZeroIterations(t *testing.T) {
	b := NewBuilder()
	z := b.Zero()
	acc := b.Emit(Ones{})
	b.While(z, func() {
		b.EmitTo(acc, Zero{})
	})
	b.Output("acc", acc)
	p := b.Program()
	basis := transpose.Transpose([]byte("xy"))
	res, err := Interpret(p, basis, InterpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["acc"].Popcount() != 2 {
		t.Fatal("zero-iteration while modified accumulator")
	}
	if res.Stats.WhileIterations != 0 {
		t.Fatal("phantom loop iterations")
	}
}

func TestCollectStatsControlFlow(t *testing.T) {
	b := NewBuilder()
	v := b.Emit(Ones{})
	x := b.Xor(v, v)
	s := b.Sum(v, x)
	st := b.Emit(StarThru{M: v, C: x})
	b.If(v, func() { b.EmitTo(x, Copy{v}) })
	b.Output("o", st)
	_ = s
	stats := CollectStats(b.Program())
	if stats.Xor != 1 || stats.Add != 1 || stats.Star != 1 || stats.If != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestCloneGuard(t *testing.T) {
	p := &Program{NumVars: 1}
	p.Stmts = []Stmt{
		&Assign{Dst: 0, Expr: Zero{}},
		&Guard{Cond: 0, Skip: 0},
	}
	q := p.Clone()
	q.Stmts[1].(*Guard).Skip = 5
	if p.Stmts[1].(*Guard).Skip != 0 {
		t.Fatal("Clone shares Guard nodes")
	}
}

func TestBuilderAdvancePanicsOnBadDistance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder()
	v := b.Zero()
	b.Advance(v, 0)
}

func TestBuilderMatchClassInsideControlFlowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder()
	v := b.Emit(Ones{})
	b.If(v, func() {
		b.MatchClass(charclass.Single('x'))
	})
}
