package ir

import (
	"fmt"

	"bitgen/internal/charclass"
)

// Builder incrementally constructs a Program with fresh-variable
// bookkeeping and nested control-flow scopes.
type Builder struct {
	prog  *Program
	stack []*[]Stmt // innermost body last
	// ccCache shares the instruction sequence of repeated character
	// classes within one program (common in multi-regex groups).
	ccCache map[charclass.Class]VarID
	// basisCache shares MatchBasis reads.
	basisCache [8]VarID
	// extCache shares extended-basis (shared character-class) reads.
	extCache map[int]VarID
	// shared maps classes whose match streams the engine computes once per
	// scan to their extended-basis slot; MatchClass reads MatchBasis{8+slot}
	// for them instead of expanding the class inline.
	shared map[charclass.Class]int
	// CCs records every distinct class expanded, for diagnostics.
	CCs []CCRef
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	b := &Builder{prog: &Program{}, ccCache: make(map[charclass.Class]VarID)}
	b.stack = append(b.stack, &b.prog.Stmts)
	for i := range b.basisCache {
		b.basisCache[i] = NoVar
	}
	return b
}

func (b *Builder) top() *[]Stmt { return b.stack[len(b.stack)-1] }

// Emit appends an assignment of expr to a fresh variable and returns it.
func (b *Builder) Emit(expr Expr) VarID {
	v := b.prog.NewVar()
	b.EmitTo(v, expr)
	return v
}

// EmitTo appends an assignment of expr to an existing variable.
func (b *Builder) EmitTo(dst VarID, expr Expr) {
	*b.top() = append(*b.top(), &Assign{Dst: dst, Expr: expr})
}

// NewVar allocates a variable without assigning it.
func (b *Builder) NewVar() VarID { return b.prog.NewVar() }

// Zero emits an all-zero assignment.
func (b *Builder) Zero() VarID { return b.Emit(Zero{}) }

// And emits x & y.
func (b *Builder) And(x, y VarID) VarID { return b.Emit(Bin{OpAnd, x, y}) }

// Or emits x | y.
func (b *Builder) Or(x, y VarID) VarID { return b.Emit(Bin{OpOr, x, y}) }

// AndNot emits x &^ y.
func (b *Builder) AndNot(x, y VarID) VarID { return b.Emit(Bin{OpAndNot, x, y}) }

// Xor emits x ^ y.
func (b *Builder) Xor(x, y VarID) VarID { return b.Emit(Bin{OpXor, x, y}) }

// Sum emits the arithmetic addition x + y (MatchStar's carry smear).
func (b *Builder) Sum(x, y VarID) VarID { return b.Emit(Add{x, y}) }

// Not emits ~x.
func (b *Builder) Not(x VarID) VarID { return b.Emit(Not{x}) }

// Advance emits the paper's x >> k (k > 0).
func (b *Builder) Advance(x VarID, k int) VarID {
	if k <= 0 {
		panic(fmt.Sprintf("ir: Advance distance %d", k))
	}
	return b.Emit(Shift{x, k})
}

// If opens an if(cond) block, runs body, and closes it.
func (b *Builder) If(cond VarID, body func()) {
	blk := &If{Cond: cond}
	*b.top() = append(*b.top(), blk)
	b.stack = append(b.stack, &blk.Body)
	body()
	b.stack = b.stack[:len(b.stack)-1]
}

// While opens a while(cond) block, runs body, and closes it.
func (b *Builder) While(cond VarID, body func()) {
	blk := &While{Cond: cond}
	*b.top() = append(*b.top(), blk)
	b.stack = append(b.stack, &blk.Body)
	body()
	b.stack = b.stack[:len(b.stack)-1]
}

// Basis returns the variable holding basis bitstream j, emitting the read
// on first use.
func (b *Builder) Basis(j int) VarID {
	if b.basisCache[j] != NoVar {
		return b.basisCache[j]
	}
	v := b.Emit(MatchBasis{j})
	b.basisCache[j] = v
	return v
}

// SetShared registers the engine's shared character classes: MatchClass
// reads slot i of the map via MatchBasis{8+i} instead of expanding the
// class, and the built program declares extBits extended basis streams
// (extBits may exceed the map's size when the engine shares more classes
// than this group uses).
func (b *Builder) SetShared(shared map[charclass.Class]int, extBits int) {
	b.shared = shared
	b.prog.ExtBits = extBits
}

// MatchClass expands a character class into bitwise instructions over the
// basis bitstreams (Figure 2 (a)) and returns the match-stream variable.
// Repeated classes are cached, and classes registered via SetShared read
// their precomputed extended-basis stream instead. Only valid at top level
// (outside control flow), which is where lowering emits all class matches.
func (b *Builder) MatchClass(cl charclass.Class) VarID {
	if v, ok := b.ccCache[cl]; ok {
		return v
	}
	if len(b.stack) != 1 {
		panic("ir: MatchClass inside control flow")
	}
	var v VarID
	if slot, ok := b.shared[cl]; ok {
		v = b.extBasis(8 + slot)
	} else {
		v = b.matchExpr(charclass.Compile(cl))
	}
	b.ccCache[cl] = v
	b.CCs = append(b.CCs, CCRef{Class: cl, Var: v})
	return v
}

// extBasis returns the variable holding extended basis stream j (j >= 8),
// emitting the read on first use.
func (b *Builder) extBasis(j int) VarID {
	if v, ok := b.extCache[j]; ok {
		return v
	}
	v := b.Emit(MatchBasis{j})
	if b.extCache == nil {
		b.extCache = make(map[int]VarID)
	}
	b.extCache[j] = v
	return v
}

func (b *Builder) matchExpr(e charclass.Expr) VarID {
	switch x := e.(type) {
	case charclass.True:
		return b.Emit(Ones{})
	case charclass.False:
		return b.Emit(Zero{})
	case charclass.Basis:
		return b.Basis(x.Bit)
	case charclass.Not:
		return b.Not(b.matchExpr(x.X))
	case charclass.And:
		// ¬x ∧ y and x ∧ ¬y fold into a single AndNot instruction, the
		// form SIMD and GPU ISAs provide natively.
		if nx, ok := x.X.(charclass.Not); ok {
			return b.AndNot(b.matchExpr(x.Y), b.matchExpr(nx.X))
		}
		if ny, ok := x.Y.(charclass.Not); ok {
			return b.AndNot(b.matchExpr(x.X), b.matchExpr(ny.X))
		}
		return b.And(b.matchExpr(x.X), b.matchExpr(x.Y))
	case charclass.Or:
		return b.Or(b.matchExpr(x.X), b.matchExpr(x.Y))
	}
	panic(fmt.Sprintf("ir: unknown class expression %T", e))
}

// Output registers a named output stream.
func (b *Builder) Output(name string, v VarID) {
	b.prog.Outputs = append(b.prog.Outputs, Output{Name: name, Var: v})
}

// OutputNullable registers a named output stream whose regex matches the
// empty string; executors append the end-of-input empty match to it.
func (b *Builder) OutputNullable(name string, v VarID) {
	b.prog.Outputs = append(b.prog.Outputs, Output{Name: name, Var: v, Nullable: true})
}

// Program finalizes and returns the built program.
func (b *Builder) Program() *Program {
	if len(b.stack) != 1 {
		panic("ir: unclosed control-flow scope")
	}
	return b.prog
}
