package ir

import (
	"fmt"
	"strings"
)

// String renders the program in the paper's listing style, e.g.
//
//	S3 = S1 & S2
//	while (S3):
//	    S4 = S3 >> 1
func (p *Program) String() string {
	var b strings.Builder
	writeStmts(&b, p.Stmts, 0)
	for _, o := range p.Outputs {
		fmt.Fprintf(&b, "# output %s = S%d\n", o.Name, o.Var)
	}
	return b.String()
}

func writeStmts(b *strings.Builder, list []Stmt, depth int) {
	indent := strings.Repeat("    ", depth)
	for _, s := range list {
		switch x := s.(type) {
		case *Assign:
			fmt.Fprintf(b, "%sS%d = %s\n", indent, x.Dst, ExprString(x.Expr))
		case *If:
			fmt.Fprintf(b, "%sif (S%d):\n", indent, x.Cond)
			writeStmts(b, x.Body, depth+1)
		case *While:
			fmt.Fprintf(b, "%swhile (S%d):\n", indent, x.Cond)
			writeStmts(b, x.Body, depth+1)
		case *Guard:
			fmt.Fprintf(b, "%sif (!S%d) skip %d\n", indent, x.Cond, x.Skip)
		}
	}
}

// ExprString renders an expression in listing style.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case Zero:
		return "0"
	case Ones:
		return "~0"
	case Copy:
		return fmt.Sprintf("S%d", x.Src)
	case Not:
		return fmt.Sprintf("~S%d", x.Src)
	case Bin:
		return fmt.Sprintf("S%d %s S%d", x.X, x.Op, x.Y)
	case Shift:
		if x.K >= 0 {
			return fmt.Sprintf("S%d >> %d", x.Src, x.K)
		}
		return fmt.Sprintf("S%d << %d", x.Src, -x.K)
	case Add:
		return fmt.Sprintf("S%d + S%d", x.X, x.Y)
	case StarThru:
		return fmt.Sprintf("MatchStar(S%d, S%d)", x.M, x.C)
	case MatchBasis:
		return fmt.Sprintf("b%d", x.Bit)
	}
	return fmt.Sprintf("?%T", e)
}
