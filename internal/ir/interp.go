package ir

import (
	"fmt"

	"bitgen/internal/bitstream"
	"bitgen/internal/transpose"
)

// ExecStats reports the dynamic cost of a whole-stream interpretation.
type ExecStats struct {
	// Instructions is the number of assignments executed (each touching
	// the full stream).
	Instructions int64
	// WhileIterations is the total number of loop-body executions.
	WhileIterations int64
	// GuardSkips counts guard-triggered skips (only when guards are
	// honored).
	GuardSkips int64
	// StreamBytesTouched approximates memory traffic: bytes of operand
	// and result streams moved per executed assignment.
	StreamBytesTouched int64
}

// InterpOptions control interpretation.
type InterpOptions struct {
	// HonorGuards executes Guard statements (skipping and zeroing) instead
	// of ignoring them. Both settings must yield identical outputs; tests
	// rely on that equivalence.
	HonorGuards bool
	// MaxWhileIterations caps fixed-point loops as a non-termination
	// safety net. Zero means 2*len(input)+16.
	MaxWhileIterations int
}

// Result holds the interpreter's outputs.
type Result struct {
	// Outputs maps each program output name to its match stream.
	Outputs map[string]*bitstream.Stream
	// Vars is the final environment, indexed by VarID (nil = never
	// assigned).
	Vars  []*bitstream.Stream
	Stats ExecStats
}

// Interpret executes a bitstream program over the full input, one
// instruction at a time across the entire stream — the execution model of
// CPU bitstream engines like icgrep, and the golden reference for the GPU
// executors.
func Interpret(p *Program, basis *transpose.Basis, opts InterpOptions) (*Result, error) {
	n := basis.N
	maxIter := opts.MaxWhileIterations
	if maxIter == 0 {
		maxIter = 2*n + 16
	}
	env := &interpEnv{
		prog:    p,
		basis:   basis,
		n:       n,
		vars:    make([]*bitstream.Stream, p.NumVars),
		maxIter: maxIter,
		honor:   opts.HonorGuards,
	}
	if err := env.runBody(p.Stmts); err != nil {
		return nil, err
	}
	res := &Result{
		Outputs: make(map[string]*bitstream.Stream, len(p.Outputs)),
		Vars:    env.vars,
		Stats:   env.stats,
	}
	for _, o := range p.Outputs {
		s := env.vars[o.Var]
		if s == nil {
			return nil, fmt.Errorf("ir: output %q (S%d) never assigned", o.Name, o.Var)
		}
		if o.Nullable {
			// The empty match at end-of-input lives one position past the
			// input-length stream; report it on an extended copy.
			ext := s.Extend(1)
			ext.Set(n)
			s = ext
		}
		res.Outputs[o.Name] = s
	}
	return res, nil
}

// ExtendNullableOutputs applies the nullable end-of-input extension to raw
// executor outputs: block-wise executors produce input-length streams, and
// the extra empty-match position of a nullable regex (the empty match after
// the last input byte) is appended here. Input streams are copied before
// growth, never mutated in place — executor sessions pool their buffers.
func ExtendNullableOutputs(p *Program, outs map[string]*bitstream.Stream) map[string]*bitstream.Stream {
	done := make(map[string]*bitstream.Stream, len(outs))
	for _, o := range p.Outputs {
		s := outs[o.Name]
		if s == nil {
			continue
		}
		if o.Nullable {
			ext := s.Extend(1)
			ext.Set(ext.Len() - 1)
			s = ext
		}
		done[o.Name] = s
	}
	return done
}

type interpEnv struct {
	prog    *Program
	basis   *transpose.Basis
	n       int
	vars    []*bitstream.Stream
	stats   ExecStats
	maxIter int
	honor   bool
}

// get reads a variable. A variable that was never assigned on the taken
// path (e.g. one only defined inside an if whose branch was not taken) reads
// as all-zero — the same semantics the block-wise executors give their
// window-fresh register files. Textual use-before-def is still rejected by
// Validate.
func (e *interpEnv) get(v VarID) (*bitstream.Stream, error) {
	s := e.vars[v]
	if s == nil {
		s = bitstream.New(e.n)
		e.vars[v] = s
	}
	return s, nil
}

func (e *interpEnv) runBody(body []Stmt) error {
	for i := 0; i < len(body); i++ {
		switch x := body[i].(type) {
		case *Assign:
			if err := e.assign(x); err != nil {
				return err
			}
		case *If:
			cond, err := e.get(x.Cond)
			if err != nil {
				return err
			}
			if cond.Any() {
				if err := e.runBody(x.Body); err != nil {
					return err
				}
			}
		case *While:
			iters := 0
			for {
				cond, err := e.get(x.Cond)
				if err != nil {
					return err
				}
				if !cond.Any() {
					break
				}
				if iters++; iters > e.maxIter {
					return fmt.Errorf("ir: while(S%d) exceeded %d iterations", x.Cond, e.maxIter)
				}
				e.stats.WhileIterations++
				if err := e.runBody(x.Body); err != nil {
					return err
				}
			}
		case *Guard:
			if !e.honor {
				continue
			}
			cond, err := e.get(x.Cond)
			if err != nil {
				return err
			}
			if !cond.Any() {
				e.stats.GuardSkips++
				for _, s := range body[i+1 : i+1+x.Skip] {
					e.zeroDefs(s)
				}
				i += x.Skip
			}
		default:
			return fmt.Errorf("ir: unknown statement %T", body[i])
		}
	}
	return nil
}

// zeroDefs sets every variable assigned (transitively) by s to all-zero,
// the semantics of a taken zero-block guard.
func (e *interpEnv) zeroDefs(s Stmt) {
	switch x := s.(type) {
	case *Assign:
		e.vars[x.Dst] = bitstream.New(e.n)
	case *If:
		for _, b := range x.Body {
			e.zeroDefs(b)
		}
	case *While:
		for _, b := range x.Body {
			e.zeroDefs(b)
		}
	}
}

func (e *interpEnv) assign(a *Assign) error {
	var out *bitstream.Stream
	switch x := a.Expr.(type) {
	case Zero:
		out = bitstream.New(e.n)
	case Ones:
		out = bitstream.NewOnes(e.n)
	case Copy:
		s, err := e.get(x.Src)
		if err != nil {
			return err
		}
		out = s.Clone()
	case Not:
		s, err := e.get(x.Src)
		if err != nil {
			return err
		}
		out = s.Not()
	case Bin:
		sx, err := e.get(x.X)
		if err != nil {
			return err
		}
		sy, err := e.get(x.Y)
		if err != nil {
			return err
		}
		switch x.Op {
		case OpAnd:
			out = sx.And(sy)
		case OpOr:
			out = sx.Or(sy)
		case OpXor:
			out = sx.Xor(sy)
		case OpAndNot:
			out = sx.AndNot(sy)
		default:
			return fmt.Errorf("ir: unknown binop %v", x.Op)
		}
	case Shift:
		s, err := e.get(x.Src)
		if err != nil {
			return err
		}
		out = s.Shift(x.K)
	case Add:
		sx, err := e.get(x.X)
		if err != nil {
			return err
		}
		sy, err := e.get(x.Y)
		if err != nil {
			return err
		}
		out = sx.Add(sy)
	case StarThru:
		m, err := e.get(x.M)
		if err != nil {
			return err
		}
		c, err := e.get(x.C)
		if err != nil {
			return err
		}
		out = bitstream.MatchStar(m, c)
	case MatchBasis:
		out = e.basis.Bit(x.Bit).Clone()
	default:
		return fmt.Errorf("ir: unknown expression %T", a.Expr)
	}
	e.vars[a.Dst] = out
	e.stats.Instructions++
	// Operand reads + result write, in bytes of full-stream traffic.
	nBytes := int64((e.n + 7) / 8)
	e.stats.StreamBytesTouched += nBytes * int64(len(Operands(a.Expr))+1)
	return nil
}
