// Package transpose converts a byte stream into the eight basis bitstreams
// of the Parabix representation and back.
//
// Basis bitstream b_j holds bit j of every input byte: following the paper's
// convention, b_0 carries the most significant bit (so the ASCII byte
// 01100001 for 'a' sets b_1, b_2 and b_7 at that position). The transpose is
// the preprocessing kernel the paper runs on the GPU before bitstream
// execution; here it is a pure CPU routine that the simulator charges for.
package transpose

import (
	"fmt"

	"bitgen/internal/bitstream"
)

// NumBasis is the number of basis bitstreams (one per bit of a byte).
const NumBasis = 8

// Basis holds the eight transposed bitstreams of an input. Basis[0] is the
// most significant bit of each byte.
type Basis struct {
	Streams [NumBasis]*bitstream.Stream
	N       int // input length in bytes == stream length in bits
}

// Transpose computes the serial-to-parallel transform of text.
func Transpose(text []byte) *Basis {
	n := len(text)
	b := &Basis{N: n}
	words := make([][]uint64, NumBasis)
	nw := bitstream.WordsFor(n)
	for j := range words {
		words[j] = make([]uint64, nw)
	}
	for i, c := range text {
		wi, bit := i/bitstream.WordBits, uint64(1)<<(uint(i)%bitstream.WordBits)
		for j := 0; j < NumBasis; j++ {
			if c&(0x80>>uint(j)) != 0 {
				words[j][wi] |= bit
			}
		}
	}
	for j := range words {
		b.Streams[j] = bitstream.FromWords(words[j], n)
	}
	return b
}

// Inverse reconstructs the byte stream from the basis (parallel-to-serial).
// It is the round-trip check used by the tests.
func (b *Basis) Inverse() []byte {
	out := make([]byte, b.N)
	for j := 0; j < NumBasis; j++ {
		s := b.Streams[j]
		if s.Len() != b.N {
			panic(fmt.Sprintf("transpose: basis %d has %d bits, want %d", j, s.Len(), b.N))
		}
		mask := byte(0x80 >> uint(j))
		for _, p := range s.Positions() {
			out[p] |= mask
		}
	}
	return out
}

// Bit returns basis stream j (0 = most significant bit of each byte).
func (b *Basis) Bit(j int) *bitstream.Stream {
	return b.Streams[j]
}

// BytesMoved returns the number of bytes the transpose kernel reads plus
// writes, used by the GPU simulator's traffic accounting (input bytes in,
// the same volume out as bit-planes).
func (b *Basis) BytesMoved() int64 {
	return 2 * int64(b.N)
}
