// Package transpose converts a byte stream into the eight basis bitstreams
// of the Parabix representation and back.
//
// Basis bitstream b_j holds bit j of every input byte: following the paper's
// convention, b_0 carries the most significant bit (so the ASCII byte
// 01100001 for 'a' sets b_1, b_2 and b_7 at that position). The transpose is
// the preprocessing kernel the paper runs on the GPU before bitstream
// execution; here it is a pure CPU routine that the simulator charges for.
//
// The transform is computed word-parallel: each run of 8 input bytes is an
// 8×8 bit matrix transposed with the Hacker's Delight shuffle (the same
// trick Parabix's s2p kernel uses), so the hot loop touches whole 64-bit
// words instead of scattering individual bits.
package transpose

import (
	"encoding/binary"
	"fmt"

	"bitgen/internal/bitstream"
)

// NumBasis is the number of basis bitstreams (one per bit of a byte).
const NumBasis = 8

// Basis holds the eight transposed bitstreams of an input. Basis[0] is the
// most significant bit of each byte.
//
// A Basis produced by TransposeInto owns reusable backing buffers: passing
// it to TransposeInto again overwrites them in place with no allocation
// (provided the input does not outgrow the buffers' capacity), which is the
// steady state of the streaming scanner.
type Basis struct {
	Streams [NumBasis]*bitstream.Stream
	N       int // input length in bytes == stream length in bits

	// Ext holds extended basis streams beyond the eight raw bit-planes:
	// shared character-class streams an engine computes once per scan and
	// binds here so every group's program reads them through Bit(8+i).
	// TransposeInto leaves Ext alone; the engine rebinds it per chunk.
	Ext []*bitstream.Stream

	// words are the owned backing buffers the Streams point into; headers
	// hold the eight Stream values so reuse allocates nothing.
	words   [NumBasis][]uint64
	headers [NumBasis]bitstream.Stream
}

// Transpose computes the serial-to-parallel transform of text.
func Transpose(text []byte) *Basis {
	return TransposeInto(nil, text)
}

// TransposeInto computes the serial-to-parallel transform of text into dst,
// reusing dst's backing buffers when their capacity suffices. A nil dst
// allocates a fresh Basis. It returns the basis written.
func TransposeInto(dst *Basis, text []byte) *Basis {
	n := len(text)
	nw := bitstream.WordsFor(n)
	if dst == nil {
		dst = &Basis{}
	}
	dst.N = n
	for j := 0; j < NumBasis; j++ {
		if cap(dst.words[j]) < nw {
			dst.words[j] = make([]uint64, nw)
		}
		dst.words[j] = dst.words[j][:nw]
	}
	transposeWords(&dst.words, text)
	for j := 0; j < NumBasis; j++ {
		dst.headers[j].Reinit(dst.words[j], n)
		dst.Streams[j] = &dst.headers[j]
	}
	return dst
}

// SetWords points basis stream j at the caller-supplied backing words for n
// bits without copying; used by callers that manage stream storage in an
// arena. The words are overwritten by the next TransposeInto.
func (b *Basis) SetWords(j int, words []uint64) {
	b.words[j] = words
}

// transpose8 transposes an 8×8 bit matrix held row-major in x: byte k of x
// is row k, and bit j of row k becomes bit k of row j. Hacker's Delight
// figure 7-3, the three-exchange network.
func transpose8(x uint64) uint64 {
	t := (x ^ (x >> 7)) & 0x00AA00AA00AA00AA
	x = x ^ t ^ (t << 7)
	t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCC
	x = x ^ t ^ (t << 14)
	t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0
	return x ^ t ^ (t << 28)
}

// transposeWords fills the eight basis word vectors from text, 64 input
// bytes per output word. Rows of each 8-byte group become the group's bit
// columns: after transpose8, output byte p holds bit position p of each of
// the 8 input bytes, so basis stream j (MSB-first convention) is byte 7-j.
func transposeWords(words *[NumBasis][]uint64, text []byte) {
	n := len(text)
	full := n &^ 63 // bytes covered by complete 64-byte blocks
	for base := 0; base < full; base += 64 {
		blk := text[base : base+64 : base+64]
		w := base >> 6
		var acc [NumBasis]uint64
		for g := 0; g < 8; g++ {
			y := transpose8(binary.LittleEndian.Uint64(blk[g*8:]))
			sh := uint(8 * g)
			acc[0] |= (y >> 56) & 0xff << sh
			acc[1] |= (y >> 48) & 0xff << sh
			acc[2] |= (y >> 40) & 0xff << sh
			acc[3] |= (y >> 32) & 0xff << sh
			acc[4] |= (y >> 24) & 0xff << sh
			acc[5] |= (y >> 16) & 0xff << sh
			acc[6] |= (y >> 8) & 0xff << sh
			acc[7] |= y & 0xff << sh
		}
		for j := 0; j < NumBasis; j++ {
			words[j][w] = acc[j]
		}
	}
	if full == n {
		return
	}
	// Tail: pad the final partial block with zeros and run the same path.
	var pad [64]byte
	copy(pad[:], text[full:])
	var acc [NumBasis]uint64
	for g := 0; g < 8; g++ {
		y := transpose8(binary.LittleEndian.Uint64(pad[g*8:]))
		sh := uint(8 * g)
		for j := 0; j < NumBasis; j++ {
			acc[j] |= (y >> uint(8*(7-j))) & 0xff << sh
		}
	}
	w := full >> 6
	for j := 0; j < NumBasis; j++ {
		words[j][w] = acc[j]
		// Words past the last are absent: nw == w+1 for a partial tail.
	}
}

// Inverse reconstructs the byte stream from the basis (parallel-to-serial).
// It is the round-trip check used by the tests.
func (b *Basis) Inverse() []byte {
	out := make([]byte, b.N)
	for j := 0; j < NumBasis; j++ {
		s := b.Streams[j]
		if s.Len() != b.N {
			panic(fmt.Sprintf("transpose: basis %d has %d bits, want %d", j, s.Len(), b.N))
		}
		mask := byte(0x80 >> uint(j))
		for _, p := range s.Positions() {
			out[p] |= mask
		}
	}
	return out
}

// Bit returns basis stream j: 0-7 are the raw bit-planes (0 = most
// significant bit of each byte); j >= 8 indexes the bound extended
// (shared character-class) streams.
func (b *Basis) Bit(j int) *bitstream.Stream {
	if j < NumBasis {
		return b.Streams[j]
	}
	return b.Ext[j-NumBasis]
}

// BytesMoved returns the number of bytes the transpose kernel reads plus
// writes, used by the GPU simulator's traffic accounting (input bytes in,
// the same volume out as bit-planes).
func (b *Basis) BytesMoved() int64 {
	return 2 * int64(b.N)
}
