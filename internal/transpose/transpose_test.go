package transpose

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransposeKnownByte(t *testing.T) {
	// 'a' = 0x61 = 01100001: bits 1, 2 and 7 (MSB-first) are set.
	b := Transpose([]byte("a"))
	want := map[int]bool{1: true, 2: true, 7: true}
	for j := 0; j < NumBasis; j++ {
		if got := b.Bit(j).Test(0); got != want[j] {
			t.Errorf("basis %d at position 0 = %v, want %v", j, got, want[j])
		}
	}
}

func TestTransposePositions(t *testing.T) {
	text := []byte("ab") // 'a'=0x61, 'b'=0x62
	b := Transpose(text)
	// Basis 6 (bit value 0x02) is set only for 'b'; basis 7 (0x01) only for 'a'.
	if got := b.Bit(6).Positions(); len(got) != 1 || got[0] != 1 {
		t.Errorf("basis 6 positions = %v, want [1]", got)
	}
	if got := b.Bit(7).Positions(); len(got) != 1 || got[0] != 0 {
		t.Errorf("basis 7 positions = %v, want [0]", got)
	}
}

func TestRoundTripEmpty(t *testing.T) {
	b := Transpose(nil)
	if b.N != 0 {
		t.Fatalf("N = %d, want 0", b.N)
	}
	if got := b.Inverse(); len(got) != 0 {
		t.Fatalf("Inverse of empty = %v", got)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(Transpose(data).Inverse(), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripLong(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 100_000)
	rng.Read(data)
	if !bytes.Equal(Transpose(data).Inverse(), data) {
		t.Fatal("100k round trip failed")
	}
}

func TestBytesMoved(t *testing.T) {
	if got := Transpose(make([]byte, 1000)).BytesMoved(); got != 2000 {
		t.Fatalf("BytesMoved = %d, want 2000", got)
	}
}
