package transpose

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransposeKnownByte(t *testing.T) {
	// 'a' = 0x61 = 01100001: bits 1, 2 and 7 (MSB-first) are set.
	b := Transpose([]byte("a"))
	want := map[int]bool{1: true, 2: true, 7: true}
	for j := 0; j < NumBasis; j++ {
		if got := b.Bit(j).Test(0); got != want[j] {
			t.Errorf("basis %d at position 0 = %v, want %v", j, got, want[j])
		}
	}
}

func TestTransposePositions(t *testing.T) {
	text := []byte("ab") // 'a'=0x61, 'b'=0x62
	b := Transpose(text)
	// Basis 6 (bit value 0x02) is set only for 'b'; basis 7 (0x01) only for 'a'.
	if got := b.Bit(6).Positions(); len(got) != 1 || got[0] != 1 {
		t.Errorf("basis 6 positions = %v, want [1]", got)
	}
	if got := b.Bit(7).Positions(); len(got) != 1 || got[0] != 0 {
		t.Errorf("basis 7 positions = %v, want [0]", got)
	}
}

func TestRoundTripEmpty(t *testing.T) {
	b := Transpose(nil)
	if b.N != 0 {
		t.Fatalf("N = %d, want 0", b.N)
	}
	if got := b.Inverse(); len(got) != 0 {
		t.Fatalf("Inverse of empty = %v", got)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(Transpose(data).Inverse(), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripLong(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 100_000)
	rng.Read(data)
	if !bytes.Equal(Transpose(data).Inverse(), data) {
		t.Fatal("100k round trip failed")
	}
}

func TestBytesMoved(t *testing.T) {
	if got := Transpose(make([]byte, 1000)).BytesMoved(); got != 2000 {
		t.Fatalf("BytesMoved = %d, want 2000", got)
	}
}

// naiveTranspose is the per-byte bit-scatter reference the word-parallel
// implementation replaced; the differential tests pin them together.
func naiveTranspose(text []byte) *Basis {
	n := len(text)
	b := &Basis{N: n}
	words := make([][]uint64, NumBasis)
	nw := (n + 63) / 64
	for j := range words {
		words[j] = make([]uint64, nw)
	}
	for i, c := range text {
		wi, bit := i/64, uint64(1)<<(uint(i)%64)
		for j := 0; j < NumBasis; j++ {
			if c&(0x80>>uint(j)) != 0 {
				words[j][wi] |= bit
			}
		}
	}
	for j := range words {
		b.headers[j].Reinit(words[j], n)
		b.Streams[j] = &b.headers[j]
	}
	return b
}

// TestWordParallelMatchesNaive differentially checks the 8×8 block
// transpose against the scalar reference at sizes straddling every word and
// block boundary.
func TestWordParallelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sizes := []int{0, 1, 7, 8, 9, 63, 64, 65, 127, 128, 129, 192, 1000, 4096, 4097}
	for _, n := range sizes {
		data := make([]byte, n)
		rng.Read(data)
		got, want := Transpose(data), naiveTranspose(data)
		for j := 0; j < NumBasis; j++ {
			if !got.Bit(j).Equal(want.Bit(j)) {
				t.Fatalf("n=%d basis %d mismatch:\ngot  %s\nwant %s",
					n, j, got.Bit(j), want.Bit(j))
			}
		}
	}
}

// TestQuickWordParallelMatchesNaive fuzzes the differential.
func TestQuickWordParallelMatchesNaive(t *testing.T) {
	f := func(data []byte) bool {
		got, want := Transpose(data), naiveTranspose(data)
		for j := 0; j < NumBasis; j++ {
			if !got.Bit(j).Equal(want.Bit(j)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTransposeIntoReuse verifies that reusing a Basis overwrites it fully
// (no stale bits from a previous, larger input) and allocates nothing in
// steady state.
func TestTransposeIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	long := make([]byte, 1000)
	for i := range long {
		long[i] = 0xff
	}
	b := TransposeInto(nil, long)
	short := make([]byte, 130)
	rng.Read(short)
	TransposeInto(b, short)
	want := naiveTranspose(short)
	for j := 0; j < NumBasis; j++ {
		if !b.Bit(j).Equal(want.Bit(j)) {
			t.Fatalf("reused basis %d mismatch", j)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		TransposeInto(b, short)
	})
	if allocs != 0 {
		t.Fatalf("TransposeInto reuse allocates %v per run, want 0", allocs)
	}
}

func BenchmarkTransposeInto(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(5)).Read(data)
	dst := TransposeInto(nil, data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TransposeInto(dst, data)
	}
}

func BenchmarkTransposeNaive(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(5)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveTranspose(data)
	}
}
