package cluster

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"bitgen/internal/bgerr"
	"bitgen/internal/faultinject"
)

// Forwarding headers. Forwarded marks a request as already routed once —
// the receiving replica serves it locally, never re-forwards (no routing
// loops). DeadlineMS carries the sender's remaining deadline budget in
// milliseconds so the owner's work is bounded by the originating
// request's deadline, not restarted from a fresh default.
const (
	HeaderForwarded  = "X-Bitgen-Forwarded"
	HeaderDeadlineMS = "X-Bitgen-Deadline-Ms"
)

// Transport wraps an http.RoundTripper with deterministic network-level
// fault injection (internal/faultinject's peer points) and automatic
// deadline propagation. The zero value works: nil Base means
// http.DefaultTransport, nil Inject never fires.
type Transport struct {
	Base   http.RoundTripper
	Inject *faultinject.Injector
	// SlowDelay is the latency added when PeerSlow fires (default 50ms).
	SlowDelay time.Duration
	// DropAfter is how many response-body bytes pass before a fired
	// PeerDrop cuts the stream (default 256).
	DropAfter int64
	// Sleep is a test hook; nil means time.Sleep.
	Sleep func(time.Duration)
}

// fire consults both the peer-scoped and unscoped variants of a point.
func (t *Transport) fire(p faultinject.Point, peer string) bool {
	return t.Inject.Fire(p.For(peer)) || t.Inject.Fire(p)
}

// RoundTrip sends the request, applying armed faults for the target peer
// (req.URL.Host). Injected network failures are transient-class
// (errors.Is(err, bgerr.ErrTransient)), so the router's retry/hedge
// machinery treats them exactly like real connection failures.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	peer := req.URL.Host
	if t.fire(faultinject.PeerPartition, peer) {
		return nil, bgerr.Transient(fmt.Errorf("cluster: partitioned from %s: %w",
			peer, faultinject.ErrInjected))
	}
	if t.fire(faultinject.PeerRefuse, peer) {
		return nil, bgerr.Transient(fmt.Errorf("cluster: connection refused by %s: %w",
			peer, faultinject.ErrInjected))
	}
	if t.fire(faultinject.PeerSlow, peer) {
		d := t.SlowDelay
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		sleep := t.Sleep
		if sleep == nil {
			sleep = time.Sleep
		}
		sleep(d)
		if err := req.Context().Err(); err != nil {
			return nil, bgerr.Transient(fmt.Errorf("cluster: slow peer %s: %w", peer, err))
		}
	}
	if dl, ok := req.Context().Deadline(); ok && req.Header.Get(HeaderDeadlineMS) == "" {
		remain := time.Until(dl).Milliseconds()
		if remain < 1 {
			remain = 1
		}
		req.Header.Set(HeaderDeadlineMS, strconv.FormatInt(remain, 10))
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		// Real dial/transport failures are environmental: transient.
		return nil, bgerr.Transient(err)
	}
	if t.fire(faultinject.PeerDrop, peer) {
		after := t.DropAfter
		if after <= 0 {
			after = 256
		}
		resp.Body = &droppingBody{rc: resp.Body, remaining: after, peer: peer}
	}
	return resp, nil
}

// droppingBody cuts a response stream after a fixed number of bytes,
// modeling a connection reset mid-relay.
type droppingBody struct {
	rc        io.ReadCloser
	remaining int64
	peer      string
}

func (d *droppingBody) Read(p []byte) (int, error) {
	if d.remaining <= 0 {
		return 0, bgerr.Transient(fmt.Errorf("cluster: connection to %s dropped mid-stream: %w",
			d.peer, faultinject.ErrInjected))
	}
	if int64(len(p)) > d.remaining {
		p = p[:d.remaining]
	}
	n, err := d.rc.Read(p)
	d.remaining -= int64(n)
	return n, err
}

func (d *droppingBody) Close() error { return d.rc.Close() }
