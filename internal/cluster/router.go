package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"bitgen/internal/faultinject"
	"bitgen/internal/obs"
	"bitgen/internal/resilience"
)

// Config parameterizes a Router. Self and Peers are replica base URLs
// (scheme://host:port); Self must appear in Peers.
type Config struct {
	// Self is this replica's advertised base URL.
	Self string
	// Peers lists every replica's base URL, including Self. Every replica
	// must be configured with the same set (order-independent) so all
	// ring views agree.
	Peers []string
	// VNodes is the virtual nodes per replica on the hash ring
	// (default DefaultVNodes, clamped to MaxVNodes).
	VNodes int
	// BreakerThreshold / BreakerCooldown parameterize the per-peer health
	// ladder (defaults 3 failures / 5s), with cooldowns jittered
	// deterministically from Seed.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HedgeDelay is how long a forward waits on the owner before
	// launching a hedged duplicate to the successor (default 25ms;
	// negative disables hedging — failover stays sequential).
	HedgeDelay time.Duration
	// ForwardTimeout caps one buffered forward attempt (default 5s).
	// Streaming forwards are bounded by the request deadline instead.
	ForwardTimeout time.Duration
	// Seed drives breaker-cooldown jitter.
	Seed uint64
	// Inject arms deterministic network faults on the transport.
	Inject *faultinject.Injector
	// Transport is the base RoundTripper under the fault layer (nil
	// means http.DefaultTransport). SlowDelay tunes the PeerSlow fault;
	// DropAfter tunes PeerDrop's cut point in response-body bytes.
	Transport http.RoundTripper
	SlowDelay time.Duration
	DropAfter int64
	// Now is the breaker clock; nil means time.Now.
	Now func() time.Time
}

// Route is the ring's placement decision for one key.
type Route struct {
	Key string
	// Owner and Successor are replica base URLs; Successor is "" on a
	// one-node ring.
	Owner, Successor string
	// SelfOwner: this node owns the key — serve locally, no forward.
	// SelfStandby: this node is the key's warm standby.
	SelfOwner, SelfStandby bool
}

// peer is one remote replica: its breaker plus metric handles.
type peer struct {
	url   string
	host  string
	br    *resilience.Breaker
	fwd   *obs.Counter
	fails *obs.Counter
	skips *obs.Counter
}

// Router places keys on the ring and forwards requests to their owners,
// guarded by per-peer breakers with hedged retry to the successor. It is
// safe for concurrent use.
type Router struct {
	cfg    Config
	ring   *Ring
	peers  map[string]*peer // keyed by base URL, remote replicas only
	client *http.Client
	ob     *obs.Observer
	now    func() time.Time

	local    *obs.Counter
	hedges   *obs.Counter
	degraded *obs.Counter
	standby  *obs.Counter
	received *obs.Counter
}

// New builds a Router. ob carries the serve-layer registry (for the
// cluster.* metric families) and optionally a tracer for per-forward
// spans; a nil ob disables both.
func New(cfg Config, ob *obs.Observer) (*Router, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: Self is required")
	}
	if _, err := url.Parse(cfg.Self); err != nil {
		return nil, fmt.Errorf("cluster: bad Self %q: %w", cfg.Self, err)
	}
	ring, err := NewRing(append(append([]string(nil), cfg.Peers...), cfg.Self), cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = 25 * time.Millisecond
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 5 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	base := cfg.Transport
	if base == nil {
		// http.DefaultTransport keeps only 2 idle connections per host —
		// a replica forwarding a saturating load to its handful of peers
		// would churn a fresh TCP connection per request. Pool generously:
		// peers are few and long-lived.
		base = &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	r := &Router{
		cfg:   cfg,
		ring:  ring,
		peers: make(map[string]*peer),
		ob:    ob,
		now:   cfg.Now,
		client: &http.Client{Transport: &Transport{
			Base:      base,
			Inject:    cfg.Inject,
			SlowDelay: cfg.SlowDelay,
			DropAfter: cfg.DropAfter,
		}},
	}
	reg := ob.Reg()
	reg.Gauge(obs.MClusterPeers, obs.HClusterPeers).Set(float64(len(ring.Nodes())))
	r.local = reg.Counter(obs.MClusterLocalServes, obs.HClusterLocalServes)
	r.hedges = reg.Counter(obs.MClusterHedges, obs.HClusterHedges)
	r.degraded = reg.Counter(obs.MClusterDegradedServes, obs.HClusterDegradedServes)
	r.standby = reg.Counter(obs.MClusterStandbyServes, obs.HClusterStandbyServes)
	r.received = reg.Counter(obs.MClusterReceivedForwards, obs.HClusterReceivedForwards)
	for _, n := range ring.Nodes() {
		if n == cfg.Self {
			continue
		}
		u, err := url.Parse(n)
		if err != nil || u.Host == "" {
			return nil, fmt.Errorf("cluster: bad peer URL %q", n)
		}
		host := u.Host
		p := &peer{
			url:   n,
			host:  host,
			fwd:   reg.Counter(obs.MClusterForwards, obs.HClusterForwards, obs.L("peer", host)),
			fails: reg.Counter(obs.MClusterForwardErrors, obs.HClusterForwardErrors, obs.L("peer", host)),
			skips: reg.Counter(obs.MClusterPeerSkips, obs.HClusterPeerSkips, obs.L("peer", host)),
		}
		for _, to := range []resilience.State{resilience.Closed, resilience.Open, resilience.HalfOpen} {
			reg.Counter(obs.MClusterPeerFlips, obs.HClusterPeerFlips,
				obs.L("peer", host), obs.L("to", to.String()))
		}
		p.br = resilience.NewBreaker(resilience.BreakerConfig{
			Threshold:  cfg.BreakerThreshold,
			Cooldown:   cfg.BreakerCooldown,
			JitterSeed: cfg.Seed ^ hashKey(n),
			OnState: func(from, to resilience.State, reason string) {
				ob.Instant("cluster", "breaker:"+host, 0,
					obs.A("from", from.String()), obs.A("to", to.String()),
					obs.A("reason", reason))
				reg.Counter(obs.MClusterPeerFlips, obs.HClusterPeerFlips,
					obs.L("peer", host), obs.L("to", to.String())).Inc()
				level := obs.LevelInfo
				if to == resilience.Open {
					level = obs.LevelWarn
				}
				ob.Event(level, "breaker", obs.TraceID{},
					obs.FStr("layer", "cluster"), obs.FStr("peer", host),
					obs.FStr("from", from.String()), obs.FStr("to", to.String()),
					obs.FStr("reason", reason))
			},
		})
		r.peers[n] = p
	}
	return r, nil
}

// Ring exposes the router's ring (read-only).
func (r *Router) Ring() *Ring { return r.ring }

// Self returns this replica's advertised URL.
func (r *Router) Self() string { return r.cfg.Self }

// Route places a key.
func (r *Router) Route(key string) Route {
	owner, succ := r.ring.OwnerSuccessor(key)
	return Route{
		Key:         key,
		Owner:       owner,
		Successor:   succ,
		SelfOwner:   owner == r.cfg.Self,
		SelfStandby: succ == r.cfg.Self,
	}
}

// NoteLocal counts a locally-served key this node owns.
func (r *Router) NoteLocal() { r.local.Inc() }

// NoteReceivedForward counts a forwarded request received from a peer.
func (r *Router) NoteReceivedForward() { r.received.Inc() }

// PeerHealth is one peer's breaker snapshot.
type PeerHealth struct {
	URL string
	resilience.BackendHealth
}

// Health snapshots every remote peer's breaker, in ring order.
func (r *Router) Health() []PeerHealth {
	var out []PeerHealth
	for _, n := range r.ring.Nodes() {
		p := r.peers[n]
		if p == nil {
			continue
		}
		h := p.br.Snapshot()
		h.Name = p.host
		out = append(out, PeerHealth{URL: n, BackendHealth: h})
	}
	return out
}

// ForwardResult carries a peer's response back to the serving layer.
type ForwardResult struct {
	Status      int
	ContentType string
	// Body holds a buffered response; Stream a streaming one (exactly
	// one is set). The caller must Close a Stream.
	Body   []byte
	Stream io.ReadCloser
	Peer   string // base URL of the replica that served
}

// relayable reports whether a peer status is an answer to relay to the
// client (2xx and request-shaped 4xx) rather than a sign the peer cannot
// serve right now (429 overload, 503 draining, any 5xx).
func relayable(status int) bool {
	return status < 500 && status != http.StatusTooManyRequests &&
		status != http.StatusServiceUnavailable
}

// errPeerStatus is a non-relayable peer response.
type errPeerStatus struct {
	peer   string
	status int
}

func (e *errPeerStatus) Error() string {
	return fmt.Sprintf("cluster: peer %s answered %d", e.peer, e.status)
}

// Forward routes one request for key to its owner replica, hedging to
// the successor when the owner is slow, breaker-blocked, or failing.
// body must be the complete request payload (it is replayed across
// attempts); stream selects a streaming response (the caller relays
// res.Stream) versus a buffered one.
//
// ok=false means no remote candidate could serve: the caller must
// execute locally. Forward has already counted the outcome (standby
// serve when this node is the key's warm standby, degraded serve
// otherwise) — graceful degradation is the contract, so Forward never
// returns an error.
func (r *Router) Forward(ctx context.Context, route Route, path, contentType string, body []byte, stream bool) (res *ForwardResult, ok bool) {
	tc, _ := obs.TraceContextFrom(ctx)
	start := r.now()
	span := r.ob.Span("cluster", "forward", 0).
		Arg("key", short(route.Key)).Arg("owner", route.Owner).Arg("path", path).
		Arg("trace", tc.Trace.String())
	defer func() {
		outcome := "degraded-local"
		if res != nil {
			span.Arg("served_by", res.Peer).Arg("status", res.Status)
			outcome = "served"
		} else if route.SelfStandby {
			outcome = "standby-local"
		}
		if res == nil {
			span.Arg("outcome", outcome)
		}
		span.End()
		sp := obs.ReqSpan{
			Trace:          tc.Trace.String(),
			Span:           obs.NewSpanID().String(),
			Parent:         tc.Span.String(),
			Name:           "forward",
			Node:           r.cfg.Self,
			StartUnixMicro: start.UnixMicro(),
			DurMicro:       r.now().Sub(start).Microseconds(),
			Attrs: map[string]string{
				"key":     short(route.Key),
				"owner":   route.Owner,
				"path":    path,
				"outcome": outcome,
			},
		}
		if res != nil {
			sp.Status = res.Status
			sp.Attrs["served_by"] = res.Peer
		}
		r.ob.RecordSpan(sp)
	}()

	var candidates []*peer
	if p := r.peers[route.Owner]; p != nil {
		candidates = append(candidates, p)
	}
	if p := r.peers[route.Successor]; p != nil && route.Successor != route.Owner {
		candidates = append(candidates, p)
	}

	if res := r.race(ctx, tc.Trace, candidates, path, contentType, body, stream); res != nil {
		return res, true
	}
	if route.SelfStandby {
		r.standby.Inc()
		r.ob.Event(obs.LevelInfo, "standby-serve", tc.Trace,
			obs.FStr("key", short(route.Key)))
	} else {
		r.degraded.Inc()
		r.ob.Instant("cluster", "degraded-serve", 0, obs.A("key", short(route.Key)))
		r.ob.Event(obs.LevelWarn, "degraded-serve", tc.Trace,
			obs.FStr("key", short(route.Key)), obs.FStr("owner", route.Owner))
	}
	return nil, false
}

// race runs the candidate attempts: the first candidate launches
// immediately, the next after HedgeDelay (or as soon as the previous
// attempt fails). First relayable response wins; losers are canceled.
func (r *Router) race(ctx context.Context, trace obs.TraceID, candidates []*peer, path, contentType string, body []byte, stream bool) *ForwardResult {
	if len(candidates) == 0 {
		return nil
	}
	type outcome struct {
		res    *ForwardResult
		err    error
		p      *peer
		hedged bool
		cancel context.CancelFunc
	}
	resc := make(chan outcome, len(candidates))
	inflight := 0
	next := 0
	launched := 0
	pending := make(map[*peer]context.CancelFunc, len(candidates))
	launch := func(hedged bool) {
		for next < len(candidates) {
			p := candidates[next]
			next++
			if !p.br.Allow(r.now()) {
				p.skips.Inc()
				continue
			}
			if hedged {
				r.hedges.Inc()
				r.ob.Instant("cluster", "hedge", 0, obs.A("to", p.host))
				r.ob.Event(obs.LevelInfo, "hedge", trace,
					obs.FStr("to", p.host), obs.FStr("path", path))
			}
			p.fwd.Inc()
			launched++
			actx, cancel := context.WithCancel(ctx)
			if !stream {
				actx, cancel = context.WithTimeout(ctx, r.cfg.ForwardTimeout)
			}
			pending[p] = cancel
			inflight++
			go func() {
				res, err := r.attempt(actx, p, path, contentType, body, stream)
				resc <- outcome{res: res, err: err, p: p, hedged: hedged, cancel: cancel}
			}()
			return
		}
	}

	launch(false)
	if inflight == 0 {
		return nil // every candidate breaker-blocked
	}
	var hedgeTimer <-chan time.Time
	if r.cfg.HedgeDelay > 0 && next < len(candidates) {
		t := time.NewTimer(r.cfg.HedgeDelay)
		defer t.Stop()
		hedgeTimer = t.C
	}
	for inflight > 0 {
		select {
		case <-hedgeTimer:
			hedgeTimer = nil
			launch(true)
		case o := <-resc:
			inflight--
			delete(pending, o.p)
			if o.err != nil {
				if ctx.Err() != nil {
					// Caller gave up: don't judge the peer.
					o.p.br.Abandon()
				} else {
					o.p.fails.Inc()
					o.p.br.Failure(r.now(), o.err)
					r.ob.Instant("cluster", "forward-error", 0,
						obs.A("peer", o.p.host), obs.A("error", o.err.Error()))
					r.ob.Event(obs.LevelWarn, "forward-error", trace,
						obs.FStr("peer", o.p.host), obs.FStr("error", o.err.Error()),
						obs.FBool("hedged", o.hedged))
				}
				o.cancel()
				launch(false) // immediate failover if a candidate remains
				continue
			}
			// Winner: cancel the losers and drain their outcomes
			// off-thread so a slow loser never delays the response.
			o.p.br.Success()
			if launched > 1 {
				// More than one attempt ran: record who won the race (the
				// hedged duplicate or the failover retry, vs the owner).
				r.ob.Event(obs.LevelInfo, "hedge-win", trace,
					obs.FStr("peer", o.p.host), obs.FBool("hedged", o.hedged))
			}
			for _, cancel := range pending {
				cancel()
			}
			if remaining := inflight; remaining > 0 {
				go func() {
					for i := 0; i < remaining; i++ {
						lo := <-resc
						if lo.err != nil {
							// We canceled it — no verdict on the peer.
							lo.p.br.Abandon()
						} else {
							lo.p.br.Success()
							if lo.res.Stream != nil {
								lo.res.Stream.Close()
							}
						}
						r.ob.Event(obs.LevelDebug, "hedge-loss", trace,
							obs.FStr("peer", lo.p.host), obs.FBool("hedged", lo.hedged))
						lo.cancel()
					}
				}()
			}
			if o.res.Stream != nil {
				// The stream stays open past this call: tie the attempt
				// context's release to Close.
				o.res.Stream = &cancelOnClose{ReadCloser: o.res.Stream, cancel: o.cancel}
			} else {
				o.cancel()
			}
			return o.res
		}
	}
	return nil
}

// maxSnapshotFetchBytes bounds one peer snapshot transfer; anything
// larger than this is not a plausible engine snapshot.
const maxSnapshotFetchBytes = 64 << 20

// FetchSnapshot asks the key's ring owner (then its successor) for a
// persisted engine snapshot, under the same per-peer breaker rules as
// request forwarding. data == nil with err == nil means no remote
// candidate had one — every candidate is this node, breaker-blocked, or
// answered 404 — which is a normal cache miss, not a fault. A non-nil err
// means attempts were made and all failed; the caller decides whether
// that is worth a metric. The returned bytes are NOT verified here: the
// serve layer decodes and checksums them before trusting anything.
func (r *Router) FetchSnapshot(ctx context.Context, key string) (data []byte, from string, err error) {
	tc, _ := obs.TraceContextFrom(ctx)
	start := r.now()
	span := r.ob.Span("cluster", "snapshot-fetch", 0).Arg("key", short(key)).
		Arg("trace", tc.Trace.String())
	defer func() {
		span.Arg("from", from).End()
		attrs := map[string]string{"key": short(key), "from": from}
		if err != nil {
			attrs["error"] = err.Error()
		}
		r.ob.RecordSpan(obs.ReqSpan{
			Trace:          tc.Trace.String(),
			Span:           obs.NewSpanID().String(),
			Parent:         tc.Span.String(),
			Name:           "snapshot-fetch",
			Node:           r.cfg.Self,
			StartUnixMicro: start.UnixMicro(),
			DurMicro:       r.now().Sub(start).Microseconds(),
			Attrs:          attrs,
		})
	}()
	route := r.Route(key)
	var candidates []*peer
	if p := r.peers[route.Owner]; p != nil {
		candidates = append(candidates, p)
	}
	if p := r.peers[route.Successor]; p != nil && route.Successor != route.Owner {
		candidates = append(candidates, p)
	}
	var lastErr error
	for _, p := range candidates {
		if !p.br.Allow(r.now()) {
			p.skips.Inc()
			continue
		}
		b, status, aerr := r.fetchSnapshotFrom(ctx, p, key)
		if aerr != nil {
			if ctx.Err() != nil {
				// Caller gave up mid-fetch: no verdict on the peer.
				p.br.Abandon()
				return nil, "", aerr
			}
			p.br.Failure(r.now(), aerr)
			r.ob.Instant("cluster", "snapshot-fetch-error", 0,
				obs.A("peer", p.host), obs.A("error", aerr.Error()))
			r.ob.Event(obs.LevelWarn, "snapshot-fetch-error", tc.Trace,
				obs.FStr("peer", p.host), obs.FStr("error", aerr.Error()))
			lastErr = aerr
			continue
		}
		p.br.Success()
		if status == http.StatusOK {
			return b, p.url, nil
		}
		// 404: the peer is healthy but has no snapshot — try the next.
	}
	return nil, "", lastErr
}

// fetchSnapshotFrom executes one snapshot GET against one peer. A 404 is
// a successful answer (status returned, nil error); anything else
// non-200 is a peer fault.
func (r *Router) fetchSnapshotFrom(ctx context.Context, p *peer, key string) ([]byte, int, error) {
	actx, cancel := context.WithTimeout(ctx, r.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, p.url+"/v1/snapshot?set="+url.QueryEscape(key), nil)
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set(HeaderForwarded, "1")
	if tc, ok := obs.TraceContextFrom(actx); ok {
		req.Header.Set(obs.TraceHeader, tc.Header())
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		b, err := io.ReadAll(io.LimitReader(resp.Body, maxSnapshotFetchBytes+1))
		if err != nil {
			return nil, 0, err
		}
		if len(b) > maxSnapshotFetchBytes {
			return nil, 0, fmt.Errorf("cluster: peer %s snapshot for %s exceeds %d bytes", p.host, short(key), maxSnapshotFetchBytes)
		}
		return b, resp.StatusCode, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, resp.StatusCode, nil
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, 0, &errPeerStatus{peer: p.host, status: resp.StatusCode}
	}
}

// attempt executes one forward to one peer.
func (r *Router) attempt(ctx context.Context, p *peer, path, contentType string, body []byte, stream bool) (*ForwardResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set(HeaderForwarded, "1")
	if tc, ok := obs.TraceContextFrom(ctx); ok {
		req.Header.Set(obs.TraceHeader, tc.Header())
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	if !relayable(resp.StatusCode) {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		return nil, &errPeerStatus{peer: p.host, status: resp.StatusCode}
	}
	res := &ForwardResult{
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		Peer:        p.url,
	}
	if stream {
		res.Stream = resp.Body
		return res, nil
	}
	defer resp.Body.Close()
	res.Body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, err // mid-read drop: transient, candidate failed
	}
	return res, nil
}

// cancelOnClose releases an attempt context when the relayed stream is
// closed.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// short abbreviates a pattern-set key for span args.
func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
