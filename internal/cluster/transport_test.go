package cluster

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bitgen/internal/bgerr"
	"bitgen/internal/faultinject"
)

// TestTransportPeerRefuseAndPartition: armed refuse/partition points fail
// the request before any bytes move, with a transient-class error.
func TestTransportPeerRefuseAndPartition(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer hs.Close()
	host := strings.TrimPrefix(hs.URL, "http://")

	in := faultinject.New(3).
		ArmNth(faultinject.PeerRefuse.For(host), 1).
		Arm(faultinject.PeerPartition.For(host), faultinject.Spec{Nth: 2, Repeat: true})
	client := &http.Client{Transport: &Transport{Inject: in}}

	_, err := client.Get(hs.URL)
	if err == nil || !errors.Is(err, bgerr.ErrTransient) || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("refused request error = %v, want transient injected", err)
	}
	// Hit 2 on the partition point: now persistently unreachable.
	for i := 0; i < 3; i++ {
		if _, err := client.Get(hs.URL); err == nil {
			t.Fatalf("partitioned request %d succeeded", i)
		}
	}
	// A different peer is unaffected.
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer other.Close()
	resp, err := client.Get(other.URL)
	if err != nil {
		t.Fatalf("unscoped peer affected by scoped fault: %v", err)
	}
	resp.Body.Close()
}

// TestTransportSlowAndDeadlineHeader: PeerSlow adds the configured delay,
// and the propagated-deadline header carries the remaining budget.
func TestTransportSlowAndDeadlineHeader(t *testing.T) {
	var gotDeadline string
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotDeadline = r.Header.Get(HeaderDeadlineMS)
		w.Write([]byte("ok"))
	}))
	defer hs.Close()
	host := strings.TrimPrefix(hs.URL, "http://")

	var slept time.Duration
	in := faultinject.New(1).ArmNth(faultinject.PeerSlow.For(host), 1)
	client := &http.Client{Transport: &Transport{
		Inject:    in,
		SlowDelay: 123 * time.Millisecond,
		Sleep:     func(d time.Duration) { slept = d },
	}}

	req, _ := http.NewRequest(http.MethodGet, hs.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := client.Do(req.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if slept != 123*time.Millisecond {
		t.Errorf("slow fault slept %v, want 123ms", slept)
	}
	if gotDeadline == "" {
		t.Error("deadline header missing on a request with a deadline")
	}
}

// TestTransportPeerDropCutsMidStream: a fired PeerDrop lets DropAfter
// bytes through, then errors transient.
func TestTransportPeerDropCutsMidStream(t *testing.T) {
	payload := strings.Repeat("x", 1024)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer hs.Close()
	host := strings.TrimPrefix(hs.URL, "http://")

	in := faultinject.New(1).ArmNth(faultinject.PeerDrop.For(host), 1)
	client := &http.Client{Transport: &Transport{Inject: in, DropAfter: 100}}
	resp, err := client.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err == nil || !errors.Is(err, bgerr.ErrTransient) {
		t.Fatalf("read error = %v, want transient mid-stream drop", err)
	}
	if len(got) != 100 {
		t.Errorf("bytes before drop = %d, want 100", len(got))
	}
}
