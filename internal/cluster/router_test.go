package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bitgen/internal/faultinject"
	"bitgen/internal/obs"
)

// fakePeer is an httptest replica that records received forwards.
type fakePeer struct {
	hs       *httptest.Server
	hits     atomic.Int64
	deadline atomic.Value // last HeaderDeadlineMS seen
}

func newFakePeer(t *testing.T, reply string, status int) *fakePeer {
	t.Helper()
	p := &fakePeer{}
	p.hs = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p.hits.Add(1)
		p.deadline.Store(r.Header.Get(HeaderDeadlineMS))
		if r.Header.Get(HeaderForwarded) != "1" {
			http.Error(w, "missing forwarded header", http.StatusBadRequest)
			return
		}
		w.WriteHeader(status)
		io.WriteString(w, reply)
	}))
	t.Cleanup(p.hs.Close)
	return p
}

func (p *fakePeer) host() string { return strings.TrimPrefix(p.hs.URL, "http://") }

// keyOwnedBy finds a key whose (owner, successor) matches the wanted pair.
func keyOwnedBy(t *testing.T, ring *Ring, owner, successor string) string {
	t.Helper()
	for _, k := range testKeys(4000) {
		o, s := ring.OwnerSuccessor(k)
		if o == owner && (successor == "" || s == successor) {
			return k
		}
	}
	t.Fatalf("no test key with owner %s successor %s", owner, successor)
	return ""
}

func newTestRouter(t *testing.T, cfg Config) (*Router, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	rt, err := New(cfg, &obs.Observer{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	return rt, reg
}

// TestRouterForwardsToOwner: a key owned by a remote peer is forwarded
// there with the forwarded marker and a propagated deadline; the local
// and successor peers see nothing.
func TestRouterForwardsToOwner(t *testing.T) {
	a := newFakePeer(t, `{"ok":1}`, 200)
	b := newFakePeer(t, `{"ok":2}`, 200)
	self := "http://self.invalid:1"
	rt, reg := newTestRouter(t, Config{
		Self:  self,
		Peers: []string{self, a.hs.URL, b.hs.URL},
	})

	key := keyOwnedBy(t, rt.Ring(), a.hs.URL, "")
	route := rt.Route(key)
	if route.SelfOwner {
		t.Fatal("route should be remote")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, ok := rt.Forward(ctx, route, "/v1/match", "application/json", []byte(`{}`), false)
	if !ok {
		t.Fatal("forward failed")
	}
	if res.Peer != a.hs.URL || string(res.Body) != `{"ok":1}` {
		t.Fatalf("served by %s body %q, want owner a", res.Peer, res.Body)
	}
	if a.hits.Load() != 1 {
		t.Fatalf("owner hits = %d, want 1", a.hits.Load())
	}
	if dl, _ := a.deadline.Load().(string); dl == "" {
		t.Error("forward carried no propagated deadline")
	}
	snap := reg.Snapshot()
	if got := snap.Counter(obs.MClusterForwards + `{peer="` + a.host() + `"}`); got != 1 {
		t.Errorf("forwards counter = %v, want 1", got)
	}
}

// TestRouterHedgesToSuccessor: when the owner is slow past HedgeDelay,
// the successor is hedged and its answer wins.
func TestRouterHedgesToSuccessor(t *testing.T) {
	slow := &fakePeer{}
	release := make(chan struct{})
	slow.hs = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		slow.hits.Add(1)
		<-release
		io.WriteString(w, `{"from":"slow"}`)
	}))
	defer slow.hs.Close()
	defer close(release)
	fast := newFakePeer(t, `{"from":"fast"}`, 200)

	self := "http://self.invalid:1"
	rt, reg := newTestRouter(t, Config{
		Self:       self,
		Peers:      []string{self, slow.hs.URL, fast.hs.URL},
		HedgeDelay: 10 * time.Millisecond,
	})
	key := keyOwnedBy(t, rt.Ring(), slow.hs.URL, fast.hs.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, ok := rt.Forward(ctx, rt.Route(key), "/v1/match", "application/json", []byte(`{}`), false)
	if !ok {
		t.Fatal("forward failed")
	}
	if res.Peer != fast.hs.URL {
		t.Fatalf("served by %s, want hedged successor", res.Peer)
	}
	if got := reg.Snapshot().Counter(obs.MClusterHedges); got != 1 {
		t.Errorf("hedges = %v, want 1", got)
	}
}

// TestRouterBreakerOpensAndSkips: repeated owner failures open its
// breaker; subsequent forwards skip straight to the successor, and a
// half-open probe after cooldown readmits the recovered owner.
func TestRouterBreakerOpensAndSkips(t *testing.T) {
	owner := newFakePeer(t, `{"ok":1}`, 200)
	succ := newFakePeer(t, `{"ok":2}`, 200)
	self := "http://self.invalid:1"

	now := time.Unix(5000, 0)
	in := faultinject.New(9)
	rt, reg := newTestRouter(t, Config{
		Self:             self,
		Peers:            []string{self, owner.hs.URL, succ.hs.URL},
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
		HedgeDelay:       -1, // sequential failover: deterministic attempt counts
		Inject:           in,
		Now:              func() time.Time { return now },
	})
	// Partition the owner persistently.
	in.Arm(faultinject.PeerPartition.For(owner.host()), faultinject.Spec{Nth: 1, Repeat: true})

	key := keyOwnedBy(t, rt.Ring(), owner.hs.URL, succ.hs.URL)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		res, ok := rt.Forward(ctx, rt.Route(key), "/v1/match", "application/json", []byte(`{}`), false)
		if !ok || res.Peer != succ.hs.URL {
			t.Fatalf("call %d: ok=%v peer=%v, want successor serve", i, ok, res)
		}
	}
	// Two failures opened the breaker; the third call skipped the owner.
	snap := reg.Snapshot()
	ownerLbl := `{peer="` + owner.host() + `"}`
	if got := snap.Counter(obs.MClusterForwardErrors + ownerLbl); got != 2 {
		t.Errorf("owner forward errors = %v, want 2 (breaker opens after threshold)", got)
	}
	if got := snap.Counter(obs.MClusterPeerSkips + ownerLbl); got != 1 {
		t.Errorf("owner skips = %v, want 1", got)
	}
	health := rt.Health()
	var ownerHealth *PeerHealth
	for i := range health {
		if health[i].URL == owner.hs.URL {
			ownerHealth = &health[i]
		}
	}
	if ownerHealth == nil || ownerHealth.State.String() != "open" {
		t.Fatalf("owner breaker state = %+v, want open", ownerHealth)
	}

	// Heal the partition and advance past the (jittered ≤ 1.5x) cooldown:
	// the half-open probe readmits the owner.
	in.Disarm(faultinject.PeerPartition.For(owner.host()))
	now = now.Add(16 * time.Second)
	res, ok := rt.Forward(ctx, rt.Route(key), "/v1/match", "application/json", []byte(`{}`), false)
	if !ok || res.Peer != owner.hs.URL {
		t.Fatalf("post-recovery serve: ok=%v peer=%+v, want owner", ok, res)
	}
}

// TestRouterDegradedAndStandbyAccounting: all remote candidates down →
// ok=false, counted degraded (or standby when self is the successor).
func TestRouterDegradedAndStandbyAccounting(t *testing.T) {
	dead := newFakePeer(t, "", 200)
	other := newFakePeer(t, `{"ok":1}`, 200)
	self := "http://self.invalid:1"
	in := faultinject.New(4).
		Arm(faultinject.PeerPartition.For(dead.host()), faultinject.Spec{Nth: 1, Repeat: true}).
		Arm(faultinject.PeerPartition.For(other.host()), faultinject.Spec{Nth: 1, Repeat: true})
	rt, reg := newTestRouter(t, Config{
		Self:       self,
		Peers:      []string{self, dead.hs.URL, other.hs.URL},
		HedgeDelay: -1,
		Inject:     in,
	})

	// Key whose owner is dead and successor is self: standby serve.
	standbyKey := keyOwnedBy(t, rt.Ring(), dead.hs.URL, self)
	if _, ok := rt.Forward(context.Background(), rt.Route(standbyKey), "/v1/match", "", []byte(`{}`), false); ok {
		t.Fatal("forward to a dead owner succeeded")
	}
	// Key owned by dead with the other (also partitioned) as successor:
	// degraded serve.
	degradedKey := keyOwnedBy(t, rt.Ring(), dead.hs.URL, other.hs.URL)
	if _, ok := rt.Forward(context.Background(), rt.Route(degradedKey), "/v1/match", "", []byte(`{}`), false); ok {
		t.Fatal("forward with every candidate partitioned succeeded")
	}
	snap := reg.Snapshot()
	if got := snap.Counter(obs.MClusterStandbyServes); got != 1 {
		t.Errorf("standby serves = %v, want 1", got)
	}
	if got := snap.Counter(obs.MClusterDegradedServes); got != 1 {
		t.Errorf("degraded serves = %v, want 1", got)
	}
}

// TestRouterRelaysPeer4xx: a 400 from the owner is the request's answer —
// relayed, not treated as a peer fault.
func TestRouterRelaysPeer4xx(t *testing.T) {
	bad := newFakePeer(t, `{"error":"bad pattern"}`, 400)
	self := "http://self.invalid:1"
	rt, _ := newTestRouter(t, Config{Self: self, Peers: []string{self, bad.hs.URL}})
	key := keyOwnedBy(t, rt.Ring(), bad.hs.URL, "")
	res, ok := rt.Forward(context.Background(), rt.Route(key), "/v1/match", "application/json", []byte(`{}`), false)
	if !ok || res.Status != 400 {
		t.Fatalf("4xx relay: ok=%v res=%+v, want relayed 400", ok, res)
	}
	h := rt.Health()
	if len(h) != 1 || h[0].Failures != 0 {
		t.Fatalf("peer health = %+v, want zero failures after 4xx relay", h)
	}
}

// TestRouterPeer503FailsOver: a draining owner (503) fails over to the
// successor instead of relaying the 503.
func TestRouterPeer503FailsOver(t *testing.T) {
	draining := newFakePeer(t, `{"error":"draining"}`, 503)
	up := newFakePeer(t, `{"ok":1}`, 200)
	self := "http://self.invalid:1"
	rt, _ := newTestRouter(t, Config{
		Self: self, Peers: []string{self, draining.hs.URL, up.hs.URL}, HedgeDelay: -1,
	})
	key := keyOwnedBy(t, rt.Ring(), draining.hs.URL, up.hs.URL)
	res, ok := rt.Forward(context.Background(), rt.Route(key), "/v1/match", "application/json", []byte(`{}`), false)
	if !ok || res.Peer != up.hs.URL {
		t.Fatalf("503 failover: ok=%v res=%+v, want successor serve", ok, res)
	}
}

// TestRouterStreamForward: streaming forwards hand back the peer's body
// as a stream and release resources on Close.
func TestRouterStreamForward(t *testing.T) {
	lines := "{\"end\":3}\n{\"done\":true,\"matches\":1}\n"
	peer := newFakePeer(t, lines, 200)
	self := "http://self.invalid:1"
	rt, _ := newTestRouter(t, Config{Self: self, Peers: []string{self, peer.hs.URL}})
	key := keyOwnedBy(t, rt.Ring(), peer.hs.URL, "")
	res, ok := rt.Forward(context.Background(), rt.Route(key), "/v1/scan?pattern=ab", "application/octet-stream", []byte("xxabz"), true)
	if !ok {
		t.Fatal("stream forward failed")
	}
	if res.Stream == nil {
		t.Fatal("stream result has no Stream")
	}
	got, err := io.ReadAll(res.Stream)
	if err != nil {
		t.Fatal(err)
	}
	res.Stream.Close()
	if string(got) != lines {
		t.Fatalf("relayed stream = %q, want %q", got, lines)
	}
}
