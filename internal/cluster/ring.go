// Package cluster is the peer layer behind bitgend's cluster mode: a
// consistent-hash ring routes every bitgen.PatternSetKey to a
// deterministic owner replica (plus one hash-ring successor as warm
// standby), so the compiled-engine cache becomes a distributed cache —
// each engine is compiled once, on its owner, no matter which replica a
// request enters through.
//
// Forwarding is guarded per peer by internal/resilience's circuit
// breaker (closed/open/half-open with deterministically jittered
// cooldowns) and hedged to the successor replica when the owner is slow
// or faulting. When no live owner is reachable the receiving node
// degrades gracefully: it compiles locally and counts a degraded serve
// instead of erroring. The transport consults internal/faultinject's
// network points (peer-refuse, peer-slow, peer-drop, peer-partition) so
// every failure mode is reproducible in tests.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// Bounds on virtual nodes per replica: enough for even key spread,
// bounded so ring construction and memory stay O(replicas).
const (
	DefaultVNodes = 64
	MaxVNodes     = 512
)

// Ring is an immutable consistent-hash ring: each node contributes a
// bounded number of virtual points, and a key is owned by the node whose
// point follows the key's hash clockwise. Lookup is O(log(nodes·vnodes)).
type Ring struct {
	nodes  []string
	points []ringPoint // sorted by hash
	vnodes int
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// NewRing builds a ring over the node names (replica base URLs).
// Duplicates collapse; order is irrelevant (nodes are sorted so every
// replica builds the identical ring from the same peer list). vnodes <= 0
// selects DefaultVNodes; values above MaxVNodes are clamped.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, errors.New("cluster: empty node name")
		}
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	if len(uniq) == 0 {
		return nil, errors.New("cluster: ring needs at least one node")
	}
	sort.Strings(uniq)
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if vnodes > MaxVNodes {
		vnodes = MaxVNodes
	}
	r := &Ring{nodes: uniq, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for i, n := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashPoint(n, v), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		return pa.node < pb.node // total order even on (vanishingly rare) collisions
	})
	return r, nil
}

// Nodes returns the ring's members in sorted order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// VNodes returns the virtual nodes per member after clamping.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the node that owns key.
func (r *Ring) Owner(key string) string {
	owner, _ := r.OwnerSuccessor(key)
	return owner
}

// OwnerSuccessor returns the key's owner and the next distinct node
// clockwise — the warm-standby replica. successor is "" on a one-node
// ring.
func (r *Ring) OwnerSuccessor(key string) (owner, successor string) {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	own := r.points[i].node
	owner = r.nodes[own]
	if len(r.nodes) == 1 {
		return owner, ""
	}
	for step := 1; step <= len(r.points); step++ {
		p := r.points[(i+step)%len(r.points)]
		if p.node != own {
			return owner, r.nodes[p.node]
		}
	}
	return owner, "" // unreachable with >1 node
}

// hashPoint hashes one virtual node: FNV-64a over "node\x00index",
// finalized with a splitmix round for avalanche (FNV alone clusters
// sequential suffixes).
func hashPoint(node string, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	fmt.Fprintf(h, "%d", v)
	return finalize(h.Sum64())
}

// hashKey hashes a routing key (a bitgen.PatternSetKey hex string).
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return finalize(h.Sum64())
}

// finalize is the splitmix64 finalizer.
func finalize(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
