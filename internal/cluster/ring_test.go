package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x-pattern-set-key-%d", i*2654435761, i)
	}
	return keys
}

// TestRingDeterministicAcrossPeerOrder proves every replica builds the
// identical ring regardless of the order its -peers flag lists them.
func TestRingDeterministicAcrossPeerOrder(t *testing.T) {
	a, err := NewRing([]string{"http://n1:1", "http://n2:1", "http://n3:1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://n3:1", "http://n1:1", "http://n2:1", "http://n2:1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(500) {
		ao, as := a.OwnerSuccessor(k)
		bo, bs := b.OwnerSuccessor(k)
		if ao != bo || as != bs {
			t.Fatalf("key %q: ring views disagree (%s/%s vs %s/%s)", k, ao, as, bo, bs)
		}
		if ao == as {
			t.Fatalf("key %q: successor equals owner", k)
		}
	}
}

// TestRingBalance checks the vnode spread: no node owns more than ~2x its
// fair share of keys.
func TestRingBalance(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r, err := NewRing(nodes, 0) // default vnodes
	if err != nil {
		t.Fatal(err)
	}
	if r.VNodes() != DefaultVNodes {
		t.Fatalf("VNodes = %d, want default %d", r.VNodes(), DefaultVNodes)
	}
	counts := map[string]int{}
	keys := testKeys(3000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := len(keys) / len(nodes)
	for n, c := range counts {
		if c > 2*fair || c < fair/2 {
			t.Errorf("node %s owns %d keys, fair share %d (spread too skewed)", n, c, fair)
		}
	}
}

// TestRingRemovalMovesBoundedKeys: removing one of N nodes must move only
// the dead node's keys — consistent hashing's defining property.
func TestRingRemovalMovesBoundedKeys(t *testing.T) {
	full, err := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"http://a:1", "http://b:1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(2000)
	moved := 0
	for _, k := range keys {
		before := full.Owner(k)
		after := reduced.Owner(k)
		if before != after {
			moved++
			if before != "http://c:1" {
				t.Fatalf("key %q moved from surviving node %s to %s", k, before, after)
			}
		}
	}
	// Only c's keys move: roughly a third, never more than half.
	if moved == 0 || moved > len(keys)/2 {
		t.Errorf("moved = %d of %d keys, want ~1/3", moved, len(keys))
	}
}

// TestRingSuccessorIsWarmStandby: the successor must be a distinct node,
// and on a one-node ring there is none.
func TestRingSuccessorIsWarmStandby(t *testing.T) {
	solo, err := NewRing([]string{"http://only:1"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if o, s := solo.OwnerSuccessor("k"); o != "http://only:1" || s != "" {
		t.Fatalf("one-node ring: owner %q successor %q", o, s)
	}
	r, err := NewRing([]string{"http://a:1", "http://b:1"}, 700) // clamped to MaxVNodes
	if err != nil {
		t.Fatal(err)
	}
	if r.VNodes() != MaxVNodes {
		t.Fatalf("VNodes = %d, want clamped %d", r.VNodes(), MaxVNodes)
	}
	for _, k := range testKeys(200) {
		o, s := r.OwnerSuccessor(k)
		if o == s || s == "" {
			t.Fatalf("key %q: owner %q successor %q", k, o, s)
		}
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{""}, 8); err == nil {
		t.Error("empty node name accepted")
	}
}
