package dfg

import (
	"testing"

	"bitgen/internal/charclass"
	"bitgen/internal/ir"
	"bitgen/internal/lower"
)

// buildStraight builds: B4 = ((B1 >> 1) & B2 >> 1) & B3 — Figure 7 (a)'s
// two-right-shift chain with Δ = 2.
func buildFigure7a() *ir.Program {
	b := ir.NewBuilder()
	b1 := b.MatchClass(charclass.Single('a'))
	b2 := b.MatchClass(charclass.Single('b'))
	b3 := b.MatchClass(charclass.Single('c'))
	s5 := b.Advance(b1, 1)
	s6 := b.And(s5, b2)
	s7 := b.Advance(s6, 1)
	s4 := b.And(s7, b3)
	b.Output("abc", s4)
	return b.Program()
}

func TestStaticDeltaFigure7a(t *testing.T) {
	a := Analyze(buildFigure7a())
	if a.StaticDelta != 2 {
		t.Fatalf("StaticDelta = %d, want 2", a.StaticDelta)
	}
	if a.StaticMaxAdvance != 2 || a.StaticMinOffset != 0 {
		t.Fatalf("split = (%d, %d), want (2, 0)", a.StaticMaxAdvance, a.StaticMinOffset)
	}
	if a.HasDynamic {
		t.Fatal("straight-line program flagged dynamic")
	}
}

func TestMixedDirectionDelta(t *testing.T) {
	// b = a >> 1; c = b << 2: δ sequence {0, 1, -1}, Δ = 2 (Section 4.2's
	// second example).
	p := &ir.Program{NumVars: 3}
	p.Stmts = []ir.Stmt{
		&ir.Assign{Dst: 0, Expr: ir.MatchBasis{Bit: 0}},
		&ir.Assign{Dst: 1, Expr: ir.Shift{Src: 0, K: 1}},
		&ir.Assign{Dst: 2, Expr: ir.Shift{Src: 1, K: -2}},
	}
	a := Analyze(p)
	if a.StaticDelta != 2 {
		t.Fatalf("StaticDelta = %d, want 2", a.StaticDelta)
	}
	if a.StaticMaxAdvance != 1 || a.StaticMinOffset != -1 {
		t.Fatalf("split = (%d, %d), want (1, -1)", a.StaticMaxAdvance, a.StaticMinOffset)
	}
}

func TestSingleClassStarUsesCarryNotLoop(t *testing.T) {
	// a(b)*c: the class star compiles to the fused MatchStar (carry)
	// instruction, so there is no while loop — the reason Table 5 shows
	// tiny dynamic Δ for dot-star-heavy applications.
	p := lower.MustSingle("re", "a(b)*c")
	a := Analyze(p)
	if a.HasDynamic {
		t.Fatalf("class star produced a dynamic while loop\n%s", p)
	}
	if !a.HasCarry {
		t.Fatal("class star did not use a carry instruction")
	}
	if st := ir.CollectStats(p); st.While != 0 || st.Star != 1 {
		t.Fatalf("stats = %+v, want Star=1 While=0", st)
	}
}

func TestLoopGrowthMultiCharBody(t *testing.T) {
	// (bc)* advances two positions per loop iteration.
	p := lower.MustSingle("re", "a(bc)*d")
	a := Analyze(p)
	total := 0
	for _, g := range a.LoopGrowth {
		total += g
	}
	if total != 2 {
		t.Fatalf("loop growth = %d, want 2\n%s", total, p)
	}
}

func TestBoundedRepeatIsStatic(t *testing.T) {
	// a{2,5} unrolls: no loops, Δ grows with the unrolled length.
	p := lower.MustSingle("re", "a{2,5}")
	a := Analyze(p)
	if a.HasDynamic {
		t.Fatal("bounded repetition flagged dynamic")
	}
	if a.StaticDelta != 4 {
		t.Fatalf("StaticDelta = %d, want 4 (five chars reach back four)\n%s", a.StaticDelta, p)
	}
}

func TestDepthsChainVsBalanced(t *testing.T) {
	// Chain: s1 >> 1 & s2, result >> 1 & s3 — depths strictly increase.
	p := buildFigure7a()
	depths := Depths(p)
	var assigns []*ir.Assign
	ir.WalkStmts(p.Stmts, func(s ir.Stmt) {
		if a, ok := s.(*ir.Assign); ok {
			assigns = append(assigns, a)
		}
	})
	last := assigns[len(assigns)-1]
	if depths[last] < 4 {
		t.Fatalf("final depth = %d, want >= 4 (chain shape)", depths[last])
	}
}

func TestZeroPreservingUse(t *testing.T) {
	v := ir.VarID(3)
	cases := []struct {
		e    ir.Expr
		want bool
	}{
		{ir.Shift{Src: v, K: 1}, true},
		{ir.Copy{Src: v}, true},
		{ir.Bin{Op: ir.OpAnd, X: v, Y: 9}, true},
		{ir.Bin{Op: ir.OpAnd, X: 9, Y: v}, true},
		{ir.Bin{Op: ir.OpAndNot, X: v, Y: 9}, true},
		{ir.Bin{Op: ir.OpAndNot, X: 9, Y: v}, false},
		{ir.Bin{Op: ir.OpOr, X: v, Y: 9}, false},
		{ir.Bin{Op: ir.OpXor, X: v, Y: 9}, false},
		{ir.Not{Src: v}, false},
		{ir.Shift{Src: 9, K: 1}, false},
	}
	for _, c := range cases {
		if got := ZeroPreservingUse(c.e, v); got != c.want {
			t.Errorf("ZeroPreservingUse(%s, S3) = %v, want %v", ir.ExprString(c.e), got, c.want)
		}
	}
}

func TestZeroPathsFigure10Shape(t *testing.T) {
	// Mimics Figure 10: a chain of shift/and feeding an OR (which ends the
	// path because OR is not zero-preserving).
	//   s0 = cc0; s1 = cc1; s2 = cc2
	//   t0 = s0 >> 1        (head: chain via t0)
	//   t1 = t0 & s1
	//   t2 = t1 >> 1
	//   t3 = t2 & s2
	//   out = t3 | s0       (not on path)
	b := ir.NewBuilder()
	s0 := b.MatchClass(charclass.Single('a'))
	s1 := b.MatchClass(charclass.Single('b'))
	s2 := b.MatchClass(charclass.Single('c'))
	t0 := b.Advance(s0, 1)
	t1 := b.And(t0, s1)
	t2 := b.Advance(t1, 1)
	t3 := b.And(t2, s2)
	out := b.Or(t3, s0)
	b.Output("re", out)
	p := b.Program()

	var run []*ir.Assign
	for _, s := range p.Stmts {
		run = append(run, s.(*ir.Assign))
	}
	paths := ZeroPaths(run, p.NumVars)
	if len(paths) == 0 {
		t.Fatalf("no zero paths found in\n%s", p)
	}
	// The longest path must cover the t0..t3 chain (4 statements
	// following the head that defines s0's advance source or s0 itself).
	best := paths[0]
	for _, pth := range paths {
		if len(pth.Stmts) > len(best.Stmts) {
			best = pth
		}
	}
	if len(best.Stmts) < 3 {
		t.Fatalf("longest zero path has %d statements, want >= 3: %+v", len(best.Stmts), best)
	}
	// The OR must not be on any path.
	orIdx := len(run) - 1
	for _, pth := range paths {
		for _, idx := range pth.Stmts {
			if idx == orIdx {
				t.Fatal("OR statement appeared on a zero path")
			}
		}
	}
	_ = t0
	_ = t1
	_ = t2
	_ = t3
	_ = out
}

func TestZeroPathsRespectRedefinition(t *testing.T) {
	// v is redefined by a non-zero-preserving op mid-run: the chain stops.
	p := &ir.Program{NumVars: 4}
	run := []*ir.Assign{
		{Dst: 0, Expr: ir.MatchBasis{Bit: 0}},
		{Dst: 1, Expr: ir.Shift{Src: 0, K: 1}}, // on chain from 0
		{Dst: 1, Expr: ir.Not{Src: 0}},         // redefines 1 (kills chain via 1)
		{Dst: 2, Expr: ir.Shift{Src: 1, K: 1}}, // uses the NOT result
		{Dst: 3, Expr: ir.Bin{Op: ir.OpAnd, X: 2, Y: 1}},
	}
	p.Stmts = []ir.Stmt{run[0], run[1], run[2], run[3], run[4]}
	paths := ZeroPaths(run, p.NumVars)
	for _, pth := range paths {
		if pth.Head == 0 {
			for _, idx := range pth.Stmts {
				if idx >= 3 {
					t.Fatalf("chain from basis crossed the redefinition: %+v", pth)
				}
			}
		}
	}
}

func TestAnalyzeIfJoins(t *testing.T) {
	// Shift inside an if must still count toward Δ.
	b := ir.NewBuilder()
	s0 := b.MatchClass(charclass.Single('a'))
	res := b.NewVar()
	b.EmitTo(res, ir.Zero{})
	b.If(s0, func() {
		t0 := b.Advance(s0, 3)
		b.EmitTo(res, ir.Copy{Src: t0})
	})
	out := b.Or(res, s0)
	b.Output("re", out)
	a := Analyze(b.Program())
	if a.StaticDelta != 3 {
		t.Fatalf("StaticDelta = %d, want 3", a.StaticDelta)
	}
}
