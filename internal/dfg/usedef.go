package dfg

import "bitgen/internal/ir"

// UseDef summarizes how a statement list touches each variable: Defs counts
// assignments, Uses counts reads — instruction operands and guard/if/while
// conditions alike. The kernel's superblock compiler consults it to find
// single-def single-use temporaries: a value defined by one instruction and
// consumed exactly once by the instruction that immediately follows can be
// fused into its consumer and live entirely in registers inside one fused
// pass, never touching a window buffer or a backing stream.
type UseDef struct {
	Defs []int32
	Uses []int32
}

// SingleUseTemp reports whether v is a fusion-eligible temporary within the
// analyzed statement list: exactly one definition and exactly one read.
func (ud UseDef) SingleUseTemp(v ir.VarID) bool {
	return ud.Defs[v] == 1 && ud.Uses[v] == 1
}

// CountUseDef tallies definitions and uses over stmts (recursing into
// if/while bodies). numVars bounds the variable space.
func CountUseDef(stmts []ir.Stmt, numVars int) UseDef {
	ud := UseDef{Defs: make([]int32, numVars), Uses: make([]int32, numVars)}
	ir.WalkStmts(stmts, func(s ir.Stmt) {
		switch x := s.(type) {
		case *ir.Assign:
			for _, v := range ir.Operands(x.Expr) {
				ud.Uses[v]++
			}
			ud.Defs[x.Dst]++
		case *ir.Guard:
			ud.Uses[x.Cond]++
		case *ir.If:
			ud.Uses[x.Cond]++
		case *ir.While:
			ud.Uses[x.Cond]++
		}
	})
	return ud
}
