package dfg

import "bitgen/internal/ir"

// Depths assigns every assignment its topological depth in the dataflow
// graph: sources (constants, basis reads) have depth 0 and every other
// assignment is one more than the deepest operand definition at that point
// in program order. The Shift Rebalancing pass moves shifts toward
// shallower operands to shorten dependency chains (Section 5.2).
func Depths(p *ir.Program) map[*ir.Assign]int {
	depth := make(map[*ir.Assign]int)
	varDepth := make([]int, p.NumVars)
	var walk func(body []ir.Stmt)
	walk = func(body []ir.Stmt) {
		for _, s := range body {
			switch x := s.(type) {
			case *ir.Assign:
				d := exprDepth(x.Expr, varDepth)
				depth[x] = d
				varDepth[x.Dst] = d
			case *ir.If:
				walk(x.Body)
			case *ir.While:
				// Loop-carried variables stabilize after two passes for
				// depth purposes; one extra pass keeps the ordering
				// useful without a full fixpoint.
				walk(x.Body)
				walk(x.Body)
			}
		}
	}
	walk(p.Stmts)
	return depth
}

func exprDepth(e ir.Expr, varDepth []int) int {
	switch x := e.(type) {
	case ir.Zero, ir.Ones, ir.MatchBasis:
		return 0
	case ir.Copy:
		return varDepth[x.Src]
	case ir.Not:
		return varDepth[x.Src] + 1
	case ir.Bin:
		d := varDepth[x.X]
		if varDepth[x.Y] > d {
			d = varDepth[x.Y]
		}
		return d + 1
	case ir.Shift:
		return varDepth[x.Src] + 1
	}
	return 0
}

// VarDepthsAt computes the depth of each variable at the end of a
// straight-line prefix of assignments (used by the rebalancer when deciding
// which operand is shallower).
func VarDepthsAt(stmts []*ir.Assign, numVars int) []int {
	varDepth := make([]int, numVars)
	for _, a := range stmts {
		varDepth[a.Dst] = exprDepth(a.Expr, varDepth)
	}
	return varDepth
}
