package dfg

import (
	"sort"

	"bitgen/internal/ir"
)

// ZeroPreservingUse reports whether expression e yields all-zero whenever
// variable v (one of its operands) is all-zero. AND (either side), the
// positive side of ANDNOT, SHIFT and COPY preserve zero; OR, XOR and NOT do
// not (Section 6).
func ZeroPreservingUse(e ir.Expr, v ir.VarID) bool {
	switch x := e.(type) {
	case ir.Copy:
		return x.Src == v
	case ir.Shift:
		return x.Src == v
	case ir.StarThru:
		// No markers in, no matches out (the class operand does not
		// preserve zero: MatchStar(M, 0) = M).
		return x.M == v
	case ir.Bin:
		switch x.Op {
		case ir.OpAnd:
			return x.X == v || x.Y == v
		case ir.OpAndNot:
			return x.X == v
		}
	}
	return false
}

// ZeroPath is a chain of assignments within one straight-line run such that
// if Cond is all-zero, every assignment on the chain produces all-zero.
type ZeroPath struct {
	// Cond is the variable whose zeroness makes the chain dead.
	Cond ir.VarID
	// Head is the run index of the statement defining Cond, or -1 when
	// Cond is defined before the run (e.g. a character-class stream).
	Head int
	// Stmts are the run indices of the on-path assignments, strictly
	// increasing, all after Head.
	Stmts []int
}

// occIndex is a CSR index over one run: for each variable, the ordered run
// positions of the statements that read or define it. Chain-following
// steps through a variable's occurrence list directly instead of scanning
// the whole run per head, which kept ZeroPaths quadratic in run length —
// ruinous on ClamAV-class group programs of 10^5 statements.
type occIndex struct {
	off  []int32
	fill []int32
	dat  []int32
}

func buildOccIndex(run []*ir.Assign, numVars int) *occIndex {
	ix := &occIndex{
		off:  make([]int32, numVars+1),
		fill: make([]int32, numVars),
	}
	counts := make([]int32, numVars)
	var buf [2]ir.VarID
	for _, a := range run {
		for _, v := range ir.OperandsInto(a.Expr, &buf) {
			counts[v]++
		}
		counts[a.Dst]++
	}
	for i := 0; i < numVars; i++ {
		ix.off[i+1] = ix.off[i] + counts[i]
	}
	ix.dat = make([]int32, ix.off[numVars])
	add := func(v ir.VarID, j int32) {
		// One entry per (statement, variable) even when the statement
		// mentions the variable twice (AND(v,v), or dst == operand): the
		// chain walk must visit each statement once, like a linear scan.
		if ix.fill[v] > 0 && ix.dat[ix.off[v]+ix.fill[v]-1] == j {
			return
		}
		ix.dat[ix.off[v]+ix.fill[v]] = j
		ix.fill[v]++
	}
	for j, a := range run {
		for _, v := range ir.OperandsInto(a.Expr, &buf) {
			add(v, int32(j))
		}
		add(a.Dst, int32(j))
	}
	return ix
}

// occurrences returns the ordered run positions mentioning v.
func (ix *occIndex) occurrences(v ir.VarID) []int32 {
	return ix.dat[ix.off[v] : ix.off[v]+ix.fill[v]]
}

// ZeroPaths discovers maximal zero paths in a straight-line run of
// assignments. Paths shorter than two on-path statements are discarded:
// guarding a single instruction cannot pay for the branch.
func ZeroPaths(run []*ir.Assign, numVars int) []ZeroPath {
	ix := buildOccIndex(run, numVars)
	onPath := make([]bool, len(run))
	var paths []ZeroPath
	for head := 0; head < len(run); head++ {
		if onPath[head] {
			continue // already the interior of a longer path
		}
		chain := followChain(run, head, ix)
		if len(chain) < 2 {
			continue
		}
		for _, idx := range chain {
			onPath[idx] = true
		}
		paths = append(paths, ZeroPath{
			Cond:  run[head].Dst,
			Head:  head,
			Stmts: chain,
		})
	}
	return paths
}

// followChain greedily extends a zero path from the definition at run
// index head: at each step it takes the next statement that consumes the
// current value zero-preservingly (and whose result is therefore also
// guaranteed zero), honoring redefinitions of the tracked variable. Only
// statements mentioning the tracked variable are visited, via the
// occurrence index.
func followChain(run []*ir.Assign, head int, ix *occIndex) []int {
	cur := run[head].Dst
	var chain []int
	j := head
	for {
		list := ix.occurrences(cur)
		k := sort.Search(len(list), func(i int) bool { return int(list[i]) > j })
		advanced := false
		for ; k < len(list); k++ {
			q := int(list[k])
			a := run[q]
			if ZeroPreservingUse(a.Expr, cur) {
				chain = append(chain, q)
				cur = a.Dst
				j = q
				advanced = true
				break
			}
			if a.Dst == cur {
				return chain // tracked value redefined by an unrelated computation
			}
		}
		if !advanced {
			return chain
		}
	}
}
