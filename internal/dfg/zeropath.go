package dfg

import "bitgen/internal/ir"

// ZeroPreservingUse reports whether expression e yields all-zero whenever
// variable v (one of its operands) is all-zero. AND (either side), the
// positive side of ANDNOT, SHIFT and COPY preserve zero; OR, XOR and NOT do
// not (Section 6).
func ZeroPreservingUse(e ir.Expr, v ir.VarID) bool {
	switch x := e.(type) {
	case ir.Copy:
		return x.Src == v
	case ir.Shift:
		return x.Src == v
	case ir.StarThru:
		// No markers in, no matches out (the class operand does not
		// preserve zero: MatchStar(M, 0) = M).
		return x.M == v
	case ir.Bin:
		switch x.Op {
		case ir.OpAnd:
			return x.X == v || x.Y == v
		case ir.OpAndNot:
			return x.X == v
		}
	}
	return false
}

// ZeroPath is a chain of assignments within one straight-line run such that
// if Cond is all-zero, every assignment on the chain produces all-zero.
type ZeroPath struct {
	// Cond is the variable whose zeroness makes the chain dead.
	Cond ir.VarID
	// Head is the run index of the statement defining Cond, or -1 when
	// Cond is defined before the run (e.g. a character-class stream).
	Head int
	// Stmts are the run indices of the on-path assignments, strictly
	// increasing, all after Head.
	Stmts []int
}

// ZeroPaths discovers maximal zero paths in a straight-line run of
// assignments. Paths shorter than two on-path statements are discarded:
// guarding a single instruction cannot pay for the branch.
func ZeroPaths(run []*ir.Assign, numVars int) []ZeroPath {
	// lastDef[v] = run index of the latest definition of v seen so far.
	onPath := make([]bool, len(run))
	var paths []ZeroPath
	for head := 0; head < len(run); head++ {
		if onPath[head] {
			continue // already the interior of a longer path
		}
		chain := followChain(run, head)
		if len(chain) < 2 {
			continue
		}
		for _, idx := range chain {
			onPath[idx] = true
		}
		paths = append(paths, ZeroPath{
			Cond:  run[head].Dst,
			Head:  head,
			Stmts: chain,
		})
	}
	return paths
}

// followChain greedily extends a zero path from the definition at run
// index head: at each step it takes the next statement that consumes the
// current value zero-preservingly (and whose result is therefore also
// guaranteed zero), honoring redefinitions of the tracked variable.
func followChain(run []*ir.Assign, head int) []int {
	cur := run[head].Dst
	var chain []int
	for j := head + 1; j < len(run); j++ {
		a := run[j]
		if ZeroPreservingUse(a.Expr, cur) {
			chain = append(chain, j)
			cur = a.Dst
			continue
		}
		if a.Dst == cur {
			break // tracked value redefined by an unrelated computation
		}
	}
	return chain
}
