// Package dfg performs the dataflow analyses of Sections 4-6: cumulative
// shift-offset intervals and the overlap distance Δ (Section 4.2, including
// per-loop dynamic growth rates), topological depths for Shift Rebalancing
// (Section 5.2), and zero-path discovery for Zero Block Skipping
// (Section 6).
package dfg

import (
	"fmt"

	"bitgen/internal/ir"
)

// Interval is a conservative range [Lo, Hi] of cumulative shift offsets δ:
// computing bit j of a value may read input bits j-Hi .. j-Lo. Advances
// (paper >>) push the interval up; lookbacks (paper <<) push it down.
type Interval struct {
	Lo, Hi int
}

// Width returns Hi - Lo, the value's contribution to the overlap distance.
func (iv Interval) Width() int { return iv.Hi - iv.Lo }

func (iv Interval) union(other Interval) Interval {
	if other.Lo < iv.Lo {
		iv.Lo = other.Lo
	}
	if other.Hi > iv.Hi {
		iv.Hi = other.Hi
	}
	return iv
}

func (iv Interval) shift(k int) Interval {
	return Interval{iv.Lo + k, iv.Hi + k}
}

// Analysis holds the results of analyzing one program.
type Analysis struct {
	// VarInterval is the offset interval of each variable after one
	// once-through execution of every loop body (the static component).
	VarInterval []Interval
	// StaticDelta is the paper's Δ without loop accumulation:
	// max over paths of (max δ - min δ), i.e. Hi(max) - Lo(min) over all
	// reachable values.
	StaticDelta int
	// StaticMaxAdvance and StaticMinOffset split StaticDelta into the
	// left-extension (past data) and right-extension (future data)
	// requirements: a window committing [s, e) must cover
	// [s - StaticMaxAdvance, e - StaticMinOffset).
	StaticMaxAdvance int // = max(0, max Hi)
	StaticMinOffset  int // = min(0, min Lo)
	// LoopGrowth maps each while statement to the additional overlap bits
	// one extra iteration of its body can require (the paper's μ·k term).
	// The interleaved executor accumulates these at runtime to form the
	// dynamic Δ(n).
	LoopGrowth map[*ir.While]int
	// HasDynamic reports whether any loop has non-zero growth.
	HasDynamic bool
	// HasCarry reports whether the program contains Add or StarThru
	// instructions, whose carry chains create data-dependent cross-block
	// dependencies the executor must check at runtime.
	HasCarry bool
}

// Analyze computes offset intervals and loop growth for a program.
func Analyze(p *ir.Program) *Analysis {
	return AnalyzeBody(p.Stmts, p.NumVars)
}

// AnalyzeBody analyzes a statement list in isolation: variables defined
// outside the body are treated as sources with offset interval [0,0] —
// exactly the situation of a fused segment whose inputs are materialized
// streams in global memory.
func AnalyzeBody(stmts []ir.Stmt, numVars int) *Analysis {
	a := &Analysis{
		VarInterval: make([]Interval, numVars),
		LoopGrowth:  make(map[*ir.While]int),
	}
	env := make([]Interval, numVars)
	a.runBody(stmts, env)
	copy(a.VarInterval, env)
	for _, iv := range env {
		if iv.Hi > a.StaticMaxAdvance {
			a.StaticMaxAdvance = iv.Hi
		}
		if iv.Lo < a.StaticMinOffset {
			a.StaticMinOffset = iv.Lo
		}
	}
	a.StaticDelta = a.StaticMaxAdvance - a.StaticMinOffset
	for _, g := range a.LoopGrowth {
		if g != 0 {
			a.HasDynamic = true
		}
	}
	return a
}

// runBody interprets a body abstractly, updating env in place.
func (a *Analysis) runBody(body []ir.Stmt, env []Interval) {
	for _, s := range body {
		switch x := s.(type) {
		case *ir.Assign:
			switch x.Expr.(type) {
			case ir.Add, ir.StarThru:
				a.HasCarry = true
			}
			env[x.Dst] = exprInterval(x.Expr, env)
		case *ir.If:
			// Either branch may be taken: join the branch effect with the
			// fall-through state.
			branch := append([]Interval(nil), env...)
			a.runBody(x.Body, branch)
			for i := range env {
				env[i] = env[i].union(branch[i])
			}
		case *ir.While:
			// First once-through gives the static contribution; a second
			// pass measures per-iteration growth.
			first := append([]Interval(nil), env...)
			a.runBody(x.Body, first)
			for i := range env {
				first[i] = first[i].union(env[i]) // zero-iteration path
			}
			second := append([]Interval(nil), first...)
			a.runBody(x.Body, second)
			growth := 0
			for i := range second {
				if d := second[i].Hi - first[i].Hi; d > growth {
					growth = d
				}
				if d := first[i].Lo - second[i].Lo; d > growth {
					growth = d
				}
			}
			if prev, ok := a.LoopGrowth[x]; !ok || growth > prev {
				a.LoopGrowth[x] = growth
			}
			copy(env, first)
		case *ir.Guard:
			// No dataflow effect.
		default:
			panic(fmt.Sprintf("dfg: unknown statement %T", s))
		}
	}
}

func exprInterval(e ir.Expr, env []Interval) Interval {
	switch x := e.(type) {
	case ir.Zero, ir.Ones, ir.MatchBasis:
		return Interval{}
	case ir.Copy:
		return env[x.Src]
	case ir.Not:
		return env[x.Src]
	case ir.Bin:
		return env[x.X].union(env[x.Y])
	case ir.Shift:
		return env[x.Src].shift(x.K)
	case ir.Add:
		// Carries move toward the future by a data-dependent distance;
		// the static component is the operand union (runtime checks
		// handle boundary-crossing carry runs).
		return env[x.X].union(env[x.Y])
	case ir.StarThru:
		// Statically the marker is read at j and j-1 and the class at j;
		// the run-length-dependent reach backwards through C is dynamic.
		return env[x.M].union(env[x.M].shift(1)).union(env[x.C])
	}
	panic(fmt.Sprintf("dfg: unknown expression %T", e))
}
