// Package bgerr defines the error taxonomy shared by every layer of the
// engine. The public package re-exports these types (see errors.go at the
// repository root), so internal packages can produce errors that callers
// classify with errors.Is / errors.As against the public identities.
//
// The taxonomy separates five failure classes:
//
//   - ErrLimit: the caller exceeded a configured resource limit (input
//     size, pattern count, program size, iteration cap, device memory).
//     The request was refused or aborted; the engine is unaffected.
//   - ErrUnsupported: the request asks for something the engine cannot
//     do by design (unknown device, unbounded patterns in streaming).
//   - ErrCanceled: the caller's context was canceled or its deadline
//     expired; the run was abandoned at a safe boundary.
//   - ErrTransient: an environmental fault that may succeed if simply
//     retried (a failed kernel launch — sticky context errors, ECC
//     events, launch-queue hiccups on a real device). The resilience
//     layer retries these with backoff before falling over to another
//     backend; everything else is either terminal (the three classes
//     above, never retried) or failover-eligible (*InternalError).
//   - *InternalError: an invariant was violated inside the engine (a
//     contained panic). These indicate bugs, carry the recovered value
//     and stack, and should be reported — but they do not crash the
//     process, and the Engine that produced one remains usable.
package bgerr

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// Sentinel identities for errors.Is classification. Concrete errors carry
// detail (which limit, which patterns) and match these via Is methods.
var (
	ErrLimit       = errors.New("bitgen: resource limit exceeded")
	ErrUnsupported = errors.New("bitgen: unsupported operation")
	ErrCanceled    = errors.New("bitgen: run canceled")
	ErrTransient   = errors.New("bitgen: transient fault")
)

// LimitError reports a violated resource limit.
type LimitError struct {
	// Limit names the limit, e.g. "input-bytes", "patterns",
	// "program-instructions", "while-iterations", "device-memory-bytes".
	Limit string
	// Value is the observed value, Max the configured ceiling.
	Value, Max int64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("bitgen: %s limit exceeded: %d > %d", e.Limit, e.Value, e.Max)
}

// Is makes errors.Is(err, ErrLimit) true for every *LimitError.
func (e *LimitError) Is(target error) bool { return target == ErrLimit }

// UnsupportedError reports a request outside the engine's design envelope.
type UnsupportedError struct {
	// Feature names what was asked for, e.g. "streaming unbounded
	// patterns" or "device".
	Feature string
	// Patterns lists every offending pattern (all of them, not just the
	// first), when the refusal is pattern-specific.
	Patterns []string
}

func (e *UnsupportedError) Error() string {
	if len(e.Patterns) == 0 {
		return "bitgen: unsupported: " + e.Feature
	}
	return fmt.Sprintf("bitgen: unsupported: %s: %s", e.Feature, strings.Join(e.Patterns, ", "))
}

// Is makes errors.Is(err, ErrUnsupported) true for every *UnsupportedError.
func (e *UnsupportedError) Is(target error) bool { return target == ErrUnsupported }

// canceledError wraps a context error so that both
// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled) (or
// context.DeadlineExceeded) hold.
type canceledError struct{ cause error }

func (e *canceledError) Error() string { return "bitgen: canceled: " + e.cause.Error() }

func (e *canceledError) Is(target error) bool { return target == ErrCanceled }

func (e *canceledError) Unwrap() error { return e.cause }

// Canceled wraps a context error into the taxonomy. A nil cause defaults
// to context.Canceled.
func Canceled(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return &canceledError{cause: cause}
}

// transientError marks a fault as retryable: both
// errors.Is(err, ErrTransient) and errors.Is(err, cause-identity) hold.
type transientError struct{ cause error }

func (e *transientError) Error() string { return "bitgen: transient: " + e.cause.Error() }

func (e *transientError) Is(target error) bool { return target == ErrTransient }

func (e *transientError) Unwrap() error { return e.cause }

// Transient marks an error as a retryable environmental fault. A nil
// cause returns nil.
func Transient(cause error) error {
	if cause == nil {
		return nil
	}
	return &transientError{cause: cause}
}

// ErrSnapshot is the identity of every engine-snapshot persistence
// failure: a snapshot that could not be decoded (corrupt, truncated),
// was written by an incompatible format version, or was compiled under
// different options than the loader's. Callers classify with
// errors.Is(err, ErrSnapshot) and fall back to recompilation — a bad
// snapshot is never served.
var ErrSnapshot = errors.New("bitgen: snapshot rejected")

// SnapshotError reports why a snapshot was refused at load (or save).
type SnapshotError struct {
	// Reason is a stable token: "corrupt", "truncated",
	// "version-mismatch", "options-mismatch", "key-mismatch" or
	// "store-io". Corrupt/truncated snapshots are quarantine candidates;
	// version/options mismatches leave the file intact (it may be valid
	// for another build or configuration).
	Reason string
	// Detail is the human-readable specifics (which section, which CRC).
	Detail string
	// Path names the snapshot file when the failure is tied to one.
	Path string
}

func (e *SnapshotError) Error() string {
	var b strings.Builder
	b.WriteString("bitgen: snapshot rejected (" + e.Reason + ")")
	if e.Path != "" {
		b.WriteString(" " + e.Path)
	}
	if e.Detail != "" {
		b.WriteString(": " + e.Detail)
	}
	return b.String()
}

// Is makes errors.Is(err, ErrSnapshot) true for every *SnapshotError.
func (e *SnapshotError) Is(target error) bool { return target == ErrSnapshot }

// InternalError is a contained engine panic: an invariant violation that
// was caught at an execution boundary and converted into an error instead
// of crashing the process.
type InternalError struct {
	// Op is the boundary that contained the panic: "compile" or "run".
	Op string
	// Group is the CTA group index whose execution panicked, or -1 when
	// the panic happened outside group execution.
	Group int
	// Patterns lists the regexes assigned to the poisoned group (or being
	// compiled), so the offending input can be identified and quarantined.
	Patterns []string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *InternalError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bitgen: internal error during %s", e.Op)
	if e.Group >= 0 {
		fmt.Fprintf(&b, " (group %d)", e.Group)
	}
	if len(e.Patterns) > 0 {
		fmt.Fprintf(&b, " [patterns: %s]", strings.Join(e.Patterns, ", "))
	}
	fmt.Fprintf(&b, ": %v", e.Value)
	return b.String()
}
