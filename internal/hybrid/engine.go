package hybrid

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"bitgen/internal/bgerr"
	"bitgen/internal/bitstream"
	"bitgen/internal/nfa"
	"bitgen/internal/obs"
	"bitgen/internal/rx"
)

// Options configure the hybrid engine.
type Options struct {
	// Threads is the number of worker goroutines; regexes are sharded
	// across them (HS-MT parallelizes across regexes). Zero or one is the
	// single-threaded HS-1T configuration.
	Threads int
	// MinLiteral is the shortest literal factor worth prefiltering on.
	// Zero means 3.
	MinLiteral int
	// MaxRegionLen caps the match length eligible for regional
	// confirmation; longer or unbounded patterns take the general NFA
	// path. Zero means 256.
	MaxRegionLen int
	// Obs, when non-nil, records a span per ScanContext call with the
	// scan's Stats as arguments. Nil is free.
	Obs *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.Threads == 0 {
		o.Threads = 1
	}
	if o.MinLiteral == 0 {
		o.MinLiteral = 3
	}
	if o.MaxRegionLen == 0 {
		o.MaxRegionLen = 256
	}
	return o
}

// Stats summarizes the dynamic work of one scan.
type Stats struct {
	// LiteralHits is the number of prefilter hits.
	LiteralHits int64
	// ConfirmedBytes is the input volume re-examined by confirmation.
	ConfirmedBytes int64
	// GeneralBytes is the volume scanned by the general (unfiltered) NFA
	// path, summed over general groups.
	GeneralBytes int64
	// ExactRegexes, PrefilteredRegexes, GeneralRegexes count the bucket
	// sizes of the decomposition.
	ExactRegexes, PrefilteredRegexes, GeneralRegexes int
}

// ScanResult holds per-regex match streams.
type ScanResult struct {
	Outputs map[string]*bitstream.Stream
	Stats   Stats
}

// Engine is a compiled hybrid multi-pattern matcher.
type Engine struct {
	opts   Options
	shards []*shard
	names  []string
}

// shard owns a subset of the regexes.
type shard struct {
	opts Options
	// exact literals: ac pattern id → regex index.
	ac        *AhoCorasick
	acExact   map[int32]int // pattern id → regex index (pure literal)
	acPrefilt map[int32]int // pattern id → prefiltered entry index
	prefilt   []prefiltEntry
	general   *nfa.NFA // combined NFA for unfilterable regexes
	genIdx    []int    // general outputs → regex index
	names     []string
	idx       []int // shard-local → engine regex index
	stats     Stats
}

type prefiltEntry struct {
	regex  int // shard-local regex index
	nfa    *nfa.NFA
	litLen map[int32]int // ac pattern id → literal length
	maxLen int
}

type region struct{ lo, hi int }

// SizeBytes reports the engine's durable compiled state: each shard's
// Aho-Corasick prefilter, confirmation NFAs and general-path NFA. Scan
// scratch is excluded.
func (e *Engine) SizeBytes() int64 {
	var size int64
	for _, sh := range e.shards {
		if sh.ac != nil {
			size += sh.ac.SizeBytes()
		}
		if sh.general != nil {
			size += sh.general.SizeBytes()
		}
		for i := range sh.prefilt {
			if sh.prefilt[i].nfa != nil {
				size += sh.prefilt[i].nfa.SizeBytes()
			}
		}
	}
	return size
}

// Compile builds the engine for a set of regexes.
func Compile(names []string, asts []rx.Node, opts Options) (*Engine, error) {
	if len(names) != len(asts) {
		return nil, fmt.Errorf("hybrid: %d names for %d patterns", len(names), len(asts))
	}
	opts = opts.withDefaults()
	e := &Engine{opts: opts, names: names}
	nShards := opts.Threads
	if nShards > len(asts) && len(asts) > 0 {
		nShards = len(asts)
	}
	if nShards == 0 {
		nShards = 1
	}
	for s := 0; s < nShards; s++ {
		var idx []int
		for r := s; r < len(asts); r += nShards {
			idx = append(idx, r)
		}
		sh, err := compileShard(names, asts, idx, opts)
		if err != nil {
			return nil, err
		}
		e.shards = append(e.shards, sh)
	}
	return e, nil
}

func compileShard(names []string, asts []rx.Node, idx []int, opts Options) (*shard, error) {
	sh := &shard{opts: opts, idx: idx, acExact: map[int32]int{}, acPrefilt: map[int32]int{}}
	var acPatterns [][]byte
	var generalNames []string
	var generalASTs []rx.Node
	for local, r := range idx {
		ast := asts[r]
		f := Decompose(ast, opts.MinLiteral)
		switch {
		case f.Exact:
			id := int32(len(acPatterns))
			lit, _ := rx.LiteralString(ast)
			acPatterns = append(acPatterns, []byte(lit))
			sh.acExact[id] = local
			sh.stats.ExactRegexes++
		case len(f.Literals) > 0 && f.MaxLen != rx.Unbounded && f.MaxLen <= opts.MaxRegionLen:
			n, err := nfa.Build([]string{names[r]}, []rx.Node{ast})
			if err != nil {
				return nil, err
			}
			entry := prefiltEntry{regex: local, nfa: n, maxLen: f.MaxLen, litLen: map[int32]int{}}
			eIdx := len(sh.prefilt)
			for _, lit := range f.Literals {
				id := int32(len(acPatterns))
				acPatterns = append(acPatterns, []byte(lit))
				sh.acPrefilt[id] = eIdx
				entry.litLen[id] = len(lit)
			}
			sh.prefilt = append(sh.prefilt, entry)
			sh.stats.PrefilteredRegexes++
		default:
			generalNames = append(generalNames, names[r])
			generalASTs = append(generalASTs, ast)
			sh.genIdx = append(sh.genIdx, local)
			sh.stats.GeneralRegexes++
		}
	}
	sh.ac = NewAhoCorasick(acPatterns)
	if len(generalASTs) > 0 {
		g, err := nfa.Build(generalNames, generalASTs)
		if err != nil {
			return nil, err
		}
		sh.general = g
	}
	sh.names = make([]string, len(idx))
	for local, r := range idx {
		sh.names[local] = names[r]
	}
	return sh, nil
}

// ScanContext is Scan honoring a context, checked before the scan and
// between shard joins; cancellation returns an error satisfying
// errors.Is(err, bgerr.ErrCanceled). It is the hybrid engine's rung of
// the resilience backend ladder (see internal/resilience.Backend).
func (e *Engine) ScanContext(ctx context.Context, input []byte) (*ScanResult, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, bgerr.Canceled(err)
		}
	}
	span := e.opts.Obs.Span("hybrid", "hybrid-scan", 0).Arg("input_bytes", len(input))
	res := e.Scan(input)
	span.Arg("literal_hits", res.Stats.LiteralHits).
		Arg("confirmed_bytes", res.Stats.ConfirmedBytes).
		Arg("general_bytes", res.Stats.GeneralBytes).
		End()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, bgerr.Canceled(err)
		}
	}
	return res, nil
}

// MatchPositions adapts a scan to the resilience Backend contract:
// pattern → sorted match end positions, empty streams omitted.
func (r *ScanResult) MatchPositions() map[string][]int {
	out := make(map[string][]int, len(r.Outputs))
	for name, s := range r.Outputs {
		if p := s.Positions(); len(p) > 0 {
			out[name] = p
		}
	}
	return out
}

// Scan matches all regexes over input. With Threads > 1 the shards run
// concurrently.
func (e *Engine) Scan(input []byte) *ScanResult {
	res := &ScanResult{Outputs: make(map[string]*bitstream.Stream, len(e.names))}
	outs := make([]map[string]*bitstream.Stream, len(e.shards))
	stats := make([]Stats, len(e.shards))
	if len(e.shards) == 1 {
		outs[0], stats[0] = e.shards[0].scan(input)
	} else {
		var wg sync.WaitGroup
		for i, sh := range e.shards {
			wg.Add(1)
			go func(i int, sh *shard) {
				defer wg.Done()
				outs[i], stats[i] = sh.scan(input)
			}(i, sh)
		}
		wg.Wait()
	}
	for i := range outs {
		for name, s := range outs[i] {
			res.Outputs[name] = s
		}
		st := &res.Stats
		st.LiteralHits += stats[i].LiteralHits
		st.ConfirmedBytes += stats[i].ConfirmedBytes
		st.GeneralBytes += stats[i].GeneralBytes
		st.ExactRegexes += stats[i].ExactRegexes
		st.PrefilteredRegexes += stats[i].PrefilteredRegexes
		st.GeneralRegexes += stats[i].GeneralRegexes
	}
	return res
}

func (sh *shard) scan(input []byte) (map[string]*bitstream.Stream, Stats) {
	st := sh.stats // copy compile-time bucket counts
	out := make(map[string]*bitstream.Stream, len(sh.idx))
	for _, name := range sh.names {
		out[name] = bitstream.New(len(input))
	}
	// Per-scan region lists live on the stack, not the shard: a compiled
	// Engine is immutable during Scan, so concurrent scans (the resilience
	// ladder runs the hybrid rung from a concurrency-safe public Engine)
	// do not race.
	regions := make([][]region, len(sh.prefilt))
	// Pass 1: prefilter.
	sh.ac.Scan(input, func(h Hit) {
		st.LiteralHits++
		if local, ok := sh.acExact[h.ID]; ok {
			out[sh.names[local]].Set(int(h.End))
			return
		}
		eIdx := sh.acPrefilt[h.ID]
		entry := &sh.prefilt[eIdx]
		litLen := entry.litLen[h.ID]
		margin := entry.maxLen - litLen
		lo := int(h.End) - litLen + 1 - margin
		hi := int(h.End) + margin
		if lo < 0 {
			lo = 0
		}
		if hi > len(input)-1 {
			hi = len(input) - 1
		}
		regions[eIdx] = append(regions[eIdx], region{lo, hi})
	})
	// Pass 2: regional confirmation.
	for i := range sh.prefilt {
		entry := &sh.prefilt[i]
		if len(regions[i]) == 0 {
			continue
		}
		merged := mergeRegions(regions[i])
		stream := out[sh.names[entry.regex]]
		for _, rg := range merged {
			st.ConfirmedBytes += int64(rg.hi - rg.lo + 1)
			sub := nfa.Simulate(entry.nfa, input[rg.lo:rg.hi+1])
			for _, p := range sub.Outputs[0].Positions() {
				stream.Set(rg.lo + p)
			}
		}
	}
	// Pass 3: general NFA path.
	if sh.general != nil {
		st.GeneralBytes += int64(len(input))
		gres := nfa.Simulate(sh.general, input)
		for gi, local := range sh.genIdx {
			out[sh.names[local]] = gres.Outputs[gi]
		}
	}
	return out, st
}

// mergeRegions sorts and coalesces overlapping regions.
func mergeRegions(rs []region) []region {
	sort.Slice(rs, func(i, j int) bool { return rs[i].lo < rs[j].lo })
	out := rs[:0]
	for _, r := range rs {
		if len(out) > 0 && r.lo <= out[len(out)-1].hi+1 {
			if r.hi > out[len(out)-1].hi {
				out[len(out)-1].hi = r.hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}
