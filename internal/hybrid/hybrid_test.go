package hybrid

import (
	"math/rand"
	"strings"
	"testing"

	"bitgen/internal/ir"
	"bitgen/internal/lower"
	"bitgen/internal/rx"
	"bitgen/internal/transpose"
)

func TestAhoCorasickBasics(t *testing.T) {
	ac := NewAhoCorasick([][]byte{[]byte("he"), []byte("she"), []byte("his"), []byte("hers")})
	var hits []Hit
	ac.Scan([]byte("ushers"), func(h Hit) { hits = append(hits, h) })
	// ushers: "she" ends at 3, "he" ends at 3, "hers" ends at 5.
	got := map[[2]int32]bool{}
	for _, h := range hits {
		got[[2]int32{h.ID, h.End}] = true
	}
	want := [][2]int32{{1, 3}, {0, 3}, {3, 5}}
	if len(hits) != 3 {
		t.Fatalf("hits = %v", hits)
	}
	for _, w := range want {
		if !got[w] {
			t.Fatalf("missing hit %v in %v", w, hits)
		}
	}
}

func TestAhoCorasickOverlapping(t *testing.T) {
	ac := NewAhoCorasick([][]byte{[]byte("aa")})
	count := 0
	ac.Scan([]byte("aaaa"), func(Hit) { count++ })
	if count != 3 {
		t.Fatalf("aa in aaaa: %d hits, want 3", count)
	}
}

func TestDecomposeBuckets(t *testing.T) {
	cases := []struct {
		pattern   string
		exact     bool
		hasFactor bool
		unbounded bool
	}{
		{"hello", true, true, false},
		{"hel+o", false, true, true},
		{"abc(x|y)def", false, true, false},
		{"(foo)|(barbar)", false, true, false},
		{"[a-z]+", false, false, true},
		{"a?b?c?", false, false, false},
		{"x{3,7}yzw", false, true, false},
	}
	for _, c := range cases {
		f := Decompose(rx.MustParse(c.pattern), 3)
		if f.Exact != c.exact {
			t.Errorf("%q: Exact = %v, want %v", c.pattern, f.Exact, c.exact)
		}
		if (len(f.Literals) > 0) != c.hasFactor {
			t.Errorf("%q: factors = %v, want presence %v", c.pattern, f.Literals, c.hasFactor)
		}
		if (f.MaxLen == rx.Unbounded) != c.unbounded {
			t.Errorf("%q: MaxLen = %d, want unbounded %v", c.pattern, f.MaxLen, c.unbounded)
		}
	}
}

func TestDecomposeAlternativeFactors(t *testing.T) {
	f := Decompose(rx.MustParse("(foobar)|(bazqux)"), 3)
	if len(f.Literals) != 2 {
		t.Fatalf("factors = %v, want both alternatives", f.Literals)
	}
}

// checkEngine cross-checks the hybrid engine against the bitstream
// pipeline for a set of patterns over an input.
func checkEngine(t *testing.T, patterns []string, input string, threads int) *ScanResult {
	t.Helper()
	names := make([]string, len(patterns))
	asts := make([]rx.Node, len(patterns))
	regexes := make([]lower.Regex, len(patterns))
	for i, p := range patterns {
		names[i] = p
		asts[i] = rx.MustParse(p)
		regexes[i] = lower.Regex{Name: p, AST: asts[i]}
	}
	eng, err := Compile(names, asts, Options{Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Scan([]byte(input))

	prog, err := lower.Group(regexes, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ir.Interpret(prog, transpose.Transpose([]byte(input)), ir.InterpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if !res.Outputs[name].Equal(ref.Outputs[name]) {
			t.Errorf("pattern %q on %q:\n hybrid    %s\n bitstream %s",
				name, input, res.Outputs[name], ref.Outputs[name])
		}
	}
	return res
}

func TestEngineMatchesBitstreamPipeline(t *testing.T) {
	patterns := []string{
		"needle",
		"nee?dle",
		"(cat)|(dog)",
		"ab[cd]ef",
		"x[0-9]{2,4}y",
		"[a-f]+z",
		"q.*k",
	}
	input := "a needle in a haystack, nedle needle, cat dog ab cef abdef x12y x12345y qzzk " +
		strings.Repeat("fazfbz ", 10)
	res := checkEngine(t, patterns, input, 1)
	if res.Stats.ExactRegexes != 1 {
		t.Errorf("ExactRegexes = %d, want 1", res.Stats.ExactRegexes)
	}
	if res.Stats.GeneralRegexes == 0 {
		t.Error("expected q.*k and [a-f]+z on the general path")
	}
	if res.Stats.PrefilteredRegexes == 0 {
		t.Error("expected prefiltered patterns")
	}
}

func TestEngineMultiThreadedEquivalence(t *testing.T) {
	patterns := []string{"aba", "bab", "a{2,3}b", "(ab)|(ba)c", "abcde", "e+dcba"}
	rng := rand.New(rand.NewSource(12))
	input := make([]byte, 20_000)
	letters := []byte("abcde ")
	for i := range input {
		input[i] = letters[rng.Intn(len(letters))]
	}
	names := patterns
	asts := make([]rx.Node, len(patterns))
	for i, p := range patterns {
		asts[i] = rx.MustParse(p)
	}
	e1, err := Compile(names, asts, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	e4, err := Compile(names, asts, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	r1 := e1.Scan(input)
	r4 := e4.Scan(input)
	for _, name := range names {
		if !r1.Outputs[name].Equal(r4.Outputs[name]) {
			t.Errorf("MT output differs for %q", name)
		}
	}
}

func TestEngineRandomizedCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized cross-check")
	}
	rng := rand.New(rand.NewSource(4242))
	alphabet := []byte("abcd")
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(4)
		patterns := make([]string, 0, k)
		seen := map[string]bool{}
		for len(patterns) < k {
			ast := rx.Generate(rng, rx.GenOptions{MaxDepth: 3, Alphabet: alphabet, MaxRepeat: 3})
			s := ast.String()
			if seen[s] {
				continue
			}
			seen[s] = true
			patterns = append(patterns, s)
		}
		input := make([]byte, 30+rng.Intn(200))
		for i := range input {
			input[i] = alphabet[rng.Intn(len(alphabet))]
		}
		checkEngine(t, patterns, string(input), 1+rng.Intn(3))
	}
}

func TestLiteralHeavyWorkloadUsesPrefilter(t *testing.T) {
	// A Yara/ExactMatch-like set: all pure literals. Everything must take
	// the exact path with zero confirmation bytes.
	var patterns []string
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		n := 6 + rng.Intn(10)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		patterns = append(patterns, string(b))
	}
	names := patterns
	asts := make([]rx.Node, len(patterns))
	for i, p := range patterns {
		asts[i] = rx.MustParse(p)
	}
	eng, err := Compile(names, asts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Scan([]byte(strings.Repeat("the quick brown fox ", 500)))
	if res.Stats.ExactRegexes != 50 {
		t.Fatalf("ExactRegexes = %d", res.Stats.ExactRegexes)
	}
	if res.Stats.ConfirmedBytes != 0 || res.Stats.GeneralBytes != 0 {
		t.Fatalf("literal workload did slow-path work: %+v", res.Stats)
	}
}

func TestRegionalConfirmationBounds(t *testing.T) {
	// Matches whose extent reaches maxLen on both sides of the literal
	// factor: the confirmation region must cover them exactly.
	pattern := "[0-9]{3}needle[0-9]{3}"
	names := []string{pattern}
	asts := []rx.Node{rx.MustParse(pattern)}
	eng, err := Compile(names, asts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("xx123needle456xx ... 99needle999 ... 123needle45")
	res := eng.Scan(input)
	got := res.Outputs[pattern].Positions()
	if len(got) != 1 || got[0] != 13 {
		t.Fatalf("positions = %v, want [13]", got)
	}
	if res.Stats.PrefilteredRegexes != 1 || res.Stats.ConfirmedBytes == 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestAdjacentHitRegionsMerge(t *testing.T) {
	pattern := "ab{1,3}c"
	eng, err := Compile([]string{pattern}, []rx.Node{rx.MustParse(pattern)}, Options{MinLiteral: 1})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte(strings.Repeat("abc", 50))
	res := eng.Scan(input)
	if got := res.Outputs[pattern].Popcount(); got != 50 {
		t.Fatalf("count = %d, want 50", got)
	}
}
