package hybrid

import (
	"strings"

	"bitgen/internal/rx"
)

// Factors is the decomposition of one regex for prefiltering.
type Factors struct {
	// Literals is a set of strings such that every match of the regex
	// contains at least one of them. Empty means no usable factor.
	Literals []string
	// Exact is set when the regex is a single pure literal: prefilter
	// hits are matches, no confirmation needed.
	Exact bool
	// MaxLen is the longest possible match length; rx.Unbounded (-1) for
	// star/plus patterns.
	MaxLen int
}

// Decompose extracts the literal structure of a pattern, mirroring
// Hyperscan's decomposition step. minLiteral is the shortest literal factor
// worth prefiltering on (shorter factors fire constantly and filter
// nothing).
func Decompose(ast rx.Node, minLiteral int) Factors {
	if lit, ok := rx.LiteralString(ast); ok && len(lit) >= minLiteral {
		return Factors{Literals: []string{lit}, Exact: true, MaxLen: len(lit)}
	}
	f := Factors{MaxLen: maxLen(ast)}
	lits, ok := requiredLiterals(ast, minLiteral)
	if ok {
		f.Literals = lits
	}
	return f
}

// maxLen computes the longest match length, or rx.Unbounded.
func maxLen(n rx.Node) int {
	switch x := n.(type) {
	case rx.CC:
		return 1
	case rx.Concat:
		total := 0
		for _, p := range x.Parts {
			l := maxLen(p)
			if l == rx.Unbounded {
				return rx.Unbounded
			}
			total += l
		}
		return total
	case rx.Alt:
		best := 0
		for _, a := range x.Alts {
			l := maxLen(a)
			if l == rx.Unbounded {
				return rx.Unbounded
			}
			if l > best {
				best = l
			}
		}
		return best
	case rx.Star, rx.Plus:
		return rx.Unbounded
	case rx.Opt:
		return maxLen(x.Sub)
	case rx.Repeat:
		if x.Max == rx.Unbounded {
			return rx.Unbounded
		}
		l := maxLen(x.Sub)
		if l == rx.Unbounded {
			return rx.Unbounded
		}
		return l * x.Max
	}
	return 0
}

// requiredLiterals returns strings such that every match of n contains at
// least one, with each string no shorter than minLen. ok is false when no
// such set exists.
func requiredLiterals(n rx.Node, minLen int) ([]string, bool) {
	switch x := n.(type) {
	case rx.CC:
		if s, ok := singleByte(x); ok && minLen <= 1 {
			return []string{s}, true
		}
		return nil, false
	case rx.Concat:
		// Best single mandatory part: collect the longest literal run of
		// single-byte classes; if none qualifies, try each part's own
		// factors.
		if lit := longestRun(x); len(lit) >= minLen {
			return []string{lit}, true
		}
		for _, p := range x.Parts {
			if lits, ok := requiredLiterals(p, minLen); ok {
				return lits, true
			}
		}
		return nil, false
	case rx.Alt:
		// Every alternative must contribute a factor.
		var all []string
		for _, a := range x.Alts {
			lits, ok := requiredLiterals(a, minLen)
			if !ok {
				return nil, false
			}
			all = append(all, lits...)
		}
		return all, true
	case rx.Plus:
		return requiredLiterals(x.Sub, minLen)
	case rx.Repeat:
		if x.Min >= 1 {
			return requiredLiterals(x.Sub, minLen)
		}
		return nil, false
	}
	// Star and Opt are optional: they guarantee nothing.
	return nil, false
}

// longestRun finds the longest literal substring guaranteed to appear in
// every match of the concatenation: consecutive mandatory single-byte
// parts, extending through x+ (one guaranteed byte, then the run breaks
// because more repetitions may intervene) and x{n,m} (n guaranteed bytes,
// continuing only when n == m).
func longestRun(c rx.Concat) string {
	best, cur := "", ""
	flush := func() {
		if len(cur) > len(best) {
			best = cur
		}
		cur = ""
	}
	for _, p := range c.Parts {
		switch x := p.(type) {
		case rx.CC:
			if s, ok := singleByte(x); ok {
				cur += s
				continue
			}
		case rx.Plus:
			if cc, ok := x.Sub.(rx.CC); ok {
				if s, ok := singleByte(cc); ok {
					cur += s
					flush()
					continue
				}
			}
		case rx.Repeat:
			if cc, ok := x.Sub.(rx.CC); ok && x.Min >= 1 {
				if s, ok := singleByte(cc); ok {
					cur += strings.Repeat(s, x.Min)
					if x.Min == x.Max {
						continue
					}
					flush()
					continue
				}
			}
		}
		flush()
	}
	flush()
	return best
}

func singleByte(cc rx.CC) (string, bool) {
	if cc.Class.Size() != 1 {
		return "", false
	}
	for c := 0; c < 256; c++ {
		if cc.Class.Contains(byte(c)) {
			// NOT string(byte(c)): that UTF-8-encodes values >= 0x80.
			return string([]byte{byte(c)}), true
		}
	}
	return "", false
}
