// Package hybrid implements the Hyperscan-style CPU baseline: regex
// decomposition into required literal factors, an Aho-Corasick multi-string
// prefilter, NFA-based confirmation around candidate sites, and a
// multi-goroutine mode that parallelizes across regexes (the paper's HS-1T
// and HS-MT configurations). Unlike the GPU engines, this baseline is
// actually *executed* and wall-clock timed: it is a real multi-pattern
// matcher.
package hybrid

// acNode is one state of the Aho-Corasick automaton.
type acNode struct {
	next [256]int32 // goto function after failure resolution (dense)
	out  []int32    // pattern ids ending here
}

// AhoCorasick is a compiled multi-string matcher.
type AhoCorasick struct {
	nodes    []acNode
	patterns [][]byte
}

// SizeBytes reports the automaton's resident memory: the dense per-node
// transition rows, output lists and the stored patterns.
func (ac *AhoCorasick) SizeBytes() int64 {
	var size int64
	for i := range ac.nodes {
		size += 4*256 + 24 + 4*int64(len(ac.nodes[i].out))
	}
	for _, p := range ac.patterns {
		size += 24 + int64(len(p))
	}
	return size
}

// NewAhoCorasick builds the automaton for the given byte patterns.
// Empty patterns are ignored.
func NewAhoCorasick(patterns [][]byte) *AhoCorasick {
	ac := &AhoCorasick{patterns: patterns}
	ac.nodes = append(ac.nodes, acNode{})
	// Phase 1: trie.
	tri := []map[byte]int32{make(map[byte]int32)}
	for id, pat := range patterns {
		if len(pat) == 0 {
			continue
		}
		cur := int32(0)
		for _, c := range pat {
			nxt, ok := tri[cur][c]
			if !ok {
				nxt = int32(len(ac.nodes))
				ac.nodes = append(ac.nodes, acNode{})
				tri = append(tri, make(map[byte]int32))
				tri[cur][c] = nxt
			}
			cur = nxt
		}
		ac.nodes[cur].out = append(ac.nodes[cur].out, int32(id))
	}
	// Phase 2: BFS failure links, resolving the dense next function.
	fail := make([]int32, len(ac.nodes))
	queue := make([]int32, 0, len(ac.nodes))
	for c := 0; c < 256; c++ {
		if nxt, ok := tri[0][byte(c)]; ok {
			ac.nodes[0].next[c] = nxt
			queue = append(queue, nxt)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		f := fail[u]
		ac.nodes[u].out = append(ac.nodes[u].out, ac.nodes[f].out...)
		for c := 0; c < 256; c++ {
			if nxt, ok := tri[u][byte(c)]; ok {
				ac.nodes[u].next[c] = nxt
				fail[nxt] = ac.nodes[f].next[c]
				queue = append(queue, nxt)
			} else {
				ac.nodes[u].next[c] = ac.nodes[f].next[c]
			}
		}
	}
	return ac
}

// Hit is one literal match: pattern `ID` ends at input position `End`.
type Hit struct {
	ID  int32
	End int32
}

// Scan reports every occurrence of every pattern in input.
func (ac *AhoCorasick) Scan(input []byte, visit func(Hit)) {
	state := int32(0)
	for i, c := range input {
		state = ac.nodes[state].next[c]
		for _, id := range ac.nodes[state].out {
			visit(Hit{ID: id, End: int32(i)})
		}
	}
}

// NumStates reports the automaton size (for stats).
func (ac *AhoCorasick) NumStates() int { return len(ac.nodes) }
