package passes

import (
	"math/rand"
	"strings"
	"testing"

	"bitgen/internal/charclass"
	"bitgen/internal/dfg"
	"bitgen/internal/gpusim"
	"bitgen/internal/ir"
	"bitgen/internal/kernel"
	"bitgen/internal/lower"
	"bitgen/internal/rx"
	"bitgen/internal/transpose"
)

// runInterp interprets a program over an input.
func runInterp(t *testing.T, p *ir.Program, input []byte) map[string]string {
	t.Helper()
	res, err := ir.Interpret(p, transpose.Transpose(input), ir.InterpOptions{HonorGuards: false})
	if err != nil {
		t.Fatalf("interpret: %v\n%s", err, p)
	}
	out := make(map[string]string)
	for name, s := range res.Outputs {
		out[name] = s.String()
	}
	return out
}

func mustEqualOutputs(t *testing.T, a, b map[string]string, context string) {
	t.Helper()
	for name, s := range a {
		if b[name] != s {
			t.Fatalf("%s: output %s changed:\n before %s\n after  %s", context, name, s, b[name])
		}
	}
}

// buildABB builds Figure 8's program for /abb/:
// B4 = ((B1 >> 1 & B2) >> 1) & B3 as a chain.
func buildABB() *ir.Program {
	b := ir.NewBuilder()
	b1 := b.MatchClass(charclass.Single('a'))
	b2 := b.MatchClass(charclass.Single('b'))
	b3 := b.MatchClass(charclass.Single('b'))
	_ = b3 // same class: cached to b2
	s5 := b.Advance(b1, 1)
	s6 := b.And(s5, b2)
	s7 := b.Advance(s6, 1)
	s4 := b.And(s7, b2)
	b.Output("abb", s4)
	return b.Program()
}

func TestRebalancePreservesSemanticsABB(t *testing.T) {
	p := buildABB()
	input := []byte("abb xabb abbb bb abab " + strings.Repeat("ab", 30))
	before := runInterp(t, p, input)
	res := Rebalance(p, RebalanceOptions{})
	if err := ir.Validate(p); err != nil {
		t.Fatalf("rebalanced program invalid: %v\n%s", err, p)
	}
	if res.Rewrites == 0 {
		t.Fatalf("no rewrites applied to the /abb/ chain\n%s", p)
	}
	after := runInterp(t, p, input)
	mustEqualOutputs(t, before, after, "rebalance")
}

func TestRebalanceShortensCriticalPath(t *testing.T) {
	// Figure 8: the chain depth through the final AND drops after
	// rebalancing (shifts move onto the shallow CC operands).
	p := buildABB()
	depthOfOutput := func(p *ir.Program) int {
		depths := dfg.Depths(p)
		var want ir.VarID = p.Outputs[0].Var
		best := -1
		ir.WalkStmts(p.Stmts, func(s ir.Stmt) {
			if a, ok := s.(*ir.Assign); ok && a.Dst == want {
				best = depths[a]
			}
		})
		return best
	}
	before := depthOfOutput(p)
	// Give the CC matches depth by rebuilding: in this toy program the CC
	// streams are at depth>0 already; the interesting metric is the span
	// from the shift chain.
	Rebalance(p, RebalanceOptions{})
	after := depthOfOutput(p)
	if after > before {
		t.Fatalf("critical path grew: %d -> %d\n%s", before, after, p)
	}
}

func TestRebalanceIntroducesLookbacks(t *testing.T) {
	p := buildABB()
	Rebalance(p, RebalanceOptions{})
	st := ir.CollectStats(p)
	neg := 0
	ir.WalkStmts(p.Stmts, func(s ir.Stmt) {
		if a, ok := s.(*ir.Assign); ok {
			if sh, ok := a.Expr.(ir.Shift); ok && sh.K < 0 {
				neg++
			}
		}
	})
	if neg == 0 {
		t.Fatalf("expected counter-shifts (<<) after rebalancing; stats %+v\n%s", st, p)
	}
}

func TestMergeBarriersSchedule(t *testing.T) {
	// abb after rebalancing has independent shifts on CC streams that can
	// share one barrier pair (Figure 9).
	p := buildABB()
	Rebalance(p, RebalanceOptions{})
	sched := MergeBarriers(p, MergeOptions{MergeSize: 8})
	if len(sched.Groups) == 0 {
		t.Fatalf("no merged groups\n%s", p)
	}
	if err := ir.Validate(p); err != nil {
		t.Fatalf("merged program invalid: %v\n%s", err, p)
	}
	input := []byte("abb xabb abbb bb abab")
	after := runInterp(t, p, input)
	fresh := buildABB()
	before := runInterp(t, fresh, input)
	mustEqualOutputs(t, before, after, "merge")
}

func TestMergeReducesExecutorBarriers(t *testing.T) {
	grid := gpusim.Grid{CTAs: 1, Threads: 4, UnitBits: 32, UnitsPerThread: 1}
	input := []byte(strings.Repeat("the quick brown fox jumps over cdefg ", 20))
	build := func() *ir.Program { return lower.MustSingle("re", "abcde|cdefg") }

	plain := build()
	res1, err := kernel.Run(plain, transpose.Transpose(input), kernel.Config{Grid: grid, Mode: kernel.ModeDTM})
	if err != nil {
		t.Fatal(err)
	}
	merged := build()
	Rebalance(merged, RebalanceOptions{})
	MergeBarriers(merged, MergeOptions{MergeSize: 8})
	res2, err := kernel.Run(merged, transpose.Transpose(input), kernel.Config{Grid: grid, Mode: kernel.ModeDTM})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Outputs["re"].Equal(res2.Outputs["re"]) {
		t.Fatal("merged program changed results")
	}
	if res2.Stats.ShiftBarriers >= res1.Stats.ShiftBarriers {
		t.Errorf("merge did not reduce shift barriers: %d vs %d",
			res2.Stats.ShiftBarriers, res1.Stats.ShiftBarriers)
	}
}

func TestMergeSizeSweepMonotone(t *testing.T) {
	grid := gpusim.Grid{CTAs: 1, Threads: 4, UnitBits: 32, UnitsPerThread: 1}
	input := []byte(strings.Repeat("abcdefghij", 40))
	var prev int64 = -1
	for _, ms := range []int{1, 4, 16, 32} {
		p := lower.MustSingle("re", "abcdefgh")
		Rebalance(p, RebalanceOptions{})
		MergeBarriers(p, MergeOptions{MergeSize: ms})
		res, err := kernel.Run(p, transpose.Transpose(input), kernel.Config{Grid: grid, Mode: kernel.ModeDTM})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.Stats.ShiftBarriers > prev {
			t.Errorf("merge size %d increased barriers: %d > %d", ms, res.Stats.ShiftBarriers, prev)
		}
		prev = res.Stats.ShiftBarriers
	}
}

func TestInsertGuardsFindsPathsAndPreservesSemantics(t *testing.T) {
	p := lower.MustSingle("re", "abcdefgh|q")
	input := []byte(strings.Repeat("no hits here... abcdefgh! ", 15))
	before := runInterp(t, p, input)
	res := InsertGuards(p, ZBSOptions{Interval: 2})
	if res.PathsFound == 0 || res.GuardsInserted == 0 {
		t.Fatalf("ZBS found %d paths, inserted %d guards\n%s", res.PathsFound, res.GuardsInserted, p)
	}
	if err := ir.Validate(p); err != nil {
		t.Fatalf("guarded program invalid: %v\n%s", err, p)
	}
	after := runInterp(t, p, input)
	mustEqualOutputs(t, before, after, "zbs-plain")

	// Guarded interpretation must agree too.
	resG, err := ir.Interpret(p, transpose.Transpose(input), ir.InterpOptions{HonorGuards: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range before {
		if resG.Outputs[name].String() != s {
			t.Fatalf("honored guards changed output %s", name)
		}
	}
}

func TestGuardsSkipOnMismatchInput(t *testing.T) {
	grid := gpusim.Grid{CTAs: 1, Threads: 4, UnitBits: 32, UnitsPerThread: 1}
	p := lower.MustSingle("re", "zebraquagga")
	InsertGuards(p, ZBSOptions{})
	input := []byte(strings.Repeat("nothing to see here, move along. ", 20))
	res, err := kernel.Run(p, transpose.Transpose(input), kernel.Config{Grid: grid, Mode: kernel.ModeDTM, HonorGuards: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.GuardSkips == 0 {
		t.Fatalf("no guard skips on all-mismatch input (checks=%d)\n%s", res.Stats.GuardChecks, p)
	}
	if res.Outputs["re"].Any() {
		t.Fatal("false match")
	}
}

func TestFullPipelineRandomEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized pass equivalence")
	}
	rng := rand.New(rand.NewSource(20250706))
	alphabet := []byte("abcd")
	grid := gpusim.Grid{CTAs: 1, Threads: 4, UnitBits: 32, UnitsPerThread: 1}
	for trial := 0; trial < 80; trial++ {
		ast := rx.Generate(rng, rx.GenOptions{MaxDepth: 3, Alphabet: alphabet, MaxRepeat: 3})
		p, err := lower.Group([]lower.Regex{{Name: "re", AST: ast}}, lower.Options{})
		if err != nil {
			t.Fatal(err)
		}
		n := 40 + rng.Intn(120)
		input := make([]byte, n)
		for i := range input {
			input[i] = alphabet[rng.Intn(len(alphabet))]
		}
		want := runInterp(t, p, input)

		Rebalance(p, RebalanceOptions{})
		if err := ir.Validate(p); err != nil {
			t.Fatalf("trial %d (%q): rebalance broke validity: %v", trial, ast.String(), err)
		}
		MergeBarriers(p, MergeOptions{MergeSize: 4})
		if err := ir.Validate(p); err != nil {
			t.Fatalf("trial %d (%q): merge broke validity: %v", trial, ast.String(), err)
		}
		InsertGuards(p, ZBSOptions{Interval: 3})
		if err := ir.Validate(p); err != nil {
			t.Fatalf("trial %d (%q): zbs broke validity: %v", trial, ast.String(), err)
		}
		got := runInterp(t, p, input)
		mustEqualOutputs(t, want, got, "pipeline "+ast.String())

		// And through the interleaved executor with guards honored.
		res, err := kernel.Run(p, transpose.Transpose(input), kernel.Config{Grid: grid, Mode: kernel.ModeDTM, HonorGuards: true})
		if err != nil {
			t.Fatalf("trial %d (%q): executor: %v", trial, ast.String(), err)
		}
		if got := ir.ExtendNullableOutputs(p, res.Outputs)["re"]; got.String() != want["re"] {
			t.Fatalf("trial %d (%q) input %q: executor diverges:\n got  %s\n want %s",
				trial, ast.String(), input, got, want["re"])
		}
	}
}
