package passes

import (
	"bitgen/internal/dfg"
	"bitgen/internal/ir"
)

// ZBSOptions control Zero Block Skipping guard insertion.
type ZBSOptions struct {
	// Interval is the spacing of additional guards along a zero path
	// (Section 6's interval size). Zero means 8, the paper's default.
	Interval int
	// MinSkip is the minimum number of skipped statements for a guard to
	// be worth its check; zero means 2.
	MinSkip int
}

// ZBSResult reports what the pass did.
type ZBSResult struct {
	// PathsFound is the number of zero paths discovered.
	PathsFound int
	// GuardsInserted is the number of guards placed.
	GuardsInserted int
	// Rejected counts insertion attempts that failed validation (a
	// skipped non-path instruction defines a variable used outside the
	// skipped range).
	Rejected int
}

// InsertGuards implements Section 6: it finds zero paths in every
// straight-line run, validates candidate guard positions, and inserts
// conditional skips at the path head and every Interval instructions along
// the path. When a guard triggers at runtime (its condition block is
// all-zero), the executor skips the covered statements and zeroes their
// destinations — sound because on-path values are guaranteed zero and
// validated non-path values are dead outside the range.
func InsertGuards(p *ir.Program, opts ZBSOptions) ZBSResult {
	if opts.Interval == 0 {
		opts.Interval = 8
	}
	if opts.MinSkip == 0 {
		opts.MinSkip = 2
	}
	var res ZBSResult
	ext := globalUses(p)
	guardBody(p, &p.Stmts, opts, &res, ext)
	return res
}

// globalUses records, per variable, every textual use in the program plus
// outputs (used to decide whether a skipped definition escapes its range).
// A nil entry marks an output use. Indexed by VarID (dense).
func globalUses(p *ir.Program) [][]ir.Stmt {
	uses := make([][]ir.Stmt, p.NumVars)
	var buf [2]ir.VarID
	ir.WalkStmts(p.Stmts, func(s ir.Stmt) {
		switch x := s.(type) {
		case *ir.Assign:
			for _, v := range ir.OperandsInto(x.Expr, &buf) {
				uses[v] = append(uses[v], s)
			}
		case *ir.If:
			uses[x.Cond] = append(uses[x.Cond], s)
		case *ir.While:
			uses[x.Cond] = append(uses[x.Cond], s)
		case *ir.Guard:
			uses[x.Cond] = append(uses[x.Cond], s)
		}
	})
	for _, o := range p.Outputs {
		uses[o.Var] = append(uses[o.Var], nil)
	}
	return uses
}

// insertion describes one guard to place: right after `after`, skipping
// through `last`, conditioned on `cond`.
type insertion struct {
	after *ir.Assign
	last  *ir.Assign
	cond  ir.VarID
}

func guardBody(p *ir.Program, body *[]ir.Stmt, opts ZBSOptions, res *ZBSResult, ext [][]ir.Stmt) {
	for _, s := range *body {
		switch x := s.(type) {
		case *ir.If:
			guardBody(p, &x.Body, opts, res, ext)
		case *ir.While:
			guardBody(p, &x.Body, opts, res, ext)
		}
	}
	var inserts []insertion
	var run []*ir.Assign
	flush := func() {
		if len(run) > 1 {
			inserts = append(inserts, planRunGuards(run, p.NumVars, opts, res, ext)...)
		}
		run = nil
	}
	for _, s := range *body {
		if a, ok := s.(*ir.Assign); ok {
			run = append(run, a)
			continue
		}
		flush()
	}
	flush()
	if len(inserts) == 0 {
		return
	}
	// Rebuild the body with guards placed after their anchor statements.
	byAnchor := make(map[*ir.Assign][]insertion)
	for _, ins := range inserts {
		byAnchor[ins.after] = append(byAnchor[ins.after], ins)
	}
	rebuilt := make([]ir.Stmt, 0, len(*body)+len(inserts))
	guardOf := make(map[*ir.Guard]*ir.Assign)
	for _, s := range *body {
		rebuilt = append(rebuilt, s)
		if a, ok := s.(*ir.Assign); ok {
			for _, ins := range byAnchor[a] {
				g := &ir.Guard{Cond: ins.cond, Skip: 1}
				guardOf[g] = ins.last
				rebuilt = append(rebuilt, g)
				res.GuardsInserted++
			}
		}
	}
	// Fix skip counts now that final positions are known.
	pos := make(map[ir.Stmt]int, len(rebuilt))
	for i, s := range rebuilt {
		pos[s] = i
	}
	kept := rebuilt[:0]
	for _, s := range rebuilt {
		if g, ok := s.(*ir.Guard); ok {
			if target, tracked := guardOf[g]; tracked {
				tp, ok := pos[target]
				if !ok || tp <= pos[g] {
					continue // degenerate: drop the guard
				}
				g.Skip = tp - pos[g]
			}
		}
		kept = append(kept, s)
	}
	*body = kept
}

// planRunGuards finds valid guard insertions for one straight-line run.
// The run-position index and the on-path stamps are built once per run /
// per path so candidate validation never allocates — at ClamAV megaset
// scale a run holds the whole group program and every AND chain is a path.
func planRunGuards(run []*ir.Assign, numVars int, opts ZBSOptions, res *ZBSResult, ext [][]ir.Stmt) []insertion {
	var out []insertion
	taken := make(map[*ir.Assign]bool)
	paths := dfg.ZeroPaths(run, numVars)
	res.PathsFound += len(paths)
	// idxOf maps a statement to its run position; statements from other
	// bodies (or outputs, as nil) are absent, i.e. external to any range.
	idxOf := make(map[ir.Stmt]int32, len(run))
	for i, a := range run {
		idxOf[a] = int32(i)
	}
	onPath := make([]int32, len(run)) // stamp = path ordinal + 1
	for pi, path := range paths {
		stamp := int32(pi + 1)
		endIdx := path.Stmts[len(path.Stmts)-1]
		onPath[path.Head] = stamp
		for _, idx := range path.Stmts {
			onPath[idx] = stamp
		}
		candidates := []int{path.Head}
		for j := opts.Interval; j < len(path.Stmts); j += opts.Interval {
			candidates = append(candidates, path.Stmts[j-1])
		}
		for _, condPos := range candidates {
			// Advance past rejections, as the paper's algorithm does.
			for condPos < endIdx {
				if validSkipRange(run, condPos+1, endIdx, onPath, stamp, ext, idxOf) {
					break
				}
				res.Rejected++
				next := -1
				for _, idx := range path.Stmts {
					if idx > condPos && idx < endIdx {
						next = idx
						break
					}
				}
				if next == -1 {
					condPos = endIdx // no valid start: give up on this candidate
					break
				}
				condPos = next
			}
			if condPos >= endIdx || endIdx-condPos < opts.MinSkip {
				continue
			}
			anchor := run[condPos]
			if taken[anchor] {
				continue
			}
			taken[anchor] = true
			out = append(out, insertion{after: anchor, last: run[endIdx], cond: anchor.Dst})
		}
	}
	return out
}

// validSkipRange checks the paper's rejection rule: every non-path
// statement inside the candidate range must not define a variable used
// outside the range.
func validSkipRange(run []*ir.Assign, from, to int, onPath []int32, stamp int32, ext [][]ir.Stmt, idxOf map[ir.Stmt]int32) bool {
	for i := from; i <= to; i++ {
		if onPath[i] == stamp {
			continue // on-path values are provably zero when skipped
		}
		for _, use := range ext[run[i].Dst] {
			if use == nil {
				return false // output use escapes any range
			}
			idx, ok := idxOf[use]
			if !ok || int(idx) < from || int(idx) > to {
				return false
			}
		}
	}
	return true
}
