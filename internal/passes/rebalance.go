// Package passes implements BitGen's program transformations: Shift
// Rebalancing with barrier merging (Section 5) and Zero Block Skipping
// guard insertion (Section 6). All passes preserve whole-stream semantics;
// the test suite verifies transformed programs against the interpreter.
package passes

import (
	"bitgen/internal/dfg"
	"bitgen/internal/ir"
)

// RebalanceOptions control the Shift Rebalancing pass.
type RebalanceOptions struct {
	// MaxIterations bounds the rewrite fixpoint; zero means 16.
	MaxIterations int
}

// RebalanceResult reports what the pass did.
type RebalanceResult struct {
	// Rewrites counts applied operand rewrites.
	Rewrites int
	// Iterations is how many fixpoint rounds ran.
	Iterations int
}

// Rebalance applies the operand-rewriting transformation of Section 5.2 to
// every straight-line run of the program: for an AND whose one operand is a
// freshly shifted value and whose other operand is topologically shallower,
//
//	(A >> n) & B   →   (A & (B << n)) >> n
//
// moving the shift off the critical path onto the earlier-available
// operand. The rewrite is applied iteratively until a fixpoint. Only
// top-level and straight-line-body runs of assignments are transformed;
// control-flow bodies are processed independently.
func Rebalance(p *ir.Program, opts RebalanceOptions) RebalanceResult {
	if opts.MaxIterations == 0 {
		// Each round applies at least one rewrite per straight-line run;
		// long literal chains (ClamAV signatures run to hundreds of
		// characters) need proportionally many rounds to reach the
		// balanced Figure-8 form.
		n := 0
		ir.WalkStmts(p.Stmts, func(ir.Stmt) { n++ })
		opts.MaxIterations = 4*n + 64
	}
	var res RebalanceResult
	for round := 0; round < opts.MaxIterations; round++ {
		res.Iterations++
		changed := rebalanceBody(p, &p.Stmts, &res)
		if fuseShiftChains(p, &p.Stmts) {
			changed = true
		}
		if !changed {
			break
		}
	}
	// Rewrites leave the original single-use shifts dead; sweep them.
	EliminateDeadCode(p)
	return res
}

// fuseShiftChains composes same-direction shift pairs: a single-use
// X = A >> a feeding Y = X >> b becomes Y = A >> (a+b) (and likewise for
// lookbacks). This is the "merged after the last AND" step of Figure 8's
// second iteration; it is exact on bounded streams only for same-sign
// shifts, so mixed directions are left alone.
func fuseShiftChains(p *ir.Program, body *[]ir.Stmt) bool {
	changed := false
	for _, s := range *body {
		switch x := s.(type) {
		case *ir.If:
			if fuseShiftChains(p, &x.Body) {
				changed = true
			}
		case *ir.While:
			if fuseShiftChains(p, &x.Body) {
				changed = true
			}
		}
	}
	// Work over maximal assignment runs.
	uses := make(map[ir.VarID]int)
	def := make(map[ir.VarID]*ir.Assign)
	redef := make(map[ir.VarID]bool)
	ir.WalkStmts(p.Stmts, func(s ir.Stmt) {
		switch x := s.(type) {
		case *ir.Assign:
			for _, v := range ir.Operands(x.Expr) {
				uses[v]++
			}
			if def[x.Dst] != nil {
				redef[x.Dst] = true
			}
			def[x.Dst] = x
		case *ir.If:
			uses[x.Cond]++
		case *ir.While:
			uses[x.Cond]++
		case *ir.Guard:
			uses[x.Cond]++
		}
	})
	for _, o := range p.Outputs {
		uses[o.Var]++
	}
	ir.WalkStmts(*body, func(s ir.Stmt) {
		a, ok := s.(*ir.Assign)
		if !ok {
			return
		}
		outer, ok := a.Expr.(ir.Shift)
		if !ok {
			return
		}
		innerDef := def[outer.Src]
		if innerDef == nil || redef[outer.Src] {
			return
		}
		inner, ok := innerDef.Expr.(ir.Shift)
		if !ok || redef[inner.Src] {
			return
		}
		if (inner.K > 0) != (outer.K > 0) {
			return // mixed directions do not compose exactly
		}
		// Retargeting is always sound: the inner shift stays for any
		// other users and dead-code elimination removes it if unused.
		a.Expr = ir.Shift{Src: inner.Src, K: inner.K + outer.K}
		changed = true
	})
	_ = uses
	return changed
}

// EliminateDeadCode removes assignments whose results are never read
// (transitively), keeping outputs, conditions and guard sources alive.
// It returns the number of statements removed.
func EliminateDeadCode(p *ir.Program) int {
	removed := 0
	for {
		uses := make(map[ir.VarID]int)
		ir.WalkStmts(p.Stmts, func(s ir.Stmt) {
			switch x := s.(type) {
			case *ir.Assign:
				for _, v := range ir.Operands(x.Expr) {
					uses[v]++
				}
			case *ir.If:
				uses[x.Cond]++
			case *ir.While:
				uses[x.Cond]++
			case *ir.Guard:
				uses[x.Cond]++
			}
		})
		for _, o := range p.Outputs {
			uses[o.Var]++
		}
		// A variable assigned more than once (loop-carried) is kept
		// conservatively: its assignments may feed each other.
		defs := make(map[ir.VarID]int)
		ir.WalkStmts(p.Stmts, func(s ir.Stmt) {
			if a, ok := s.(*ir.Assign); ok {
				defs[a.Dst]++
			}
		})
		n := removeDead(&p.Stmts, uses, defs)
		if n == 0 {
			return removed
		}
		removed += n
	}
}

// removeDead drops dead assignments from a body. Guards whose skip range
// shrinks are conservatively left intact only when all skipped statements
// survive; otherwise bodies containing guards are skipped entirely.
func removeDead(body *[]ir.Stmt, uses map[ir.VarID]int, defs map[ir.VarID]int) int {
	for _, s := range *body {
		if _, ok := s.(*ir.Guard); ok {
			// Removing statements would desynchronize guard skip counts.
			return removeDeadNested(*body, uses, defs)
		}
	}
	removed := 0
	kept := (*body)[:0]
	for _, s := range *body {
		if a, ok := s.(*ir.Assign); ok {
			if uses[a.Dst] == 0 && defs[a.Dst] == 1 {
				removed++
				continue
			}
		}
		kept = append(kept, s)
	}
	*body = kept
	for _, s := range *body {
		switch x := s.(type) {
		case *ir.If:
			removed += removeDead(&x.Body, uses, defs)
		case *ir.While:
			removed += removeDead(&x.Body, uses, defs)
		}
	}
	return removed
}

// removeDeadNested only recurses into nested bodies (used when the current
// body contains guards and must keep its statement count).
func removeDeadNested(body []ir.Stmt, uses map[ir.VarID]int, defs map[ir.VarID]int) int {
	removed := 0
	for _, s := range body {
		switch x := s.(type) {
		case *ir.If:
			removed += removeDead(&x.Body, uses, defs)
		case *ir.While:
			removed += removeDead(&x.Body, uses, defs)
		}
	}
	return removed
}

func rebalanceBody(p *ir.Program, body *[]ir.Stmt, res *RebalanceResult) bool {
	changed := false
	// Recurse into nested bodies first.
	for _, s := range *body {
		switch x := s.(type) {
		case *ir.If:
			if rebalanceBody(p, &x.Body, res) {
				changed = true
			}
		case *ir.While:
			if rebalanceBody(p, &x.Body, res) {
				changed = true
			}
		}
	}
	// Process the maximal runs of assignments in this body.
	start := 0
	for i := 0; i <= len(*body); i++ {
		atEnd := i == len(*body)
		var isAssign bool
		if !atEnd {
			_, isAssign = (*body)[i].(*ir.Assign)
		}
		if !atEnd && isAssign {
			continue
		}
		if i > start {
			if rebalanceRun(p, body, start, i, res) {
				changed = true
			}
		}
		start = i + 1
	}
	return changed
}

// rebalanceRun rewrites one straight-line run (*body)[start:end).
func rebalanceRun(p *ir.Program, body *[]ir.Stmt, start, end int, res *RebalanceResult) bool {
	run := make([]*ir.Assign, 0, end-start)
	for _, s := range (*body)[start:end] {
		run = append(run, s.(*ir.Assign))
	}
	// Count uses of each variable within the run, and identify the single
	// defining statement of shift values (rewriting is only safe when the
	// shifted value has exactly one use: the AND we are rewriting).
	uses := make(map[ir.VarID]int)
	defIdx := make(map[ir.VarID]int)
	redefined := make(map[ir.VarID]bool)
	for idx, a := range run {
		for _, v := range ir.Operands(a.Expr) {
			uses[v]++
		}
		if _, dup := defIdx[a.Dst]; dup {
			redefined[a.Dst] = true
		}
		defIdx[a.Dst] = idx
	}
	// Variables used outside this run (later program text) must not have
	// their defining expressions repurposed. Conservatively count output
	// uses as external.
	external := externalUses(p, body, start, end)

	varDepth := dfg.VarDepthsAt(run, p.NumVars)
	changed := false
	for idx, a := range run {
		bin, ok := a.Expr.(ir.Bin)
		if !ok || bin.Op != ir.OpAnd {
			continue
		}
		// Identify a shift-defined operand within this run.
		tryRewrite := func(shiftVar, other ir.VarID) bool {
			sIdx, ok := defIdx[shiftVar]
			if !ok || sIdx >= idx || redefined[shiftVar] {
				return false
			}
			sh, ok := run[sIdx].Expr.(ir.Shift)
			if !ok {
				return false
			}
			if uses[shiftVar] != 1 || external[shiftVar] || redefined[shiftVar] {
				return false
			}
			// The new statements read sh.Src and other at this position;
			// their values must equal those at their original reads.
			if redefined[other] || redefined[sh.Src] {
				return false
			}
			// Profitable when the shift's source is deeper than the other
			// operand: moving the shift to the shallower side shortens the
			// critical path (Section 5.2's x > y condition).
			if varDepth[sh.Src] <= varDepth[other] {
				return false
			}
			// Rewrite: D = (A >> k) & B  →
			//   counter = B << k; inner = A & counter; D = inner >> k.
			// The old shift becomes dead (single use) and is removed by
			// dead-code elimination; the barrier-merge pass later hoists
			// the counter-shift to where B is available.
			counter := p.NewVar()
			inner := p.NewVar()
			a.Expr = ir.Shift{Src: inner, K: sh.K}
			pre := []ir.Stmt{
				&ir.Assign{Dst: counter, Expr: ir.Shift{Src: other, K: -sh.K}},
				&ir.Assign{Dst: inner, Expr: ir.Bin{Op: ir.OpAnd, X: sh.Src, Y: counter}},
			}
			pos := start + idx
			*body = append(*body, nil, nil)
			copy((*body)[pos+2:], (*body)[pos:len(*body)-2])
			(*body)[pos] = pre[0]
			(*body)[pos+1] = pre[1]
			res.Rewrites++
			return true
		}
		if tryRewrite(bin.X, bin.Y) || tryRewrite(bin.Y, bin.X) {
			changed = true
			break // indices shifted; restart this run next round
		}
	}
	return changed
}

// externalUses reports variables defined in (*body)[start:end) that are
// read anywhere outside that range (including outputs and conditions).
func externalUses(p *ir.Program, body *[]ir.Stmt, start, end int) map[ir.VarID]bool {
	inRange := make(map[ir.Stmt]bool)
	for _, s := range (*body)[start:end] {
		inRange[s] = true
	}
	ext := make(map[ir.VarID]bool)
	ir.WalkStmts(p.Stmts, func(s ir.Stmt) {
		if inRange[s] {
			return
		}
		switch x := s.(type) {
		case *ir.Assign:
			for _, v := range ir.Operands(x.Expr) {
				ext[v] = true
			}
		case *ir.If:
			ext[x.Cond] = true
		case *ir.While:
			ext[x.Cond] = true
		case *ir.Guard:
			ext[x.Cond] = true
		}
	})
	for _, o := range p.Outputs {
		ext[o.Var] = true
	}
	return ext
}
