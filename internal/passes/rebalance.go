// Package passes implements BitGen's program transformations: Shift
// Rebalancing with barrier merging (Section 5) and Zero Block Skipping
// guard insertion (Section 6). All passes preserve whole-stream semantics;
// the test suite verifies transformed programs against the interpreter.
package passes

import (
	"bitgen/internal/dfg"
	"bitgen/internal/ir"
)

// RebalanceOptions control the Shift Rebalancing pass.
type RebalanceOptions struct {
	// MaxIterations bounds the rewrite fixpoint; zero means 4n+64 for an
	// n-statement program (a safety valve: rounds normally stop long
	// before via the no-change exit).
	MaxIterations int
}

// RebalanceResult reports what the pass did.
type RebalanceResult struct {
	// Rewrites counts applied operand rewrites.
	Rewrites int
	// Iterations is how many fixpoint rounds ran.
	Iterations int
}

// Rebalance applies the operand-rewriting transformation of Section 5.2 to
// every straight-line run of the program: for an AND whose one operand is a
// freshly shifted value and whose other operand is topologically shallower,
//
//	(A >> n) & B   →   (A & (B << n)) >> n
//
// moving the shift off the critical path onto the earlier-available
// operand. The rewrite is applied iteratively until a fixpoint. Only
// top-level and straight-line-body runs of assignments are transformed;
// control-flow bodies are processed independently.
//
// Each round applies every profitable rewrite found in one forward scan
// (bookkeeping is updated incrementally), so the round count is bounded
// by the longest def-use chain — not by the rewrite total. ClamAV-class
// group programs run to 10^5 statements; the earlier one-rewrite-per-
// round formulation was quadratic in group size and dominated megaset
// compiles.
func Rebalance(p *ir.Program, opts RebalanceOptions) RebalanceResult {
	if opts.MaxIterations == 0 {
		n := 0
		ir.WalkStmts(p.Stmts, func(ir.Stmt) { n++ })
		opts.MaxIterations = 4*n + 64
	}
	rb := &rebalancer{p: p}
	var res RebalanceResult
	for round := 0; round < opts.MaxIterations; round++ {
		res.Iterations++
		rb.prepRound()
		changed := rb.body(&p.Stmts, &res)
		if fuseShiftChains(p) {
			changed = true
		}
		if !changed {
			break
		}
	}
	// Rewrites leave the original single-use shifts dead; sweep them.
	EliminateDeadCode(p)
	return res
}

// rebalancer holds the per-round analysis state, reused across rounds to
// keep the pass allocation-light. All tables are indexed by VarID (dense)
// and grown in lockstep with NewVar as rewrites mint fresh variables.
type rebalancer struct {
	p *ir.Program
	// uses counts every read of a variable program-wide: assignment
	// operands, If/While/Guard conditions, and outputs. A shift value is
	// rewritable only while uses == 1 (its single use is the AND at hand),
	// which folds the old run-local count and external-use check into one.
	uses []int32
	// defIdx/redef are run-local: the defining statement index within the
	// current run (-1 outside it) and whether the variable is assigned
	// more than once. Entries touched by a run are reset when it ends.
	defIdx []int32
	redef  []bool
}

// prepRound recounts global uses and clears the run-local tables for one
// fixpoint round.
func (rb *rebalancer) prepRound() {
	n := rb.p.NumVars
	rb.uses = resizeInt32(rb.uses, n, 0)
	for i := range rb.uses {
		rb.uses[i] = 0
	}
	rb.defIdx = resizeInt32(rb.defIdx, n, -1)
	rb.redef = resizeBool(rb.redef, n)
	var buf [2]ir.VarID
	ir.WalkStmts(rb.p.Stmts, func(s ir.Stmt) {
		switch x := s.(type) {
		case *ir.Assign:
			for _, v := range ir.OperandsInto(x.Expr, &buf) {
				rb.uses[v]++
			}
		case *ir.If:
			rb.uses[x.Cond]++
		case *ir.While:
			rb.uses[x.Cond]++
		case *ir.Guard:
			rb.uses[x.Cond]++
		}
	})
	for _, o := range rb.p.Outputs {
		rb.uses[o.Var]++
	}
}

// body processes one statement list: nested bodies first, then the maximal
// runs of assignments. Runs that rewrote are spliced back in one rebuild
// (no mid-slice insertion), keeping a round linear in body size.
func (rb *rebalancer) body(body *[]ir.Stmt, res *RebalanceResult) bool {
	changed := false
	for _, s := range *body {
		switch x := s.(type) {
		case *ir.If:
			if rb.body(&x.Body, res) {
				changed = true
			}
		case *ir.While:
			if rb.body(&x.Body, res) {
				changed = true
			}
		}
	}
	var out []ir.Stmt // lazily created on the first rewritten run
	copied := 0       // body prefix already appended to out
	i := 0
	for i < len(*body) {
		if _, ok := (*body)[i].(*ir.Assign); !ok {
			i++
			continue
		}
		j := i + 1
		for j < len(*body) {
			if _, ok := (*body)[j].(*ir.Assign); !ok {
				break
			}
			j++
		}
		if seg := rb.run((*body)[i:j], res); seg != nil {
			changed = true
			if out == nil {
				out = make([]ir.Stmt, 0, len(*body)+len(seg)-(j-i))
			}
			out = append(out, (*body)[copied:i]...)
			out = append(out, seg...)
			copied = j
		}
		i = j
	}
	if out != nil {
		out = append(out, (*body)[copied:]...)
		*body = out
	}
	return changed
}

// run rewrites one straight-line run of assignments, applying every
// profitable rewrite in a single forward scan. It returns the replacement
// statement list (with counter/inner pre-statements spliced in), or nil
// when nothing changed.
func (rb *rebalancer) run(stmts []ir.Stmt, res *RebalanceResult) []ir.Stmt {
	p := rb.p
	run := make([]*ir.Assign, len(stmts))
	for i, s := range stmts {
		run[i] = s.(*ir.Assign)
	}
	for idx, a := range run {
		if rb.defIdx[a.Dst] >= 0 {
			rb.redef[a.Dst] = true
		}
		rb.defIdx[a.Dst] = int32(idx)
	}
	depth := dfg.VarDepthsAt(run, p.NumVars)

	var pres [][]ir.Stmt // pre-statements per run index, lazily allocated
	inserted := 0
	for idx, a := range run {
		bin, ok := a.Expr.(ir.Bin)
		if !ok || bin.Op != ir.OpAnd {
			continue
		}
		// Identify a shift-defined operand within this run. Rewriting is
		// only safe when the shifted value has exactly one use anywhere in
		// the program: the AND we are rewriting.
		tryRewrite := func(shiftVar, other ir.VarID) bool {
			sIdx := rb.defIdx[shiftVar]
			if sIdx < 0 || int(sIdx) >= idx || rb.redef[shiftVar] {
				return false
			}
			sh, ok := run[sIdx].Expr.(ir.Shift)
			if !ok {
				return false
			}
			if rb.uses[shiftVar] != 1 {
				return false
			}
			// The new statements read sh.Src and other at this position;
			// their values must equal those at their original reads.
			if rb.redef[other] || rb.redef[sh.Src] {
				return false
			}
			// Profitable when the shift's source is deeper than the other
			// operand: moving the shift to the shallower side shortens the
			// critical path (Section 5.2's x > y condition).
			if depth[sh.Src] <= depth[other] {
				return false
			}
			// Rewrite: D = (A >> k) & B  →
			//   counter = B << k; inner = A & counter; D = inner >> k.
			// The old shift becomes dead (single use) and is removed by
			// dead-code elimination; the barrier-merge pass later hoists
			// the counter-shift to where B is available.
			counter := p.NewVar()
			inner := p.NewVar()
			a.Expr = ir.Shift{Src: inner, K: sh.K}
			if pres == nil {
				pres = make([][]ir.Stmt, len(run))
			}
			pres[idx] = []ir.Stmt{
				&ir.Assign{Dst: counter, Expr: ir.Shift{Src: other, K: -sh.K}},
				&ir.Assign{Dst: inner, Expr: ir.Bin{Op: ir.OpAnd, X: sh.Src, Y: counter}},
			}
			inserted += 2
			// Incremental bookkeeping so the scan can keep rewriting: the
			// AND no longer reads shiftVar; inner reads sh.Src and counter;
			// the rewritten assignment reads inner. The fresh variables are
			// deliberately left out of defIdx (they become rewrite sources
			// only on the next round, once positions are rebuilt).
			rb.uses[shiftVar]--
			rb.uses = resizeInt32(rb.uses, int(inner)+1, 0)
			rb.defIdx = resizeInt32(rb.defIdx, int(inner)+1, -1)
			rb.redef = resizeBool(rb.redef, int(inner)+1)
			rb.uses[sh.Src]++
			rb.uses[counter] = 1
			rb.uses[inner] = 1
			for len(depth) <= int(inner) {
				depth = append(depth, 0)
			}
			depth[counter] = depth[other] + 1
			d := depth[sh.Src]
			if depth[counter] > d {
				d = depth[counter]
			}
			depth[inner] = d + 1
			depth[a.Dst] = depth[inner] + 1
			res.Rewrites++
			return true
		}
		if tryRewrite(bin.X, bin.Y) {
			continue
		}
		tryRewrite(bin.Y, bin.X)
	}
	// Reset the run-local tables for the next run this round.
	for _, a := range run {
		rb.defIdx[a.Dst] = -1
		rb.redef[a.Dst] = false
	}
	if pres == nil {
		return nil
	}
	out := make([]ir.Stmt, 0, len(stmts)+inserted)
	for idx, s := range stmts {
		if pres[idx] != nil {
			out = append(out, pres[idx]...)
		}
		out = append(out, s)
	}
	return out
}

// resizeInt32 returns s resized to n entries, filling fresh slots with
// fill. Existing entries are preserved.
func resizeInt32(s []int32, n int, fill int32) []int32 {
	if cap(s) < n {
		grown := make([]int32, len(s), n+n/2+8)
		copy(grown, s)
		s = grown
	}
	for len(s) < n {
		s = append(s, fill)
	}
	return s
}

func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		grown := make([]bool, len(s), n+n/2+8)
		copy(grown, s)
		s = grown
	}
	for len(s) < n {
		s = append(s, false)
	}
	return s
}

// fuseShiftChains composes same-direction shift pairs: a single-use
// X = A >> a feeding Y = X >> b becomes Y = A >> (a+b) (and likewise for
// lookbacks). This is the "merged after the last AND" step of Figure 8's
// second iteration; it is exact on bounded streams only for same-sign
// shifts, so mixed directions are left alone.
func fuseShiftChains(p *ir.Program) bool {
	def := make([]*ir.Assign, p.NumVars)
	redef := make([]bool, p.NumVars)
	ir.WalkStmts(p.Stmts, func(s ir.Stmt) {
		if a, ok := s.(*ir.Assign); ok {
			if def[a.Dst] != nil {
				redef[a.Dst] = true
			}
			def[a.Dst] = a
		}
	})
	changed := false
	ir.WalkStmts(p.Stmts, func(s ir.Stmt) {
		a, ok := s.(*ir.Assign)
		if !ok {
			return
		}
		outer, ok := a.Expr.(ir.Shift)
		if !ok {
			return
		}
		innerDef := def[outer.Src]
		if innerDef == nil || redef[outer.Src] {
			return
		}
		inner, ok := innerDef.Expr.(ir.Shift)
		if !ok || redef[inner.Src] {
			return
		}
		if (inner.K > 0) != (outer.K > 0) {
			return // mixed directions do not compose exactly
		}
		// Retargeting is always sound: the inner shift stays for any
		// other users and dead-code elimination removes it if unused.
		a.Expr = ir.Shift{Src: inner.Src, K: inner.K + outer.K}
		changed = true
	})
	return changed
}

// EliminateDeadCode removes assignments whose results are never read
// (transitively), keeping outputs, conditions and guard sources alive.
// It returns the number of statements removed. The transitive closure is
// computed with a worklist over use counts — one pass regardless of dead-
// chain depth — instead of sweeping to a fixpoint.
func EliminateDeadCode(p *ir.Program) int {
	uses := make([]int32, p.NumVars)
	defs := make([]int32, p.NumVars)
	defOf := make([]*ir.Assign, p.NumVars)
	var buf [2]ir.VarID
	ir.WalkStmts(p.Stmts, func(s ir.Stmt) {
		switch x := s.(type) {
		case *ir.Assign:
			for _, v := range ir.OperandsInto(x.Expr, &buf) {
				uses[v]++
			}
			defs[x.Dst]++
			defOf[x.Dst] = x
		case *ir.If:
			uses[x.Cond]++
		case *ir.While:
			uses[x.Cond]++
		case *ir.Guard:
			uses[x.Cond]++
		}
	})
	for _, o := range p.Outputs {
		uses[o.Var]++
	}
	// Assignments in a body containing guards are pinned: removing them
	// would desynchronize guard skip counts.
	pinned := make(map[*ir.Assign]bool)
	var markPinned func(body []ir.Stmt)
	markPinned = func(body []ir.Stmt) {
		hasGuard := false
		for _, s := range body {
			if _, ok := s.(*ir.Guard); ok {
				hasGuard = true
				break
			}
		}
		for _, s := range body {
			switch x := s.(type) {
			case *ir.Assign:
				if hasGuard {
					pinned[x] = true
				}
			case *ir.If:
				markPinned(x.Body)
			case *ir.While:
				markPinned(x.Body)
			}
		}
	}
	markPinned(p.Stmts)

	// A variable assigned more than once (loop-carried) is kept
	// conservatively: its assignments may feed each other.
	removable := func(v ir.VarID) bool {
		return uses[v] == 0 && defs[v] == 1 && defOf[v] != nil && !pinned[defOf[v]]
	}
	dead := make(map[*ir.Assign]bool)
	var stack []ir.VarID
	for v := 0; v < p.NumVars; v++ {
		if removable(ir.VarID(v)) {
			stack = append(stack, ir.VarID(v))
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		a := defOf[v]
		if dead[a] {
			continue
		}
		dead[a] = true
		for _, u := range ir.OperandsInto(a.Expr, &buf) {
			uses[u]--
			if removable(u) {
				stack = append(stack, u)
			}
		}
	}
	if len(dead) == 0 {
		return 0
	}
	sweepDead(&p.Stmts, dead)
	return len(dead)
}

// sweepDead drops the dead assignments from every body. Pinned (guarded)
// assignments were never marked, so guard skip counts stay aligned.
func sweepDead(body *[]ir.Stmt, dead map[*ir.Assign]bool) {
	kept := (*body)[:0]
	for _, s := range *body {
		switch x := s.(type) {
		case *ir.Assign:
			if dead[x] {
				continue
			}
		case *ir.If:
			sweepDead(&x.Body, dead)
		case *ir.While:
			sweepDead(&x.Body, dead)
		}
		kept = append(kept, s)
	}
	*body = kept
}
