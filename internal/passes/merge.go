package passes

import "bitgen/internal/ir"

// MergeOptions control barrier merging.
type MergeOptions struct {
	// MergeSize is the maximum number of SHIFT instructions sharing one
	// barrier pair (the paper's tunable "merge size"; its effective value
	// is bounded by shared-memory capacity, which the engine enforces).
	// Zero means 8, the paper's default.
	MergeSize int
}

// MergeBarriers implements Section 5.3: it schedules SHIFT instructions as
// early as their operands allow, co-locates groups of up to MergeSize
// shifts, and records the groups in the program's BarrierSchedule so the
// interleaved executor charges one barrier pair per group. Shifts of the
// same source within a group share a single shared-memory copy
// (redundant-copy elimination). Statements are physically reordered; the
// transformation preserves semantics (dependencies are respected).
func MergeBarriers(p *ir.Program, opts MergeOptions) *ir.BarrierSchedule {
	if opts.MergeSize == 0 {
		opts.MergeSize = 8
	}
	sched := &ir.BarrierSchedule{MergeSize: opts.MergeSize}
	mergeBody(p, &p.Stmts, opts, sched)
	p.Barriers = sched
	return sched
}

func mergeBody(p *ir.Program, body *[]ir.Stmt, opts MergeOptions, sched *ir.BarrierSchedule) {
	for _, s := range *body {
		switch x := s.(type) {
		case *ir.If:
			mergeBody(p, &x.Body, opts, sched)
		case *ir.While:
			mergeBody(p, &x.Body, opts, sched)
		}
	}
	// Process maximal runs of assignments. Guards end a run: moving a
	// statement across a guard would change what the guard skips.
	start := 0
	for i := 0; i <= len(*body); i++ {
		isAssign := false
		if i < len(*body) {
			_, isAssign = (*body)[i].(*ir.Assign)
		}
		if isAssign {
			continue
		}
		if i > start {
			mergeRun(p, body, start, i, opts, sched)
		}
		start = i + 1
	}
}

// mergeRun schedules the shifts of one straight-line run as early as their
// operands allow (clustering them with shifts already placed there), then
// groups consecutive shifts up to the merge size, as in Figure 9.
//
// Placement is tracked with monotonically increasing sequence numbers and
// merged shifts are buffered per group leader, then spliced in one final
// rebuild. (Physically inserting into the middle of the order and fixing
// every later position up was quadratic in run length — the dominant
// compile cost on 10^5-statement ClamAV-class group programs.) The
// deferred splice is sound because a shift is flushed at its first use:
// everything already placed after the leader predates that use and so
// cannot read the shift's value.
func mergeRun(p *ir.Program, body *[]ir.Stmt, start, end int, opts MergeOptions, sched *ir.BarrierSchedule) {
	orig := make([]*ir.Assign, 0, end-start)
	for _, s := range (*body)[start:end] {
		orig = append(orig, s.(*ir.Assign))
	}
	// Reject runs with variable redefinition: reordering is only safe in
	// single-assignment runs (the lowering emits SSA-shaped straight-line
	// code except for loop-carried variables, which live in loop bodies).
	seenDef := make([]bool, p.NumVars)
	for _, a := range orig {
		if seenDef[a.Dst] {
			return
		}
		seenDef[a.Dst] = true
	}

	// Deferred scheduling: shifts are held back until their first use,
	// then either merged upward into the current barrier group (when
	// their operands were already available at the group's position) or
	// placed as a new group leader — the paper's greedy algorithm.
	// Shifts with no use inside the run (output-producing shifts, values
	// consumed by later segments) are NOT deferred: moving them to the
	// run's end would stretch zero paths across unrelated regexes'
	// code and poison ZBS validation.
	var buf [2]ir.VarID
	usedInRun := make([]bool, p.NumVars)
	for _, a := range orig {
		for _, v := range ir.OperandsInto(a.Expr, &buf) {
			usedInRun[v] = true
		}
	}
	newOrder := make([]*ir.Assign, 0, len(orig))
	members := make(map[*ir.Assign][]*ir.Assign) // group leader → merged shifts
	definedSeq := make([]int32, p.NumVars)       // -1 = external or not yet placed
	for i := range definedSeq {
		definedSeq[i] = -1
	}
	seq := int32(0)
	place := func(a *ir.Assign) {
		definedSeq[a.Dst] = seq
		seq++
	}
	pend := make([]*ir.Assign, p.NumVars) // deferred shifts by destination
	type group struct {
		leader    *ir.Assign
		leaderSeq int32
		size      int
	}
	var cur *group
	// operandsBefore reports whether every operand was placed strictly
	// before the group leader (external definitions count as before).
	// Sequence order matches position order relative to any leader:
	// merged members are placed after their leader both in time and in
	// the final splice.
	operandsBefore := func(a *ir.Assign, leaderSeq int32) bool {
		for _, v := range ir.OperandsInto(a.Expr, &buf) {
			if definedSeq[v] >= leaderSeq {
				return false
			}
		}
		return true
	}
	var flushShift func(a *ir.Assign)
	flushShift = func(a *ir.Assign) {
		pend[a.Dst] = nil
		for _, v := range ir.OperandsInto(a.Expr, &buf) {
			if dep := pend[v]; dep != nil {
				flushShift(dep)
			}
		}
		if cur != nil && cur.size < opts.MergeSize && operandsBefore(a, cur.leaderSeq) {
			members[cur.leader] = append(members[cur.leader], a)
			place(a)
			cur.size++
			return
		}
		newOrder = append(newOrder, a)
		place(a)
		cur = &group{leader: a, leaderSeq: definedSeq[a.Dst], size: 1}
	}
	for _, a := range orig {
		if _, isShift := a.Expr.(ir.Shift); isShift && usedInRun[a.Dst] {
			pend[a.Dst] = a
			continue
		}
		for _, v := range ir.OperandsInto(a.Expr, &buf) {
			if dep := pend[v]; dep != nil {
				flushShift(dep)
			}
		}
		if isShiftAssign(a) {
			// Un-deferred shift: schedule it here, still merging with the
			// current group when possible.
			flushShift(a)
			continue
		}
		newOrder = append(newOrder, a)
		place(a)
	}
	// Should not happen (every deferred shift has an in-run use), but
	// flush defensively in original order.
	for _, a := range orig {
		if pend[a.Dst] != nil && isShiftAssign(a) {
			flushShift(a)
		}
	}

	final := newOrder[:0:0]
	for _, a := range newOrder {
		final = append(final, a)
		final = append(final, members[a]...)
	}
	for i, a := range final {
		(*body)[start+i] = a
	}

	groupAdjacent(final, opts, sched)
}

func isShiftAssign(a *ir.Assign) bool {
	_, ok := a.Expr.(ir.Shift)
	return ok
}

// groupAdjacent records runs of adjacent shifts as barrier groups.
func groupAdjacent(newOrder []*ir.Assign, opts MergeOptions, sched *ir.BarrierSchedule) {
	// Group consecutive shifts, chunked by the merge size; count the
	// shared-memory copies saved by duplicate sources within a group.
	var cur []*ir.Assign
	flushGroup := func() {
		if len(cur) >= 2 {
			sched.Groups = append(sched.Groups, cur)
			srcs := make(map[ir.VarID]bool)
			for _, m := range cur {
				if sh, ok := m.Expr.(ir.Shift); ok {
					if srcs[sh.Src] {
						sched.DedupedCopies++
					}
					srcs[sh.Src] = true
				}
			}
		}
		cur = nil
	}
	for _, a := range newOrder {
		if _, isShift := a.Expr.(ir.Shift); isShift {
			if len(cur) == opts.MergeSize {
				flushGroup()
			}
			cur = append(cur, a)
			continue
		}
		flushGroup()
	}
	flushGroup()
}
