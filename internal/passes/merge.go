package passes

import "bitgen/internal/ir"

// MergeOptions control barrier merging.
type MergeOptions struct {
	// MergeSize is the maximum number of SHIFT instructions sharing one
	// barrier pair (the paper's tunable "merge size"; its effective value
	// is bounded by shared-memory capacity, which the engine enforces).
	// Zero means 8, the paper's default.
	MergeSize int
}

// MergeBarriers implements Section 5.3: it schedules SHIFT instructions as
// early as their operands allow, co-locates groups of up to MergeSize
// shifts, and records the groups in the program's BarrierSchedule so the
// interleaved executor charges one barrier pair per group. Shifts of the
// same source within a group share a single shared-memory copy
// (redundant-copy elimination). Statements are physically reordered; the
// transformation preserves semantics (dependencies are respected).
func MergeBarriers(p *ir.Program, opts MergeOptions) *ir.BarrierSchedule {
	if opts.MergeSize == 0 {
		opts.MergeSize = 8
	}
	sched := &ir.BarrierSchedule{MergeSize: opts.MergeSize}
	mergeBody(p, &p.Stmts, opts, sched)
	p.Barriers = sched
	return sched
}

func mergeBody(p *ir.Program, body *[]ir.Stmt, opts MergeOptions, sched *ir.BarrierSchedule) {
	for _, s := range *body {
		switch x := s.(type) {
		case *ir.If:
			mergeBody(p, &x.Body, opts, sched)
		case *ir.While:
			mergeBody(p, &x.Body, opts, sched)
		}
	}
	// Process maximal runs of assignments. Guards end a run: moving a
	// statement across a guard would change what the guard skips.
	start := 0
	for i := 0; i <= len(*body); i++ {
		isAssign := false
		if i < len(*body) {
			_, isAssign = (*body)[i].(*ir.Assign)
		}
		if isAssign {
			continue
		}
		if i > start {
			mergeRun(body, start, i, opts, sched)
		}
		start = i + 1
	}
}

// mergeRun schedules the shifts of one straight-line run as early as their
// operands allow (clustering them with shifts already placed there), then
// groups consecutive shifts up to the merge size, as in Figure 9.
func mergeRun(body *[]ir.Stmt, start, end int, opts MergeOptions, sched *ir.BarrierSchedule) {
	orig := make([]*ir.Assign, 0, end-start)
	for _, s := range (*body)[start:end] {
		orig = append(orig, s.(*ir.Assign))
	}
	// Reject runs with variable redefinition: reordering is only safe in
	// single-assignment runs (the lowering emits SSA-shaped straight-line
	// code except for loop-carried variables, which live in loop bodies).
	seen := make(map[ir.VarID]bool)
	for _, a := range orig {
		if seen[a.Dst] {
			return
		}
		seen[a.Dst] = true
	}

	// Deferred scheduling: shifts are held back until their first use,
	// then either merged upward into the current barrier group (when
	// their operands were already available at the group's position) or
	// placed as a new group leader — the paper's greedy algorithm.
	// Shifts with no use inside the run (output-producing shifts, values
	// consumed by later segments) are NOT deferred: moving them to the
	// run's end would stretch zero paths across unrelated regexes'
	// code and poison ZBS validation.
	usedInRun := make(map[ir.VarID]bool)
	for _, a := range orig {
		for _, v := range ir.Operands(a.Expr) {
			usedInRun[v] = true
		}
	}
	newOrder := make([]*ir.Assign, 0, len(orig))
	definedAt := make(map[ir.VarID]int) // index in newOrder
	pendingShift := make(map[ir.VarID]*ir.Assign)
	type group struct {
		leaderPos int
		lastPos   int
		size      int
	}
	var cur *group
	insertAt := func(pos int, a *ir.Assign) {
		newOrder = append(newOrder, nil)
		copy(newOrder[pos+1:], newOrder[pos:])
		newOrder[pos] = a
		for v, idx := range definedAt {
			if idx >= pos {
				definedAt[v] = idx + 1
			}
		}
		definedAt[a.Dst] = pos
	}
	var flushShift func(a *ir.Assign)
	flushShift = func(a *ir.Assign) {
		delete(pendingShift, a.Dst)
		for _, v := range ir.Operands(a.Expr) {
			if dep, ok := pendingShift[v]; ok {
				flushShift(dep)
			}
		}
		if cur != nil && cur.size < opts.MergeSize && operandsBefore(a, definedAt, cur.leaderPos) {
			insertAt(cur.lastPos+1, a)
			cur.lastPos++
			cur.size++
			return
		}
		newOrder = append(newOrder, a)
		definedAt[a.Dst] = len(newOrder) - 1
		cur = &group{leaderPos: len(newOrder) - 1, lastPos: len(newOrder) - 1, size: 1}
	}
	for _, a := range orig {
		if _, isShift := a.Expr.(ir.Shift); isShift && usedInRun[a.Dst] {
			pendingShift[a.Dst] = a
			continue
		}
		for _, v := range ir.Operands(a.Expr) {
			if dep, ok := pendingShift[v]; ok {
				flushShift(dep)
			}
		}
		if isShiftAssign(a) {
			// Un-deferred shift: schedule it here, still merging with the
			// current group when possible.
			flushShift(a)
			continue
		}
		newOrder = append(newOrder, a)
		definedAt[a.Dst] = len(newOrder) - 1
	}
	if len(pendingShift) > 0 {
		// Should not happen (every deferred shift has an in-run use), but
		// flush defensively in original order.
		for _, a := range orig {
			if _, still := pendingShift[a.Dst]; still && isShiftAssign(a) {
				flushShift(a)
			}
		}
	}

	for i, a := range newOrder {
		(*body)[start+i] = a
	}

	groupAdjacent(newOrder, opts, sched)
}

// operandsBefore reports whether every operand of a is defined strictly
// before position pos (external definitions count as position -1).
func operandsBefore(a *ir.Assign, definedAt map[ir.VarID]int, pos int) bool {
	for _, v := range ir.Operands(a.Expr) {
		if idx, ok := definedAt[v]; ok && idx >= pos {
			return false
		}
	}
	return true
}

func isShiftAssign(a *ir.Assign) bool {
	_, ok := a.Expr.(ir.Shift)
	return ok
}

// groupAdjacent records runs of adjacent shifts as barrier groups.
func groupAdjacent(newOrder []*ir.Assign, opts MergeOptions, sched *ir.BarrierSchedule) {
	// Group consecutive shifts, chunked by the merge size; count the
	// shared-memory copies saved by duplicate sources within a group.
	var cur []*ir.Assign
	flushGroup := func() {
		if len(cur) >= 2 {
			sched.Groups = append(sched.Groups, cur)
			srcs := make(map[ir.VarID]bool)
			for _, m := range cur {
				if sh, ok := m.Expr.(ir.Shift); ok {
					if srcs[sh.Src] {
						sched.DedupedCopies++
					}
					srcs[sh.Src] = true
				}
			}
		}
		cur = nil
	}
	for _, a := range newOrder {
		if _, isShift := a.Expr.(ir.Shift); isShift {
			if len(cur) == opts.MergeSize {
				flushGroup()
			}
			cur = append(cur, a)
			continue
		}
		flushGroup()
	}
	flushGroup()
}
