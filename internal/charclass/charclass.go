// Package charclass represents regular-expression character classes as
// 256-bit membership sets and compiles them into boolean expressions over
// the eight basis bitstreams.
//
// A character class matches a single byte. The Parabix lowering computes the
// match bitstream of a class from the transposed basis bits: for the literal
// 'a' (01100001) that is ¬b0 ∧ b1 ∧ b2 ∧ ¬b3 ∧ ¬b4 ∧ ¬b5 ∧ ¬b6 ∧ b7. For a
// multi-byte class the per-byte expressions are factored through a BDD-style
// recursive range decomposition so that common classes like [a-z] cost a
// handful of operations rather than 26 full byte tests.
package charclass

import (
	"fmt"
	"strings"
)

// Class is a set of byte values. The zero value is the empty class.
type Class struct {
	bits [4]uint64
}

// Empty returns the empty class.
func Empty() Class { return Class{} }

// Single returns the class containing exactly byte c.
func Single(c byte) Class {
	var cl Class
	cl.Add(c)
	return cl
}

// Range returns the class containing bytes lo..hi inclusive.
func Range(lo, hi byte) Class {
	var cl Class
	cl.AddRange(lo, hi)
	return cl
}

// Any returns the class of all 256 byte values.
func Any() Class {
	var cl Class
	for i := range cl.bits {
		cl.bits[i] = ^uint64(0)
	}
	return cl
}

// Dot returns the class for the regex '.' metacharacter: every byte except
// newline.
func Dot() Class {
	cl := Any()
	cl.Remove('\n')
	return cl
}

// Add inserts byte c.
func (cl *Class) Add(c byte) {
	cl.bits[c>>6] |= 1 << (c & 63)
}

// Remove deletes byte c.
func (cl *Class) Remove(c byte) {
	cl.bits[c>>6] &^= 1 << (c & 63)
}

// AddRange inserts bytes lo..hi inclusive. It panics if lo > hi.
func (cl *Class) AddRange(lo, hi byte) {
	if lo > hi {
		panic(fmt.Sprintf("charclass: invalid range %d-%d", lo, hi))
	}
	for c := int(lo); c <= int(hi); c++ {
		cl.Add(byte(c))
	}
}

// Contains reports whether byte c is in the class.
func (cl Class) Contains(c byte) bool {
	return cl.bits[c>>6]&(1<<(c&63)) != 0
}

// Negate returns the complement class.
func (cl Class) Negate() Class {
	var out Class
	for i := range cl.bits {
		out.bits[i] = ^cl.bits[i]
	}
	return out
}

// Union returns cl ∪ other.
func (cl Class) Union(other Class) Class {
	var out Class
	for i := range cl.bits {
		out.bits[i] = cl.bits[i] | other.bits[i]
	}
	return out
}

// Intersect returns cl ∩ other.
func (cl Class) Intersect(other Class) Class {
	var out Class
	for i := range cl.bits {
		out.bits[i] = cl.bits[i] & other.bits[i]
	}
	return out
}

// Equal reports whether two classes contain the same bytes.
func (cl Class) Equal(other Class) bool {
	return cl.bits == other.bits
}

// IsEmpty reports whether the class contains no bytes.
func (cl Class) IsEmpty() bool {
	return cl.bits == [4]uint64{}
}

// Size returns the number of bytes in the class.
func (cl Class) Size() int {
	n := 0
	for c := 0; c < 256; c++ {
		if cl.Contains(byte(c)) {
			n++
		}
	}
	return n
}

// Key returns a compact content address of the class: the 32 membership
// bytes hex-packed into a fixed-width string. Classes are equal exactly when
// their keys are equal, so the key orders and deduplicates shared
// character-class streams deterministically across engines.
func (cl Class) Key() string {
	var b [64]byte
	const hex = "0123456789abcdef"
	for i, w := range cl.bits {
		for j := 0; j < 8; j++ {
			v := byte(w >> (8 * j))
			b[i*16+j*2] = hex[v>>4]
			b[i*16+j*2+1] = hex[v&0xf]
		}
	}
	return string(b[:])
}

// FoldCase returns the class closed under ASCII case folding: if it contains
// a letter it also contains the other case.
func (cl Class) FoldCase() Class {
	out := cl
	for c := byte('a'); c <= 'z'; c++ {
		if cl.Contains(c) {
			out.Add(c - 'a' + 'A')
		}
	}
	for c := byte('A'); c <= 'Z'; c++ {
		if cl.Contains(c) {
			out.Add(c - 'A' + 'a')
		}
	}
	return out
}

// String renders the class in regex-ish notation for diagnostics.
func (cl Class) String() string {
	if cl.IsEmpty() {
		return "[]"
	}
	if cl.Equal(Any()) {
		return "[\\x00-\\xff]"
	}
	var b strings.Builder
	b.WriteByte('[')
	c := 0
	for c < 256 {
		if !cl.Contains(byte(c)) {
			c++
			continue
		}
		lo := c
		for c < 256 && cl.Contains(byte(c)) {
			c++
		}
		hi := c - 1
		writeByteRepr(&b, byte(lo))
		if hi > lo {
			if hi > lo+1 {
				b.WriteByte('-')
			}
			writeByteRepr(&b, byte(hi))
		}
	}
	b.WriteByte(']')
	return b.String()
}

func writeByteRepr(b *strings.Builder, c byte) {
	switch {
	case c == '\\' || c == ']' || c == '-' || c == '^':
		fmt.Fprintf(b, "\\%c", c)
	case c >= 0x20 && c < 0x7f:
		b.WriteByte(c)
	case c == '\n':
		b.WriteString("\\n")
	case c == '\t':
		b.WriteString("\\t")
	case c == '\r':
		b.WriteString("\\r")
	default:
		fmt.Fprintf(b, "\\x%02x", c)
	}
}

// Common named classes used by the parser for escapes like \d, \w, \s.
var (
	Digit = Range('0', '9')
	Word  = func() Class {
		c := Range('a', 'z')
		c = c.Union(Range('A', 'Z'))
		c = c.Union(Digit)
		c.Add('_')
		return c
	}()
	Space = func() Class {
		var c Class
		for _, b := range []byte{' ', '\t', '\n', '\r', '\v', '\f'} {
			c.Add(b)
		}
		return c
	}()
)
