package charclass

import (
	"fmt"

	"bitgen/internal/bitstream"
	"bitgen/internal/transpose"
)

// Expr is a boolean expression over the eight basis bitstreams. Compiling a
// character class yields an Expr; the lowering stage turns it into bitstream
// instructions.
type Expr interface {
	isExpr()
	String() string
}

// True matches every position.
type True struct{}

// False matches no position.
type False struct{}

// Basis is the j-th basis bitstream (0 = MSB of each byte).
type Basis struct{ Bit int }

// Not negates a sub-expression.
type Not struct{ X Expr }

// And conjoins two sub-expressions.
type And struct{ X, Y Expr }

// Or disjoins two sub-expressions.
type Or struct{ X, Y Expr }

func (True) isExpr()  {}
func (False) isExpr() {}
func (Basis) isExpr() {}
func (Not) isExpr()   {}
func (And) isExpr()   {}
func (Or) isExpr()    {}

func (True) String() string    { return "1" }
func (False) String() string   { return "0" }
func (b Basis) String() string { return fmt.Sprintf("b%d", b.Bit) }
func (n Not) String() string   { return "~" + n.X.String() }
func (a And) String() string   { return "(" + a.X.String() + " & " + a.Y.String() + ")" }
func (o Or) String() string    { return "(" + o.X.String() + " | " + o.Y.String() + ")" }

// Compile lowers a character class to a boolean expression over basis bits
// using recursive cofactor decomposition on the byte's bits, MSB first
// (a reduced-ordered-BDD construction specialised to 8 variables). The
// result is minimal in the BDD sense: equal cofactors are shared and
// constant branches fold away.
func Compile(cl Class) Expr {
	return compileSub(cl, 0, 0)
}

// compileSub compiles the sub-class of bytes whose top `depth` bits equal
// `prefix`, deciding on bit `depth` next.
func compileSub(cl Class, depth int, prefix int) Expr {
	if isConstFalse(cl, depth, prefix) {
		return False{}
	}
	if isConstTrue(cl, depth, prefix) {
		return True{}
	}
	// depth < 8 here: a non-constant class always has a deciding bit left.
	lo := compileSub(cl, depth+1, prefix<<1)   // bit `depth` == 0
	hi := compileSub(cl, depth+1, prefix<<1|1) // bit `depth` == 1
	if exprEqual(lo, hi) {
		return lo
	}
	b := Expr(Basis{Bit: depth})
	switch {
	case isTrue(hi) && isFalse(lo):
		return b
	case isFalse(hi) && isTrue(lo):
		return Not{b}
	case isFalse(lo):
		return And{b, hi}
	case isFalse(hi):
		return And{Not{b}, lo}
	case isTrue(lo):
		return Or{Not{b}, hi}
	case isTrue(hi):
		return Or{b, lo}
	default:
		return Or{And{b, hi}, And{Not{b}, lo}}
	}
}

func isTrue(e Expr) bool  { _, ok := e.(True); return ok }
func isFalse(e Expr) bool { _, ok := e.(False); return ok }

// exprEqual is a structural equality check, sufficient here because
// compileSub is deterministic so equal cofactors produce identical trees.
func exprEqual(a, b Expr) bool {
	switch x := a.(type) {
	case True:
		return isTrue(b)
	case False:
		return isFalse(b)
	case Basis:
		y, ok := b.(Basis)
		return ok && x.Bit == y.Bit
	case Not:
		y, ok := b.(Not)
		return ok && exprEqual(x.X, y.X)
	case And:
		y, ok := b.(And)
		return ok && exprEqual(x.X, y.X) && exprEqual(x.Y, y.Y)
	case Or:
		y, ok := b.(Or)
		return ok && exprEqual(x.X, y.X) && exprEqual(x.Y, y.Y)
	}
	return false
}

// isConstFalse reports whether no byte with the given bit prefix is in cl.
func isConstFalse(cl Class, depth, prefix int) bool {
	width := 8 - depth
	base := prefix << uint(width)
	for i := 0; i < 1<<uint(width); i++ {
		if cl.Contains(byte(base | i)) {
			return false
		}
	}
	return true
}

// isConstTrue reports whether every byte with the given bit prefix is in cl.
func isConstTrue(cl Class, depth, prefix int) bool {
	width := 8 - depth
	base := prefix << uint(width)
	for i := 0; i < 1<<uint(width); i++ {
		if !cl.Contains(byte(base | i)) {
			return false
		}
	}
	return true
}

// OpCount returns the number of bitwise operations (and/or/not) the
// expression costs when lowered, used for workload statistics.
func OpCount(e Expr) (and, or, not int) {
	switch x := e.(type) {
	case Not:
		a, o, n := OpCount(x.X)
		return a, o, n + 1
	case And:
		a1, o1, n1 := OpCount(x.X)
		a2, o2, n2 := OpCount(x.Y)
		return a1 + a2 + 1, o1 + o2, n1 + n2
	case Or:
		a1, o1, n1 := OpCount(x.X)
		a2, o2, n2 := OpCount(x.Y)
		return a1 + a2, o1 + o2 + 1, n1 + n2
	}
	return 0, 0, 0
}

// Eval evaluates the expression directly over a transposed basis, producing
// the match bitstream of the class. It is the reference semantics used by
// tests and by the CPU (icgrep-analog) path.
func Eval(e Expr, basis *transpose.Basis) *bitstream.Stream {
	switch x := e.(type) {
	case True:
		return bitstream.NewOnes(basis.N)
	case False:
		return bitstream.New(basis.N)
	case Basis:
		return basis.Bit(x.Bit).Clone()
	case Not:
		return Eval(x.X, basis).Not()
	case And:
		return Eval(x.X, basis).And(Eval(x.Y, basis))
	case Or:
		return Eval(x.X, basis).Or(Eval(x.Y, basis))
	}
	panic(fmt.Sprintf("charclass: unknown expr %T", e))
}

// MatchStream computes the match bitstream of a class over an input by
// compiling and evaluating its basis expression. Tests compare it against
// the byte-at-a-time definition.
func MatchStream(cl Class, basis *transpose.Basis) *bitstream.Stream {
	return Eval(Compile(cl), basis)
}
