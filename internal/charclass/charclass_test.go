package charclass

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bitgen/internal/transpose"
)

func TestBasicSetOps(t *testing.T) {
	cl := Single('a')
	if !cl.Contains('a') || cl.Contains('b') {
		t.Fatal("Single misbehaves")
	}
	if got := cl.Size(); got != 1 {
		t.Fatalf("Size = %d", got)
	}
	r := Range('a', 'z')
	if r.Size() != 26 || !r.Contains('m') || r.Contains('A') {
		t.Fatal("Range misbehaves")
	}
	u := cl.Union(Single('b'))
	if u.Size() != 2 {
		t.Fatal("Union misbehaves")
	}
	i := r.Intersect(Range('m', 'p'))
	if i.Size() != 4 {
		t.Fatal("Intersect misbehaves")
	}
	n := r.Negate()
	if n.Contains('a') || !n.Contains('A') || n.Size() != 230 {
		t.Fatal("Negate misbehaves")
	}
}

func TestDotExcludesNewline(t *testing.T) {
	d := Dot()
	if d.Contains('\n') {
		t.Fatal("Dot contains newline")
	}
	if d.Size() != 255 {
		t.Fatalf("Dot size = %d, want 255", d.Size())
	}
}

func TestFoldCase(t *testing.T) {
	f := Single('a').FoldCase()
	if !f.Contains('A') || !f.Contains('a') || f.Size() != 2 {
		t.Fatal("FoldCase misbehaves")
	}
	digits := Digit.FoldCase()
	if !digits.Equal(Digit) {
		t.Fatal("FoldCase changed a caseless class")
	}
}

func TestNamedClasses(t *testing.T) {
	if Digit.Size() != 10 {
		t.Fatalf("Digit size = %d", Digit.Size())
	}
	if Word.Size() != 63 {
		t.Fatalf("Word size = %d", Word.Size())
	}
	if !Word.Contains('_') || Word.Contains('-') {
		t.Fatal("Word membership wrong")
	}
	if Space.Size() != 6 || !Space.Contains('\t') {
		t.Fatal("Space membership wrong")
	}
}

func TestStringRendering(t *testing.T) {
	if got := Single('a').String(); got != "[a]" {
		t.Errorf("Single('a').String() = %q", got)
	}
	if got := Range('a', 'c').String(); got != "[a-c]" {
		t.Errorf("Range.String() = %q", got)
	}
	if got := Empty().String(); got != "[]" {
		t.Errorf("Empty.String() = %q", got)
	}
}

func TestCompileSingleLetterShape(t *testing.T) {
	// The paper's example: 'a' = 01100001 should compile to a conjunction
	// touching all eight basis bits (7 ANDs after BDD folding).
	e := Compile(Single('a'))
	and, or, not := OpCount(e)
	if and != 7 || or != 0 {
		t.Errorf("Single('a') compiled to %d ands, %d ors (want 7, 0): %s", and, or, e)
	}
	if not == 0 {
		t.Errorf("expected negated basis bits in %s", e)
	}
}

func TestCompileRangeIsCompact(t *testing.T) {
	// [a-z] must compile to far fewer ops than 26 byte tests (26*7=182).
	e := Compile(Range('a', 'z'))
	and, or, not := OpCount(e)
	total := and + or + not
	if total > 25 {
		t.Errorf("[a-z] compiled to %d ops (%s), expected a compact decomposition", total, e)
	}
}

func TestCompileConstants(t *testing.T) {
	if _, ok := Compile(Empty()).(False); !ok {
		t.Error("empty class must compile to False")
	}
	if _, ok := Compile(Any()).(True); !ok {
		t.Error("universal class must compile to True")
	}
}

// referenceMatch computes the match stream byte-at-a-time.
func referenceMatch(cl Class, text []byte) []bool {
	out := make([]bool, len(text))
	for i, c := range text {
		out[i] = cl.Contains(c)
	}
	return out
}

func checkClassOnText(t *testing.T, cl Class, text []byte) {
	t.Helper()
	basis := transpose.Transpose(text)
	got := MatchStream(cl, basis)
	want := referenceMatch(cl, text)
	for i := range want {
		if got.Test(i) != want[i] {
			t.Fatalf("class %v text %q: position %d = %v, want %v",
				cl, text, i, got.Test(i), want[i])
		}
	}
}

func TestMatchStreamAgainstReference(t *testing.T) {
	text := []byte("Hello, World! 0123\n\tabcXYZ\x00\xff\x80")
	for _, cl := range []Class{
		Single('l'), Range('a', 'z'), Digit, Word, Space, Dot(),
		Digit.Negate(), Range('A', 'Z').Union(Single('!')),
	} {
		checkClassOnText(t, cl, text)
	}
}

func TestQuickRandomClasses(t *testing.T) {
	f := func(seed int64, text []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		var cl Class
		for k := 0; k < 1+rng.Intn(6); k++ {
			lo := byte(rng.Intn(256))
			hi := byte(min(255, int(lo)+rng.Intn(64)))
			cl.AddRange(lo, hi)
		}
		if rng.Intn(3) == 0 {
			cl = cl.Negate()
		}
		basis := transpose.Transpose(text)
		got := MatchStream(cl, basis)
		for i, c := range text {
			if got.Test(i) != cl.Contains(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompileIsExactOverAllBytes(t *testing.T) {
	// Evaluate the compiled expression on the text containing every byte
	// value once: the compiled expression must agree with Contains exactly.
	all := make([]byte, 256)
	for i := range all {
		all[i] = byte(i)
	}
	basis := transpose.Transpose(all)
	f := func(w0, w1, w2, w3 uint64) bool {
		cl := Class{bits: [4]uint64{w0, w1, w2, w3}}
		got := MatchStream(cl, basis)
		for i := 0; i < 256; i++ {
			if got.Test(i) != cl.Contains(byte(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
