// Package engine orchestrates multi-CTA BitGen execution: it partitions
// regexes into CTA groups balanced by total character length (Section 7),
// lowers each group to a bitstream program, applies the configured
// optimization passes, executes every group on the simulated GPU, and
// aggregates counters into a modeled kernel time and throughput.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"bitgen/internal/arena"
	"bitgen/internal/bgerr"
	"bitgen/internal/bitstream"
	"bitgen/internal/charclass"
	"bitgen/internal/faultinject"
	"bitgen/internal/gpusim"
	"bitgen/internal/ir"
	"bitgen/internal/kernel"
	"bitgen/internal/lower"
	"bitgen/internal/obs"
	"bitgen/internal/passes"
	"bitgen/internal/transpose"
)

// DefaultMaxWhileIterations is the real default cap on global while-loop
// fixpoint iterations. It is far above anything a legitimate pattern needs
// (iteration counts track match lengths, not input sizes) while still
// bounding a pathological or adversarial spin. Configure -1 for the
// kernel's adaptive 2n+16 bound, or any positive value explicitly.
const DefaultMaxWhileIterations = 1 << 20

// Config selects the device, launch geometry and optimization set.
type Config struct {
	// Device is the GPU profile for time modeling; zero-value means
	// RTX 3090 (the paper's primary platform).
	Device gpusim.Device
	// Grid is the launch geometry; zero-value means the paper's default
	// (256 CTAs, 512 threads, 32-bit units).
	Grid gpusim.Grid
	// Mode is the execution model (the Table 3 ablation ladder).
	Mode kernel.Mode
	// ShiftRebalancing enables the Section 5 pass.
	ShiftRebalancing bool
	// MergeSize caps barrier merging; 0 disables merging (each shift
	// pays its own barrier pair). The effective value is clamped by the
	// device's shared-memory capacity.
	MergeSize int
	// ZeroBlockSkipping enables Section 6 guards.
	ZeroBlockSkipping bool
	// IntervalSize is ZBS's guard spacing; 0 means 8.
	IntervalSize int
	// KeepOutputs retains full match streams in the result (tests and
	// small inputs); otherwise only match counts are kept.
	KeepOutputs bool
	// TransposeShare scales the transpose kernel's charged traffic; the
	// reduced-scale experiment methodology runs k% of the workload on a
	// k%-scaled device, so it charges k% of the (once-per-input)
	// transpose. Zero means 1 (full charge).
	TransposeShare float64
	// MaxWhileIterations caps global fixpoint loops. Zero selects
	// DefaultMaxWhileIterations; -1 selects the kernel's adaptive 2n+16
	// bound. Hitting the cap returns an error satisfying
	// errors.Is(err, bgerr.ErrLimit).
	MaxWhileIterations int
	// MaxProgramInstructions refuses compilation when any group's lowered
	// program exceeds this instruction count (0 = unlimited).
	MaxProgramInstructions int
	// MemoryBudgetBytes refuses a run whose materialized intermediate
	// bitstreams exceed this budget — the enforceable form of
	// Result.ExceedsDeviceMemory (0 = report-only, no enforcement).
	MemoryBudgetBytes int64
	// NoStateCompression keeps compiled groups in boxed pointer-IR form and
	// disables cross-group character-class sharing — the uncompressed
	// baseline. By default groups are stored packed (a few bytes per
	// instruction) and classes used by several CTA groups are computed once
	// per scan as shared extended basis streams.
	NoStateCompression bool
	// Inject is an optional fault injector (tests only). Nil never fires.
	Inject *faultinject.Injector
	// Obs, when non-nil, records compile and launch spans, aggregates
	// kernel counters into the metrics registry, and attaches a per-scan
	// Profile to every Result. Nil (the default) compiles to pointer
	// checks on the instrumented paths.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.Device.Name == "" {
		c.Device = gpusim.RTX3090
	}
	if c.Grid == (gpusim.Grid{}) {
		c.Grid = gpusim.DefaultGrid()
	}
	if c.IntervalSize == 0 {
		c.IntervalSize = 8
	}
	switch {
	case c.MaxWhileIterations == 0:
		c.MaxWhileIterations = DefaultMaxWhileIterations
	case c.MaxWhileIterations < 0:
		c.MaxWhileIterations = 0 // kernel maps 0 to its adaptive 2n+16
	}
	return c
}

// BitGenDefault returns the full-optimization configuration (the paper's
// "BitGen" scheme with default parameters: merge size 8, interval size 8).
func BitGenDefault() Config {
	return Config{
		Mode:              kernel.ModeDTM,
		ShiftRebalancing:  true,
		MergeSize:         8,
		ZeroBlockSkipping: true,
		IntervalSize:      8,
	}
}

// Group is one CTA's compiled workload. Exactly one of Program and Packed
// is set: Program is the boxed pointer-IR form (the uncompressed baseline),
// Packed the compact byte form (the default; ~10× smaller resident). Use
// Prog to materialize and EncodedProgram for the canonical bytes.
type Group struct {
	// Program is the transformed bitstream program; nil in packed mode.
	Program *ir.Program
	// Packed is the program's packed byte form; nil in boxed mode.
	Packed []byte
	// Outputs mirrors the program's output table so match fan-out and rank
	// tables never pay a decode.
	Outputs []ir.Output
	// Names lists the regexes assigned to this group.
	Names []string
	// Chars is the total pattern character length (the balancing key).
	Chars int
}

// Prog returns the group's program, decoding the packed form on demand.
// Each call in packed mode materializes a fresh program, so callers own the
// result; decode cannot fail for bytes the engine packed itself.
func (g *Group) Prog() *ir.Program {
	if g.Program != nil {
		return g.Program
	}
	return ir.MustDecodeProgram(g.Packed)
}

// EncodedProgram returns the canonical packed bytes of the group's program
// (the content unit snapshots persist and the serve layer interns).
func (g *Group) EncodedProgram() []byte {
	if g.Packed != nil {
		return g.Packed
	}
	return ir.EncodeProgram(g.Program)
}

// SizeBytes measures the group's resident state: the stored program form
// plus names and the output table.
func (g *Group) SizeBytes() int64 {
	var sz int64
	if g.Packed != nil {
		sz += int64(len(g.Packed)) + 24
	}
	if g.Program != nil {
		sz += ir.ProgramSizeBytes(g.Program)
	}
	for _, n := range g.Names {
		sz += 16 + int64(len(n))
	}
	for _, o := range g.Outputs {
		sz += 32 + int64(len(o.Name))
	}
	return sz
}

// Clone deep-copies the group so callers can hold it without aliasing the
// engine's internal state.
func (g *Group) Clone() Group {
	ng := Group{
		Names:   append([]string(nil), g.Names...),
		Outputs: append([]ir.Output(nil), g.Outputs...),
		Chars:   g.Chars,
	}
	if g.Packed != nil {
		ng.Packed = append([]byte(nil), g.Packed...)
	}
	if g.Program != nil {
		ng.Program = g.Program.Clone()
	}
	return ng
}

// Engine is a compiled multi-regex matcher.
type Engine struct {
	cfg    Config
	groups []Group
	// shared, when non-nil, computes the match streams of character classes
	// used by several CTA groups; runs interpret it once per scan chunk
	// over the raw basis and bind its outputs as extended basis streams.
	shared *ir.Program
	// matchNames lists every output name across groups in ascending order;
	// a name's index is its rank, the integer stand-in for byte-wise string
	// comparison on the streaming hot path.
	matchNames []string
	// outRanks maps [group][output index] to the output's rank.
	outRanks [][]int32
	// PassStats aggregates what the optimization passes did.
	PassStats PassStats
	// runPool recycles one-shot Run state (transpose basis + per-group
	// kernel sessions) across calls; runArena backs those sessions so
	// their retained buffers never imbalance arena.Default. See runner.go.
	runPool  *sync.Pool
	runArena *arena.Arena
}

// initMatchRanks precomputes the rank tables ScanSession's match merge
// uses. Output names are unique across groups (the public layer dedups
// patterns before compiling), so rank order is exactly (End, Pattern)
// string order without any per-match string comparison.
func (e *Engine) initMatchRanks() {
	for _, g := range e.groups {
		for _, o := range g.Outputs {
			e.matchNames = append(e.matchNames, o.Name)
		}
	}
	sort.Strings(e.matchNames)
	rankOf := make(map[string]int32, len(e.matchNames))
	for i, n := range e.matchNames {
		rankOf[n] = int32(i)
	}
	e.outRanks = make([][]int32, len(e.groups))
	for gi, g := range e.groups {
		ranks := make([]int32, len(g.Outputs))
		for oi, o := range g.Outputs {
			ranks[oi] = rankOf[o.Name]
		}
		e.outRanks[gi] = ranks
	}
}

// MatchNames returns every output name in rank order: ScanMatch.Rank
// indexes this slice. Callers must not mutate it.
func (e *Engine) MatchNames() []string { return append([]string(nil), e.matchNames...) }

// PassStats aggregates compile-time pass effects across groups.
type PassStats struct {
	Rewrites       int
	MergedGroups   int
	DedupedCopies  int
	ZeroPaths      int
	GuardsInserted int
}

// Result is the outcome of one Run.
type Result struct {
	// Outputs holds full match streams when Config.KeepOutputs is set.
	Outputs map[string]*bitstream.Stream
	// MatchCounts maps each regex to its number of match end positions.
	MatchCounts map[string]int
	// TotalMatches sums MatchCounts.
	TotalMatches int64
	// Stats holds the per-CTA counters of the launch.
	Stats gpusim.KernelStats
	// Time is the modeled kernel time breakdown.
	Time gpusim.TimeBreakdown
	// ThroughputMBs is input MB (1e6 bytes) per modeled second.
	ThroughputMBs float64
	// Fallbacks counts overlap-limit fallbacks across CTAs.
	Fallbacks int
	// IntermediateFootprintBytes is the device memory the run's
	// materialized intermediate bitstreams would occupy across all CTAs.
	IntermediateFootprintBytes int64
	// ExceedsDeviceMemory flags configurations whose intermediates do not
	// fit the device — Section 3.2's reason for excluding sequential
	// execution from the paper's baseline comparison.
	ExceedsDeviceMemory bool
	// Profile joins the cost model with the per-kernel counters; non-nil
	// only when Config.Obs is set.
	Profile *gpusim.Profile
}

// Compile lowers and optimizes a regex set under the configuration.
func Compile(regexes []lower.Regex, cfg Config) (*Engine, error) {
	return CompileContext(context.Background(), regexes, cfg)
}

// CompileContext is Compile honoring a context (checked between CTA
// groups) and containing compiler panics: an invariant violation anywhere
// in the lower/passes pipeline surfaces as a *bgerr.InternalError naming
// the group's patterns instead of crashing the process.
func CompileContext(ctx context.Context, regexes []lower.Regex, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Grid.Validate(); err != nil {
		return nil, err
	}
	if len(regexes) == 0 {
		return nil, fmt.Errorf("engine: no regexes")
	}
	start := time.Now()
	e := &Engine{cfg: cfg}
	parts := partition(regexes, cfg.Grid.CTAs)
	sharedCC, err := e.initShared(parts)
	if err != nil {
		return nil, err
	}
	for gi, part := range parts {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, bgerr.Canceled(err)
			}
		}
		names := make([]string, len(part.regexes))
		for i, r := range part.regexes {
			names[i] = r.Name
		}
		prog, err := compileGroup(part.regexes, names, gi, cfg, &e.PassStats, sharedCC, e.extBits())
		if err != nil {
			return nil, err
		}
		g := Group{Names: names, Chars: part.chars, Outputs: prog.Outputs}
		if cfg.NoStateCompression {
			g.Program = prog
		} else {
			// Packed mode: the compact byte form is the resident state; the
			// boxed program becomes garbage once sessions decode their own.
			g.Packed = ir.EncodeProgram(prog)
		}
		e.groups = append(e.groups, g)
	}
	e.initMatchRanks()
	e.initRunPool()
	if cfg.Obs.Enabled() {
		reg := cfg.Obs.Reg()
		reg.Histogram(obs.MCompileSeconds, obs.HCompileSeconds, obs.CompileSecondsBuckets).
			Observe(time.Since(start).Seconds())
		reg.Histogram(obs.MEngineResidentBytes, obs.HEngineResidentBytes, obs.ResidentBytesBuckets).
			Observe(float64(e.ResidentBytes()))
	}
	return e, nil
}

// maxSharedClasses caps the extended basis streams per engine: each shared
// class costs one materialized bitstream per scan chunk, so sharing is
// bounded to the classes that repay it most.
const maxSharedClasses = 256

// initShared selects the character classes worth computing once per scan —
// those expanded by at least two CTA groups — in deterministic first-use
// order, and builds the shared program producing their match streams.
// Single-group engines and the uncompressed baseline share nothing.
func (e *Engine) initShared(parts []part) (map[charclass.Class]int, error) {
	if e.cfg.NoStateCompression || len(parts) < 2 {
		return nil, nil
	}
	counts := make(map[charclass.Class]int)
	var order []charclass.Class
	for _, p := range parts {
		for _, cl := range lower.Classes(p.regexes) {
			if counts[cl] == 0 {
				order = append(order, cl)
			}
			counts[cl]++
		}
	}
	var classes []charclass.Class
	for _, cl := range order {
		if counts[cl] >= 2 {
			classes = append(classes, cl)
			if len(classes) == maxSharedClasses {
				break
			}
		}
	}
	if len(classes) == 0 {
		return nil, nil
	}
	prog, err := lower.SharedProgram(classes)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e.shared = prog
	slots := make(map[charclass.Class]int, len(classes))
	for i, cl := range classes {
		slots[cl] = i
	}
	return slots, nil
}

// extBits is the number of extended basis streams the engine binds per scan.
func (e *Engine) extBits() int {
	if e.shared == nil {
		return 0
	}
	return len(e.shared.Outputs)
}

// bindShared interprets the shared-class program over the freshly transposed
// raw basis and binds its outputs as extended basis streams. No-op without
// shared classes.
func (e *Engine) bindShared(basis *transpose.Basis) error {
	if e.shared == nil {
		return nil
	}
	res, err := ir.Interpret(e.shared, basis, ir.InterpOptions{})
	if err != nil {
		return fmt.Errorf("engine: shared-class streams: %w", err)
	}
	n := len(e.shared.Outputs)
	if cap(basis.Ext) < n {
		basis.Ext = make([]*bitstream.Stream, n)
	}
	basis.Ext = basis.Ext[:n]
	for i, o := range e.shared.Outputs {
		basis.Ext[i] = res.Outputs[o.Name]
	}
	return nil
}

// Shared returns a copy of the shared-class program, or nil when the engine
// shares no classes (snapshots persist it; the copy keeps internal state
// unaliased).
func (e *Engine) Shared() *ir.Program {
	if e.shared == nil {
		return nil
	}
	return e.shared.Clone()
}

// ResidentBytes measures the engine's durable compiled state: every group's
// stored program form, names and output tables, the shared-class program,
// and the rank tables. Transient scan state (kernel sessions, pooled
// runners, arenas) is excluded — it exists only while scans run.
func (e *Engine) ResidentBytes() int64 {
	var sz int64 = 128
	for i := range e.groups {
		sz += e.groups[i].SizeBytes()
	}
	sz += ir.ProgramSizeBytes(e.shared)
	for _, n := range e.matchNames {
		sz += 16 + int64(len(n))
	}
	for _, r := range e.outRanks {
		sz += 24 + 4*int64(len(r))
	}
	return sz
}

// PackedBlocks returns the packed program bytes of every compressed group,
// the content units a cross-engine store deduplicates. Boxed-mode groups
// contribute nothing (their state is not content-addressed).
func (e *Engine) PackedBlocks() [][]byte {
	var out [][]byte
	for i := range e.groups {
		if e.groups[i].Packed != nil {
			out = append(out, e.groups[i].Packed)
		}
	}
	return out
}

// RebindPackedBlocks replaces each compressed group's packed bytes with the
// canonical slice canon returns for it, letting engines with identical
// compiled groups share one backing array. canon must return bytes equal to
// its argument; it is called once per packed group in order. The serve
// layer calls this before publishing a newly built engine.
func (e *Engine) RebindPackedBlocks(canon func([]byte) []byte) {
	for i := range e.groups {
		if e.groups[i].Packed != nil {
			e.groups[i].Packed = canon(e.groups[i].Packed)
		}
	}
}

// Restore reconstructs an Engine from previously compiled groups — the
// snapshot-load path. No lowering or passes run; the groups carry their
// already-transformed programs (boxed or packed). Every program is
// re-validated so a decoded snapshot that passed checksums but violates IR
// invariants is still refused before it can execute, and each group is
// normalized to the configuration's storage mode. shared, when non-nil, is
// the engine's shared-class program; groups whose programs read extended
// basis bits require it.
func Restore(cfg Config, groups []Group, shared *ir.Program, ps PassStats) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Grid.Validate(); err != nil {
		return nil, err
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("engine: no groups")
	}
	sharedOutputs := 0
	if shared != nil {
		if err := ir.Validate(shared); err != nil {
			return nil, fmt.Errorf("engine: restored shared program invalid: %w", err)
		}
		sharedOutputs = len(shared.Outputs)
	}
	for i := range groups {
		g := &groups[i]
		if g.Program == nil && g.Packed == nil {
			return nil, fmt.Errorf("engine: group %d has no program", i)
		}
		prog := g.Program
		if prog == nil {
			p, err := ir.DecodeProgram(g.Packed)
			if err != nil {
				return nil, fmt.Errorf("engine: restored group %d: %w", i, err)
			}
			prog = p
		}
		if err := ir.Validate(prog); err != nil {
			return nil, fmt.Errorf("engine: restored group %d invalid: %w", i, err)
		}
		if prog.ExtBits > sharedOutputs {
			return nil, fmt.Errorf("engine: restored group %d reads %d shared streams, shared program provides %d",
				i, prog.ExtBits, sharedOutputs)
		}
		g.Outputs = prog.Outputs
		// Normalize to the configured storage mode regardless of how the
		// snapshot shipped the group.
		if cfg.NoStateCompression {
			g.Program, g.Packed = prog, nil
		} else if g.Packed == nil {
			g.Program, g.Packed = nil, ir.EncodeProgram(prog)
		} else {
			g.Program = nil
		}
	}
	e := &Engine{cfg: cfg, groups: groups, shared: shared, PassStats: ps}
	e.initMatchRanks()
	e.initRunPool()
	return e, nil
}

// compileGroup lowers and optimizes one CTA group's regexes, converting
// any panic in the pipeline into a typed internal error.
func compileGroup(regexes []lower.Regex, names []string, gi int, cfg Config, ps *PassStats,
	sharedCC map[charclass.Class]int, extBits int) (prog *ir.Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			prog = nil
			err = &bgerr.InternalError{
				Op: "compile", Group: gi, Patterns: names,
				Value: r, Stack: debug.Stack(),
			}
		}
	}()
	gspan := cfg.Obs.Span("compile", "compile-group", 0).
		Arg("group", gi).Arg("patterns", len(names))
	defer gspan.End()
	prog, err = lower.Group(regexes, lower.Options{Obs: cfg.Obs, SharedCC: sharedCC, SharedExtBits: extBits})
	if err != nil {
		return nil, err
	}
	if n := ir.CollectStats(prog).Total(); cfg.MaxProgramInstructions > 0 && n > cfg.MaxProgramInstructions {
		return nil, fmt.Errorf("engine: group %d: %w", gi,
			&bgerr.LimitError{Limit: "program-instructions", Value: int64(n), Max: int64(cfg.MaxProgramInstructions)})
	}
	pspan := cfg.Obs.Span("compile", "passes", 0).Arg("group", gi)
	if cfg.ShiftRebalancing {
		r := passes.Rebalance(prog, passes.RebalanceOptions{})
		ps.Rewrites += r.Rewrites
		pspan.Arg("rewrites", r.Rewrites)
	}
	if cfg.MergeSize > 0 {
		ms := clampMergeSize(cfg)
		sched := passes.MergeBarriers(prog, passes.MergeOptions{MergeSize: ms})
		ps.MergedGroups += len(sched.Groups)
		ps.DedupedCopies += sched.DedupedCopies
		pspan.Arg("merged_groups", len(sched.Groups))
	}
	if cfg.ZeroBlockSkipping {
		z := passes.InsertGuards(prog, passes.ZBSOptions{Interval: cfg.IntervalSize})
		ps.ZeroPaths += z.PathsFound
		ps.GuardsInserted += z.GuardsInserted
		pspan.Arg("guards_inserted", z.GuardsInserted)
	}
	pspan.End()
	if err := ir.Validate(prog); err != nil {
		return nil, fmt.Errorf("engine: pass pipeline produced invalid program: %w", err)
	}
	return prog, nil
}

// clampMergeSize bounds the merge size by shared-memory capacity: each
// merged stream needs one T×W-bit tile resident.
func clampMergeSize(cfg Config) int {
	tile := cfg.Grid.Threads * cfg.Grid.UnitBits / 8
	maxStreams := cfg.Device.SharedMemPerCTA / tile
	if maxStreams < 1 {
		maxStreams = 1
	}
	if cfg.MergeSize > maxStreams {
		return maxStreams
	}
	return cfg.MergeSize
}

// Groups returns a deep copy of the compiled groups (experiments inspect
// them; snapshots persist them). Mutating the result never touches the
// engine's internal state or in-flight sessions.
func (e *Engine) Groups() []Group {
	out := make([]Group, len(e.groups))
	for i := range e.groups {
		out[i] = e.groups[i].Clone()
	}
	return out
}

// WithInjector returns a shallow copy of the engine whose runs consult the
// given fault injector (the compiled groups are shared; a compiled Engine
// is immutable). Hardening and resilience tests use it to arm faults on an
// already-compiled engine without re-running the pipeline.
func (e *Engine) WithInjector(inj *faultinject.Injector) *Engine {
	ne := *e
	ne.cfg.Inject = inj
	// Pooled runners capture the injector inside their kernel sessions; the
	// copy must build its own, not share armed-or-not state with e.
	ne.initRunPool()
	return &ne
}

type part struct {
	regexes []lower.Regex
	chars   int
}

// partition splits regexes into at most n groups with similar total
// character length (greedy longest-processing-time bin packing).
func partition(regexes []lower.Regex, n int) []part {
	if n > len(regexes) {
		n = len(regexes)
	}
	order := make([]int, len(regexes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return len(regexes[order[a]].Name) > len(regexes[order[b]].Name)
	})
	parts := make([]part, n)
	for _, idx := range order {
		best := 0
		for g := 1; g < n; g++ {
			if parts[g].chars < parts[best].chars {
				best = g
			}
		}
		parts[best].regexes = append(parts[best].regexes, regexes[idx])
		parts[best].chars += len(regexes[idx].Name)
	}
	out := parts[:0]
	for _, p := range parts {
		if len(p.regexes) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// Run executes the compiled engine over an input and models its time.
// Groups execute concurrently on host CPUs (the simulation is functional;
// the modeled time comes from the counters, not the host clock).
func (e *Engine) Run(input []byte) (*Result, error) {
	return e.RunContext(context.Background(), input)
}

// RunContext is Run honoring a context. Cancellation is observed at the
// group-dispatch boundary and, inside each kernel, at block-window and
// while-iteration boundaries; a canceled run returns an error satisfying
// errors.Is(err, bgerr.ErrCanceled). A panic inside one CTA group's kernel
// is contained: it surfaces as a *bgerr.InternalError carrying the group
// index, its pattern names and the stack, while other groups (and other
// concurrent runs on this immutable Engine) are unaffected.
func (e *Engine) RunContext(ctx context.Context, input []byte) (*Result, error) {
	return e.run(ctx, input, e.cfg.KeepOutputs)
}

// RunCounts is RunContext without retaining match streams, regardless of
// Config.KeepOutputs: per-group output streams become garbage as soon as
// their counts are taken, which is what makes counts-only scans cheaper
// than full runs on large inputs.
func (e *Engine) RunCounts(ctx context.Context, input []byte) (*Result, error) {
	return e.run(ctx, input, false)
}

func (e *Engine) run(ctx context.Context, input []byte, keepOutputs bool) (*Result, error) {
	rn, err := e.getRunner()
	if err != nil {
		return nil, err
	}
	tspan := e.cfg.Obs.Span("scan", "transpose", 0).Arg("input_bytes", len(input))
	transpose.TransposeInto(rn.basis, input)
	tspan.End()
	if err := e.bindShared(rn.basis); err != nil {
		return nil, err
	}
	basis := rn.basis
	share := e.cfg.TransposeShare
	if share == 0 {
		share = 1
	}
	res := &Result{
		MatchCounts: make(map[string]int),
		Stats: gpusim.KernelStats{
			PerCTA:         make([]gpusim.CTAStats, len(e.groups)),
			InputBytes:     int64(len(input)),
			TransposeBytes: int64(float64(basis.BytesMoved()) * share),
		},
	}
	if keepOutputs {
		res.Outputs = make(map[string]*bitstream.Stream)
	}
	type groupOut struct {
		outs      []*bitstream.Stream
		stats     gpusim.CTAStats
		fallbacks int
		err       error
	}
	outs := make([]groupOut, len(e.groups))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for gi := range e.groups {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			// Panic containment: one poisoned group degrades to a typed
			// error; the WaitGroup and semaphore are released on every
			// path, so the launch never deadlocks and the process (and
			// concurrent runs on this Engine) survive.
			defer func() {
				if r := recover(); r != nil {
					outs[gi] = groupOut{err: &bgerr.InternalError{
						Op: "run", Group: gi, Patterns: e.groups[gi].Names,
						Value: r, Stack: debug.Stack(),
					}}
				}
			}()
			if ctx != nil {
				select {
				case sem <- struct{}{}:
				case <-ctx.Done():
					outs[gi] = groupOut{err: bgerr.Canceled(ctx.Err())}
					return
				}
			} else {
				sem <- struct{}{}
			}
			defer func() { <-sem }()
			if err := gpusim.CheckLaunch(e.cfg.Inject, gi); err != nil {
				outs[gi] = groupOut{err: fmt.Errorf("engine: group %d: %w", gi, err)}
				return
			}
			// One trace lane per CTA group: concurrent launches render as
			// parallel tracks in the trace viewer.
			lane := 1 + gi
			e.cfg.Obs.NameLane(lane, fmt.Sprintf("kernel/group-%d", gi))
			lspan := e.cfg.Obs.Span("scan", "kernel-launch", lane).
				Arg("group", gi).Arg("patterns", len(e.groups[gi].Names))
			gouts, stats, err := rn.sess[gi].Run(ctx, basis)
			if err != nil {
				err = fmt.Errorf("engine: group %d: %w", gi, err)
				lspan.Arg("error", err.Error())
			} else {
				lspan.Arg("windows", stats.Windows).
					Arg("dram_bytes", stats.DRAMReadBytes+stats.DRAMWriteBytes).
					Arg("barriers", stats.Barriers).
					Arg("guard_skips", stats.GuardSkips)
			}
			lspan.End()
			outs[gi] = groupOut{gouts, stats, rn.sess[gi].Fallbacks(), err}
		}(gi)
	}
	wg.Wait()
	// Prefer a substantive failure over a cancellation echo: when one
	// group hits a real error while others are canceled, report the real
	// one.
	var firstErr error
	for _, out := range outs {
		if out.err == nil {
			continue
		}
		if firstErr == nil || (isCanceled(firstErr) && !isCanceled(out.err)) {
			firstErr = out.err
		}
	}
	if firstErr != nil {
		// The runner is deliberately not pooled: a session that errored or
		// contained a panic may hold inconsistent retained state.
		return nil, firstErr
	}
	for gi, out := range outs {
		res.Stats.PerCTA[gi] = out.stats
		res.Fallbacks += out.fallbacks
		// Walk the program's output table: it carries the Nullable flag, and
		// nullable regexes own one extra match — the empty match at the
		// end-of-input offset, which sits one position past the kernel's
		// input-length streams. The session's streams align with this table.
		for oi, o := range e.groups[gi].Outputs {
			s := out.outs[oi]
			if s == nil {
				continue
			}
			n := s.Popcount()
			if o.Nullable {
				n++
			}
			res.MatchCounts[o.Name] = n
			res.TotalMatches += int64(n)
			if keepOutputs {
				if o.Nullable {
					// Extend copies; kernel sessions pool and reuse their
					// output buffers, so never grow them in place.
					ext := s.Extend(1)
					ext.Set(ext.Len() - 1)
					s = ext
				} else {
					// The session owns (and will overwrite) its stream
					// buffers; retained outputs must not alias them.
					s = s.Clone()
				}
				res.Outputs[o.Name] = s
			}
		}
	}
	// Every session-owned stream has been counted or copied: the runner can
	// serve the next Run (unless a fallback made it non-fresh; see putRunner).
	e.putRunner(rn)
	espan := e.cfg.Obs.Span("scan", "estimate", 0)
	res.Time = gpusim.EstimateTime(e.cfg.Device, e.cfg.Grid, &res.Stats)
	res.ThroughputMBs = gpusim.ThroughputMBs(res.Stats.InputBytes, res.Time.TotalSec)
	espan.Arg("modeled_sec", res.Time.TotalSec).End()
	for i := range res.Stats.PerCTA {
		res.IntermediateFootprintBytes += gpusim.IntermediateFootprintBytes(
			res.Stats.PerCTA[i].IntermediateStreams, int64(len(input)))
	}
	res.ExceedsDeviceMemory = float64(res.IntermediateFootprintBytes) > e.cfg.Device.MemoryGB*1e9
	if e.cfg.MemoryBudgetBytes > 0 && res.IntermediateFootprintBytes > e.cfg.MemoryBudgetBytes {
		return nil, &bgerr.LimitError{
			Limit: "device-memory-bytes",
			Value: res.IntermediateFootprintBytes, Max: e.cfg.MemoryBudgetBytes,
		}
	}
	if e.cfg.Obs.Enabled() {
		gpusim.RecordKernelStats(e.cfg.Obs.Reg(), &res.Stats, res.Time)
		names := make([][]string, len(e.groups))
		for gi := range e.groups {
			names[gi] = e.groups[gi].Names
		}
		res.Profile = gpusim.BuildProfile(e.cfg.Device, &res.Stats, res.Time, res.ThroughputMBs, names)
	}
	return res, nil
}

func isCanceled(err error) bool { return errors.Is(err, bgerr.ErrCanceled) }

// MultiResult is the outcome of a MIMD multi-stream launch.
type MultiResult struct {
	// PerStream holds each input's result (match counts and outputs are
	// per stream).
	PerStream []*Result
	// Time models the combined launch: every (group, stream) pair is one
	// CTA, all resident concurrently (the paper's MIMD-style execution).
	Time gpusim.TimeBreakdown
	// ThroughputMBs is aggregate input volume per modeled second.
	ThroughputMBs float64
}

// RunMulti scans several independent input streams in one modeled launch.
// Each regex group is replicated per stream — the MISD model (one stream,
// many programs) becomes MIMD (Section 3.1) — and the cost model sees the
// full CTA population, so device utilization reflects the combined load.
func (e *Engine) RunMulti(inputs [][]byte) (*MultiResult, error) {
	return e.RunMultiContext(context.Background(), inputs)
}

// RunMultiContext is RunMulti honoring a context; cancellation and panic
// containment follow RunContext's semantics per stream.
func (e *Engine) RunMultiContext(ctx context.Context, inputs [][]byte) (*MultiResult, error) {
	out := &MultiResult{}
	combined := gpusim.KernelStats{}
	var total int64
	for _, input := range inputs {
		res, err := e.RunContext(ctx, input)
		if err != nil {
			return nil, err
		}
		out.PerStream = append(out.PerStream, res)
		combined.PerCTA = append(combined.PerCTA, res.Stats.PerCTA...)
		combined.TransposeBytes += res.Stats.TransposeBytes
		total += res.Stats.InputBytes
	}
	combined.InputBytes = total
	out.Time = gpusim.EstimateTime(e.cfg.Device, e.cfg.Grid, &combined)
	out.ThroughputMBs = gpusim.ThroughputMBs(total, out.Time.TotalSec)
	return out, nil
}
