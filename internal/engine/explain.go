package engine

import (
	"fmt"
	"strings"

	"bitgen/internal/dfg"
	"bitgen/internal/ir"
)

// GroupReport describes one compiled CTA group.
type GroupReport struct {
	// Index is the group's CTA slot.
	Index int
	// Regexes is the number of patterns in the group.
	Regexes int
	// Chars is the total pattern character length (the balancing key).
	Chars int
	// Stats is the instruction mix after all passes.
	Stats ir.Stats
	// StaticDelta is the overlap distance in bits.
	StaticDelta int
	// Dynamic reports whether the group needs runtime overlap growth
	// (while loops or carries).
	Dynamic bool
	// BarrierGroups / DedupedCopies summarize the merge schedule.
	BarrierGroups int
	DedupedCopies int
	// Guards counts inserted zero-block guards.
	Guards int
}

// Report summarizes the whole engine.
type Report struct {
	Groups []GroupReport
	// Totals aggregates the instruction mix.
	Totals ir.Stats
}

// Explain produces a compilation report: per-CTA-group instruction mixes,
// overlap distances, barrier schedules and guard counts — what
// `bitgen -explain` prints.
func (e *Engine) Explain() *Report {
	rep := &Report{}
	for gi := range e.groups {
		g := &e.groups[gi]
		prog := g.Prog()
		gr := GroupReport{
			Index:   gi,
			Regexes: len(g.Names),
			Chars:   g.Chars,
			Stats:   ir.CollectStats(prog),
		}
		an := dfg.Analyze(prog)
		gr.StaticDelta = an.StaticDelta
		gr.Dynamic = an.HasDynamic || an.HasCarry
		if prog.Barriers != nil {
			gr.BarrierGroups = len(prog.Barriers.Groups)
			gr.DedupedCopies = prog.Barriers.DedupedCopies
		}
		ir.WalkStmts(prog.Stmts, func(s ir.Stmt) {
			if _, ok := s.(*ir.Guard); ok {
				gr.Guards++
			}
		})
		rep.Groups = append(rep.Groups, gr)
		rep.Totals.And += gr.Stats.And
		rep.Totals.Or += gr.Stats.Or
		rep.Totals.Not += gr.Stats.Not
		rep.Totals.Xor += gr.Stats.Xor
		rep.Totals.Shift += gr.Stats.Shift
		rep.Totals.Add += gr.Stats.Add
		rep.Totals.Star += gr.Stats.Star
		rep.Totals.While += gr.Stats.While
		rep.Totals.If += gr.Stats.If
		rep.Totals.Assigns += gr.Stats.Assigns
	}
	return rep
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d CTA groups, %d instructions total "+
		"(%d and, %d or, %d not, %d shift, %d star, %d while)\n",
		len(r.Groups), r.Totals.Total(),
		r.Totals.And, r.Totals.Or, r.Totals.Not, r.Totals.Shift,
		r.Totals.Star, r.Totals.While)
	fmt.Fprintf(&b, "%5s %7s %7s %7s %7s %9s %8s %7s %7s\n",
		"group", "regexes", "chars", "instrs", "shifts", "delta", "dynamic", "bgroups", "guards")
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "%5d %7d %7d %7d %7d %8db %8v %7d %7d\n",
			g.Index, g.Regexes, g.Chars, g.Stats.Total(), g.Stats.Shift,
			g.StaticDelta, g.Dynamic, g.BarrierGroups, g.Guards)
	}
	return b.String()
}
