package engine

import (
	"context"
	"errors"
	"testing"

	"bitgen/internal/bgerr"
	"bitgen/internal/faultinject"
	"bitgen/internal/kernel"
)

func hardenedInput() []byte {
	return []byte("cat doggy bird fishsh hamster the catalog dog bird fish cat")
}

// TestInjectedKernelPanicBecomesInternalError is the acceptance test for
// panic containment: a forced panic inside one CTA group's kernel run
// surfaces as a *bgerr.InternalError carrying the group index and its
// patterns, the process survives, and a subsequent Run on the same Engine
// succeeds.
func TestInjectedKernelPanicBecomesInternalError(t *testing.T) {
	regexes := mustRegexes(t, "cat", "dog(gy)?", "b[ir]rd", "fi(sh)+")
	cfg := BitGenDefault()
	cfg.Grid = smallGrid
	cfg.KeepOutputs = true
	cfg.Inject = faultinject.New(1).ArmNth(faultinject.KernelPanic, 1)
	e, err := Compile(regexes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	input := hardenedInput()
	_, err = e.Run(input)
	if err == nil {
		t.Fatal("run with injected kernel panic returned no error")
	}
	var ie *bgerr.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v is not a *bgerr.InternalError", err)
	}
	if ie.Op != "run" || ie.Group < 0 || ie.Group >= len(e.Groups()) {
		t.Fatalf("internal error has op %q group %d", ie.Op, ie.Group)
	}
	if len(ie.Patterns) == 0 {
		t.Fatal("internal error carries no pattern names")
	}
	if len(ie.Stack) == 0 {
		t.Fatal("internal error carries no stack")
	}

	// The injector fired once; the same Engine must now run cleanly.
	res, err := e.Run(input)
	if err != nil {
		t.Fatalf("subsequent run on the same engine failed: %v", err)
	}
	want, err := func() (*Result, error) {
		clean := BitGenDefault()
		clean.Grid = smallGrid
		clean.KeepOutputs = true
		ce, err := Compile(mustRegexes(t, "cat", "dog(gy)?", "b[ir]rd", "fi(sh)+"), clean)
		if err != nil {
			return nil, err
		}
		return ce.Run(input)
	}()
	if err != nil {
		t.Fatal(err)
	}
	for name, n := range want.MatchCounts {
		if res.MatchCounts[name] != n {
			t.Fatalf("post-panic run: %s count %d, want %d", name, res.MatchCounts[name], n)
		}
	}
}

func TestInjectedLaunchFailureIsTypedAndSurvivable(t *testing.T) {
	regexes := mustRegexes(t, "cat", "dog")
	cfg := BitGenDefault()
	cfg.Grid = smallGrid
	cfg.Inject = faultinject.New(2).ArmNth(faultinject.LaunchFail, 1)
	e, err := Compile(regexes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(hardenedInput())
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("launch failure returned %v, want ErrInjected in chain", err)
	}
	if _, err := e.Run(hardenedInput()); err != nil {
		t.Fatalf("engine unusable after launch failure: %v", err)
	}
}

func TestRunContextCanceledReturnsErrCanceled(t *testing.T) {
	regexes := mustRegexes(t, "cat", "dog")
	cfg := BitGenDefault()
	cfg.Grid = smallGrid
	e, err := Compile(regexes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = e.RunContext(ctx, hardenedInput())
	if !errors.Is(err, bgerr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v", err)
	}
	// The engine is unaffected.
	if _, err := e.Run(hardenedInput()); err != nil {
		t.Fatalf("engine unusable after cancellation: %v", err)
	}
}

func TestCompileContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompileContext(ctx, mustRegexes(t, "cat"), BitGenDefault())
	if !errors.Is(err, bgerr.ErrCanceled) {
		t.Fatalf("canceled compile returned %v", err)
	}
}

func TestMaxProgramInstructionsRefusal(t *testing.T) {
	cfg := BitGenDefault()
	cfg.Grid = smallGrid
	cfg.MaxProgramInstructions = 1
	_, err := Compile(mustRegexes(t, "h[aeiou]mster.*fish"), cfg)
	if !errors.Is(err, bgerr.ErrLimit) {
		t.Fatalf("oversized program returned %v, want ErrLimit", err)
	}
	var le *bgerr.LimitError
	if !errors.As(err, &le) || le.Limit != "program-instructions" {
		t.Fatalf("error %v is not a program-instructions LimitError", err)
	}
}

func TestMemoryBudgetRefusal(t *testing.T) {
	// Sequential mode materializes every intermediate, so even a small
	// pattern set exceeds a one-byte budget.
	cfg := Config{Mode: kernel.ModeSequential, Grid: smallGrid, MemoryBudgetBytes: 1}
	e, err := Compile(mustRegexes(t, "cat", "dog(gy)?"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(hardenedInput())
	if !errors.Is(err, bgerr.ErrLimit) {
		t.Fatalf("over-budget run returned %v, want ErrLimit", err)
	}
	var le *bgerr.LimitError
	if !errors.As(err, &le) || le.Limit != "device-memory-bytes" {
		t.Fatalf("error %v is not a device-memory-bytes LimitError", err)
	}
}

func TestMaxWhileIterationsDefaultIsWired(t *testing.T) {
	got := Config{}.withDefaults()
	if got.MaxWhileIterations != DefaultMaxWhileIterations {
		t.Fatalf("default MaxWhileIterations = %d, want %d", got.MaxWhileIterations, DefaultMaxWhileIterations)
	}
	adaptive := Config{MaxWhileIterations: -1}.withDefaults()
	if adaptive.MaxWhileIterations != 0 {
		t.Fatalf("-1 should select the kernel's adaptive bound (0), got %d", adaptive.MaxWhileIterations)
	}
	explicit := Config{MaxWhileIterations: 37}.withDefaults()
	if explicit.MaxWhileIterations != 37 {
		t.Fatalf("explicit cap rewritten to %d", explicit.MaxWhileIterations)
	}
}
