package engine

import (
	"reflect"
	"testing"
)

// TestGroupsReturnsClones guards the aliasing fix: Groups() must deep-copy
// every group so callers (diagnostics, snapshot writers) cannot corrupt
// the engine's resident compiled state through the returned slice.
func TestGroupsReturnsClones(t *testing.T) {
	regexes := mustRegexes(t, "cat", "dog(gy)?", "[a-f]+x")
	cfg := BitGenDefault()
	cfg.Grid = smallGrid
	e, err := Compile(regexes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before, err := e.Run([]byte("cat doggy abcfx"))
	if err != nil {
		t.Fatal(err)
	}

	got := e.Groups()
	pristine := e.Groups()
	for i := range got {
		if len(got[i].Names) > 0 {
			got[i].Names[0] = "corrupted"
		}
		for j := range got[i].Packed {
			got[i].Packed[j] ^= 0xff
		}
		if got[i].Program != nil && len(got[i].Program.Stmts) > 0 {
			got[i].Program.Stmts = got[i].Program.Stmts[:0]
		}
		if len(got[i].Outputs) > 0 {
			got[i].Outputs[0].Name = "corrupted"
		}
	}
	if !reflect.DeepEqual(e.Groups(), pristine) {
		t.Fatal("mutating Groups() result changed the engine's groups")
	}
	after, err := e.Run([]byte("cat doggy abcfx"))
	if err != nil {
		t.Fatalf("engine corrupted by accessor mutation: %v", err)
	}
	if !reflect.DeepEqual(after.MatchCounts, before.MatchCounts) {
		t.Fatalf("match counts drifted after accessor mutation: before %v after %v",
			before.MatchCounts, after.MatchCounts)
	}

	names := e.MatchNames()
	if len(names) > 0 {
		names[0] = "corrupted"
		if e.MatchNames()[0] == "corrupted" {
			t.Fatal("MatchNames() leaked a live slice")
		}
	}
}
