package engine

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"bitgen/internal/arena"
	"bitgen/internal/faultinject"
)

// batchCorpus builds a match-dense input and splits it into pipeline-shaped
// chunks: each chunk carries `overlap` bytes of the previous one, with
// NewFrom marking the first not-yet-reported offset — exactly the geometry
// scanPipelined feeds ScanBatch.
func batchCorpus(t *testing.T, rng *rand.Rand, size, chunkSize, overlap int) ([]byte, []*ScanChunk) {
	t.Helper()
	words := []string{"cat", "doggy", "bird", "fishsh", "dog", "xx", " ", "birrd"}
	var sb strings.Builder
	for sb.Len() < size {
		sb.WriteString(words[rng.Intn(len(words))])
	}
	input := []byte(sb.String())
	var chunks []*ScanChunk
	pos := 0
	for pos < len(input) {
		lo := pos - overlap
		if lo < 0 {
			lo = 0
		}
		hi := pos + chunkSize
		if hi > len(input) {
			hi = len(input)
		}
		chunks = append(chunks, &ScanChunk{
			Data: input[lo:hi], Base: int64(lo), NewFrom: int64(pos),
		})
		pos = hi
	}
	return input, chunks
}

// TestScanBatchMatchesScan is ScanBatch's differential oracle: over batches
// of every size the pipeline can form, the batched path must fill each
// chunk with exactly the matches (order included) the per-chunk Scan path
// produces.
func TestScanBatchMatchesScan(t *testing.T) {
	regexes := mustRegexes(t, "cat", "dog(gy)?", "b[ir]rd", "fi(sh)+")
	cfg := BitGenDefault()
	cfg.Grid = smallGrid
	e, err := Compile(regexes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const chunkSize, overlap = 256, 8
	_, chunks := batchCorpus(t, rng, 4096, chunkSize, overlap)

	a := &arena.Arena{}
	oracle, err := e.NewScanSession(chunkSize+overlap, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	batched, err := e.NewScanSession(chunkSize+overlap, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()

	ctx := context.Background()
	total := 0
	for _, k := range []int{1, 2, 3, 4} {
		for lo := 0; lo+k <= len(chunks); lo += k {
			batch := chunks[lo : lo+k]
			batched.ScanBatch(ctx, batch)
			for _, c := range batch {
				if c.Err != nil {
					t.Fatalf("k=%d chunk base %d: %v", k, c.Base, c.Err)
				}
				want, err := oracle.Scan(ctx, c.Data, c.Base, c.NewFrom, nil)
				if err != nil {
					t.Fatalf("oracle chunk base %d: %v", c.Base, err)
				}
				if len(c.Matches) != len(want) {
					t.Fatalf("k=%d chunk base %d: batched found %d matches, Scan found %d",
						k, c.Base, len(c.Matches), len(want))
				}
				for i := range want {
					if c.Matches[i] != want[i] {
						t.Fatalf("k=%d chunk base %d: match %d = %+v, Scan produced %+v",
							k, c.Base, i, c.Matches[i], want[i])
					}
				}
				total += len(want)
			}
		}
	}
	if total == 0 {
		t.Fatal("degenerate corpus: no matches")
	}
}

// TestScanBatchFallsBackOnInjectedPanic arms a kernel panic under a batched
// scan: the batch must roll back to the sequential per-chunk path, which
// contains the (re-armed or spent) fault per chunk — so every chunk ends up
// with either a clean result identical to Scan's or Scan's own typed error,
// and the session stays usable afterwards.
func TestScanBatchFallsBackOnInjectedPanic(t *testing.T) {
	regexes := mustRegexes(t, "cat", "dog(gy)?")
	cfg := BitGenDefault()
	cfg.Grid = smallGrid
	// Fire exactly once: the batched launch panics, the sequential replay
	// runs clean, so the caller sees a successful scan.
	cfg.Inject = faultinject.New(1).ArmNth(faultinject.KernelPanic, 1)
	e, err := Compile(regexes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const chunkSize, overlap = 256, 8
	_, chunks := batchCorpus(t, rng, 2048, chunkSize, overlap)
	if len(chunks) < 3 {
		t.Fatalf("corpus split into %d chunks, need >= 3", len(chunks))
	}

	a := &arena.Arena{}
	ss, err := e.NewScanSession(chunkSize+overlap, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	clean := BitGenDefault()
	clean.Grid = smallGrid
	oe, err := Compile(mustRegexes(t, "cat", "dog(gy)?"), clean)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := oe.NewScanSession(chunkSize+overlap, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	ctx := context.Background()
	batch := chunks[:3]
	ss.ScanBatch(ctx, batch)
	total := 0
	for _, c := range batch {
		if c.Err != nil {
			t.Fatalf("chunk base %d: sequential replay should have absorbed the one-shot panic: %v", c.Base, c.Err)
		}
		want, err := oracle.Scan(ctx, c.Data, c.Base, c.NewFrom, nil)
		if err != nil {
			t.Fatalf("oracle chunk base %d: %v", c.Base, err)
		}
		if len(c.Matches) != len(want) {
			t.Fatalf("chunk base %d: fallback path found %d matches, want %d",
				c.Base, len(c.Matches), len(want))
		}
		for i := range want {
			if c.Matches[i] != want[i] {
				t.Fatalf("chunk base %d: match %d = %+v, want %+v", c.Base, i, c.Matches[i], want[i])
			}
		}
		total += len(want)
	}
	if total == 0 {
		t.Fatal("degenerate corpus: no matches")
	}
}
