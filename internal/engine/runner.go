package engine

import (
	"fmt"
	"sync"

	"bitgen/internal/arena"
	"bitgen/internal/kernel"
	"bitgen/internal/transpose"
)

// runner is the pooled per-call state behind the one-shot Run path: a
// reusable transpose basis plus one kernel session per CTA group. Before
// runners, every Run rebuilt the plan, liveness, barrier schedule and all
// stream buffers from scratch (~700 allocations per call); pooling them
// makes repeated one-shot runs nearly allocation-free on the kernel side
// while keeping Run's semantics — the pool only ever hands back runners in
// the same state a fresh one starts in (see putRunner).
type runner struct {
	basis *transpose.Basis
	sess  []*kernel.Session
}

// initRunPool installs a fresh runner pool. Called at construction and by
// WithInjector: sessions capture the engine's fault injector, so an engine
// copy with a different injector must not share pooled runners.
//
// Runner sessions borrow from a private per-engine arena, not
// arena.Default: a pooled runner retains its buffers indefinitely, which
// would read as a leak to anything auditing the global arena's balance
// (the serving layer does, after every aborted scan).
func (e *Engine) initRunPool() {
	e.runPool = &sync.Pool{}
	e.runArena = &arena.Arena{}
}

// getRunner returns a pooled runner or builds one. Construction cannot fail
// for an engine that compiled — the programs already validated — but the
// error is surfaced rather than swallowed for defense in depth.
func (e *Engine) getRunner() (*runner, error) {
	if e.runPool != nil {
		if r, ok := e.runPool.Get().(*runner); ok {
			return r, nil
		}
	}
	r := &runner{basis: &transpose.Basis{}}
	for gi := range e.groups {
		kcfg := kernel.Config{
			Grid:               e.cfg.Grid,
			Mode:               e.cfg.Mode,
			HonorGuards:        e.cfg.ZeroBlockSkipping,
			SharedInputCTAs:    len(e.groups),
			MaxWhileIterations: e.cfg.MaxWhileIterations,
			Inject:             e.cfg.Inject,
			Obs:                e.cfg.Obs,
			// One trace lane per CTA group: concurrent launches render as
			// parallel tracks in the trace viewer.
			TraceLane: 1 + gi,
		}
		ks, err := kernel.NewSession(e.groups[gi].Prog(), kcfg, e.runArena)
		if err != nil {
			return nil, fmt.Errorf("engine: group %d: %w", gi, err)
		}
		r.sess = append(r.sess, ks)
	}
	return r, nil
}

// putRunner returns a runner to the pool — unless it is no longer
// indistinguishable from a fresh one. A runner whose sessions took a
// materialization fallback would carry that fallback (and its modeled-time
// delta) into an unrelated future Run, where a fresh one-shot would not;
// such runners are dropped and rebuilt on demand. Callers also skip the
// put entirely on errors and contained panics, for the same reason.
func (e *Engine) putRunner(r *runner) {
	if e.runPool == nil {
		return
	}
	for _, ks := range r.sess {
		if ks.Fallbacks() > 0 {
			return
		}
	}
	e.runPool.Put(r)
}
