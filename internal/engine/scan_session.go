package engine

import (
	"context"
	"fmt"
	"runtime/debug"

	"bitgen/internal/arena"
	"bitgen/internal/bgerr"
	"bitgen/internal/bitstream"
	"bitgen/internal/gpusim"
	"bitgen/internal/kernel"
	"bitgen/internal/transpose"
)

// ScanMatch is one match found by a ScanSession: Pattern matched ending at
// absolute stream offset End (inclusive). Rank is Pattern's index in the
// engine's MatchNames table — callers on the hot path dispatch on the
// integer instead of hashing the string.
type ScanMatch struct {
	Pattern string
	End     int64
	Rank    int32
}

// ScanSession is a reusable chunk executor for streaming scans: it owns a
// pooled transpose basis and one kernel session per CTA group, so a
// steady-state scan of same-sized chunks performs zero heap allocations per
// chunk. One session serves one goroutine (the scanner runs one per
// pipeline worker); concurrency comes from running several sessions over
// different chunks.
//
// Unlike Engine.Run, the groups of one chunk execute sequentially in the
// calling goroutine: the pipeline parallelizes across chunks, not across
// groups, which keeps the per-chunk path allocation-free (no goroutine or
// channel churn) while still scaling on multi-core hosts.
type ScanSession struct {
	e     *Engine
	basis *transpose.Basis
	sess  []*kernel.Session
	outs  [][]*bitstream.Stream // per-group output streams of the last run
	heap  []scanCursor          // merge heap scratch, reused across chunks
	tr    *arena.Tracker
	lane  int

	// Batched-scan state (ScanBatch): one transpose basis per in-flight
	// chunk plus per-lane parked outputs, created on first use. bases[0]
	// is the session's own basis. maxChunkBytes sizes lazily added bases.
	maxChunkBytes int
	bases         []*transpose.Basis
	louts         [][][]*bitstream.Stream // [lane][group][output]
	footprints    []int64
}

// scanCursor walks one output stream during the match merge. end is the
// absolute offset of the cursor's current set bit; the heap orders by
// (end, rank), which is exactly (End, Pattern) order because ranks are
// assigned in ascending name order.
type scanCursor struct {
	end  int64
	pos  int // current bit position within the stream
	rank int32
	gi   int32
	oi   int32
}

// NewScanSession builds a session for chunks up to maxChunkBytes (larger
// chunks still work; they just grow the buffers once). Buffers are borrowed
// from a (nil selects arena.Default) and released by Close. lane is the
// trace lane the session's kernel spans land on.
func (e *Engine) NewScanSession(maxChunkBytes int, a *arena.Arena, lane int) (*ScanSession, error) {
	ss := &ScanSession{
		e:             e,
		basis:         &transpose.Basis{},
		tr:            arena.NewTracker(a),
		lane:          lane,
		maxChunkBytes: maxChunkBytes,
	}
	// Basis backing from the arena: one bit per input byte, eight planes.
	nw := bitstream.WordsFor(maxChunkBytes)
	if nw > 0 {
		for j := 0; j < transpose.NumBasis; j++ {
			ss.basis.SetWords(j, ss.tr.Words(nw))
		}
	}
	kcfg := kernel.Config{
		Grid:               e.cfg.Grid,
		Mode:               e.cfg.Mode,
		HonorGuards:        e.cfg.ZeroBlockSkipping,
		SharedInputCTAs:    len(e.groups),
		MaxWhileIterations: e.cfg.MaxWhileIterations,
		Inject:             e.cfg.Inject,
		Obs:                e.cfg.Obs,
		TraceLane:          lane,
	}
	for gi := range e.groups {
		ks, err := kernel.NewSession(e.groups[gi].Prog(), kcfg, a)
		if err != nil {
			ss.Close()
			return nil, fmt.Errorf("engine: group %d: %w", gi, err)
		}
		ss.sess = append(ss.sess, ks)
	}
	ss.outs = make([][]*bitstream.Stream, len(ss.sess))
	return ss, nil
}

// Scan runs every CTA group over chunk and appends each match whose
// absolute end offset is >= newFrom to dst, sorted by (End, Pattern) — the
// exact order and dedup semantics of the sequential per-chunk path. base is
// chunk[0]'s absolute stream offset. The returned slice reuses dst's
// backing array (steady state appends allocate nothing once the capacity
// has stabilized).
func (ss *ScanSession) Scan(ctx context.Context, chunk []byte, base, newFrom int64, dst []ScanMatch) ([]ScanMatch, error) {
	e := ss.e
	// Arg boxes its value even on a nil span; keep the hot path free of it.
	if e.cfg.Obs.Enabled() {
		tspan := e.cfg.Obs.Span("scan", "transpose", ss.lane).Arg("input_bytes", len(chunk))
		transpose.TransposeInto(ss.basis, chunk)
		tspan.End()
	} else {
		transpose.TransposeInto(ss.basis, chunk)
	}
	start := len(dst)
	if err := e.bindShared(ss.basis); err != nil {
		return dst[:start], err
	}
	var footprint int64
	for gi := range ss.sess {
		stats, err := ss.scanGroup(ctx, gi)
		if err != nil {
			ss.clearOuts()
			return dst[:start], err
		}
		footprint += gpusim.IntermediateFootprintBytes(stats.IntermediateStreams, int64(len(chunk)))
	}
	if e.cfg.MemoryBudgetBytes > 0 && footprint > e.cfg.MemoryBudgetBytes {
		ss.clearOuts()
		return dst[:start], &bgerr.LimitError{
			Limit: "device-memory-bytes",
			Value: footprint, Max: e.cfg.MemoryBudgetBytes,
		}
	}
	dst = ss.mergeMatches(ss.outs, base, newFrom, dst)
	ss.clearOuts()
	return dst, nil
}

// scanGroup executes one CTA group over the current basis, parking its
// output streams in ss.outs[gi] for the merge. A panic inside the kernel is
// contained as a typed internal error, mirroring Engine.Run's per-group
// containment.
func (ss *ScanSession) scanGroup(ctx context.Context, gi int) (st gpusim.CTAStats, err error) {
	e := ss.e
	defer func() {
		if r := recover(); r != nil {
			err = &bgerr.InternalError{
				Op: "scan", Group: gi, Patterns: e.groups[gi].Names,
				Value: r, Stack: debug.Stack(),
			}
		}
	}()
	if err := gpusim.CheckLaunch(e.cfg.Inject, gi); err != nil {
		return st, fmt.Errorf("engine: group %d: %w", gi, err)
	}
	outs, stats, err := ss.sess[gi].Run(ctx, ss.basis)
	if err != nil {
		return st, fmt.Errorf("engine: group %d: %w", gi, err)
	}
	// The streams stay valid until this group's session runs again — i.e.
	// across the remaining groups of this chunk and the merge that follows.
	ss.outs[gi] = outs
	return stats, nil
}

// mergeMatches k-way-merges the per-output match runs into dst. Each
// stream's set bits are already ascending, so a binary min-heap keyed by
// (end, rank) yields matches in exactly the (End, Pattern) order the
// sequential path's sort produced — on integer comparisons, without the
// per-chunk O(n log n) string sort that used to dominate the scan profile.
func (ss *ScanSession) mergeMatches(gouts [][]*bitstream.Stream, base, newFrom int64, dst []ScanMatch) []ScanMatch {
	startBit := 0
	if newFrom > base {
		// Positions inside the carried-over overlap were already reported
		// by the previous chunk.
		startBit = int(newFrom - base)
	}
	h := ss.heap[:0]
	for gi, outs := range gouts {
		ranks := ss.e.outRanks[gi]
		for oi, s := range outs {
			p := s.NextSetBit(startBit)
			if p < 0 {
				continue
			}
			h = append(h, scanCursor{
				end: base + int64(p), pos: p,
				rank: ranks[oi], gi: int32(gi), oi: int32(oi),
			})
			siftUp(h, len(h)-1)
		}
	}
	names := ss.e.matchNames
	for len(h) > 0 {
		c := h[0]
		dst = append(dst, ScanMatch{Pattern: names[c.rank], End: c.end, Rank: c.rank})
		p := gouts[c.gi][c.oi].NextSetBit(c.pos + 1)
		if p < 0 {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		} else {
			c.pos, c.end = p, base+int64(p)
			h[0] = c
		}
		siftDown(h, 0)
	}
	ss.heap = h[:0]
	return dst
}

func cursorLess(a, b scanCursor) bool {
	if a.end != b.end {
		return a.end < b.end
	}
	return a.rank < b.rank
}

func siftUp(h []scanCursor, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !cursorLess(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown(h []scanCursor, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && cursorLess(h[r], h[l]) {
			m = r
		}
		if !cursorLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// clearOuts drops the parked stream references so a failed or finished
// chunk cannot alias buffers the next Run will overwrite.
func (ss *ScanSession) clearOuts() {
	for gi := range ss.outs {
		ss.outs[gi] = nil
	}
}

// ScanChunk is one chunk of a batched scan: Data at absolute offset Base,
// with matches before NewFrom suppressed (carried-over overlap). Matches
// and Err are outputs — Matches reuses its own backing array across calls.
type ScanChunk struct {
	Data          []byte
	Base, NewFrom int64
	Matches       []ScanMatch
	Err           error
}

// ScanBatch scans K chunks through one batched kernel launch per CTA
// group: every group's plan is traversed once for all K transposed inputs
// (kernel.Session.RunBatch) instead of once per chunk. Each chunk's
// Matches and Err are exactly what Scan would have produced for it.
//
// Fallback and resilience semantics are unchanged: if the batched launch
// fails for any reason, every chunk is replayed through the sequential
// per-chunk path, which reproduces per-chunk error attribution (and panic
// containment) bit-for-bit.
func (ss *ScanSession) ScanBatch(ctx context.Context, chunks []*ScanChunk) {
	if len(chunks) == 1 {
		c := chunks[0]
		c.Matches, c.Err = ss.Scan(ctx, c.Data, c.Base, c.NewFrom, c.Matches)
		return
	}
	if len(chunks) == 0 {
		return
	}
	if !ss.scanBatched(ctx, chunks) {
		for _, c := range chunks {
			c.Matches, c.Err = ss.Scan(ctx, c.Data, c.Base, c.NewFrom, c.Matches)
		}
	}
}

// scanBatched attempts the batched path, reporting whether it completed.
// Any failure — kernel error, budget overflow, contained panic — rolls the
// whole batch back to the sequential path.
func (ss *ScanSession) scanBatched(ctx context.Context, chunks []*ScanChunk) (done bool) {
	defer func() {
		if r := recover(); r != nil {
			ss.clearBatchOuts(len(chunks))
			done = false
		}
	}()
	e := ss.e
	k := len(chunks)
	ss.growLanes(k)
	for i, c := range chunks {
		transpose.TransposeInto(ss.bases[i], c.Data)
		if err := e.bindShared(ss.bases[i]); err != nil {
			ss.clearBatchOuts(k)
			return false
		}
		ss.footprints[i] = 0
	}
	for gi := range ss.sess {
		if err := gpusim.CheckLaunch(e.cfg.Inject, gi); err != nil {
			ss.clearBatchOuts(k)
			return false
		}
		outs, stats, err := ss.sess[gi].RunBatch(ctx, ss.bases[:k])
		if err != nil {
			ss.clearBatchOuts(k)
			return false
		}
		for lane := 0; lane < k; lane++ {
			ss.louts[lane][gi] = outs[lane]
			ss.footprints[lane] += gpusim.IntermediateFootprintBytes(
				stats[lane].IntermediateStreams, int64(len(chunks[lane].Data)))
		}
	}
	if e.cfg.MemoryBudgetBytes > 0 {
		for lane := 0; lane < k; lane++ {
			if ss.footprints[lane] > e.cfg.MemoryBudgetBytes {
				ss.clearBatchOuts(k)
				return false
			}
		}
	}
	for lane, c := range chunks {
		c.Matches = ss.mergeMatches(ss.louts[lane], c.Base, c.NewFrom, c.Matches[:0])
		c.Err = nil
	}
	ss.clearBatchOuts(k)
	return true
}

// growLanes ensures batch state exists for k lanes. Lane 0 aliases the
// session's own basis, so single-chunk and batched scans share buffers.
func (ss *ScanSession) growLanes(k int) {
	if len(ss.bases) == 0 {
		ss.bases = append(ss.bases, ss.basis)
	}
	for len(ss.bases) < k {
		b := &transpose.Basis{}
		if nw := bitstream.WordsFor(ss.maxChunkBytes); nw > 0 {
			for j := 0; j < transpose.NumBasis; j++ {
				b.SetWords(j, ss.tr.Words(nw))
			}
		}
		ss.bases = append(ss.bases, b)
	}
	for len(ss.louts) < k {
		ss.louts = append(ss.louts, make([][]*bitstream.Stream, len(ss.sess)))
	}
	for len(ss.footprints) < k {
		ss.footprints = append(ss.footprints, 0)
	}
}

// clearBatchOuts drops parked batch stream references (mirrors clearOuts).
func (ss *ScanSession) clearBatchOuts(k int) {
	for lane := 0; lane < k && lane < len(ss.louts); lane++ {
		for gi := range ss.louts[lane] {
			ss.louts[lane][gi] = nil
		}
	}
}

// Close releases every pooled buffer the session borrowed. The session must
// not be used afterwards.
func (ss *ScanSession) Close() {
	for _, ks := range ss.sess {
		ks.Close()
	}
	ss.sess = nil
	ss.tr.Close()
}
