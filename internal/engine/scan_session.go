package engine

import (
	"context"
	"fmt"
	"runtime/debug"
	"slices"
	"strings"

	"bitgen/internal/arena"
	"bitgen/internal/bgerr"
	"bitgen/internal/bitstream"
	"bitgen/internal/gpusim"
	"bitgen/internal/kernel"
	"bitgen/internal/transpose"
)

// ScanMatch is one match found by a ScanSession: Pattern matched ending at
// absolute stream offset End (inclusive).
type ScanMatch struct {
	Pattern string
	End     int64
}

// ScanSession is a reusable chunk executor for streaming scans: it owns a
// pooled transpose basis and one kernel session per CTA group, so a
// steady-state scan of same-sized chunks performs zero heap allocations per
// chunk. One session serves one goroutine (the scanner runs one per
// pipeline worker); concurrency comes from running several sessions over
// different chunks.
//
// Unlike Engine.Run, the groups of one chunk execute sequentially in the
// calling goroutine: the pipeline parallelizes across chunks, not across
// groups, which keeps the per-chunk path allocation-free (no goroutine or
// channel churn) while still scaling on multi-core hosts.
type ScanSession struct {
	e     *Engine
	basis *transpose.Basis
	sess  []*kernel.Session
	tr    *arena.Tracker
	lane  int
}

// NewScanSession builds a session for chunks up to maxChunkBytes (larger
// chunks still work; they just grow the buffers once). Buffers are borrowed
// from a (nil selects arena.Default) and released by Close. lane is the
// trace lane the session's kernel spans land on.
func (e *Engine) NewScanSession(maxChunkBytes int, a *arena.Arena, lane int) (*ScanSession, error) {
	ss := &ScanSession{
		e:     e,
		basis: &transpose.Basis{},
		tr:    arena.NewTracker(a),
		lane:  lane,
	}
	// Basis backing from the arena: one bit per input byte, eight planes.
	nw := bitstream.WordsFor(maxChunkBytes)
	if nw > 0 {
		for j := 0; j < transpose.NumBasis; j++ {
			ss.basis.SetWords(j, ss.tr.Words(nw))
		}
	}
	kcfg := kernel.Config{
		Grid:               e.cfg.Grid,
		Mode:               e.cfg.Mode,
		HonorGuards:        e.cfg.ZeroBlockSkipping,
		SharedInputCTAs:    len(e.groups),
		MaxWhileIterations: e.cfg.MaxWhileIterations,
		Inject:             e.cfg.Inject,
		Obs:                e.cfg.Obs,
		TraceLane:          lane,
	}
	for gi := range e.groups {
		ks, err := kernel.NewSession(e.groups[gi].Program, kcfg, a)
		if err != nil {
			ss.Close()
			return nil, fmt.Errorf("engine: group %d: %w", gi, err)
		}
		ss.sess = append(ss.sess, ks)
	}
	return ss, nil
}

// Scan runs every CTA group over chunk and appends each match whose
// absolute end offset is >= newFrom to dst, sorted by (End, Pattern) — the
// exact order and dedup semantics of the sequential per-chunk path. base is
// chunk[0]'s absolute stream offset. The returned slice reuses dst's
// backing array (steady state appends allocate nothing once the capacity
// has stabilized).
func (ss *ScanSession) Scan(ctx context.Context, chunk []byte, base, newFrom int64, dst []ScanMatch) ([]ScanMatch, error) {
	e := ss.e
	// Arg boxes its value even on a nil span; keep the hot path free of it.
	if e.cfg.Obs.Enabled() {
		tspan := e.cfg.Obs.Span("scan", "transpose", ss.lane).Arg("input_bytes", len(chunk))
		transpose.TransposeInto(ss.basis, chunk)
		tspan.End()
	} else {
		transpose.TransposeInto(ss.basis, chunk)
	}
	start := len(dst)
	var footprint int64
	for gi := range ss.sess {
		stats, err := ss.scanGroup(ctx, gi, base, newFrom, &dst)
		if err != nil {
			return dst[:start], err
		}
		footprint += gpusim.IntermediateFootprintBytes(stats.IntermediateStreams, int64(len(chunk)))
	}
	if e.cfg.MemoryBudgetBytes > 0 && footprint > e.cfg.MemoryBudgetBytes {
		return dst[:start], &bgerr.LimitError{
			Limit: "device-memory-bytes",
			Value: footprint, Max: e.cfg.MemoryBudgetBytes,
		}
	}
	added := dst[start:]
	slices.SortFunc(added, func(a, b ScanMatch) int {
		if a.End != b.End {
			if a.End < b.End {
				return -1
			}
			return 1
		}
		return strings.Compare(a.Pattern, b.Pattern)
	})
	return dst, nil
}

// scanGroup executes one CTA group over the current basis, appending its
// filtered matches. A panic inside the kernel is contained as a typed
// internal error, mirroring Engine.Run's per-group containment.
func (ss *ScanSession) scanGroup(ctx context.Context, gi int, base, newFrom int64, dst *[]ScanMatch) (st gpusim.CTAStats, err error) {
	e := ss.e
	defer func() {
		if r := recover(); r != nil {
			err = &bgerr.InternalError{
				Op: "scan", Group: gi, Patterns: e.groups[gi].Names,
				Value: r, Stack: debug.Stack(),
			}
		}
	}()
	if err := gpusim.CheckLaunch(e.cfg.Inject, gi); err != nil {
		return st, fmt.Errorf("engine: group %d: %w", gi, err)
	}
	outs, stats, err := ss.sess[gi].Run(ctx, ss.basis)
	if err != nil {
		return st, fmt.Errorf("engine: group %d: %w", gi, err)
	}
	prog := e.groups[gi].Program
	for i, s := range outs {
		name := prog.Outputs[i].Name
		for p := s.NextSetBit(0); p >= 0; p = s.NextSetBit(p + 1) {
			abs := base + int64(p)
			// Positions inside the carried-over overlap were already
			// reported by the previous chunk.
			if abs < newFrom {
				continue
			}
			*dst = append(*dst, ScanMatch{Pattern: name, End: abs})
		}
	}
	return stats, nil
}

// Close releases every pooled buffer the session borrowed. The session must
// not be used afterwards.
func (ss *ScanSession) Close() {
	for _, ks := range ss.sess {
		ks.Close()
	}
	ss.sess = nil
	ss.tr.Close()
}
