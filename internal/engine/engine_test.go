package engine

import (
	"strings"
	"testing"

	"bitgen/internal/gpusim"
	"bitgen/internal/ir"
	"bitgen/internal/kernel"
	"bitgen/internal/lower"
	"bitgen/internal/rx"
	"bitgen/internal/transpose"
)

func mustRegexes(t *testing.T, patterns ...string) []lower.Regex {
	t.Helper()
	out := make([]lower.Regex, len(patterns))
	for i, p := range patterns {
		out[i] = lower.Regex{Name: p, AST: rx.MustParse(p)}
	}
	return out
}

var smallGrid = gpusim.Grid{CTAs: 4, Threads: 8, UnitBits: 32, UnitsPerThread: 1}

func TestCompileAndRunMatchesInterpreter(t *testing.T) {
	regexes := mustRegexes(t, "cat", "dog(gy)?", "b[ir]rd", "fi(sh)+", "h[aeiou]mster")
	cfg := BitGenDefault()
	cfg.Grid = smallGrid
	cfg.KeepOutputs = true
	e, err := Compile(regexes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte(strings.Repeat("cat doggy bird fishsh hamster hombre dog ", 25))
	res, err := e.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: single interpreter over the whole set.
	prog, err := lower.Group(regexes, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ir.Interpret(prog, transpose.Transpose(input), ir.InterpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regexes {
		if !res.Outputs[r.Name].Equal(ref.Outputs[r.Name]) {
			t.Errorf("%s diverges from interpreter", r.Name)
		}
		if res.MatchCounts[r.Name] != ref.Outputs[r.Name].Popcount() {
			t.Errorf("%s count mismatch", r.Name)
		}
	}
	if res.ThroughputMBs <= 0 {
		t.Error("no throughput modeled")
	}
}

func TestPartitionBalancesByLength(t *testing.T) {
	var regexes []lower.Regex
	for i := 0; i < 40; i++ {
		pat := strings.Repeat("a", 5+i*3)
		regexes = append(regexes, lower.Regex{Name: pat, AST: rx.MustParse(pat)})
	}
	parts := partition(regexes, 4)
	if len(parts) != 4 {
		t.Fatalf("%d parts", len(parts))
	}
	minC, maxC := parts[0].chars, parts[0].chars
	for _, p := range parts {
		if p.chars < minC {
			minC = p.chars
		}
		if p.chars > maxC {
			maxC = p.chars
		}
	}
	if float64(maxC) > 1.3*float64(minC) {
		t.Errorf("imbalanced partition: min %d, max %d", minC, maxC)
	}
}

func TestPartitionFewerRegexesThanCTAs(t *testing.T) {
	regexes := mustRegexes(t, "aa", "bb")
	parts := partition(regexes, 16)
	if len(parts) != 2 {
		t.Fatalf("%d parts, want 2", len(parts))
	}
}

func TestAblationLadderConfigs(t *testing.T) {
	// The five rows of Table 3 must all compile, run, and agree.
	regexes := mustRegexes(t, "ab(cd)*e", "xy+z", "hello", "w[aeiou]rld.*end")
	input := []byte(strings.Repeat("abcdcde xyyz hello world...end ", 30))
	configs := map[string]Config{
		"Base": {Mode: kernel.ModeBase},
		"DTM-": {Mode: kernel.ModeDTMStatic},
		"DTM":  {Mode: kernel.ModeDTM},
		"SR":   {Mode: kernel.ModeDTM, ShiftRebalancing: true, MergeSize: 8},
		"ZBS":  BitGenDefault(),
	}
	var wantCounts map[string]int
	for name, cfg := range configs {
		cfg.Grid = smallGrid
		e, err := Compile(regexes, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := e.Run(input)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if wantCounts == nil {
			wantCounts = res.MatchCounts
			continue
		}
		for k, v := range wantCounts {
			if res.MatchCounts[k] != v {
				t.Errorf("%s: count for %q = %d, want %d", name, k, res.MatchCounts[k], v)
			}
		}
	}
}

func TestOptimizationsImproveModeledTime(t *testing.T) {
	// On a shift-heavy literal workload, the full pipeline must model
	// faster than bare DTM (Figure 12's SR/ZBS gains).
	var patterns []string
	for i := 0; i < 12; i++ {
		patterns = append(patterns, strings.Repeat(string(rune('a'+i)), 1)+"bcdefgh")
	}
	regexes := mustRegexes(t, patterns...)
	input := []byte(strings.Repeat("the quick brown fox jumped over the lazy dog ", 60))
	base := Config{Mode: kernel.ModeDTM, Grid: smallGrid}
	full := BitGenDefault()
	full.Grid = smallGrid
	eBase, err := Compile(regexes, base)
	if err != nil {
		t.Fatal(err)
	}
	eFull, err := Compile(regexes, full)
	if err != nil {
		t.Fatal(err)
	}
	rBase, err := eBase.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	rFull, err := eFull.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	if rFull.Time.TotalSec >= rBase.Time.TotalSec {
		t.Errorf("optimizations did not help: %.3gs vs %.3gs", rFull.Time.TotalSec, rBase.Time.TotalSec)
	}
	if eFull.PassStats.Rewrites == 0 && eFull.PassStats.MergedGroups == 0 {
		t.Error("passes did nothing on a shift-heavy workload")
	}
}

func TestMergeSizeClampedBySharedMemory(t *testing.T) {
	cfg := Config{Device: gpusim.RTX3090, Grid: gpusim.DefaultGrid(), MergeSize: 1000}
	ms := clampMergeSize(cfg.withDefaults())
	tile := 512 * 32 / 8
	if ms != gpusim.RTX3090.SharedMemPerCTA/tile {
		t.Errorf("clamp = %d", ms)
	}
}

func TestCompileRejectsEmpty(t *testing.T) {
	if _, err := Compile(nil, BitGenDefault()); err == nil {
		t.Fatal("empty regex set accepted")
	}
}

func TestDeviceAffectsModeledTime(t *testing.T) {
	regexes := mustRegexes(t, "abcdefgh", "ijklmnop")
	input := []byte(strings.Repeat("abcdefgh ijklmnop qrstuvwx ", 40))
	t3090 := runOn(t, regexes, input, gpusim.RTX3090)
	tL40S := runOn(t, regexes, input, gpusim.L40S)
	if tL40S >= t3090 {
		t.Errorf("L40S (%.3g) not faster than 3090 (%.3g) on compute-bound work", tL40S, t3090)
	}
}

func TestExplainReport(t *testing.T) {
	regexes := mustRegexes(t, "abcdef", "g(hi)*j", "k[lm]n")
	cfg := BitGenDefault()
	cfg.Grid = smallGrid
	e, err := Compile(regexes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.Explain()
	if len(rep.Groups) != len(e.Groups()) {
		t.Fatalf("%d group reports for %d groups", len(rep.Groups), len(e.Groups()))
	}
	if rep.Totals.Shift == 0 || rep.Totals.And == 0 {
		t.Fatalf("empty totals: %+v", rep.Totals)
	}
	dynamicSeen := false
	for _, g := range rep.Groups {
		if g.Regexes == 0 || g.Stats.Total() == 0 {
			t.Errorf("group %d empty: %+v", g.Index, g)
		}
		if g.Dynamic {
			dynamicSeen = true
		}
	}
	if !dynamicSeen {
		t.Error("g(hi)*j group not flagged dynamic")
	}
	text := rep.String()
	for _, want := range []string{"CTA groups", "delta", "guards"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestSequentialFootprintAtScaleExceedsMemory(t *testing.T) {
	// Section 3.2: at the paper's scale, sequential execution's
	// materialized intermediates exceed device memory. Verify the
	// footprint arithmetic: our small run's footprint, extrapolated to
	// 256 CTAs × 1 MB inputs × a paper-sized program, crosses 24 GB.
	regexes := mustRegexes(t, "ab(cd)*e", "xy+z", "hello", "w[aeiou]rld")
	cfg := Config{Mode: kernel.ModeSequential, Grid: smallGrid, KeepOutputs: false}
	e, err := Compile(regexes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte(strings.Repeat("hello world xyz abcdcde ", 50))
	res, err := e.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntermediateFootprintBytes <= 0 {
		t.Fatal("sequential run reported no intermediate footprint")
	}
	if res.ExceedsDeviceMemory {
		t.Fatal("tiny run cannot exceed 24GB")
	}
	// Extrapolation: intermediates per CTA here × 256 CTAs × (1 MB / 8)
	// bytes per stream, with a paper-sized program (~318 intermediates).
	paperFootprint := int64(318) * 256 * (1_000_000 / 8)
	if paperFootprint < 10e9 {
		t.Fatalf("expected >10GB at paper scale, got %d", paperFootprint)
	}
	// DTM has no materialized intermediates at all.
	cfgDTM := cfg
	cfgDTM.Mode = kernel.ModeDTM
	eDTM, err := Compile(regexes, cfgDTM)
	if err != nil {
		t.Fatal(err)
	}
	resDTM, err := eDTM.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	if resDTM.IntermediateFootprintBytes != 0 {
		t.Fatalf("DTM footprint = %d, want 0", resDTM.IntermediateFootprintBytes)
	}
}

func TestRunMultiMIMD(t *testing.T) {
	regexes := mustRegexes(t, "cat", "d[ou]g")
	cfg := BitGenDefault()
	cfg.Grid = smallGrid
	e, err := Compile(regexes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{
		[]byte(strings.Repeat("cat dog ", 40)),
		[]byte(strings.Repeat("dug cot ", 40)),
		[]byte(strings.Repeat("no pets ", 40)),
	}
	multi, err := e.RunMulti(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.PerStream) != 3 {
		t.Fatalf("%d streams", len(multi.PerStream))
	}
	if multi.PerStream[0].MatchCounts["cat"] != 40 || multi.PerStream[0].MatchCounts["d[ou]g"] != 40 {
		t.Errorf("stream 0 counts = %v", multi.PerStream[0].MatchCounts)
	}
	if multi.PerStream[1].MatchCounts["cat"] != 0 || multi.PerStream[1].MatchCounts["d[ou]g"] != 40 {
		t.Errorf("stream 1 counts = %v", multi.PerStream[1].MatchCounts)
	}
	if multi.PerStream[2].TotalMatches != 0 {
		t.Errorf("stream 2 matched %d", multi.PerStream[2].TotalMatches)
	}
	// The combined launch must model at least one stream's time, and the
	// aggregate throughput must exceed a single stream's (more resident
	// CTAs amortize the device).
	single, err := e.Run(inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	if multi.Time.TotalSec < single.Time.TotalSec*0.99 {
		t.Errorf("multi time %.3g below single-stream time %.3g", multi.Time.TotalSec, single.Time.TotalSec)
	}
	if multi.ThroughputMBs <= single.ThroughputMBs {
		t.Errorf("MIMD aggregate throughput %.1f not above single %.1f",
			multi.ThroughputMBs, single.ThroughputMBs)
	}
}

func runOn(t *testing.T, regexes []lower.Regex, input []byte, d gpusim.Device) float64 {
	t.Helper()
	cfg := BitGenDefault()
	cfg.Grid = smallGrid
	cfg.Device = d
	e, err := Compile(regexes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	return res.Time.TotalSec
}
