// Package arena provides sync.Pool-backed scratch buffer pools for the
// engine's hot paths: transpose basis words, kernel stream and window
// scratch, carry buffers, and the streaming scanner's chunk byte buffers.
//
// Buffers are pooled by power-of-two size class, so a steady-state scan of
// a long stream — where every chunk has the same size — recycles the same
// handful of buffers and performs zero heap allocations per chunk.
//
// The API hands out *Words / *Bytes handles rather than bare slices: a
// sync.Pool stores interface values, so pooling a slice directly would box
// its header on every Put. The handle is part of the pooled object, making
// Get/Put allocation-free in steady state.
//
// Every Get and Put is counted. Tests assert Gets == Puts after a scan
// completes (including cancelled ones) to prove no pooled buffer leaks.
package arena

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// maxClass bounds the size classes: class c holds buffers of capacity
// 1<<c elements, up to 1<<31.
const maxClass = 32

// Words is a pooled []uint64 scratch buffer. W is sized to the requested
// length; its capacity is the size class. Do not grow W past cap.
type Words struct {
	W     []uint64
	class int8
}

// Bytes is a pooled []byte scratch buffer. B is sized to the requested
// length; its capacity is the size class. Do not grow B past cap.
type Bytes struct {
	B     []byte
	class int8
}

// Arena is a set of size-classed buffer pools. The zero value is ready to
// use. An Arena may be shared by any number of goroutines.
type Arena struct {
	words [maxClass]sync.Pool
	bytes [maxClass]sync.Pool
	gets  atomic.Int64
	puts  atomic.Int64
}

// Default is the process-wide arena used when no explicit arena is wired.
var Default = &Arena{}

// classFor returns the smallest power-of-two class holding n elements.
func classFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// GetWords returns a word buffer with len(h.W) == n. Contents are
// unspecified; call Zero for a cleared buffer.
func (a *Arena) GetWords(n int) *Words {
	c := classFor(n)
	a.gets.Add(1)
	if h, _ := a.words[c].Get().(*Words); h != nil {
		h.W = h.W[:n]
		return h
	}
	return &Words{W: make([]uint64, n, 1<<c), class: int8(c)}
}

// PutWords returns h to its pool. h must not be used afterwards.
func (a *Arena) PutWords(h *Words) {
	if h == nil {
		return
	}
	a.puts.Add(1)
	a.words[h.class].Put(h)
}

// Zero clears the buffer in place and returns it.
func (h *Words) Zero() *Words {
	clear(h.W)
	return h
}

// GetBytes returns a byte buffer with len(h.B) == n. Contents are
// unspecified.
func (a *Arena) GetBytes(n int) *Bytes {
	c := classFor(n)
	a.gets.Add(1)
	if h, _ := a.bytes[c].Get().(*Bytes); h != nil {
		h.B = h.B[:n]
		return h
	}
	return &Bytes{B: make([]byte, n, 1<<c), class: int8(c)}
}

// PutBytes returns h to its pool. h must not be used afterwards.
func (a *Arena) PutBytes(h *Bytes) {
	if h == nil {
		return
	}
	a.puts.Add(1)
	a.bytes[h.class].Put(h)
}

// Stats reports the cumulative Get and Put counts. A balanced arena
// (gets == puts) holds no outstanding buffers.
func (a *Arena) Stats() (gets, puts int64) {
	return a.gets.Load(), a.puts.Load()
}

// CheckBalanced returns an error naming the imbalance when outstanding
// buffers exist — the leak assertion used by the streaming tests.
func (a *Arena) CheckBalanced() error {
	gets, puts := a.Stats()
	if gets != puts {
		return fmt.Errorf("arena: %d buffers outstanding (%d gets, %d puts)", gets-puts, gets, puts)
	}
	return nil
}

// Tracker accumulates handles so a component can release everything it
// borrowed with one Close — the ownership pattern the kernel sessions use
// for their long-lived scratch.
type Tracker struct {
	a     *Arena
	words []*Words
	bytes []*Bytes
}

// NewTracker returns a tracker borrowing from a (Default when nil).
func NewTracker(a *Arena) *Tracker {
	if a == nil {
		a = Default
	}
	return &Tracker{a: a}
}

// Words borrows a word buffer of length n, released at Close.
func (t *Tracker) Words(n int) []uint64 {
	h := t.a.GetWords(n)
	t.words = append(t.words, h)
	return h.W
}

// Bytes borrows a byte buffer of length n, released at Close.
func (t *Tracker) Bytes(n int) []byte {
	h := t.a.GetBytes(n)
	t.bytes = append(t.bytes, h)
	return h.B
}

// Close returns every borrowed buffer to the arena. The tracker may be
// reused afterwards.
func (t *Tracker) Close() {
	for i, h := range t.words {
		t.a.PutWords(h)
		t.words[i] = nil
	}
	t.words = t.words[:0]
	for i, h := range t.bytes {
		t.a.PutBytes(h)
		t.bytes[i] = nil
	}
	t.bytes = t.bytes[:0]
}
