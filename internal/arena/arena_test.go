package arena

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 64: 6, 65: 7, 1 << 20: 20}
	for n, want := range cases {
		if got := classFor(n); got != want {
			t.Errorf("classFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	a := &Arena{}
	w := a.GetWords(100)
	if len(w.W) != 100 || cap(w.W) != 128 {
		t.Fatalf("GetWords(100): len=%d cap=%d", len(w.W), cap(w.W))
	}
	w.W[0] = 42
	a.PutWords(w)
	// Same class is recycled; a different length re-slices the same buffer.
	w2 := a.GetWords(70)
	if len(w2.W) != 70 {
		t.Fatalf("GetWords(70): len=%d", len(w2.W))
	}
	a.PutWords(w2)
	b := a.GetBytes(1000)
	if len(b.B) != 1000 || cap(b.B) != 1024 {
		t.Fatalf("GetBytes(1000): len=%d cap=%d", len(b.B), cap(b.B))
	}
	a.PutBytes(b)
	if err := a.CheckBalanced(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckBalancedReportsLeak(t *testing.T) {
	a := &Arena{}
	h := a.GetWords(8)
	if err := a.CheckBalanced(); err == nil {
		t.Fatal("expected imbalance error")
	}
	a.PutWords(h)
	if err := a.CheckBalanced(); err != nil {
		t.Fatal(err)
	}
}

func TestZero(t *testing.T) {
	a := &Arena{}
	w := a.GetWords(16)
	for i := range w.W {
		w.W[i] = ^uint64(0)
	}
	w.Zero()
	for i, x := range w.W {
		if x != 0 {
			t.Fatalf("word %d not cleared", i)
		}
	}
	a.PutWords(w)
}

func TestTracker(t *testing.T) {
	a := &Arena{}
	tr := NewTracker(a)
	_ = tr.Words(64)
	_ = tr.Words(128)
	_ = tr.Bytes(32)
	if err := a.CheckBalanced(); err == nil {
		t.Fatal("tracker buffers should be outstanding before Close")
	}
	tr.Close()
	if err := a.CheckBalanced(); err != nil {
		t.Fatal(err)
	}
	// Tracker is reusable.
	_ = tr.Words(64)
	tr.Close()
	if err := a.CheckBalanced(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentGetPut(t *testing.T) {
	a := &Arena{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w := a.GetWords(512)
				w.W[0] = uint64(i)
				b := a.GetBytes(4096)
				b.B[0] = byte(i)
				a.PutBytes(b)
				a.PutWords(w)
			}
		}()
	}
	wg.Wait()
	if err := a.CheckBalanced(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkGetPut proves steady-state Get/Put allocates nothing.
func BenchmarkGetPut(b *testing.B) {
	a := &Arena{}
	// Warm the pool.
	a.PutWords(a.GetWords(1 << 12))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := a.GetWords(1 << 12)
		a.PutWords(w)
	}
}
