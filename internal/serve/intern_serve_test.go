package serve

import (
	"fmt"
	"net/http"
	"testing"

	"bitgen/internal/intern"
)

// TestCachedEnginesShareInternedBlocks: two cached engines whose pattern
// sets overlap hold one canonical copy of the overlapping group's packed
// program, the resident gauge charges it once, and eviction releases the
// block only when its last referencing engine leaves the cache.
func TestCachedEnginesShareInternedBlocks(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxCachedEngines: 2})
	post := func(patterns string) {
		t.Helper()
		body := fmt.Sprintf(`{"patterns":[%s],"input":"abcabcx"}`, patterns)
		if code, _, er := postMatch(t, hs.URL, body); code != http.StatusOK {
			t.Fatalf("request %s failed: %d %v", patterns, code, er)
		}
	}
	// keysOf finds the cached entry containing the distinguishing pattern.
	keysOf := func(distinct string) []intern.Key {
		s.cache.mu.Lock()
		defer s.cache.mu.Unlock()
		for _, e := range s.cache.entries {
			for _, p := range e.patterns {
				if p == distinct {
					return append([]intern.Key(nil), e.blockKeys...)
				}
			}
		}
		return nil
	}

	// Disjoint alphabets within each set keep the shared-class basis out
	// of the picture, so the overlapping pattern "abcabc" lowers to the
	// same packed group program in both engines.
	post(`"abcabc","xyzxyz"`)
	post(`"abcabc","qrsqrs"`)
	k1 := keysOf("xyzxyz")
	k2 := keysOf("qrsqrs")
	if len(k1) == 0 || len(k2) == 0 {
		t.Fatalf("expected interned blocks on both entries, got %d and %d", len(k1), len(k2))
	}
	in2 := make(map[intern.Key]bool, len(k2))
	for _, k := range k2 {
		in2[k] = true
	}
	var shared []intern.Key
	for _, k := range k1 {
		if in2[k] {
			shared = append(shared, k)
		}
	}
	if len(shared) != 1 {
		t.Fatalf("engines share %d blocks, want exactly 1 (the abcabc group)", len(shared))
	}
	sk := shared[0]
	if got := s.cache.blocks.Refs(sk); got != 2 {
		t.Fatalf("shared block refs = %d, want 2", got)
	}
	// Four groups total across both engines, three distinct blocks.
	if got := s.cache.blocks.Blocks(); got != 3 {
		t.Fatalf("distinct blocks = %d, want 3", got)
	}

	// Gauge invariant under sharing: private bytes per entry plus each
	// distinct block once.
	gauge := s.Metrics().Snapshot().Gauges["bitgen_serve_engine_cache_resident_bytes"]
	s.cache.mu.Lock()
	var private int64
	for _, e := range s.cache.entries {
		private += e.bytes
	}
	invariant := float64(private) + float64(s.cache.blocks.SharedBytes())
	s.cache.mu.Unlock()
	if gauge != invariant {
		t.Fatalf("resident gauge = %v, want private+shared = %v", gauge, invariant)
	}

	// Evicting the first engine (LRU) drops its references but keeps the
	// still-shared block resident; evicting the second frees it.
	post(`"mmmnnn"`)
	if got := s.cache.blocks.Refs(sk); got != 1 {
		t.Fatalf("after first evict: shared block refs = %d, want 1", got)
	}
	post(`"pppooo"`)
	if got := s.cache.blocks.Refs(sk); got != 0 {
		t.Fatalf("after second evict: shared block refs = %d, want 0 (freed)", got)
	}
}
