package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"bitgen"
	"bitgen/internal/cli"
	"bitgen/internal/cluster"
	"bitgen/internal/faultinject"
	"bitgen/internal/obs"
	"bitgen/internal/snapshot"
)

// Config tunes one Server. Zero fields take the documented defaults.
type Config struct {
	// MaxCachedEngines bounds the compiled-engine LRU cache (default 32).
	MaxCachedEngines int
	// MaxQueue bounds how many admitted requests may wait for an
	// execution slot before new ones are rejected with 429 (default 64).
	MaxQueue int
	// MaxConcurrent bounds requests executing at once (default
	// 2*GOMAXPROCS).
	MaxConcurrent int
	// MaxBatch bounds how many same-engine match requests one RunMulti
	// launch coalesces (default 16).
	MaxBatch int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (default 10s); MaxTimeout caps client-requested timeouts (default
	// 30s) so no request — local or forwarded from a peer — can pin an
	// execution slot indefinitely.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes caps a /v1/match request body (default 8 MiB).
	// /v1/scan bodies stream unbounded; the engine's per-chunk
	// Limits.MaxInputBytes still applies to every chunk.
	MaxBodyBytes int64
	// MaxScanForwardBytes bounds how much of a /v1/scan body is buffered
	// for cluster forwarding (default 1 MiB): buffered bodies can be
	// replayed across hedged attempts, larger streams are served locally.
	MaxScanForwardBytes int64
	// Engine is the base bitgen.Options every compiled engine starts
	// from; per-request knobs (fold_case) overlay it and Observability
	// is always enabled so /metrics?set= and /trace?set= have data.
	Engine bitgen.Options
	// SnapshotDir, when set, enables engine persistence: compiled engines
	// are saved there write-behind, the cache warm-starts from it at boot,
	// and /v1/snapshot serves its contents to cluster peers. Empty
	// disables persistence entirely.
	SnapshotDir string
	// SnapshotScrubInterval paces the background integrity scrubber over
	// SnapshotDir (default 1m when persistence is on; negative disables
	// the scrubber, ScrubNow still works).
	SnapshotScrubInterval time.Duration
	// Inject arms deterministic persistence faults on the snapshot store
	// (tests and bitgend -selftest).
	Inject *faultinject.Injector
	// BundleDir, when set, enables the anomaly flight recorder's disk
	// dumps: on a breaker open, snapshot quarantine, degraded serve or
	// SLO fast burn (and on GET /debug/bundle), a diagnostic bundle —
	// recent request spans, the event ring, a metrics snapshot, the SLO
	// report and a goroutine dump — is written there as a single
	// integrity-checksummed JSON file. Empty disables disk dumps; the
	// /debug/bundle endpoint still serves bundles inline.
	BundleDir string
	// BundleMinInterval rate-limits anomaly-triggered bundle dumps
	// (default 30s; negative disables anomaly dumps, manual /debug/bundle
	// dumps still work).
	BundleMinInterval time.Duration
	// SLOMatchP99 / SLOScanP99 are the per-endpoint latency objectives: a
	// request slower than its endpoint's objective spends error budget
	// even when it succeeds (defaults 250ms / 2s; negative disables the
	// latency criterion for that endpoint).
	SLOMatchP99 time.Duration
	SLOScanP99  time.Duration
	// SLOAvailability is the good-request objective shared by both
	// endpoints (default 0.999 — an error budget of 0.1%).
	SLOAvailability float64
	// SLOFastBurnThreshold is the fast-window burn rate that flags an
	// anomaly (default 14.4).
	SLOFastBurnThreshold float64
	// EventCapacity / FlightCapacity size the structured-event ring and
	// the request-span flight-recorder ring (defaults
	// obs.DefaultEventCapacity / obs.DefaultSpanCapacity).
	EventCapacity  int
	FlightCapacity int
	// tuneSLO, when set (tests), adjusts the SLO tracker's window
	// configuration before construction.
	tuneSLO func(*obs.SLOConfig)
}

func (c Config) withDefaults() Config {
	if c.MaxCachedEngines <= 0 {
		c.MaxCachedEngines = 32
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxScanForwardBytes <= 0 {
		c.MaxScanForwardBytes = 1 << 20
	}
	if c.BundleMinInterval == 0 {
		c.BundleMinInterval = 30 * time.Second
	}
	if c.SLOMatchP99 == 0 {
		c.SLOMatchP99 = 250 * time.Millisecond
	}
	if c.SLOScanP99 == 0 {
		c.SLOScanP99 = 2 * time.Second
	}
	if c.SLOAvailability <= 0 || c.SLOAvailability >= 1 {
		c.SLOAvailability = obs.DefaultAvailability
	}
	if c.SLOFastBurnThreshold <= 0 {
		c.SLOFastBurnThreshold = obs.DefaultFastBurnThreshold
	}
	if c.EventCapacity <= 0 {
		c.EventCapacity = obs.DefaultEventCapacity
	}
	if c.FlightCapacity <= 0 {
		c.FlightCapacity = obs.DefaultSpanCapacity
	}
	return c
}

// Server is the multi-tenant matching service: engine cache, bounded
// admission, batch coalescing, graceful drain. Create with New, mount
// Handler on an http.Server, call Drain on shutdown.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	cache *registry
	mux   *http.ServeMux

	baseCtx context.Context
	cancel  context.CancelFunc

	slots chan struct{}

	mu         sync.Mutex
	waiting    int
	active     int
	draining   bool
	idleClosed bool
	idle       chan struct{}

	inFlight   *obs.Gauge
	queueDepth *obs.Gauge

	// snap is the engine persistence store; nil when SnapshotDir is unset.
	snap *snapshot.Store

	// cluster, when non-nil, routes pattern-set keys across replicas;
	// ctrace records the cluster layer's per-forward spans.
	cluster *cluster.Router
	ctrace  *obs.Tracer

	// Observability plane: the structured event log, the request-span
	// flight recorder, and the SLO tracker. All three are always on —
	// they are rings, not I/O — and feed /v1/trace/{id}, /v1/slo and the
	// anomaly bundle dumps.
	events *obs.EventLog
	flight *obs.SpanStore
	slo    *obs.SLO

	// Anomaly bundle state: lastBundleUnixNano rate-limits triggered
	// dumps, bundleBusy collapses concurrent triggers into one writer.
	lastBundleUnixNano int64 // atomic
	bundleBusy         int32 // atomic

	// batchRun, when non-nil, replaces an engine's RunMultiContext as the
	// batch executor — a test seam for deterministic coalescing.
	batchRun func(eng *bitgen.Engine) func(ctx context.Context, inputs [][]byte) (*bitgen.MultiResult, error)
}

// New builds a Server. The returned server owns a background context for
// batch loops and singleflight compiles; Drain (or Close) releases it.
// New fails only when SnapshotDir is set but unusable — a server that
// cannot honor its persistence contract should not boot.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		reg:     obs.NewRegistry(),
		mux:     http.NewServeMux(),
		baseCtx: ctx,
		cancel:  cancel,
		slots:   make(chan struct{}, cfg.MaxConcurrent),
		idle:    make(chan struct{}),
	}
	s.flight = obs.NewSpanStore(cfg.FlightCapacity)
	s.events = obs.NewEventLog(obs.EventLogConfig{
		Capacity: cfg.EventCapacity,
		Metrics:  s.reg,
		OnEvent:  s.onAnomalyEvent,
	})
	sloCfg := obs.SLOConfig{
		Objectives: map[string]obs.SLOObjective{
			"match": {LatencyP99: cfg.SLOMatchP99, Availability: cfg.SLOAvailability},
			"scan":  {LatencyP99: cfg.SLOScanP99, Availability: cfg.SLOAvailability},
		},
		FastBurnThreshold: cfg.SLOFastBurnThreshold,
		Metrics:           s.reg,
		OnFastBurn:        s.onFastBurn,
	}
	if cfg.tuneSLO != nil {
		cfg.tuneSLO(&sloCfg)
	}
	s.slo = obs.NewSLO(sloCfg)
	s.cache = newRegistry(cfg.MaxCachedEngines, s.reg, s.buildEngine)
	s.cache.events = s.events

	// Register every serve family eagerly so a scrape before the first
	// request still exposes the full schema.
	for _, ep := range []string{"match", "scan"} {
		s.reg.Counter(obs.MServeRequests, obs.HServeRequests, obs.L("endpoint", ep))
		s.reg.Counter(obs.MServeErrors, obs.HServeErrors, obs.L("endpoint", ep))
	}
	s.reg.Counter(obs.MServeRejected, obs.HServeRejected)
	s.inFlight = s.reg.Gauge(obs.MServeInFlight, obs.HServeInFlight)
	s.queueDepth = s.reg.Gauge(obs.MServeQueueDepth, obs.HServeQueueDepth)
	s.reg.Counter(obs.MServeCacheHits, obs.HServeCacheHits)
	s.reg.Counter(obs.MServeCacheMisses, obs.HServeCacheMisses)
	s.reg.Counter(obs.MServeCacheEvictions, obs.HServeCacheEvictions)
	s.reg.Counter(obs.MServeCompiles, obs.HServeCompiles)
	s.reg.Counter(obs.MServeBatches, obs.HServeBatches)
	s.reg.Counter(obs.MServeBatchedRequests, obs.HServeBatchedRequests)
	s.reg.Counter(obs.MServeDrains, obs.HServeDrains)
	s.reg.Counter(obs.MSnapLoads, obs.HSnapLoads)
	s.reg.Counter(obs.MSnapWarmStarts, obs.HSnapWarmStarts)
	s.reg.Counter(obs.MSnapPeerFetches, obs.HSnapPeerFetches)
	s.reg.Counter(obs.MSnapPeerFetchErrors, obs.HSnapPeerFetchErrors)
	for _, reason := range []string{
		snapshot.ReasonCorrupt, snapshot.ReasonTruncate, snapshot.ReasonVersion,
		snapshot.ReasonOptions, snapshot.ReasonKey, snapshot.ReasonStoreIO,
	} {
		s.reg.Counter(obs.MSnapVerifyFailures, obs.HSnapVerifyFailures, obs.L("reason", reason))
	}
	for _, trigger := range []string{
		triggerManual, triggerBreakerOpen, triggerQuarantine, triggerDegraded, triggerFastBurn,
	} {
		s.reg.Counter(obs.MObsBundleWrites, obs.HObsBundleWrites, obs.L("trigger", trigger))
	}
	s.reg.Counter(obs.MObsBundleErrors, obs.HObsBundleErrors)
	s.reg.Gauge(obs.MObsBundleBytes, obs.HObsBundleBytes)

	if cfg.BundleDir != "" {
		if err := os.MkdirAll(cfg.BundleDir, 0o755); err != nil {
			cancel()
			return nil, fmt.Errorf("bundle dir: %w", err)
		}
	}

	if cfg.SnapshotDir != "" {
		store, err := snapshot.NewStore(cfg.SnapshotDir, s.reg, cfg.Inject)
		if err != nil {
			cancel()
			return nil, err
		}
		s.snap = store
		s.warmStart()
		if cfg.SnapshotScrubInterval >= 0 {
			interval := cfg.SnapshotScrubInterval
			if interval == 0 {
				interval = time.Minute
			}
			go s.scrubLoop(interval)
		}
	}

	s.mux.HandleFunc("/v1/match", s.handleMatch)
	s.mux.HandleFunc("/v1/scan", s.handleScan)
	s.mux.HandleFunc("/v1/sets", s.handleSets)
	s.mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/v1/cluster", s.handleCluster)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/v1/trace/", s.handleTraceFragment)
	s.mux.HandleFunc("/v1/slo", s.handleSLO)
	s.mux.HandleFunc("/debug/bundle", s.handleBundle)
	return s, nil
}

// EnableCluster wires consistent-hash routing across the configured
// replicas. Call once, before serving traffic. The router registers its
// cluster.* families into this server's registry and records per-forward
// spans on a dedicated tracer (exported via /trace?cluster=1).
func (s *Server) EnableCluster(cc cluster.Config) error {
	s.ctrace = obs.NewTracer(obs.TracerConfig{})
	r, err := cluster.New(cc, &obs.Observer{Tracer: s.ctrace, Metrics: s.reg, Events: s.events, Spans: s.flight})
	if err != nil {
		s.ctrace = nil
		return err
	}
	s.cluster = r
	return nil
}

// Cluster returns the router, or nil when cluster mode is off.
func (s *Server) Cluster() *cluster.Router { return s.cluster }

// Handler returns the service's HTTP handler, wrapped in the
// observability middleware: every request gets a trace context (parsed
// from X-Bitgen-Trace or minted), a flight-recorder span, and — for the
// match/scan endpoints — an SLO observation.
func (s *Server) Handler() http.Handler { return s.withObs(s.mux) }

// Events returns the structured event log (tests and bundle dumps).
func (s *Server) Events() *obs.EventLog { return s.events }

// Flight returns the request-span flight recorder.
func (s *Server) Flight() *obs.SpanStore { return s.flight }

// Metrics returns the serve-layer registry (for tests and expvar export).
func (s *Server) Metrics() *obs.Registry { return s.reg }

func (s *Server) engineOptions(foldCase bool) bitgen.Options {
	o := s.cfg.Engine
	o.FoldCase = foldCase
	o.Observability = &bitgen.ObservabilityOptions{Metrics: true, Trace: true}
	return o
}

// batcherFor lazily starts the entry's batch loop; the test seam
// batchRun substitutes the executor when set.
func (s *Server) batcherFor(e *entry) *batcher {
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	if e.batcher == nil {
		run := e.eng.RunMultiContext
		if s.batchRun != nil {
			run = s.batchRun(e.eng)
		}
		e.batcher = newBatcher(s.baseCtx, s.cfg.MaxBatch, s.cfg.MaxQueue, s.reg, run)
	}
	return e.batcher
}

// Draining reports whether a drain has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain starts a graceful drain: new requests are rejected with 503 (and
// /healthz flips to 503, so load balancers stop routing), in-flight
// requests run to completion, then batch loops stop and the server
// context is canceled. Returns ctx.Err() if ctx expires first; the drain
// state persists either way.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.reg.Counter(obs.MServeDrains, obs.HServeDrains).Inc()
	}
	s.maybeIdleLocked()
	s.mu.Unlock()

	select {
	case <-s.idle:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.cache.stopAll()
	s.cancel()
	return nil
}

// Close releases the server immediately without waiting for in-flight
// requests (tests; production should Drain).
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.maybeIdleLocked()
	s.mu.Unlock()
	s.cache.stopAll()
	s.cancel()
}

func (s *Server) maybeIdleLocked() {
	if s.draining && s.active == 0 && !s.idleClosed {
		s.idleClosed = true
		close(s.idle)
	}
}

var (
	errDraining  = errors.New("server is draining")
	errQueueFull = errors.New("admission queue is full")
)

// admit applies the bounded admission queue: reject while draining,
// reject when MaxQueue requests already wait, otherwise wait for one of
// MaxConcurrent execution slots. On success the returned release func
// must be called exactly once.
func (s *Server) admit(ctx context.Context) (release func(), status int, err error) {
	rejected := func() { s.reg.Counter(obs.MServeRejected, obs.HServeRejected).Inc() }
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		rejected()
		return nil, http.StatusServiceUnavailable, errDraining
	}
	if s.waiting >= s.cfg.MaxQueue {
		s.mu.Unlock()
		rejected()
		return nil, http.StatusTooManyRequests, errQueueFull
	}
	s.waiting++
	s.queueDepth.Set(float64(s.waiting))
	s.mu.Unlock()

	var acquired bool
	select {
	case s.slots <- struct{}{}:
		acquired = true
	case <-ctx.Done():
	case <-s.baseCtx.Done():
	}

	s.mu.Lock()
	s.waiting--
	s.queueDepth.Set(float64(s.waiting))
	if acquired && s.draining {
		// Drained while waiting for a slot: give it back and reject.
		<-s.slots
		acquired = false
		s.mu.Unlock()
		rejected()
		return nil, http.StatusServiceUnavailable, errDraining
	}
	if !acquired {
		s.mu.Unlock()
		if s.baseCtx.Err() != nil {
			rejected()
			return nil, http.StatusServiceUnavailable, errDraining
		}
		return nil, http.StatusGatewayTimeout, fmt.Errorf("timed out waiting for an execution slot: %w", ctx.Err())
	}
	s.active++
	s.mu.Unlock()
	s.inFlight.Add(1)
	return func() {
		<-s.slots
		s.inFlight.Add(-1)
		s.mu.Lock()
		s.active--
		s.maybeIdleLocked()
		s.mu.Unlock()
	}, 0, nil
}

// requestCtx derives the per-request deadline: the client's timeout_ms
// (default DefaultTimeout), tightened by a peer-propagated deadline on
// forwarded requests, and always capped at MaxTimeout — a forwarded
// request can never pin a cluster slot longer than the server allows.
func (s *Server) requestCtx(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if h := r.Header.Get(cluster.HeaderDeadlineMS); h != "" {
		if ms, err := strconv.Atoi(h); err == nil && ms > 0 {
			if hd := time.Duration(ms) * time.Millisecond; hd < d || timeoutMS <= 0 {
				d = hd
			}
		}
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// ---- wire types ----

type matchRequest struct {
	// Patterns is the pattern set; duplicates are legal and report
	// per-index results, exactly like the library.
	Patterns []string `json:"patterns"`
	// Input is the text to scan; InputBase64 carries binary input and
	// wins when both are set.
	Input       string `json:"input"`
	InputBase64 string `json:"input_base64"`
	FoldCase    bool   `json:"fold_case"`
	TimeoutMS   int    `json:"timeout_ms"`
	CountOnly   bool   `json:"count_only"`
}

type jsonMatch struct {
	Pattern string `json:"pattern"`
	Index   int    `json:"index"`
	End     int    `json:"end"`
}

type matchResponse struct {
	Set         string         `json:"set"`
	Cache       string         `json:"cache"` // "hit" or "miss"
	Backend     string         `json:"backend,omitempty"`
	Matches     []jsonMatch    `json:"matches"`
	Counts      map[string]int `json:"counts"`
	IndexCounts []int          `json:"index_counts"`
}

type scanTrailer struct {
	Done    bool   `json:"done"`
	Matches int    `json:"matches"`
	Error   string `json:"error,omitempty"`
}

type errorResponse struct {
	Error  string `json:"error"`
	Class  string `json:"class"`
	Detail string `json:"detail,omitempty"`
}

// classOf maps the bitgen error taxonomy to a stable wire token.
func classOf(err error, compileStage bool) string {
	switch {
	case errors.Is(err, bitgen.ErrLimit):
		return "limit"
	case errors.Is(err, bitgen.ErrUnsupported):
		return "unsupported"
	case errors.Is(err, bitgen.ErrCanceled):
		return "canceled"
	case errors.As(err, new(*bitgen.InternalError)):
		return "internal"
	case compileStage:
		return "parse"
	default:
		return "internal"
	}
}

// statusOf maps the taxonomy to HTTP statuses: limit→413,
// unsupported/parse→400, canceled/deadline→504, internal→500.
func statusOf(err error, compileStage bool) int {
	switch classOf(err, compileStage) {
	case "limit":
		return http.StatusRequestEntityTooLarge
	case "unsupported", "parse":
		return http.StatusBadRequest
	case "canceled":
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// fail reports a request error: counts it, then writes the JSON error
// body with the taxonomy class and the human description the CLI uses.
func (s *Server) fail(w http.ResponseWriter, endpoint string, status int, err error, compileStage bool) {
	s.reg.Counter(obs.MServeErrors, obs.HServeErrors, obs.L("endpoint", endpoint)).Inc()
	writeJSON(w, status, errorResponse{
		Error:  err.Error(),
		Class:  classOf(err, compileStage),
		Detail: cli.Describe(err),
	})
}

// Back-off hints for rejected requests: a full queue usually clears
// within a batch launch or two (1s), a drain means this replica is going
// away and clients should re-resolve (5s). Clients and bitload honor
// Retry-After; the cluster router fails straight over to the successor
// instead of waiting.
const (
	retryAfterQueueFull = "1"
	retryAfterDraining  = "5"
)

// reject writes an admission rejection (queue full or draining); admit
// already counted it in MServeRejected. 429 and 503 carry a Retry-After
// header so well-behaved clients back off instead of hammering.
func (s *Server) reject(w http.ResponseWriter, endpoint string, status int, err error) {
	s.reg.Counter(obs.MServeErrors, obs.HServeErrors, obs.L("endpoint", endpoint)).Inc()
	class := "rejected"
	if errors.Is(err, bitgen.ErrCanceled) || status == http.StatusGatewayTimeout {
		class = "canceled"
	}
	switch status {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", retryAfterQueueFull)
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", retryAfterDraining)
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), Class: class})
}

// ---- handlers ----

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter(obs.MServeRequests, obs.HServeRequests, obs.L("endpoint", "match")).Inc()
	if r.Method != http.MethodPost {
		s.fail(w, "match", http.StatusMethodNotAllowed, errors.New("POST required"), false)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		st := http.StatusBadRequest
		if errors.As(err, new(*http.MaxBytesError)) {
			st = http.StatusRequestEntityTooLarge
		}
		s.fail(w, "match", st, err, false)
		return
	}
	var req matchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.fail(w, "match", http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err), false)
		return
	}
	if len(req.Patterns) == 0 {
		s.fail(w, "match", http.StatusBadRequest, errors.New("patterns must be non-empty"), false)
		return
	}
	input := []byte(req.Input)
	if req.InputBase64 != "" {
		input, err = base64.StdEncoding.DecodeString(req.InputBase64)
		if err != nil {
			s.fail(w, "match", http.StatusBadRequest, fmt.Errorf("invalid input_base64: %w", err), false)
			return
		}
	}

	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	opts := s.engineOptions(req.FoldCase)
	key := bitgen.PatternSetKey(req.Patterns, &opts)

	// Cluster routing happens BEFORE admission: forwarding proxies I/O,
	// not engine work, so it must never hold an execution slot — a
	// saturated cluster whose slots are all held by forwards waiting in
	// each other's admission queues starves itself. Only requests that
	// execute locally (owned keys, received forwards, degraded fallbacks)
	// pass through admit.
	if s.cluster != nil {
		if r.Header.Get(cluster.HeaderForwarded) == "1" {
			// A peer already routed this here: serve it, never re-forward.
			s.cluster.NoteReceivedForward()
		} else if route := s.cluster.Route(key); route.SelfOwner {
			s.cluster.NoteLocal()
		} else if s.Draining() {
			s.reg.Counter(obs.MServeRejected, obs.HServeRejected).Inc()
			s.reject(w, "match", http.StatusServiceUnavailable, errDraining)
			return
		} else if res, ok := s.cluster.Forward(ctx, route, "/v1/match", "application/json", body, false); ok {
			if res.ContentType != "" {
				w.Header().Set("Content-Type", res.ContentType)
			}
			w.WriteHeader(res.Status)
			_, _ = w.Write(res.Body)
			return
		}
		// Forward exhausted every remote candidate (counted as a standby
		// or degraded serve): fall through and compile locally.
	}

	release, status, err := s.admit(r.Context())
	if err != nil {
		s.reject(w, "match", status, err)
		return
	}
	defer release()

	e, hit, err := s.cache.get(ctx, key, req.Patterns, req.FoldCase)
	if err != nil {
		s.fail(w, "match", statusOf(err, true), err, true)
		return
	}

	res, err := s.batcherFor(e).submit(ctx, input)
	if err != nil {
		s.fail(w, "match", statusOf(err, false), err, false)
		return
	}

	resp := matchResponse{
		Set:         key,
		Cache:       "miss",
		Backend:     res.Backend,
		Counts:      res.Counts,
		IndexCounts: res.IndexCounts,
	}
	if hit {
		resp.Cache = "hit"
	}
	if !req.CountOnly {
		resp.Matches = make([]jsonMatch, len(res.Matches))
		for i, m := range res.Matches {
			resp.Matches[i] = jsonMatch{Pattern: m.Pattern, Index: m.Index, End: m.End}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter(obs.MServeRequests, obs.HServeRequests, obs.L("endpoint", "scan")).Inc()
	if r.Method != http.MethodPost {
		s.fail(w, "scan", http.StatusMethodNotAllowed, errors.New("POST required"), false)
		return
	}
	q := r.URL.Query()
	patterns := q["pattern"]
	if len(patterns) == 0 {
		s.fail(w, "scan", http.StatusBadRequest, errors.New("at least one ?pattern= is required"), false)
		return
	}
	chunk := 64 << 10
	if v := q.Get("chunk"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.fail(w, "scan", http.StatusBadRequest, fmt.Errorf("invalid chunk %q", v), false)
			return
		}
		chunk = n
	}
	foldCase := q.Get("fold_case") == "1" || q.Get("fold_case") == "true"
	timeoutMS := 0
	if v := q.Get("timeout_ms"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.fail(w, "scan", http.StatusBadRequest, fmt.Errorf("invalid timeout_ms %q", v), false)
			return
		}
		timeoutMS = n
	}

	ctx, cancel := s.requestCtx(r, timeoutMS)
	defer cancel()

	opts := s.engineOptions(foldCase)
	key := bitgen.PatternSetKey(patterns, &opts)

	// As in handleMatch: route before admission, so a forwarded scan
	// never pins a local execution slot while the owner does the work.
	var input io.Reader = r.Body
	if s.cluster != nil {
		if r.Header.Get(cluster.HeaderForwarded) == "1" {
			s.cluster.NoteReceivedForward()
		} else if route := s.cluster.Route(key); route.SelfOwner {
			s.cluster.NoteLocal()
		} else if s.Draining() {
			s.reg.Counter(obs.MServeRejected, obs.HServeRejected).Inc()
			s.reject(w, "scan", http.StatusServiceUnavailable, errDraining)
			return
		} else {
			// Buffer up to MaxScanForwardBytes so hedged attempts can
			// replay the body; larger streams are served locally instead.
			buf, rerr := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxScanForwardBytes+1))
			if rerr != nil {
				s.fail(w, "scan", http.StatusBadRequest, rerr, false)
				return
			}
			if int64(len(buf)) <= s.cfg.MaxScanForwardBytes {
				if res, ok := s.cluster.Forward(ctx, route, r.URL.RequestURI(), "application/octet-stream", buf, true); ok {
					s.relayScan(w, res)
					return
				}
				input = bytes.NewReader(buf)
			} else {
				input = io.MultiReader(bytes.NewReader(buf), r.Body)
			}
		}
	}

	release, status, err := s.admit(r.Context())
	if err != nil {
		s.reject(w, "scan", status, err)
		return
	}
	defer release()

	e, _, err := s.cache.get(ctx, key, patterns, foldCase)
	if err != nil {
		s.fail(w, "scan", statusOf(err, true), err, true)
		return
	}

	// Stream matches as NDJSON while the body is still being read. Once
	// the first line is written the status is committed, so a mid-stream
	// failure is reported in the trailer instead.
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	wrote := false
	count := 0
	var encErr error
	scanErr := e.eng.ScanReaderContext(ctx, input, chunk, func(m bitgen.Match) {
		if encErr != nil {
			return
		}
		wrote = true
		count++
		encErr = enc.Encode(jsonMatch{Pattern: m.Pattern, Index: m.Index, End: m.End})
		if flusher != nil && count%128 == 0 {
			flusher.Flush()
		}
	})
	if scanErr == nil {
		scanErr = encErr
	}
	if scanErr != nil && !wrote {
		s.fail(w, "scan", statusOf(scanErr, false), scanErr, false)
		return
	}
	trailer := scanTrailer{Done: scanErr == nil, Matches: count}
	if scanErr != nil {
		s.reg.Counter(obs.MServeErrors, obs.HServeErrors, obs.L("endpoint", "scan")).Inc()
		trailer.Error = scanErr.Error()
	}
	_ = enc.Encode(trailer)
	if flusher != nil {
		flusher.Flush()
	}
}

// relayScan copies a peer's NDJSON scan response line-by-line. Relaying
// whole lines means a connection that drops mid-record never leaks a
// truncated JSON object to the client — the partial line is discarded
// and a clean error trailer is emitted instead.
func (s *Server) relayScan(w http.ResponseWriter, res *cluster.ForwardResult) {
	defer res.Stream.Close()
	ct := res.ContentType
	if ct == "" {
		ct = "application/x-ndjson"
	}
	w.Header().Set("Content-Type", ct)
	w.WriteHeader(res.Status)
	flusher, _ := w.(http.Flusher)
	br := bufio.NewReader(res.Stream)
	lines := 0
	for {
		line, err := br.ReadBytes('\n')
		if err == nil {
			if _, werr := w.Write(line); werr != nil {
				return // client went away; nothing left to report to
			}
			lines++
			if flusher != nil && lines%128 == 0 {
				flusher.Flush()
			}
			continue
		}
		// A complete peer response always ends with the trailer's newline,
		// so leftover un-terminated bytes (or any non-EOF error) mean the
		// connection dropped: discard the torn record, emit a trailer.
		if err != io.EOF || len(line) > 0 {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			s.reg.Counter(obs.MServeErrors, obs.HServeErrors, obs.L("endpoint", "scan")).Inc()
			_ = json.NewEncoder(w).Encode(scanTrailer{Done: false, Error: "cluster relay interrupted: " + err.Error()})
		}
		break
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// handleCluster reports this replica's cluster view: ring membership,
// per-peer breaker health, and (with ?key=) the placement of one key.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "cluster mode is not enabled", Class: "not_found"})
		return
	}
	type peerJSON struct {
		URL       string `json:"url"`
		State     string `json:"state"`
		Failures  int    `json:"consecutive_failures"`
		Attempts  uint64 `json:"attempts"`
		Successes uint64 `json:"successes"`
		Skips     uint64 `json:"skips"`
		LastError string `json:"last_error,omitempty"`
	}
	health := s.cluster.Health()
	peers := make([]peerJSON, 0, len(health))
	for _, p := range health {
		peers = append(peers, peerJSON{
			URL: p.URL, State: p.State.String(), Failures: p.ConsecutiveFailures,
			Attempts: p.Attempts, Successes: p.Successes, Skips: p.Skips,
			LastError: p.LastFailure,
		})
	}
	resp := map[string]any{
		"self":   s.cluster.Self(),
		"nodes":  s.cluster.Ring().Nodes(),
		"vnodes": s.cluster.Ring().VNodes(),
		"peers":  peers,
	}
	if key := r.URL.Query().Get("key"); key != "" {
		rt := s.cluster.Route(key)
		resp["route"] = map[string]any{
			"key": rt.Key, "owner": rt.Owner, "successor": rt.Successor,
			"self_owner": rt.SelfOwner, "self_standby": rt.SelfStandby,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sets": s.cache.keys()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves the serve-layer registry by default; ?set=<key>
// serves that cached engine's own exposition (scan counters, modeled
// kernel counters) via Engine.WritePrometheus.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if key := r.URL.Query().Get("set"); key != "" {
		e := s.cache.lookup(key)
		if e == nil {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown pattern set " + key, Class: "not_found"})
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = e.eng.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WritePrometheus(w)
}

// handleTrace serves a cached engine's span trace (Chrome trace_event
// JSON) via Engine.WriteTrace, or the cluster layer's per-forward spans
// with ?cluster=1.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if v := r.URL.Query().Get("cluster"); v == "1" || v == "true" {
		if s.ctrace == nil {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "cluster mode is not enabled", Class: "not_found"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = s.ctrace.WriteChromeTrace(w)
		return
	}
	key := r.URL.Query().Get("set")
	if key == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "?set=<pattern-set-key> is required", Class: "bad_request"})
		return
	}
	e := s.cache.lookup(key)
	if e == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown pattern set " + key, Class: "not_found"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = e.eng.WriteTrace(w)
}
