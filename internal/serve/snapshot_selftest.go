package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bitgen/internal/faultinject"
	"bitgen/internal/snapshot"
)

// SnapshotSelfTest is the persistence acceptance smoke behind
// `bitgend -snapshot-selftest` and `make snapshot-smoke`. It walks the
// crash-safety contract end to end against a real snapshot directory:
// write-behind persistence, warm start with zero compiles, and the full
// injected fault matrix — a flipped byte, a torn write (crash before
// rename), a stale format version, and a short read. Every fault must be
// detected at load, quarantined when the file is condemned, and hidden
// from clients: the request always succeeds via recompile.
func SnapshotSelfTest(ctx context.Context, out io.Writer) error {
	dir, err := os.MkdirTemp("", "bitgen-snapshot-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	type node struct {
		srv  *Server
		base string
		stop func()
	}
	boot := func(inj *faultinject.Injector) (*node, error) {
		srv, err := New(Config{SnapshotDir: dir, SnapshotScrubInterval: -1, Inject: inj})
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		return &node{
			srv:  srv,
			base: "http://" + ln.Addr().String(),
			stop: func() { hs.Close(); srv.Close() },
		}, nil
	}
	client := &http.Client{Timeout: 30 * time.Second}
	match := func(n *node, pats []string, input string) (*matchResponse, error) {
		b, _ := json.Marshal(matchRequest{Patterns: pats, Input: input})
		resp, err := client.Post(n.base+"/v1/match", "application/json", strings.NewReader(string(b)))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
		}
		var mr matchResponse
		if err := json.Unmarshal(raw, &mr); err != nil {
			return nil, err
		}
		return &mr, nil
	}
	counter := func(n *node, name string) float64 {
		return n.srv.Metrics().Snapshot().Counter(name)
	}
	reasonCounter := func(n *node, reason string) float64 {
		return counter(n, fmt.Sprintf("bitgen_snapshot_verify_failures_total{reason=%q}", reason))
	}
	sameMatches := func(got, want []jsonMatch) error {
		if len(got) != len(want) {
			return fmt.Errorf("%d matches, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("match %d = %v, want %v", i, got[i], want[i])
			}
		}
		return nil
	}

	pats := []string{"snapsmoke+", "qq?"}
	input := "xsnapsmokexx qq snapsmokee"

	// Phase 1: a cold compile persists its snapshot write-behind.
	a, err := boot(nil)
	if err != nil {
		return err
	}
	want, err := match(a, pats, input)
	if err != nil {
		a.stop()
		return fmt.Errorf("phase 1 (cold compile): %w", err)
	}
	key := want.Set
	path := filepath.Join(dir, key+snapshot.Ext)
	if _, err := os.Stat(path); err != nil {
		a.stop()
		return fmt.Errorf("phase 1: no snapshot persisted at %s: %w", path, err)
	}
	if got := counter(a, "bitgen_snapshot_saves_total"); got != 1 {
		a.stop()
		return fmt.Errorf("phase 1: saves = %v, want 1", got)
	}
	a.stop()
	fmt.Fprintf(out, "persist ok: compile wrote %s\n", key[:12]+snapshot.Ext)

	// Phase 2: flip one byte. The restarted server must detect it (warm
	// start or first load), quarantine the file, and serve the request by
	// recompiling — the client never sees the corruption.
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return err
	}
	b, err := boot(nil)
	if err != nil {
		return err
	}
	got, err := match(b, pats, input)
	if err != nil {
		b.stop()
		return fmt.Errorf("phase 2 (corrupted snapshot): request failed, corruption leaked: %w", err)
	}
	if err := sameMatches(got.Matches, want.Matches); err != nil {
		b.stop()
		return fmt.Errorf("phase 2: recompiled result differs: %w", err)
	}
	if n := reasonCounter(b, snapshot.ReasonCorrupt); n < 1 {
		b.stop()
		return fmt.Errorf("phase 2: verify_failures{corrupt} = %v, want >= 1", n)
	}
	if n := counter(b, "bitgen_snapshot_quarantines_total"); n < 1 {
		b.stop()
		return fmt.Errorf("phase 2: quarantines = %v, want >= 1", n)
	}
	if _, err := os.Stat(path + snapshot.BadExt); err != nil {
		b.stop()
		return fmt.Errorf("phase 2: quarantine sidecar missing: %w", err)
	}
	if got := counter(b, "bitgen_serve_engine_compiles_total"); got != 1 {
		b.stop()
		return fmt.Errorf("phase 2: compiles = %v, want 1 (recompile fallback)", got)
	}
	b.stop()
	fmt.Fprintln(out, "corruption ok: flipped byte detected, quarantined, served via recompile")

	// Phase 3: warm start. The recompile above re-persisted the snapshot;
	// a fresh server must answer from it with zero compiles.
	c, err := boot(nil)
	if err != nil {
		return err
	}
	got, err = match(c, pats, input)
	if err != nil {
		c.stop()
		return fmt.Errorf("phase 3 (warm start): %w", err)
	}
	if err := sameMatches(got.Matches, want.Matches); err != nil {
		c.stop()
		return fmt.Errorf("phase 3: warm-started result differs: %w", err)
	}
	if got.Cache != "hit" {
		c.stop()
		return fmt.Errorf("phase 3: cache = %q, want hit", got.Cache)
	}
	if n := counter(c, "bitgen_snapshot_warm_starts_total"); n < 1 {
		c.stop()
		return fmt.Errorf("phase 3: warm_starts = %v, want >= 1", n)
	}
	if n := counter(c, "bitgen_serve_engine_compiles_total"); n != 0 {
		c.stop()
		return fmt.Errorf("phase 3: compiles = %v, want 0", n)
	}
	c.stop()
	fmt.Fprintln(out, "warm start ok: restart answered from snapshot, zero compiles")

	// Phase 4: torn write — the save "crashes" before rename. No file may
	// land at the final path and the request is unaffected (the compiled
	// engine serves it).
	injTorn := faultinject.New(1)
	injTorn.ArmNth(faultinject.SnapTornWrite, 1)
	d, err := boot(injTorn)
	if err != nil {
		return err
	}
	tornPats := []string{"tornwrite[0-9]"}
	tornRes, err := match(d, tornPats, "a tornwrite7 b")
	if err != nil {
		d.stop()
		return fmt.Errorf("phase 4 (torn write): %w", err)
	}
	if n := counter(d, "bitgen_snapshot_save_errors_total"); n != 1 {
		d.stop()
		return fmt.Errorf("phase 4: save_errors = %v, want 1", n)
	}
	if _, err := os.Stat(filepath.Join(dir, tornRes.Set+snapshot.Ext)); err == nil {
		d.stop()
		return fmt.Errorf("phase 4: torn write left a file at the final path")
	}
	d.stop()
	fmt.Fprintln(out, "torn write ok: crash-before-rename left no file, request served")

	// Phase 5: stale version — a snapshot stamped with a future format
	// version is saved cleanly but must be refused (version-mismatch, not
	// corrupt) and quarantined on the next boot.
	injVer := faultinject.New(2)
	injVer.ArmNth(faultinject.SnapStaleVersion, 1)
	e, err := boot(injVer)
	if err != nil {
		return err
	}
	verPats := []string{"stalever(sion)?"}
	if _, err := match(e, verPats, "stalever stalversion"); err != nil {
		e.stop()
		return fmt.Errorf("phase 5 (stale version): %w", err)
	}
	e.stop()
	f, err := boot(nil)
	if err != nil {
		return err
	}
	if n := reasonCounter(f, snapshot.ReasonVersion); n != 1 {
		f.stop()
		return fmt.Errorf("phase 5: verify_failures{version-mismatch} = %v, want 1", n)
	}
	if _, err := match(f, verPats, "stalever stalversion"); err != nil {
		f.stop()
		return fmt.Errorf("phase 5: recompile after version refusal: %w", err)
	}
	f.stop()
	fmt.Fprintln(out, "stale version ok: future-version snapshot refused, quarantined, recompiled")

	// Phase 6: short read — a load that returns half the file must be
	// refused as truncated and quarantined; the set still serves.
	injRead := faultinject.New(3)
	injRead.ArmNth(faultinject.SnapShortRead, 1)
	g, err := boot(injRead)
	if err != nil {
		return err
	}
	if n := reasonCounter(g, snapshot.ReasonTruncate); n < 1 {
		g.stop()
		return fmt.Errorf("phase 6: verify_failures{truncated} = %v, want >= 1", n)
	}
	got, err = match(g, pats, input)
	if err != nil {
		g.stop()
		return fmt.Errorf("phase 6 (short read): %w", err)
	}
	if err := sameMatches(got.Matches, want.Matches); err != nil {
		g.stop()
		return fmt.Errorf("phase 6: result differs after short read: %w", err)
	}
	g.stop()
	fmt.Fprintln(out, "short read ok: truncated load refused, set still serves correctly")

	// Phase 7: the scrubber. Corrupt a resting snapshot behind the
	// server's back; one scrub pass must find and quarantine it.
	h, err := boot(nil)
	if err != nil {
		return err
	}
	defer h.stop()
	keys, err := h.srv.SnapshotStore().Keys()
	if err != nil || len(keys) == 0 {
		return fmt.Errorf("phase 7: no resting snapshots to scrub (err %v)", err)
	}
	victim := h.srv.SnapshotStore().Path(keys[0])
	raw, err = os.ReadFile(victim)
	if err != nil {
		return err
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		return err
	}
	res, err := h.srv.ScrubNow()
	if err != nil {
		return fmt.Errorf("phase 7: scrub: %w", err)
	}
	if res.Checked < 1 || res.Quarantined != 1 {
		return fmt.Errorf("phase 7: scrub checked %d quarantined %d, want >=1 and 1", res.Checked, res.Quarantined)
	}
	fmt.Fprintln(out, "scrub ok: resting corruption found and quarantined")
	fmt.Fprintln(out, "snapshot selftest passed")
	return nil
}
