package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bitgen"
)

func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := mustNew(t, cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func postMatch(t *testing.T, url string, body string) (int, matchResponse, errorResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/match", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/match: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var mr matchResponse
	var er errorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &mr); err != nil {
			t.Fatalf("decode match response %q: %v", raw, err)
		}
	} else if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatalf("decode error response %q: %v", raw, err)
	}
	return resp.StatusCode, mr, er
}

// TestMatchEndpoint drives both semantics fixes through the HTTP layer:
// duplicate patterns fan out per index and a nullable pattern reports its
// end-of-input match.
func TestMatchEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	code, mr, _ := postMatch(t, hs.URL, `{"patterns":["abc","abc"],"input":"zabcz"}`)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if mr.Cache != "miss" {
		t.Errorf("first request cache = %q, want miss", mr.Cache)
	}
	want := []jsonMatch{{"abc", 0, 3}, {"abc", 1, 3}}
	if len(mr.Matches) != 2 || mr.Matches[0] != want[0] || mr.Matches[1] != want[1] {
		t.Errorf("Matches = %v, want %v", mr.Matches, want)
	}
	if mr.Counts["abc"] != 2 {
		t.Errorf("Counts[abc] = %d, want 2", mr.Counts["abc"])
	}
	if len(mr.IndexCounts) != 2 || mr.IndexCounts[0] != 1 || mr.IndexCounts[1] != 1 {
		t.Errorf("IndexCounts = %v, want [1 1]", mr.IndexCounts)
	}

	code, mr, _ = postMatch(t, hs.URL, `{"patterns":["a{0}"],"input":"aaa"}`)
	if code != http.StatusOK {
		t.Fatalf("nullable status = %d", code)
	}
	var ends []int
	for _, m := range mr.Matches {
		ends = append(ends, m.End)
	}
	if len(ends) != 4 || ends[3] != 3 {
		t.Errorf("nullable ends = %v, want [0 1 2 3] including end-of-input", ends)
	}
}

func TestMatchErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	code, _, er := postMatch(t, hs.URL, `{"patterns":["a["],"input":"x"}`)
	if code != http.StatusBadRequest || er.Class != "parse" {
		t.Errorf("bad pattern: status %d class %q, want 400 parse", code, er.Class)
	}
	code, _, er = postMatch(t, hs.URL, `{"patterns":[],"input":"x"}`)
	if code != http.StatusBadRequest {
		t.Errorf("empty patterns: status %d, want 400", code)
	}
	code, _, er = postMatch(t, hs.URL, `not json`)
	if code != http.StatusBadRequest {
		t.Errorf("bad json: status %d, want 400", code)
	}
	resp, err := http.Get(hs.URL + "/v1/match")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}
}

// TestCacheSingleflight launches N concurrent first requests for the same
// pattern set and requires exactly one compilation.
func TestCacheSingleflight(t *testing.T) {
	s, hs := newTestServer(t, Config{})

	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, _ = postMatch(t, hs.URL, `{"patterns":["foo|bar","baz"],"input":"foobazbar"}`)
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: status %d", i, c)
		}
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Counter("bitgen_serve_engine_compiles_total"); got != 1 {
		t.Errorf("compiles = %v, want 1 (singleflight)", got)
	}
	hits := snap.Counter("bitgen_serve_engine_cache_hits_total")
	misses := snap.Counter("bitgen_serve_engine_cache_misses_total")
	if hits+misses != n || misses != 1 {
		t.Errorf("hits=%v misses=%v, want %d lookups with 1 miss", hits, misses, n)
	}
}

// TestCacheEviction fills the LRU past capacity and checks eviction.
func TestCacheEviction(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxCachedEngines: 2})
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"patterns":["p%dq"],"input":"x"}`, i)
		if code, _, _ := postMatch(t, hs.URL, body); code != http.StatusOK {
			t.Fatalf("request %d failed", i)
		}
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Counter("bitgen_serve_engine_cache_evictions_total"); got != 2 {
		t.Errorf("evictions = %v, want 2", got)
	}
	if keys := s.cache.keys(); len(keys) != 2 {
		t.Errorf("cached sets = %d, want 2", len(keys))
	}
}

// TestBatchCoalescing gates the batch executor so queued requests pile up
// behind a running batch, then verifies they ride one RunMulti launch.
func TestBatchCoalescing(t *testing.T) {
	s := mustNew(t, Config{MaxBatch: 8, MaxConcurrent: 16})
	defer s.Close()

	gate := make(chan struct{})
	var launches atomic.Int64
	var maxBatch atomic.Int64
	s.batchRun = func(eng *bitgen.Engine) func(context.Context, [][]byte) (*bitgen.MultiResult, error) {
		return func(ctx context.Context, inputs [][]byte) (*bitgen.MultiResult, error) {
			<-gate
			launches.Add(1)
			if n := int64(len(inputs)); n > maxBatch.Load() {
				maxBatch.Store(n)
			}
			return eng.RunMultiContext(ctx, inputs)
		}
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// First request occupies the batch loop at the gate; the rest queue
	// behind it and must coalesce into the second launch.
	const riders = 5
	var wg sync.WaitGroup
	results := make([]matchResponse, 1+riders)
	codes := make([]int, 1+riders)
	launch := func(i int) {
		defer wg.Done()
		codes[i], results[i], _ = postMatch(t, hs.URL, `{"patterns":["ab"],"input":"abab"}`)
	}
	wg.Add(1)
	go launch(0)

	// Wait until the first request is inside the (gated) batch executor.
	deadline := time.After(5 * time.Second)
	for s.Metrics().Snapshot().Counter("bitgen_serve_batches_total") < 1 {
		select {
		case <-deadline:
			t.Fatal("first batch never launched")
		case <-time.After(time.Millisecond):
		}
	}
	for i := 1; i <= riders; i++ {
		wg.Add(1)
		go launch(i)
	}
	// Let the riders reach the queue, then open the gate.
	for {
		s.cache.mu.Lock()
		var queued int
		for _, e := range s.cache.entries {
			if e.batcher != nil {
				queued = len(e.batcher.queue)
			}
		}
		s.cache.mu.Unlock()
		if queued == riders {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("riders never queued (have %d)", queued)
		case <-time.After(time.Millisecond):
		}
	}
	close(gate)
	wg.Wait()

	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: status %d", i, c)
		}
		if got := results[i].Counts["ab"]; got != 2 {
			t.Fatalf("request %d: Counts[ab] = %d, want 2", i, got)
		}
	}
	if got := launches.Load(); got != 2 {
		t.Errorf("launches = %d, want 2 (first alone, riders coalesced)", got)
	}
	if got := maxBatch.Load(); got != riders {
		t.Errorf("largest batch = %d, want %d", got, riders)
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Counter("bitgen_serve_batches_total"); got != 2 {
		t.Errorf("serve batches metric = %v, want 2", got)
	}
	if got := snap.Counter("bitgen_serve_batched_requests_total"); got != 1+riders {
		t.Errorf("batched requests metric = %v, want %d", got, 1+riders)
	}
}

// TestScanEndpoint streams a body through /v1/scan and checks NDJSON
// output, duplicate-pattern fan-out, and the done trailer.
func TestScanEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	resp, err := http.Post(hs.URL+"/v1/scan?pattern=ab&pattern=ab&chunk=3",
		"application/octet-stream", strings.NewReader("xxabxxabxx"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d (%q), want 4 matches + trailer", len(lines), raw)
	}
	var ms []jsonMatch
	for _, l := range lines[:4] {
		var m jsonMatch
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("line %q: %v", l, err)
		}
		ms = append(ms, m)
	}
	want := []jsonMatch{{"ab", 0, 3}, {"ab", 1, 3}, {"ab", 0, 7}, {"ab", 1, 7}}
	for i := range want {
		if ms[i] != want[i] {
			t.Errorf("match %d = %v, want %v", i, ms[i], want[i])
		}
	}
	var tr scanTrailer
	if err := json.Unmarshal([]byte(lines[4]), &tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Done || tr.Matches != 4 {
		t.Errorf("trailer = %+v, want done with 4 matches", tr)
	}

	// Nullable patterns are refused for streaming, mapped to 400.
	resp, err = http.Post(hs.URL+"/v1/scan?pattern=a%3F", "application/octet-stream",
		strings.NewReader("aaa"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("nullable scan: status = %d, want 400", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Class != "unsupported" {
		t.Errorf("nullable scan class = %q, want unsupported", er.Class)
	}
}

// TestAdmissionQueueFull rejects with 429 once MaxQueue requests wait.
func TestAdmissionQueueFull(t *testing.T) {
	s := mustNew(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	defer s.Close()

	// Occupy the only slot and fill the queue directly.
	relA, _, err := s.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		relB, _, err := s.admit(context.Background())
		if err == nil {
			relB()
		}
		close(done)
	}()
	deadline := time.After(5 * time.Second)
	for s.Metrics().Snapshot().Gauges["bitgen_serve_queue_depth"] < 1 {
		select {
		case <-deadline:
			t.Fatal("waiter never queued")
		case <-time.After(time.Millisecond):
		}
	}
	_, status, err := s.admit(context.Background())
	if err == nil || status != http.StatusTooManyRequests {
		t.Errorf("overflow admit: status %d err %v, want 429", status, err)
	}
	if got := s.Metrics().Snapshot().Counter("bitgen_serve_rejected_total"); got != 1 {
		t.Errorf("rejected = %v, want 1", got)
	}
	relA()
	<-done
}

// TestDrain verifies the drain contract: in-flight requests finish with
// their full match sets, new requests get 503, healthz flips.
func TestDrain(t *testing.T) {
	s := mustNew(t, Config{MaxBatch: 4})
	gate := make(chan struct{})
	s.batchRun = func(eng *bitgen.Engine) func(context.Context, [][]byte) (*bitgen.MultiResult, error) {
		return func(ctx context.Context, inputs [][]byte) (*bitgen.MultiResult, error) {
			<-gate
			return eng.RunMultiContext(ctx, inputs)
		}
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer s.Close()

	var code int
	var mr matchResponse
	reqDone := make(chan struct{})
	go func() {
		defer close(reqDone)
		code, mr, _ = postMatch(t, hs.URL, `{"patterns":["ab"],"input":"abxab"}`)
	}()
	deadline := time.After(5 * time.Second)
	for s.Metrics().Snapshot().Gauges["bitgen_serve_in_flight"] < 1 {
		select {
		case <-deadline:
			t.Fatal("request never became in-flight")
		case <-time.After(time.Millisecond):
		}
	}

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- s.Drain(ctx)
	}()
	// Drain must flip health and rejections immediately, while the gated
	// request is still in flight.
	for !s.Draining() {
		select {
		case <-deadline:
			t.Fatal("drain flag never flipped")
		case <-time.After(time.Millisecond):
		}
	}
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: %d, want 503", resp.StatusCode)
	}
	if c, _, er := postMatch(t, hs.URL, `{"patterns":["ab"],"input":"ab"}`); c != http.StatusServiceUnavailable {
		t.Errorf("new request during drain: %d (%+v), want 503", c, er)
	}
	select {
	case err := <-drainDone:
		t.Fatalf("drain finished while a request was in flight: %v", err)
	default:
	}

	// Release the in-flight request: it must complete with its matches,
	// and only then may drain finish.
	close(gate)
	<-reqDone
	if code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d", code)
	}
	if len(mr.Matches) != 2 {
		t.Errorf("drained request dropped matches: %v", mr.Matches)
	}
	select {
	case err := <-drainDone:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain never finished after requests completed")
	}
	if got := s.Metrics().Snapshot().Counter("bitgen_serve_drains_total"); got != 1 {
		t.Errorf("drains = %v, want 1", got)
	}
}

// TestLoadSmoke is the ISSUE's load smoke: concurrent mixed traffic on a
// warm cache must compile each set exactly once and coalesce at least
// some batches. Run under -race in CI.
func TestLoadSmoke(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxBatch: 8})

	sets := []string{
		`{"patterns":["abc","a?","abc"],"input":"zabczabc"}`,
		`{"patterns":["foo|bar"],"input":"xfooybarz"}`,
	}
	// Warm both sets.
	for _, b := range sets {
		if code, _, _ := postMatch(t, hs.URL, b); code != http.StatusOK {
			t.Fatalf("warmup failed: %d", code)
		}
	}
	const workers = 16
	const perWorker = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				body := sets[(w+i)%len(sets)]
				code, mr, er := postMatch(t, hs.URL, body)
				if code != http.StatusOK {
					errs <- fmt.Errorf("worker %d: status %d (%+v)", w, code, er)
					return
				}
				if mr.Cache != "hit" {
					errs <- fmt.Errorf("worker %d: cache %q on warm set", w, mr.Cache)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Counter("bitgen_serve_engine_compiles_total"); got != float64(len(sets)) {
		t.Errorf("compiles = %v, want %d (warm cache compiles nothing)", got, len(sets))
	}
	batches := snap.Counter("bitgen_serve_batches_total")
	ridden := snap.Counter("bitgen_serve_batched_requests_total")
	if ridden <= batches {
		t.Logf("note: no coalescing observed under this scheduling (batches=%v requests=%v)", batches, ridden)
	}
	if ridden != float64(len(sets)+workers*perWorker) {
		t.Errorf("batched requests = %v, want %d", ridden, len(sets)+workers*perWorker)
	}
}

// TestSelfTest runs the bitgend -selftest path in-process.
func TestSelfTest(t *testing.T) {
	if err := SelfTest(context.Background(), io.Discard); err != nil {
		t.Fatal(err)
	}
}
