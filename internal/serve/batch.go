package serve

import (
	"context"
	"sync"

	"bitgen"
	"bitgen/internal/bgerr"
	"bitgen/internal/obs"
)

// batchReq is one /v1/match request waiting to ride a coalesced batch.
type batchReq struct {
	input []byte
	done  chan batchOut
}

// batchOut is one request's share of a batch outcome.
type batchOut struct {
	res *bitgen.Result
	err error
}

// batcher coalesces same-engine match requests into RunMulti launches:
// while one batch executes, every request that arrives for the same
// engine queues up and rides the next launch together — the MIMD
// multi-stream execution of the paper's Section 3.1, driven by live
// traffic instead of a fixed corpus. One goroutine per cached engine,
// started lazily on the engine's first match request.
type batcher struct {
	run      func(ctx context.Context, inputs [][]byte) (*bitgen.MultiResult, error)
	queue    chan *batchReq
	maxBatch int
	reg      *obs.Registry

	stopOnce sync.Once
	stopped  chan struct{}
}

// newBatcher starts the batch loop. ctx is the server's lifetime context:
// it outlives individual requests so an in-flight batch is never killed by
// one rider's deadline, and it is canceled only after drain completes.
func newBatcher(ctx context.Context, maxBatch, queueDepth int,
	reg *obs.Registry,
	run func(ctx context.Context, inputs [][]byte) (*bitgen.MultiResult, error)) *batcher {
	b := &batcher{
		run:      run,
		queue:    make(chan *batchReq, queueDepth),
		maxBatch: maxBatch,
		reg:      reg,
		stopped:  make(chan struct{}),
	}
	go b.loop(ctx)
	return b
}

// submit rides one input through the batcher. The request's own ctx
// bounds the wait; the batch itself runs under the server context.
func (b *batcher) submit(ctx context.Context, input []byte) (*bitgen.Result, error) {
	req := &batchReq{input: input, done: make(chan batchOut, 1)}
	select {
	case b.queue <- req:
	case <-b.stopped:
		return nil, bgerr.Canceled(context.Canceled)
	case <-ctx.Done():
		return nil, bgerr.Canceled(ctx.Err())
	}
	select {
	case out := <-req.done:
		return out.res, out.err
	case <-ctx.Done():
		// The batch still runs; this rider just stops waiting.
		return nil, bgerr.Canceled(ctx.Err())
	}
}

// loop gathers whatever queued since the previous launch — at least one
// request, at most maxBatch — and executes the batch.
func (b *batcher) loop(ctx context.Context) {
	for {
		var first *batchReq
		select {
		case first = <-b.queue:
		case <-b.stopped:
			b.failPending(bgerr.Canceled(context.Canceled))
			return
		case <-ctx.Done():
			b.failPending(bgerr.Canceled(ctx.Err()))
			return
		}
		reqs := []*batchReq{first}
	gather:
		for len(reqs) < b.maxBatch {
			select {
			case r := <-b.queue:
				reqs = append(reqs, r)
			default:
				break gather
			}
		}
		b.runBatch(ctx, reqs)
	}
}

// runBatch executes one coalesced launch and distributes per-stream
// results back to the riders.
func (b *batcher) runBatch(ctx context.Context, reqs []*batchReq) {
	inputs := make([][]byte, len(reqs))
	for i, r := range reqs {
		inputs[i] = r.input
	}
	b.reg.Counter(obs.MServeBatches, obs.HServeBatches).Inc()
	b.reg.Counter(obs.MServeBatchedRequests, obs.HServeBatchedRequests).AddInt(int64(len(reqs)))
	mres, err := b.run(ctx, inputs)
	for i, r := range reqs {
		if err != nil {
			r.done <- batchOut{nil, err}
			continue
		}
		r.done <- batchOut{mres.PerStream[i], nil}
	}
}

// failPending drains queued requests with err during shutdown.
func (b *batcher) failPending(err error) {
	for {
		select {
		case r := <-b.queue:
			r.done <- batchOut{nil, err}
		default:
			return
		}
	}
}

// stop ends the loop after the current batch; queued requests fail with a
// cancellation error.
func (b *batcher) stop() {
	b.stopOnce.Do(func() { close(b.stopped) })
}
