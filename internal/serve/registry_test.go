package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"bitgen"
	"bitgen/internal/bgerr"
	"bitgen/internal/obs"
)

// TestRegistryBuildPanicContained: a panicking build (a decoder bug on
// hostile peer-fetched bytes, say) must surface as a typed error and
// release the singleflight entry — not leave e.ready open forever,
// wedging the key and a cache slot for the process lifetime.
func TestRegistryBuildPanicContained(t *testing.T) {
	calls := 0
	r := newRegistry(4, obs.NewRegistry(), func(ctx context.Context, key string, patterns []string, foldCase bool) (*bitgen.Engine, error) {
		calls++
		if calls == 1 {
			panic("decoder invariant violated")
		}
		return bitgen.Compile(patterns, nil)
	})

	_, _, err := r.get(context.Background(), "k", []string{"abc"}, false)
	var ie *bgerr.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want *bgerr.InternalError from panicking build, got %v", err)
	}
	if ie.Op != "build" {
		t.Fatalf("InternalError.Op = %q, want build", ie.Op)
	}

	// The failed entry was removed, so the key retries instead of
	// blocking: this get must finish well before the timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	e, _, err := r.get(ctx, "k", []string{"abc"}, false)
	if err != nil {
		t.Fatalf("get after contained panic: %v", err)
	}
	if e.eng == nil {
		t.Fatalf("retry produced no engine")
	}
	if calls != 2 {
		t.Fatalf("build calls = %d, want 2 (panic then retry)", calls)
	}
}
