package serve

import (
	"net/http"
	"strings"
	"time"

	"bitgen/internal/cluster"
	"bitgen/internal/obs"
)

// This file is the serve layer's half of the distributed observability
// plane: the per-request middleware that parses or mints the trace
// context, records completed requests into the flight recorder and the
// SLO tracker, and the /v1/trace/{id} and /v1/slo endpoints the
// cross-node stitcher and dashboards read.

// nodeName is this replica's identity on spans and bundles: the cluster
// advertised URL, or "local" standalone.
func (s *Server) nodeName() string {
	if s.cluster != nil {
		return s.cluster.Self()
	}
	return "local"
}

// sloEndpointOf maps a request path to its SLO endpoint name ("" for
// paths without an objective).
func sloEndpointOf(path string) string {
	switch path {
	case "/v1/match":
		return "match"
	case "/v1/scan":
		return "scan"
	}
	return ""
}

// spanNameOf maps a request path to its flight-recorder span name (""
// for paths not recorded — metrics scrapes and health probes would
// drown the ring).
func spanNameOf(path string) string {
	switch path {
	case "/v1/match":
		return "match"
	case "/v1/scan":
		return "scan"
	case "/v1/snapshot":
		return "snapshot"
	}
	return ""
}

// statusWriter captures the response status for span/SLO recording.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// flushWriter adds Flush passthrough when the underlying writer supports
// it — /v1/scan streams NDJSON and must keep flushing through the
// middleware.
type flushWriter struct {
	*statusWriter
	f http.Flusher
}

func (w *flushWriter) Flush() { w.f.Flush() }

// withObs wraps the mux: every request gets a trace context (continued
// from X-Bitgen-Trace when a peer or client supplied one, minted
// otherwise) injected into the request context, the response echoes the
// trace ID, and completed match/scan/snapshot requests land in the
// flight recorder — match and scan also in the SLO tracker.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		parent, hadParent := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
		var tc obs.TraceContext
		if hadParent {
			tc = parent.Child()
		} else {
			tc = obs.NewTraceContext()
		}
		r = r.WithContext(obs.WithTraceContext(r.Context(), tc))
		w.Header().Set(obs.TraceHeader, tc.Header())

		sw := &statusWriter{ResponseWriter: w}
		var out http.ResponseWriter = sw
		if f, ok := w.(http.Flusher); ok {
			out = &flushWriter{statusWriter: sw, f: f}
		}

		start := time.Now()
		next.ServeHTTP(out, r)
		dur := time.Since(start)

		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		if ep := sloEndpointOf(r.URL.Path); ep != "" {
			s.slo.Observe(ep, dur, status >= 500)
		}
		if name := spanNameOf(r.URL.Path); name != "" {
			sp := obs.ReqSpan{
				Trace:          tc.Trace.String(),
				Span:           tc.Span.String(),
				Name:           name,
				Node:           s.nodeName(),
				StartUnixMicro: start.UnixMicro(),
				DurMicro:       dur.Microseconds(),
				Status:         status,
				Attrs:          map[string]string{"path": r.URL.Path},
			}
			if hadParent {
				sp.Parent = parent.Span.String()
			}
			if r.Header.Get(cluster.HeaderForwarded) == "1" {
				sp.Attrs["forwarded"] = "1"
			}
			s.flight.Add(sp)
		}
	})
}

// handleTraceFragment serves GET /v1/trace/{traceID}: this node's
// fragment of one distributed trace — its flight-recorder spans and
// event-ring entries for that trace ID. The stitcher (bitgend -stitch,
// StitchTrace) merges fragments from every ring peer into one timeline.
func (s *Server) handleTraceFragment(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	tid, ok := obs.ParseTraceID(id)
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: "trace ID must be 32 hex digits", Class: "bad_request",
		})
		return
	}
	frag := TraceFragment{
		Node:    s.nodeName(),
		TraceID: tid.String(),
		Spans:   s.flight.ByTrace(tid.String()),
		Events:  s.events.ByTrace(tid),
	}
	if frag.Spans == nil {
		frag.Spans = []obs.ReqSpan{}
	}
	if frag.Events == nil {
		frag.Events = []obs.LogEvent{}
	}
	writeJSON(w, http.StatusOK, frag)
}

// handleSLO serves GET /v1/slo: per-endpoint objectives, compliance,
// rolling burn rates and remaining error budget.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.slo.Report())
}

// onFastBurn is the SLO tracker's anomaly hook: an endpoint entering
// fast burn lands in the event log as a Warn event, which in turn trips
// the flight recorder's bundle dump via onAnomalyEvent.
func (s *Server) onFastBurn(endpoint string, burn float64) {
	s.events.Emit(obs.LevelWarn, "slo-fast-burn", obs.TraceID{},
		obs.FStr("endpoint", endpoint), obs.FFloat("burn_rate", burn))
}
