package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bitgen"
	"bitgen/internal/cluster"
	"bitgen/internal/faultinject"
	"bitgen/internal/obs"
)

// ObsClusterSelfTest is the observability acceptance smoke behind
// `bitgend -obs-cluster-selftest` and `make obs-cluster-smoke`. It boots
// three replicas, injects a mid-response connection drop on the entry
// node's path to a key's owner, and proves the observability plane end
// to end:
//
//   - one client-supplied trace ID propagates across the failover — the
//     stitched /v1/trace view contains spans from all three nodes under
//     that single ID, including the entry node's forward span naming the
//     successor that actually served;
//   - continuing the fault opens the entry node's breaker for the owner,
//     whose Warn event trips the anomaly flight recorder into writing an
//     integrity-checksummed diagnostic bundle that contains the
//     correlated breaker-open event;
//   - /v1/slo reports per-endpoint compliance for the traffic served.
//
// Artifacts land in artifactDir: stitched.json (the merged Chrome trace)
// and bundle.json (the anomaly bundle), which cmd/obscheck then
// validates structurally.
func ObsClusterSelfTest(ctx context.Context, out io.Writer, artifactDir string) error {
	const (
		breakerThreshold = 2
		breakerCooldown  = 300 * time.Millisecond
	)
	if err := os.MkdirAll(artifactDir, 0o755); err != nil {
		return err
	}
	injs := make([]*faultinject.Injector, 3)
	nodes, err := BootCluster(3, Config{
		MaxBatch:          4,
		BundleDir:         artifactDir,
		BundleMinInterval: time.Millisecond,
	}, func(i int, cc *cluster.Config) {
		injs[i] = faultinject.New(uint64(42 + i))
		cc.Inject = injs[i]
		cc.BreakerThreshold = breakerThreshold
		cc.BreakerCooldown = breakerCooldown
		cc.HedgeDelay = -1 // sequential failover: deterministic span order
		cc.DropAfter = 8   // cut the owner's response almost immediately
		cc.Seed = uint64(7 * (i + 1))
	})
	if err != nil {
		return err
	}
	defer func() {
		for _, nd := range nodes {
			nd.Kill()
		}
	}()
	urlIdx := map[string]int{}
	for i, nd := range nodes {
		urlIdx[nd.URL] = i
	}
	host := func(url string) string { return strings.TrimPrefix(url, "http://") }
	client := &http.Client{Timeout: 10 * time.Second}

	// Pick a key whose owner and successor are two different replicas, and
	// enter through the third: the failover path then touches every node.
	router := nodes[0].Server.Cluster()
	opts := nodes[0].Server.engineOptions(false)
	var pats []string
	var owner, successor, entry int
	for i := 0; ; i++ {
		p := []string{fmt.Sprintf("obs%dpat", i)}
		rt := router.Route(bitgen.PatternSetKey(p, &opts))
		if rt.Owner == rt.Successor {
			continue
		}
		oi, si := urlIdx[rt.Owner], urlIdx[rt.Successor]
		entry = 3 - oi - si
		if entry == oi || entry == si {
			continue
		}
		pats, owner, successor = p, oi, si
		break
	}
	body, _ := json.Marshal(matchRequest{Patterns: pats, Input: "x" + pats[0] + "y" + pats[0]})
	fmt.Fprintf(out, "key owner=%s successor=%s entry=%s\n",
		nodes[owner].URL, nodes[successor].URL, nodes[entry].URL)

	post := func(url string, hdr map[string]string) (*http.Response, []byte, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/match", strings.NewReader(string(body)))
		if err != nil {
			return nil, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp, b, err
	}

	// Warm every replica's engine for the key (the forwarded header makes
	// each serve locally) so the faulted runs measure routing, not
	// compilation.
	for _, nd := range nodes {
		if resp, msg, err := post(nd.URL, map[string]string{cluster.HeaderForwarded: "1"}); err != nil {
			return fmt.Errorf("warm via %s: %w", nd.URL, err)
		} else if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("warm via %s: status %d: %s", nd.URL, resp.StatusCode, msg)
		}
	}

	// Phase 1: cut the owner's responses to the entry node mid-body, then
	// send one request with a known trace ID. The owner serves fully (and
	// records its span), the entry node's read of the reply fails, and
	// sequential failover reruns the request on the successor — so one
	// trace crosses all three nodes.
	dropPoint := faultinject.PeerDrop.For(host(nodes[owner].URL))
	injs[entry].Arm(dropPoint, faultinject.Spec{Nth: 1, Repeat: true})
	tc := obs.NewTraceContext()
	resp, msg, err := post(nodes[entry].URL, map[string]string{obs.TraceHeader: tc.Header()})
	if err != nil {
		return fmt.Errorf("faulted request: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("faulted request: status %d: %s (failover should have hidden the drop)", resp.StatusCode, msg)
	}
	if got := resp.Header.Get(obs.TraceHeader); !strings.HasPrefix(got, tc.Trace.String()+"-") {
		return fmt.Errorf("response trace header %q does not continue trace %s", got, tc.Trace.String())
	}

	// Spans are recorded just after each response completes; poll the
	// stitcher until all three nodes' fragments carry the trace.
	urls := []string{nodes[0].URL, nodes[1].URL, nodes[2].URL}
	var st *StitchedTrace
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err = StitchTrace(ctx, client, urls, tc.Trace.String())
		if err == nil && len(st.NodesWithSpans()) == 3 {
			break
		}
		if time.Now().After(deadline) {
			n := 0
			if st != nil {
				n = len(st.NodesWithSpans())
			}
			return fmt.Errorf("stitched trace covers %d/3 nodes (err %v)", n, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	var forwardSpan *obs.ReqSpan
	for _, f := range st.Fragments {
		for i := range f.Spans {
			sp := f.Spans[i]
			if sp.Trace != tc.Trace.String() {
				return fmt.Errorf("span %s/%s carries trace %s, want %s", sp.Node, sp.Name, sp.Trace, tc.Trace.String())
			}
			if sp.Name == "forward" && sp.Node == nodes[entry].URL {
				forwardSpan = &f.Spans[i]
			}
		}
	}
	if forwardSpan == nil {
		return fmt.Errorf("no forward span recorded on the entry node")
	}
	if got := forwardSpan.Attrs["served_by"]; got != nodes[successor].URL {
		return fmt.Errorf("forward span served_by = %q, want the successor %s (failover)", got, nodes[successor].URL)
	}
	chrome, err := st.Chrome()
	if err != nil {
		return err
	}
	stitchedPath := filepath.Join(artifactDir, "stitched.json")
	if err := os.WriteFile(stitchedPath, chrome, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "trace propagation ok: trace %s spans all 3 nodes, failover served by %s (%d spans -> %s)\n",
		tc.Trace.String(), nodes[successor].URL, st.SpanCount(), stitchedPath)

	// Phase 2: keep the drop armed and push the owner's failure streak
	// past the breaker threshold. The breaker-open Warn event must trip
	// the flight recorder into writing a bundle.
	for i := 0; i < breakerThreshold+1; i++ {
		resp, msg, err := post(nodes[entry].URL, nil)
		if err != nil {
			return fmt.Errorf("breaker phase: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("breaker phase: status %d: %s", resp.StatusCode, msg)
		}
	}
	var bundlePath string
	deadline = time.Now().Add(5 * time.Second)
	for bundlePath == "" {
		matches, _ := filepath.Glob(filepath.Join(artifactDir, "bitgen-bundle-"+triggerBreakerOpen+"-*.json"))
		if len(matches) > 0 {
			bundlePath = matches[0]
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no breaker-open bundle appeared in %s", artifactDir)
		}
		time.Sleep(20 * time.Millisecond)
	}
	raw, err := os.ReadFile(bundlePath)
	if err != nil {
		return err
	}
	var env bundleEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return fmt.Errorf("bundle %s: %w", bundlePath, err)
	}
	sum := sha256.Sum256(env.Body)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return fmt.Errorf("bundle %s: sha256 mismatch", bundlePath)
	}
	var bb bundleBody
	if err := json.Unmarshal(env.Body, &bb); err != nil {
		return err
	}
	if bb.Node != nodes[entry].URL {
		return fmt.Errorf("bundle node = %q, want the entry node %s", bb.Node, nodes[entry].URL)
	}
	foundOpen := false
	for _, ev := range bb.Events {
		if ev.Type != "breaker" {
			continue
		}
		if to, _ := ev.Field("to"); to != "open" {
			continue
		}
		if peer, _ := ev.Field("peer"); peer == host(nodes[owner].URL) || peer == nodes[owner].URL {
			foundOpen = true
		}
	}
	if !foundOpen {
		return fmt.Errorf("bundle has no breaker-open event for the owner peer")
	}
	finalPath := filepath.Join(artifactDir, "bundle.json")
	if err := os.WriteFile(finalPath, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "flight recorder ok: breaker-open bundle %s verified (%d events, %d spans) -> %s\n",
		filepath.Base(bundlePath), len(bb.Events), len(bb.Spans), finalPath)

	// Phase 3: the SLO endpoint reports the traffic we just served.
	sloResp, err := client.Get(nodes[entry].URL + "/v1/slo")
	if err != nil {
		return err
	}
	defer sloResp.Body.Close()
	var rep obs.SLOReport
	if err := json.NewDecoder(sloResp.Body).Decode(&rep); err != nil {
		return err
	}
	matchSeen := false
	for _, ep := range rep.Endpoints {
		if ep.Endpoint == "match" && ep.Total > 0 {
			matchSeen = true
		}
	}
	if !matchSeen {
		return fmt.Errorf("/v1/slo reports no match traffic: %+v", rep.Endpoints)
	}
	fmt.Fprintln(out, "slo ok: /v1/slo reports match-endpoint compliance")

	injs[entry].Disarm(dropPoint)
	fmt.Fprintln(out, "obs cluster selftest passed")
	return nil
}
