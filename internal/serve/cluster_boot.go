package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"bitgen"
	"bitgen/internal/cluster"
	"bitgen/internal/faultinject"
)

// ClusterNode is one in-process bitgend replica booted by BootCluster.
type ClusterNode struct {
	Server *Server
	URL    string

	hs *http.Server
	ln net.Listener
}

// Kill terminates the replica abruptly — listener and live connections
// close without draining, the shape of a crashed process. Safe to call
// more than once.
func (n *ClusterNode) Kill() {
	n.hs.Close()
	n.Server.Close()
}

// Shutdown drains the replica gracefully, then closes the listener.
func (n *ClusterNode) Shutdown(ctx context.Context) error {
	err := n.Server.Drain(ctx)
	if serr := n.hs.Shutdown(ctx); serr != nil {
		n.hs.Close()
		if err == nil {
			err = serr
		}
	}
	return err
}

// BootCluster starts n replicas on loopback listeners with cluster
// routing enabled between them. Listeners are bound first so every
// replica's Config can name the complete peer set; mutate (optional)
// adjusts each node's cluster.Config before EnableCluster — tests use it
// to wire injectors and shrink breaker windows. Callers own the nodes:
// Kill or Shutdown each one.
func BootCluster(n int, cfg Config, mutate func(i int, cc *cluster.Config)) ([]*ClusterNode, error) {
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:i] {
				l.Close()
			}
			return nil, err
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*ClusterNode, n)
	for i := range nodes {
		s, err := New(cfg)
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			for _, nd := range nodes[:i] {
				nd.Server.Close()
			}
			return nil, err
		}
		cc := cluster.Config{Self: urls[i], Peers: urls}
		if mutate != nil {
			mutate(i, &cc)
		}
		if err := s.EnableCluster(cc); err != nil {
			for _, l := range lns {
				l.Close()
			}
			for _, nd := range nodes[:i] {
				nd.Server.Close()
			}
			return nil, err
		}
		nodes[i] = &ClusterNode{
			Server: s,
			URL:    urls[i],
			hs:     &http.Server{Handler: s.Handler()},
			ln:     lns[i],
		}
	}
	for _, nd := range nodes {
		go nd.hs.Serve(nd.ln)
	}
	return nodes, nil
}

// ClusterSelfTest is the cluster acceptance smoke behind
// `bitgend -cluster-selftest` and `make cluster-smoke`. It boots three
// replicas, proves routing and differential correctness, kills one
// replica mid-load and requires zero failed requests once the victim's
// breakers settle, then partitions a surviving pair so the degraded
// local-serve path (cluster.degraded_serves) demonstrably fires — and
// still answers byte-identically to a single-node server.
func ClusterSelfTest(ctx context.Context, out io.Writer) error {
	const (
		breakerThreshold = 2
		breakerCooldown  = 300 * time.Millisecond
	)
	injs := make([]*faultinject.Injector, 3)
	nodes, err := BootCluster(3, Config{MaxBatch: 4}, func(i int, cc *cluster.Config) {
		injs[i] = faultinject.New(uint64(42 + i))
		cc.Inject = injs[i]
		cc.BreakerThreshold = breakerThreshold
		cc.BreakerCooldown = breakerCooldown
		cc.HedgeDelay = -1 // sequential failover keeps accounting exact
		cc.Seed = uint64(7 * (i + 1))
	})
	if err != nil {
		return err
	}
	defer func() {
		for _, nd := range nodes {
			nd.Kill()
		}
	}()

	// A single-node reference server answers every differential check.
	ref, err := New(Config{})
	if err != nil {
		return err
	}
	defer ref.Close()
	refLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	refHS := &http.Server{Handler: ref.Handler()}
	go refHS.Serve(refLn)
	defer refHS.Close()
	refURL := "http://" + refLn.Addr().String()

	client := &http.Client{Timeout: 10 * time.Second}
	post := func(base, path, body string) (int, []byte, error) {
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, b, err
	}
	// matchedEverywhere sends one match body to target and the reference
	// node and requires identical match sets.
	check := func(target, body string) error {
		code, got, err := post(target, "/v1/match", body)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("status %d: %s", code, got)
		}
		refCode, want, err := post(refURL, "/v1/match", body)
		if err != nil || refCode != http.StatusOK {
			return fmt.Errorf("reference: status %d err %v", refCode, err)
		}
		var g, w matchResponse
		if err := json.Unmarshal(got, &g); err != nil {
			return err
		}
		if err := json.Unmarshal(want, &w); err != nil {
			return err
		}
		if len(g.Matches) != len(w.Matches) {
			return fmt.Errorf("differential mismatch: %d matches vs single-node %d", len(g.Matches), len(w.Matches))
		}
		for i := range g.Matches {
			if g.Matches[i] != w.Matches[i] {
				return fmt.Errorf("differential mismatch at %d: %v vs %v", i, g.Matches[i], w.Matches[i])
			}
		}
		return nil
	}

	// keysByOwner groups generated pattern sets by owning replica.
	router := nodes[0].Server.Cluster()
	keysByOwner := map[string][][]string{}
	opts := nodes[0].Server.engineOptions(false)
	for i := 0; ; i++ {
		if len(keysByOwner[nodes[0].URL]) >= 4 && len(keysByOwner[nodes[1].URL]) >= 4 && len(keysByOwner[nodes[2].URL]) >= 4 {
			break
		}
		pats := []string{fmt.Sprintf("smoke%dpat", i)}
		rt := router.Route(bitgen.PatternSetKey(pats, &opts))
		keysByOwner[rt.Owner] = append(keysByOwner[rt.Owner], pats)
	}
	body := func(pats []string) string {
		b, _ := json.Marshal(matchRequest{Patterns: pats, Input: "x" + pats[0] + "y" + pats[0]})
		return string(b)
	}

	// Phase 1: every replica answers every key, differentially correct.
	for _, nd := range nodes {
		for _, sets := range keysByOwner {
			for _, pats := range sets {
				if err := check(nd.URL, body(pats)); err != nil {
					return fmt.Errorf("phase 1 (healthy cluster) via %s: %w", nd.URL, err)
				}
			}
		}
	}
	fmt.Fprintln(out, "cluster routing ok: 3 replicas, all keys answer identically to single-node")

	// Phase 2: kill replica 2 abruptly. Its keys' standbys take over; the
	// first few forwards fail while breakers trip, so drive traffic until
	// the victim's breaker opens, then require ZERO failed requests.
	victim := nodes[2]
	victim.Kill()
	fmt.Fprintf(out, "killed replica %s\n", victim.URL)
	survivors := nodes[:2]
	// Settle: push the dead peer's breaker past its threshold from both
	// survivors (these requests may legitimately be slow, not failed —
	// failover hides the crash — but they charge the breaker).
	for _, nd := range survivors {
		for i := 0; i < breakerThreshold+1; i++ {
			for _, pats := range keysByOwner[victim.URL] {
				code, msg, err := post(nd.URL, "/v1/match", body(pats))
				if err != nil {
					return fmt.Errorf("settling via %s: %w", nd.URL, err)
				}
				if code != http.StatusOK {
					return fmt.Errorf("settling via %s: status %d: %s", nd.URL, code, msg)
				}
			}
		}
	}
	failed := 0
	total := 0
	for round := 0; round < 5; round++ {
		for _, nd := range survivors {
			for _, sets := range keysByOwner {
				for _, pats := range sets {
					total++
					if err := check(nd.URL, body(pats)); err != nil {
						failed++
						fmt.Fprintf(out, "post-kill failure via %s: %v\n", nd.URL, err)
					}
				}
			}
		}
	}
	if failed != 0 {
		return fmt.Errorf("replica kill: %d of %d requests failed after breakers settled", failed, total)
	}
	snap0 := survivors[0].Server.Metrics().Snapshot()
	skips := 0.0
	for k, v := range snap0.Counters {
		if strings.HasPrefix(k, "bitgen_cluster_peer_skips_total") {
			skips += v
		}
	}
	if skips == 0 {
		return fmt.Errorf("replica kill: breaker never opened (no peer skips recorded)")
	}
	fmt.Fprintf(out, "replica kill ok: %d/%d requests served, breaker open (%v skips)\n", total, total, skips)

	// Phase 3: double fault — on top of the dead replica, partition
	// survivor 0 from survivor 1. Keys owned by the dead replica with
	// survivor 1 as standby now have no reachable candidate from survivor
	// 0: it must compile locally and count a degraded serve.
	injs[0].Arm(faultinject.PeerPartition.For(strings.TrimPrefix(nodes[1].URL, "http://")),
		faultinject.Spec{Nth: 1, Repeat: true})
	for _, pats := range keysByOwner[victim.URL] {
		if err := check(nodes[0].URL, body(pats)); err != nil {
			return fmt.Errorf("degraded serve via %s: %w", nodes[0].URL, err)
		}
	}
	for _, pats := range keysByOwner[nodes[1].URL] {
		if err := check(nodes[0].URL, body(pats)); err != nil {
			return fmt.Errorf("degraded serve via %s: %w", nodes[0].URL, err)
		}
	}
	snap0 = survivors[0].Server.Metrics().Snapshot()
	degraded := snap0.Counter("bitgen_cluster_degraded_serves_total")
	if degraded == 0 {
		return fmt.Errorf("partition: cluster.degraded_serves = 0, want > 0")
	}
	fmt.Fprintf(out, "partition ok: %v degraded serves, every answer still correct\n", degraded)

	// Phase 4: heal the partition and wait out one breaker cooldown; the
	// half-open probe must recover the peer (requests flow remotely again).
	injs[0].Disarm(faultinject.PeerPartition.For(strings.TrimPrefix(nodes[1].URL, "http://")))
	time.Sleep(2 * breakerCooldown)
	recovered := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !recovered {
		for _, pats := range keysByOwner[nodes[1].URL] {
			if err := check(nodes[0].URL, body(pats)); err != nil {
				return fmt.Errorf("recovery via %s: %w", nodes[0].URL, err)
			}
		}
		for _, h := range nodes[0].Server.Cluster().Health() {
			if h.URL == nodes[1].URL && h.State.String() == "closed" {
				recovered = true
			}
		}
	}
	if !recovered {
		return fmt.Errorf("recovery: peer breaker never closed after the partition healed")
	}
	fmt.Fprintln(out, "recovery ok: healed peer's breaker closed within one cooldown window")
	fmt.Fprintln(out, "cluster selftest passed")
	return nil
}
