package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bitgen/internal/cluster"
	"bitgen/internal/snapshot"
)

// TestSnapshotWarmStart: a server booted on a directory holding another
// server's snapshots answers from them — first request is a cache hit,
// zero compiles, warm_starts counted, resident gauge charged.
func TestSnapshotWarmStart(t *testing.T) {
	dir := t.TempDir()
	body := `{"patterns":["warm+start","wx?"],"input":"warmmstart wx"}`

	s1, hs1 := newTestServer(t, Config{SnapshotDir: dir, SnapshotScrubInterval: -1})
	code, want, _ := postMatch(t, hs1.URL, body)
	if code != http.StatusOK {
		t.Fatalf("cold match: status %d", code)
	}
	if got := s1.Metrics().Snapshot().Counter("bitgen_snapshot_saves_total"); got != 1 {
		t.Fatalf("saves = %v, want 1", got)
	}
	hs1.Close()
	s1.Close()

	s2, hs2 := newTestServer(t, Config{SnapshotDir: dir, SnapshotScrubInterval: -1})
	code, got, _ := postMatch(t, hs2.URL, body)
	if code != http.StatusOK {
		t.Fatalf("warm match: status %d", code)
	}
	if got.Cache != "hit" {
		t.Errorf("warm-started request cache = %q, want hit", got.Cache)
	}
	if len(got.Matches) != len(want.Matches) {
		t.Fatalf("warm matches = %v, fresh = %v", got.Matches, want.Matches)
	}
	for i := range want.Matches {
		if got.Matches[i] != want.Matches[i] {
			t.Errorf("warm match %d = %v, want %v", i, got.Matches[i], want.Matches[i])
		}
	}
	snap := s2.Metrics().Snapshot()
	if n := snap.Counter("bitgen_serve_engine_compiles_total"); n != 0 {
		t.Errorf("compiles = %v, want 0", n)
	}
	if n := snap.Counter("bitgen_snapshot_warm_starts_total"); n != 1 {
		t.Errorf("warm_starts = %v, want 1", n)
	}
	if g := snap.Gauges["bitgen_serve_engine_cache_resident_bytes"]; g <= 0 {
		t.Errorf("resident bytes = %v, want > 0 after warm start", g)
	}
}

// TestSnapshotOptionsMismatchRefusedNotQuarantined: a snapshot written
// under different base engine options is refused at warm start without
// condemning the file — it is still valid for its own configuration.
func TestSnapshotOptionsMismatchRefusedNotQuarantined(t *testing.T) {
	dir := t.TempDir()
	body := `{"patterns":["optmis+"],"input":"optmiss"}`

	s1, hs1 := newTestServer(t, Config{SnapshotDir: dir, SnapshotScrubInterval: -1})
	if code, _, _ := postMatch(t, hs1.URL, body); code != http.StatusOK {
		t.Fatal("cold match failed")
	}
	hs1.Close()
	s1.Close()

	cfg := Config{SnapshotDir: dir, SnapshotScrubInterval: -1}
	cfg.Engine.CTAs = 8 // compile-relevant drift
	s2, hs2 := newTestServer(t, cfg)
	snap := s2.Metrics().Snapshot()
	// The options drift changes the pattern-set key too, so warm start
	// refuses before even decoding: key-mismatch, and nothing quarantined.
	refusals := 0.0
	for k, v := range snap.Counters {
		if strings.HasPrefix(k, "bitgen_snapshot_verify_failures_total") {
			refusals += v
		}
	}
	if refusals != 1 {
		t.Errorf("verify failures = %v, want 1", refusals)
	}
	if n := snap.Counter("bitgen_snapshot_quarantines_total"); n != 0 {
		t.Errorf("quarantines = %v, want 0 (negotiation refusal keeps the file)", n)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) == snapshot.BadExt {
			t.Errorf("quarantine sidecar %s exists, want none", e.Name())
		}
	}
	// The set still serves (recompiled under the new options).
	if code, _, _ := postMatch(t, hs2.URL, body); code != http.StatusOK {
		t.Error("match under drifted options failed")
	}
}

// TestResidentBytesGauge: the resident-bytes gauge tracks the measured
// resident bytes of cached engines — per-engine private state plus each
// interned shared block counted exactly once — and is decremented on
// eviction (releasing shared blocks only when their last referencing
// engine leaves).
func TestResidentBytesGauge(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxCachedEngines: 2})
	residentOf := func() float64 {
		return s.Metrics().Snapshot().Gauges["bitgen_serve_engine_cache_resident_bytes"]
	}
	cachedBytes := func() int64 {
		s.cache.mu.Lock()
		defer s.cache.mu.Unlock()
		var sum int64
		for _, e := range s.cache.entries {
			select {
			case <-e.ready:
				if e.err == nil {
					sum += e.bytes
				}
			default:
			}
		}
		return sum + s.cache.blocks.SharedBytes()
	}
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"patterns":["res%dident"],"input":"res%didentx"}`, i, i)
		if code, _, _ := postMatch(t, hs.URL, body); code != http.StatusOK {
			t.Fatalf("request %d failed", i)
		}
		if got, want := residentOf(), float64(cachedBytes()); got != want {
			t.Fatalf("after request %d: resident gauge = %v, cached bytes = %v", i, got, want)
		}
	}
	snap := s.Metrics().Snapshot()
	if n := snap.Counter("bitgen_serve_engine_cache_evictions_total"); n != 2 {
		t.Fatalf("evictions = %v, want 2", n)
	}
	if g := residentOf(); g <= 0 {
		t.Fatalf("resident bytes = %v, want > 0 with 2 cached engines", g)
	}
}

// TestSnapshotPeerFetch: a replica that must build a set it does not own
// (a received forward) fetches the owner's snapshot over /v1/snapshot
// instead of compiling, and persists it locally (save-behind).
func TestSnapshotPeerFetch(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	servers := make([]*Server, 2)
	urls := make([]string, 2)
	for i := range servers {
		servers[i] = mustNew(t, Config{SnapshotDir: dirs[i], SnapshotScrubInterval: -1})
		hs := httptest.NewServer(servers[i].Handler())
		urls[i] = hs.URL
		i := i
		t.Cleanup(func() { hs.Close(); servers[i].Close() })
	}
	for i := range servers {
		if err := servers[i].EnableCluster(cluster.Config{
			Self: urls[i], Peers: urls, HedgeDelay: -1, Seed: uint64(31 + i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	pats := findPatterns(t, servers[0], urls[0], "")
	input := "zz" + pats[0] + "yy"
	body := matchBody(pats, input)

	// Owner compiles and persists.
	code, want, _ := postMatch(t, urls[0], body)
	if code != http.StatusOK {
		t.Fatalf("owner match: status %d", code)
	}

	// Hit the non-owner as a forwarded request: it must serve locally,
	// building the engine — via peer snapshot fetch, not compilation.
	req, err := http.NewRequest(http.MethodPost, urls[1]+"/v1/match", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.HeaderForwarded, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded match on non-owner: status %d: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), want.Set) {
		t.Errorf("non-owner response missing set key: %s", raw)
	}

	snap := servers[1].Metrics().Snapshot()
	if n := snap.Counter("bitgen_snapshot_peer_fetches_total"); n != 1 {
		t.Errorf("peer fetches = %v, want 1", n)
	}
	if n := snap.Counter("bitgen_serve_engine_compiles_total"); n != 0 {
		t.Errorf("non-owner compiles = %v, want 0 (snapshot fetched from owner)", n)
	}
	if _, err := os.Stat(filepath.Join(dirs[1], want.Set+snapshot.Ext)); err != nil {
		t.Errorf("fetched snapshot not persisted locally (save-behind): %v", err)
	}
}

// TestSnapshotPeerFetchMissCompiles: when no peer has the snapshot, the
// build falls through to a local compile — a fetch miss is never an error.
func TestSnapshotPeerFetchMissCompiles(t *testing.T) {
	servers, urls, _ := bootCluster(t, 2, nil)
	pats := findPatterns(t, servers[0], urls[0], "")
	body := matchBody(pats, pats[0])

	req, err := http.NewRequest(http.MethodPost, urls[1]+"/v1/match", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.HeaderForwarded, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded match: status %d", resp.StatusCode)
	}
	snap := servers[1].Metrics().Snapshot()
	if n := snap.Counter("bitgen_serve_engine_compiles_total"); n != 1 {
		t.Errorf("compiles = %v, want 1 (owner had no snapshot either)", n)
	}
	if n := snap.Counter("bitgen_snapshot_peer_fetch_errors_total"); n != 0 {
		t.Errorf("peer fetch errors = %v, want 0 (a 404 is a clean miss)", n)
	}
}

// TestSnapshotEndpointValidation: /v1/snapshot refuses bad keys and
// methods, 404s unknown sets, and serves verified bytes for cached ones.
func TestSnapshotEndpointValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	get := func(path string) int {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/v1/snapshot?set=../../etc/passwd"); code != http.StatusBadRequest {
		t.Errorf("traversal key: status %d, want 400", code)
	}
	if code := get("/v1/snapshot?set=" + strings.Repeat("ab", 32)); code != http.StatusNotFound {
		t.Errorf("unknown key: status %d, want 404", code)
	}

	code, mr, _ := postMatch(t, hs.URL, `{"patterns":["endpt+"],"input":"endptt"}`)
	if code != http.StatusOK {
		t.Fatal("match failed")
	}
	resp, err := http.Get(hs.URL + "/v1/snapshot?set=" + mr.Set)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached set snapshot: status %d", resp.StatusCode)
	}
	if err := snapshot.Verify(data); err != nil {
		t.Errorf("served snapshot fails verification: %v", err)
	}
}

// TestSnapshotSelfTest runs the full persistence fault-matrix smoke — the
// same path `bitgend -snapshot-selftest` and `make snapshot-smoke` take.
func TestSnapshotSelfTest(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-server persistence smoke")
	}
	if err := SnapshotSelfTest(context.Background(), io.Discard); err != nil {
		t.Fatal(err)
	}
}
