package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bitgen"
	"bitgen/internal/obs"
)

// TestTraceHeaderMintedAndEchoed: a request without X-Bitgen-Trace gets a
// fresh trace minted and echoed; a request carrying one keeps its trace
// ID with a child span; a malformed value is replaced, not failed.
func TestTraceHeaderMintedAndEchoed(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	post := func(traceHeader string) (*http.Response, string) {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/match",
			strings.NewReader(`{"patterns":["foo"],"input":"xfoox"}`))
		if traceHeader != "" {
			req.Header.Set(obs.TraceHeader, traceHeader)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, resp.Header.Get(obs.TraceHeader)
	}

	_, minted := post("")
	if _, ok := obs.ParseTraceHeader(minted); !ok {
		t.Fatalf("minted trace header %q is malformed", minted)
	}

	tc := obs.NewTraceContext()
	_, echoed := post(tc.Header())
	back, ok := obs.ParseTraceHeader(echoed)
	if !ok || back.Trace != tc.Trace {
		t.Fatalf("echoed header %q does not continue trace %s", echoed, tc.Trace)
	}
	if back.Span == tc.Span {
		t.Fatal("server must answer with its own span, not parrot the client's")
	}

	_, replaced := post("not-a-trace")
	if rc, ok := obs.ParseTraceHeader(replaced); !ok || rc.Trace == tc.Trace {
		t.Fatalf("malformed inbound header should mint a fresh trace, got %q", replaced)
	}

	// The flight recorder kept the spans, retrievable by trace.
	spans := s.Flight().ByTrace(tc.Trace.String())
	if len(spans) != 1 || spans[0].Name != "match" {
		t.Fatalf("flight spans for trace = %+v, want one match span", spans)
	}
	if spans[0].Parent != tc.Span.String() {
		t.Fatalf("span parent = %q, want the client's span %s", spans[0].Parent, tc.Span)
	}
}

// TestTracePropagation3Nodes is the -race satellite for the tentpole: one
// client-supplied trace ID must cross a cluster forward — the entry
// node's match + forward spans and the owner's serve span all carry it,
// and StitchTrace merges them into one multi-node view.
func TestTracePropagation3Nodes(t *testing.T) {
	servers, urls, _ := bootCluster(t, 3, nil)
	pats := findPatterns(t, servers[0], urls[1], urls[2])
	tc := obs.NewTraceContext()
	req, _ := http.NewRequest(http.MethodPost, urls[0]+"/v1/match",
		strings.NewReader(matchBody(pats, "a"+pats[0]+"b")))
	req.Header.Set(obs.TraceHeader, tc.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); !strings.HasPrefix(got, tc.Trace.String()+"-") {
		t.Fatalf("response header %q does not continue the trace", got)
	}

	// Spans are recorded as each node's handler returns; the owner's span
	// lands before the entry's response, but poll to be safe.
	trace := tc.Trace.String()
	deadline := time.Now().Add(5 * time.Second)
	var st *StitchedTrace
	for {
		st, err = StitchTrace(context.Background(), http.DefaultClient, urls, trace)
		if err == nil && len(st.NodesWithSpans()) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stitched trace never covered entry+owner: %v (err %v)", st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	byNode := map[string][]string{}
	for _, f := range st.Fragments {
		for _, sp := range f.Spans {
			if sp.Trace != trace {
				t.Fatalf("span %s/%s carries trace %q, want %q", sp.Node, sp.Name, sp.Trace, trace)
			}
			byNode[sp.Node] = append(byNode[sp.Node], sp.Name)
		}
	}
	hasSpan := func(node, name string) bool {
		for _, n := range byNode[node] {
			if n == name {
				return true
			}
		}
		return false
	}
	if !hasSpan(urls[0], "match") || !hasSpan(urls[0], "forward") {
		t.Fatalf("entry node spans = %v, want match+forward", byNode[urls[0]])
	}
	if !hasSpan(urls[1], "match") {
		t.Fatalf("owner spans = %v, want a match span", byNode[urls[1]])
	}
	chrome, err := st.Chrome()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &doc); err != nil {
		t.Fatalf("stitched Chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 3 {
		t.Fatalf("Chrome trace has %d events, want >= 3", len(doc.TraceEvents))
	}
}

// TestDebugBundleEndpoint: /debug/bundle returns a sha256-sealed envelope
// whose body carries the node's spans, events, SLO report, metrics
// exposition and a goroutine dump.
func TestDebugBundleEndpoint(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/match", "application/json",
		strings.NewReader(`{"patterns":["foo"],"input":"xfoox"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	bresp, err := http.Get(ts.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	var env bundleEnvelope
	if err := json.NewDecoder(bresp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(env.Body)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		t.Fatal("bundle sha256 does not cover the body bytes")
	}
	var bb bundleBody
	if err := json.Unmarshal(env.Body, &bb); err != nil {
		t.Fatal(err)
	}
	if bb.Reason != triggerManual {
		t.Fatalf("reason = %q, want %q", bb.Reason, triggerManual)
	}
	if len(bb.Spans) == 0 {
		t.Fatal("bundle has no spans despite served traffic")
	}
	if !strings.Contains(bb.Goroutines, "goroutine") {
		t.Fatal("bundle goroutine dump missing")
	}
	if !strings.Contains(bb.Metrics, "# TYPE") {
		t.Fatal("bundle metrics exposition missing")
	}
	found := false
	for _, ep := range bb.SLO.Endpoints {
		if ep.Endpoint == "match" && ep.Total > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("bundle SLO report missing match traffic: %+v", bb.SLO.Endpoints)
	}
}

// TestAnomalyBundleOnQuarantine: a snapshot quarantine (a Warn event)
// trips the flight recorder into writing a sealed bundle to BundleDir,
// and the eviction that forced the reload lands in the event log.
func TestAnomalyBundleOnQuarantine(t *testing.T) {
	snapDir, bundleDir := t.TempDir(), t.TempDir()
	s := mustNew(t, Config{
		MaxCachedEngines:      1,
		SnapshotDir:           snapDir,
		SnapshotScrubInterval: -1,
		BundleDir:             bundleDir,
		BundleMinInterval:     time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	post := func(pattern string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/match", "application/json",
			strings.NewReader(`{"patterns":["`+pattern+`"],"input":"x`+pattern+`x"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("match %q: status %d", pattern, resp.StatusCode)
		}
	}
	post("foo") // compiles and persists write-behind
	opts := s.engineOptions(false)
	key := bitgen.PatternSetKey([]string{"foo"}, &opts)
	path := s.snap.Path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no persisted snapshot to corrupt: %v", err)
	}
	data[len(data)/2] ^= 0xff // silent at-rest corruption
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	post("bar") // capacity 1: evicts foo's engine
	post("foo") // reload hits the corrupt snapshot → quarantine → compile

	sawQuarantine, sawEvict := false, false
	for _, ev := range s.Events().Events() {
		switch ev.Type {
		case "snapshot-quarantine":
			sawQuarantine = true
			if k, _ := ev.Field("key"); k != key {
				t.Fatalf("quarantine event key = %q, want %q", k, key)
			}
		case "cache-evict":
			sawEvict = true
		}
	}
	if !sawQuarantine {
		t.Fatal("no snapshot-quarantine event recorded")
	}
	if !sawEvict {
		t.Fatal("no cache-evict event recorded")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		paths, _ := filepath.Glob(filepath.Join(bundleDir, "bitgen-bundle-"+triggerQuarantine+"-*.json"))
		if len(paths) > 0 {
			raw, err := os.ReadFile(paths[0])
			if err != nil {
				t.Fatal(err)
			}
			var env bundleEnvelope
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(env.Body)
			if hex.EncodeToString(sum[:]) != env.SHA256 {
				t.Fatal("quarantine bundle failed integrity check")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no quarantine bundle written")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSLOEndpointServesReport: /v1/slo reflects served traffic, including
// latency-objective breaches configured through the test seam.
func TestSLOEndpointServesReport(t *testing.T) {
	s := mustNew(t, Config{
		SLOMatchP99: time.Nanosecond, // everything breaches
		tuneSLO: func(c *obs.SLOConfig) {
			c.MinWindowRequests = 1
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/match", "application/json",
			strings.NewReader(`{"patterns":["foo"],"input":"xfoox"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep obs.SLOReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	var match *obs.SLOEndpointReport
	for i := range rep.Endpoints {
		if rep.Endpoints[i].Endpoint == "match" {
			match = &rep.Endpoints[i]
		}
	}
	if match == nil || match.Total != 3 {
		t.Fatalf("slo report = %+v, want 3 match requests", rep.Endpoints)
	}
	if match.Good != 0 {
		t.Fatalf("1ns objective should breach every request: %+v", match)
	}
	if match.ErrorBudgetRemaining != 0 {
		t.Fatalf("budget should be exhausted: %+v", match)
	}
	// The fast-burn anomaly landed in the event log.
	sawBurn := false
	for _, ev := range s.Events().Events() {
		if ev.Type == "slo-fast-burn" {
			sawBurn = true
		}
	}
	if !sawBurn {
		t.Fatal("no slo-fast-burn event despite total breach")
	}
}

// TestScanStreamingSurvivesObsMiddleware: the middleware's status
// recorder must preserve http.Flusher, or NDJSON scan streaming would
// silently buffer.
func TestScanStreamingSurvivesObsMiddleware(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/scan?pattern=foo&chunk=8", "application/octet-stream",
		strings.NewReader("xxfooyyfoozz"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"match"`) && !strings.Contains(buf.String(), "foo") {
		t.Fatalf("scan stream looks wrong: %q", buf.String())
	}
	spans := s.Flight().Spans()
	sawScan := false
	for _, sp := range spans {
		if sp.Name == "scan" {
			sawScan = true
		}
	}
	if !sawScan {
		t.Fatal("no scan span recorded")
	}
}
