// Package serve is the multi-tenant matching service behind cmd/bitgend:
// an HTTP/JSON front end over the bitgen library with a compiled-engine
// LRU cache (singleflight compilation per canonical pattern-set key),
// bounded request admission, same-engine batch coalescing through
// RunMulti, and graceful drain. It depends only on the standard library
// and the bitgen module itself.
package serve

import (
	"context"
	"runtime/debug"
	"sync"

	"bitgen"
	"bitgen/internal/bgerr"
	"bitgen/internal/intern"
	"bitgen/internal/obs"
)

// registry is the compiled-engine cache: pattern sets are keyed by
// bitgen.PatternSetKey, concurrent first requests for the same key share
// one compilation (singleflight), and completed engines are evicted
// least-recently-used beyond the capacity. Engines are immutable, so a
// request holding an engine that gets evicted mid-flight simply finishes
// on it; eviction only drops the cache reference.
//
// Resident-bytes accounting is measured, not proxied: each engine's
// packed compiled-state blocks are interned in a refcounted
// content-addressed store at adoption, so identical compiled structures
// shared by several cached engines are held — and charged to the gauge —
// exactly once. The gauge is at all times Σ per-engine private bytes +
// store.SharedBytes().
type registry struct {
	cap int
	// build produces the engine for a key on miss — compile, or a
	// snapshot load/peer fetch when the server has persistence wired.
	build func(ctx context.Context, key string, patterns []string, foldCase bool) (*bitgen.Engine, error)
	reg   *obs.Registry
	// events, when non-nil, records cache evictions in the structured
	// event log (set by the server after construction).
	events *obs.EventLog
	// resident tracks the measured resident bytes of completed cached
	// engines (private + each shared block once), decremented on evict.
	resident *obs.Gauge
	// blocks dedupes identical packed compiled state across engines.
	blocks intern.Store

	mu      sync.Mutex
	entries map[string]*entry
	tick    int64 // recency clock: bumped on every touch
}

// entry is one cached pattern set. ready closes when compilation finishes;
// until then eng/err are unreadable. A failed compilation is removed from
// the cache before ready closes, so the next request retries.
type entry struct {
	key      string
	patterns []string
	foldCase bool
	ready    chan struct{}
	eng      *bitgen.Engine
	err      error
	// bytes is the engine's measured private resident size: its
	// ResidentBytes minus the interned shared blocks, which the block
	// store accounts once across all referencing engines.
	bytes int64
	// blockKeys are the engine's references into the block store,
	// released on evict.
	blockKeys []intern.Key
	lastUse   int64
	batcher   *batcher
}

func newRegistry(capacity int, reg *obs.Registry,
	build func(ctx context.Context, key string, patterns []string, foldCase bool) (*bitgen.Engine, error)) *registry {
	return &registry{
		cap:      capacity,
		build:    build,
		reg:      reg,
		resident: reg.Gauge(obs.MServeResidentBytes, obs.HServeResidentBytes),
		entries:  make(map[string]*entry),
	}
}

// adopt interns a newly built engine's packed compiled-state blocks,
// rebinding them to the store's canonical copies, and returns the
// engine's private resident bytes (its measured footprint minus the
// shared block contents), the store references taken, and the shared
// bytes newly charged to the store (nonzero only for blocks no other
// cached engine holds). Gauge delta for adopting an engine is
// private + charged.
func (r *registry) adopt(eng *bitgen.Engine) (private int64, keys []intern.Key, charged int64) {
	total := eng.ResidentBytes()
	var sharedLen int64
	eng.RebindPackedBlocks(func(b []byte) []byte {
		canonical, key, c := r.blocks.Acquire(b)
		keys = append(keys, key)
		charged += c
		sharedLen += int64(len(b))
		return canonical
	})
	return total - sharedLen, keys, charged
}

// releaseLocked drops an entry's block references, returning the shared
// bytes uncharged from the store (nonzero only for blocks no remaining
// engine holds).
func (r *registry) releaseLocked(e *entry) (uncharged int64) {
	for _, k := range e.blockKeys {
		uncharged += r.blocks.Release(k)
	}
	e.blockKeys = nil
	return uncharged
}

// get returns the cached entry for key, compiling the unique patterns on
// first request. hit reports whether an already-compiled (or compiling)
// entry served the lookup. The caller's context bounds only its own wait:
// a compilation started on behalf of several waiters finishes even if the
// first caller gives up.
func (r *registry) get(ctx context.Context, key string, patterns []string, foldCase bool) (e *entry, hit bool, err error) {
	r.mu.Lock()
	r.tick++
	if e := r.entries[key]; e != nil {
		e.lastUse = r.tick
		r.mu.Unlock()
		r.reg.Counter(obs.MServeCacheHits, obs.HServeCacheHits).Inc()
		if err := e.wait(ctx); err != nil {
			return nil, true, err
		}
		return e, true, nil
	}
	e = &entry{
		key:      key,
		patterns: append([]string(nil), patterns...),
		foldCase: foldCase,
		ready:    make(chan struct{}),
		lastUse:  r.tick,
	}
	r.entries[key] = e
	r.evictLocked()
	r.mu.Unlock()
	r.reg.Counter(obs.MServeCacheMisses, obs.HServeCacheMisses).Inc()

	// Build outside the lock — other keys stay servable — and detach
	// from the caller's context: waiters queued behind this singleflight
	// get the engine even if the initiating request times out first.
	// A panicking build (a decoder invariant violation on peer-fetched
	// bytes, say) must be contained here: if it escaped, e.ready would
	// never close and the entry never be removed, wedging the key — every
	// future get blocks until its context expires and the cache slot is
	// occupied for the process lifetime.
	func() {
		defer func() {
			if v := recover(); v != nil {
				e.eng, e.bytes = nil, 0
				e.err = &bgerr.InternalError{
					Op:       "build",
					Group:    -1,
					Patterns: e.patterns,
					Value:    v,
					Stack:    debug.Stack(),
				}
			}
		}()
		e.eng, e.err = r.build(context.WithoutCancel(ctx), key, e.patterns, e.foldCase)
	}()
	if e.err != nil {
		r.mu.Lock()
		if r.entries[key] == e {
			delete(r.entries, key)
		}
		r.mu.Unlock()
	} else {
		var charged int64
		e.bytes, e.blockKeys, charged = r.adopt(e.eng)
		r.resident.Add(float64(e.bytes + charged))
	}
	close(e.ready)
	if e.err != nil {
		return nil, false, e.err
	}
	return e, false, nil
}

// wait blocks until the entry's compilation finishes or ctx expires.
func (e *entry) wait(ctx context.Context) error {
	select {
	case <-e.ready:
		return e.err
	case <-ctx.Done():
		return bgerr.Canceled(ctx.Err())
	}
}

// evictLocked drops least-recently-used completed entries beyond cap.
// In-flight compilations are never evicted (their waiters hold the entry).
func (r *registry) evictLocked() {
	for r.cap > 0 && len(r.entries) > r.cap {
		var victim *entry
		for _, e := range r.entries {
			select {
			case <-e.ready:
			default:
				continue // still compiling
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(r.entries, victim.key)
		if victim.batcher != nil {
			victim.batcher.stop()
		}
		if victim.err == nil {
			uncharged := r.releaseLocked(victim)
			r.resident.Add(-float64(victim.bytes + uncharged))
			r.events.Emit(obs.LevelInfo, "cache-evict", obs.TraceID{},
				obs.FStr("key", victim.key), obs.FInt("bytes", victim.bytes),
				obs.FInt("shared_freed", uncharged))
		} else {
			r.events.Emit(obs.LevelInfo, "cache-evict", obs.TraceID{},
				obs.FStr("key", victim.key), obs.FInt("bytes", victim.bytes))
		}
		r.reg.Counter(obs.MServeCacheEvictions, obs.HServeCacheEvictions).Inc()
	}
}

// insertReady installs an already-built engine (snapshot warm start at
// boot). Existing entries win: a concurrent request may have compiled
// first, and replacing its entry would orphan the batcher waiters. The
// engine's blocks are interned only once the entry actually enters the
// cache, so a losing insert takes no store references.
func (r *registry) insertReady(key string, patterns []string, foldCase bool, eng *bitgen.Engine) bool {
	e := &entry{
		key:      key,
		patterns: append([]string(nil), patterns...),
		foldCase: foldCase,
		ready:    make(chan struct{}),
		eng:      eng,
	}
	close(e.ready)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.entries[key]; exists {
		return false
	}
	r.tick++
	e.lastUse = r.tick
	r.entries[key] = e
	var charged int64
	e.bytes, e.blockKeys, charged = r.adopt(eng)
	r.resident.Add(float64(e.bytes + charged))
	r.evictLocked()
	return true
}

// lookup returns the completed entry for key without compiling, for the
// /metrics?set= and /trace?set= endpoints.
func (r *registry) lookup(key string) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[key]
	if e == nil {
		return nil
	}
	select {
	case <-e.ready:
		if e.err != nil {
			return nil
		}
		return e
	default:
		return nil
	}
}

// keys lists the cached, completed pattern-set keys.
func (r *registry) keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.entries))
	for k, e := range r.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				out = append(out, k)
			}
		default:
		}
	}
	return out
}

// stopAll stops every entry's batcher (drain shutdown).
func (r *registry) stopAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if e.batcher != nil {
			e.batcher.stop()
		}
	}
}
