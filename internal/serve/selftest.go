package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"
)

// SelfTest boots a Server on a loopback listener and exercises the full
// request surface in-process: match (cold compile, then warm cache hit,
// duplicate patterns, nullable end-of-input), streaming scan, metrics,
// graceful drain, and a snapshot warm start — a second server booted on
// the same snapshot directory must answer with zero compiles. It is the
// engine behind `bitgend -selftest` and `make serve-smoke` — a deployment
// smoke that needs no curl and no fixed port.
func SelfTest(ctx context.Context, out io.Writer) error {
	snapDir, err := os.MkdirTemp("", "bitgen-selftest-snap-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(snapDir)
	srv, err := New(Config{MaxBatch: 4, SnapshotDir: snapDir, SnapshotScrubInterval: -1})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	defer hs.Close()

	client := &http.Client{Timeout: 30 * time.Second}
	post := func(path, contentType, body string) (int, []byte, error) {
		resp, err := client.Post(base+path, contentType, strings.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, b, err
	}

	// 1. Cold match: compiles the set. Duplicate pattern + nullable
	// pattern exercise both semantics fixes through the wire format.
	reqBody := `{"patterns":["abc","a?","abc"],"input":"zabcz"}`
	code, body, err := post("/v1/match", "application/json", reqBody)
	if err != nil {
		return fmt.Errorf("match: %w", err)
	}
	if code != http.StatusOK {
		return fmt.Errorf("match: status %d: %s", code, body)
	}
	var mr matchResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		return fmt.Errorf("match: decode: %w", err)
	}
	if mr.Cache != "miss" {
		return fmt.Errorf("match: first request should miss the cache, got %q", mr.Cache)
	}
	// "abc" at indexes 0 and 2 ends at 3 (twice); "a?" matches the empty
	// string at every offset 0..5 plus position 2 via 'a' (end set is
	// {0,1,2,3,4,5}); index_counts = [1, 6, 1].
	wantIdx := []int{1, 6, 1}
	if len(mr.IndexCounts) != 3 || mr.IndexCounts[0] != wantIdx[0] || mr.IndexCounts[1] != wantIdx[1] || mr.IndexCounts[2] != wantIdx[2] {
		return fmt.Errorf("match: index_counts = %v, want %v", mr.IndexCounts, wantIdx)
	}
	eofSeen := false
	for _, m := range mr.Matches {
		if m.Pattern == "a?" && m.End == 5 {
			eofSeen = true
		}
	}
	if !eofSeen {
		return fmt.Errorf("match: nullable end-of-input match (a? at end 5) missing: %v", mr.Matches)
	}
	fmt.Fprintf(out, "match ok: %d matches, set %s\n", len(mr.Matches), mr.Set[:12])

	// 2. Warm match: same set must hit the cache (no recompile).
	code, body, err = post("/v1/match", "application/json", reqBody)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("warm match: status %d err %v: %s", code, err, body)
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		return err
	}
	if mr.Cache != "hit" {
		return fmt.Errorf("warm match: want cache hit, got %q", mr.Cache)
	}
	snap := srv.Metrics().Snapshot()
	if got := snap.Counter("bitgen_serve_engine_compiles_total"); got != 1 {
		return fmt.Errorf("warm cache should not recompile: compiles = %v, want 1", got)
	}
	fmt.Fprintln(out, "warm cache ok: 1 compile, second request hit")

	// 3. Streaming scan: NDJSON lines plus a done trailer.
	code, body, err = post("/v1/scan?pattern=needle&chunk=7", "application/octet-stream",
		"hayneedlehay needle tail")
	if err != nil {
		return fmt.Errorf("scan: %w", err)
	}
	if code != http.StatusOK {
		return fmt.Errorf("scan: status %d: %s", code, body)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) != 3 {
		return fmt.Errorf("scan: want 2 match lines + trailer, got %d lines: %s", len(lines), body)
	}
	var tr scanTrailer
	if err := json.Unmarshal(lines[len(lines)-1], &tr); err != nil {
		return fmt.Errorf("scan: trailer: %w", err)
	}
	if !tr.Done || tr.Matches != 2 {
		return fmt.Errorf("scan: trailer %+v, want done with 2 matches", tr)
	}
	fmt.Fprintln(out, "scan ok: 2 matches streamed across chunk boundaries")

	// 4. Metrics: serve families and the per-set engine exposition.
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"bitgen_serve_requests_total", "bitgen_serve_batches_total"} {
		if !bytes.Contains(metricsBody, []byte(want)) {
			return fmt.Errorf("/metrics missing %s", want)
		}
	}
	resp, err = client.Get(base + "/metrics?set=" + mr.Set)
	if err != nil {
		return err
	}
	setBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(setBody, []byte("bitgen_scans_total")) {
		return fmt.Errorf("/metrics?set=: status %d, body %.120s", resp.StatusCode, setBody)
	}
	fmt.Fprintln(out, "metrics ok: serve + per-set expositions")

	// 5. Graceful drain: healthz flips to 503, in-flight work finishes,
	// new requests are rejected.
	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	resp, err = client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("healthz after drain: status %d, want 503", resp.StatusCode)
	}
	code, _, err = post("/v1/match", "application/json", reqBody)
	if err != nil {
		return err
	}
	if code != http.StatusServiceUnavailable {
		return fmt.Errorf("match after drain: status %d, want 503", code)
	}
	fmt.Fprintln(out, "drain ok: healthz 503, new requests rejected")

	// 6. Warm start: a second server booted on the same snapshot directory
	// must serve the set from the persisted snapshot — zero compiles, the
	// first request is already a cache hit.
	srv2, err := New(Config{MaxBatch: 4, SnapshotDir: snapDir, SnapshotScrubInterval: -1})
	if err != nil {
		return fmt.Errorf("warm start: boot: %w", err)
	}
	defer srv2.Close()
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs2 := &http.Server{Handler: srv2.Handler()}
	go hs2.Serve(ln2)
	defer hs2.Close()
	base2 := "http://" + ln2.Addr().String()
	resp, err = client.Post(base2+"/v1/match", "application/json", strings.NewReader(reqBody))
	if err != nil {
		return fmt.Errorf("warm start: match: %w", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("warm start: match status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		return err
	}
	if mr.Cache != "hit" {
		return fmt.Errorf("warm start: first request cache = %q, want hit (snapshot pre-populates)", mr.Cache)
	}
	if len(mr.IndexCounts) != 3 || mr.IndexCounts[0] != wantIdx[0] || mr.IndexCounts[1] != wantIdx[1] || mr.IndexCounts[2] != wantIdx[2] {
		return fmt.Errorf("warm start: index_counts = %v, want %v", mr.IndexCounts, wantIdx)
	}
	warmSnap := srv2.Metrics().Snapshot()
	if got := warmSnap.Counter("bitgen_serve_engine_compiles_total"); got != 0 {
		return fmt.Errorf("warm start: compiles = %v, want 0", got)
	}
	if got := warmSnap.Counter("bitgen_snapshot_warm_starts_total"); got < 1 {
		return fmt.Errorf("warm start: warm_starts = %v, want >= 1", got)
	}
	fmt.Fprintln(out, "warm start ok: restarted server answered identically with zero compiles")
	fmt.Fprintln(out, "selftest passed")
	return nil
}
