package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"bitgen/internal/obs"
)

// The anomaly flight recorder's dump side: when something notable
// happens — a peer breaker opens, a snapshot is quarantined, a request
// is served degraded, an SLO endpoint enters fast burn — the server
// writes a diagnostic bundle capturing the moments before the anomaly:
// the recent request spans, the structured event ring, the SLO report,
// a metrics snapshot and a full goroutine dump. The bundle is one JSON
// file wrapped with a sha256 of its body so tooling (cmd/obscheck) can
// prove it wasn't truncated or edited.

// Bundle triggers (the MObsBundleWrites label values).
const (
	triggerManual      = "manual"
	triggerBreakerOpen = "breaker-open"
	triggerQuarantine  = "snapshot-quarantine"
	triggerDegraded    = "degraded-serve"
	triggerFastBurn    = "slo-fast-burn"
)

// bundleBody is the diagnostic payload. Metrics are embedded as the
// Prometheus exposition text rather than structured JSON: the exposition
// is already deterministic, and histogram +Inf bounds have no JSON
// rendering.
type bundleBody struct {
	Reason             string         `json:"reason"`
	Trace              string         `json:"trace,omitempty"`
	Node               string         `json:"node"`
	GeneratedUnixMicro int64          `json:"generated_us"`
	Spans              []obs.ReqSpan  `json:"spans"`
	Events             []obs.LogEvent `json:"events"`
	SLO                obs.SLOReport  `json:"slo"`
	Metrics            string         `json:"metrics"`
	Goroutines         string         `json:"goroutines"`
}

// bundleEnvelope wraps the body with its integrity checksum. Body is a
// RawMessage so the checked bytes are exactly the written bytes.
type bundleEnvelope struct {
	SHA256 string          `json:"sha256"`
	Body   json.RawMessage `json:"body"`
}

// buildBundle assembles and seals a bundle. trace, when non-zero, names
// the distributed request that tripped the anomaly.
func (s *Server) buildBundle(reason string, trace obs.TraceID) ([]byte, error) {
	var metrics bytes.Buffer
	_ = s.reg.WritePrometheus(&metrics)
	stack := make([]byte, 1<<20)
	stack = stack[:runtime.Stack(stack, true)]
	body := bundleBody{
		Reason:             reason,
		Trace:              trace.String(),
		Node:               s.nodeName(),
		GeneratedUnixMicro: time.Now().UnixMicro(),
		Spans:              s.flight.Spans(),
		Events:             s.events.Events(),
		SLO:                s.slo.Report(),
		Metrics:            metrics.String(),
		Goroutines:         string(stack),
	}
	if body.Spans == nil {
		body.Spans = []obs.ReqSpan{}
	}
	if body.Events == nil {
		body.Events = []obs.LogEvent{}
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(raw)
	return json.Marshal(bundleEnvelope{SHA256: hex.EncodeToString(sum[:]), Body: raw})
}

// writeBundle seals a bundle and writes it to BundleDir, returning the
// file path. Filenames embed the trigger, a wall-clock stamp and a
// process-unique ID so replicas sharing one directory never collide.
func (s *Server) writeBundle(reason string, trace obs.TraceID) (string, error) {
	data, err := s.buildBundle(reason, trace)
	if err == nil && s.cfg.BundleDir == "" {
		err = fmt.Errorf("no bundle directory configured")
	}
	var path string
	if err == nil {
		name := fmt.Sprintf("bitgen-bundle-%s-%d-%s.json",
			reason, time.Now().UnixNano(), obs.NewSpanID().String())
		path = filepath.Join(s.cfg.BundleDir, name)
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		s.reg.Counter(obs.MObsBundleErrors, obs.HObsBundleErrors).Inc()
		return "", err
	}
	s.reg.Counter(obs.MObsBundleWrites, obs.HObsBundleWrites, obs.L("trigger", reason)).Inc()
	s.reg.Gauge(obs.MObsBundleBytes, obs.HObsBundleBytes).Set(float64(len(data)))
	s.events.Emit(obs.LevelInfo, "bundle-written", trace,
		obs.FStr("trigger", reason), obs.FStr("path", path), obs.FInt("bytes", int64(len(data))))
	return path, nil
}

// onAnomalyEvent is the event log's Warn+ hook: events that indicate an
// anomaly trip an asynchronous, rate-limited bundle dump. It runs
// synchronously inside Emit, so it must only classify and hand off.
func (s *Server) onAnomalyEvent(ev obs.LogEvent) {
	var trigger string
	switch ev.Type {
	case "breaker":
		if to, _ := ev.Field("to"); to == "open" {
			trigger = triggerBreakerOpen
		}
	case "snapshot-quarantine":
		trigger = triggerQuarantine
	case "degraded-serve":
		trigger = triggerDegraded
	case "slo-fast-burn":
		trigger = triggerFastBurn
	}
	if trigger == "" {
		return
	}
	s.noteAnomaly(trigger, ev.Trace)
}

// noteAnomaly schedules one bundle dump for an anomaly, dropping
// triggers that arrive inside BundleMinInterval of the last dump or
// while a dump is already writing.
func (s *Server) noteAnomaly(trigger string, trace obs.TraceID) {
	if s.cfg.BundleDir == "" || s.cfg.BundleMinInterval < 0 {
		return
	}
	now := time.Now().UnixNano()
	last := atomic.LoadInt64(&s.lastBundleUnixNano)
	if last != 0 && now-last < int64(s.cfg.BundleMinInterval) {
		return
	}
	if !atomic.CompareAndSwapInt64(&s.lastBundleUnixNano, last, now) {
		return // another trigger won the slot
	}
	if !atomic.CompareAndSwapInt32(&s.bundleBusy, 0, 1) {
		return // a dump is already in flight
	}
	go func() {
		defer atomic.StoreInt32(&s.bundleBusy, 0)
		_, _ = s.writeBundle(trigger, trace)
	}()
}

// handleBundle serves GET /debug/bundle: a freshly sealed diagnostic
// bundle, returned inline and — when BundleDir is configured — also
// written to disk (trigger "manual", exempt from the anomaly rate
// limit).
func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	tc, _ := obs.TraceContextFrom(r.Context())
	data, err := s.buildBundle(triggerManual, tc.Trace)
	if err != nil {
		s.reg.Counter(obs.MObsBundleErrors, obs.HObsBundleErrors).Inc()
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error(), Class: "internal"})
		return
	}
	if s.cfg.BundleDir != "" {
		if _, werr := s.writeBundle(triggerManual, tc.Trace); werr != nil {
			// Disk trouble must not hide the inline bundle; the error
			// counter already recorded it.
			_ = werr
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}
