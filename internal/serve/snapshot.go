package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"bitgen"
	"bitgen/internal/obs"
	"bitgen/internal/snapshot"
)

// This file is the server's persistence layer: buildEngine is the cache's
// miss path (local snapshot, then peer snapshot, then compile with
// write-behind), warmStart pre-populates the cache at boot, and the scrub
// loop re-verifies resting snapshots so silent corruption is quarantined
// before a restart trips over it.

// buildEngine produces the engine for one cache miss. The ladder is
// cheapest-first: a verified local snapshot, a verified snapshot fetched
// from the key's ring owner, and only then a compile — whose result is
// persisted write-behind so the next boot (or peer) skips the work. Every
// rung that fails falls through; a request never fails because a snapshot
// was bad, only because the compile itself did.
func (s *Server) buildEngine(ctx context.Context, key string, patterns []string, foldCase bool) (*bitgen.Engine, error) {
	opts := s.engineOptions(foldCase)
	if eng, ok := s.loadLocalSnapshot(key, &opts); ok {
		return eng, nil
	}
	if eng, ok := s.fetchPeerSnapshot(ctx, key, &opts); ok {
		return eng, nil
	}
	s.reg.Counter(obs.MServeCompiles, obs.HServeCompiles).Inc()
	eng, err := bitgen.CompileContext(ctx, patterns, &opts)
	if err != nil {
		return nil, err
	}
	if s.snap != nil {
		// Write-behind: a failed save is counted by the store and the
		// request proceeds on the compiled engine regardless.
		_ = s.snap.Save(key, bitgen.EncodeEngine(eng))
	}
	return eng, nil
}

// loadLocalSnapshot tries the on-disk snapshot for key. A snapshot that
// fails verification for a file-condemning reason is quarantined; a
// negotiation refusal (options or key mismatch) leaves the file in place
// for whoever it does fit.
func (s *Server) loadLocalSnapshot(key string, opts *bitgen.Options) (*bitgen.Engine, bool) {
	if s.snap == nil {
		return nil, false
	}
	data, err := s.snap.Load(key)
	if err != nil {
		return nil, false // missing or unreadable: fall through to compile
	}
	eng, err := s.decodeSnapshot(key, data, opts)
	if err != nil {
		if s.noteVerifyFailure(err) {
			s.snap.Quarantine(key)
			s.noteQuarantine(key, err)
		}
		return nil, false
	}
	s.reg.Counter(obs.MSnapLoads, obs.HSnapLoads).Inc()
	return eng, true
}

// fetchPeerSnapshot asks the cluster for the key's snapshot and, on a
// verified hit, persists it locally so the next restart warm-starts
// without asking again.
func (s *Server) fetchPeerSnapshot(ctx context.Context, key string, opts *bitgen.Options) (*bitgen.Engine, bool) {
	if s.cluster == nil {
		return nil, false
	}
	data, from, err := s.cluster.FetchSnapshot(ctx, key)
	if err != nil {
		s.reg.Counter(obs.MSnapPeerFetchErrors, obs.HSnapPeerFetchErrors).Inc()
		return nil, false
	}
	if data == nil {
		return nil, false // no remote candidate had one
	}
	eng, err := s.decodeSnapshot(key, data, opts)
	if err != nil {
		// A peer shipped bytes we refuse: count both the refusal reason
		// and the failed fetch, but there is no local file to quarantine.
		s.noteVerifyFailure(err)
		s.reg.Counter(obs.MSnapPeerFetchErrors, obs.HSnapPeerFetchErrors).Inc()
		return nil, false
	}
	s.reg.Counter(obs.MSnapPeerFetches, obs.HSnapPeerFetches).Inc()
	if s.snap != nil {
		_ = s.snap.Save(key, data)
	}
	_ = from
	return eng, true
}

// decodeSnapshot decodes and fully verifies snapshot bytes for one
// addressed key: framing and checksums via DecodeEngine, then the
// content-address check — the decoded pattern set must hash back to the
// key it was stored under, so a renamed or cross-wired snapshot can never
// serve the wrong patterns.
func (s *Server) decodeSnapshot(key string, data []byte, opts *bitgen.Options) (*bitgen.Engine, error) {
	eng, err := bitgen.DecodeEngine(data, opts)
	if err != nil {
		return nil, err
	}
	if got := bitgen.PatternSetKey(eng.Patterns(), opts); got != key {
		return nil, &bitgen.SnapshotError{
			Reason: snapshot.ReasonKey,
			Detail: fmt.Sprintf("snapshot content hashes to set %.12s, addressed as %.12s", got, key),
		}
	}
	return eng, nil
}

// noteVerifyFailure counts one snapshot refusal under its reason label and
// reports whether the reason condemns the file itself (corrupt, truncated,
// wrong format version) as opposed to a negotiation refusal that leaves
// the file valid for a differently-configured loader.
func (s *Server) noteVerifyFailure(err error) (condemned bool) {
	reason := snapshot.ReasonStoreIO
	var se *bitgen.SnapshotError
	if errors.As(err, &se) {
		reason = se.Reason
	}
	s.reg.Counter(obs.MSnapVerifyFailures, obs.HSnapVerifyFailures, obs.L("reason", reason)).Inc()
	return reason == snapshot.ReasonCorrupt || reason == snapshot.ReasonTruncate ||
		reason == snapshot.ReasonVersion
}

// noteQuarantine records a condemned snapshot in the event log; the
// Warn level routes it through the anomaly flight recorder.
func (s *Server) noteQuarantine(key string, err error) {
	reason := snapshot.ReasonStoreIO
	var se *bitgen.SnapshotError
	if errors.As(err, &se) {
		reason = se.Reason
	}
	s.events.Emit(obs.LevelWarn, "snapshot-quarantine", obs.TraceID{},
		obs.FStr("key", key), obs.FStr("reason", reason), obs.FStr("error", err.Error()))
}

// warmStart pre-populates the engine cache from the snapshot directory at
// boot, newest-boot-cheapest: a restarted replica serves its working set
// with zero compiles. Snapshots that no longer decode (or no longer hash
// to their filename under the current base options) are skipped — and
// quarantined when the file itself is condemned.
func (s *Server) warmStart() {
	keys, err := s.snap.Keys()
	if err != nil {
		return
	}
	warm := s.reg.Counter(obs.MSnapWarmStarts, obs.HSnapWarmStarts)
	loaded := 0
	for _, key := range keys {
		if loaded >= s.cfg.MaxCachedEngines {
			break
		}
		data, err := s.snap.Load(key)
		if err != nil {
			continue
		}
		meta, err := snapshot.PeekMeta(data)
		if err != nil {
			if s.noteVerifyFailure(err) {
				s.snap.Quarantine(key)
				s.noteQuarantine(key, err)
			}
			continue
		}
		opts := s.engineOptions(meta.FoldCase)
		eng, err := s.decodeSnapshot(key, data, &opts)
		if err != nil {
			if s.noteVerifyFailure(err) {
				s.snap.Quarantine(key)
				s.noteQuarantine(key, err)
			}
			continue
		}
		if s.cache.insertReady(key, eng.Patterns(), meta.FoldCase, eng) {
			warm.Inc()
			loaded++
		}
	}
}

// scrubLoop periodically re-verifies every resting snapshot until the
// server context ends. Scrub results are visible as the
// bitgen_snapshot_scrub_runs / quarantines counters.
func (s *Server) scrubLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			res, err := s.snap.Scrub()
			s.noteScrub(res, err)
		}
	}
}

// ScrubNow runs one integrity scrub synchronously — the background
// scrubber's unit of work, exposed for bitgend's selftest and operators
// who want an on-demand pass. A server without a snapshot store scrubs
// nothing.
func (s *Server) ScrubNow() (snapshot.ScrubResult, error) {
	if s.snap == nil {
		return snapshot.ScrubResult{}, nil
	}
	res, err := s.snap.Scrub()
	s.noteScrub(res, err)
	return res, err
}

// noteScrub records a scrub verdict: Info when the pass was clean, Warn
// when it condemned snapshots (resting corruption is an anomaly worth a
// look even though serving already routed around it).
func (s *Server) noteScrub(res snapshot.ScrubResult, err error) {
	level := obs.LevelInfo
	if res.Quarantined > 0 || err != nil {
		level = obs.LevelWarn
	}
	fields := []obs.Field{
		obs.FInt("checked", int64(res.Checked)),
		obs.FInt("quarantined", int64(res.Quarantined)),
	}
	if err != nil {
		fields = append(fields, obs.FStr("error", err.Error()))
	}
	s.events.Emit(level, "snapshot-scrub", obs.TraceID{}, fields...)
}

// SnapshotStore exposes the store (nil when persistence is off) for
// bitgend's selftest.
func (s *Server) SnapshotStore() *snapshot.Store { return s.snap }

// handleSnapshot serves a pattern set's snapshot bytes to cluster peers
// (GET /v1/snapshot?set=<key>). A cached engine is the authority and is
// re-encoded fresh; otherwise verified on-disk bytes are served. Disk
// bytes that fail verification are quarantined and reported as absent —
// a peer is never handed a snapshot this replica would itself refuse.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required", Class: "bad_request"})
		return
	}
	key := r.URL.Query().Get("set")
	if err := snapshot.KeyPattern(key); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), Class: "bad_request"})
		return
	}
	if e := s.cache.lookup(key); e != nil {
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(bitgen.EncodeEngine(e.eng))
		return
	}
	if s.snap != nil {
		if data, err := s.snap.Load(key); err == nil {
			if verr := snapshot.Verify(data); verr == nil {
				w.Header().Set("Content-Type", "application/octet-stream")
				_, _ = w.Write(data)
				return
			} else if s.noteVerifyFailure(verr) {
				s.snap.Quarantine(key)
				s.noteQuarantine(key, verr)
			}
		}
	}
	writeJSON(w, http.StatusNotFound, errorResponse{Error: "no snapshot for set " + key, Class: "not_found"})
}
