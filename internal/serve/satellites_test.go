package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bitgen"
	"bitgen/internal/arena"
	"bitgen/internal/cluster"
)

// TestRetryAfterHeaders: 429 (queue full) and 503 (draining) rejections
// carry Retry-After so clients back off instead of hammering.
func TestRetryAfterHeaders(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})

	// Occupy the only execution slot and fill the one queue position.
	release, _, err := s.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		if rel, _, err := s.admit(context.Background()); err == nil {
			rel()
		}
	}()
	deadline := time.After(5 * time.Second)
	for s.Metrics().Snapshot().Gauges["bitgen_serve_queue_depth"] < 1 {
		select {
		case <-deadline:
			t.Fatal("waiter never queued")
		case <-time.After(time.Millisecond):
		}
	}

	resp, err := http.Post(hs.URL+"/v1/match", "application/json",
		strings.NewReader(`{"patterns":["ab"],"input":"ab"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterQueueFull {
		t.Errorf("429 Retry-After = %q, want %q", got, retryAfterQueueFull)
	}
	release()
	<-waiterDone

	// Drain: every new request is 503 with the drain back-off.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(hs.URL+"/v1/match", "application/json",
		strings.NewReader(`{"patterns":["ab"],"input":"ab"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterDraining {
		t.Errorf("503 Retry-After = %q, want %q", got, retryAfterDraining)
	}
}

// TestMaxTimeoutClamp: the server-side MaxTimeout caps client-requested
// timeouts and peer-propagated deadlines alike.
func TestMaxTimeoutClamp(t *testing.T) {
	s := mustNew(t, Config{MaxTimeout: 80 * time.Millisecond})
	defer s.Close()

	check := func(name string, r *http.Request, timeoutMS int, want time.Duration) {
		t.Helper()
		start := time.Now()
		ctx, cancel := s.requestCtx(r, timeoutMS)
		defer cancel()
		dl, ok := ctx.Deadline()
		if !ok {
			t.Fatalf("%s: no deadline", name)
		}
		got := dl.Sub(start)
		if got > want+20*time.Millisecond || got < want/2 {
			t.Errorf("%s: deadline in %v, want ~%v", name, got, want)
		}
	}

	r := httptest.NewRequest(http.MethodPost, "/v1/match", nil)
	check("client asks 60s, clamped", r, 60_000, 80*time.Millisecond)
	check("client asks 10ms, honored", r, 10, 10*time.Millisecond)

	fwd := httptest.NewRequest(http.MethodPost, "/v1/match", nil)
	fwd.Header.Set(cluster.HeaderDeadlineMS, "15")
	check("peer deadline tightens", fwd, 60_000, 15*time.Millisecond)
	fwd.Header.Set(cluster.HeaderDeadlineMS, "600000")
	check("peer deadline clamped too", fwd, 0, 80*time.Millisecond)
}

// TestMaxTimeoutClampEndToEnd: a request asking for a 60s budget against
// a 50ms MaxTimeout server comes back 504 promptly.
func TestMaxTimeoutClampEndToEnd(t *testing.T) {
	s := mustNew(t, Config{MaxTimeout: 50 * time.Millisecond})
	s.batchRun = func(eng *bitgen.Engine) func(context.Context, [][]byte) (*bitgen.MultiResult, error) {
		return func(ctx context.Context, inputs [][]byte) (*bitgen.MultiResult, error) {
			<-ctx.Done()
			return nil, bitgen.ErrCanceled
		}
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer s.Close()

	start := time.Now()
	code, _, er := postMatch(t, hs.URL, `{"patterns":["ab"],"input":"ab","timeout_ms":60000}`)
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%+v), want 504", code, er)
	}
	if er.Class != "canceled" {
		t.Errorf("class = %q, want canceled", er.Class)
	}
	if elapsed > 5*time.Second {
		t.Errorf("request took %v: MaxTimeout did not clamp the 60s budget", elapsed)
	}
}

// TestScanClientDisconnect: a client that vanishes mid-NDJSON-stream must
// release its execution slot and return every pooled arena buffer — the
// leak assertion the streaming layer is built around. Run under -race.
func TestScanClientDisconnect(t *testing.T) {
	s, hs := newTestServer(t, Config{})

	pr, pw := io.Pipe()
	feederStop := make(chan struct{})
	feederDone := make(chan struct{})
	go func() {
		defer close(feederDone)
		chunk := []byte(strings.Repeat("ab", 512))
		for {
			select {
			case <-feederStop:
				pw.Close()
				return
			default:
			}
			if _, err := pw.Write(chunk); err != nil {
				return
			}
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		hs.URL+"/v1/scan?pattern=ab&chunk=256", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one record so the scan is demonstrably mid-stream, then vanish.
	buf := make([]byte, 64)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("first read: %v", err)
	}
	cancel()
	resp.Body.Close()
	close(feederStop)
	<-feederDone

	// The slot must come back and the arena must balance once the
	// aborted scan unwinds.
	deadline := time.After(10 * time.Second)
	for {
		inFlight := s.Metrics().Snapshot().Gauges["bitgen_serve_in_flight"]
		balanced := arena.Default.CheckBalanced()
		if inFlight == 0 && balanced == nil {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("after disconnect: in_flight=%v, arena=%v", inFlight, balanced)
		case <-time.After(5 * time.Millisecond):
		}
	}
}
