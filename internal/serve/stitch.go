package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"bitgen/internal/obs"
)

// Cross-node trace stitching: each replica serves its fragment of a
// distributed trace at /v1/trace/{traceID} (its flight-recorder spans
// and event-ring entries tagged with that ID); StitchTrace fetches the
// fragment from every ring peer and merges them into one Chrome
// trace_event timeline with a lane per node. `bitgend -stitch` and the
// obs-cluster selftest drive it.

// TraceFragment is one node's slice of a distributed trace.
type TraceFragment struct {
	Node    string         `json:"node"`
	TraceID string         `json:"trace_id"`
	Spans   []obs.ReqSpan  `json:"spans"`
	Events  []obs.LogEvent `json:"events"`
}

// StitchedTrace is the merged view of one trace across a cluster.
type StitchedTrace struct {
	TraceID   string
	Fragments []TraceFragment // one per node that answered, request order
	Errors    []string        // nodes that could not be fetched
}

// StitchTrace fetches the trace's fragment from every node and merges
// them. Unreachable nodes are tolerated (recorded in Errors): stitching
// exists precisely to debug partially-failed clusters. It fails only
// when no node answers at all.
func StitchTrace(ctx context.Context, client *http.Client, nodes []string, traceID string) (*StitchedTrace, error) {
	if _, ok := obs.ParseTraceID(traceID); !ok {
		return nil, fmt.Errorf("stitch: trace ID %q is not 32 hex digits", traceID)
	}
	if client == nil {
		client = http.DefaultClient
	}
	st := &StitchedTrace{TraceID: traceID}
	for _, node := range nodes {
		frag, err := fetchFragment(ctx, client, node, traceID)
		if err != nil {
			st.Errors = append(st.Errors, fmt.Sprintf("%s: %v", node, err))
			continue
		}
		st.Fragments = append(st.Fragments, frag)
	}
	if len(st.Fragments) == 0 {
		return nil, fmt.Errorf("stitch: no node answered (%d errors: %v)", len(st.Errors), st.Errors)
	}
	return st, nil
}

func fetchFragment(ctx context.Context, client *http.Client, node, traceID string) (TraceFragment, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/trace/"+traceID, nil)
	if err != nil {
		return TraceFragment{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return TraceFragment{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return TraceFragment{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return TraceFragment{}, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var frag TraceFragment
	if err := json.Unmarshal(body, &frag); err != nil {
		return TraceFragment{}, err
	}
	if frag.Node == "" {
		frag.Node = node
	}
	return frag, nil
}

// NodesWithSpans lists the nodes that recorded at least one span for
// the trace, sorted.
func (st *StitchedTrace) NodesWithSpans() []string {
	seen := map[string]bool{}
	for _, f := range st.Fragments {
		if len(f.Spans) > 0 {
			seen[f.Node] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SpanCount returns the total spans across fragments.
func (st *StitchedTrace) SpanCount() int {
	n := 0
	for _, f := range st.Fragments {
		n += len(f.Spans)
	}
	return n
}

// chromeEvent is one trace_event entry (the subset Chrome's viewer and
// cmd/obscheck read).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Chrome renders the stitched trace as Chrome trace_event JSON: one
// process lane per node (pid = fragment index + 1, named by a
// process_name metadata record), complete spans as ph "X", events as
// ph "i" instants. Timestamps are wall-clock microseconds normalized to
// the earliest span so the viewer opens at t=0.
func (st *StitchedTrace) Chrome() ([]byte, error) {
	var t0 int64 = -1
	for _, f := range st.Fragments {
		for _, sp := range f.Spans {
			if t0 < 0 || sp.StartUnixMicro < t0 {
				t0 = sp.StartUnixMicro
			}
		}
		for _, ev := range f.Events {
			if t0 < 0 || ev.TimeUnixMicro < t0 {
				t0 = ev.TimeUnixMicro
			}
		}
	}
	if t0 < 0 {
		t0 = 0
	}
	var events []chromeEvent
	for i, f := range st.Fragments {
		pid := i + 1
		events = append(events, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": f.Node},
		})
		for _, sp := range f.Spans {
			args := map[string]any{
				"trace": sp.Trace,
				"span":  sp.Span,
			}
			if sp.Parent != "" {
				args["parent"] = sp.Parent
			}
			if sp.Status != 0 {
				args["status"] = sp.Status
			}
			for k, v := range sp.Attrs {
				args[k] = v
			}
			events = append(events, chromeEvent{
				Name: sp.Name, Phase: "X", PID: pid, TID: 1,
				TS: sp.StartUnixMicro - t0, Dur: sp.DurMicro, Args: args,
			})
		}
		for _, ev := range f.Events {
			args := map[string]any{"level": ev.Level.String()}
			if !ev.Trace.IsZero() {
				args["trace"] = ev.Trace.String()
			}
			for j := 0; j < int(ev.NFields); j++ {
				args[ev.Fields[j].Key] = ev.Fields[j].Value()
			}
			events = append(events, chromeEvent{
				Name: ev.Type, Phase: "i", PID: pid, TID: 1,
				TS: ev.TimeUnixMicro - t0, Scope: "p", Args: args,
			})
		}
	}
	return json.MarshalIndent(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	}, "", " ")
}
