package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bitgen"
	"bitgen/internal/cluster"
	"bitgen/internal/faultinject"
)

// bootCluster starts n in-process replicas with cluster routing enabled.
// Every replica gets its own seeded injector so tests can arm network
// faults on a single node's transport. Hedging is disabled (HedgeDelay
// -1) so failover is sequential and metric accounting is deterministic.
func bootCluster(t *testing.T, n int, mutate func(i int, cc *cluster.Config)) ([]*Server, []string, []*faultinject.Injector) {
	t.Helper()
	servers := make([]*Server, n)
	https := make([]*httptest.Server, n)
	urls := make([]string, n)
	injs := make([]*faultinject.Injector, n)
	for i := range servers {
		servers[i] = mustNew(t, Config{})
		https[i] = httptest.NewServer(servers[i].Handler())
		urls[i] = https[i].URL
		injs[i] = faultinject.New(uint64(1000 + i))
	}
	t.Cleanup(func() {
		for i := range servers {
			https[i].Close()
			servers[i].Close()
		}
	})
	for i := range servers {
		cc := cluster.Config{
			Self:       urls[i],
			Peers:      urls,
			HedgeDelay: -1,
			Seed:       uint64(77 + i),
			Inject:     injs[i],
		}
		if mutate != nil {
			mutate(i, &cc)
		}
		if err := servers[i].EnableCluster(cc); err != nil {
			t.Fatal(err)
		}
	}
	return servers, urls, injs
}

// findPatterns searches for a single-pattern set whose key is owned by
// ownerURL (and, when succURL != "", whose warm standby is succURL). All
// ring views agree, so any server's router can answer.
func findPatterns(t *testing.T, s *Server, ownerURL, succURL string) []string {
	t.Helper()
	for i := 0; i < 8192; i++ {
		pats := []string{fmt.Sprintf("clu%dster", i)}
		opts := s.engineOptions(false)
		key := bitgen.PatternSetKey(pats, &opts)
		rt := s.Cluster().Route(key)
		if rt.Owner == ownerURL && (succURL == "" || rt.Successor == succURL) {
			return pats
		}
	}
	t.Fatalf("no key found owned by %s with successor %s", ownerURL, succURL)
	return nil
}

func hostOf(url string) string { return strings.TrimPrefix(url, "http://") }

func matchBody(pats []string, input string) string {
	b, _ := json.Marshal(matchRequest{Patterns: pats, Input: input})
	return string(b)
}

// TestClusterForwardsToOwner: a request landing on a non-owner replica is
// forwarded to the key's ring owner; the sender never compiles the set.
func TestClusterForwardsToOwner(t *testing.T) {
	servers, urls, _ := bootCluster(t, 3, nil)
	pats := findPatterns(t, servers[0], urls[1], "")
	input := "zz" + pats[0] + "zz"

	code, mr, er := postMatch(t, urls[0], matchBody(pats, input))
	if code != http.StatusOK {
		t.Fatalf("forwarded match: status %d (%+v)", code, er)
	}
	if len(mr.Matches) != 1 || mr.Counts[pats[0]] != 1 {
		t.Errorf("forwarded match result = %+v, want exactly one match", mr)
	}

	s0 := servers[0].Metrics().Snapshot()
	s1 := servers[1].Metrics().Snapshot()
	fwdKey := fmt.Sprintf("bitgen_cluster_forwards_total{peer=%q}", hostOf(urls[1]))
	if got := s0.Counter(fwdKey); got != 1 {
		t.Errorf("sender forwards = %v, want 1", got)
	}
	if got := s0.Counter("bitgen_serve_engine_compiles_total"); got != 0 {
		t.Errorf("sender compiled %v engines, want 0 (owner does the work)", got)
	}
	if got := s1.Counter("bitgen_cluster_received_forwards_total"); got != 1 {
		t.Errorf("owner received forwards = %v, want 1", got)
	}
	if got := s1.Counter("bitgen_serve_engine_compiles_total"); got != 1 {
		t.Errorf("owner compiles = %v, want 1", got)
	}

	// The same request sent straight to the owner is a local serve.
	code, _, _ = postMatch(t, urls[1], matchBody(pats, input))
	if code != http.StatusOK {
		t.Fatalf("owner-local match: status %d", code)
	}
	if got := servers[1].Metrics().Snapshot().Counter("bitgen_cluster_local_serves_total"); got != 1 {
		t.Errorf("owner local serves = %v, want 1", got)
	}
}

// TestClusterFailoverAndDegraded walks the health ladder end to end: a
// refused owner fails over to the warm standby; with both candidates
// partitioned the routing node serves locally (degraded), and its answer
// is differentially identical to a single-node server's.
func TestClusterFailoverAndDegraded(t *testing.T) {
	servers, urls, injs := bootCluster(t, 3, nil)
	// A key owned by replica 1 whose standby is replica 2: replica 0 is
	// a pure router for it.
	pats := findPatterns(t, servers[0], urls[1], urls[2])
	input := "a" + pats[0] + "b" + pats[0]

	// Phase 1: owner refuses once; the forward fails over to the standby.
	injs[0].ArmNth(faultinject.PeerRefuse.For(hostOf(urls[1])), 1)
	code, mr, er := postMatch(t, urls[0], matchBody(pats, input))
	if code != http.StatusOK {
		t.Fatalf("failover match: status %d (%+v)", code, er)
	}
	if mr.Counts[pats[0]] != 2 {
		t.Errorf("failover Counts = %v, want 2", mr.Counts)
	}
	s0 := servers[0].Metrics().Snapshot()
	failKey := fmt.Sprintf("bitgen_cluster_forward_errors_total{peer=%q}", hostOf(urls[1]))
	if got := s0.Counter(failKey); got != 1 {
		t.Errorf("owner forward errors = %v, want 1", got)
	}
	if got := servers[2].Metrics().Snapshot().Counter("bitgen_cluster_received_forwards_total"); got != 1 {
		t.Errorf("standby received forwards = %v, want 1", got)
	}

	// Phase 2: partition replica 0 from both candidates. The request must
	// still succeed — served locally, counted as a degraded serve.
	injs[0].Arm(faultinject.PeerPartition.For(hostOf(urls[1])), faultinject.Spec{Nth: 1, Repeat: true})
	injs[0].Arm(faultinject.PeerPartition.For(hostOf(urls[2])), faultinject.Spec{Nth: 1, Repeat: true})
	code, degraded, er := postMatch(t, urls[0], matchBody(pats, input))
	if code != http.StatusOK {
		t.Fatalf("degraded match: status %d (%+v)", code, er)
	}
	if got := servers[0].Metrics().Snapshot().Counter("bitgen_cluster_degraded_serves_total"); got != 1 {
		t.Errorf("degraded serves = %v, want 1", got)
	}

	// Differential check: a plain single-node server must agree exactly.
	_, solo := newTestServer(t, Config{})
	code, want, _ := postMatch(t, solo.URL, matchBody(pats, input))
	if code != http.StatusOK {
		t.Fatalf("single-node reference: status %d", code)
	}
	if len(degraded.Matches) != len(want.Matches) {
		t.Fatalf("degraded matches = %v, single-node = %v", degraded.Matches, want.Matches)
	}
	for i := range want.Matches {
		if degraded.Matches[i] != want.Matches[i] {
			t.Errorf("degraded match %d = %v, single-node %v", i, degraded.Matches[i], want.Matches[i])
		}
	}
}

// TestClusterStandbyServe: when this node is a key's warm standby and the
// owner is down, it serves locally and counts a standby serve (not a
// degraded one — the ring planned for this).
func TestClusterStandbyServe(t *testing.T) {
	servers, urls, injs := bootCluster(t, 3, nil)
	pats := findPatterns(t, servers[0], urls[1], urls[0])
	injs[0].Arm(faultinject.PeerRefuse.For(hostOf(urls[1])), faultinject.Spec{Nth: 1, Repeat: true})

	code, mr, er := postMatch(t, urls[0], matchBody(pats, "x"+pats[0]+"y"))
	if code != http.StatusOK {
		t.Fatalf("standby match: status %d (%+v)", code, er)
	}
	if mr.Counts[pats[0]] != 1 {
		t.Errorf("standby Counts = %v, want 1", mr.Counts)
	}
	snap := servers[0].Metrics().Snapshot()
	if got := snap.Counter("bitgen_cluster_standby_serves_total"); got != 1 {
		t.Errorf("standby serves = %v, want 1", got)
	}
	if got := snap.Counter("bitgen_cluster_degraded_serves_total"); got != 0 {
		t.Errorf("degraded serves = %v, want 0 (standby is planned capacity)", got)
	}
}

// TestClusterScanForward: a streaming /v1/scan is forwarded to the owner
// and relayed line-by-line; output matches a single-node scan exactly.
func TestClusterScanForward(t *testing.T) {
	servers, urls, injs := bootCluster(t, 3, nil)
	pats := findPatterns(t, servers[0], urls[1], urls[2])
	input := strings.Repeat("xx"+pats[0], 5)
	scanURL := func(base string) string { return base + "/v1/scan?pattern=" + pats[0] }

	readAll := func(url string) (int, string) {
		resp, err := http.Post(url, "application/octet-stream", strings.NewReader(input))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	code, got := readAll(scanURL(urls[0]))
	if code != http.StatusOK {
		t.Fatalf("forwarded scan: status %d (%s)", code, got)
	}
	if servers[1].Metrics().Snapshot().Counter("bitgen_cluster_received_forwards_total") != 1 {
		t.Error("owner never received the scan forward")
	}
	_, solo := newTestServer(t, Config{})
	code, want := readAll(scanURL(solo.URL))
	if code != http.StatusOK {
		t.Fatalf("single-node scan: status %d", code)
	}
	if got != want {
		t.Errorf("forwarded scan output differs from single-node:\n got: %q\nwant: %q", got, want)
	}

	// Partition both candidates: the scan degrades to a local serve with
	// identical output (the buffered body is replayed locally).
	injs[0].Arm(faultinject.PeerPartition.For(hostOf(urls[1])), faultinject.Spec{Nth: 1, Repeat: true})
	injs[0].Arm(faultinject.PeerPartition.For(hostOf(urls[2])), faultinject.Spec{Nth: 1, Repeat: true})
	code, degraded := readAll(scanURL(urls[0]))
	if code != http.StatusOK {
		t.Fatalf("degraded scan: status %d", code)
	}
	if degraded != want {
		t.Errorf("degraded scan output differs from single-node:\n got: %q\nwant: %q", degraded, want)
	}
	if servers[0].Metrics().Snapshot().Counter("bitgen_cluster_degraded_serves_total") != 1 {
		t.Error("degraded scan not counted")
	}
}

// TestClusterScanMidStreamDrop: a relayed scan whose peer connection is
// cut mid-stream must end with whole JSON lines and a clean error
// trailer — never a torn record.
func TestClusterScanMidStreamDrop(t *testing.T) {
	servers, urls, injs := bootCluster(t, 3, func(i int, cc *cluster.Config) {
		cc.DropAfter = 100
	})
	pats := findPatterns(t, servers[0], urls[1], urls[2])
	// Enough matches that the NDJSON body far exceeds the 100-byte cut.
	input := strings.Repeat("x"+pats[0], 64)
	// Drop both candidates' streams so failover cannot mask the cut.
	injs[0].ArmNth(faultinject.PeerDrop.For(hostOf(urls[1])), 1)
	injs[0].ArmNth(faultinject.PeerDrop.For(hostOf(urls[2])), 1)

	resp, err := http.Post(urls[0]+"/v1/scan?pattern="+pats[0],
		"application/octet-stream", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 {
		t.Fatalf("relayed output too short: %q", raw)
	}
	for _, l := range lines[:len(lines)-1] {
		var m jsonMatch
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("torn relayed line %q: %v", l, err)
		}
	}
	var tr scanTrailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tr); err != nil {
		t.Fatalf("trailer line %q: %v", lines[len(lines)-1], err)
	}
	if tr.Done || !strings.Contains(tr.Error, "relay interrupted") {
		t.Errorf("trailer = %+v, want interrupted-relay error", tr)
	}
}

// TestClusterBreakerOpensAndSkips: repeated failures open the dead peer's
// breaker; later requests skip it without paying a connection attempt,
// and /v1/cluster reports the open state.
func TestClusterBreakerOpensAndSkips(t *testing.T) {
	servers, urls, injs := bootCluster(t, 3, func(i int, cc *cluster.Config) {
		cc.BreakerThreshold = 2
		cc.BreakerCooldown = time.Hour // stays open for the whole test
	})
	pats := findPatterns(t, servers[0], urls[1], urls[2])
	injs[0].Arm(faultinject.PeerRefuse.For(hostOf(urls[1])), faultinject.Spec{Nth: 1, Repeat: true})

	body := matchBody(pats, pats[0])
	for i := 0; i < 4; i++ {
		if code, _, er := postMatch(t, urls[0], body); code != http.StatusOK {
			t.Fatalf("request %d: status %d (%+v)", i, code, er)
		}
	}
	snap := servers[0].Metrics().Snapshot()
	failKey := fmt.Sprintf("bitgen_cluster_forward_errors_total{peer=%q}", hostOf(urls[1]))
	skipKey := fmt.Sprintf("bitgen_cluster_peer_skips_total{peer=%q}", hostOf(urls[1]))
	if got := snap.Counter(failKey); got != 2 {
		t.Errorf("forward errors = %v, want 2 (threshold opens the breaker)", got)
	}
	if got := snap.Counter(skipKey); got != 2 {
		t.Errorf("peer skips = %v, want 2 (remaining requests skip the open peer)", got)
	}

	resp, err := http.Get(urls[0] + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		Self  string `json:"self"`
		Nodes []string
		Peers []struct {
			URL   string `json:"url"`
			State string `json:"state"`
		} `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Self != urls[0] {
		t.Errorf("cluster view self = %q, want %q", view.Self, urls[0])
	}
	found := false
	for _, p := range view.Peers {
		if p.URL == urls[1] {
			found = true
			if p.State != "open" {
				t.Errorf("dead peer state = %q, want open", p.State)
			}
		}
	}
	if !found {
		t.Errorf("dead peer missing from /v1/cluster view: %+v", view.Peers)
	}
}

// TestClusterEndpointDisabled: without EnableCluster the endpoint 404s
// and requests never consult a router.
func TestClusterEndpointDisabled(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/v1/cluster without cluster mode: %d, want 404", resp.StatusCode)
	}
}

// TestClusterSelfTest runs the full fault-injection acceptance smoke:
// 3 replicas, replica kill, partition, differential correctness, breaker
// recovery. This is the same path `bitgend -cluster-selftest` and
// `make cluster-smoke` execute.
func TestClusterSelfTest(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster smoke")
	}
	if err := ClusterSelfTest(context.Background(), io.Discard); err != nil {
		t.Fatal(err)
	}
}
