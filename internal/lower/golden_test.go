package lower

import (
	"strings"
	"testing"

	"bitgen/internal/ir"
)

// TestListing3Golden locks the lowered form of the paper's running example
// /a(bc)*d/ (Listing 3): four character classes at the top, one while loop
// whose body advances through b then c accumulating new matches, and a
// final advance-and-intersect with d. Variable numbering may drift if the
// class compiler changes; the structural assertions below are the paper's.
func TestListing3Golden(t *testing.T) {
	p := MustSingle("a(bc)*d", "a(bc)*d")
	text := p.String()

	// Exactly one while loop.
	if got := strings.Count(text, "while ("); got != 1 {
		t.Fatalf("want exactly 1 while, got %d:\n%s", got, text)
	}
	// The loop body holds two advances (>> 1 through b, >> 1 through c),
	// an AndNot frontier update and an Or accumulation; one more advance
	// follows the loop for the final d.
	lines := strings.Split(text, "\n")
	loopStart := -1
	for i, l := range lines {
		if strings.Contains(l, "while (") {
			loopStart = i
			break
		}
	}
	inLoop := 0
	afterLoop := 0
	for _, l := range lines[loopStart+1:] {
		if strings.HasPrefix(l, "    ") {
			if strings.Contains(l, ">> 1") {
				inLoop++
			}
			continue
		}
		if strings.Contains(l, ">> 1") {
			afterLoop++
		}
	}
	if inLoop != 2 {
		t.Errorf("loop body advances = %d, want 2 (b then c):\n%s", inLoop, text)
	}
	if afterLoop != 1 {
		t.Errorf("post-loop advances = %d, want 1 (the final d):\n%s", afterLoop, text)
	}
	st := ir.CollectStats(p)
	if st.Star != 0 {
		t.Errorf("multi-character star must not use MatchStar: %+v", st)
	}
}

// TestClassStarGolden locks the MatchStar form for a single-class star:
// /ab*c/ compiles with zero while loops and one StarThru.
func TestClassStarGolden(t *testing.T) {
	p := MustSingle("ab*c", "ab*c")
	st := ir.CollectStats(p)
	if st.While != 0 || st.Star != 1 {
		t.Fatalf("ab*c stats = %+v, want While=0 Star=1\n%s", st, p)
	}
	if !strings.Contains(p.String(), "MatchStar(") {
		t.Fatalf("missing MatchStar in:\n%s", p)
	}
}
