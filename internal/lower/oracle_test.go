package lower

import (
	"math/rand"
	"regexp"
	"testing"

	"bitgen/internal/bitstream"
	"bitgen/internal/ir"
	"bitgen/internal/rx"
	"bitgen/internal/transpose"
)

// oracleEnds computes, byte-at-a-time via Go's regexp, the all-match end
// positions: bit j set iff some i <= j+1 exists with pattern matching
// input[i:j+1] exactly (i == j+1 is the empty match ending at j). Nullable
// patterns own one extra position — the empty match at end-of-input — so
// their oracle stream is len(input)+1 bits with the last bit set.
func oracleEnds(t *testing.T, ast rx.Node, input []byte) *bitstream.Stream {
	t.Helper()
	re, err := regexp.Compile("^(?:" + rx.ToGoRegexp(ast) + ")$")
	if err != nil {
		t.Fatalf("oracle compile of %q: %v", rx.ToGoRegexp(ast), err)
	}
	n := len(input)
	size := n
	if rx.MatchesEmpty(ast) {
		size = n + 1
	}
	out := bitstream.New(size)
	for j := 0; j < n; j++ {
		for i := 0; i <= j+1; i++ {
			if re.Match(input[i : j+1]) {
				out.Set(j)
				break
			}
		}
	}
	if size > n {
		out.Set(n)
	}
	return out
}

// lowerAndRun lowers the AST and interprets the program over input.
func lowerAndRun(t *testing.T, ast rx.Node, input []byte) *bitstream.Stream {
	t.Helper()
	p, err := Group([]Regex{{Name: "re", AST: ast}}, Options{})
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	res, err := ir.Interpret(p, transpose.Transpose(input), ir.InterpOptions{})
	if err != nil {
		t.Fatalf("Interpret: %v\nprogram:\n%s", err, p)
	}
	return res.Outputs["re"]
}

func checkAgainstOracle(t *testing.T, pattern string, input string) {
	t.Helper()
	ast := rx.MustParse(pattern)
	got := lowerAndRun(t, ast, []byte(input))
	want := oracleEnds(t, ast, []byte(input))
	if !got.Equal(want) {
		t.Errorf("pattern %q input %q:\n got  %s\n want %s",
			pattern, input, got, want)
	}
}

func TestLowerAgainstOracleFixedCases(t *testing.T) {
	cases := []struct{ pattern, input string }{
		{"cat", "bobcat"},
		{"cat", "catcatcat"},
		{"a(bc)*d", "ad abcd abcbcbcd abd"},
		{"(abc)|d", "abcdabce"},
		{"a|b|c", "xaybzc"},
		{"ab*c", "ac abc abbbbc abxc"},
		{"a+", "aaabaaa"},
		{"a?b", "b ab xb"},
		{"a{2,4}", "a aa aaa aaaa aaaaa aaaaaa"},
		{"a{3}", "aaaa"},
		{"a{2,}", "aaaaa baa"},
		{"(ab)+", "ababab ab ba"},
		{"[a-c]x", "ax bx cx dx"},
		{"[^a]b", "ab bb cb"},
		{".a", "xa\na a"},
		{"a.c", "abc a\nc axc"},
		{"(a|b)(c|d)", "ac bd ad bc xx"},
		{"x(y|z)?w", "xw xyw xzw xvw"},
		{"(a|ab)(c|bc)", "abc"},
		{"a*", "aaa"},
		{"(a*)(b*)", "aabb"},
		{"((a|b)*c){2}", "abcac bcbc cc"},
		{"\\d+:\\d+", "12:34 5:6 :7"},
		{"[a-z]+@[a-z]+", "joe@example x@y @z"},
		{"(0|1)*1", "0101101"},
		{"(aa|aaa)+", "aaaaaaa"},
		{"z{0,2}q", "q zq zzq zzzq"},
	}
	for _, c := range cases {
		checkAgainstOracle(t, c.pattern, c.input)
	}
}

func TestLowerListing3Shape(t *testing.T) {
	p := MustSingle("re", "a(bc)*d")
	st := ir.CollectStats(p)
	if st.While != 1 {
		t.Errorf("a(bc)*d lowered with %d while loops, want 1\n%s", st.While, p)
	}
	// Star body: two advances; final concat with d: one more.
	if st.Shift < 3 {
		t.Errorf("a(bc)*d lowered with %d shifts, want >= 3\n%s", st.Shift, p)
	}
}

func TestLowerSharesClassesAcrossGroup(t *testing.T) {
	r1 := Regex{Name: "r1", AST: rx.MustParse("abc")}
	r2 := Regex{Name: "r2", AST: rx.MustParse("abd")}
	p, err := Group([]Regex{r1, r2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Classes a, b, c, d: exactly four distinct class expansions; since
	// each singleton costs 7 ops, a shared build stays well under the
	// unshared 6*7.
	st := ir.CollectStats(p)
	ccOps := st.And + st.Or + st.Not
	if ccOps > 4*8+8 {
		t.Errorf("group lowering did not share classes: %d class-ish ops\n%s", ccOps, p)
	}
	if len(p.Outputs) != 2 {
		t.Fatalf("outputs = %d, want 2", len(p.Outputs))
	}
}

func TestLowerMultiRegexGroupResults(t *testing.T) {
	regexes := []Regex{
		{Name: "cat", AST: rx.MustParse("cat")},
		{Name: "dog", AST: rx.MustParse("dog")},
		{Name: "animal", AST: rx.MustParse("(cat)|(dog)")},
	}
	p, err := Group(regexes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("catdogcat")
	res, err := ir.Interpret(p, transpose.Transpose(input), ir.InterpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs["cat"].Positions(); len(got) != 2 || got[0] != 2 || got[1] != 8 {
		t.Errorf("cat ends = %v", got)
	}
	if got := res.Outputs["dog"].Positions(); len(got) != 1 || got[0] != 5 {
		t.Errorf("dog ends = %v", got)
	}
	union := res.Outputs["cat"].Or(res.Outputs["dog"])
	if !union.Equal(res.Outputs["animal"]) {
		t.Errorf("animal != cat|dog: %s vs %s", res.Outputs["animal"], union)
	}
}

func TestLowerEmptyMatchingPatterns(t *testing.T) {
	// Patterns that can match empty must mark every position, including the
	// end-of-input offset: 4 positions for a 3-byte input.
	for _, pattern := range []string{"a*", "a?", "(ab)*", "a{0,3}"} {
		got := lowerAndRun(t, rx.MustParse(pattern), []byte("xyz"))
		if got.Len() != 4 || got.Popcount() != 4 {
			t.Errorf("%q on xyz = %s, want all ones incl. end-of-input", pattern, got)
		}
	}
}

func TestLowerUnrollBudget(t *testing.T) {
	ast := rx.Repeat{Sub: rx.MustParse("(abcde){10}"), Min: 10, Max: 10}
	_, err := Group([]Regex{{Name: "big", AST: ast}}, Options{MaxUnroll: 50})
	if err == nil {
		t.Fatal("expected unroll budget error")
	}
}

func TestQuickLowerMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized oracle comparison")
	}
	rng := rand.New(rand.NewSource(20250705))
	alphabet := []byte("abc")
	for trial := 0; trial < 300; trial++ {
		ast := rx.Generate(rng, rx.GenOptions{MaxDepth: 3, Alphabet: alphabet, MaxRepeat: 3})
		n := 1 + rng.Intn(48)
		input := make([]byte, n)
		for i := range input {
			input[i] = alphabet[rng.Intn(len(alphabet))]
		}
		got := lowerAndRun(t, ast, input)
		want := oracleEnds(t, ast, input)
		if !got.Equal(want) {
			t.Fatalf("trial %d: pattern %q input %q:\n got  %s\n want %s",
				trial, ast.String(), input, got, want)
		}
	}
}

func TestLowerFoldCaseAgainstOracle(t *testing.T) {
	pattern := "ab[c-e]f"
	ast, err := rx.ParseWith(pattern, rx.Options{FoldCase: true})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("ABCF abdf aBEf ABXF")
	got := lowerAndRun(t, ast, input)
	re := regexp.MustCompile("(?i)^(?:" + pattern + ")$")
	want := bitstream.New(len(input))
	for j := 0; j < len(input); j++ {
		for i := 0; i <= j; i++ {
			if re.Match(input[i : j+1]) {
				want.Set(j)
				break
			}
		}
	}
	if !got.Equal(want) {
		t.Fatalf("fold-case mismatch:\n got  %s\n want %s", got, want)
	}
}

func TestLowerFullByteRange(t *testing.T) {
	// Binary signature over a full-range input (the ClamAV shape).
	pattern := "\\x00\\xff\\x80"
	ast := rx.MustParse(pattern)
	input := []byte{0, 0xff, 0x80, 1, 0, 0xff, 0x80, 0xff}
	got := lowerAndRun(t, ast, input)
	if p := got.Positions(); len(p) != 2 || p[0] != 2 || p[1] != 6 {
		t.Fatalf("positions = %v, want [2 6]", p)
	}
}
