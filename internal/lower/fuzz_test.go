package lower

import (
	"testing"

	"bitgen/internal/rx"
)

// FuzzLower asserts every parseable pattern lowers to a valid program (or
// reports a clean budget error), never panicking.
func FuzzLower(f *testing.F) {
	for _, seed := range []string{
		"a(bc)*d", "x(y|z)?w", "a{0,3}b", "(a*)*", "((a|b)*c){2}", "\\x41+",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, pattern string) {
		if len(pattern) > 200 {
			return // keep unroll sizes sane under fuzzing
		}
		ast, err := rx.Parse(pattern)
		if err != nil {
			return
		}
		if _, err := Group(
			[]Regex{{Name: "f", AST: ast}},
			Options{MaxUnroll: 2000},
		); err != nil {
			// Budget errors are expected for large bounded repetitions.
			return
		}
	})
}
