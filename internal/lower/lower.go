// Package lower compiles regular-expression ASTs into bitstream programs,
// implementing the paper's Figure 2 rules with all-match semantics: bit i of
// the output stream is 1 iff a match of the regex ends at input position i.
//
// Lowering threads a *marker* through the AST. A marker is the bitstream of
// cursor positions where the already-consumed prefix has just finished. The
// initial marker is the virtual "everywhere" marker (a match may start at
// any position, including before position 0), so the first character class
// of a pattern lowers to its raw match stream, exactly as in Listing 3.
// Subsequent classes lower to (M >> 1) & S_cc (Figure 2 (b)); alternation is
// a union (2 (c)); bounded repetition unrolls at compile time (2 (d)); and
// Kleene star becomes the fixed-point while loop of 2 (e).
package lower

import (
	"fmt"

	"bitgen/internal/charclass"
	"bitgen/internal/ir"
	"bitgen/internal/obs"
	"bitgen/internal/rx"
)

// Regex pairs a pattern with a display name for the output stream.
type Regex struct {
	Name string
	AST  rx.Node
}

// Options control lowering.
type Options struct {
	// MaxUnroll caps the total compile-time expansion of bounded
	// repetition per regex; zero means the default of 4096 expanded
	// sub-lowerings.
	MaxUnroll int
	// Obs, when non-nil, records a span per lowered group. Nil is free.
	Obs *obs.Observer
	// SharedCC maps character classes the engine computes once per scan to
	// their extended-basis slot; groups read MatchBasis{8+slot} for them
	// instead of expanding the class inline. SharedExtBits is the engine's
	// total extended-stream count (>= every slot + 1).
	SharedCC      map[charclass.Class]int
	SharedExtBits int
}

const defaultMaxUnroll = 4096

// Group lowers a set of regexes into a single bitstream program with one
// output per regex. Character-class match streams are computed once at the
// top of the program and shared across all regexes in the group, as the
// multi-regex grouping of Section 7 requires.
func Group(regexes []Regex, opts Options) (*ir.Program, error) {
	if opts.MaxUnroll == 0 {
		opts.MaxUnroll = defaultMaxUnroll
	}
	span := opts.Obs.Span("compile", "lower-group", 0).Arg("regexes", len(regexes))
	defer span.End()
	b := ir.NewBuilder()
	if opts.SharedCC != nil || opts.SharedExtBits > 0 {
		b.SetShared(opts.SharedCC, opts.SharedExtBits)
	}
	// Normalize ASTs first: alternations of classes merge into single
	// classes, degenerate repetitions collapse — smaller programs, same
	// language (rx.Simplify is property-tested for equivalence).
	simplified := make([]rx.Node, len(regexes))
	for i, re := range regexes {
		simplified[i] = rx.Simplify(re.AST)
	}
	// Pre-pass: emit every character class at top level so that loop
	// bodies only contain shift/bitwise instructions (the paper's listings
	// always hoist match(text_trans, CCs) to the program head).
	for _, ast := range simplified {
		rx.Walk(ast, func(n rx.Node) {
			if cc, ok := n.(rx.CC); ok {
				b.MatchClass(cc.Class)
			}
		})
	}
	l := &lowerer{b: b, budget: opts.MaxUnroll}
	for i, re := range regexes {
		l.budget = opts.MaxUnroll
		m, err := l.lower(anyMarker, simplified[i])
		if err != nil {
			return nil, fmt.Errorf("lower %q: %w", re.Name, err)
		}
		v := l.materialize(m)
		if rx.MatchesEmpty(simplified[i]) {
			// A nullable regex also matches the empty string at the
			// end-of-input offset; executors add that extra position.
			b.OutputNullable(re.Name, v)
		} else {
			b.Output(re.Name, v)
		}
	}
	p := b.Program()
	if err := ir.Validate(p); err != nil {
		return nil, fmt.Errorf("lower: generated invalid program: %w", err)
	}
	span.Arg("instructions", ir.CollectStats(p).Total())
	return p, nil
}

// Classes returns the distinct character classes a set of regexes expands
// during lowering, in deterministic first-use order over the simplified
// ASTs. The engine uses it to decide which classes appear in several
// partition groups and are worth computing once per scan.
func Classes(regexes []Regex) []charclass.Class {
	var out []charclass.Class
	seen := make(map[charclass.Class]bool)
	for _, re := range regexes {
		rx.Walk(rx.Simplify(re.AST), func(n rx.Node) {
			if cc, ok := n.(rx.CC); ok && !seen[cc.Class] {
				seen[cc.Class] = true
				out = append(out, cc.Class)
			}
		})
	}
	return out
}

// SharedProgram lowers a list of character classes into one bitstream
// program with an output per class, named by the class content key and in
// slot order. The engine interprets it once per scan chunk over the raw
// basis and binds the outputs as extended basis streams 8..8+n-1, so every
// group that references a shared class reads the same precomputed stream.
func SharedProgram(classes []charclass.Class) (*ir.Program, error) {
	b := ir.NewBuilder()
	for _, cl := range classes {
		b.Output(cl.Key(), b.MatchClass(cl))
	}
	p := b.Program()
	if err := ir.Validate(p); err != nil {
		return nil, fmt.Errorf("lower: shared-class program invalid: %w", err)
	}
	return p, nil
}

// Single lowers one pattern string with default options.
func Single(name, pattern string) (*ir.Program, error) {
	ast, err := rx.Parse(pattern)
	if err != nil {
		return nil, err
	}
	return Group([]Regex{{Name: name, AST: ast}}, Options{})
}

// MustSingle lowers one pattern and panics on error (tests, tables).
func MustSingle(name, pattern string) *ir.Program {
	p, err := Single(name, pattern)
	if err != nil {
		panic(err)
	}
	return p
}

// marker is a cursor bitstream, or the virtual "everywhere" marker.
type marker struct {
	v   ir.VarID
	any bool
}

var anyMarker = marker{v: ir.NoVar, any: true}

type lowerer struct {
	b      *ir.Builder
	budget int
}

func (l *lowerer) spend() error {
	l.budget--
	if l.budget < 0 {
		return fmt.Errorf("compile-time expansion budget exhausted (MaxUnroll)")
	}
	return nil
}

// materialize converts a marker to a concrete variable (the everywhere
// marker becomes an all-ones stream: an empty-matching pattern matches at
// every position under all-match semantics).
func (l *lowerer) materialize(m marker) ir.VarID {
	if !m.any {
		return m.v
	}
	return l.b.Emit(ir.Ones{})
}

// lower emits instructions matching node starting from marker m and returns
// the marker of match end positions.
func (l *lowerer) lower(m marker, node rx.Node) (marker, error) {
	if err := l.spend(); err != nil {
		return marker{}, err
	}
	switch x := node.(type) {
	case rx.CC:
		return l.lowerCC(m, x.Class), nil
	case rx.Concat:
		cur := m
		var err error
		for _, part := range x.Parts {
			cur, err = l.lower(cur, part)
			if err != nil {
				return marker{}, err
			}
		}
		return cur, nil
	case rx.Alt:
		return l.lowerAlt(m, x.Alts)
	case rx.Star:
		return l.lowerStar(m, x.Sub)
	case rx.Plus:
		first, err := l.lower(m, x.Sub)
		if err != nil {
			return marker{}, err
		}
		return l.lowerStar(first, x.Sub)
	case rx.Opt:
		matched, err := l.lower(m, x.Sub)
		if err != nil {
			return marker{}, err
		}
		return l.union(m, matched), nil
	case rx.Repeat:
		return l.lowerRepeat(m, x)
	}
	return marker{}, fmt.Errorf("unknown AST node %T", node)
}

// lowerCC implements Figure 2 (a)/(b): the class match stream, advanced and
// intersected with the incoming marker.
func (l *lowerer) lowerCC(m marker, cl charclass.Class) marker {
	cc := l.b.MatchClass(cl)
	if m.any {
		// Everywhere marker: every position may start a match, so the end
		// positions of a single class are simply its match stream.
		return marker{v: cc}
	}
	adv := l.b.Advance(m.v, 1)
	return marker{v: l.b.And(adv, cc)}
}

// union ORs two markers (Figure 2 (c)).
func (l *lowerer) union(a, b marker) marker {
	if a.any || b.any {
		return anyMarker
	}
	return marker{v: l.b.Or(a.v, b.v)}
}

func (l *lowerer) lowerAlt(m marker, alts []rx.Node) (marker, error) {
	if len(alts) == 0 {
		return m, nil
	}
	acc, err := l.lower(m, alts[0])
	if err != nil {
		return marker{}, err
	}
	for _, alt := range alts[1:] {
		next, err := l.lower(m, alt)
		if err != nil {
			return marker{}, err
		}
		acc = l.union(acc, next)
	}
	return acc, nil
}

// lowerStar lowers sub* from marker m. When sub is (equivalent to) a single
// character class, it emits the fused MatchStar instruction — Parabix's
// carry-smear identity — instead of a loop; otherwise it emits Figure 2
// (e)'s fixed-point while loop accumulating every position reachable by
// repeated applications of sub (the marker itself is included: star matches
// zero repetitions).
func (l *lowerer) lowerStar(m marker, sub rx.Node) (marker, error) {
	if m.any {
		// Zero repetitions already leave a cursor everywhere.
		return anyMarker, nil
	}
	if cl, ok := asSingleClass(sub); ok {
		cc := l.b.MatchClass(cl)
		return marker{v: l.b.Emit(ir.StarThru{M: m.v, C: cc})}, nil
	}
	// Note: when sub itself can match empty, t below includes the frontier
	// positions; the AndNot against result removes them, so the fixpoint
	// still converges while non-empty paths keep extending the marker.
	result := l.b.NewVar()
	l.b.EmitTo(result, ir.Copy{Src: m.v})
	frontier := l.b.NewVar()
	l.b.EmitTo(frontier, ir.Copy{Src: m.v})
	var loopErr error
	l.b.While(frontier, func() {
		t, err := l.lower(marker{v: frontier}, sub)
		if err != nil {
			loopErr = err
			return
		}
		// New positions only: frontier = t & ~result; result |= frontier.
		l.b.EmitTo(frontier, ir.Bin{Op: ir.OpAndNot, X: l.materialize(t), Y: result})
		l.b.EmitTo(result, ir.Bin{Op: ir.OpOr, X: result, Y: frontier})
	})
	if loopErr != nil {
		return marker{}, loopErr
	}
	return marker{v: result}, nil
}

// asSingleClass reports whether node matches exactly the strings of length
// one drawn from some class (so node* is a class closure): a CC, an
// alternation of such nodes, or x+ / x{1,} of such a node (since (x+)* ==
// x*). Opt and Star sub-cases are excluded: they match empty, and while
// (x?)* == x* too, the lowering of the enclosing star already handles the
// empty path through the general union, so restricting to non-empty shapes
// keeps this predicate simple and evidently correct.
func asSingleClass(node rx.Node) (charclass.Class, bool) {
	switch x := node.(type) {
	case rx.CC:
		return x.Class, true
	case rx.Alt:
		var union charclass.Class
		for _, alt := range x.Alts {
			cl, ok := asSingleClass(alt)
			if !ok {
				return charclass.Class{}, false
			}
			union = union.Union(cl)
		}
		return union, len(x.Alts) > 0
	case rx.Concat:
		if len(x.Parts) == 1 {
			return asSingleClass(x.Parts[0])
		}
	case rx.Plus:
		// (c+)* reaches exactly the same closure as c*.
		return asSingleClass(x.Sub)
	}
	return charclass.Class{}, false
}

// lowerRepeat implements Figure 2 (d): bounded repetition unrolls at
// compile time; {n,} chains n copies and then a star.
func (l *lowerer) lowerRepeat(m marker, rep rx.Repeat) (marker, error) {
	cur := m
	var err error
	for i := 0; i < rep.Min; i++ {
		cur, err = l.lower(cur, rep.Sub)
		if err != nil {
			return marker{}, err
		}
	}
	if rep.Max == rx.Unbounded {
		return l.lowerStar(cur, rep.Sub)
	}
	acc := cur
	for i := rep.Min; i < rep.Max; i++ {
		cur, err = l.lower(cur, rep.Sub)
		if err != nil {
			return marker{}, err
		}
		acc = l.union(acc, cur)
	}
	return acc, nil
}
