package gpusim

// CTAStats are the per-CTA event counters the kernel executors maintain —
// the same quantities Nsight Compute reports for the paper's Tables 4-6.
type CTAStats struct {
	// UnitOps counts W-bit integer operations executed by the CTA's
	// threads (bitwise ops, shifts, predicate reductions).
	UnitOps int64
	// DRAMReadBytes / DRAMWriteBytes are global-memory traffic.
	DRAMReadBytes  int64
	DRAMWriteBytes int64
	// SMemReadBytes / SMemWriteBytes are shared-memory traffic (shift
	// neighborhoods, condition reductions).
	SMemReadBytes  int64
	SMemWriteBytes int64
	// Barriers counts CTA-wide synchronizations.
	Barriers int64
	// ShiftBarriers counts the subset of barriers caused by SHIFT
	// instructions (the #Sync column of Table 6).
	ShiftBarriers int64
	// Loops is the number of separate block-wise loops executed
	// (the #Loop column of Table 4; 1 under full interleaving).
	Loops int64
	// IntermediateStreams is the number of temporary bitstreams
	// materialized in global memory (Table 4).
	IntermediateStreams int64
	// Windows is the number of block iterations executed.
	Windows int64
	// CommittedBits / RecomputedBits measure Dependency-Aware
	// Thread-Data Mapping overhead (Table 5): committed bits advance the
	// output; recomputed bits are overlap work.
	CommittedBits  int64
	RecomputedBits int64
	// DynDeltaSum / DynDeltaMax track the runtime (dynamic) overlap
	// distance beyond the static Δ, in bits, summed over windows and the
	// maximum seen.
	DynDeltaSum int64
	DynDeltaMax int64
	// StaticDelta echoes the compile-time Δ of the program run.
	StaticDelta int64
	// GuardSkips counts taken zero-block guards; GuardChecks counts
	// evaluated guards; SkippedStmts counts statements skipped.
	GuardSkips   int64
	GuardChecks  int64
	SkippedStmts int64
	// SMemPeakBytes is the high-water shared-memory footprint.
	SMemPeakBytes int64
	// WhileIterations counts loop-body executions across windows.
	WhileIterations int64
}

// Add accumulates other into s.
func (s *CTAStats) Add(other CTAStats) {
	s.UnitOps += other.UnitOps
	s.DRAMReadBytes += other.DRAMReadBytes
	s.DRAMWriteBytes += other.DRAMWriteBytes
	s.SMemReadBytes += other.SMemReadBytes
	s.SMemWriteBytes += other.SMemWriteBytes
	s.Barriers += other.Barriers
	s.ShiftBarriers += other.ShiftBarriers
	s.Loops += other.Loops
	s.IntermediateStreams += other.IntermediateStreams
	s.Windows += other.Windows
	s.CommittedBits += other.CommittedBits
	s.RecomputedBits += other.RecomputedBits
	s.DynDeltaSum += other.DynDeltaSum
	if other.DynDeltaMax > s.DynDeltaMax {
		s.DynDeltaMax = other.DynDeltaMax
	}
	if other.StaticDelta > s.StaticDelta {
		s.StaticDelta = other.StaticDelta
	}
	s.GuardSkips += other.GuardSkips
	s.GuardChecks += other.GuardChecks
	s.SkippedStmts += other.SkippedStmts
	if other.SMemPeakBytes > s.SMemPeakBytes {
		s.SMemPeakBytes = other.SMemPeakBytes
	}
	s.WhileIterations += other.WhileIterations
}

// RecomputePercent returns recomputed bits as a percentage of committed
// bits (Table 5's Recompute %).
func (s *CTAStats) RecomputePercent() float64 {
	if s.CommittedBits == 0 {
		return 0
	}
	return 100 * float64(s.RecomputedBits) / float64(s.CommittedBits)
}

// KernelStats aggregates a whole launch.
type KernelStats struct {
	// PerCTA holds each CTA's counters.
	PerCTA []CTAStats
	// InputBytes is the input stream length processed.
	InputBytes int64
	// TransposeBytes is the traffic of the preprocessing transpose kernel.
	TransposeBytes int64
}

// Total sums all CTAs.
func (k *KernelStats) Total() CTAStats {
	var t CTAStats
	for i := range k.PerCTA {
		t.Add(k.PerCTA[i])
	}
	return t
}

// MeanPerCTA averages counters across CTAs (the "average per CTA" rows of
// Tables 4-6).
func (k *KernelStats) MeanPerCTA() CTAStats {
	t := k.Total()
	n := int64(len(k.PerCTA))
	if n == 0 {
		return t
	}
	t.UnitOps /= n
	t.DRAMReadBytes /= n
	t.DRAMWriteBytes /= n
	t.SMemReadBytes /= n
	t.SMemWriteBytes /= n
	t.Barriers /= n
	t.ShiftBarriers /= n
	t.Loops /= n
	t.IntermediateStreams /= n
	t.Windows /= n
	t.CommittedBits /= n
	t.RecomputedBits /= n
	t.DynDeltaSum /= n
	t.GuardSkips /= n
	t.GuardChecks /= n
	t.SkippedStmts /= n
	t.WhileIterations /= n
	return t
}
