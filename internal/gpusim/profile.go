package gpusim

import (
	"encoding/json"

	"bitgen/internal/obs"
)

// ProfileSchema versions the profile artifact's JSON layout.
const ProfileSchema = "bitgen-profile/v1"

// Profile is the per-scan structured artifact joining the analytic
// TimeBreakdown cost model with the observed Nsight-equivalent counters
// per kernel launch — the join the paper's evaluation tables are made of
// (Tables 4-6 are columns of Totals and Kernels; Figure 12's breakdown is
// Time). It marshals to stable JSON for the bitbench "profile" artifact
// and the rxgrep trace workflow.
type Profile struct {
	Schema string `json:"schema"`
	// Device is the GPU profile the times were modeled on.
	Device string `json:"device"`
	// Backend names the rung that served the scan (always "bitstream"
	// when a profile exists: fallback rungs do not model GPU execution).
	Backend string `json:"backend"`
	// InputBytes is the scanned input length; TransposeBytes the S2P
	// preprocessing traffic charged to the launch.
	InputBytes     int64 `json:"input_bytes"`
	TransposeBytes int64 `json:"transpose_bytes"`
	// Time is the launch-wide modeled breakdown; ThroughputMBs the
	// paper's throughput metric derived from it.
	Time          TimeBreakdown `json:"time"`
	ThroughputMBs float64       `json:"throughput_mbs"`
	// Totals sums every kernel's counters (identical to summing Kernels).
	Totals CTAStats `json:"totals"`
	// Kernels holds one entry per kernel launch (one CTA group).
	Kernels []KernelProfile `json:"kernels"`
}

// KernelProfile is one kernel launch's (one CTA group's) observed
// counters joined with its modeled time components.
type KernelProfile struct {
	// Group is the CTA group index; Patterns the regexes it matched.
	Group    int      `json:"group"`
	Patterns []string `json:"patterns,omitempty"`
	// Time holds the per-kernel compute/smem/barrier/DRAM seconds
	// (gpusim.PerCTATime — the same formulas EstimateTime aggregates).
	Time CTATime `json:"time"`
	// Stats are the kernel's raw event counters.
	Stats CTAStats `json:"stats"`
}

// BuildProfile joins a launch's counters with the cost model. groups may
// be nil (pattern attribution omitted) or hold one name slice per CTA.
func BuildProfile(d Device, ks *KernelStats, tb TimeBreakdown, throughputMBs float64, groups [][]string) *Profile {
	p := &Profile{
		Schema:         ProfileSchema,
		Device:         d.Name,
		Backend:        "bitstream",
		InputBytes:     ks.InputBytes,
		TransposeBytes: ks.TransposeBytes,
		Time:           tb,
		ThroughputMBs:  throughputMBs,
		Totals:         ks.Total(),
	}
	for i := range ks.PerCTA {
		kp := KernelProfile{
			Group: i,
			Time:  PerCTATime(d, &ks.PerCTA[i]),
			Stats: ks.PerCTA[i],
		}
		if i < len(groups) {
			kp.Patterns = groups[i]
		}
		p.Kernels = append(p.Kernels, kp)
	}
	return p
}

// JSON marshals the profile (indented, trailing newline).
func (p *Profile) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// RecordKernelStats aggregates one launch's counters and modeled time
// into the metrics registry — the bridge that makes the acceptance
// invariant hold: after one scan, the registry's DRAM/SMem/barrier totals
// exactly equal KernelStats.Total(). Nil-safe on reg.
func RecordKernelStats(reg *obs.Registry, ks *KernelStats, tb TimeBreakdown) {
	if reg == nil {
		return
	}
	t := ks.Total()
	reg.Counter(obs.MKernelLaunches, obs.HKernelLaunches).AddInt(int64(len(ks.PerCTA)))
	reg.Counter(obs.MModeledSecs, obs.HModeledSecs).Add(tb.TotalSec)
	reg.Counter(obs.MDRAMReadBytes, obs.HDRAMReadBytes).AddInt(t.DRAMReadBytes)
	reg.Counter(obs.MDRAMWriteBytes, obs.HDRAMWriteBytes).AddInt(t.DRAMWriteBytes)
	reg.Counter(obs.MSMemReadBytes, obs.HSMemReadBytes).AddInt(t.SMemReadBytes)
	reg.Counter(obs.MSMemWriteBytes, obs.HSMemWriteBytes).AddInt(t.SMemWriteBytes)
	reg.Counter(obs.MBarriers, obs.HBarriers).AddInt(t.Barriers)
	reg.Counter(obs.MShiftBarriers, obs.HShiftBarriers).AddInt(t.ShiftBarriers)
	reg.Counter(obs.MUnitOps, obs.HUnitOps).AddInt(t.UnitOps)
	reg.Counter(obs.MWindows, obs.HWindows).AddInt(t.Windows)
	reg.Counter(obs.MGuardChecks, obs.HGuardChecks).AddInt(t.GuardChecks)
	reg.Counter(obs.MGuardSkips, obs.HGuardSkips).AddInt(t.GuardSkips)
	reg.Counter(obs.MSkippedStmts, obs.HSkippedStmts).AddInt(t.SkippedStmts)
	reg.Counter(obs.MCommittedBits, obs.HCommittedBits).AddInt(t.CommittedBits)
	reg.Counter(obs.MRecomputedBits, obs.HRecomputedBits).AddInt(t.RecomputedBits)
	reg.Counter(obs.MTransposeBytes, obs.HTransposeBytes).AddInt(ks.TransposeBytes)
	ratio := 0.0
	if t.GuardChecks > 0 {
		ratio = float64(t.GuardSkips) / float64(t.GuardChecks)
	}
	reg.Gauge(obs.MZBSSkipRatio, obs.HZBSSkipRatio).Set(ratio)
}
