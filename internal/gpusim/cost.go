package gpusim

// TimeBreakdown decomposes the estimated kernel time.
type TimeBreakdown struct {
	// ComputeSec is integer-pipeline time.
	ComputeSec float64 `json:"compute_sec"`
	// DRAMSec is global-memory time (aggregate bandwidth bound).
	DRAMSec float64 `json:"dram_sec"`
	// SMemSec is shared-memory time.
	SMemSec float64 `json:"smem_sec"`
	// BarrierSec is synchronization stall time.
	BarrierSec float64 `json:"barrier_sec"`
	// TotalSec is the modeled kernel time.
	TotalSec float64 `json:"total_sec"`
	// BarrierStallPercent is BarrierSec / TotalSec (Table 6's
	// "Barrier Stall %").
	BarrierStallPercent float64 `json:"barrier_stall_percent"`
}

// CTATime is one CTA's (one kernel launch's) modeled time components —
// the same formulas EstimateTime serializes per SM, exposed so the
// profile report and the bitbench artifacts quote identical numbers.
type CTATime struct {
	// ComputeSec, SMemSec and BarrierSec serialize within the CTA.
	ComputeSec float64 `json:"compute_sec"`
	SMemSec    float64 `json:"smem_sec"`
	BarrierSec float64 `json:"barrier_sec"`
	// DRAMSec is this CTA's share of the device-wide DRAM bound (its
	// traffic at achieved bandwidth; the transpose kernel's charge is
	// launch-wide and excluded here).
	DRAMSec float64 `json:"dram_sec"`
}

// PerCTATime computes one CTA's time components on a device.
func PerCTATime(d Device, c *CTAStats) CTATime {
	opsPerSecSM := d.TIOPS * 1e12 / float64(d.SMs) * computeEfficiency
	smemBytesPerSec := d.SMemBandwidthGBs * 1e9
	return CTATime{
		ComputeSec: float64(c.UnitOps) / opsPerSecSM,
		SMemSec:    float64(c.SMemReadBytes+c.SMemWriteBytes) / smemBytesPerSec,
		BarrierSec: float64(c.Barriers) * d.BarrierSec(),
		DRAMSec:    float64(c.DRAMReadBytes+c.DRAMWriteBytes) / (d.BandwidthGBs * 1e9 * dramEfficiency),
	}
}

// computeEfficiency reflects achieved vs peak integer throughput for
// well-shaped bitwise kernels (issue limits, address arithmetic).
const computeEfficiency = 0.55

// dramEfficiency reflects achieved vs peak DRAM bandwidth for streaming
// coalesced access.
const dramEfficiency = 0.80

// transposeEfficiency reflects the S2P transpose kernel's achieved
// bandwidth fraction: the paper measures 1 MB in ~0.026 ms on the RTX 3090
// (37,449 MB/s ≈ 4% of peak — the kernel is bit-shuffle-bound, not
// stream-bound).
const transposeEfficiency = 0.04

// EstimateTime converts kernel counters into a modeled execution time on a
// device.
//
// Model: CTAs are distributed over SMs in waves. Within a CTA, compute,
// shared-memory and barrier time serialize (they stall the same warps);
// aggregate DRAM time is a device-wide bound that overlaps with compute,
// so the kernel time is max(per-SM serial time, DRAM time), plus the
// transpose kernel's streaming time.
func EstimateTime(d Device, g Grid, ks *KernelStats) TimeBreakdown {
	var tb TimeBreakdown
	if len(ks.PerCTA) == 0 {
		return tb
	}
	// Assign CTAs to SMs round-robin (one resident CTA per SM: the
	// bitstream kernels are register- and smem-heavy, limiting occupancy).
	smTime := make([]float64, d.SMs)
	var totalDRAM float64
	var maxCompute, maxSMem, maxBarrier float64
	for i := range ks.PerCTA {
		c := &ks.PerCTA[i]
		ct := PerCTATime(d, c)
		smTime[i%d.SMs] += ct.ComputeSec + ct.SMemSec + ct.BarrierSec
		totalDRAM += float64(c.DRAMReadBytes + c.DRAMWriteBytes)
		maxCompute += ct.ComputeSec
		maxSMem += ct.SMemSec
		maxBarrier += ct.BarrierSec
	}
	serial := 0.0
	for _, t := range smTime {
		if t > serial {
			serial = t
		}
	}
	// The transpose preprocessing kernel achieves a lower bandwidth
	// fraction; fold it into the DRAM bound as efficiency-equivalent
	// bytes so it overlaps with compute like any other memory work
	// (the paper reports it as negligible against kernel time).
	transposeEquivBytes := float64(ks.TransposeBytes) * (dramEfficiency / transposeEfficiency)
	dramSec := (totalDRAM + transposeEquivBytes) / (d.BandwidthGBs * 1e9 * dramEfficiency)

	total := serial
	if dramSec > total {
		total = dramSec
	}

	// Scale the per-category times so they are reported relative to the
	// critical path (they sum to the serial estimate before the DRAM max).
	tb.ComputeSec = maxCompute
	tb.SMemSec = maxSMem
	tb.BarrierSec = maxBarrier
	tb.DRAMSec = dramSec
	tb.TotalSec = total
	if serialSum := maxCompute + maxSMem + maxBarrier; serialSum > 0 {
		tb.BarrierStallPercent = 100 * maxBarrier / serialSum
	}
	return tb
}

// ThroughputMBs converts a modeled time into the paper's throughput metric
// (input MB per second; 1 MB = 1e6 bytes as in the paper's "10^6 bytes").
func ThroughputMBs(inputBytes int64, totalSec float64) float64 {
	if totalSec <= 0 {
		return 0
	}
	return float64(inputBytes) / 1e6 / totalSec
}

// IntermediateFootprintBytes estimates the global-memory footprint of
// materialized intermediate bitstreams for a given input size, used to
// check Section 3.2's "exceeds GPU memory" observation for sequential
// execution.
func IntermediateFootprintBytes(intermediates int64, inputBytes int64) int64 {
	return intermediates * (inputBytes / 8) // one bit per input byte, per stream
}
