package gpusim

import "testing"

func TestDeviceProfiles(t *testing.T) {
	if len(Devices()) != 3 {
		t.Fatalf("Devices() = %d entries", len(Devices()))
	}
	// Paper Section 8.3: integer throughput ratio ~ 1 : 1.9 : 2.6.
	r1 := H100.TIOPS / RTX3090.TIOPS
	r2 := L40S.TIOPS / RTX3090.TIOPS
	if r1 < 1.8 || r1 > 2.0 || r2 < 2.4 || r2 > 2.7 {
		t.Fatalf("TIOPS ratios = %.2f, %.2f; want ~1.9, ~2.6", r1, r2)
	}
	if _, err := DeviceByName("RTX 3090"); err != nil {
		t.Fatal(err)
	}
	if _, err := DeviceByName("nope"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestDefaultGridMatchesPaperIterationCount(t *testing.T) {
	g := DefaultGrid()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1 MB input (one stream bit per byte) over the default block size
	// should take ~61-64 block iterations (Table 5 reports ~62).
	iters := (1_000_000 + g.BlockBits() - 1) / g.BlockBits()
	if iters < 58 || iters > 66 {
		t.Fatalf("1MB takes %d block iterations, want ~62", iters)
	}
	if g.BlockBits() != 16384 {
		t.Fatalf("default block = %d bits, want 16384 (the Section 8.2 overlap limit)", g.BlockBits())
	}
}

func TestGridValidate(t *testing.T) {
	bad := []Grid{
		{CTAs: 0, Threads: 1, UnitBits: 32, UnitsPerThread: 1},
		{CTAs: 1, Threads: 0, UnitBits: 32, UnitsPerThread: 1},
		{CTAs: 1, Threads: 2048, UnitBits: 32, UnitsPerThread: 1},
		{CTAs: 1, Threads: 1, UnitBits: 16, UnitsPerThread: 1},
		{CTAs: 1, Threads: 1, UnitBits: 32, UnitsPerThread: 0},
		{CTAs: 1, Threads: 1, UnitBits: 32, UnitsPerThread: 1}, // 32 bits: not mult of 64
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, g)
		}
	}
	good := Grid{CTAs: 4, Threads: 64, UnitBits: 32, UnitsPerThread: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid grid rejected: %v", err)
	}
}

func TestStatsAddAndMean(t *testing.T) {
	ks := &KernelStats{PerCTA: []CTAStats{
		{UnitOps: 100, Barriers: 4, DynDeltaMax: 7, DRAMReadBytes: 10},
		{UnitOps: 300, Barriers: 2, DynDeltaMax: 3, DRAMReadBytes: 30},
	}}
	tot := ks.Total()
	if tot.UnitOps != 400 || tot.Barriers != 6 || tot.DynDeltaMax != 7 {
		t.Fatalf("Total = %+v", tot)
	}
	mean := ks.MeanPerCTA()
	if mean.UnitOps != 200 || mean.DRAMReadBytes != 20 {
		t.Fatalf("Mean = %+v", mean)
	}
}

func TestRecomputePercent(t *testing.T) {
	s := CTAStats{CommittedBits: 1000, RecomputedBits: 21}
	if got := s.RecomputePercent(); got < 2.09 || got > 2.11 {
		t.Fatalf("RecomputePercent = %v", got)
	}
	var zero CTAStats
	if zero.RecomputePercent() != 0 {
		t.Fatal("zero stats must report 0%")
	}
}

func TestEstimateTimeScalesWithWork(t *testing.T) {
	g := DefaultGrid()
	small := &KernelStats{PerCTA: []CTAStats{{UnitOps: 1e6}}, InputBytes: 1e6}
	big := &KernelStats{PerCTA: []CTAStats{{UnitOps: 1e8}}, InputBytes: 1e6}
	ts := EstimateTime(RTX3090, g, small)
	tb := EstimateTime(RTX3090, g, big)
	if tb.TotalSec <= ts.TotalSec {
		t.Fatalf("100x ops not slower: %v vs %v", tb.TotalSec, ts.TotalSec)
	}
	ratio := tb.TotalSec / ts.TotalSec
	if ratio < 50 || ratio > 150 {
		t.Fatalf("compute scaling ratio = %.1f, want ~100", ratio)
	}
}

func TestEstimateTimeComputeBoundTracksTIOPS(t *testing.T) {
	// A compute-bound kernel should speed up across devices roughly by the
	// integer-throughput ratio (Figure 15's observation for BitGen).
	g := DefaultGrid()
	per := make([]CTAStats, 256)
	for i := range per {
		per[i] = CTAStats{UnitOps: 5e7}
	}
	ks := &KernelStats{PerCTA: per, InputBytes: 1e6}
	t3090 := EstimateTime(RTX3090, g, ks).TotalSec
	tL40S := EstimateTime(L40S, g, ks).TotalSec
	speedup := t3090 / tL40S
	want := L40S.TIOPS / RTX3090.TIOPS // ~2.6 modulo SM-count rounding
	if speedup < want*0.5 || speedup > want*1.6 {
		t.Fatalf("L40S speedup = %.2f, want near %.2f", speedup, want)
	}
}

func TestEstimateTimeMemoryBound(t *testing.T) {
	// A kernel moving far more DRAM bytes than compute must be bound by
	// bandwidth.
	g := DefaultGrid()
	ks := &KernelStats{PerCTA: []CTAStats{{DRAMReadBytes: 1 << 33}}, InputBytes: 1e6}
	tb := EstimateTime(RTX3090, g, ks)
	if tb.TotalSec < tb.DRAMSec*0.99 {
		t.Fatalf("total %.6f below DRAM time %.6f", tb.TotalSec, tb.DRAMSec)
	}
}

func TestBarrierStallPercent(t *testing.T) {
	g := DefaultGrid()
	ks := &KernelStats{PerCTA: []CTAStats{{UnitOps: 1e6, Barriers: 1e5}}, InputBytes: 1e6}
	tb := EstimateTime(RTX3090, g, ks)
	if tb.BarrierStallPercent <= 0 || tb.BarrierStallPercent >= 100 {
		t.Fatalf("BarrierStallPercent = %v", tb.BarrierStallPercent)
	}
}

func TestThroughputMBs(t *testing.T) {
	if got := ThroughputMBs(2_000_000, 2.0); got != 1.0 {
		t.Fatalf("ThroughputMBs = %v, want 1.0", got)
	}
	if ThroughputMBs(1, 0) != 0 {
		t.Fatal("zero time must give zero throughput")
	}
}

func TestIntermediateFootprint(t *testing.T) {
	// 318 intermediate streams over 1 MB input: ~40 MB of temporaries per
	// CTA; across 256 CTAs that is ~10 GB (the Section 3.2 blow-up).
	perCTA := IntermediateFootprintBytes(318, 1_000_000)
	if perCTA < 35_000_000 || perCTA > 45_000_000 {
		t.Fatalf("footprint = %d", perCTA)
	}
}

func TestTransposeCostMatchesPaperMeasurement(t *testing.T) {
	// Section 7: "transposing 1 MB on an RTX 3090 typically takes about
	// 0.026 ms". Our model charges the transpose's in+out traffic at the
	// kernel's achieved (bit-shuffle-bound) bandwidth.
	ks := &KernelStats{
		PerCTA:         []CTAStats{{}},
		InputBytes:     1_000_000,
		TransposeBytes: 2_000_000,
	}
	tb := EstimateTime(RTX3090, DefaultGrid(), ks)
	ms := tb.TotalSec * 1e3
	if ms < 0.01 || ms > 0.12 {
		t.Fatalf("1MB transpose modeled at %.4f ms, want ~0.026-0.06", ms)
	}
}
