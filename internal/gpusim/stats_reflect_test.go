package gpusim

import (
	"reflect"
	"testing"
)

// TestCTAStatsAddCoversEveryField asserts, by reflection, that Add
// propagates every CTAStats field: a newly added counter that is not
// wired into Add would arrive at the aggregate as zero and fail here, so
// the hand-maintained field list in Add can never silently drop one.
func TestCTAStatsAddCoversEveryField(t *testing.T) {
	typ := reflect.TypeOf(CTAStats{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Type.Kind() != reflect.Int64 {
			t.Fatalf("CTAStats.%s is %s; this test assumes int64 counters — extend it", f.Name, f.Type)
		}
		other := CTAStats{}
		v := int64(100 + i) // distinct nonzero per field
		reflect.ValueOf(&other).Elem().Field(i).SetInt(v)

		var sum CTAStats
		sum.Add(other)
		got := reflect.ValueOf(sum).Field(i).Int()
		if got != v {
			t.Errorf("CTAStats.Add drops field %s: aggregate = %d, want %d", f.Name, got, v)
		}
		// No cross-talk: every other field stays zero.
		for j := 0; j < typ.NumField(); j++ {
			if j == i {
				continue
			}
			if x := reflect.ValueOf(sum).Field(j).Int(); x != 0 {
				t.Errorf("adding %s leaked into %s (= %d)", f.Name, typ.Field(j).Name, x)
			}
		}
		// Second Add must keep the field nonzero under either semantics
		// (2v for accumulating counters, v for max-style fields).
		sum.Add(other)
		got2 := reflect.ValueOf(sum).Field(i).Int()
		if got2 != v && got2 != 2*v {
			t.Errorf("CTAStats.Add field %s: second add = %d, want %d (max) or %d (sum)", f.Name, got2, v, 2*v)
		}
	}
}

// TestKernelStatsTotalMatchesManualSum pins Total to a straight per-field
// aggregation over PerCTA.
func TestKernelStatsTotalMatchesManualSum(t *testing.T) {
	ks := KernelStats{PerCTA: []CTAStats{
		{UnitOps: 1, DRAMReadBytes: 10, Barriers: 3, DynDeltaMax: 5, SMemPeakBytes: 7},
		{UnitOps: 2, DRAMReadBytes: 20, Barriers: 4, DynDeltaMax: 2, SMemPeakBytes: 9},
	}}
	tot := ks.Total()
	if tot.UnitOps != 3 || tot.DRAMReadBytes != 30 || tot.Barriers != 7 {
		t.Fatalf("Total sums wrong: %+v", tot)
	}
	if tot.DynDeltaMax != 5 || tot.SMemPeakBytes != 9 {
		t.Fatalf("Total max-fields wrong: %+v", tot)
	}
}
