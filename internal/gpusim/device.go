// Package gpusim models the GPU execution substrate the paper's kernels run
// on. Go has no practical CUDA path, so the repo substitutes a functional
// simulator: the kernel executors (package kernel) compute real bitstreams
// window-by-window exactly as the generated CUDA would, while this package
// supplies the device profiles, the event counters a profiler would report
// (DRAM traffic, shared-memory traffic, barriers, thread-ops), and an
// analytic cost model that converts counters into estimated kernel time.
//
// Absolute times are model-derived, not silicon-measured; the experiments
// (EXPERIMENTS.md) compare *shapes* — speedup ratios, trends across
// parameters and devices — against the paper, which is what the counters
// determine.
package gpusim

import "fmt"

// Device describes a GPU profile. The numbers for the three evaluation
// GPUs come from the paper (Section 7/8.3) and public spec sheets.
type Device struct {
	Name string
	// TIOPS is peak 32-bit integer throughput in tera-ops/second
	// (the paper quotes 17.8 / 33.5 / 45.8 for 3090 / H100 / L40S).
	TIOPS float64
	// BandwidthGBs is peak DRAM bandwidth in GB/s.
	BandwidthGBs float64
	// SMs is the number of streaming multiprocessors.
	SMs int
	// SharedMemPerCTA is the usable shared memory per CTA in bytes.
	SharedMemPerCTA int
	// SMemBandwidthGBs is per-SM shared-memory bandwidth in GB/s.
	SMemBandwidthGBs float64
	// ClockGHz is the boost clock, which sets dependent-latency costs
	// (barriers, serialized launches).
	ClockGHz float64
	// MemoryGB is device memory capacity, used to flag configurations
	// whose intermediate bitstreams would not fit (Section 3.2 b).
	MemoryGB float64
}

// The paper's three evaluation GPUs.
var (
	RTX3090 = Device{
		Name:             "RTX 3090",
		TIOPS:            17.8,
		BandwidthGBs:     936,
		SMs:              82,
		SharedMemPerCTA:  100 << 10,
		SMemBandwidthGBs: 128,
		ClockGHz:         1.70,
		MemoryGB:         24,
	}
	H100 = Device{
		Name:             "H100 NVL",
		TIOPS:            33.5,
		BandwidthGBs:     3938,
		SMs:              132,
		SharedMemPerCTA:  227 << 10,
		SMemBandwidthGBs: 256,
		ClockGHz:         1.79,
		MemoryGB:         94,
	}
	L40S = Device{
		Name:             "L40S",
		TIOPS:            45.8,
		BandwidthGBs:     864,
		SMs:              142,
		SharedMemPerCTA:  100 << 10,
		SMemBandwidthGBs: 128,
		ClockGHz:         2.52,
		MemoryGB:         48,
	}
)

// barrierCycles is the modeled stall of one CTA-wide __syncthreads()
// including its warp-scheduling bubble, in core cycles. Calibrated so an
// unmerged shift-per-barrier schedule reproduces the ~50% barrier-stall
// share of Table 6 (SR_1).
const barrierCycles = 300

// BarrierSec returns the modeled cost of one barrier on this device.
func (d Device) BarrierSec() float64 {
	return barrierCycles / (d.ClockGHz * 1e9)
}

// Devices lists the evaluation GPUs in the paper's order.
func Devices() []Device { return []Device{RTX3090, H100, L40S} }

// DeviceByName looks a profile up by name.
func DeviceByName(name string) (Device, error) {
	for _, d := range Devices() {
		if d.Name == name {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("gpusim: unknown device %q", name)
}

// Grid describes a kernel launch configuration.
type Grid struct {
	// CTAs is the number of cooperative thread arrays launched.
	CTAs int
	// Threads is the CTA size T.
	Threads int
	// UnitBits is the word size W each thread handles per step
	// (32 on the evaluated GPUs).
	UnitBits int
	// UnitsPerThread is how many W-bit units one thread processes per
	// block iteration; the block size is Threads*UnitBits*UnitsPerThread
	// bits.
	UnitsPerThread int
}

// DefaultGrid mirrors the paper's defaults: 256 CTAs, 512 threads, 32-bit
// units, one unit per thread. A block covers T·W = 16,384 input positions,
// so a 1 MB input runs in about 62 block iterations (Table 5's #Iter) and
// the maximum overlap distance is 16,384 bits (Section 8.2's limit).
func DefaultGrid() Grid {
	return Grid{CTAs: 256, Threads: 512, UnitBits: 32, UnitsPerThread: 1}
}

// BlockBits returns the number of bitstream bits one block iteration covers.
func (g Grid) BlockBits() int { return g.Threads * g.UnitBits * g.UnitsPerThread }

// Validate checks the configuration.
func (g Grid) Validate() error {
	switch {
	case g.CTAs <= 0:
		return fmt.Errorf("gpusim: CTAs = %d", g.CTAs)
	case g.Threads <= 0 || g.Threads > 1024:
		return fmt.Errorf("gpusim: Threads = %d out of (0,1024]", g.Threads)
	case g.UnitBits != 32 && g.UnitBits != 64:
		return fmt.Errorf("gpusim: UnitBits = %d, want 32 or 64", g.UnitBits)
	case g.UnitsPerThread <= 0:
		return fmt.Errorf("gpusim: UnitsPerThread = %d", g.UnitsPerThread)
	case g.BlockBits()%64 != 0:
		return fmt.Errorf("gpusim: block bits %d not a multiple of 64", g.BlockBits())
	}
	return nil
}
