package gpusim

import (
	"fmt"

	"bitgen/internal/faultinject"
)

// CheckLaunch consults the fault injector at the simulated kernel-launch
// boundary for one CTA group. On a real device this is where a launch can
// fail asynchronously (sticky context errors, ECC events, OOM at launch);
// the engine calls it before dispatching each group so injected mid-launch
// failures exercise the same error path. A nil injector never fails.
func CheckLaunch(inj *faultinject.Injector, cta int) error {
	if err := inj.Err(faultinject.LaunchFail); err != nil {
		return fmt.Errorf("gpusim: launch of CTA group %d failed: %w", cta, err)
	}
	return nil
}
