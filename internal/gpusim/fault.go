package gpusim

import (
	"fmt"

	"bitgen/internal/bgerr"
	"bitgen/internal/faultinject"
)

// CheckLaunch consults the fault injector at the simulated kernel-launch
// boundary for one CTA group. On a real device this is where a launch can
// fail asynchronously (sticky context errors, ECC events, OOM at launch);
// the engine calls it before dispatching each group so injected mid-launch
// failures exercise the same error path. A nil injector never fails.
//
// Launch failures are classified transient (errors.Is(err, bgerr.
// ErrTransient)): on a real device a failed launch is an environmental
// fault worth retrying, unlike a kernel invariant violation or a resource
// refusal. The resilience ladder retries transient faults with backoff
// before falling over to another backend.
func CheckLaunch(inj *faultinject.Injector, cta int) error {
	if err := inj.Err(faultinject.LaunchFail); err != nil {
		return bgerr.Transient(fmt.Errorf("gpusim: launch of CTA group %d failed: %w", cta, err))
	}
	return nil
}
