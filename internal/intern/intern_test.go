package intern

import (
	"bytes"
	"sync"
	"testing"
)

func TestAcquireAdoptsAndShares(t *testing.T) {
	var s Store
	first := []byte("packed-group-program")
	canon, key, charged := s.Acquire(first)
	if &canon[0] != &first[0] {
		t.Fatal("first acquire must adopt the caller's slice as canonical")
	}
	if charged != int64(len(first)) {
		t.Fatalf("first acquire charged %d, want %d", charged, len(first))
	}
	if key != KeyOf(first) {
		t.Fatal("key mismatch")
	}

	second := append([]byte(nil), first...) // equal bytes, distinct backing
	canon2, key2, charged2 := s.Acquire(second)
	if &canon2[0] != &first[0] {
		t.Fatal("equal acquire must return the canonical slice, not the caller's")
	}
	if key2 != key {
		t.Fatal("equal bytes must share one key")
	}
	if charged2 != 0 {
		t.Fatalf("duplicate acquire charged %d, want 0", charged2)
	}
	if got := s.Refs(key); got != 2 {
		t.Fatalf("refs = %d, want 2", got)
	}
	if got := s.SharedBytes(); got != int64(len(first)) {
		t.Fatalf("shared bytes = %d, want %d (each block counted once)", got, len(first))
	}
	if got := s.Blocks(); got != 1 {
		t.Fatalf("blocks = %d, want 1", got)
	}
}

func TestReleaseFreesOnLastRef(t *testing.T) {
	var s Store
	data := []byte("block")
	_, key, _ := s.Acquire(data)
	s.Acquire(append([]byte(nil), data...))

	if un := s.Release(key); un != 0 {
		t.Fatalf("first release uncharged %d, want 0 (a reference remains)", un)
	}
	if got := s.Refs(key); got != 1 {
		t.Fatalf("refs after first release = %d, want 1", got)
	}
	if un := s.Release(key); un != int64(len(data)) {
		t.Fatalf("last release uncharged %d, want %d", un, len(data))
	}
	if s.Blocks() != 0 || s.SharedBytes() != 0 {
		t.Fatalf("store not empty after last release: blocks=%d shared=%d", s.Blocks(), s.SharedBytes())
	}
	// Releasing an unknown key is a tolerated no-op for teardown paths.
	if un := s.Release(key); un != 0 {
		t.Fatalf("release of absent key uncharged %d, want 0", un)
	}
}

func TestDistinctBlocksChargedSeparately(t *testing.T) {
	var s Store
	a, b := []byte("aaaa"), []byte("bbbbbb")
	_, ka, _ := s.Acquire(a)
	_, kb, _ := s.Acquire(b)
	if ka == kb {
		t.Fatal("distinct contents must get distinct keys")
	}
	if got, want := s.SharedBytes(), int64(len(a)+len(b)); got != want {
		t.Fatalf("shared bytes = %d, want %d", got, want)
	}
	s.Release(ka)
	if got, want := s.SharedBytes(), int64(len(b)); got != want {
		t.Fatalf("shared bytes after releasing a = %d, want %d", got, want)
	}
	canon, _, _ := s.Acquire(append([]byte(nil), b...))
	if !bytes.Equal(canon, b) {
		t.Fatal("canonical bytes corrupted")
	}
}

func TestConcurrentAcquireRelease(t *testing.T) {
	var s Store
	data := []byte("contended-block")
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_, key, _ := s.Acquire(append([]byte(nil), data...))
				s.Release(key)
			}
		}()
	}
	wg.Wait()
	if s.Blocks() != 0 || s.SharedBytes() != 0 {
		t.Fatalf("store leaked after churn: blocks=%d shared=%d", s.Blocks(), s.SharedBytes())
	}
}
