// Package intern is a refcounted content-addressed byte-block store: the
// serve layer's mechanism for deduplicating identical compiled state
// across cached engines. Two engines whose pattern sets lower to the same
// packed CTA-group program (or the same shared character-class program)
// hold one canonical copy of those bytes, and the cache's resident-bytes
// gauge charges each distinct block exactly once regardless of how many
// engines reference it.
//
// The store never copies block contents: Acquire of a novel block adopts
// the caller's slice as the canonical copy, and every later Acquire of
// equal bytes returns that same slice. Callers must therefore treat
// acquired blocks as immutable — which the engine's packed-program blobs
// already are.
package intern

import (
	"crypto/sha256"
	"sync"
)

// Key is a block's content address.
type Key [sha256.Size]byte

// Store is a thread-safe refcounted content-addressed block store. The
// zero value is ready to use.
type Store struct {
	mu     sync.Mutex
	blocks map[Key]*block
	shared int64
}

type block struct {
	data []byte
	refs int
}

// KeyOf returns the content address Acquire would file data under.
func KeyOf(data []byte) Key { return sha256.Sum256(data) }

// Acquire interns data and takes one reference on it. It returns the
// canonical byte slice (the first acquirer's slice, shared by every later
// equal acquire), the block's key for the matching Release, and the bytes
// newly charged to the store — len(data) on the 0→1 transition, 0 when
// the block was already resident. Callers must not mutate data after
// acquiring it.
func (s *Store) Acquire(data []byte) (canonical []byte, key Key, charged int64) {
	key = KeyOf(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.blocks[key]; ok {
		b.refs++
		return b.data, key, 0
	}
	if s.blocks == nil {
		s.blocks = make(map[Key]*block)
	}
	s.blocks[key] = &block{data: data, refs: 1}
	s.shared += int64(len(data))
	return data, key, int64(len(data))
}

// Release drops one reference on key, returning the bytes uncharged from
// the store — the block's length on the 1→0 transition (the block is
// freed), 0 otherwise. Releasing an unknown key is a no-op returning 0,
// so callers may release unconditionally on teardown paths.
func (s *Store) Release(key Key) (uncharged int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blocks[key]
	if !ok {
		return 0
	}
	b.refs--
	if b.refs > 0 {
		return 0
	}
	delete(s.blocks, key)
	n := int64(len(b.data))
	s.shared -= n
	return n
}

// SharedBytes reports the total bytes of distinct resident blocks — each
// counted once, however many references exist.
func (s *Store) SharedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shared
}

// Blocks reports how many distinct blocks are resident.
func (s *Store) Blocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocks)
}

// Refs reports the reference count of key (0 if absent). Intended for
// tests and diagnostics.
func (s *Store) Refs(key Key) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.blocks[key]; ok {
		return b.refs
	}
	return 0
}
