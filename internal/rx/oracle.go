package rx

import (
	"fmt"
	"strings"

	"bitgen/internal/charclass"
)

// ToGoRegexp renders the AST in Go stdlib regexp syntax so tests can use
// regexp as an oracle. Classes containing bytes >= 0x80 are rendered with
// \x escapes; callers comparing against stdlib should restrict inputs to
// ASCII because Go's regexp operates on UTF-8 runes, not bytes.
func ToGoRegexp(n Node) string {
	var b strings.Builder
	writeGo(&b, n)
	return b.String()
}

func writeGo(b *strings.Builder, n Node) {
	switch x := n.(type) {
	case CC:
		writeGoClass(b, x.Class)
	case Concat:
		for _, p := range x.Parts {
			if needsGroup(p) {
				b.WriteString("(?:")
				writeGo(b, p)
				b.WriteString(")")
			} else {
				writeGo(b, p)
			}
		}
	case Alt:
		for i, a := range x.Alts {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString("(?:")
			writeGo(b, a)
			b.WriteString(")")
		}
	case Star:
		writeGoSub(b, x.Sub)
		b.WriteByte('*')
	case Plus:
		writeGoSub(b, x.Sub)
		b.WriteByte('+')
	case Opt:
		writeGoSub(b, x.Sub)
		b.WriteByte('?')
	case Repeat:
		writeGoSub(b, x.Sub)
		if x.Max == Unbounded {
			fmt.Fprintf(b, "{%d,}", x.Min)
		} else if x.Min == x.Max {
			fmt.Fprintf(b, "{%d}", x.Min)
		} else {
			fmt.Fprintf(b, "{%d,%d}", x.Min, x.Max)
		}
	default:
		panic(fmt.Sprintf("rx: unknown node %T", n))
	}
}

func needsGroup(n Node) bool {
	if a, ok := n.(Alt); ok {
		return len(a.Alts) > 1
	}
	return false
}

func writeGoSub(b *strings.Builder, n Node) {
	if cc, ok := n.(CC); ok {
		writeGoClass(b, cc.Class)
		return
	}
	b.WriteString("(?:")
	writeGo(b, n)
	b.WriteString(")")
}

func writeGoClass(b *strings.Builder, cl charclass.Class) {
	if cl.Size() == 1 {
		for c := 0; c < 256; c++ {
			if cl.Contains(byte(c)) {
				writeGoByte(b, byte(c), false)
				return
			}
		}
	}
	b.WriteByte('[')
	c := 0
	for c < 256 {
		if !cl.Contains(byte(c)) {
			c++
			continue
		}
		lo := c
		for c < 256 && cl.Contains(byte(c)) {
			c++
		}
		hi := c - 1
		writeGoByte(b, byte(lo), true)
		if hi > lo {
			b.WriteByte('-')
			writeGoByte(b, byte(hi), true)
		}
	}
	b.WriteByte(']')
}

func writeGoByte(b *strings.Builder, c byte, inClass bool) {
	special := ".*+?()[]{}|\\^$"
	if inClass {
		special = "\\]-^"
	}
	switch {
	case strings.IndexByte(special, c) >= 0:
		b.WriteByte('\\')
		b.WriteByte(c)
	case c >= 0x20 && c < 0x7f:
		b.WriteByte(c)
	default:
		fmt.Fprintf(b, "\\x%02x", c)
	}
}
