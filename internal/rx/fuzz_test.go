package rx

import "testing"

// FuzzParse asserts the parser never panics and that accepted patterns
// round-trip through String and re-Parse.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"a(bc)*d", "(abc)|d", "[a-z0-9]+@[a-z]{2,}", "a{2,5}?", "\\d\\w\\s",
		"((((((((((a))))))))))", "[^\\x00-\\x1f]*", "a|", "|a", "{", "}", "[]",
		"a{999}", "\\", "(?:x)", "[a-\\d]", "....", "x" + string(rune(0x80)),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, pattern string) {
		ast, err := Parse(pattern)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := ast.String()
		re2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q, rendered %q, but re-parse failed: %v", pattern, rendered, err)
		}
		if re2.String() != rendered {
			t.Fatalf("render not stable: %q -> %q -> %q", pattern, rendered, re2.String())
		}
	})
}
