// Package rx implements the regular-expression front end: an AST for the
// paper's Listing-1 grammar (character classes, concatenation, alternation,
// Kleene star and bounded repetition, plus the derivable R+ and R? forms)
// and a recursive-descent parser for a practical byte-oriented syntax.
package rx

import (
	"fmt"
	"strings"

	"bitgen/internal/charclass"
)

// Node is a regular-expression AST node.
type Node interface {
	isNode()
	// String renders the node in a syntax this package can re-parse.
	String() string
}

// CC matches a single byte from a character class.
type CC struct {
	Class charclass.Class
}

// Concat matches its factors in sequence. An empty Concat matches the empty
// string (used for ε).
type Concat struct {
	Parts []Node
}

// Alt matches any one of its alternatives.
type Alt struct {
	Alts []Node
}

// Star matches zero or more repetitions (Kleene star).
type Star struct {
	Sub Node
}

// Plus matches one or more repetitions.
type Plus struct {
	Sub Node
}

// Opt matches zero or one occurrence.
type Opt struct {
	Sub Node
}

// Repeat matches between Min and Max repetitions. Max == Unbounded means
// {Min,} (no upper bound).
type Repeat struct {
	Sub      Node
	Min, Max int
}

// Unbounded marks a Repeat with no upper bound.
const Unbounded = -1

func (CC) isNode()     {}
func (Concat) isNode() {}
func (Alt) isNode()    {}
func (Star) isNode()   {}
func (Plus) isNode()   {}
func (Opt) isNode()    {}
func (Repeat) isNode() {}

func (n CC) String() string { return ccString(n.Class) }

func (n Concat) String() string {
	var b strings.Builder
	for _, p := range n.Parts {
		if a, ok := p.(Alt); ok && len(a.Alts) > 1 {
			b.WriteString("(" + p.String() + ")")
		} else {
			b.WriteString(p.String())
		}
	}
	return b.String()
}

func (n Alt) String() string {
	parts := make([]string, len(n.Alts))
	for i, a := range n.Alts {
		parts[i] = a.String()
	}
	return strings.Join(parts, "|")
}

func (n Star) String() string { return groupString(n.Sub) + "*" }
func (n Plus) String() string { return groupString(n.Sub) + "+" }
func (n Opt) String() string  { return groupString(n.Sub) + "?" }
func (n Repeat) String() string {
	switch {
	case n.Max == Unbounded:
		return fmt.Sprintf("%s{%d,}", groupString(n.Sub), n.Min)
	case n.Min == n.Max:
		return fmt.Sprintf("%s{%d}", groupString(n.Sub), n.Min)
	default:
		return fmt.Sprintf("%s{%d,%d}", groupString(n.Sub), n.Min, n.Max)
	}
}

// groupString wraps multi-element sub-expressions in parentheses so that a
// postfix operator binds to the whole node when re-parsed.
func groupString(n Node) string {
	switch x := n.(type) {
	case CC:
		return x.String()
	case Concat:
		if len(x.Parts) == 1 {
			return groupString(x.Parts[0])
		}
	}
	return "(" + n.String() + ")"
}

// ccString renders a class as a literal byte when it is a singleton of a
// plain character, else in bracket syntax.
func ccString(cl charclass.Class) string {
	if cl.Size() == 1 {
		for c := 0; c < 256; c++ {
			if cl.Contains(byte(c)) {
				return escapeLiteral(byte(c))
			}
		}
	}
	if cl.Equal(charclass.Dot()) {
		return "."
	}
	return cl.String()
}

func escapeLiteral(c byte) string {
	switch c {
	case '.', '*', '+', '?', '(', ')', '[', ']', '{', '}', '|', '\\', '^', '$':
		return "\\" + string(c)
	case '\n':
		return "\\n"
	case '\t':
		return "\\t"
	case '\r':
		return "\\r"
	}
	if c >= 0x20 && c < 0x7f {
		return string(c)
	}
	return fmt.Sprintf("\\x%02x", c)
}

// Literal builds a Concat of single-byte classes for an exact string match.
func Literal(s string) Node {
	parts := make([]Node, len(s))
	for i := 0; i < len(s); i++ {
		parts[i] = CC{charclass.Single(s[i])}
	}
	return Concat{parts}
}

// Walk calls fn for n and every descendant, pre-order.
func Walk(n Node, fn func(Node)) {
	fn(n)
	switch x := n.(type) {
	case Concat:
		for _, p := range x.Parts {
			Walk(p, fn)
		}
	case Alt:
		for _, a := range x.Alts {
			Walk(a, fn)
		}
	case Star:
		Walk(x.Sub, fn)
	case Plus:
		Walk(x.Sub, fn)
	case Opt:
		Walk(x.Sub, fn)
	case Repeat:
		Walk(x.Sub, fn)
	}
}

// MinLength returns the length in bytes of the shortest string the node can
// match.
func MinLength(n Node) int {
	switch x := n.(type) {
	case CC:
		return 1
	case Concat:
		total := 0
		for _, p := range x.Parts {
			total += MinLength(p)
		}
		return total
	case Alt:
		if len(x.Alts) == 0 {
			return 0
		}
		m := MinLength(x.Alts[0])
		for _, a := range x.Alts[1:] {
			if v := MinLength(a); v < m {
				m = v
			}
		}
		return m
	case Star, Opt:
		return 0
	case Plus:
		return MinLength(x.Sub)
	case Repeat:
		return x.Min * MinLength(x.Sub)
	}
	return 0
}

// MatchesEmpty reports whether the node can match the empty string.
func MatchesEmpty(n Node) bool { return MinLength(n) == 0 }

// LiteralString reports whether the node is an exact literal (a Concat of
// singleton classes) and returns it.
func LiteralString(n Node) (string, bool) {
	switch x := n.(type) {
	case CC:
		if x.Class.Size() == 1 {
			for c := 0; c < 256; c++ {
				if x.Class.Contains(byte(c)) {
					// NOT string(byte(c)): that UTF-8-encodes values
					// >= 0x80 into two bytes.
					return string([]byte{byte(c)}), true
				}
			}
		}
		return "", false
	case Concat:
		var b strings.Builder
		for _, p := range x.Parts {
			s, ok := LiteralString(p)
			if !ok {
				return "", false
			}
			b.WriteString(s)
		}
		return b.String(), true
	}
	return "", false
}
