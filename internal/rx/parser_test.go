package rx

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"bitgen/internal/charclass"
)

func TestParseLiteral(t *testing.T) {
	n := MustParse("cat")
	lit, ok := LiteralString(n)
	if !ok || lit != "cat" {
		t.Fatalf("LiteralString = %q, %v", lit, ok)
	}
}

func TestParseAlternationStructure(t *testing.T) {
	n := MustParse("(abc)|d")
	alt, ok := n.(Alt)
	if !ok || len(alt.Alts) != 2 {
		t.Fatalf("got %#v, want 2-way Alt", n)
	}
	if lit, _ := LiteralString(alt.Alts[0]); lit != "abc" {
		t.Fatalf("first alternative = %q", lit)
	}
}

func TestParsePaperExample(t *testing.T) {
	// Listing 3's regex.
	n := MustParse("a(bc)*d")
	c, ok := n.(Concat)
	if !ok || len(c.Parts) != 3 {
		t.Fatalf("a(bc)*d parsed to %#v", n)
	}
	if _, ok := c.Parts[1].(Star); !ok {
		t.Fatalf("middle part is %T, want Star", c.Parts[1])
	}
}

func TestParsePostfixOperators(t *testing.T) {
	for pattern, wantType := range map[string]string{
		"a*":     "rx.Star",
		"a+":     "rx.Plus",
		"a?":     "rx.Opt",
		"a{2,5}": "rx.Repeat",
		"a{3}":   "rx.Repeat",
		"a{2,}":  "rx.Repeat",
	} {
		n := MustParse(pattern)
		if got := typeName(n); got != wantType {
			t.Errorf("%q parsed to %s, want %s", pattern, got, wantType)
		}
	}
	rep := MustParse("a{2,5}").(Repeat)
	if rep.Min != 2 || rep.Max != 5 {
		t.Errorf("a{2,5} bounds = {%d,%d}", rep.Min, rep.Max)
	}
	rep = MustParse("a{2,}").(Repeat)
	if rep.Min != 2 || rep.Max != Unbounded {
		t.Errorf("a{2,} bounds = {%d,%d}", rep.Min, rep.Max)
	}
}

func typeName(n Node) string {
	switch n.(type) {
	case Star:
		return "rx.Star"
	case Plus:
		return "rx.Plus"
	case Opt:
		return "rx.Opt"
	case Repeat:
		return "rx.Repeat"
	case CC:
		return "rx.CC"
	case Concat:
		return "rx.Concat"
	case Alt:
		return "rx.Alt"
	}
	return "?"
}

func TestParseClasses(t *testing.T) {
	cases := map[string]func(charclass.Class) bool{
		"[a-z]":    func(c charclass.Class) bool { return c.Size() == 26 && c.Contains('q') },
		"[^a-z]":   func(c charclass.Class) bool { return c.Size() == 230 && !c.Contains('q') },
		"[abc]":    func(c charclass.Class) bool { return c.Size() == 3 },
		"[a-cx-z]": func(c charclass.Class) bool { return c.Size() == 6 },
		"[-a]":     func(c charclass.Class) bool { return c.Contains('-') && c.Contains('a') },
		"[a-]":     func(c charclass.Class) bool { return c.Contains('-') && c.Contains('a') },
		"[\\d]":    func(c charclass.Class) bool { return c.Equal(charclass.Digit) },
		"[\\]]":    func(c charclass.Class) bool { return c.Size() == 1 && c.Contains(']') },
		"[\\x41]":  func(c charclass.Class) bool { return c.Size() == 1 && c.Contains('A') },
	}
	for pattern, check := range cases {
		n, err := Parse(pattern)
		if err != nil {
			t.Errorf("Parse(%q): %v", pattern, err)
			continue
		}
		cc, ok := n.(CC)
		if !ok {
			t.Errorf("Parse(%q) = %T, want CC", pattern, n)
			continue
		}
		if !check(cc.Class) {
			t.Errorf("Parse(%q) class = %v", pattern, cc.Class)
		}
	}
}

func TestParseEscapes(t *testing.T) {
	for pattern, wantByte := range map[string]byte{
		"\\n":   '\n',
		"\\t":   '\t',
		"\\.":   '.',
		"\\\\":  '\\',
		"\\x20": ' ',
		"\\0":   0,
	} {
		n := MustParse(pattern)
		cc, ok := n.(CC)
		if !ok || cc.Class.Size() != 1 || !cc.Class.Contains(wantByte) {
			t.Errorf("Parse(%q) = %v, want single byte %q", pattern, n, wantByte)
		}
	}
	for _, named := range []string{"\\d", "\\w", "\\s", "\\D", "\\W", "\\S"} {
		if _, err := Parse(named); err != nil {
			t.Errorf("Parse(%q): %v", named, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"(", ")", "a(b", "[", "[z-a]", "a**b(", "\\", "*a", "+", "^a", "a$",
		"a{5,2}", "\\q", "\\x1", "a{2000}",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestLiteralBraceFallback(t *testing.T) {
	// '{' not introducing valid bounds is a literal, as in real rule sets.
	n, err := Parse("a{b}")
	if err != nil {
		t.Fatalf("Parse(a{b}): %v", err)
	}
	lit, ok := LiteralString(n)
	if !ok || lit != "a{b}" {
		t.Fatalf("LiteralString = %q, %v", lit, ok)
	}
}

func TestFoldCaseOption(t *testing.T) {
	n, err := ParseWith("abc", Options{FoldCase: true})
	if err != nil {
		t.Fatal(err)
	}
	first := n.(Concat).Parts[0].(CC)
	if !first.Class.Contains('A') || !first.Class.Contains('a') {
		t.Fatal("FoldCase not applied")
	}
}

func TestMinLength(t *testing.T) {
	for pattern, want := range map[string]int{
		"abc":      3,
		"a|bc":     1,
		"a*":       0,
		"a+":       1,
		"a?b":      1,
		"a{3,5}":   3,
		"(ab){2}c": 5,
	} {
		if got := MinLength(MustParse(pattern)); got != want {
			t.Errorf("MinLength(%q) = %d, want %d", pattern, got, want)
		}
	}
}

func TestRoundTripThroughString(t *testing.T) {
	patterns := []string{
		"cat", "a(bc)*d", "(abc)|d", "[a-z0-9]+@[a-z0-9]+", "a{2,5}",
		"x(y|z)?w", "\\d\\d:\\d\\d", "a.c", "[^ab]*z",
	}
	for _, p := range patterns {
		n1 := MustParse(p)
		n2, err := Parse(n1.String())
		if err != nil {
			t.Errorf("re-parse of %q (rendered %q): %v", p, n1.String(), err)
			continue
		}
		if n1.String() != n2.String() {
			t.Errorf("round trip of %q: %q != %q", p, n1.String(), n2.String())
		}
	}
}

func TestQuickGeneratedPatternsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		n := Generate(rng, GenOptions{})
		rendered := n.String()
		re, err := Parse(rendered)
		if err != nil {
			t.Fatalf("generated pattern %q does not re-parse: %v", rendered, err)
		}
		if re.String() != rendered {
			t.Fatalf("round trip changed %q to %q", rendered, re.String())
		}
	}
}

func TestToGoRegexpCompiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n := Generate(rng, GenOptions{})
		goSyntax := ToGoRegexp(n)
		if _, err := regexp.Compile(goSyntax); err != nil {
			t.Fatalf("generated Go syntax %q does not compile: %v (ast %q)",
				goSyntax, err, n.String())
		}
	}
}

func TestToGoRegexpSemanticsOnLiterals(t *testing.T) {
	n := MustParse("a(b|c)d")
	re := regexp.MustCompile(ToGoRegexp(n))
	if !re.MatchString("xacdx") || re.MatchString("xaed") {
		t.Fatalf("oracle regexp %q misbehaves", re)
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	n := MustParse("a(b|c)*d{2,3}")
	count := 0
	Walk(n, func(Node) { count++ })
	if count < 7 {
		t.Fatalf("Walk visited %d nodes, want >= 7", count)
	}
}

func TestGenerateLiteral(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := GenerateLiteral(rng, GenOptions{}, 12)
	s, ok := LiteralString(n)
	if !ok || len(s) != 12 {
		t.Fatalf("GenerateLiteral = %q, %v", s, ok)
	}
	if strings.ContainsAny(s, "()*") {
		t.Fatalf("literal contains metacharacters: %q", s)
	}
}
