package rx

import "bitgen/internal/charclass"

// Simplify returns a semantically-equivalent, normalized AST:
//
//   - nested concatenations and alternations are flattened;
//   - alternations of single-byte-class alternatives merge into one class
//     ((a|b|[cd]) → [a-d]), shrinking the lowered program;
//   - duplicate alternatives are removed;
//   - degenerate repetitions collapse (x{1} → x, x{0,} → x*, x{1,} → x+,
//     (x*)* → x*, (x?)? → x?, (x+)+ → x+, (x*)? → x*, (x?)* → x*);
//   - empty concatenations inside operators fold away.
//
// The pass is idempotent and preserves all-match end-position semantics
// (property-tested against the stdlib oracle).
func Simplify(n Node) Node {
	switch x := n.(type) {
	case CC:
		return x
	case Concat:
		parts := make([]Node, 0, len(x.Parts))
		for _, p := range x.Parts {
			sp := Simplify(p)
			if inner, ok := sp.(Concat); ok {
				parts = append(parts, inner.Parts...)
				continue
			}
			parts = append(parts, sp)
		}
		if len(parts) == 1 {
			return parts[0]
		}
		return Concat{parts}
	case Alt:
		alts := make([]Node, 0, len(x.Alts))
		for _, a := range x.Alts {
			sa := Simplify(a)
			if inner, ok := sa.(Alt); ok {
				alts = append(alts, inner.Alts...)
				continue
			}
			alts = append(alts, sa)
		}
		// Merge single-class alternatives and drop duplicates.
		var classUnion charclass.Class
		haveClass := false
		merged := make([]Node, 0, len(alts))
		seen := make(map[string]bool)
		for _, a := range alts {
			if cc, ok := a.(CC); ok {
				classUnion = classUnion.Union(cc.Class)
				haveClass = true
				continue
			}
			key := a.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			merged = append(merged, a)
		}
		if haveClass {
			merged = append([]Node{CC{classUnion}}, merged...)
		}
		if len(merged) == 1 {
			return merged[0]
		}
		return Alt{merged}
	case Star:
		sub := Simplify(x.Sub)
		switch inner := sub.(type) {
		case Star:
			return inner // (x*)* = x*
		case Plus:
			return Star{inner.Sub} // (x+)* = x*
		case Opt:
			return Star{inner.Sub} // (x?)* = x*
		}
		return Star{sub}
	case Plus:
		sub := Simplify(x.Sub)
		switch inner := sub.(type) {
		case Star:
			return inner // (x*)+ = x*
		case Plus:
			return inner // (x+)+ = x+
		case Opt:
			return Star{inner.Sub} // (x?)+ = x*
		}
		return Plus{sub}
	case Opt:
		sub := Simplify(x.Sub)
		switch inner := sub.(type) {
		case Star:
			return inner // (x*)? = x*
		case Opt:
			return inner // (x?)? = x?
		case Plus:
			return Star{inner.Sub} // (x+)? = x*
		}
		return Opt{sub}
	case Repeat:
		sub := Simplify(x.Sub)
		switch {
		case x.Min == 1 && x.Max == 1:
			return sub
		case x.Min == 0 && x.Max == Unbounded:
			return Simplify(Star{sub})
		case x.Min == 1 && x.Max == Unbounded:
			return Simplify(Plus{sub})
		case x.Min == 0 && x.Max == 1:
			return Simplify(Opt{sub})
		case x.Min == 0 && x.Max == 0:
			return Concat{} // matches only the empty string
		}
		return Repeat{Sub: sub, Min: x.Min, Max: x.Max}
	}
	return n
}
