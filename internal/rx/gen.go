package rx

import (
	"math/rand"

	"bitgen/internal/charclass"
)

// GenOptions configure the random regex generator used by property tests
// and by the synthetic workload builders.
type GenOptions struct {
	// MaxDepth bounds operator nesting.
	MaxDepth int
	// Alphabet is the set of bytes literals are drawn from. Empty means
	// lowercase ASCII letters.
	Alphabet []byte
	// StarProb in [0,1] scales how often unbounded repetition appears.
	StarProb float64
	// MaxRepeat bounds the {n,m} counters generated.
	MaxRepeat int
}

func (o *GenOptions) fill() {
	if o.MaxDepth == 0 {
		o.MaxDepth = 4
	}
	if len(o.Alphabet) == 0 {
		o.Alphabet = []byte("abcdefghij")
	}
	if o.StarProb == 0 {
		o.StarProb = 0.25
	}
	if o.MaxRepeat == 0 {
		o.MaxRepeat = 4
	}
}

// Generate returns a random AST drawn from the paper's grammar.
func Generate(rng *rand.Rand, opts GenOptions) Node {
	opts.fill()
	return genNode(rng, &opts, opts.MaxDepth)
}

func genNode(rng *rand.Rand, o *GenOptions, depth int) Node {
	if depth <= 0 {
		return genCC(rng, o)
	}
	switch r := rng.Float64(); {
	case r < 0.35:
		// Concatenation of 2-4 factors.
		k := 2 + rng.Intn(3)
		parts := make([]Node, k)
		for i := range parts {
			parts[i] = genNode(rng, o, depth-1)
		}
		return Concat{parts}
	case r < 0.55:
		k := 2 + rng.Intn(2)
		alts := make([]Node, k)
		for i := range alts {
			alts[i] = genNode(rng, o, depth-1)
		}
		return Alt{alts}
	case r < 0.55+o.StarProb*0.45:
		sub := genNonEmpty(rng, o, depth-1)
		switch rng.Intn(3) {
		case 0:
			return Star{sub}
		case 1:
			return Plus{sub}
		default:
			return Opt{sub}
		}
	case r < 0.9:
		sub := genNonEmpty(rng, o, depth-1)
		minR := rng.Intn(o.MaxRepeat)
		maxR := minR + rng.Intn(o.MaxRepeat-minR+1)
		if rng.Intn(6) == 0 {
			maxR = Unbounded
		}
		if minR == 0 && maxR == 0 {
			minR, maxR = 1, 1
		}
		return Repeat{Sub: sub, Min: minR, Max: maxR}
	default:
		return genCC(rng, o)
	}
}

// genNonEmpty generates a node that cannot match the empty string, keeping
// nested unbounded repetition well-behaved (e.g. avoiding (a?)* shapes that
// are valid but explode the all-match fixpoint in oracles).
func genNonEmpty(rng *rand.Rand, o *GenOptions, depth int) Node {
	for tries := 0; tries < 8; tries++ {
		n := genNode(rng, o, depth)
		if !MatchesEmpty(n) {
			return n
		}
	}
	return genCC(rng, o)
}

func genCC(rng *rand.Rand, o *GenOptions) Node {
	switch rng.Intn(10) {
	case 0:
		// Small random class from the alphabet.
		var cl charclass.Class
		k := 1 + rng.Intn(3)
		for i := 0; i < k; i++ {
			cl.Add(o.Alphabet[rng.Intn(len(o.Alphabet))])
		}
		return CC{cl}
	case 1:
		// Range over the alphabet (assumes sorted-ish alphabets are fine;
		// ranges use byte order regardless).
		a := o.Alphabet[rng.Intn(len(o.Alphabet))]
		b := o.Alphabet[rng.Intn(len(o.Alphabet))]
		if a > b {
			a, b = b, a
		}
		return CC{charclass.Range(a, b)}
	default:
		return CC{charclass.Single(o.Alphabet[rng.Intn(len(o.Alphabet))])}
	}
}

// GenerateLiteral returns a random exact-string pattern of the given length.
func GenerateLiteral(rng *rand.Rand, o GenOptions, length int) Node {
	o.fill()
	buf := make([]byte, length)
	for i := range buf {
		buf[i] = o.Alphabet[rng.Intn(len(o.Alphabet))]
	}
	return Literal(string(buf))
}
