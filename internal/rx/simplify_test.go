package rx

import (
	"math/rand"
	"regexp"
	"testing"
)

func TestSimplifyShapes(t *testing.T) {
	cases := map[string]string{
		"a|b|c":       "[a-c]",
		"(a|b)|(c|d)": "[a-d]",
		"a{1}":        "a",
		"a{1,1}":      "a",
		"a{0,}":       "a*",
		"a{1,}":       "a+",
		"a{0,1}":      "a?",
		"(a*)*":       "a*",
		"(a+)+":       "a+",
		"(a?)?":       "a?",
		"(a*)?":       "a*",
		"(a?)*":       "a*",
		"(a+)?":       "a*",
		"(a?)+":       "a*",
		"(a*)+":       "a*",
		"a|a|a":       "a",
		"(ab)(cd)":    "abcd",
	}
	for in, want := range cases {
		got := Simplify(MustParse(in)).String()
		if got != want {
			t.Errorf("Simplify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 200; i++ {
		n := Generate(rng, GenOptions{MaxDepth: 4})
		s1 := Simplify(n)
		s2 := Simplify(s1)
		if s1.String() != s2.String() {
			t.Fatalf("not idempotent: %q -> %q -> %q", n.String(), s1.String(), s2.String())
		}
	}
}

func TestSimplifyNeverGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 200; i++ {
		n := Generate(rng, GenOptions{MaxDepth: 4})
		before := countNodes(n)
		after := countNodes(Simplify(n))
		if after > before {
			t.Fatalf("simplify grew %q: %d -> %d nodes", n.String(), before, after)
		}
	}
}

func countNodes(n Node) int {
	c := 0
	Walk(n, func(Node) { c++ })
	return c
}

// TestSimplifyPreservesLanguage checks semantic equivalence via the Go
// regexp oracle on exhaustive short strings.
func TestSimplifyPreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	alphabet := []byte("ab")
	for trial := 0; trial < 150; trial++ {
		n := Generate(rng, GenOptions{MaxDepth: 3, Alphabet: alphabet, MaxRepeat: 3})
		s := Simplify(n)
		re1, err1 := regexp.Compile("^(?:" + ToGoRegexp(n) + ")$")
		re2, err2 := regexp.Compile("^(?:" + ToGoRegexp(s) + ")$")
		if err1 != nil || err2 != nil {
			t.Fatalf("oracle compile: %v %v", err1, err2)
		}
		// All strings over {a,b} up to length 6.
		var walk func(prefix []byte)
		walk = func(prefix []byte) {
			if re1.Match(prefix) != re2.Match(prefix) {
				t.Fatalf("simplify changed language of %q (-> %q) on %q",
					n.String(), s.String(), prefix)
			}
			if len(prefix) == 6 {
				return
			}
			for _, c := range alphabet {
				walk(append(prefix, c))
			}
		}
		walk(nil)
	}
}
