package rx

import (
	"fmt"
	"strconv"

	"bitgen/internal/charclass"
)

// ParseError describes a syntax error with its byte offset in the pattern.
type ParseError struct {
	Pattern string
	Pos     int
	Msg     string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("rx: parse %q at offset %d: %s", e.Pattern, e.Pos, e.Msg)
}

// Options control parsing behaviour.
type Options struct {
	// FoldCase makes every character class case-insensitive (ASCII).
	FoldCase bool
	// MaxRepeat caps the {n,m} bounds to keep lowered programs finite;
	// zero means the default of 1000.
	MaxRepeat int
}

const defaultMaxRepeat = 1000

// Parse parses a pattern with default options.
func Parse(pattern string) (Node, error) {
	return ParseWith(pattern, Options{})
}

// MustParse parses a pattern and panics on error; intended for tests and
// static pattern tables.
func MustParse(pattern string) Node {
	n, err := Parse(pattern)
	if err != nil {
		panic(err)
	}
	return n
}

// ParseWith parses a pattern under the given options.
//
// Supported syntax: literals, '.', '[...]' classes with ranges and '^'
// negation, escapes (\d \D \w \W \s \S \n \t \r \0 \xHH and escaped
// metacharacters), grouping '(...)', alternation '|', and the postfix
// operators '*', '+', '?', '{n}', '{n,}', '{n,m}'. Anchors and
// backreferences are not part of the paper's grammar and are rejected.
func ParseWith(pattern string, opts Options) (Node, error) {
	if opts.MaxRepeat == 0 {
		opts.MaxRepeat = defaultMaxRepeat
	}
	p := &parser{src: pattern, opts: opts}
	n, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, p.errorf("unexpected %q", p.src[p.pos])
	}
	return n, nil
}

type parser struct {
	src  string
	pos  int
	opts Options
}

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Pattern: p.src, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool  { return p.pos >= len(p.src) }
func (p *parser) peek() byte { return p.src[p.pos] }

// parseAlt = parseConcat ('|' parseConcat)*
func (p *parser) parseAlt() (Node, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	alts := []Node{first}
	for !p.eof() && p.peek() == '|' {
		p.pos++
		next, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alts = append(alts, next)
	}
	if len(alts) == 1 {
		return first, nil
	}
	return Alt{alts}, nil
}

// parseConcat = parseRepeat*
func (p *parser) parseConcat() (Node, error) {
	var parts []Node
	for !p.eof() && p.peek() != '|' && p.peek() != ')' {
		n, err := p.parseRepeat()
		if err != nil {
			return nil, err
		}
		// Empty groups like "()" are ε: dropping them from a
		// concatenation preserves the language and keeps rendering
		// canonical (a(())b ≡ ab).
		if c, ok := n.(Concat); ok && len(c.Parts) == 0 {
			continue
		}
		parts = append(parts, n)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return Concat{parts}, nil
}

// parseRepeat = parseAtom ('*' | '+' | '?' | '{n,m}')*
func (p *parser) parseRepeat() (Node, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for !p.eof() {
		switch p.peek() {
		case '*':
			p.pos++
			atom = Star{atom}
		case '+':
			p.pos++
			atom = Plus{atom}
		case '?':
			p.pos++
			atom = Opt{atom}
		case '{':
			rep, ok, err := p.tryParseBounds()
			if err != nil {
				return nil, err
			}
			if !ok {
				return atom, nil // literal '{' handled by parseAtom next round
			}
			rep.Sub = atom
			atom = rep
		default:
			return atom, nil
		}
	}
	return atom, nil
}

// tryParseBounds parses '{n}', '{n,}' or '{n,m}'. A '{' not followed by a
// well-formed bound is treated as a literal (common in real rule sets), in
// which case ok is false and the position is unchanged.
func (p *parser) tryParseBounds() (Repeat, bool, error) {
	start := p.pos
	p.pos++ // consume '{'
	numStart := p.pos
	for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
		p.pos++
	}
	if p.pos == numStart {
		p.pos = start
		return Repeat{}, false, nil
	}
	minVal, err := strconv.Atoi(p.src[numStart:p.pos])
	if err != nil {
		p.pos = start
		return Repeat{}, false, nil
	}
	maxVal := minVal
	if !p.eof() && p.peek() == ',' {
		p.pos++
		if !p.eof() && p.peek() == '}' {
			maxVal = Unbounded
		} else {
			numStart = p.pos
			for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
				p.pos++
			}
			if p.pos == numStart {
				p.pos = start
				return Repeat{}, false, nil
			}
			maxVal, err = strconv.Atoi(p.src[numStart:p.pos])
			if err != nil {
				p.pos = start
				return Repeat{}, false, nil
			}
		}
	}
	if p.eof() || p.peek() != '}' {
		p.pos = start
		return Repeat{}, false, nil
	}
	p.pos++ // consume '}'
	if maxVal != Unbounded && maxVal < minVal {
		p.pos = start
		return Repeat{}, false, &ParseError{p.src, start, fmt.Sprintf("invalid bounds {%d,%d}", minVal, maxVal)}
	}
	limit := p.opts.MaxRepeat
	if minVal > limit || maxVal > limit {
		p.pos = start
		return Repeat{}, false, &ParseError{p.src, start, fmt.Sprintf("repetition bound exceeds limit %d", limit)}
	}
	return Repeat{Min: minVal, Max: maxVal}, true, nil
}

// parseAtom = literal | '.' | class | group | escape
func (p *parser) parseAtom() (Node, error) {
	if p.eof() {
		return nil, p.errorf("unexpected end of pattern")
	}
	switch c := p.peek(); c {
	case '(':
		p.pos++
		inner, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if p.eof() || p.peek() != ')' {
			return nil, p.errorf("missing closing ')'")
		}
		p.pos++
		return inner, nil
	case ')':
		return nil, p.errorf("unmatched ')'")
	case '*', '+', '?':
		return nil, p.errorf("repetition operator %q with nothing to repeat", c)
	case '.':
		p.pos++
		return p.cc(charclass.Dot()), nil
	case '[':
		return p.parseClass()
	case '\\':
		return p.parseEscape()
	case '^', '$':
		return nil, p.errorf("anchors are not supported by the bitstream grammar")
	default:
		p.pos++
		return p.cc(charclass.Single(c)), nil
	}
}

// cc wraps a class, applying case folding if configured.
func (p *parser) cc(cl charclass.Class) Node {
	if p.opts.FoldCase {
		cl = cl.FoldCase()
	}
	return CC{cl}
}

// parseEscape handles a backslash escape outside a bracket class.
func (p *parser) parseEscape() (Node, error) {
	cl, err := p.escapeClass()
	if err != nil {
		return nil, err
	}
	return p.cc(cl), nil
}

// escapeClass parses the escape following a '\' and returns its class.
func (p *parser) escapeClass() (charclass.Class, error) {
	p.pos++ // consume '\'
	if p.eof() {
		return charclass.Class{}, p.errorf("trailing backslash")
	}
	c := p.peek()
	p.pos++
	switch c {
	case 'd':
		return charclass.Digit, nil
	case 'D':
		return charclass.Digit.Negate(), nil
	case 'w':
		return charclass.Word, nil
	case 'W':
		return charclass.Word.Negate(), nil
	case 's':
		return charclass.Space, nil
	case 'S':
		return charclass.Space.Negate(), nil
	case 'n':
		return charclass.Single('\n'), nil
	case 't':
		return charclass.Single('\t'), nil
	case 'r':
		return charclass.Single('\r'), nil
	case 'f':
		return charclass.Single('\f'), nil
	case 'v':
		return charclass.Single('\v'), nil
	case 'a':
		return charclass.Single(7), nil
	case '0':
		return charclass.Single(0), nil
	case 'x':
		if p.pos+2 > len(p.src) {
			return charclass.Class{}, p.errorf("truncated \\x escape")
		}
		v, err := strconv.ParseUint(p.src[p.pos:p.pos+2], 16, 8)
		if err != nil {
			return charclass.Class{}, p.errorf("invalid \\x escape %q", p.src[p.pos:p.pos+2])
		}
		p.pos += 2
		return charclass.Single(byte(v)), nil
	default:
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '1' && c <= '9') {
			return charclass.Class{}, p.errorf("unsupported escape \\%c", c)
		}
		return charclass.Single(c), nil // escaped metacharacter
	}
}

// parseClass parses a bracket expression '[...]'.
func (p *parser) parseClass() (Node, error) {
	p.pos++ // consume '['
	negate := false
	if !p.eof() && p.peek() == '^' {
		negate = true
		p.pos++
	}
	cl := charclass.Empty()
	first := true
	for {
		if p.eof() {
			return nil, p.errorf("missing closing ']'")
		}
		if p.peek() == ']' && !first {
			p.pos++
			break
		}
		first = false
		lo, loIsClass, loClass, err := p.classAtom()
		if err != nil {
			return nil, err
		}
		if loIsClass {
			cl = cl.Union(loClass)
			continue
		}
		// Possible range lo-hi.
		if p.pos+1 < len(p.src) && p.peek() == '-' && p.src[p.pos+1] != ']' {
			p.pos++ // consume '-'
			hi, hiIsClass, _, err := p.classAtom()
			if err != nil {
				return nil, err
			}
			if hiIsClass {
				return nil, p.errorf("invalid range endpoint")
			}
			if lo > hi {
				return nil, p.errorf("invalid range %q-%q", lo, hi)
			}
			cl.AddRange(lo, hi)
			continue
		}
		cl.Add(lo)
	}
	if negate {
		cl = cl.Negate()
	}
	return p.cc(cl), nil
}

// classAtom parses one element inside a bracket expression: either a single
// byte (possibly escaped) or a named class escape like \d.
func (p *parser) classAtom() (b byte, isClass bool, cl charclass.Class, err error) {
	if p.eof() {
		return 0, false, charclass.Class{}, p.errorf("missing closing ']'")
	}
	c := p.peek()
	if c != '\\' {
		p.pos++
		return c, false, charclass.Class{}, nil
	}
	// Escape inside class: named classes stay classes, others are bytes.
	if p.pos+1 < len(p.src) {
		switch p.src[p.pos+1] {
		case 'd', 'D', 'w', 'W', 's', 'S':
			cl, err := p.escapeClass()
			return 0, true, cl, err
		}
	}
	cl2, err := p.escapeClass()
	if err != nil {
		return 0, false, charclass.Class{}, err
	}
	if cl2.Size() != 1 {
		return 0, true, cl2, nil
	}
	for v := 0; v < 256; v++ {
		if cl2.Contains(byte(v)) {
			return byte(v), false, charclass.Class{}, nil
		}
	}
	return 0, false, charclass.Class{}, p.errorf("internal: empty escape class")
}
