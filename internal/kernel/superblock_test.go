package kernel

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"bitgen/internal/gpusim"
	"bitgen/internal/ir"
	"bitgen/internal/lower"
	"bitgen/internal/passes"
	"bitgen/internal/rx"
	"bitgen/internal/transpose"
)

// runBoth executes p in the given mode with and without superblock
// compilation and asserts bit-identical outputs and field-identical
// CTAStats — the modeled-time invariance contract of the superblock layer.
func runBoth(t *testing.T, label string, p *ir.Program, input []byte, cfg Config) {
	t.Helper()
	basis := transpose.Transpose(input)
	sb, sbErr := Run(p, basis, cfg)
	cfg.DisableSuperblocks = true
	ref, refErr := Run(p, basis, cfg)
	if (sbErr == nil) != (refErr == nil) {
		t.Fatalf("%s: error divergence: superblocks=%v interpreter=%v", label, sbErr, refErr)
	}
	if sbErr != nil {
		return // both failed identically (e.g. while cap)
	}
	for name, want := range ref.Outputs {
		got := sb.Outputs[name]
		if got.String() != want.String() {
			t.Fatalf("%s: output %s diverges:\n sb  %s\n ref %s", label, name, got, want)
		}
	}
	if !reflect.DeepEqual(sb.Stats, ref.Stats) {
		t.Fatalf("%s: CTAStats diverge (superblocks must charge identically):\n sb  %+v\n ref %+v",
			label, sb.Stats, ref.Stats)
	}
	if sb.FallbackSegments != ref.FallbackSegments {
		t.Fatalf("%s: fallback segments diverge: sb=%d ref=%d", label, sb.FallbackSegments, ref.FallbackSegments)
	}
}

// TestSuperblocksMatchInterpreter covers handpicked pattern shapes: fused
// shift+bitwise pairs, bin-pair register tiles, carries, loops, and guard
// skip ranges that end between a def and its use (a fusion-boundary trap).
func TestSuperblocksMatchInterpreter(t *testing.T) {
	cases := []struct {
		pattern string
		input   string
	}{
		{"fox", "the quick brown fox jumps over the lazy dog fox"},
		{"fox|dog", "fox and dog and fox and dog over and over fox"},
		{"qu[a-z]{2,6}k", "quack quark quik quk quandongk quiiiiik"},
		{"l.zy", "lazy lizy lzzy llzy lazy"},
		{"0\\d{3}", "dial 0123 or 0999 not 012 maybe 04567"},
		{"a[ab]*b", "aababababbbaabb abab aaa bbb ab"},
		{"(c{2}(a|b)){1,3}", "acbacbadcbdbcdcacbbccaccbccaccbdbccab"},
		{"x+y+z+", "xyz xxyyzz xxxyyyzzz xy yz xz xyzzz"},
		{"[0-9]+\\.[0-9]+", "pi is 3.14159 and e is 2.71828 not 42"},
	}
	for _, mode := range []Mode{ModeBase, ModeDTMStatic, ModeDTM} {
		for _, tc := range cases {
			p := lower.MustSingle("re", tc.pattern)
			passes.Rebalance(p, passes.RebalanceOptions{})
			passes.MergeBarriers(p, passes.MergeOptions{MergeSize: 4})
			passes.InsertGuards(p, passes.ZBSOptions{Interval: 3})
			cfg := Config{Grid: tinyGrid, Mode: mode, HonorGuards: true}
			runBoth(t, mode.String()+"/"+tc.pattern, p, []byte(tc.input), cfg)
		}
	}
}

// TestSuperblocksDifferentialRandom fuzzes generated regexes through the
// full pass pipeline on tiny blocks, so windows, guards, merged barrier
// groups, loops and overlap growth all hit the compiled path.
func TestSuperblocksDifferentialRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized differential")
	}
	rng := rand.New(rand.NewSource(20260808))
	alphabet := []byte("abcd")
	for trial := 0; trial < 120; trial++ {
		ast := rx.Generate(rng, rx.GenOptions{MaxDepth: 3, Alphabet: alphabet, MaxRepeat: 3})
		p, err := lower.Group([]lower.Regex{{Name: "re", AST: ast}}, lower.Options{})
		if err != nil {
			t.Fatal(err)
		}
		passes.Rebalance(p, passes.RebalanceOptions{})
		passes.MergeBarriers(p, passes.MergeOptions{MergeSize: 4})
		passes.InsertGuards(p, passes.ZBSOptions{Interval: 3})
		n := 40 + rng.Intn(160)
		input := make([]byte, n)
		for i := range input {
			input[i] = alphabet[rng.Intn(len(alphabet))]
		}
		cfg := Config{Grid: tinyGrid, Mode: ModeDTM, HonorGuards: true}
		runBoth(t, ast.String(), p, input, cfg)
	}
}

// TestSuperblocksFuseAcrossGridSizes checks invariance holds on realistic
// geometry too (large windows, shared-input amortization, full output
// writes).
func TestSuperblocksFuseAcrossGridSizes(t *testing.T) {
	p := lower.MustSingle("re", "qu[a-z]{2,6}k")
	passes.Rebalance(p, passes.RebalanceOptions{})
	passes.MergeBarriers(p, passes.MergeOptions{MergeSize: 4})
	input := make([]byte, 8192)
	for i := range input {
		input[i] = "quack and quark "[i%16]
	}
	grids := []gpusim.Grid{
		tinyGrid,
		{CTAs: 4, Threads: 64, UnitBits: 32, UnitsPerThread: 1},
		gpusim.DefaultGrid(),
	}
	for _, g := range grids {
		cfg := Config{Grid: g, Mode: ModeDTM, SharedInputCTAs: 4, FullOutputWrites: true}
		runBoth(t, fmt.Sprintf("grid-%dx%d", g.CTAs, g.Threads), p, input, cfg)
	}
}
