package kernel

import (
	"context"
	"errors"

	"bitgen/internal/bitstream"
	"bitgen/internal/faultinject"
	"bitgen/internal/gpusim"
	"bitgen/internal/ir"
	"bitgen/internal/obs"
	"bitgen/internal/transpose"
)

// RunBatch executes the program over K independent inputs through a single
// traversal of the compiled plan — the session-level analog of launching
// one kernel over K concurrent streams. Each input gets its own executor
// lane (registers, globals, stats); the plan, liveness, barrier schedule
// and compiled superblocks are shared, so per-instruction planning work is
// paid once per batch instead of once per input.
//
// Lane i's outputs and stats are exactly what Run(ctx, bases[i]) would
// produce: lanes never exchange data, only dispatch. An overlap overflow in
// any lane pushes the culprit onto the shared materialize set and reruns
// the whole batch (the rebuilt plan applies to every lane, matching the
// sequential fallback semantics).
//
// The returned outs[i] align with the program's Outputs and are owned by
// the session: valid, read-only, until the next Run/RunBatch or Close.
// Steady-state batches of stable size and chunk geometry allocate nothing.
func (s *Session) RunBatch(ctx context.Context, bases []*transpose.Basis) ([][]*bitstream.Stream, []gpusim.CTAStats, error) {
	k := len(bases)
	if k == 0 {
		return nil, nil, nil
	}
	s.growBatch(k)
	for attempt := 0; ; attempt++ {
		if err := ctxErr(ctx); err != nil {
			return nil, nil, err
		}
		span := s.base.Obs.Span("kernel", "kernel-attempt", s.base.TraceLane).
			Arg("attempt", attempt).Arg("batch", k)
		err := s.runBatchOnce(ctx, bases)
		span.End()
		if err != nil {
			var ovf *overflowError
			fusedMode := s.base.Mode == ModeDTM || s.base.Mode == ModeDTMStatic
			if errors.As(err, &ovf) && fusedMode && ovf.stmt != nil && !s.materialize[ovf.stmt] && attempt < 1+len(s.prog.Stmts) {
				if s.materialize == nil {
					s.materialize = make(map[ir.Stmt]bool)
				}
				s.materialize[ovf.stmt] = true
				s.rebuild()
				s.base.Obs.Instant("kernel", "overlap-fallback", s.base.TraceLane, obs.A("need_bits", ovf.need))
				s.base.Obs.Reg().Counter(obs.MOverlapFallback, obs.HOverlapFallback).Inc()
				continue
			}
			return nil, nil, err
		}
		return s.batchOuts[:k], s.batchStats[:k], nil
	}
}

// growBatch ensures at least k executor lanes exist. Lane 0 is the
// session's own executor, so single-shot Run and batched RunBatch share
// its retained buffers.
func (s *Session) growBatch(k int) {
	if s.lanes == nil {
		s.lanes = append(s.lanes, s.ex)
	}
	for len(s.lanes) < k {
		ex := newExec(s.prog, s.base)
		ex.alloc = s.tr.Words
		s.lanes = append(s.lanes, ex)
	}
	for len(s.batchOuts) < k {
		s.batchOuts = append(s.batchOuts, make([]*bitstream.Stream, len(s.prog.Outputs)))
	}
	for len(s.batchStats) < k {
		s.batchStats = append(s.batchStats, gpusim.CTAStats{})
	}
}

// runBatchOnce resets every lane and walks the top-level plan once,
// executing each node across all lanes before advancing to the next node.
// Data-dependent control (ctl conditions, window fixpoints, while loops)
// still runs per lane — lanes only share the traversal, never results.
func (s *Session) runBatchOnce(ctx context.Context, bases []*transpose.Basis) error {
	if s.base.Inject.Fire(faultinject.KernelPanic) {
		panic("faultinject: injected kernel panic")
	}
	k := len(bases)
	for i := 0; i < k; i++ {
		ex := s.lanes[i]
		ex.reset(ctx, bases[i], s.base.withDefaults(bases[i].N))
		ex.isMat = s.isMat
		ex.stats.Loops = int64(s.loops)
		ex.stats.IntermediateStreams = int64(s.intermediates)
		ex.stats.StaticDelta = s.staticDelta
	}
	for _, node := range s.pl.nodes {
		for i := 0; i < k; i++ {
			ex := s.lanes[i]
			switch x := node.(type) {
			case *fusedSeg:
				if err := ex.execFused(x); err != nil {
					return err
				}
			case *streamSeg:
				ex.execStream(x.assign)
			case *ctlSeg:
				if err := ex.execCtl(x); err != nil {
					return err
				}
			}
		}
	}
	for i := 0; i < k; i++ {
		ex := s.lanes[i]
		outs := s.batchOuts[i]
		for oi, o := range s.prog.Outputs {
			str := ex.globals[o.Var]
			if str == nil {
				str = ex.zero
			}
			outs[oi] = str
			if !ex.cfg.FullOutputWrites {
				ex.stats.DRAMWriteBytes += 4 * int64(str.Popcount())
			}
		}
		s.batchStats[i] = ex.stats
	}
	return nil
}
