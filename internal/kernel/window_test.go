package kernel

import (
	"testing"

	"bitgen/internal/bitstream"
)

func TestRegFileEpochInvalidation(t *testing.T) {
	r := newRegFile(4)
	r.beginWindow(2)
	b := r.buf(1)
	b[0], b[1] = 7, 9
	if !r.has(1) || r.get(1)[1] != 9 {
		t.Fatal("buffer not readable in same window")
	}
	r.beginWindow(2)
	if r.has(1) {
		t.Fatal("buffer survived window change")
	}
	if r.get(1) != nil {
		t.Fatal("get returned stale buffer")
	}
	// Re-acquiring gives a buffer (contents unspecified) without
	// reallocating when capacity suffices.
	b2 := r.buf(1)
	if len(b2) != 2 {
		t.Fatalf("len = %d", len(b2))
	}
}

func TestRegFileResize(t *testing.T) {
	r := newRegFile(2)
	r.beginWindow(1)
	r.buf(0)[0] = 5
	r.beginWindow(8)
	b := r.buf(0)
	if len(b) != 8 {
		t.Fatalf("len = %d", len(b))
	}
}

func TestRegFileZero(t *testing.T) {
	r := newRegFile(2)
	r.beginWindow(3)
	b := r.buf(0)
	b[0], b[2] = ^uint64(0), 42
	r.zero(0)
	for i, w := range r.get(0) {
		if w != 0 {
			t.Fatalf("word %d = %d after zero", i, w)
		}
	}
}

func TestLoadStoreWindow(t *testing.T) {
	s := bitstream.FromPositions(256, 0, 70, 200)
	dst := make([]uint64, 2)
	loadWindow(dst, s, 1) // words 1..2 => bits 64..191
	if dst[0]&(1<<6) == 0 {
		t.Fatal("bit 70 missing from window")
	}
	loadWindow(dst, s, 3) // word 3 valid, word 4 beyond backing => zero
	if dst[1] != 0 {
		t.Fatal("beyond-stream word not zeroed")
	}
	// Store back into a fresh stream.
	out := bitstream.New(256)
	src := []uint64{0, 1 << 6, 0}
	storeWindow(out, 0, src, 0, 3) // writes words 0..2
	if got := out.Positions(); len(got) != 1 || got[0] != 70 {
		t.Fatalf("positions = %v", got)
	}
}

func TestStoreWindowMasksTail(t *testing.T) {
	out := bitstream.New(70) // 2 words, 6 valid bits in word 1
	src := []uint64{0, ^uint64(0)}
	storeWindow(out, 0, src, 0, 2)
	if got := out.Popcount(); got != 6 {
		t.Fatalf("popcount = %d, want 6 (tail masked)", got)
	}
}

func TestOnesRunCrossing(t *testing.T) {
	mk := func(bits string) []uint64 {
		s := bitstream.FromBits(bits)
		w := make([]uint64, bitstream.WordsFor(s.Len()))
		copy(w, s.Words())
		return w
	}
	cases := []struct {
		bits        string
		boundary    int
		wantLen     int
		wantReaches bool
	}{
		{"00000000", 4, 0, false},
		{"00110000", 4, 2, false}, // run [2,3] ends at boundary-1
		{"11110000", 4, 4, true},  // run reaches window start
		{"01110000", 4, 3, false}, // run starts at 1
		{"11101111", 4, 0, false}, // bit 3 clear: no crossing run
		{"11111111", 8, 8, true},
	}
	for _, c := range cases {
		runLen, reaches := onesRunCrossing(mk(c.bits), c.boundary)
		if runLen != c.wantLen || reaches != c.wantReaches {
			t.Errorf("onesRunCrossing(%s, %d) = (%d, %v), want (%d, %v)",
				c.bits, c.boundary, runLen, reaches, c.wantLen, c.wantReaches)
		}
	}
}

func TestOnesRunCrossingLongRuns(t *testing.T) {
	// A 100-bit run ending at boundary 128 within a 192-bit window.
	w := make([]uint64, 3)
	s := bitstream.New(192)
	for i := 28; i < 128; i++ {
		s.Set(i)
	}
	copy(w, s.Words())
	runLen, reaches := onesRunCrossing(w, 128)
	if runLen != 100 || reaches {
		t.Fatalf("got (%d, %v), want (100, false)", runLen, reaches)
	}
	// Extend to the start: now it reaches.
	for i := 0; i < 28; i++ {
		s.Set(i)
	}
	copy(w, s.Words())
	_, reaches = onesRunCrossing(w, 128)
	if !reaches {
		t.Fatal("full-prefix run not flagged")
	}
}

func TestStarThruWordsMatchesStreamVersion(t *testing.T) {
	m := bitstream.FromPositions(192, 3, 64, 130)
	c := bitstream.New(192)
	for i := 0; i < 192; i += 3 {
		c.Set(i)
		c.Set(i + 1)
	}
	want := bitstream.MatchStar(m, c)
	ww := 3
	dst := make([]uint64, ww)
	t1, t2 := make([]uint64, ww), make([]uint64, ww)
	starThruWords(dst, m.Words(), c.Words(), t1, t2)
	got := bitstream.FromWords(dst, 192)
	if !got.Equal(want) {
		t.Fatalf("starThruWords diverges:\n got  %s\n want %s", got, want)
	}
}

func TestWordKernels(t *testing.T) {
	x := []uint64{0b1100, 0}
	y := []uint64{0b1010, ^uint64(0)}
	dst := make([]uint64, 2)
	andWords(dst, x, y)
	if dst[0] != 0b1000 || dst[1] != 0 {
		t.Fatal("andWords")
	}
	orWords(dst, x, y)
	if dst[0] != 0b1110 {
		t.Fatal("orWords")
	}
	xorWords(dst, x, y)
	if dst[0] != 0b0110 {
		t.Fatal("xorWords")
	}
	andNotWords(dst, x, y)
	if dst[0] != 0b0100 {
		t.Fatal("andNotWords")
	}
	notWords(dst, x)
	if dst[0] != ^uint64(0b1100) {
		t.Fatal("notWords")
	}
	copyWords(dst, x)
	if dst[0] != 0b1100 {
		t.Fatal("copyWords")
	}
	if anyWords([]uint64{0, 0}) || !anyWords([]uint64{0, 4}) {
		t.Fatal("anyWords")
	}
}
