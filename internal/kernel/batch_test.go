package kernel

import (
	"context"
	"strings"
	"testing"

	"bitgen/internal/arena"
	"bitgen/internal/lower"
	"bitgen/internal/transpose"
)

// TestRunBatchMatchesSequentialRuns pins batched launches to the one-shot
// oracle: RunBatch over K inputs must produce, per lane, exactly the
// outputs and modeled stats a fresh session's Run would produce for that
// input alone — across modes, varying batch sizes, and inputs of unequal
// length sharing one traversal.
func TestRunBatchMatchesSequentialRuns(t *testing.T) {
	cases := []struct {
		pattern string
		inputs  []string
	}{
		{"cat|dog", []string{
			strings.Repeat("the cat sat on the dog ", 12),
			strings.Repeat("no animals in this one. ", 12),
			strings.Repeat("catdogcat ", 25),
			"cat",
		}},
		{"a(bc)*d", []string{
			"ad " + strings.Repeat("abcbcd ", 15),
			strings.Repeat("abcd", 40),
			strings.Repeat("x", 97),
		}},
		{"x.?y", []string{
			strings.Repeat("xy xay xaby ", 10),
			strings.Repeat("zzz", 40) + "xy",
		}},
	}
	ctx := context.Background()
	for _, mode := range allModes {
		for _, c := range cases {
			p := lower.MustSingle("re", c.pattern)
			cfg := Config{Grid: tinyGrid, Mode: mode, HonorGuards: true}
			a := &arena.Arena{}
			batched, err := NewSession(p, cfg, a)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := NewSession(p, cfg, a)
			if err != nil {
				t.Fatal(err)
			}
			bases := make([]*transpose.Basis, len(c.inputs))
			for i, in := range c.inputs {
				bases[i] = transpose.Transpose([]byte(in))
			}
			// Varying batch sizes over the same session exercise lane
			// growth and reuse; k=1 pins the degenerate case.
			for _, k := range []int{len(c.inputs), 1, 2, len(c.inputs)} {
				if k > len(c.inputs) {
					k = len(c.inputs)
				}
				outs, stats, err := batched.RunBatch(ctx, bases[:k])
				if err != nil {
					t.Fatalf("%v %q k=%d: RunBatch: %v", mode, c.pattern, k, err)
				}
				for lane := 0; lane < k; lane++ {
					wantOuts, wantStats, err := oracle.Run(ctx, bases[lane])
					if err != nil {
						t.Fatalf("%v %q lane %d: oracle: %v", mode, c.pattern, lane, err)
					}
					for oi := range p.Outputs {
						if !outs[lane][oi].Equal(wantOuts[oi]) {
							t.Fatalf("%v %q k=%d lane %d: output %s diverges from sequential Run",
								mode, c.pattern, k, lane, p.Outputs[oi].Name)
						}
					}
					if stats[lane] != wantStats {
						t.Errorf("%v %q k=%d lane %d: batched stats %+v != sequential %+v",
							mode, c.pattern, k, lane, stats[lane], wantStats)
					}
				}
			}
			batched.Close()
			oracle.Close()
			if err := a.CheckBalanced(); err != nil {
				t.Fatalf("%v %q: %v", mode, c.pattern, err)
			}
		}
	}
}

// TestRunBatchOverflowFallbackExact puts a carry chain past the overlap cap
// into one lane of a batch: the whole batch must take the materialization
// fallback, stay exact in every lane, and keep the fallback on later
// batches — the same semantics the sequential session exhibits.
func TestRunBatchOverflowFallbackExact(t *testing.T) {
	p := lower.MustSingle("re", "ab*c")
	cfg := Config{Grid: tinyGrid, Mode: ModeDTM}
	sess, err := NewSession(p, cfg, &arena.Arena{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	inputs := []string{
		"abc abbbc " + strings.Repeat("x", 300),
		"a" + strings.Repeat("b", 2000) + "c", // forces the overlap overflow
		"a" + strings.Repeat("b", 1500) + "c",
	}
	bases := make([]*transpose.Basis, len(inputs))
	for i, in := range inputs {
		bases[i] = transpose.Transpose([]byte(in))
	}
	for round := 0; round < 2; round++ {
		outs, _, err := sess.RunBatch(context.Background(), bases)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for lane := range inputs {
			want := interpRef(t, p, bases[lane])["re"]
			if !outs[lane][0].Equal(want) {
				t.Fatalf("round %d lane %d: batched output diverges after fallback", round, lane)
			}
		}
	}
	if sess.Fallbacks() == 0 {
		t.Fatal("expected a materialized fallback segment")
	}
}

// TestRunBatchSteadyStateZeroAllocs is the arena contract extended to
// batches: once lanes are warmed, a batched run over same-sized chunks
// allocates nothing.
func TestRunBatchSteadyStateZeroAllocs(t *testing.T) {
	p := lower.MustSingle("re", "cat|dog")
	cfg := Config{Grid: tinyGrid, Mode: ModeDTM, HonorGuards: true}
	sess, err := NewSession(p, cfg, &arena.Arena{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	inputs := []string{
		strings.Repeat("the cat sat on the dog ", 40),
		strings.Repeat("dogs and cats, cats and dogs ", 31),
		strings.Repeat("no animals here at all..... ", 32),
	}
	bases := make([]*transpose.Basis, len(inputs))
	for i, in := range inputs {
		bases[i] = transpose.Transpose([]byte(in))
	}
	ctx := context.Background()
	if _, _, err := sess.RunBatch(ctx, bases); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := sess.RunBatch(ctx, bases); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state RunBatch allocates %.1f times per batch, want 0", allocs)
	}
}
