package kernel

import (
	"bitgen/internal/bitstream"
	"bitgen/internal/ir"
)

// regFile holds the per-window register state of a fused segment: one
// window-sized word buffer per variable, with epoch tagging so buffers are
// invalidated between windows without clearing.
type regFile struct {
	bufs  [][]uint64
	epoch []uint32
	cur   uint32
	ww    int // words per window
	// alloc provides backing storage for register buffers; nil means plain
	// make. Sessions wire it to a pooled arena tracker.
	alloc func(n int) []uint64
}

func newRegFile(numVars int) *regFile {
	return &regFile{
		bufs:  make([][]uint64, numVars),
		epoch: make([]uint32, numVars),
	}
}

// beginWindow invalidates all registers and (re)sizes buffers to ww words.
func (r *regFile) beginWindow(ww int) {
	r.cur++
	r.ww = ww
}

// has reports whether v holds a value in the current window.
func (r *regFile) has(v ir.VarID) bool {
	return r.epoch[v] == r.cur && r.bufs[v] != nil
}

// buf returns v's buffer for writing, allocating or resizing as needed and
// marking it valid in the current window. Contents are unspecified.
func (r *regFile) buf(v ir.VarID) []uint64 {
	b := r.bufs[v]
	if cap(b) < r.ww {
		if r.alloc != nil {
			b = r.alloc(r.ww)
		} else {
			b = make([]uint64, r.ww)
		}
		r.bufs[v] = b
	}
	b = b[:r.ww]
	r.bufs[v] = b
	r.epoch[v] = r.cur
	return b
}

// get returns v's current-window buffer or nil.
func (r *regFile) get(v ir.VarID) []uint64 {
	if !r.has(v) {
		return nil
	}
	return r.bufs[v][:r.ww]
}

// zero fills v's buffer with zeros.
func (r *regFile) zero(v ir.VarID) {
	b := r.buf(v)
	for i := range b {
		b[i] = 0
	}
}

// loadWindow copies words [fromWord, fromWord+ww) of a stream into dst,
// zero-filling beyond the stream's backing words.
func loadWindow(dst []uint64, s *bitstream.Stream, fromWord int) {
	words := s.Words()
	for i := range dst {
		j := fromWord + i
		if j >= 0 && j < len(words) {
			dst[i] = words[j]
		} else {
			dst[i] = 0
		}
	}
}

// storeWindow copies src's words [srcOff, srcOff+nWords) into stream words
// starting at dstWord, clipping to the stream's length.
func storeWindow(s *bitstream.Stream, dstWord int, src []uint64, srcOff, nWords int) {
	words := s.Words()
	for i := 0; i < nWords; i++ {
		j := dstWord + i
		if j < 0 || j >= len(words) {
			continue
		}
		words[j] = src[srcOff+i]
	}
	// Re-mask the tail by rebuilding via FromWords semantics: the stream
	// keeps bits past Len zero.
	maskStreamTail(s)
}

func maskStreamTail(s *bitstream.Stream) {
	n := s.Len()
	words := s.Words()
	if n%64 != 0 && len(words) > 0 {
		words[len(words)-1] &= (1 << (uint(n) % 64)) - 1
	}
}

// anyWords reports whether any bit is set.
func anyWords(w []uint64) bool {
	for _, x := range w {
		if x != 0 {
			return true
		}
	}
	return false
}

// andWords / orWords / xorWords / andNotWords / notWords are the word-level
// kernels of the bitwise instructions.
func andWords(dst, x, y []uint64) {
	for i := range dst {
		dst[i] = x[i] & y[i]
	}
}

func orWords(dst, x, y []uint64) {
	for i := range dst {
		dst[i] = x[i] | y[i]
	}
}

func xorWords(dst, x, y []uint64) {
	for i := range dst {
		dst[i] = x[i] ^ y[i]
	}
}

func andNotWords(dst, x, y []uint64) {
	for i := range dst {
		dst[i] = x[i] &^ y[i]
	}
}

func notWords(dst, x []uint64) {
	for i := range dst {
		dst[i] = ^x[i]
	}
}

func copyWords(dst, x []uint64) {
	copy(dst, x)
}

// onesRunCrossing inspects the class window c and the boundary bit position
// boundary (relative to the window start, in bits): it returns the length
// of the run of consecutive 1-bits ending just before the boundary, and
// whether that run extends all the way to the window start (meaning a carry
// chain could have begun before the window and the committed bits may be
// stale). A zero-length run means no chain crosses the boundary.
func onesRunCrossing(c []uint64, boundary int) (runLen int, reachesStart bool) {
	if boundary <= 0 {
		return 0, false
	}
	// The run must include bit boundary-1 to cross into the committed
	// region.
	i := boundary - 1
	for i >= 0 {
		w := c[i/64]
		bit := uint(i) % 64
		if w&(1<<bit) == 0 {
			return boundary - 1 - i, false
		}
		// Fast path: whole word of ones below this bit.
		if bit == 63 && w == ^uint64(0) {
			i -= 64
			continue
		}
		i--
	}
	return boundary, true
}

// starThruWords computes the fused MatchStar over window buffers:
// with T = (M >> 1) & C (window-local shift, zero carry-in),
// dst = ((((T + C) ^ C) | T) & C) | M.
// tmp must be two scratch buffers of window size.
func starThruWords(dst, m, c []uint64, tmpT, tmpS []uint64) {
	bitstream.AdvanceWords(tmpT, m, 1)
	for i := range tmpT {
		tmpT[i] &= c[i]
	}
	bitstream.AddWords(tmpS, tmpT, c)
	for i := range dst {
		dst[i] = ((tmpS[i]^c[i])|tmpT[i])&c[i] | m[i]
	}
}
